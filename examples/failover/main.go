// Failover audit: a what-if analysis an operator would run before a
// maintenance window. On the NORDUnet-style network it checks, for a set of
// ingress/egress pairs, that
//
//  1. IP traffic survives any single link failure (reachability at k=1),
//  2. the network stays transparent — no internal MPLS labels leak to the
//     neighbour — even under a failure (the φ3 pattern), and
//  3. how much the fast-reroute detour costs in extra hops (comparing the
//     minimum-hop witness at k=0 with the forced-failover witness at k=1).
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/weight"
)

func main() {
	s := gen.Nordunet(gen.NordOpts{Services: 2, EdgeRouters: 10, Seed: 7})
	net := s.Net
	fmt.Printf("auditing %q: %d routers, %d links, %d rules\n\n",
		net.Name, net.Topo.NumRouters(), net.Topo.NumLinks(), net.Routing.NumRules())

	name := func(i int) string { return net.Topo.Routers[s.Edge[i]].Name }
	hops := weight.Spec{{{Coeff: 1, Q: weight.Hops}}}

	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}}
	fmt.Println("1) single-failure reachability (k=1):")
	for _, p := range pairs {
		q := fmt.Sprintf("<ip> [.#%s] .* [.#%s] <ip> 1", name(p[0]), name(p[1]))
		res, err := engine.VerifyText(net, q, engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-6s -> %-6s %s\n", name(p[0]), name(p[1]), res.Verdict)
	}

	fmt.Println("\n2) label transparency under one failure (must be unsatisfied):")
	for _, p := range pairs[:3] {
		// Can a packet leave the network towards the neighbour (the
		// external stub link) with an extra MPLS label on top of the
		// service label? (φ3 of the running example.)
		q := fmt.Sprintf("<smpls ip> [.#%s] .* [%s#X-%s] <mpls+ smpls ip> 1",
			name(p[0]), name(p[1]), name(p[1]))
		res, err := engine.VerifyText(net, q, engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		verdictNote := ""
		if res.Verdict == engine.Satisfied {
			verdictNote = "  ← LEAK: " + res.Trace.Format(net)
		}
		fmt.Printf("    %-6s -> %-6s %s%s\n", name(p[0]), name(p[1]), res.Verdict, verdictNote)
	}

	fmt.Println("\n3) failover detour cost in hops:")
	for _, p := range pairs {
		base := fmt.Sprintf("<ip> [.#%s] .* [.#%s] <ip> 0", name(p[0]), name(p[1]))
		r0, err := engine.VerifyText(net, base, engine.Options{Spec: hops})
		if err != nil {
			log.Fatal(err)
		}
		if r0.Verdict != engine.Satisfied {
			fmt.Printf("    %-6s -> %-6s unreachable even without failures\n", name(p[0]), name(p[1]))
			continue
		}
		// Force at least one failover by requiring a protection tunnel on
		// the wire: a plain MPLS label on top of the LSP label.
		forced := fmt.Sprintf("<ip> [.#%s] .* <mpls smpls ip> 1", name(p[0]))
		r1, err := engine.VerifyText(net, forced, engine.Options{Spec: hops})
		if err != nil {
			log.Fatal(err)
		}
		if r1.Verdict != engine.Satisfied {
			fmt.Printf("    %-6s -> %-6s best=%v hops; no failover scenario matches\n",
				name(p[0]), name(p[1]), r0.Weight[0])
			continue
		}
		fmt.Printf("    %-6s -> %-6s best=%d hops, in-tunnel detour reaches depth-2 stack after %d hops (fails %v)\n",
			name(p[0]), name(p[1]), r0.Weight[0], r1.Weight[0], r1.Failed.Sorted())
	}
}
