// Quickstart: load the paper's running example (Figure 1), verify the five
// queries φ0..φ4 of Figure 1d, and solve the minimum witness problem of §3
// with the vector (Hops, Failures + 3·Tunnels).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/weight"
)

func main() {
	re := gen.RunningExample()
	fmt.Printf("network %q: %d routers, %d links, %d forwarding rules\n\n",
		re.Name, re.Topo.NumRouters(), re.Topo.NumLinks(), re.Routing.NumRules())

	queries := []struct {
		name, text string
	}{
		{"phi0 (IP reachability, no failures)", "<ip> [.#v0] .* [v3#.] <ip> 0"},
		{"phi1 (avoid v2->v3, up to 2 failures)", "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2"},
		{"phi2 (service label s40 routed)", "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"},
		{"phi3 (label leak check)", "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"},
		{"phi4 (5+ hops, optional tunnel)", "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1"},
	}
	for _, q := range queries {
		res, err := engine.VerifyText(re.Network, q.text, engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %s\n", q.name, res.Verdict)
		if res.Verdict == engine.Satisfied {
			fmt.Printf("    witness: %s\n", res.Trace.Format(re.Network))
			if len(res.Failed) > 0 {
				fmt.Printf("    requires failed links: %v\n", res.Failed.Sorted())
			}
		}
	}

	// Minimum witness problem (§3): minimise (Hops, Failures + 3·Tunnels)
	// over the witnesses of φ4. The paper computes σ2 ↦ (5,7) and
	// σ3 ↦ (5,0); the minimum witness is σ3.
	spec, err := weight.ParseSpec("Hops, Failures + 3*Tunnels")
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.VerifyText(re.Network, queries[4].text, engine.Options{Spec: spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum witness for phi4 under %s:\n", spec)
	fmt.Printf("    weight %s: %s\n", res.Weight, res.Trace.Format(re.Network))
}
