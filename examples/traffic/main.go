// Traffic engineering: quantitative what-if analysis on a Topology-Zoo-
// style WAN. For a set of ingress/egress pairs the example compares
//
//   - the minimum-hop routing a packet can take,
//   - the minimum-latency routing (great-circle distance of each link), and
//   - the latency of the worst single-failure detour (minimising
//     (Failures, Distance) lexicographically with k=1),
//
// demonstrating linear-expression weight vectors and the Distance quantity
// backed by router coordinates (Appendix A.2).
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/loc"
	"aalwines/internal/weight"
)

func main() {
	s := gen.Zoo(gen.ZooOpts{Routers: 48, Seed: 11, Protection: true})
	net := s.Net
	dist := loc.DistanceFunc(net)
	fmt.Printf("WAN %q: %d routers, %d links, %d rules\n\n",
		net.Name, net.Topo.NumRouters(), net.Topo.NumLinks(), net.Routing.NumRules())

	hops := weight.Spec{{{Coeff: 1, Q: weight.Hops}}}
	latency := weight.Spec{{{Coeff: 1, Q: weight.Distance}}}
	robust, err := weight.ParseSpec("Failures, Distance")
	if err != nil {
		log.Fatal(err)
	}

	name := func(i int) string { return net.Topo.Routers[s.Edge[i]].Name }
	fmt.Printf("%-14s %12s %14s %20s\n", "pair", "min hops", "min latency", "k=1 detour latency")
	for i := 0; i < 4; i++ {
		src, dst := name(i), name((i+1)%len(s.Edge))
		q0 := fmt.Sprintf("<ip> [.#%s] .* [.#%s] <ip> 0", src, dst)
		q1 := fmt.Sprintf("<ip> [.#%s] .* [.#%s] <ip> 1", src, dst)

		h, err := engine.VerifyText(net, q0, engine.Options{Spec: hops, Dist: dist})
		if err != nil {
			log.Fatal(err)
		}
		if h.Verdict != engine.Satisfied {
			fmt.Printf("%-14s unreachable\n", src+"->"+dst)
			continue
		}
		l, err := engine.VerifyText(net, q0, engine.Options{Spec: latency, Dist: dist})
		if err != nil {
			log.Fatal(err)
		}
		// Minimising (Failures, Distance) with k=1 finds the best
		// no-failure routing; forcing a depth-2 stack (an active bypass
		// tunnel) instead surfaces the detour's latency.
		forced := fmt.Sprintf("<ip> [.#%s] .* <mpls smpls ip> 1", src)
		d, err := engine.VerifyText(net, forced, engine.Options{Spec: robust, Dist: dist})
		if err != nil {
			log.Fatal(err)
		}
		detour := "n/a (no protected hop on any path)"
		if d.Verdict == engine.Satisfied {
			detour = fmt.Sprintf("%d km after %d failure(s)", d.Weight[1], d.Weight[0])
		}
		fmt.Printf("%-14s %9d hop %11d km %20s\n",
			src+"->"+dst, h.Weight[0], l.Weight[0], detour)
		_ = q1
	}

	// A policy check with a latency budget: is there any routing between
	// the first pair longer than twice the optimum? Minimising Distance
	// while *maximising* is not expressible (weights are minimised), but
	// the dual question — does the min-latency routing stay under budget
	// even with one failure — is:
	src, dst := name(0), name(1)
	q1 := fmt.Sprintf("<ip> [.#%s] .* [.#%s] <ip> 1", src, dst)
	r, err := engine.VerifyText(net, q1, engine.Options{Spec: robust, Dist: dist})
	if err != nil {
		log.Fatal(err)
	}
	if r.Verdict == engine.Satisfied {
		fmt.Printf("\npolicy: %s -> %s reachable with %d failure(s); best such routing costs %d km\n",
			src, dst, r.Weight[0], r.Weight[1])
	}
}
