package query_test

import (
	"strings"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/nfa"
	"aalwines/internal/query"
)

// Phi returns the Figure 1d queries φ0..φ4 in concrete syntax.
func phi(i int) string {
	switch i {
	case 0:
		return "<ip> [.#v0] .* [v3#.] <ip> 0"
	case 1:
		return "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2"
	case 2:
		return "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"
	case 3:
		return "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"
	case 4:
		return "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1"
	default:
		panic("no such phi")
	}
}

func headerSyms(h labels.Header) []nfa.Sym {
	out := make([]nfa.Sym, len(h))
	for i, id := range h {
		out[i] = query.LabelSym(id)
	}
	return out
}

func pathSyms(tr network.Trace) []nfa.Sym {
	out := make([]nfa.Sym, len(tr))
	for i, s := range tr {
		out[i] = query.LinkSym(s.Link)
	}
	return out
}

func TestParseAllPhis(t *testing.T) {
	re := gen.RunningExample()
	for i := 0; i <= 4; i++ {
		q, err := query.Parse(phi(i), re.Network)
		if err != nil {
			t.Fatalf("phi%d: %v", i, err)
		}
		wantK := []int{0, 2, 0, 1, 1}[i]
		if q.MaxFailures != wantK {
			t.Errorf("phi%d: k = %d, want %d", i, q.MaxFailures, wantK)
		}
	}
}

func TestUnicodeAngleBrackets(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("⟨ip⟩ [.#v0] .* [v3#.] ⟨ip⟩ 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxFailures != 0 {
		t.Errorf("k = %d", q.MaxFailures)
	}
}

// TestPhiRegexSemantics checks the three component automata against the
// witness traces documented in Figure 1d.
func TestPhiRegexSemantics(t *testing.T) {
	re := gen.RunningExample()
	type tc struct {
		phi    int
		sigma  int
		preOK  bool // initial header matches a
		pathOK bool // link sequence matches b
		postOK bool // final header matches c
	}
	cases := []tc{
		// φ0 is satisfied by σ0 and σ1; σ2's path also matches but needs a failure.
		{0, 0, true, true, true},
		{0, 1, true, true, true},
		{0, 2, true, true, true},
		{0, 3, false, true, false}, // σ3 starts with s40∘ip1 and ends s44∘ip1
		// φ1 forbids v2→v3 links in the middle; σ0 uses e4 (v2→v3).
		{1, 0, true, false, true},
		{1, 1, true, true, true},
		{1, 2, true, true, true},
		// φ2: starts s40∘ip, ends smpls∘ip: σ3 qualifies.
		{2, 3, true, true, true},
		{2, 0, false, true, false},
		// φ3: ends with at least one plain MPLS label above an smpls: no σ.
		{3, 3, true, true, false},
		// φ4: at least 3 hops (. . .*), optional smpls around ip.
		{4, 2, true, true, true},
		{4, 3, true, true, true},
		{4, 0, true, false, true}, // σ0 has only 4 links; φ4 needs ≥ 5
	}
	for _, c := range cases {
		q, err := query.Parse(phi(c.phi), re.Network)
		if err != nil {
			t.Fatalf("phi%d: %v", c.phi, err)
		}
		tr := re.Sigma(c.sigma)
		first, last := tr[0].Header, tr[len(tr)-1].Header
		if got := q.PreNFA.Accepts(headerSyms(first)); got != c.preOK {
			t.Errorf("phi%d σ%d: pre accepts=%v, want %v", c.phi, c.sigma, got, c.preOK)
		}
		if got := q.PathNFA.Accepts(pathSyms(tr)); got != c.pathOK {
			t.Errorf("phi%d σ%d: path accepts=%v, want %v", c.phi, c.sigma, got, c.pathOK)
		}
		if got := q.PostNFA.Accepts(headerSyms(last)); got != c.postOK {
			t.Errorf("phi%d σ%d: post accepts=%v, want %v", c.phi, c.sigma, got, c.postOK)
		}
	}
}

func TestLinkAtomInterfaces(t *testing.T) {
	re := gen.RunningExample()
	// Links are named oeN/ieN in the generator; [v0.oe1#v2.ie1] is exactly e1.
	q, err := query.Parse("<ip> [v0.oe1#v2.ie1] <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if !q.PathNFA.Accepts([]nfa.Sym{query.LinkSym(re.Links["e1"])}) {
		t.Error("interface-qualified atom rejects e1")
	}
	if q.PathNFA.Accepts([]nfa.Sym{query.LinkSym(re.Links["e2"])}) {
		t.Error("interface-qualified atom accepts e2")
	}
	// Interface on one side only.
	q2, err := query.Parse("<ip> [v0.oe1#.] <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.PathNFA.Accepts([]nfa.Sym{query.LinkSym(re.Links["e1"])}) {
		t.Error("half-qualified atom rejects e1")
	}
}

func TestNegatedLinkAtom(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("<ip> [^v2#v3] <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if q.PathNFA.Accepts([]nfa.Sym{query.LinkSym(re.Links["e4"])}) {
		t.Error("[^v2#v3] accepts e4 (v2→v3)")
	}
	for _, e := range []string{"e0", "e1", "e5", "e7"} {
		if !q.PathNFA.Accepts([]nfa.Sym{query.LinkSym(re.Links[e])}) {
			t.Errorf("[^v2#v3] rejects %s", e)
		}
	}
}

func TestLabelSetAtom(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("<[s40,s41] ip1> .* <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	ok := q.PreNFA.Accepts([]nfa.Sym{query.LabelSym(re.L["s40"]), query.LabelSym(re.L["ip1"])})
	if !ok {
		t.Error("label set rejects s40 ip1")
	}
	if q.PreNFA.Accepts([]nfa.Sym{query.LabelSym(re.L["s20"]), query.LabelSym(re.L["ip1"])}) {
		t.Error("label set accepts s20")
	}
}

func TestAbbreviationsCoverKinds(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("<mpls smpls ip> .* <.> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	w := []nfa.Sym{
		query.LabelSym(re.L["30"]),
		query.LabelSym(re.L["s21"]),
		query.LabelSym(re.L["ip1"]),
	}
	if !q.PreNFA.Accepts(w) {
		t.Error("mpls smpls ip rejects 30 s21 ip1")
	}
	// Wrong order must be rejected.
	if q.PreNFA.Accepts([]nfa.Sym{w[1], w[0], w[2]}) {
		t.Error("accepts s21 30 ip1")
	}
}

func TestParseErrors(t *testing.T) {
	re := gen.RunningExample()
	bad := []string{
		"",
		"<ip>",
		"<ip> .* <ip>",          // missing k
		"<ip> .* <ip> x",        // bad k
		"<nolabel> .* <ip> 0",   // unknown label
		"<ip> [nope#v3] <ip> 0", // unknown router
		"<ip> [v0#v3 <ip> 0",    // unclosed atom
		"<ip [.#v0] <ip> 0",     // unclosed header
		"<ip> (.* <ip> 0",       // unclosed paren
		"<[s40,] ip> .* <ip> 0", // dangling comma
		"<ip> .* <ip> 0 junk",   // trailing input
		"<ip> [#v0] <ip> 0",     // empty side
	}
	for _, s := range bad {
		if _, err := query.Parse(s, re.Network); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestErrorMentionsOffset(t *testing.T) {
	re := gen.RunningExample()
	_, err := query.Parse("<wat> .* <ip> 0", re.Network)
	if err == nil || !strings.Contains(err.Error(), "unknown label") {
		t.Fatalf("err = %v", err)
	}
}

func TestAlternationAndGrouping(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("<(s40|s20) ip> ([.#v0]|[.#v1]) <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if !q.PreNFA.Accepts([]nfa.Sym{query.LabelSym(re.L["s20"]), query.LabelSym(re.L["ip1"])}) {
		t.Error("alternation rejects s20 ip1")
	}
	if !q.PathNFA.Accepts([]nfa.Sym{query.LinkSym(re.Links["e0"])}) {
		t.Error("link alternation rejects e0")
	}
}

func TestTable1StyleQuery(t *testing.T) {
	re := gen.RunningExample()
	// The Table 1 shape ⟨(mpls* smpls)? ip⟩ must parse.
	q, err := query.Parse("<smpls ip> [.#v0] .* [.#v3] <(mpls* smpls)? ip> 1", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	// c matches bare ip...
	if !q.PostNFA.Accepts([]nfa.Sym{query.LabelSym(re.L["ip1"])}) {
		t.Error("(mpls* smpls)? ip rejects bare ip")
	}
	// ... and 30 s21 ip.
	w := []nfa.Sym{query.LabelSym(re.L["30"]), query.LabelSym(re.L["s21"]), query.LabelSym(re.L["ip1"])}
	if !q.PostNFA.Accepts(w) {
		t.Error("(mpls* smpls)? ip rejects 30 s21 ip")
	}
	// ... but not smpls-less stacks.
	if q.PostNFA.Accepts([]nfa.Sym{query.LabelSym(re.L["30"]), query.LabelSym(re.L["ip1"])}) {
		t.Error("accepts 30 ip (missing smpls)")
	}
}

func TestServiceLabelDollarName(t *testing.T) {
	re := gen.RunningExample()
	re.Labels.MustIntern("$449550", labels.MPLS)
	q, err := query.Parse("<[$449550] ip> .* <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	_ = q
}

// TestRepetitionQuantifiers exercises the {n}, {n,}, {n,m} extension on
// both the label and link layers.
func TestRepetitionQuantifiers(t *testing.T) {
	re := gen.RunningExample()
	// Exactly four links.
	q, err := query.Parse("<ip> .{4} <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if !q.PathNFA.Accepts(pathSyms(re.Sigma(0))) { // 4 links
		t.Error(".{4} rejects a 4-link path")
	}
	if q.PathNFA.Accepts(pathSyms(re.Sigma(3))) { // 5 links
		t.Error(".{4} accepts a 5-link path")
	}
	// At least five links.
	q, err = query.Parse("<ip> .{5,} <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if q.PathNFA.Accepts(pathSyms(re.Sigma(0))) {
		t.Error(".{5,} accepts 4 links")
	}
	if !q.PathNFA.Accepts(pathSyms(re.Sigma(3))) {
		t.Error(".{5,} rejects 5 links")
	}
	// Range on labels: one to two plain MPLS labels over smpls ip.
	q, err = query.Parse("<mpls{1,2} smpls ip> .* <.> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	h2 := []nfa.Sym{query.LabelSym(re.L["30"]), query.LabelSym(re.L["s21"]), query.LabelSym(re.L["ip1"])}
	if !q.PreNFA.Accepts(h2) {
		t.Error("mpls{1,2} rejects one mpls label")
	}
	h0 := []nfa.Sym{query.LabelSym(re.L["s21"]), query.LabelSym(re.L["ip1"])}
	if q.PreNFA.Accepts(h0) {
		t.Error("mpls{1,2} accepts zero mpls labels")
	}
	// phi4 rewritten with the quantifier: .{5,} between the endpoints.
	res0, err := query.Parse("<smpls? ip> [.#v0] .{3,} [v3#.] <smpls? ip> 1", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	if !res0.PathNFA.Accepts(pathSyms(re.Sigma(2))) {
		t.Error("rewritten phi4 rejects sigma2")
	}
	// Errors.
	for _, bad := range []string{
		"<ip> .{2,1} <ip> 0",
		"<ip> .{x} <ip> 0",
		"<ip> .{1 <ip> 0",
	} {
		if _, err := query.Parse(bad, re.Network); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}
