// Package query implements the AalWiNes query language of Definition 5:
// reachability queries of the form
//
//	<a> b <c> k
//
// where a and c are regular expressions over the label set L, b is a
// regular expression over the link set E and k bounds the number of failed
// links. The concrete syntax follows the paper:
//
//	labels:  s40 10 $449550 ip mpls smpls [l1,l2] . ^x (x|y) x* x+ x?
//	links:   [v#u] [v.in1#u.in2] [.#v] [v#.] [^v#u] . ^x (x|y) x* x+ x?
//
// Parse resolves atoms against a concrete network, producing symbol-set
// regular expressions (internal/rex) and compiled NFAs (internal/nfa) over
// the label and link universes.
package query

import (
	"fmt"
	"strings"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/nfa"
	"aalwines/internal/rex"
	"aalwines/internal/topology"
)

// Query is a parsed and compiled reachability query.
type Query struct {
	// Text is the original query string.
	Text string
	// HeadPre, Path and HeadPost are the three regular expressions.
	HeadPre  rex.Node
	Path     rex.Node
	HeadPost rex.Node
	// MaxFailures is k.
	MaxFailures int

	// PreNFA and PostNFA are epsilon-free automata over the label universe
	// (symbol = labels.ID − 1); PathNFA is an epsilon-free automaton over
	// the link universe (symbol = topology.LinkID).
	PreNFA  *nfa.NFA
	PostNFA *nfa.NFA
	PathNFA *nfa.NFA
}

// LabelSym converts a label ID to its automaton symbol.
func LabelSym(id labels.ID) nfa.Sym { return nfa.Sym(id - 1) }

// LinkSym converts a link ID to its automaton symbol.
func LinkSym(id topology.LinkID) nfa.Sym { return nfa.Sym(id) }

// Parse parses and compiles a query against a network.
func Parse(text string, net *network.Network) (*Query, error) {
	p := &parser{s: text, net: net}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("query %q: %w", text, err)
	}
	q.Text = text
	// Header expressions are intersected with the valid-header language H
	// (Definition 5 quantifies over traces, whose headers are members of
	// H by construction): ⟨. ip⟩, for instance, must not admit a plain
	// MPLS label directly on top of an IP label.
	valid := ValidHeaderNFA(net.Labels)
	q.PreNFA = shrink(nfa.Product(rex.Compile(q.HeadPre, net.Labels.Len()), valid).EpsFree())
	q.PostNFA = shrink(nfa.Product(rex.Compile(q.HeadPost, net.Labels.Len()), valid).EpsFree())
	q.PathNFA = shrink(rex.Compile(q.Path, net.Topo.NumLinks()).EpsFree())
	return q, nil
}

// shrink replaces an automaton by its minimal DFA when that is strictly
// smaller. The path automaton's state count multiplies directly into the
// pushdown system's control-state count, so this is a win-only heuristic.
func shrink(a *nfa.NFA) *nfa.NFA {
	m := a.Minimize()
	if m.NumStates() < a.NumStates() {
		return m
	}
	return a
}

// ValidHeaderNFA builds an automaton over the label universe accepting
// exactly the valid headers H = L_IP ∪ L_M* L_M⊥ L_IP.
func ValidHeaderNFA(t *labels.Table) *nfa.NFA {
	u := t.Len()
	mk := func(kind labels.Kind) *nfa.Set {
		set := nfa.NewSet(u)
		for _, id := range t.OfKind(kind) {
			set.Add(LabelSym(id))
		}
		return set
	}
	a := nfa.New(u)
	c := a.AddState()                      // after one or more plain MPLS labels
	s1 := a.AddState()                     // after the bottom-of-stack label
	s2 := a.AddState()                     // after the IP label (accepting)
	a.AddArc(a.Start(), mk(labels.IP), s2) // bare IP header
	a.AddArc(a.Start(), mk(labels.MPLS), c)
	a.AddArc(c, mk(labels.MPLS), c)
	a.AddArc(a.Start(), mk(labels.BottomMPLS), s1)
	a.AddArc(c, mk(labels.BottomMPLS), s1)
	a.AddArc(s1, mk(labels.IP), s2)
	a.SetAccept(s2, true)
	return a
}

type parser struct {
	s   string
	pos int
	net *network.Network
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("at offset %d: "+format, append([]interface{}{p.pos}, args...)...)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n') {
		p.pos++
	}
}

// peek returns the next non-space byte without consuming it (0 at EOF).
// Unicode angle brackets ⟨ ⟩ are normalised to < >.
func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0
	}
	if strings.HasPrefix(p.s[p.pos:], "⟨") {
		return '<'
	}
	if strings.HasPrefix(p.s[p.pos:], "⟩") {
		return '>'
	}
	return p.s[p.pos]
}

func (p *parser) eat(c byte) bool {
	if p.peek() != c {
		return false
	}
	if c == '<' && strings.HasPrefix(p.s[p.pos:], "⟨") {
		p.pos += len("⟨")
	} else if c == '>' && strings.HasPrefix(p.s[p.pos:], "⟩") {
		p.pos += len("⟩")
	} else {
		p.pos++
	}
	return true
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if !p.eat('<') {
		return nil, p.errf("expected '<' opening the initial header expression")
	}
	pre, err := p.parseLabelAlt()
	if err != nil {
		return nil, err
	}
	if !p.eat('>') {
		return nil, p.errf("expected '>' closing the initial header expression")
	}
	q.HeadPre = pre
	path, err := p.parseLinkAlt()
	if err != nil {
		return nil, err
	}
	q.Path = path
	if !p.eat('<') {
		return nil, p.errf("expected '<' opening the final header expression")
	}
	post, err := p.parseLabelAlt()
	if err != nil {
		return nil, err
	}
	if !p.eat('>') {
		return nil, p.errf("expected '>' closing the final header expression")
	}
	q.HeadPost = post
	k, err := p.parseInt()
	if err != nil {
		return nil, err
	}
	q.MaxFailures = k
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, p.errf("trailing input %q", p.s[p.pos:])
	}
	return q, nil
}

func (p *parser) parseInt() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected the failure bound k")
	}
	n := 0
	for _, c := range p.s[start:p.pos] {
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// ---------- label expressions ----------

func (p *parser) parseLabelAlt() (rex.Node, error) {
	first, err := p.parseLabelCat()
	if err != nil {
		return nil, err
	}
	parts := []rex.Node{first}
	for p.eat('|') {
		n, err := p.parseLabelCat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return rex.Union{Parts: parts}, nil
}

func (p *parser) parseLabelCat() (rex.Node, error) {
	var parts []rex.Node
	for {
		switch p.peek() {
		case '>', '|', ')', 0:
			if len(parts) == 0 {
				return rex.Eps{}, nil
			}
			if len(parts) == 1 {
				return parts[0], nil
			}
			return rex.Concat{Parts: parts}, nil
		}
		n, err := p.parseLabelRep()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
}

func (p *parser) parseLabelRep() (rex.Node, error) {
	n, err := p.parseLabelPrim()
	if err != nil {
		return nil, err
	}
	return p.applyPostfix(n)
}

func (p *parser) applyPostfix(n rex.Node) (rex.Node, error) {
	for {
		switch p.peek() {
		case '*':
			p.pos++
			n = rex.Star{X: n}
		case '+':
			p.pos++
			n = rex.Plus{X: n}
		case '?':
			p.pos++
			n = rex.Opt{X: n}
		case '{':
			p.pos++
			rep, err := p.parseRepeat(n)
			if err != nil {
				return nil, err
			}
			n = rep
		default:
			return n, nil
		}
	}
}

// parseRepeat parses the bounded repetition "{n}", "{n,}" or "{n,m}" after
// the '{'.
func (p *parser) parseRepeat(x rex.Node) (rex.Node, error) {
	min, err := p.parseInt()
	if err != nil {
		return nil, err
	}
	max := min
	if p.eat(',') {
		if p.peek() == '}' {
			max = -1
		} else {
			max, err = p.parseInt()
			if err != nil {
				return nil, err
			}
			if max < min {
				return nil, p.errf("repetition bound {%d,%d} is empty", min, max)
			}
		}
	}
	if !p.eat('}') {
		return nil, p.errf("expected '}' closing repetition")
	}
	return rex.Repeat{X: x, Min: min, Max: max}, nil
}

func (p *parser) parseLabelPrim() (rex.Node, error) {
	switch p.peek() {
	case '(':
		p.pos++
		n, err := p.parseLabelAlt()
		if err != nil {
			return nil, err
		}
		if !p.eat(')') {
			return nil, p.errf("expected ')'")
		}
		return n, nil
	case '^':
		p.pos++
		n, err := p.parseLabelPrim()
		if err != nil {
			return nil, err
		}
		return rex.Not{X: n}, nil
	case '.':
		p.pos++
		return rex.AnyAtom(p.net.Labels.Len()), nil
	case '[':
		p.pos++
		return p.parseLabelSet()
	case 0:
		return nil, p.errf("unexpected end of query in label expression")
	default:
		name := p.scanLabelName()
		if name == "" {
			return nil, p.errf("unexpected character %q in label expression", p.peek())
		}
		return p.labelAtom(name)
	}
}

func (p *parser) scanLabelName() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && isLabelChar(p.s[p.pos]) {
		p.pos++
	}
	return p.s[start:p.pos]
}

func isLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '$' || c == '_' || c == '-' || c == ':'
}

// labelAtom resolves a bare name: abbreviation or concrete label.
func (p *parser) labelAtom(name string) (rex.Node, error) {
	u := p.net.Labels.Len()
	mk := func(ids []labels.ID) rex.Node {
		set := nfa.NewSet(u)
		for _, id := range ids {
			set.Add(LabelSym(id))
		}
		return rex.Atom{Set: set, Name: name}
	}
	switch name {
	case "ip":
		return mk(p.net.Labels.OfKind(labels.IP)), nil
	case "mpls":
		return mk(p.net.Labels.OfKind(labels.MPLS)), nil
	case "smpls":
		return mk(p.net.Labels.OfKind(labels.BottomMPLS)), nil
	}
	id := p.net.Labels.Lookup(name)
	if id == labels.None {
		return nil, p.errf("unknown label %q", name)
	}
	return mk([]labels.ID{id}), nil
}

// parseLabelSet parses "[l1,l2,...]" after the '['.
func (p *parser) parseLabelSet() (rex.Node, error) {
	u := p.net.Labels.Len()
	set := nfa.NewSet(u)
	var names []string
	for {
		name := p.scanLabelName()
		if name == "" {
			return nil, p.errf("expected label name in set")
		}
		names = append(names, name)
		// Abbreviations are allowed inside sets too.
		atom, err := p.labelAtom(name)
		if err != nil {
			return nil, err
		}
		set = set.Union(atom.(rex.Atom).Set)
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return rex.Atom{Set: set, Name: "[" + strings.Join(names, ",") + "]"}, nil
		}
		return nil, p.errf("expected ',' or ']' in label set")
	}
}

// ---------- link expressions ----------

func (p *parser) parseLinkAlt() (rex.Node, error) {
	first, err := p.parseLinkCat()
	if err != nil {
		return nil, err
	}
	parts := []rex.Node{first}
	for p.eat('|') {
		n, err := p.parseLinkCat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return rex.Union{Parts: parts}, nil
}

func (p *parser) parseLinkCat() (rex.Node, error) {
	var parts []rex.Node
	for {
		switch p.peek() {
		case '<', '|', ')', 0:
			if len(parts) == 0 {
				return rex.Eps{}, nil
			}
			if len(parts) == 1 {
				return parts[0], nil
			}
			return rex.Concat{Parts: parts}, nil
		}
		n, err := p.parseLinkRep()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
}

func (p *parser) parseLinkRep() (rex.Node, error) {
	n, err := p.parseLinkPrim()
	if err != nil {
		return nil, err
	}
	return p.applyPostfix(n)
}

func (p *parser) parseLinkPrim() (rex.Node, error) {
	switch p.peek() {
	case '(':
		p.pos++
		n, err := p.parseLinkAlt()
		if err != nil {
			return nil, err
		}
		if !p.eat(')') {
			return nil, p.errf("expected ')'")
		}
		return n, nil
	case '^':
		p.pos++
		n, err := p.parseLinkPrim()
		if err != nil {
			return nil, err
		}
		return rex.Not{X: n}, nil
	case '.':
		p.pos++
		return rex.AnyAtom(p.net.Topo.NumLinks()), nil
	case '[':
		p.pos++
		return p.parseLinkAtom()
	case 0:
		return nil, p.errf("unexpected end of query in link expression")
	default:
		return nil, p.errf("unexpected character %q in link expression", p.peek())
	}
}

// parseLinkAtom parses the body of "[side#side]" after the '['; a leading
// '^' complements the resulting link set ([^v#u] = any link except v→u).
func (p *parser) parseLinkAtom() (rex.Node, error) {
	p.skipSpace()
	negate := false
	if p.pos < len(p.s) && p.s[p.pos] == '^' {
		negate = true
		p.pos++
	}
	fromRouter, fromIfc, err := p.parseLinkSide('#')
	if err != nil {
		return nil, err
	}
	if !p.eat('#') {
		return nil, p.errf("expected '#' in link atom")
	}
	toRouter, toIfc, err := p.parseLinkSide(']')
	if err != nil {
		return nil, err
	}
	if !p.eat(']') {
		return nil, p.errf("expected ']' closing link atom")
	}
	set, name, err := p.resolveLinkSet(fromRouter, fromIfc, toRouter, toIfc)
	if err != nil {
		return nil, err
	}
	if negate {
		set = set.Complement()
		name = "^" + name
	}
	return rex.Atom{Set: set, Name: "[" + name + "]"}, nil
}

// parseLinkSide scans a side of a link atom up to stop ('#' or ']'):
// either "." (any router) or "router" or "router.interface". The router
// name ends at the first '.', '#' or the stop character; the interface name
// may itself contain dots (e.g. "ae1.11").
func (p *parser) parseLinkSide(stop byte) (router, ifc string, err error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] != '#' && p.s[p.pos] != ']' && p.s[p.pos] != ' ' {
		p.pos++
	}
	side := p.s[start:p.pos]
	if side == "" {
		return "", "", p.errf("empty link side")
	}
	if side == "." {
		return ".", "", nil
	}
	if i := strings.IndexByte(side, '.'); i >= 0 {
		return side[:i], side[i+1:], nil
	}
	return side, "", nil
}

// resolveLinkSet resolves a link atom against the topology.
func (p *parser) resolveLinkSet(fromRouter, fromIfc, toRouter, toIfc string) (*nfa.Set, string, error) {
	g := p.net.Topo
	set := nfa.NewSet(g.NumLinks())
	var from, to topology.RouterID = topology.NoRouter, topology.NoRouter
	if fromRouter != "." {
		from = g.RouterByName(fromRouter)
		if from == topology.NoRouter {
			return nil, "", p.errf("unknown router %q", fromRouter)
		}
	}
	if toRouter != "." {
		to = g.RouterByName(toRouter)
		if to == topology.NoRouter {
			return nil, "", p.errf("unknown router %q", toRouter)
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := topology.LinkID(i)
		lk := g.Links[l]
		if from != topology.NoRouter && lk.From != from {
			continue
		}
		if to != topology.NoRouter && lk.To != to {
			continue
		}
		if fromIfc != "" && lk.FromIfc != fromIfc {
			continue
		}
		if toIfc != "" && lk.ToIfc != toIfc {
			continue
		}
		set.Add(LinkSym(l))
	}
	name := sideName(fromRouter, fromIfc) + "#" + sideName(toRouter, toIfc)
	return set, name, nil
}

func sideName(router, ifc string) string {
	if ifc != "" {
		return router + "." + ifc
	}
	return router
}
