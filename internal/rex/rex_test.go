package rex

import (
	"testing"
	"testing/quick"

	"aalwines/internal/nfa"
)

// Universe {0,1,2} with handy atoms.
const U = 3

func atom(syms ...nfa.Sym) Atom { return Atom{Set: nfa.SetOf(U, syms...), Name: "a"} }

func accepts(t *testing.T, n Node, w []nfa.Sym) bool {
	t.Helper()
	return Compile(n, U).Accepts(w)
}

func TestAtom(t *testing.T) {
	n := atom(1)
	if !accepts(t, n, []nfa.Sym{1}) {
		t.Error("atom rejects its symbol")
	}
	if accepts(t, n, []nfa.Sym{0}) || accepts(t, n, nil) || accepts(t, n, []nfa.Sym{1, 1}) {
		t.Error("atom accepts wrong words")
	}
}

func TestEpsAndEmpty(t *testing.T) {
	if !accepts(t, Eps{}, nil) || accepts(t, Eps{}, []nfa.Sym{0}) {
		t.Error("Eps wrong")
	}
	if accepts(t, Empty{}, nil) || accepts(t, Empty{}, []nfa.Sym{0}) {
		t.Error("Empty accepts something")
	}
}

func TestConcatUnion(t *testing.T) {
	n := Concat{Parts: []Node{atom(0), Union{Parts: []Node{atom(1), atom(2)}}}}
	for _, c := range []struct {
		w    []nfa.Sym
		want bool
	}{
		{[]nfa.Sym{0, 1}, true},
		{[]nfa.Sym{0, 2}, true},
		{[]nfa.Sym{0, 0}, false},
		{[]nfa.Sym{1}, false},
		{[]nfa.Sym{0, 1, 2}, false},
	} {
		if got := accepts(t, n, c.w); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestStarPlusOpt(t *testing.T) {
	star := Star{X: atom(0)}
	plus := Plus{X: atom(0)}
	opt := Opt{X: atom(0)}
	type tc struct {
		n    Node
		w    []nfa.Sym
		want bool
	}
	for _, c := range []tc{
		{star, nil, true},
		{star, []nfa.Sym{0, 0, 0}, true},
		{star, []nfa.Sym{1}, false},
		{plus, nil, false},
		{plus, []nfa.Sym{0}, true},
		{plus, []nfa.Sym{0, 0}, true},
		{opt, nil, true},
		{opt, []nfa.Sym{0}, true},
		{opt, []nfa.Sym{0, 0}, false},
	} {
		if got := Compile(c.n, U).Accepts(c.w); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.n, c.w, got, c.want)
		}
	}
}

func TestNotSingleSymbol(t *testing.T) {
	// ^a over one-symbol words: in the query language ^[v#u] is used as
	// "any single link except"; here Not complements the whole language, so
	// combine with a length-1 constraint: Not(atom(0)) accepts ε, "1", "00"…
	n := Not{X: atom(0)}
	if accepts(t, n, []nfa.Sym{0}) {
		t.Error("Not accepts excluded word")
	}
	for _, w := range [][]nfa.Sym{nil, {1}, {2}, {0, 0}, {1, 0}} {
		if !accepts(t, n, w) {
			t.Errorf("Not rejects %v", w)
		}
	}
}

func TestNotComposes(t *testing.T) {
	// (^a)* where ^ is complement-within-length-1 is how the parser builds
	// [^x#y]*; here emulate via Atom complement set.
	notA := Atom{Set: nfa.SetOf(U, 0).Complement()}
	n := Star{X: notA}
	if !accepts(t, n, []nfa.Sym{1, 2, 1}) {
		t.Error("rejects word without 0")
	}
	if accepts(t, n, []nfa.Sym{1, 0}) {
		t.Error("accepts word containing 0")
	}
}

func TestNestedNot(t *testing.T) {
	// ^(^(a)) == language of a.
	n := Not{X: Not{X: atom(0)}}
	if !accepts(t, n, []nfa.Sym{0}) {
		t.Error("double Not rejects a")
	}
	if accepts(t, n, []nfa.Sym{1}) || accepts(t, n, nil) {
		t.Error("double Not accepts non-a")
	}
}

func TestNotInsideConcat(t *testing.T) {
	// a (^(b)) : second component is any word except exactly "1".
	n := Concat{Parts: []Node{atom(0), Not{X: atom(1)}}}
	if !accepts(t, n, []nfa.Sym{0}) { // "" after a: ok, ε ≠ "1"
		t.Error("rejects a·ε")
	}
	if !accepts(t, n, []nfa.Sym{0, 2}) || !accepts(t, n, []nfa.Sym{0, 1, 1}) {
		t.Error("rejects allowed suffixes")
	}
	if accepts(t, n, []nfa.Sym{0, 1}) {
		t.Error("accepts excluded suffix")
	}
}

func TestEmptyConcatIsEps(t *testing.T) {
	if !accepts(t, Concat{}, nil) {
		t.Error("empty Concat rejects ε")
	}
	if accepts(t, Union{}, nil) {
		t.Error("empty Union accepts ε")
	}
}

func TestAnyAtom(t *testing.T) {
	n := AnyAtom(U)
	for s := nfa.Sym(0); s < U; s++ {
		if !accepts(t, n, []nfa.Sym{s}) {
			t.Errorf("AnyAtom rejects %d", s)
		}
	}
	if accepts(t, n, nil) {
		t.Error("AnyAtom accepts ε")
	}
	if n.String() != "." {
		t.Errorf("AnyAtom String = %q", n.String())
	}
}

func TestStrings(t *testing.T) {
	n := Concat{Parts: []Node{
		Atom{Set: nfa.SetOf(U, 0), Name: "a"},
		Star{X: Atom{Set: nfa.SetOf(U, 1), Name: "b"}},
		Not{X: Atom{Set: nfa.SetOf(U, 2), Name: "c"}},
	}}
	if got := n.String(); got != "a b* ^c" {
		t.Errorf("String = %q", got)
	}
	if (Union{Parts: []Node{Eps{}, Empty{}}}).String() != "(ε|∅)" {
		t.Error("Union String wrong")
	}
}

// Property: Star idempotence (w ∈ L((x*)*) ⇔ w ∈ L(x*)) on random words.
func TestStarIdempotentProperty(t *testing.T) {
	inner := Union{Parts: []Node{atom(0), Concat{Parts: []Node{atom(1), atom(2)}}}}
	a1 := Compile(Star{X: inner}, U)
	a2 := Compile(Star{X: Star{X: inner}}, U)
	f := func(raw []uint8) bool {
		w := make([]nfa.Sym, len(raw))
		for i, r := range raw {
			w[i] = nfa.Sym(r) % U
		}
		return a1.Accepts(w) == a2.Accepts(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: complement really is language complement on random words.
func TestNotIsComplementProperty(t *testing.T) {
	inner := Concat{Parts: []Node{atom(0), Star{X: atom(1)}}}
	pos := Compile(inner, U)
	neg := Compile(Not{X: inner}, U)
	f := func(raw []uint8) bool {
		w := make([]nfa.Sym, len(raw))
		for i, r := range raw {
			w[i] = nfa.Sym(r) % U
		}
		return pos.Accepts(w) != neg.Accepts(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeat(t *testing.T) {
	type tc struct {
		n    Node
		w    []nfa.Sym
		want bool
	}
	r12 := Repeat{X: atom(0), Min: 1, Max: 2}
	r2u := Repeat{X: atom(0), Min: 2, Max: -1}
	r0 := Repeat{X: atom(0), Min: 0, Max: 0}
	for _, c := range []tc{
		{r12, nil, false},
		{r12, []nfa.Sym{0}, true},
		{r12, []nfa.Sym{0, 0}, true},
		{r12, []nfa.Sym{0, 0, 0}, false},
		{r2u, []nfa.Sym{0}, false},
		{r2u, []nfa.Sym{0, 0}, true},
		{r2u, []nfa.Sym{0, 0, 0, 0}, true},
		{r0, nil, true},
		{r0, []nfa.Sym{0}, false},
	} {
		if got := Compile(c.n, U).Accepts(c.w); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.n, c.w, got, c.want)
		}
	}
	if r12.String() != "a{1,2}" || r2u.String() != "a{2,}" ||
		(Repeat{X: atom(0), Min: 3, Max: 3}).String() != "a{3}" {
		t.Errorf("Repeat String: %s %s", r12, r2u)
	}
}
