// Package rex defines the regular expression AST shared by the two halves
// of the AalWiNes query language — label expressions over L and link
// expressions over E — and compiles it to the symbol-set NFAs of
// internal/nfa via Thompson's construction. Complement (the ^ operator of
// the query language) is compiled by determinising the operand.
package rex

import (
	"fmt"
	"strings"

	"aalwines/internal/nfa"
)

// Node is a regular expression tree node.
type Node interface {
	fmt.Stringer
	isNode()
}

// Empty denotes the empty language ∅.
type Empty struct{}

// Eps denotes the language {ε}.
type Eps struct{}

// Atom matches exactly one symbol from Set. Name is the surface syntax that
// produced the atom; it is used only for diagnostics.
type Atom struct {
	Set  *nfa.Set
	Name string
}

// Concat matches the concatenation of its parts.
type Concat struct{ Parts []Node }

// Union matches the union (alternation) of its parts.
type Union struct{ Parts []Node }

// Star matches zero or more repetitions of X.
type Star struct{ X Node }

// Plus matches one or more repetitions of X.
type Plus struct{ X Node }

// Opt matches zero or one occurrence of X.
type Opt struct{ X Node }

// Not matches the complement of X's language over the full universe.
type Not struct{ X Node }

// Repeat matches between Min and Max repetitions of X; Max < 0 means
// unbounded ("{n,}"). It extends the paper's query language (listed there
// as future work on expressiveness).
type Repeat struct {
	X        Node
	Min, Max int
}

func (Empty) isNode()  {}
func (Eps) isNode()    {}
func (Atom) isNode()   {}
func (Concat) isNode() {}
func (Union) isNode()  {}
func (Star) isNode()   {}
func (Plus) isNode()   {}
func (Opt) isNode()    {}
func (Not) isNode()    {}
func (Repeat) isNode() {}

func (Empty) String() string { return "∅" }
func (Eps) String() string   { return "ε" }
func (a Atom) String() string {
	if a.Name != "" {
		return a.Name
	}
	return fmt.Sprintf("{%d syms}", a.Set.Len())
}
func (c Concat) String() string { return joinNodes(c.Parts, " ") }
func (u Union) String() string  { return "(" + joinNodes(u.Parts, "|") + ")" }
func (s Star) String() string   { return group(s.X) + "*" }
func (p Plus) String() string   { return group(p.X) + "+" }
func (o Opt) String() string    { return group(o.X) + "?" }
func (n Not) String() string    { return "^" + group(n.X) }
func (r Repeat) String() string {
	if r.Max < 0 {
		return fmt.Sprintf("%s{%d,}", group(r.X), r.Min)
	}
	if r.Min == r.Max {
		return fmt.Sprintf("%s{%d}", group(r.X), r.Min)
	}
	return fmt.Sprintf("%s{%d,%d}", group(r.X), r.Min, r.Max)
}

func joinNodes(ns []Node, sep string) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.String()
	}
	return strings.Join(parts, sep)
}

func group(n Node) string {
	switch n.(type) {
	case Atom, Eps, Empty:
		return n.String()
	default:
		return "(" + n.String() + ")"
	}
}

// Compile translates a regular expression into an NFA over the given symbol
// universe using Thompson's construction; Not subtrees are compiled by
// determinisation and complementation, then spliced in.
func Compile(n Node, universe int) *nfa.NFA {
	a := nfa.New(universe)
	fin := a.AddState()
	compileInto(n, a, a.Start(), fin, universe)
	a.SetAccept(fin, true)
	return a
}

// compileInto builds n between states from and to of a.
func compileInto(n Node, a *nfa.NFA, from, to nfa.State, universe int) {
	switch x := n.(type) {
	case Empty:
		// no transition: dead
	case Eps:
		a.AddEps(from, to)
	case Atom:
		a.AddArc(from, x.Set, to)
	case Concat:
		if len(x.Parts) == 0 {
			a.AddEps(from, to)
			return
		}
		cur := from
		for i, p := range x.Parts {
			next := to
			if i < len(x.Parts)-1 {
				next = a.AddState()
			}
			compileInto(p, a, cur, next, universe)
			cur = next
		}
	case Union:
		if len(x.Parts) == 0 {
			return // empty union = ∅
		}
		for _, p := range x.Parts {
			compileInto(p, a, from, to, universe)
		}
	case Star:
		mid := a.AddState()
		a.AddEps(from, mid)
		a.AddEps(mid, to)
		inner := a.AddState()
		a.AddEps(mid, inner)
		compileInto(x.X, a, inner, mid, universe)
	case Plus:
		compileInto(Concat{Parts: []Node{x.X, Star{X: x.X}}}, a, from, to, universe)
	case Opt:
		a.AddEps(from, to)
		compileInto(x.X, a, from, to, universe)
	case Repeat:
		var parts []Node
		for i := 0; i < x.Min; i++ {
			parts = append(parts, x.X)
		}
		if x.Max < 0 {
			parts = append(parts, Star{X: x.X})
		} else {
			for i := x.Min; i < x.Max; i++ {
				parts = append(parts, Opt{X: x.X})
			}
		}
		compileInto(Concat{Parts: parts}, a, from, to, universe)
	case Not:
		sub := Compile(x.X, universe).Complement()
		splice(sub, a, from, to)
	default:
		panic(fmt.Sprintf("rex: unknown node type %T", n))
	}
}

// splice copies automaton sub into a, identifying sub's start with from and
// routing acceptance to to via epsilon transitions.
func splice(sub *nfa.NFA, a *nfa.NFA, from, to nfa.State) {
	m := make([]nfa.State, sub.NumStates())
	for s := 0; s < sub.NumStates(); s++ {
		if s == sub.Start() {
			m[s] = from
		} else {
			m[s] = a.AddState()
		}
	}
	for s := 0; s < sub.NumStates(); s++ {
		for _, arc := range sub.Arcs(s) {
			a.AddArc(m[s], arc.Set, m[arc.To])
		}
		if sub.Accepting(s) {
			a.AddEps(m[s], to)
		}
	}
}

// AnyAtom returns an atom matching every symbol of the universe (the "."
// of the query language).
func AnyAtom(universe int) Atom {
	return Atom{Set: nfa.FullSet(universe), Name: "."}
}
