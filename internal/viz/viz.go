// Package viz renders topologies and witness traces as Graphviz DOT — the
// library-level stand-in for the paper's browser GUI, which visualises the
// network map and highlights the discovered witness trace with the
// operations performed at each router.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// Options control the rendering.
type Options struct {
	// Trace highlights a witness trace: its links are drawn bold/red and
	// annotated with the packet header after each hop.
	Trace network.Trace
	// Failed marks links assumed failed (drawn dashed/grey).
	Failed network.FailedSet
	// HideStubs omits external stub routers (names starting with "X-") and
	// their links unless the trace uses them.
	HideStubs bool
}

// WriteDOT renders the network (and optional witness overlay) as a DOT
// digraph.
func WriteDOT(w io.Writer, net *network.Network, opts Options) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", net.Name)
	fmt.Fprintf(bw, "  rankdir=LR;\n  node [shape=ellipse, fontname=\"Helvetica\"];\n  edge [fontname=\"Helvetica\", fontsize=10];\n")

	onTrace := map[topology.LinkID]int{} // link -> 1-based step index
	usedRouter := map[topology.RouterID]bool{}
	for i, s := range opts.Trace {
		onTrace[s.Link] = i + 1
		usedRouter[net.Topo.Source(s.Link)] = true
		usedRouter[net.Topo.Target(s.Link)] = true
	}

	hidden := map[topology.RouterID]bool{}
	for i := range net.Topo.Routers {
		r := &net.Topo.Routers[i]
		if opts.HideStubs && strings.HasPrefix(r.Name, "X-") && !usedRouter[r.ID] {
			hidden[r.ID] = true
			continue
		}
		attrs := []string{fmt.Sprintf("label=%q", r.Name)}
		if usedRouter[r.ID] {
			attrs = append(attrs, "style=filled", "fillcolor=\"#ffe0b0\"")
		}
		if r.HasLoc {
			attrs = append(attrs, fmt.Sprintf("tooltip=\"%.2f,%.2f\"", r.Lat, r.Lng))
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", r.ID, strings.Join(attrs, ", "))
	}

	for i := 0; i < net.Topo.NumLinks(); i++ {
		l := net.Topo.Links[i]
		if hidden[l.From] || hidden[l.To] {
			continue
		}
		var attrs []string
		if step, ok := onTrace[l.ID]; ok {
			hdr := opts.Trace[step-1].Header.Format(net.Labels)
			attrs = append(attrs,
				"color=red", "penwidth=2.2",
				fmt.Sprintf("label=\"%d: %s\"", step, escape(hdr)))
		} else if opts.Failed != nil && opts.Failed[l.ID] {
			attrs = append(attrs, "style=dashed", "color=gray",
				"label=\"failed\"")
		} else {
			attrs = append(attrs, "color=\"#999999\"")
		}
		if l.FromIfc != "" {
			attrs = append(attrs, fmt.Sprintf("tooltip=%q", net.Topo.LinkName(l.ID)))
		}
		fmt.Fprintf(bw, "  n%d -> n%d [%s];\n", l.From, l.To, strings.Join(attrs, ", "))
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// escape makes a header string safe inside a DOT double-quoted label.
func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
