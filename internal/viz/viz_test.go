package viz_test

import (
	"bytes"
	"strings"
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/viz"
)

func TestWriteDOTPlain(t *testing.T) {
	re := gen.RunningExample()
	var buf bytes.Buffer
	if err := viz.WriteDOT(&buf, re.Network, viz.Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	// 7 routers, 8 links.
	if got := strings.Count(out, "->"); got != 8 {
		t.Fatalf("edges = %d, want 8", got)
	}
	if !strings.Contains(out, `label="v0"`) {
		t.Error("router label missing")
	}
}

func TestWriteDOTWithWitness(t *testing.T) {
	re := gen.RunningExample()
	res, err := engine.VerifyText(re.Network, "<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatal("expected satisfied")
	}
	var buf bytes.Buffer
	err = viz.WriteDOT(&buf, re.Network, viz.Options{Trace: res.Trace, Failed: res.Failed})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "color=red") != len(res.Trace) {
		t.Errorf("highlighted edges != trace length:\n%s", out)
	}
	if !strings.Contains(out, "failed") {
		t.Error("failed link not marked")
	}
	// Step labels carry headers.
	if !strings.Contains(out, "s21") {
		t.Error("header annotation missing")
	}
}

func TestHideStubs(t *testing.T) {
	s := gen.Zoo(gen.ZooOpts{Routers: 12, Seed: 1, Protection: false})
	var all, hidden bytes.Buffer
	if err := viz.WriteDOT(&all, s.Net, viz.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := viz.WriteDOT(&hidden, s.Net, viz.Options{HideStubs: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(all.String(), "X-") {
		t.Fatal("stubs missing from full render")
	}
	if strings.Contains(hidden.String(), "X-") {
		t.Fatal("stubs present despite HideStubs")
	}
	if strings.Count(hidden.String(), "->") >= strings.Count(all.String(), "->") {
		t.Error("HideStubs did not drop stub links")
	}
}
