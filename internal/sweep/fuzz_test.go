package sweep

import (
	"fmt"
	"reflect"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/scenario"
	"aalwines/internal/topology"
)

// FuzzSweepEnumerate drives the enumeration over randomly generated zoo
// networks and failure-space restrictions, asserting the properties every
// sweep depends on: the scenario count is exactly C(n,1) (+ C(n,2) at
// depth 2) for n live links, no failure set appears twice, a second
// enumeration is structurally identical, and every emitted scenario
// compiles into a delta stack that applies cleanly — in particular no
// delta ever references an excluded (drained-router) or nonexistent link.
func FuzzSweepEnumerate(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(2), uint8(0))
	f.Add(int64(7), uint8(10), uint8(1), uint8(3))
	f.Add(int64(42), uint8(4), uint8(2), uint8(255))
	f.Add(int64(-3), uint8(15), uint8(1), uint8(1))

	f.Fuzz(func(t *testing.T, seed int64, routers, depth, drain uint8) {
		nr := 4 + int(routers%12)
		d := 1 + int(depth%2)
		syn := gen.Zoo(gen.ZooOpts{Routers: nr, Seed: seed, Protection: true})
		g := syn.Net.Topo

		// Odd drain selectors exclude one router's incident links, modelling
		// a sweep over a base what-if state where that router is drained.
		excluded := map[topology.LinkID]bool{}
		var exclude func(topology.LinkID) bool
		if drain%2 == 1 {
			dr := topology.RouterID(int(drain) % g.NumRouters())
			for _, l := range g.Routers[dr].Out() {
				excluded[l] = true
			}
			for _, l := range g.Routers[dr].In() {
				excluded[l] = true
			}
			exclude = func(l topology.LinkID) bool { return excluded[l] }
		}
		live := 0
		for l := 0; l < g.NumLinks(); l++ {
			if !excluded[topology.LinkID(l)] {
				live++
			}
		}

		scs, err := Enumerate(g, d, exclude)
		if err != nil {
			t.Fatal(err)
		}
		want := live
		if d == 2 {
			want += live * (live - 1) / 2
		}
		if len(scs) != want {
			t.Fatalf("%d scenarios for %d live links at depth %d, want %d", len(scs), live, d, want)
		}
		seen := map[string]bool{}
		for i, sc := range scs {
			if sc.ID != i {
				t.Fatalf("scenario %d carries ID %d", i, sc.ID)
			}
			for j, l := range sc.Links {
				if l < 0 || int(l) >= g.NumLinks() {
					t.Fatalf("scenario %d references nonexistent link %d", i, l)
				}
				if excluded[l] {
					t.Fatalf("scenario %d references excluded link %d", i, l)
				}
				if j > 0 && sc.Links[j-1] >= l {
					t.Fatalf("scenario %d links not strictly ascending: %v", i, sc.Links)
				}
			}
			k := fmt.Sprint(sc.Links)
			if seen[k] {
				t.Fatalf("duplicate failure set %v", sc.Links)
			}
			seen[k] = true
		}

		again, err := Enumerate(g, d, exclude)
		if err != nil || !reflect.DeepEqual(scs, again) {
			t.Fatalf("enumeration not deterministic (err %v)", err)
		}

		// A sample of scenarios must compile to delta stacks a session
		// accepts; SetStack validates every delta against the base network.
		s := scenario.NewSession(syn.Net)
		defer s.Close()
		step := len(scs)/64 + 1
		for i := 0; i < len(scs); i += step {
			if _, err := s.SetStack(scs[i].Deltas(g)); err != nil {
				t.Fatalf("scenario %v does not apply: %v", scs[i].Links, err)
			}
		}
	})
}
