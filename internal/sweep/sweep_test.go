package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/topology"
)

// tinyGraph is a 3-router line with a parallel link: 4 directed links, so
// the enumeration counts are easy to eyeball (4 singles, 6 pairs).
func tinyGraph() *topology.Graph {
	g := topology.New()
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	c := g.AddRouter("c")
	g.MustAddLink(a, b, "o0", "i0", 1)
	g.MustAddLink(a, b, "o1", "i1", 1) // parallel
	g.MustAddLink(b, c, "o2", "i2", 1)
	g.MustAddLink(c, a, "o3", "i3", 1)
	return g
}

func TestEnumerate(t *testing.T) {
	g := tinyGraph()

	scs, err := Enumerate(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("depth 1: %d scenarios, want 4", len(scs))
	}
	for i, sc := range scs {
		if sc.ID != i || len(sc.Links) != 1 || sc.Links[0] != topology.LinkID(i) {
			t.Fatalf("depth 1 scenario %d = %+v", i, sc)
		}
	}

	scs, err = Enumerate(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4+6 {
		t.Fatalf("depth 2: %d scenarios, want 10", len(scs))
	}
	wantPairs := [][2]topology.LinkID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i, p := range wantPairs {
		sc := scs[4+i]
		if sc.ID != 4+i || len(sc.Links) != 2 || sc.Links[0] != p[0] || sc.Links[1] != p[1] {
			t.Fatalf("pair %d = %+v, want %v", i, sc, p)
		}
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		k := fmt.Sprint(sc.Links)
		if seen[k] {
			t.Fatalf("duplicate scenario %v", sc.Links)
		}
		seen[k] = true
	}

	// Determinism: a second enumeration is structurally identical.
	again, err := Enumerate(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scs, again) {
		t.Fatal("enumeration is not deterministic")
	}

	// Exclusion drops the link from singles and pairs alike.
	scs, err = Enumerate(g, 2, func(l topology.LinkID) bool { return l == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3+3 {
		t.Fatalf("excluded depth 2: %d scenarios, want 6", len(scs))
	}
	for _, sc := range scs {
		for _, l := range sc.Links {
			if l == 1 {
				t.Fatalf("scenario %v references the excluded link", sc.Links)
			}
		}
	}

	for _, depth := range []int{0, 3, -1} {
		if _, err := Enumerate(g, depth, nil); err == nil {
			t.Errorf("Enumerate depth %d succeeded, want error", depth)
		}
	}
}

func TestErrCode(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{fmt.Errorf("wrap: %w", engine.ErrBudget), "budget-exhausted"},
		{context.DeadlineExceeded, "deadline-exceeded"},
		{context.Canceled, "cancelled"},
		{errors.New("boom"), "query-error"},
	} {
		if got := errCode(tc.err); got != tc.want {
			t.Errorf("errCode(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

var runningExampleInvariants = []string{
	// Delivery through the v0→v2 tunnel head: at v2 the primary next hop is
	// e4 with e5 as priority-2 protection, so neither single failure breaks
	// this but the {e4, e5} pair is a minimal breaking set.
	"<ip> [.#v0] [v0#v2] .* [v3#.] <ip> 0",
	"<ip> [.#v0] .* [v3#.] <ip> 0",
}

func TestSweepRunningExample(t *testing.T) {
	re := gen.RunningExample()
	var streamed []CellResult
	cfg := Config{
		Depth:        2,
		Invariants:   runningExampleInvariants,
		Workers:      4,
		IncludeCells: true,
		OnCell:       func(c CellResult) { streamed = append(streamed, c) },
	}
	res, err := Run(context.Background(), re.Network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := &res.Report

	links := re.Network.Topo.NumLinks() // 8
	wantScen := links + links*(links-1)/2
	if rep.Links != links || rep.Scenarios != wantScen || rep.CellsTotal != wantScen*2 {
		t.Fatalf("report sizing: links=%d scenarios=%d cells=%d, want %d/%d/%d",
			rep.Links, rep.Scenarios, rep.CellsTotal, links, wantScen, wantScen*2)
	}
	if rep.Incomplete || rep.CellsIncomplete != 0 {
		t.Fatalf("complete sweep marked incomplete: %+v", rep)
	}
	if len(rep.Cells) != rep.CellsTotal {
		t.Fatalf("IncludeCells: %d cells embedded, want %d", len(rep.Cells), rep.CellsTotal)
	}
	if len(streamed) != rep.CellsTotal {
		t.Fatalf("OnCell fired %d times, want %d", len(streamed), rep.CellsTotal)
	}
	seen := map[[2]int]bool{}
	for _, c := range streamed {
		k := [2]int{c.Scenario, c.Invariant}
		if seen[k] {
			t.Fatalf("cell (%d,%d) streamed twice", c.Scenario, c.Invariant)
		}
		seen[k] = true
	}

	if len(rep.Invariants) != 2 || len(res.Baseline) != 2 {
		t.Fatalf("invariant aggregation: %d reports, %d baselines", len(rep.Invariants), len(res.Baseline))
	}
	for qi, inv := range rep.Invariants {
		total := inv.Errors
		for _, n := range inv.Verdicts {
			total += n
		}
		if total != wantScen {
			t.Fatalf("invariant %d: verdicts+errors = %d, want %d", qi, total, wantScen)
		}
		// Recompute the breaking analysis from the raw grid and require the
		// aggregate to agree with it.
		base := outcome(res.Baseline[qi].Res, res.Baseline[qi].Err)
		if inv.Baseline != base {
			t.Fatalf("invariant %d: baseline %q vs %q", qi, inv.Baseline, base)
		}
		breaking := 0
		singleBreak := map[topology.LinkID]bool{}
		for _, c := range res.Cells {
			if c.Invariant != qi {
				continue
			}
			if outcome(c.Res, c.Err) != base {
				breaking++
				if len(c.Links) == 1 {
					singleBreak[c.Links[0]] = true
				}
			}
		}
		if inv.Breaking != breaking {
			t.Fatalf("invariant %d: breaking %d, want %d", qi, inv.Breaking, breaking)
		}
		// Minimality: a reported pair must break while both its singles hold.
		g := re.Network.Topo
		nameToLink := map[string]topology.LinkID{}
		for l := 0; l < g.NumLinks(); l++ {
			nameToLink[g.LinkName(topology.LinkID(l))] = topology.LinkID(l)
		}
		for _, set := range inv.MinimalBreaking {
			for _, name := range set {
				l, ok := nameToLink[name]
				if !ok {
					t.Fatalf("invariant %d: unknown link %q in minimal set", qi, name)
				}
				if len(set) == 2 && singleBreak[l] {
					t.Fatalf("invariant %d: pair %v not minimal (%q breaks alone)", qi, set, name)
				}
			}
		}
	}

	// The tunnel invariant must be broken by the e4+e5 double failure (both
	// next hops out of v2 gone) — the walkthrough's headline example.
	trans := rep.Invariants[0]
	e4 := re.Network.Topo.LinkName(re.Links["e4"])
	e5 := re.Network.Topo.LinkName(re.Links["e5"])
	found := false
	for _, set := range trans.MinimalBreaking {
		if len(set) == 2 &&
			((set[0] == e4 && set[1] == e5) || (set[0] == e5 && set[1] == e4)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("e4+e5 not reported as a minimal breaking pair; got %v", trans.MinimalBreaking)
	}

	if rep.Cache.Gets == 0 || rep.Cache.BlocksReused == 0 {
		t.Fatalf("no cache activity recorded: %+v", rep.Cache)
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sweep:", "invariant:", "breaking:", "cache:", "latency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestSweepConfigErrors(t *testing.T) {
	re := gen.RunningExample()
	ctx := context.Background()
	cases := []Config{
		{Depth: 1}, // no invariants
		{Depth: 1, Invariants: []string{"not a query"}},                                                       // parse error
		{Depth: 3, Invariants: runningExampleInvariants},                                                      // bad depth
		{Depth: 1, Invariants: runningExampleInvariants, Exclude: func(topology.LinkID) bool { return true }}, // empty space
	}
	for i, cfg := range cases {
		if _, err := Run(ctx, re.Network, cfg); err == nil {
			t.Errorf("case %d: Run succeeded, want error", i)
		}
	}
}

// TestSweepCancellation cancels the sweep from the first completed cell's
// callback: the partial report must mark exactly the never-run cells
// incomplete, keep the completed verdicts, and leave no worker goroutines
// behind.
func TestSweepCancellation(t *testing.T) {
	re := gen.RunningExample()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	cfg := Config{
		Depth:      2,
		Invariants: runningExampleInvariants,
		Workers:    2,
		OnCell: func(CellResult) {
			fired++
			cancel()
		},
	}
	res, err := Run(ctx, re.Network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := &res.Report
	if !rep.Incomplete || rep.CellsIncomplete == 0 {
		t.Fatalf("cancelled sweep not marked incomplete: %+v", rep)
	}
	if rep.CellsIncomplete >= rep.CellsTotal {
		t.Fatalf("no cell completed before cancellation: %+v", rep)
	}
	done, incomplete := 0, 0
	for _, c := range res.Cells {
		if c.Incomplete {
			incomplete++
			if !errors.Is(c.Err, context.Canceled) {
				t.Fatalf("incomplete cell (%d,%d) has err %v", c.Scenario, c.Invariant, c.Err)
			}
		} else {
			done++
			if c.Err != nil {
				t.Fatalf("completed cell (%d,%d) has err %v", c.Scenario, c.Invariant, c.Err)
			}
		}
	}
	if incomplete != rep.CellsIncomplete || done+incomplete != rep.CellsTotal {
		t.Fatalf("cell accounting: %d done + %d incomplete vs report %+v", done, incomplete, rep)
	}
	// Incomplete cells contribute to the per-invariant tally, not verdicts.
	sumInc := 0
	for _, inv := range rep.Invariants {
		sumInc += inv.Incomplete
	}
	if sumInc != rep.CellsIncomplete {
		t.Fatalf("per-invariant incomplete sum %d != %d", sumInc, rep.CellsIncomplete)
	}

	// All pool goroutines must be joined by the time Run returns.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepBudgetIsPerCell: an exhausted per-cell engine budget is a
// completed outcome ("error:budget-exhausted"), not incompleteness — and
// since the baseline blows the same budget, it is not breaking either.
func TestSweepBudgetIsPerCell(t *testing.T) {
	re := gen.RunningExample()
	cfg := Config{
		Depth:      1,
		Invariants: runningExampleInvariants[:1],
		Workers:    2,
		Engine:     engine.Options{Budget: 1},
	}
	res, err := Run(context.Background(), re.Network, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Incomplete {
		t.Fatalf("budget-exhausted cells must not mark the sweep incomplete: %+v", res.Report)
	}
	inv := res.Report.Invariants[0]
	if inv.Errors != res.Report.Scenarios {
		t.Fatalf("want every cell budget-exhausted, got %d/%d errors", inv.Errors, res.Report.Scenarios)
	}
	if inv.Baseline != "error:budget-exhausted" {
		t.Fatalf("baseline outcome %q", inv.Baseline)
	}
	if inv.Breaking != 0 {
		t.Fatalf("uniformly budget-exhausted sweep reports %d breaking scenarios", inv.Breaking)
	}
}
