// Package sweep turns the paper's ≤k-failure query semantics inside out
// into a bulk workload: instead of asking "does the invariant survive up to
// k failures?" for one query, it enumerates the network's entire single-
// and double-link failure space, verifies every invariant in every
// scenario, and aggregates which concrete failure sets break which
// invariants — a resilience audit of the whole dataplane.
//
// Enumeration is deterministic and duplicate-free: all single-link
// scenarios in link-ID order, then (depth 2) all unordered pairs in
// lexicographic (i, j) order. The order is chosen for cache locality, not
// just reproducibility: neighbouring scenarios share all but one failed
// link, so the per-router version hashes of a scenario session change for
// at most two routers between steps and the incremental translation cache
// (translate.SessionCache) re-emits only those routers' rule blocks.
// Scheduling preserves that locality — the scenario list is split into
// contiguous chunks, one long-lived scenario.Session per worker, and each
// scenario's invariant batch runs on the session's batch pool. Verdicts
// are byte-identical to verifying each failure set through an independent
// fresh session (see diff_test.go); a sweep is a reporting layer, never a
// different semantics.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/query"
	"aalwines/internal/scenario"
	"aalwines/internal/topology"
)

var (
	mRuns            = obs.GetCounter("sweep_runs_total")
	mScenarios       = obs.GetCounter("sweep_scenarios_total")
	mCells           = obs.GetCounter("sweep_cells_total")
	mCellsIncomplete = obs.GetCounter("sweep_cells_incomplete_total")
	mCellSeconds     = obs.GetHistogram("sweep_cell_seconds", nil)
)

// Scenario is one failure set of the sweep: the links failed together, in
// ascending link-ID order.
type Scenario struct {
	// ID is the scenario's position in enumeration order.
	ID int
	// Links are the failed links, ascending; length 1 or 2.
	Links []topology.LinkID
}

// Deltas compiles the failure set into the delta stack a scenario session
// applies: one fail command per link, in Links order.
func (sc Scenario) Deltas(g *topology.Graph) []scenario.Delta {
	ds := make([]scenario.Delta, len(sc.Links))
	for i, l := range sc.Links {
		ds[i] = scenario.Delta{Kind: scenario.FailLink, Link: g.LinkName(l)}
	}
	return ds
}

// LinkNames renders the failure set's links in the query language's link
// syntax.
func (sc Scenario) LinkNames(g *topology.Graph) []string {
	names := make([]string, len(sc.Links))
	for i, l := range sc.Links {
		names[i] = g.LinkName(l)
	}
	return names
}

// Enumerate lists the failure scenarios of the graph's live links — every
// link for which exclude (nil = none) returns false. Depth 1 yields the
// C(n,1) single-link scenarios in link-ID order; depth 2 appends the
// C(n,2) unordered pairs in lexicographic (i, j) order, i < j, so the
// whole space is covered exactly once and consecutive pair scenarios share
// their first link (the cache-locality property the scheduler relies on).
func Enumerate(g *topology.Graph, depth int, exclude func(topology.LinkID) bool) ([]Scenario, error) {
	if depth < 1 || depth > 2 {
		return nil, fmt.Errorf("sweep: depth %d out of range (want 1 or 2)", depth)
	}
	var live []topology.LinkID
	for l := 0; l < g.NumLinks(); l++ {
		if id := topology.LinkID(l); exclude == nil || !exclude(id) {
			live = append(live, id)
		}
	}
	n := len(live)
	total := n
	if depth == 2 {
		total += n * (n - 1) / 2
	}
	scs := make([]Scenario, 0, total)
	for _, l := range live {
		scs = append(scs, Scenario{ID: len(scs), Links: []topology.LinkID{l}})
	}
	if depth == 2 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				scs = append(scs, Scenario{ID: len(scs), Links: []topology.LinkID{live[i], live[j]}})
			}
		}
	}
	return scs, nil
}

// Config configures one sweep run.
type Config struct {
	// Depth selects the failure space: 1 = single links, 2 = singles plus
	// all unordered pairs.
	Depth int
	// Invariants are the query texts verified in every scenario. They are
	// parsed up front; a malformed invariant fails the sweep, not every
	// cell.
	Invariants []string
	// Workers bounds scenario-level parallelism (0 = GOMAXPROCS). Each
	// worker owns one scenario session and a contiguous chunk of the
	// enumeration order.
	Workers int
	// Engine is the per-cell engine configuration (budget, weights,
	// reductions). Its Cache field is managed by the sweep's sessions.
	Engine engine.Options
	// Timeout is the per-cell wall-clock deadline (0 = none); an expired
	// deadline is that cell's outcome, not a sweep abort.
	Timeout time.Duration
	// NoCache disables cross-scenario translation reuse: every scenario is
	// verified through a fresh scenario session. The differential harness
	// runs both modes; production sweeps want the default.
	NoCache bool
	// Exclude drops links from the enumerated failure space (nil = none) —
	// e.g. links already failed or drained in a base what-if state.
	Exclude func(topology.LinkID) bool
	// OnCell, when non-nil, is invoked once per completed cell, serialized
	// across workers — the streaming hook for progress reporting.
	OnCell func(CellResult)
	// IncludeCells embeds the full per-cell matrix in the JSON report.
	IncludeCells bool
}

// CellResult is one (scenario × invariant) grid cell's raw outcome.
type CellResult struct {
	// Scenario and Invariant index the enumeration order and the
	// Config.Invariants slice.
	Scenario  int
	Invariant int
	// Links are the scenario's failed links.
	Links []topology.LinkID
	// Res is the engine result when Err is nil.
	Res engine.Result
	// Err is the per-cell failure (budget, deadline, cancellation).
	Err error
	// Elapsed is the cell's wall-clock verification time.
	Elapsed time.Duration
	// Incomplete marks a cell the sweep never finished because its context
	// was cancelled; the verdict fields are meaningless then.
	Incomplete bool
}

// Result is a completed (possibly cancelled) sweep: the raw grid plus the
// aggregated report.
type Result struct {
	// Scenarios is the enumerated failure space.
	Scenarios []Scenario
	// Cells is the grid in scenario-major order:
	// Cells[s*len(Invariants)+q].
	Cells []CellResult
	// Baseline holds one result per invariant on the unfailed network —
	// the reference a scenario must differ from to count as breaking.
	Baseline []batch.Result
	// Report is the aggregated, JSON-ready view.
	Report Report
}

// Report is the JSON-facing resilience report.
type Report struct {
	Network   string `json:"network"`
	Depth     int    `json:"depth"`
	Links     int    `json:"links"`
	Scenarios int    `json:"scenarios"`
	Workers   int    `json:"workers"`
	// Invariants aggregates the matrix per invariant, in input order.
	Invariants []InvariantReport `json:"invariants"`
	CellsTotal int               `json:"cellsTotal"`
	// CellsIncomplete counts cells the sweep never finished (cancellation);
	// Incomplete is true when any exist.
	CellsIncomplete int         `json:"cellsIncomplete,omitempty"`
	Incomplete      bool        `json:"incomplete,omitempty"`
	Cache           CacheReport `json:"cache"`
	LatencyMS       Latency     `json:"latencyMs"`
	ElapsedMS       float64     `json:"elapsedMs"`
	// Cells is the full matrix (Config.IncludeCells).
	Cells []CellJSON `json:"cells,omitempty"`
}

// InvariantReport aggregates one invariant's column of the matrix.
type InvariantReport struct {
	Query string `json:"query"`
	// Baseline is the invariant's verdict on the unfailed network ("error"
	// when the baseline run itself failed).
	Baseline string `json:"baseline"`
	// Verdicts counts completed cells by verdict string.
	Verdicts   map[string]int `json:"verdicts"`
	Errors     int            `json:"errors,omitempty"`
	Incomplete int            `json:"incomplete,omitempty"`
	// Breaking counts scenarios whose outcome differs from the baseline.
	Breaking int `json:"breaking"`
	// MinimalBreaking lists the breaking failure sets none of whose proper
	// subsets break: every breaking single, and every breaking pair whose
	// two singles both hold. Link names, enumeration order.
	MinimalBreaking [][]string `json:"minimalBreaking"`
}

// CacheReport aggregates translation reuse across the sweep's sessions.
type CacheReport struct {
	// Gets/Hits count assembled-system lookups (a hit serves a whole
	// translated system without reassembly).
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	// BlocksReused/BlocksRebuilt count per-routing-key rule blocks spliced
	// from (or re-emitted into) the block store during reassemblies;
	// ReuseRate is reused/(reused+rebuilt).
	BlocksReused  int     `json:"blocksReused"`
	BlocksRebuilt int     `json:"blocksRebuilt"`
	ReuseRate     float64 `json:"reuseRate"`
}

// Latency summarises completed-cell wall-clock times in milliseconds
// (nearest-rank percentiles over the exact samples).
type Latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// CellJSON is one grid cell in the JSON report.
type CellJSON struct {
	Scenario   int      `json:"scenario"`
	Links      []string `json:"links"`
	Invariant  int      `json:"invariant"`
	Verdict    string   `json:"verdict,omitempty"`
	Error      string   `json:"error,omitempty"`
	Code       string   `json:"code,omitempty"`
	Incomplete bool     `json:"incomplete,omitempty"`
	ElapsedMS  float64  `json:"elapsedMs"`
}

// JSON renders the cell for reports and streaming: link IDs become names,
// the outcome becomes either a verdict string or an error message with its
// machine-readable code.
func (c CellResult) JSON(g *topology.Graph) CellJSON {
	cj := CellJSON{
		Scenario:   c.Scenario,
		Links:      Scenario{Links: c.Links}.LinkNames(g),
		Invariant:  c.Invariant,
		Incomplete: c.Incomplete,
		ElapsedMS:  c.Elapsed.Seconds() * 1000,
	}
	switch {
	case c.Incomplete:
	case c.Err != nil:
		cj.Error = c.Err.Error()
		cj.Code = errCode(c.Err)
	default:
		cj.Verdict = c.Res.Verdict.String()
	}
	return cj
}

// Run executes the sweep. Cancelling ctx stops scheduling: cells already
// verified keep their verdicts, everything else is marked incomplete, and
// the partial report comes back with Incomplete set — Run itself returns
// an error only for configuration problems (bad depth, unparseable
// invariant, empty failure space). All worker goroutines are joined before
// Run returns, cancelled or not.
func Run(ctx context.Context, net *network.Network, cfg Config) (*Result, error) {
	if len(cfg.Invariants) == 0 {
		return nil, fmt.Errorf("sweep: no invariants")
	}
	for _, qt := range cfg.Invariants {
		if _, err := query.Parse(qt, net); err != nil {
			return nil, fmt.Errorf("sweep: invariant %q: %w", qt, err)
		}
	}
	scs, err := Enumerate(net.Topo, cfg.Depth, cfg.Exclude)
	if err != nil {
		return nil, err
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("sweep: empty failure space (no live links)")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mRuns.Inc()
	mScenarios.Add(int64(len(scs)))

	nq := len(cfg.Invariants)
	start := time.Now()

	// Baseline: the invariants on the unfailed network, the reference the
	// breaking analysis compares scenarios against.
	bw := workers
	if bw > nq {
		bw = nq
	}
	baseline := batch.Verify(ctx, net, cfg.Invariants, batch.Options{
		Workers: bw, Timeout: cfg.Timeout, Engine: cfg.Engine,
	})

	// Pre-mark every cell incomplete; workers overwrite the cells they
	// finish, so a cancelled sweep reports exactly what it never ran.
	cells := make([]CellResult, len(scs)*nq)
	for si, sc := range scs {
		for qi := 0; qi < nq; qi++ {
			cells[si*nq+qi] = CellResult{
				Scenario: si, Invariant: qi, Links: sc.Links,
				Err: context.Canceled, Incomplete: true,
			}
		}
	}

	// Contiguous chunks preserve the enumeration order's locality within
	// each worker's session. Leftover parallelism (fewer chunks than
	// workers) goes to the per-scenario invariant batch.
	chunks := workers
	if chunks > len(scs) {
		chunks = len(scs)
	}
	innerW := workers / chunks
	if innerW < 1 {
		innerW = 1
	}
	per := (len(scs) + chunks - 1) / chunks

	var cellMu sync.Mutex // serializes OnCell across workers
	var statMu sync.Mutex
	var cache CacheReport
	addStats := func(s *scenario.Session) {
		cs, bs := s.CacheStats(), s.BlockStats()
		statMu.Lock()
		cache.Gets += cs.Gets
		cache.Hits += cs.Hits
		cache.BlocksReused += bs.BlocksReused
		cache.BlocksRebuilt += bs.BlocksRebuilt
		statMu.Unlock()
	}

	bopts := batch.Options{Workers: innerW, Timeout: cfg.Timeout, Engine: cfg.Engine}
	var wg sync.WaitGroup
	for w := 0; w < chunks; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(scs) {
			hi = len(scs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var sess *scenario.Session
			if !cfg.NoCache {
				sess = scenario.NewSession(net)
				defer func() {
					addStats(sess)
					sess.Close()
				}()
			}
			for si := lo; si < hi; si++ {
				if ctx.Err() != nil {
					return // remaining cells stay pre-marked incomplete
				}
				runScenario(ctx, net, sess, scs[si], cfg, bopts, cells[si*nq:si*nq+nq], addStats)
				if cfg.OnCell != nil {
					cellMu.Lock()
					for qi := 0; qi < nq; qi++ {
						cfg.OnCell(cells[si*nq+qi])
					}
					cellMu.Unlock()
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	res := &Result{Scenarios: scs, Cells: cells, Baseline: baseline}
	res.Report = buildReport(net, cfg, workers, scs, cells, baseline, cache, time.Since(start))
	mCells.Add(int64(len(cells)))
	mCellsIncomplete.Add(int64(res.Report.CellsIncomplete))
	return res, nil
}

// runScenario verifies one failure set's invariant batch, through the
// worker's long-lived session (retargeted with one atomic stack swap, so
// rule blocks of routers shared with the previous scenario stay hot) or,
// with NoCache, through a throwaway session.
func runScenario(ctx context.Context, net *network.Network, sess *scenario.Session,
	sc Scenario, cfg Config, bopts batch.Options, out []CellResult,
	addStats func(*scenario.Session)) {
	g := net.Topo
	s := sess
	var err error
	if s == nil {
		s = scenario.NewSession(net)
		defer func() {
			addStats(s)
			s.Close()
		}()
		_, err = s.ApplyAll(sc.Deltas(g))
	} else {
		_, err = s.SetStack(sc.Deltas(g))
	}
	if err != nil {
		// Enumeration only names links of the session's own topology, so
		// this is unreachable; keep the cells honest rather than panicking.
		for qi := range out {
			out[qi].Err = fmt.Errorf("sweep: scenario %d: %w", sc.ID, err)
			out[qi].Incomplete = false
		}
		return
	}
	for qi, r := range s.VerifyBatch(ctx, cfg.Invariants, bopts) {
		c := &out[qi]
		c.Res, c.Err, c.Elapsed = r.Res, r.Err, r.Elapsed
		// A cancelled batch context means the sweep was stopped, not that
		// the cell has an outcome; an expired per-cell deadline is a real
		// per-cell verdict ("too slow"), like in plain batches.
		c.Incomplete = errors.Is(r.Err, context.Canceled)
		if !c.Incomplete {
			mCellSeconds.ObserveDuration(r.Elapsed)
		}
	}
}

// outcome classifies a completed cell (or baseline result) for the
// breaking analysis: the verdict string, or "error:<code>" for failed
// runs, so a budget blow-up under failures counts as breaking too.
func outcome(res engine.Result, err error) string {
	if err != nil {
		return "error:" + errCode(err)
	}
	return res.Verdict.String()
}

// errCode mirrors cli.ErrorCode's vocabulary (cli is not imported to keep
// the dependency direction: cli renders, sweep computes).
func errCode(err error) string {
	switch {
	case errors.Is(err, engine.ErrBudget):
		return "budget-exhausted"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline-exceeded"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return "query-error"
	}
}

func buildReport(net *network.Network, cfg Config, workers int, scs []Scenario,
	cells []CellResult, baseline []batch.Result, cache CacheReport, elapsed time.Duration) Report {
	nq := len(cfg.Invariants)
	rep := Report{
		Network:    net.Name,
		Depth:      cfg.Depth,
		Scenarios:  len(scs),
		Workers:    workers,
		CellsTotal: len(cells),
		Cache:      cache,
		ElapsedMS:  elapsed.Seconds() * 1000,
	}
	// Links is the live-link count the space was enumerated over: the
	// singles prefix of the enumeration.
	for _, sc := range scs {
		if len(sc.Links) == 1 {
			rep.Links++
		}
	}
	if moved := cache.BlocksReused + cache.BlocksRebuilt; moved > 0 {
		rep.Cache.ReuseRate = float64(cache.BlocksReused) / float64(moved)
	}

	// singleBreaks[l] answers "does failing l alone break invariant qi?"
	// for the minimality filter; only singles present in the space count.
	g := net.Topo
	var samples []float64
	var sum float64
	for qi := 0; qi < nq; qi++ {
		base := outcome(baseline[qi].Res, baseline[qi].Err)
		inv := InvariantReport{
			Query:           cfg.Invariants[qi],
			Baseline:        base,
			Verdicts:        map[string]int{},
			MinimalBreaking: [][]string{},
		}
		singleBreaks := make(map[topology.LinkID]int) // 1 breaking, -1 holding, 0 unknown
		for si, sc := range scs {
			c := cells[si*nq+qi]
			if c.Incomplete {
				inv.Incomplete++
				continue
			}
			ms := c.Elapsed.Seconds() * 1000
			samples = append(samples, ms)
			sum += ms
			if c.Err != nil {
				inv.Errors++
			} else {
				inv.Verdicts[c.Res.Verdict.String()]++
			}
			breaking := outcome(c.Res, c.Err) != base
			if len(sc.Links) == 1 {
				if breaking {
					singleBreaks[sc.Links[0]] = 1
				} else {
					singleBreaks[sc.Links[0]] = -1
				}
			}
			if !breaking {
				continue
			}
			inv.Breaking++
			minimal := true
			if len(sc.Links) == 2 {
				// A breaking pair is minimal only when both of its singles
				// completed and hold; unknown subsets stay out.
				for _, l := range sc.Links {
					if singleBreaks[l] != -1 {
						minimal = false
						break
					}
				}
			}
			if minimal {
				inv.MinimalBreaking = append(inv.MinimalBreaking, sc.LinkNames(g))
			}
		}
		rep.CellsIncomplete += inv.Incomplete
		rep.Invariants = append(rep.Invariants, inv)
	}
	rep.Incomplete = rep.CellsIncomplete > 0
	sort.Float64s(samples)
	rep.LatencyMS = Latency{
		P50: nearestRank(samples, 0.50),
		P90: nearestRank(samples, 0.90),
		P99: nearestRank(samples, 0.99),
		Max: nearestRank(samples, 1),
	}
	if len(samples) > 0 {
		rep.LatencyMS.Mean = sum / float64(len(samples))
	}
	if cfg.IncludeCells {
		rep.Cells = make([]CellJSON, len(cells))
		for i, c := range cells {
			rep.Cells[i] = c.JSON(g)
		}
	}
	return rep
}

// nearestRank returns the q-quantile of sorted samples by the nearest-rank
// definition (exact sample values, no interpolation).
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteText renders the report for terminals: the workload line, one block
// per invariant with its verdict distribution and minimal breaking sets
// (first few spelled out), and the cache/latency summary.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "sweep:   %s depth=%d  %d links, %d scenarios × %d invariants = %d cells\n",
		r.Network, r.Depth, r.Links, r.Scenarios, len(r.Invariants), r.CellsTotal); err != nil {
		return err
	}
	for _, inv := range r.Invariants {
		fmt.Fprintf(w, "\ninvariant: %s\n", inv.Query)
		fmt.Fprintf(w, "  baseline: %s\n", inv.Baseline)
		keys := make([]string, 0, len(inv.Verdicts))
		for k := range inv.Verdicts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-12s %d\n", k+":", inv.Verdicts[k])
		}
		if inv.Errors > 0 {
			fmt.Fprintf(w, "  errors:      %d\n", inv.Errors)
		}
		if inv.Incomplete > 0 {
			fmt.Fprintf(w, "  incomplete:  %d\n", inv.Incomplete)
		}
		fmt.Fprintf(w, "  breaking:    %d scenarios (%d minimal)\n", inv.Breaking, len(inv.MinimalBreaking))
		const maxShown = 8
		for i, set := range inv.MinimalBreaking {
			if i == maxShown {
				fmt.Fprintf(w, "    … and %d more\n", len(inv.MinimalBreaking)-maxShown)
				break
			}
			fmt.Fprintf(w, "    fail { %s }\n", joinNames(set))
		}
	}
	fmt.Fprintf(w, "\ncache:   %d/%d system hits, %d blocks reused / %d rebuilt (%.0f%% reuse)\n",
		r.Cache.Hits, r.Cache.Gets, r.Cache.BlocksReused, r.Cache.BlocksRebuilt, r.Cache.ReuseRate*100)
	_, err := fmt.Fprintf(w, "latency: p50=%.2fms p90=%.2fms max=%.2fms  elapsed=%.0fms workers=%d\n",
		r.LatencyMS.P50, r.LatencyMS.P90, r.LatencyMS.Max, r.ElapsedMS, r.Workers)
	if r.Incomplete {
		_, err = fmt.Fprintf(w, "NOTE:    sweep incomplete — %d of %d cells were cancelled\n",
			r.CellsIncomplete, r.CellsTotal)
	}
	return err
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
