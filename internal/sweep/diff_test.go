package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"aalwines/internal/cli"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/network"
	"aalwines/internal/scenario"
	"aalwines/internal/topology"
)

// checkSweepDifferential is the soundness harness: it runs the sweep in
// both caching modes and re-verifies every completed cell through an
// independent from-scratch scenario session of the same failure set,
// requiring byte-identical results — first structurally (verdict, witness
// trace, failed set, weight), then on the rendered JSON with wall-clock
// timings zeroed, so the whole user-visible verdict contract is covered.
func checkSweepDifferential(t *testing.T, net *network.Network, cfg Config) {
	t.Helper()
	ctx := context.Background()
	for _, noCache := range []bool{false, true} {
		c := cfg
		c.NoCache = noCache
		res, err := Run(ctx, net, c)
		if err != nil {
			t.Fatalf("noCache=%v: %v", noCache, err)
		}
		if res.Report.Incomplete {
			t.Fatalf("noCache=%v: sweep incomplete", noCache)
		}
		for _, cell := range res.Cells {
			qt := cfg.Invariants[cell.Invariant]
			sc := res.Scenarios[cell.Scenario]
			ref := scenario.NewSession(net)
			if _, err := ref.ApplyAll(sc.Deltas(net.Topo)); err != nil {
				t.Fatalf("reference apply of %v: %v", sc.Links, err)
			}
			want, werr := ref.Verify(ctx, qt, cfg.Engine)
			ref.Close()

			label := "noCache=" + map[bool]string{false: "off", true: "on"}[noCache] +
				" scenario " + sc.String() + " " + qt
			if (cell.Err == nil) != (werr == nil) {
				t.Fatalf("%s: err %v vs reference %v", label, cell.Err, werr)
			}
			if cell.Err != nil {
				continue
			}
			got := cell.Res
			if got.Verdict != want.Verdict {
				t.Fatalf("%s: verdict %v, want %v", label, got.Verdict, want.Verdict)
			}
			if !reflect.DeepEqual(got.Trace, want.Trace) {
				t.Fatalf("%s: traces differ:\n  got  %v\n  want %v", label, got.Trace, want.Trace)
			}
			if !reflect.DeepEqual(got.Failed, want.Failed) {
				t.Fatalf("%s: failed sets differ: got %v want %v", label, got.Failed, want.Failed)
			}
			if !reflect.DeepEqual(got.Weight, want.Weight) {
				t.Fatalf("%s: weights differ: got %v want %v", label, got.Weight, want.Weight)
			}
			// Byte identity of the rendered result (trace steps, headers,
			// failed-link names) — the form every surface ships.
			gj, wj := cli.ToJSON(net, qt, got), cli.ToJSON(net, qt, want)
			gj.TimingMS, wj.TimingMS = cli.Timings{}, cli.Timings{}
			gb, err := json.Marshal(gj)
			if err != nil {
				t.Fatal(err)
			}
			wb, err := json.Marshal(wj)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gb, wb) {
				t.Fatalf("%s: rendered JSON differs:\n  got  %s\n  want %s", label, gb, wb)
			}
		}
	}
}

// String renders a scenario for test failure messages.
func (sc Scenario) String() string {
	b := make([]byte, 0, 16)
	for i, l := range sc.Links {
		if i > 0 {
			b = append(b, '+')
		}
		b = appendInt(b, int(l))
	}
	return string(b)
}

func appendInt(b []byte, n int) []byte {
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}

func TestSweepDifferentialRunningExample(t *testing.T) {
	re := gen.RunningExample()
	checkSweepDifferential(t, re.Network, Config{
		Depth: 2,
		Invariants: []string{
			"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
			"<ip> [.#v0] [v0#v2] .* [v3#.] <ip> 0",
		},
		Workers: 4,
	})
}

// TestSweepDifferentialZoo holds the same bar on generated zoo-scale
// networks: a full single-failure sweep on zoo-10, and a double-failure
// sweep on zoo-12 with the live set restricted to the first dozen links to
// keep the fresh-session reference affordable.
func TestSweepDifferentialZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo differential sweep is slow")
	}
	syn := gen.Zoo(gen.ZooOpts{Routers: 10, Seed: 7, Protection: true})
	var queries []string
	for _, gq := range syn.Queries(2, 5) {
		queries = append(queries, gq.Text)
	}
	checkSweepDifferential(t, syn.Net, Config{
		Depth:      1,
		Invariants: queries,
		Workers:    4,
	})

	syn = gen.Zoo(gen.ZooOpts{Routers: 12, Seed: 3, Protection: true})
	queries = queries[:0]
	for _, gq := range syn.Queries(2, 9) {
		queries = append(queries, gq.Text)
	}
	checkSweepDifferential(t, syn.Net, Config{
		Depth:      2,
		Invariants: queries,
		Workers:    4,
		Exclude:    func(l topology.LinkID) bool { return l >= 12 },
	})
}

// TestSweepDifferentialWithBudget keeps the harness honest on the error
// path: under a tight budget the sweep's per-cell errors must match the
// reference session's, cell for cell.
func TestSweepDifferentialWithBudget(t *testing.T) {
	re := gen.RunningExample()
	checkSweepDifferential(t, re.Network, Config{
		Depth:      1,
		Invariants: []string{"<ip> [.#v0] .* [v3#.] <ip> 0"},
		Workers:    2,
		Engine:     engine.Options{Budget: 1},
	})
}
