package pds

import (
	"fmt"
	"math/bits"

	"aalwines/internal/nfa"
)

// Trans identifies a P-automaton transition (From --Sym--> To). Sym is
// either a concrete stack symbol (< NumSyms of the PDS), the Eps marker, or
// a virtual symbol (>= NumSyms) standing for a whole symbol set — virtual
// symbols let an initial automaton carry transitions like "any smpls label"
// without materialising one edge per label.
type Trans struct {
	From State
	Sym  Sym
	To   State
}

// WitKind classifies how a transition entered the saturated automaton.
type WitKind uint8

const (
	// WitInitial marks transitions copied from the input automaton.
	WitInitial WitKind = iota
	// WitRule marks transitions created by applying a pop/swap rule, or
	// the first transition (p′,γ′,q_r) of a push rule.
	WitRule
	// WitPushB marks the second transition (q_r,γ″,q) of a push rule.
	WitPushB
	// WitCombine marks transitions created by composing an epsilon
	// transition with a following transition.
	WitCombine
)

// Witness is an immutable derivation record: it explains how the transition
// T obtained its (then-current) weight. Records only reference records that
// existed when they were created, so the record graph is acyclic and
// backward reconstruction terminates.
type Witness struct {
	Kind WitKind
	Rule int32 // rule index for WitRule/WitPushB, -1 otherwise
	T    Trans
	// PredSym is the concrete stack symbol the rule consumed from the head
	// transition (Pred1). It matters when Pred1 is a virtual set edge: the
	// derivation fixed one concrete member.
	PredSym Sym
	Pred1   *Witness // head transition record (WitRule/WitPushB); ε record (WitCombine)
	Pred2   *Witness // following transition record (WitCombine)
	Weight  []uint64 // the weight this record establishes for T
}

// Edge is an outgoing P-automaton transition with its best weight and the
// witness record that established it.
type Edge struct {
	Sym    Sym
	To     State
	Weight []uint64
	Wit    *Witness
}

// edgeMeta is the per-edge bookkeeping the saturation worklists and the
// symbol index need: the next edge in this state's same-symbol chain
// (-1 terminates) and the worklist flag bits.
type edgeMeta struct {
	next  int32
	flags uint8
}

// Per-edge flag bits; they replace the old inQueue/epsSeen maps with a bit
// read off the edge slot itself.
const (
	fQueued uint8 = 1 << iota // edge is on the worklist
	fEpsReg                   // ε-edge already registered in epsInto
)

// virtChain is the pseudo-symbol under which all of a state's virtual
// set-edges are chained (they are looked up by enumeration + set filter,
// not by exact symbol). It can never collide with a real virtual symbol:
// those are NumSyms + set index, far below 2³²-2 in practice.
const virtChain = Eps - 1

// chainKey packs (state, chain symbol) into the flat-hash key. State
// indices are non-negative int32 and symbols are 32-bit, so the key is
// collision-free and stays below 2⁶³ (the hash stores key+1 for its empty
// marker without overflow).
func chainKey(s State, cs Sym) uint64 {
	return uint64(uint32(s))<<32 | uint64(cs)
}

// chainSym maps an edge symbol to the chain it lives in: concrete symbols
// and Eps chain under themselves, virtual set symbols share virtChain.
func (a *Auto) chainSym(sym Sym) Sym {
	if sym != Eps && int(sym) >= a.NumSyms {
		return virtChain
	}
	return sym
}

// stateEdges holds one state's outgoing transitions. meta[i].next threads
// the edges into per-symbol chains headed in the automaton's flat hash, so
// the saturation inner loops touch only candidate edges without paying a
// per-state map allocation.
type stateEdges struct {
	edges []Edge
	meta  []edgeMeta
}

// Auto is a P-automaton: an NFA whose states include the control states of
// a PDS (indices [0, PDSStates)) plus any number of extra states. It
// represents a regular set of configurations: ⟨p, w⟩ is accepted iff the
// automaton reads w from state p into an accepting state.
//
// An Auto carries reusable scratch for AcceptsConfig/epsClosure, so those
// queries are not safe to call concurrently on one instance. Saturation
// runs own a private clone each (the translation cache hands out clones),
// and Clone itself only reads the structural fields, so cloning a shared
// pristine automaton from several goroutines remains safe.
type Auto struct {
	PDSStates int
	NumSyms   int // concrete stack alphabet size; virtual symbols follow
	numStates int
	numTrans  int
	accept    []bool
	states    []stateEdges
	heads     u64map         // chainKey(state, chainSym) -> head edge index
	sets      []*nfa.Set     // virtual symbol table
	setIdx    map[string]Sym // set key -> virtual symbol

	// Bump arenas backing the per-state edge slices: growing a state's
	// out-list re-slices a chunk instead of asking the allocator, so the
	// thousands of short out-lists a saturation builds (one per mid
	// state) cost a handful of chunk allocations total. Chunks are
	// per-instance and never shared between clones.
	edgeChunk []Edge
	metaChunk []edgeMeta

	// Generation-marked visited array and state buffers reused by
	// AcceptsConfig/epsClosure; probes counts index candidate edges
	// consulted, drained into the saturation tallies via takeProbes.
	mark    []uint32
	markGen uint32
	bufA    []State
	bufB    []State
	probes  int64
}

// edgeChunkSize is the minimum bump-arena chunk length; 1024 edges ≈ 40
// KiB. maxEdgeChunk caps the adaptive growth below (a few MiB per chunk).
const (
	edgeChunkSize = 1024
	maxEdgeChunk  = 1 << 16
)

// nextChunkLen sizes a fresh arena chunk, at least nc. The chunk length
// scales with the transitions inserted so far: small saturations stay at
// the 40 KiB minimum, while paper-scale runs (hundreds of thousands of
// transitions) hand out proportionally larger chunks so the number of
// allocator calls grows logarithmically rather than linearly with the
// automaton.
func (a *Auto) nextChunkLen(nc int) int {
	n := edgeChunkSize
	if t := a.numTrans / 4; t > n {
		n = t
	}
	if n > maxEdgeChunk {
		n = maxEdgeChunk
	}
	if n < nc {
		n = nc
	}
	return n
}

// growEdges gives s's out-list capacity for at least one more edge,
// copying it into fresh arena space (geometric growth, so each edge is
// copied O(1) times amortised).
func (a *Auto) growEdges(se *stateEdges) {
	nc := 2 * cap(se.edges)
	if nc < 4 {
		nc = 4
	}
	if len(a.edgeChunk) < nc {
		n := a.nextChunkLen(nc)
		a.edgeChunk = make([]Edge, n)
		a.metaChunk = make([]edgeMeta, n)
	}
	ne := a.edgeChunk[0:0:nc]
	nm := a.metaChunk[0:0:nc]
	a.edgeChunk = a.edgeChunk[nc:]
	a.metaChunk = a.metaChunk[nc:]
	se.edges = append(ne, se.edges...)
	se.meta = append(nm, se.meta...)
}

// NewAuto returns an automaton whose first n states mirror the PDS control
// states, with no transitions and no accepting states.
func NewAuto(p *PDS) *Auto {
	n := p.NumStates
	return &Auto{
		PDSStates: n,
		NumSyms:   p.NumSyms,
		numStates: n,
		accept:    make([]bool, n),
		states:    make([]stateEdges, n),
		setIdx:    make(map[string]Sym),
	}
}

// Clone returns an independent copy of the automaton that can be saturated
// while the original (and other clones) are used concurrently. State and
// edge bookkeeping is copied; symbol sets and witness records are shared,
// which is safe because both are immutable once created — weighted inputs
// must be normalised with NormalizeWeights before cloning so saturation
// never rewrites a shared record's weight in place.
func (a *Auto) Clone() *Auto {
	b := &Auto{
		PDSStates: a.PDSStates,
		NumSyms:   a.NumSyms,
		numStates: a.numStates,
		numTrans:  a.numTrans,
		accept:    append([]bool(nil), a.accept...),
		states:    make([]stateEdges, len(a.states)),
		heads:     a.heads.clone(),
		sets:      append([]*nfa.Set(nil), a.sets...),
		setIdx:    make(map[string]Sym, len(a.setIdx)),
	}
	// One backing array serves every state's out-list, sliced with its
	// capacity capped at its length so a later append (during saturation
	// of the clone) copies that state's list out instead of clobbering
	// its neighbour. This makes Clone O(states) allocation-free per state
	// — it used to be the second-largest allocator in a batch run.
	edges := make([]Edge, a.numTrans)
	meta := make([]edgeMeta, a.numTrans)
	off := 0
	for i := range a.states {
		n := len(a.states[i].edges)
		copy(edges[off:off+n], a.states[i].edges)
		copy(meta[off:off+n], a.states[i].meta)
		b.states[i].edges = edges[off : off+n : off+n]
		b.states[i].meta = meta[off : off+n : off+n]
		off += n
	}
	for k, v := range a.setIdx {
		b.setIdx[k] = v
	}
	return b
}

// NormalizeWeights gives every weightless transition an explicit zero
// vector of the given dimension. A nil weight means the semiring one (no
// cost), but Insert's improvement test reads nil as +∞ — an unweighted edge
// could then be "improved" by a rule-derived weight, corrupting minimality.
// Saturation normalises its input automatically; pre-normalising a pristine
// automaton before Clone keeps shared witness records immutable.
func (a *Auto) NormalizeWeights(dim int) {
	if dim == 0 {
		return
	}
	for s := range a.states {
		edges := a.states[s].edges
		for i := range edges {
			if edges[i].Weight == nil {
				edges[i].Weight = make([]uint64, dim)
				if edges[i].Wit != nil {
					edges[i].Wit.Weight = edges[i].Weight
				}
			}
		}
	}
}

// AddState appends a fresh non-accepting extra state.
func (a *Auto) AddState() State {
	a.numStates++
	a.accept = append(a.accept, false)
	a.states = append(a.states, stateEdges{})
	return State(a.numStates - 1)
}

// NumStates returns the total number of states.
func (a *Auto) NumStates() int { return a.numStates }

// SetAccept marks s accepting.
func (a *Auto) SetAccept(s State, v bool) { a.accept[s] = v }

// Accepting reports whether s is accepting.
func (a *Auto) Accepting(s State) bool { return a.accept[s] }

// Out returns the outgoing edges of s; the slice is shared.
func (a *Auto) Out(s State) []Edge { return a.states[s].edges }

// NumTrans returns the total number of transitions.
func (a *Auto) NumTrans() int { return a.numTrans }

// Get returns the edge for t and whether it exists.
func (a *Auto) Get(t Trans) (Edge, bool) {
	se := &a.states[t.From]
	j, ok := a.heads.get(chainKey(t.From, a.chainSym(t.Sym)))
	if !ok {
		return Edge{}, false
	}
	for ; j != -1; j = se.meta[j].next {
		if se.edges[j].Sym == t.Sym && se.edges[j].To == t.To {
			return se.edges[j], true
		}
	}
	return Edge{}, false
}

// SymSet resolves a transition symbol: for a virtual symbol it returns the
// underlying set; for a concrete symbol or Eps it returns nil.
func (a *Auto) SymSet(s Sym) *nfa.Set {
	if s == Eps || int(s) < a.NumSyms {
		return nil
	}
	return a.sets[int(s)-a.NumSyms]
}

// VirtualSym interns a symbol set and returns its virtual symbol. Equal
// sets share one virtual symbol.
func (a *Auto) VirtualSym(set *nfa.Set) Sym {
	k := set.Key()
	if s, ok := a.setIdx[k]; ok {
		return s
	}
	s := Sym(a.NumSyms + len(a.sets))
	a.sets = append(a.sets, set)
	a.setIdx[k] = s
	return s
}

// Matches reports whether an edge symbol admits the concrete stack symbol c.
func (a *Auto) Matches(edgeSym, c Sym) bool {
	if edgeSym == Eps {
		return false
	}
	if set := a.SymSet(edgeSym); set != nil {
		return set.Has(nfa.Sym(c))
	}
	return edgeSym == c
}

// upsert adds the transition or improves its weight, returning the edge's
// index within t.From's out-list and whether anything changed. On a change
// the caller owns setting the edge's witness — saturation defers witness
// construction until it knows the insert succeeded, which is where most of
// the old per-pop garbage came from. A nil weight means "unweighted": then
// only novelty counts.
func (a *Auto) upsert(t Trans, w []uint64) (int32, bool) {
	se := &a.states[t.From]
	hp := a.heads.ref(chainKey(t.From, a.chainSym(t.Sym)))
	for j := *hp; j != -1; j = se.meta[j].next {
		a.probes++
		if se.edges[j].Sym == t.Sym && se.edges[j].To == t.To {
			e := &se.edges[j]
			if w == nil || !lexLess(w, e.Weight) {
				return j, false
			}
			e.Weight = w
			return j, true
		}
	}
	i := int32(len(se.edges))
	if len(se.edges) == cap(se.edges) {
		a.growEdges(se)
	}
	se.edges = append(se.edges, Edge{Sym: t.Sym, To: t.To, Weight: w})
	se.meta = append(se.meta, edgeMeta{next: *hp})
	*hp = i
	a.numTrans++
	return i, true
}

// Insert adds or updates a transition with the given weight and witness.
// It reports whether the transition is new or its weight strictly improved
// (lexicographically).
func (a *Auto) Insert(t Trans, w []uint64, wit *Witness) bool {
	i, changed := a.upsert(t, w)
	if changed {
		a.states[t.From].edges[i].Wit = wit
	}
	return changed
}

// appendMatches appends to dst the targets of every out-edge of s whose
// symbol admits the concrete symbol c, walking the exact-symbol chain and
// the virtual-set chain instead of scanning the whole out-list. Targets are
// not deduplicated; callers dedup where it matters.
func (a *Auto) appendMatches(dst []State, s State, c Sym) []State {
	se := &a.states[s]
	if j, ok := a.heads.get(chainKey(s, c)); ok {
		for ; j != -1; j = se.meta[j].next {
			a.probes++
			dst = append(dst, se.edges[j].To)
		}
	}
	if j, ok := a.heads.get(chainKey(s, virtChain)); ok {
		for ; j != -1; j = se.meta[j].next {
			a.probes++
			e := &se.edges[j]
			if a.sets[int(e.Sym)-a.NumSyms].Has(nfa.Sym(c)) {
				dst = append(dst, e.To)
			}
		}
	}
	return dst
}

// takeProbes drains the index-probe counter accumulated by the chain
// walks; the saturation tallies flush it to obs.
func (a *Auto) takeProbes() int64 {
	p := a.probes
	a.probes = 0
	return p
}

// AddEdge inserts an initial (pre-saturation) transition over a concrete
// symbol. Initial automata used as post* input must not have transitions
// into PDS control states.
func (a *Auto) AddEdge(from State, sym Sym, to State) {
	t := Trans{from, sym, to}
	a.Insert(t, nil, &Witness{Kind: WitInitial, Rule: -1, T: t})
}

// AddEdgeW inserts an initial transition carrying a weight.
func (a *Auto) AddEdgeW(from State, sym Sym, to State, w []uint64) {
	t := Trans{from, sym, to}
	a.Insert(t, w, &Witness{Kind: WitInitial, Rule: -1, T: t, Weight: w})
}

// AddSetEdge inserts an initial transition that admits every symbol in set.
func (a *Auto) AddSetEdge(from State, set *nfa.Set, to State, w []uint64) {
	if set.IsEmpty() {
		return
	}
	t := Trans{from, a.VirtualSym(set), to}
	a.Insert(t, w, &Witness{Kind: WitInitial, Rule: -1, T: t, Weight: w})
}

// nextMark advances the scratch generation and grows the visited array to
// the current state count; slots still holding older generations read as
// unvisited, so no per-call clearing is needed.
func (a *Auto) nextMark() uint32 {
	for len(a.mark) < a.numStates {
		a.mark = append(a.mark, 0)
	}
	a.markGen++
	if a.markGen == 0 { // generation wrap: stale marks could alias
		for i := range a.mark {
			a.mark[i] = 0
		}
		a.markGen = 1
	}
	return a.markGen
}

// AcceptsConfig reports whether the automaton accepts ⟨c.State, c.Stack⟩,
// traversing epsilon transitions. It reuses the automaton's scratch
// buffers, so concurrent calls on one instance need external
// synchronisation (see the Auto doc comment).
func (a *Auto) AcceptsConfig(c Config) bool {
	cur := a.epsCloseInto(a.bufA[:0], c.State)
	for _, sym := range c.Stack {
		next := a.bufB[:0]
		for _, s := range cur {
			next = a.appendMatches(next, s, sym)
		}
		a.bufB = next
		cur = a.epsCloseInto(cur[:0], next...)
		a.bufA = cur
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if a.accept[s] {
			return true
		}
	}
	return false
}

// epsCloseInto appends the deduplicated ε-closure of states to dst (which
// must not alias states) and returns it.
func (a *Auto) epsCloseInto(dst []State, states ...State) []State {
	gen := a.nextMark()
	for _, s := range states {
		if a.mark[s] != gen {
			a.mark[s] = gen
			dst = append(dst, s)
		}
	}
	for i := 0; i < len(dst); i++ {
		s := dst[i]
		se := &a.states[s]
		if j, ok := a.heads.get(chainKey(s, Eps)); ok {
			for ; j != -1; j = se.meta[j].next {
				to := se.edges[j].To
				if a.mark[to] != gen {
					a.mark[to] = gen
					dst = append(dst, to)
				}
			}
		}
	}
	return dst
}

// Validate checks the post* input requirement: no transitions into control
// states.
func (a *Auto) Validate() error {
	for s := range a.states {
		edges := a.states[s].edges
		for i := range edges {
			if int(edges[i].To) < a.PDSStates {
				return fmt.Errorf("pds: initial automaton has transition into control state %d", edges[i].To)
			}
		}
	}
	return nil
}

// lexLess reports strict lexicographic order; nil is +∞ (worse than any
// proper vector), and equal-length proper vectors compare element-wise.
func lexLess(a, b []uint64) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// lexAdd returns the component-wise sum, treating nil as the neutral
// all-zeros vector of the other operand's length.
func lexAdd(a, b []uint64) []uint64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// u64map is a minimal open-addressing hash from packed uint64 keys to
// int32 values (Fibonacci hashing, linear probing, 75% load factor). It
// replaces the Go map[Trans]int32 transition index: one flat backing array
// instead of per-entry overhead, and a single multiply to hash instead of
// the runtime's generic 12-byte struct hashing. Keys must stay below
// 2⁶³ — slots store key+1 so 0 can mark empty.
type u64map struct {
	keys  []uint64
	vals  []int32
	n     int
	shift uint
}

func (m *u64map) grow() {
	newLen := 16
	if len(m.keys) > 0 {
		newLen = len(m.keys) * 2
	}
	oldK, oldV := m.keys, m.vals
	m.keys = make([]uint64, newLen)
	m.vals = make([]int32, newLen)
	m.shift = uint(64 - bits.TrailingZeros(uint(newLen)))
	for i, sk := range oldK {
		if sk != 0 {
			j := m.slot(sk)
			m.keys[j] = sk
			m.vals[j] = oldV[i]
		}
	}
}

// slot returns the index where the stored key sk lives or would be placed.
func (m *u64map) slot(sk uint64) int {
	mask := len(m.keys) - 1
	i := int((sk * 0x9E3779B97F4A7C15) >> m.shift)
	for {
		if m.keys[i] == 0 || m.keys[i] == sk {
			return i
		}
		i = (i + 1) & mask
	}
}

func (m *u64map) get(k uint64) (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	i := m.slot(k + 1)
	if m.keys[i] == 0 {
		return 0, false
	}
	return m.vals[i], true
}

// ref returns a pointer to the value slot for k, inserting the key with
// value -1 if absent. The pointer is only valid until the next ref call
// (which may rehash).
func (m *u64map) ref(k uint64) *int32 {
	if m.n*4 >= len(m.keys)*3 {
		m.grow()
	}
	sk := k + 1
	i := m.slot(sk)
	if m.keys[i] == 0 {
		m.keys[i] = sk
		m.vals[i] = -1
		m.n++
	}
	return &m.vals[i]
}

func (m *u64map) clone() u64map {
	return u64map{
		keys:  append([]uint64(nil), m.keys...),
		vals:  append([]int32(nil), m.vals...),
		n:     m.n,
		shift: m.shift,
	}
}
