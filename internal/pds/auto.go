package pds

import (
	"fmt"

	"aalwines/internal/nfa"
)

// Trans identifies a P-automaton transition (From --Sym--> To). Sym is
// either a concrete stack symbol (< NumSyms of the PDS), the Eps marker, or
// a virtual symbol (>= NumSyms) standing for a whole symbol set — virtual
// symbols let an initial automaton carry transitions like "any smpls label"
// without materialising one edge per label.
type Trans struct {
	From State
	Sym  Sym
	To   State
}

// WitKind classifies how a transition entered the saturated automaton.
type WitKind uint8

const (
	// WitInitial marks transitions copied from the input automaton.
	WitInitial WitKind = iota
	// WitRule marks transitions created by applying a pop/swap rule, or
	// the first transition (p′,γ′,q_r) of a push rule.
	WitRule
	// WitPushB marks the second transition (q_r,γ″,q) of a push rule.
	WitPushB
	// WitCombine marks transitions created by composing an epsilon
	// transition with a following transition.
	WitCombine
)

// Witness is an immutable derivation record: it explains how the transition
// T obtained its (then-current) weight. Records only reference records that
// existed when they were created, so the record graph is acyclic and
// backward reconstruction terminates.
type Witness struct {
	Kind WitKind
	Rule int32 // rule index for WitRule/WitPushB, -1 otherwise
	T    Trans
	// PredSym is the concrete stack symbol the rule consumed from the head
	// transition (Pred1). It matters when Pred1 is a virtual set edge: the
	// derivation fixed one concrete member.
	PredSym Sym
	Pred1   *Witness // head transition record (WitRule/WitPushB); ε record (WitCombine)
	Pred2   *Witness // following transition record (WitCombine)
	Weight  []uint64 // the weight this record establishes for T
}

// Edge is an outgoing P-automaton transition with its best weight and the
// witness record that established it.
type Edge struct {
	Sym    Sym
	To     State
	Weight []uint64
	Wit    *Witness
}

// Auto is a P-automaton: an NFA whose states include the control states of
// a PDS (indices [0, PDSStates)) plus any number of extra states. It
// represents a regular set of configurations: ⟨p, w⟩ is accepted iff the
// automaton reads w from state p into an accepting state.
type Auto struct {
	PDSStates int
	NumSyms   int // concrete stack alphabet size; virtual symbols follow
	numStates int
	accept    []bool
	out       [][]Edge
	index     map[Trans]int32
	sets      []*nfa.Set     // virtual symbol table
	setIdx    map[string]Sym // set key -> virtual symbol
}

// NewAuto returns an automaton whose first n states mirror the PDS control
// states, with no transitions and no accepting states.
func NewAuto(p *PDS) *Auto {
	n := p.NumStates
	return &Auto{
		PDSStates: n,
		NumSyms:   p.NumSyms,
		numStates: n,
		accept:    make([]bool, n),
		out:       make([][]Edge, n),
		index:     make(map[Trans]int32),
		setIdx:    make(map[string]Sym),
	}
}

// Clone returns an independent copy of the automaton that can be saturated
// while the original (and other clones) are used concurrently. State and
// edge bookkeeping is copied; symbol sets and witness records are shared,
// which is safe because both are immutable once created — weighted inputs
// must be normalised with NormalizeWeights before cloning so saturation
// never rewrites a shared record's weight in place.
func (a *Auto) Clone() *Auto {
	b := &Auto{
		PDSStates: a.PDSStates,
		NumSyms:   a.NumSyms,
		numStates: a.numStates,
		accept:    append([]bool(nil), a.accept...),
		out:       make([][]Edge, len(a.out)),
		index:     make(map[Trans]int32, len(a.index)),
		sets:      append([]*nfa.Set(nil), a.sets...),
		setIdx:    make(map[string]Sym, len(a.setIdx)),
	}
	for i, es := range a.out {
		b.out[i] = append([]Edge(nil), es...)
	}
	for k, v := range a.index {
		b.index[k] = v
	}
	for k, v := range a.setIdx {
		b.setIdx[k] = v
	}
	return b
}

// NormalizeWeights gives every weightless transition an explicit zero
// vector of the given dimension. A nil weight means the semiring one (no
// cost), but Insert's improvement test reads nil as +∞ — an unweighted edge
// could then be "improved" by a rule-derived weight, corrupting minimality.
// Saturation normalises its input automatically; pre-normalising a pristine
// automaton before Clone keeps shared witness records immutable.
func (a *Auto) NormalizeWeights(dim int) {
	if dim == 0 {
		return
	}
	for s := 0; s < a.numStates; s++ {
		out := a.out[s]
		for i := range out {
			if out[i].Weight == nil {
				out[i].Weight = make([]uint64, dim)
				if out[i].Wit != nil {
					out[i].Wit.Weight = out[i].Weight
				}
			}
		}
	}
}

// AddState appends a fresh non-accepting extra state.
func (a *Auto) AddState() State {
	a.numStates++
	a.accept = append(a.accept, false)
	a.out = append(a.out, nil)
	return State(a.numStates - 1)
}

// NumStates returns the total number of states.
func (a *Auto) NumStates() int { return a.numStates }

// SetAccept marks s accepting.
func (a *Auto) SetAccept(s State, v bool) { a.accept[s] = v }

// Accepting reports whether s is accepting.
func (a *Auto) Accepting(s State) bool { return a.accept[s] }

// Out returns the outgoing edges of s; the slice is shared.
func (a *Auto) Out(s State) []Edge { return a.out[s] }

// NumTrans returns the total number of transitions.
func (a *Auto) NumTrans() int { return len(a.index) }

// Get returns the edge for t and whether it exists.
func (a *Auto) Get(t Trans) (Edge, bool) {
	if i, ok := a.index[t]; ok {
		return a.out[t.From][i], true
	}
	return Edge{}, false
}

// SymSet resolves a transition symbol: for a virtual symbol it returns the
// underlying set; for a concrete symbol or Eps it returns nil.
func (a *Auto) SymSet(s Sym) *nfa.Set {
	if s == Eps || int(s) < a.NumSyms {
		return nil
	}
	return a.sets[int(s)-a.NumSyms]
}

// VirtualSym interns a symbol set and returns its virtual symbol. Equal
// sets share one virtual symbol.
func (a *Auto) VirtualSym(set *nfa.Set) Sym {
	k := set.Key()
	if s, ok := a.setIdx[k]; ok {
		return s
	}
	s := Sym(a.NumSyms + len(a.sets))
	a.sets = append(a.sets, set)
	a.setIdx[k] = s
	return s
}

// Matches reports whether an edge symbol admits the concrete stack symbol c.
func (a *Auto) Matches(edgeSym, c Sym) bool {
	if edgeSym == Eps {
		return false
	}
	if set := a.SymSet(edgeSym); set != nil {
		return set.Has(nfa.Sym(c))
	}
	return edgeSym == c
}

// Insert adds or updates a transition with the given weight and witness.
// It reports whether the transition is new or its weight strictly improved
// (lexicographically). A nil weight means "unweighted": then only novelty
// counts.
func (a *Auto) Insert(t Trans, w []uint64, wit *Witness) bool {
	if i, ok := a.index[t]; ok {
		e := &a.out[t.From][i]
		if w == nil || !lexLess(w, e.Weight) {
			return false
		}
		e.Weight = w
		e.Wit = wit
		return true
	}
	a.index[t] = int32(len(a.out[t.From]))
	a.out[t.From] = append(a.out[t.From], Edge{Sym: t.Sym, To: t.To, Weight: w, Wit: wit})
	return true
}

// AddEdge inserts an initial (pre-saturation) transition over a concrete
// symbol. Initial automata used as post* input must not have transitions
// into PDS control states.
func (a *Auto) AddEdge(from State, sym Sym, to State) {
	t := Trans{from, sym, to}
	a.Insert(t, nil, &Witness{Kind: WitInitial, Rule: -1, T: t})
}

// AddEdgeW inserts an initial transition carrying a weight.
func (a *Auto) AddEdgeW(from State, sym Sym, to State, w []uint64) {
	t := Trans{from, sym, to}
	a.Insert(t, w, &Witness{Kind: WitInitial, Rule: -1, T: t, Weight: w})
}

// AddSetEdge inserts an initial transition that admits every symbol in set.
func (a *Auto) AddSetEdge(from State, set *nfa.Set, to State, w []uint64) {
	if set.IsEmpty() {
		return
	}
	t := Trans{from, a.VirtualSym(set), to}
	a.Insert(t, w, &Witness{Kind: WitInitial, Rule: -1, T: t, Weight: w})
}

// AcceptsConfig reports whether the automaton accepts ⟨c.State, c.Stack⟩,
// traversing epsilon transitions.
func (a *Auto) AcceptsConfig(c Config) bool {
	cur := a.epsClosure([]State{c.State})
	for _, sym := range c.Stack {
		var next []State
		seen := map[State]bool{}
		for _, s := range cur {
			for _, e := range a.out[s] {
				if a.Matches(e.Sym, sym) && !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		cur = a.epsClosure(next)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if a.accept[s] {
			return true
		}
	}
	return false
}

func (a *Auto) epsClosure(states []State) []State {
	seen := make(map[State]bool, len(states))
	out := make([]State, 0, len(states))
	stack := append([]State(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, s)
		for _, e := range a.out[s] {
			if e.Sym == Eps && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return out
}

// Validate checks the post* input requirement: no transitions into control
// states.
func (a *Auto) Validate() error {
	for s := range a.out {
		for _, e := range a.out[s] {
			if int(e.To) < a.PDSStates {
				return fmt.Errorf("pds: initial automaton has transition into control state %d", e.To)
			}
		}
	}
	return nil
}

// lexLess reports strict lexicographic order; nil is +∞ (worse than any
// proper vector), and equal-length proper vectors compare element-wise.
func lexLess(a, b []uint64) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// lexAdd returns the component-wise sum, treating nil as the neutral
// all-zeros vector of the other operand's length.
func lexAdd(a, b []uint64) []uint64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
