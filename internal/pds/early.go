package pds

import (
	"sync"

	"aalwines/internal/nfa"
)

// satScratch bundles the reusable per-run storage of the saturation
// worklists: the queue, the ε-predecessor lists and the early-accept
// product-reachability marks. Runs recycle it through a sync.Pool so batch
// verification stops paying per-run GC for bookkeeping that never escapes
// the run. Weight vectors and witness records are deliberately NOT pooled:
// they outlive the run inside the result automaton.
type satScratch struct {
	queue   []edgeRef
	epsInto [][]State

	// Early-accept product-BFS scratch: visited marks over
	// (automaton state × spec state), generation-stamped so successive
	// checks skip the O(product) clear.
	prodMark []uint32
	prodGen  uint32
	prodBuf  []prodNode
}

type prodNode struct {
	s State
	n int // spec state
}

var scratchPool sync.Pool

func getScratch() *satScratch {
	if v := scratchPool.Get(); v != nil {
		poolHits.Inc()
		return v.(*satScratch)
	}
	poolMisses.Inc()
	return &satScratch{}
}

func putScratch(sc *satScratch) {
	sc.queue = sc.queue[:0]
	for i := range sc.epsInto {
		sc.epsInto[i] = sc.epsInto[i][:0]
	}
	sc.prodBuf = sc.prodBuf[:0]
	scratchPool.Put(sc)
}

// epsIntoFor returns the ε-predecessor table sized for at least n states,
// reusing the inner slices' capacity from previous runs.
func (sc *satScratch) epsIntoFor(n int) [][]State {
	for len(sc.epsInto) < n {
		sc.epsInto = append(sc.epsInto, nil)
	}
	return sc.epsInto
}

// nextProdGen advances the early-accept mark generation; on wrap the mark
// array is cleared so stale generations cannot alias.
func (sc *satScratch) nextProdGen() uint32 {
	sc.prodGen++
	if sc.prodGen == 0 {
		for i := range sc.prodMark {
			sc.prodMark[i] = 0
		}
		sc.prodGen = 1
	}
	return sc.prodGen
}

// acceptReachable reports whether the automaton under saturation already
// accepts some configuration ⟨p, w⟩ with p ∈ starts and w ∈ L(spec) — the
// emptiness question FindAccepting answers, minus the minimisation. The
// traversal mirrors FindAccepting edge for edge: ε-transitions are skipped
// (sound at any point, since FindAccepting skips them too) and a virtual
// set-edge pairs with a spec arc iff the two sets intersect, exactly when
// FindAccepting's Inter(...).First() succeeds. A positive answer therefore
// guarantees FindAccepting finds an accepting configuration on the same
// partially saturated automaton.
func acceptReachable(a *Auto, starts []State, specStarts []int, spec *nfa.NFA, sc *satScratch) bool {
	ns := spec.NumStates()
	for len(sc.prodMark) < a.numStates*ns {
		sc.prodMark = append(sc.prodMark, 0)
	}
	gen := sc.nextProdGen()
	stack := sc.prodBuf[:0]
	visit := func(s State, n int) {
		i := int(s)*ns + n
		if sc.prodMark[i] != gen {
			sc.prodMark[i] = gen
			stack = append(stack, prodNode{s, n})
		}
	}
	for _, p := range starts {
		for _, n0 := range specStarts {
			visit(p, n0)
		}
	}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.accept[nd.s] && spec.Accepting(nd.n) {
			sc.prodBuf = stack
			return true
		}
		arcs := spec.Arcs(nd.n)
		edges := a.states[nd.s].edges
		for i := range edges {
			e := &edges[i]
			if e.Sym == Eps {
				continue
			}
			set := a.SymSet(e.Sym)
			for _, arc := range arcs {
				if set != nil {
					if !set.Intersects(arc.Set) {
						continue
					}
				} else if !arc.Set.Has(nfa.Sym(e.Sym)) {
					continue
				}
				visit(e.To, arc.To)
			}
		}
	}
	sc.prodBuf = stack
	return false
}

// weightArena bump-allocates weight vectors in chunks, replacing the
// per-derivation make([]uint64, dim) of the old lexAdd path. The arena is
// per-run and never recycled: the vectors it hands out end up referenced by
// edges and witness records in the result automaton.
type weightArena struct {
	chunk []uint64
}

const weightChunk = 4096

// zero returns a fresh all-zeros vector of length dim.
func (wa *weightArena) zero(dim int) []uint64 {
	if len(wa.chunk) < dim {
		n := weightChunk
		if n < dim {
			n = dim
		}
		wa.chunk = make([]uint64, n)
	}
	v := wa.chunk[:dim:dim]
	wa.chunk = wa.chunk[dim:]
	return v
}

// add returns the component-wise sum like lexAdd, but allocates the result
// from the arena. As with lexAdd, a nil operand is the semiring one and the
// other operand is returned as-is (callers never mutate vectors in place).
func (wa *weightArena) add(a, b []uint64) []uint64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := wa.zero(len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// witArena bump-allocates witness records in chunks; like weightArena it is
// per-run and never recycled, since the records live on in the result.
type witArena struct {
	chunk []Witness
}

const witChunk = 256

func (wa *witArena) new(w Witness) *Witness {
	if len(wa.chunk) == 0 {
		wa.chunk = make([]Witness, witChunk)
	}
	p := &wa.chunk[0]
	wa.chunk = wa.chunk[1:]
	*p = w
	return p
}
