package pds

// Prestar computes pre*(L(target)): the returned automaton accepts exactly
// the configurations from which some configuration accepted by target is
// reachable. The target automaton is mutated in place (it must not be
// reused afterwards). The implementation is the worklist formulation of
// Schwoon's Algorithm 1; it is unweighted and does not track witnesses —
// the engine uses Poststar for witness generation and Prestar for
// cross-validation (post*(I) ∩ F ≠ ∅ ⇔ I ∩ pre*(F) ≠ ∅).
func Prestar(p *PDS, target *Auto) *Result {
	a := target
	var tally satTally
	defer tally.flushPre()

	var queue []Trans
	inQueue := map[Trans]bool{}
	add := func(t Trans) {
		if _, ok := a.Get(t); ok {
			return
		}
		a.Insert(t, nil, &Witness{Kind: WitInitial, Rule: -1, T: t})
		tally.inserted++
		if !inQueue[t] {
			inQueue[t] = true
			queue = append(queue, t)
			tally.notePush(len(queue))
		}
	}

	// Seed: existing transitions plus one step for every pop rule
	// ⟨p,γ⟩ ↪ ⟨p′,ε⟩, which lets ⟨p, γw⟩ reach ⟨p′, w⟩ for any w.
	for s := 0; s < a.NumStates(); s++ {
		for _, e := range a.Out(State(s)) {
			t := Trans{State(s), e.Sym, e.To}
			if !inQueue[t] {
				inQueue[t] = true
				queue = append(queue, t)
				tally.notePush(len(queue))
			}
		}
	}
	for i := range p.Rules {
		if p.Rules[i].Kind == PopRule {
			add(Trans{p.Rules[i].FromState, p.Rules[i].FromSym, p.Rules[i].ToState})
		}
	}

	// Index swap and push rules by the state of their right-hand side.
	swapByRHS := make([][]int32, p.NumStates)
	pushByRHS := make([][]int32, p.NumStates)
	for i := range p.Rules {
		r := &p.Rules[i]
		switch r.Kind {
		case SwapRule:
			swapByRHS[r.ToState] = append(swapByRHS[r.ToState], int32(i))
		case PushRule:
			pushByRHS[r.ToState] = append(pushByRHS[r.ToState], int32(i))
		}
	}

	// Residual rules for push rules: once ⟨p1,γ1⟩ ↪ ⟨q,γ′γ2⟩ can consume γ′
	// into state q′, the residual ⟨p1,γ1⟩ ↪ ⟨q′,γ2⟩ applies.
	type dprime struct {
		from State
		sym  Sym
		sym2 Sym
	}
	dprimeByMid := map[State][]dprime{}

	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		inQueue[t] = false
		tally.pops++

		// Swap rules whose RHS head ⟨t.From, γ′⟩ matches this transition.
		if int(t.From) < p.NumStates {
			for _, ri := range swapByRHS[t.From] {
				r := &p.Rules[ri]
				if a.Matches(t.Sym, r.Sym1) {
					add(Trans{r.FromState, r.FromSym, t.To})
				}
			}
			for _, ri := range pushByRHS[t.From] {
				r := &p.Rules[ri]
				if !a.Matches(t.Sym, r.Sym1) {
					continue
				}
				dprimeByMid[t.To] = append(dprimeByMid[t.To], dprime{r.FromState, r.FromSym, r.Sym2})
				for _, e := range a.Out(t.To) {
					if a.Matches(e.Sym, r.Sym2) {
						add(Trans{r.FromState, r.FromSym, e.To})
					}
				}
			}
		}
		// Residual rules registered for t.From fire on this transition.
		for _, d := range dprimeByMid[t.From] {
			if a.Matches(t.Sym, d.sym2) {
				add(Trans{d.from, d.sym, t.To})
			}
		}
	}
	return &Result{PDS: p, Auto: a, Dim: 0}
}
