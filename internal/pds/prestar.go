package pds

// Prestar computes pre*(L(target)): the returned automaton accepts exactly
// the configurations from which some configuration accepted by target is
// reachable. The target automaton is mutated in place (it must not be
// reused afterwards). The implementation is the worklist formulation of
// Schwoon's Algorithm 1; it is unweighted and does not track witnesses —
// the engine uses Poststar for witness generation and Prestar for
// cross-validation (post*(I) ∩ F ≠ ∅ ⇔ I ∩ pre*(F) ≠ ∅).
func Prestar(p *PDS, target *Auto) *Result {
	res, err := PrestarOpts(p, target, SatOptions{})
	if err != nil {
		// Without a budget or stop channel PrestarOpts cannot fail.
		panic("pds: Prestar: " + err.Error())
	}
	return res
}

// PrestarOpts is Prestar with the same optional controls post* takes:
// Budget bounds the worklist pops (ErrBudget on exhaustion), Stop aborts
// cooperatively at the firstCheck/checkEvery cadence (ErrStopped), and the
// run's counters flush into the alg="prestar" obs series. The weighted and
// early-accept fields of SatOptions do not apply to this direction (pre*
// here is the unweighted cross-validation pass) and are ignored, as is
// Parallelism: pre* is off the latency-critical path, so it takes the
// serial worklist unconditionally.
//
// The worklist is drained with a head index over a shared pooled buffer:
// the old `queue = queue[1:]` form shrank the slice's capacity with every
// pop, so appends re-allocated and re-copied the backing array repeatedly
// over a run. Membership tracking lives in the per-edge fQueued flag; the
// old inQueue map is gone (pre* inserts are pure novelty checks, so an
// edge never re-enters the worklist anyway).
func PrestarOpts(p *PDS, target *Auto, o SatOptions) (*Result, error) {
	a := target
	var tally satTally
	var wits witArena
	sc := getScratch()
	queue, head := sc.queue[:0], 0
	defer func() {
		sc.queue = queue
		putScratch(sc)
		tally.probes += a.takeProbes()
		tally.flushPre()
	}()

	add := func(t Trans) {
		i, changed := a.upsert(t, nil)
		if !changed {
			return
		}
		tally.inserted++
		se := &a.states[t.From]
		se.edges[i].Wit = wits.new(Witness{Kind: WitInitial, Rule: -1, T: t})
		se.meta[i].flags |= fQueued
		queue = append(queue, edgeRef{t.From, i})
		tally.notePush(len(queue) - head)
	}

	// Seed: existing transitions plus one step for every pop rule
	// ⟨p,γ⟩ ↪ ⟨p′,ε⟩, which lets ⟨p, γw⟩ reach ⟨p′, w⟩ for any w.
	for s := 0; s < a.NumStates(); s++ {
		se := &a.states[s]
		for i := range se.edges {
			se.meta[i].flags |= fQueued
			queue = append(queue, edgeRef{State(s), int32(i)})
			tally.notePush(len(queue) - head)
		}
	}
	for i := range p.Rules {
		if p.Rules[i].Kind == PopRule {
			add(Trans{p.Rules[i].FromState, p.Rules[i].FromSym, p.Rules[i].ToState})
		}
	}

	// Index swap and push rules by the state of their right-hand side.
	swapByRHS := make([][]int32, p.NumStates)
	pushByRHS := make([][]int32, p.NumStates)
	for i := range p.Rules {
		r := &p.Rules[i]
		switch r.Kind {
		case SwapRule:
			swapByRHS[r.ToState] = append(swapByRHS[r.ToState], int32(i))
		case PushRule:
			pushByRHS[r.ToState] = append(pushByRHS[r.ToState], int32(i))
		}
	}

	// Residual rules for push rules: once ⟨p1,γ1⟩ ↪ ⟨q,γ′γ2⟩ can consume γ′
	// into state q′, the residual ⟨p1,γ1⟩ ↪ ⟨q′,γ2⟩ applies. pre* adds no
	// automaton states, so the table is indexed by state directly.
	type dprime struct {
		from State
		sym  Sym
		sym2 Sym
	}
	dprimeBy := make([][]dprime, a.NumStates())

	var matchBuf []State
	var work int64
	nextCheck := int64(firstCheck)
	for head < len(queue) {
		if work++; o.Budget > 0 && work > o.Budget {
			tally.pops = work
			budgetExhausted.Inc()
			return nil, ErrBudget
		}
		if work == nextCheck {
			if nextCheck < checkEvery {
				nextCheck *= 2
			} else {
				nextCheck += checkEvery
			}
			if o.Stop != nil {
				select {
				case <-o.Stop:
					tally.pops = work
					satStopped.Inc()
					return nil, ErrStopped
				default:
				}
			}
		}
		ref := queue[head]
		head++
		if head == len(queue) {
			queue, head = queue[:0], 0
		} else if head >= 4096 && head*2 >= len(queue) {
			n := copy(queue, queue[head:])
			queue, head = queue[:n], 0
		}
		se := &a.states[ref.from]
		se.meta[ref.ei].flags &^= fQueued
		t := Trans{ref.from, se.edges[ref.ei].Sym, se.edges[ref.ei].To}

		// Swap rules whose RHS head ⟨t.From, γ′⟩ matches this transition.
		if int(t.From) < p.NumStates {
			for _, ri := range swapByRHS[t.From] {
				r := &p.Rules[ri]
				if a.Matches(t.Sym, r.Sym1) {
					add(Trans{r.FromState, r.FromSym, t.To})
				}
			}
			for _, ri := range pushByRHS[t.From] {
				r := &p.Rules[ri]
				if !a.Matches(t.Sym, r.Sym1) {
					continue
				}
				dprimeBy[t.To] = append(dprimeBy[t.To], dprime{r.FromState, r.FromSym, r.Sym2})
				matchBuf = a.appendMatches(matchBuf[:0], t.To, r.Sym2)
				for _, to := range matchBuf {
					add(Trans{r.FromState, r.FromSym, to})
				}
			}
		}
		// Residual rules registered for t.From fire on this transition.
		for _, d := range dprimeBy[t.From] {
			if a.Matches(t.Sym, d.sym2) {
				add(Trans{d.from, d.sym, t.To})
			}
		}
	}
	tally.pops = work
	return &Result{PDS: p, Auto: a, Dim: 0}, nil
}
