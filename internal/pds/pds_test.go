package pds

import (
	"math/rand"
	"testing"

	"aalwines/internal/nfa"
)

// exactSpec builds an NFA over the stack alphabet accepting exactly the
// given word.
func exactSpec(numSyms int, word []Sym) *nfa.NFA {
	a := nfa.New(numSyms)
	cur := a.Start()
	for _, s := range word {
		next := a.AddState()
		a.AddArc(cur, nfa.SetOf(numSyms, nfa.Sym(s)), next)
		cur = next
	}
	a.SetAccept(cur, true)
	return a
}

// anySpec accepts any stack content.
func anySpec(numSyms int) *nfa.NFA {
	a := nfa.New(numSyms)
	a.AddArc(a.Start(), nfa.FullSet(numSyms), a.Start())
	a.SetAccept(a.Start(), true)
	return a
}

// singleInit builds an initial P-automaton accepting exactly ⟨state, word⟩.
func singleInit(p *PDS, state State, word []Sym) *Auto {
	a := NewAuto(p)
	cur := State(-1)
	prev := state
	for i, s := range word {
		cur = a.AddState()
		if i == 0 {
			a.AddEdge(prev, Sym(s), cur)
		} else {
			a.AddEdge(prev, Sym(s), cur)
		}
		prev = cur
	}
	if len(word) == 0 {
		a.SetAccept(state, true)
	} else {
		a.SetAccept(cur, true)
	}
	return a
}

// anbn builds the PDS: state 0 pushes a's (symbol 0) on bottom marker
// (symbol 2), then moves to state 1 which pops them.
func anbn() *PDS {
	p := New(2, 3)
	const a, b, bot = 0, 1, 2
	_ = b
	p.AddRule(Rule{FromState: 0, FromSym: bot, ToState: 0, Kind: PushRule, Sym1: a, Sym2: bot})
	p.AddRule(Rule{FromState: 0, FromSym: a, ToState: 0, Kind: PushRule, Sym1: a, Sym2: a})
	p.AddRule(Rule{FromState: 0, FromSym: a, ToState: 1, Kind: SwapRule, Sym1: a})
	p.AddRule(Rule{FromState: 1, FromSym: a, ToState: 1, Kind: PopRule})
	return p
}

func TestPoststarAnbn(t *testing.T) {
	p := anbn()
	init := singleInit(p, 0, []Sym{2}) // ⟨0, ⊥⟩
	res, err := Poststar(p, init, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reachable: ⟨0, a^n ⊥⟩, ⟨1, a^m ⊥⟩ for m ≤ n after swap, ⟨1, ⊥⟩.
	cases := []struct {
		c    Config
		want bool
	}{
		{Config{0, []Sym{2}}, true},
		{Config{0, []Sym{0, 2}}, true},
		{Config{0, []Sym{0, 0, 0, 2}}, true},
		{Config{1, []Sym{0, 0, 2}}, true},
		{Config{1, []Sym{2}}, true},
		{Config{1, []Sym{1, 2}}, false}, // symbol b never appears
		{Config{0, []Sym{2, 2}}, false},
		{Config{0, []Sym{0}}, false}, // no bottom marker
	}
	for _, c := range cases {
		if got := res.Auto.AcceptsConfig(c.c); got != c.want {
			t.Errorf("AcceptsConfig(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestFindAcceptingAndReconstruct(t *testing.T) {
	p := anbn()
	init := singleInit(p, 0, []Sym{2})
	res, err := Poststar(p, init, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find ⟨1, a a ⊥⟩.
	acc, ok := res.FindAccepting([]State{1}, exactSpec(3, []Sym{0, 0, 2}))
	if !ok {
		t.Fatal("config not found")
	}
	if acc.Config.State != 1 || len(acc.Config.Stack) != 3 {
		t.Fatalf("found %v", acc.Config)
	}
	initCfg, rules, err := res.Reconstruct(acc)
	if err != nil {
		t.Fatal(err)
	}
	if initCfg.State != 0 || len(initCfg.Stack) != 1 || initCfg.Stack[0] != 2 {
		t.Fatalf("reconstructed initial config %v, want ⟨0,⊥⟩", initCfg)
	}
	configs, err := res.Replay(initCfg, rules)
	if err != nil {
		t.Fatal(err)
	}
	last := configs[len(configs)-1]
	if last.State != acc.Config.State || len(last.Stack) != len(acc.Config.Stack) {
		t.Fatalf("replay ends at %v, want %v", last, acc.Config)
	}
	for i := range last.Stack {
		if last.Stack[i] != acc.Config.Stack[i] {
			t.Fatalf("replay stack mismatch: %v vs %v", last, acc.Config)
		}
	}
}

func TestFindAcceptingNoMatch(t *testing.T) {
	p := anbn()
	init := singleInit(p, 0, []Sym{2})
	res, _ := Poststar(p, init, 0)
	if _, ok := res.FindAccepting([]State{1}, exactSpec(3, []Sym{1, 2})); ok {
		t.Fatal("found unreachable config")
	}
}

func TestPoststarRejectsBadInput(t *testing.T) {
	p := New(2, 2)
	a := NewAuto(p)
	// Transition into control state 1: invalid for post*.
	a.AddEdge(0, 0, 1)
	if _, err := Poststar(p, a, 0); err == nil {
		t.Fatal("expected validation error")
	}
}

// randomPDS builds a small random pushdown system.
func randomPDS(rng *rand.Rand) *PDS {
	numStates := 2 + rng.Intn(2)
	numSyms := 2 + rng.Intn(2) + 1 // last symbol is the bottom marker
	p := New(numStates, numSyms)
	bot := Sym(numSyms - 1)
	nRules := 4 + rng.Intn(6)
	for i := 0; i < nRules; i++ {
		r := Rule{
			FromState: State(rng.Intn(numStates)),
			FromSym:   Sym(rng.Intn(numSyms)),
			ToState:   State(rng.Intn(numStates)),
		}
		switch rng.Intn(3) {
		case 0:
			r.Kind = PopRule
			if r.FromSym == bot {
				r.Kind = SwapRule // never pop the bottom marker
				r.Sym1 = bot
			}
		case 1:
			r.Kind = SwapRule
			if r.FromSym == bot {
				r.Sym1 = bot
			} else {
				r.Sym1 = Sym(rng.Intn(numSyms - 1))
			}
		default:
			r.Kind = PushRule
			r.Sym1 = Sym(rng.Intn(numSyms - 1))
			r.Sym2 = r.FromSym
		}
		p.AddRule(r)
	}
	return p
}

// bruteReach enumerates configurations reachable from c within maxSteps
// steps and maxStack stack height.
func bruteReach(p *PDS, c Config, maxSteps, maxStack int) map[string]bool {
	seen := map[string]bool{}
	type qi struct {
		c Config
		d int
	}
	queue := []qi{{c, 0}}
	seen[c.String()] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= maxSteps {
			continue
		}
		for ri := range p.Rules {
			next, ok := cur.c.Step(p.Rules[ri])
			if !ok || len(next.Stack) > maxStack {
				continue
			}
			k := next.String()
			if !seen[k] {
				seen[k] = true
				queue = append(queue, qi{next, cur.d + 1})
			}
		}
	}
	return seen
}

// TestPoststarSoundAndComplete cross-checks post* against brute-force
// enumeration on random systems: every brute-force-reachable configuration
// is accepted, and every accepted configuration found by search has a
// replayable derivation from the initial configuration.
func TestPoststarSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		p := randomPDS(rng)
		bot := Sym(p.NumSyms - 1)
		start := Config{State: 0, Stack: []Sym{0, bot}}
		init := singleInit(p, start.State, start.Stack)
		res, err := Poststar(p, init, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Completeness of post* w.r.t. bounded brute force.
		reach := bruteReach(p, start, 6, 4)
		count := 0
		for k := range reach {
			_ = k
			count++
		}
		queue := []Config{start}
		seen := map[string]bool{start.String(): true}
		depth := map[string]int{start.String(): 0}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if !res.Auto.AcceptsConfig(cur) {
				t.Fatalf("iter %d: reachable config %v not accepted by post*", iter, cur)
			}
			if depth[cur.String()] >= 6 {
				continue
			}
			for ri := range p.Rules {
				next, ok := cur.Step(p.Rules[ri])
				if !ok || len(next.Stack) > 4 {
					continue
				}
				if !seen[next.String()] {
					seen[next.String()] = true
					depth[next.String()] = depth[cur.String()] + 1
					queue = append(queue, next)
				}
			}
		}
		// Soundness via witness replay: any accepted config found by search
		// must have a valid derivation from the initial config.
		for s := 0; s < p.NumStates; s++ {
			acc, ok := res.FindAccepting([]State{State(s)}, anySpec(p.NumSyms))
			if !ok {
				continue
			}
			ic, rules, err := res.Reconstruct(acc)
			if err != nil {
				t.Fatalf("iter %d: reconstruct: %v", iter, err)
			}
			if ic.String() != start.String() {
				t.Fatalf("iter %d: derivation starts at %v, want %v", iter, ic, start)
			}
			cfgs, err := res.Replay(ic, rules)
			if err != nil {
				t.Fatalf("iter %d: replay: %v", iter, err)
			}
			last := cfgs[len(cfgs)-1]
			if last.String() != acc.Config.String() {
				t.Fatalf("iter %d: replay ends at %v, want %v", iter, last, acc.Config)
			}
		}
	}
}

// TestPrestarDuality: ⟨c1⟩ ∈ post*({c0}) ⇔ ⟨c0⟩ ∈ pre*({c1}).
func TestPrestarDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 80; iter++ {
		p := randomPDS(rng)
		bot := Sym(p.NumSyms - 1)
		c0 := Config{State: 0, Stack: []Sym{0, bot}}
		c1 := Config{
			State: State(rng.Intn(p.NumStates)),
			Stack: []Sym{Sym(rng.Intn(p.NumSyms - 1)), bot},
		}
		post, err := Poststar(p, singleInit(p, c0.State, c0.Stack), 0)
		if err != nil {
			t.Fatal(err)
		}
		pre := Prestar(p, singleInit(p, c1.State, c1.Stack))
		fwd := post.Auto.AcceptsConfig(c1)
		bwd := pre.Auto.AcceptsConfig(c0)
		if fwd != bwd {
			t.Fatalf("iter %d: post* says %v, pre* says %v for %v => %v",
				iter, fwd, bwd, c0, c1)
		}
	}
}

// TestWeightedMinimum builds a system with a cheap and an expensive route
// and checks that the weighted search returns the cheap one.
func TestWeightedMinimum(t *testing.T) {
	// States: 0 (start), 1 (via cheap), 2 (via costly), 3 (goal).
	// Symbols: 0 = x, 1 = ⊥.
	p := New(4, 2)
	p.AddRule(Rule{FromState: 0, FromSym: 0, ToState: 1, Kind: SwapRule, Sym1: 0, Weight: []uint64{1}, Tag: 1})
	p.AddRule(Rule{FromState: 1, FromSym: 0, ToState: 3, Kind: SwapRule, Sym1: 0, Weight: []uint64{1}, Tag: 2})
	p.AddRule(Rule{FromState: 0, FromSym: 0, ToState: 2, Kind: SwapRule, Sym1: 0, Weight: []uint64{5}, Tag: 3})
	p.AddRule(Rule{FromState: 2, FromSym: 0, ToState: 3, Kind: SwapRule, Sym1: 0, Weight: []uint64{5}, Tag: 4})
	init := singleInit(p, 0, []Sym{0, 1})
	res, err := Poststar(p, init, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, ok := res.FindAccepting([]State{3}, anySpec(2))
	if !ok {
		t.Fatal("goal not reached")
	}
	if len(acc.Weight) != 1 || acc.Weight[0] != 2 {
		t.Fatalf("min weight = %v, want [2]", acc.Weight)
	}
	_, rules, err := res.Reconstruct(acc)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, ri := range rules {
		sum += p.Rules[ri].Weight[0]
	}
	if sum != 2 {
		t.Fatalf("witness derivation weight = %d, want 2 (the cheap route)", sum)
	}
}

// TestWeightedPushPop checks weights across push and pop rules: pushing
// costs 3, popping costs 1; reaching ⟨1, ⊥⟩ from ⟨0, ⊥⟩ via push+pop
// costs 4.
func TestWeightedPushPop(t *testing.T) {
	p := New(2, 2)
	// ⟨0,⊥⟩ -> ⟨0, x ⊥⟩ cost 3
	p.AddRule(Rule{FromState: 0, FromSym: 1, ToState: 0, Kind: PushRule, Sym1: 0, Sym2: 1, Weight: []uint64{3}})
	// ⟨0,x⟩ -> ⟨1, ε⟩ cost 1
	p.AddRule(Rule{FromState: 0, FromSym: 0, ToState: 1, Kind: PopRule, Weight: []uint64{1}})
	init := singleInit(p, 0, []Sym{1})
	res, err := Poststar(p, init, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, ok := res.FindAccepting([]State{1}, exactSpec(2, []Sym{1}))
	if !ok {
		t.Fatal("⟨1,⊥⟩ not reached")
	}
	if acc.Weight[0] != 4 {
		t.Fatalf("weight = %v, want [4]", acc.Weight)
	}
	ic, rules, err := res.Reconstruct(acc)
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := res.Replay(ic, rules)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfgs[len(cfgs)-1]; got.State != 1 || len(got.Stack) != 1 {
		t.Fatalf("replay end = %v", got)
	}
}

func TestStatsAndString(t *testing.T) {
	p := anbn()
	st := p.Stats()
	if st.Rules != 4 || st.Push != 2 || st.Swap != 1 || st.Pop != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	for _, r := range p.Rules {
		if r.String() == "" {
			t.Fatal("empty rule String")
		}
	}
}

func TestConfigStep(t *testing.T) {
	p := anbn()
	c := Config{State: 0, Stack: []Sym{2}}
	next, ok := c.Step(p.Rules[0])
	if !ok || next.State != 0 || len(next.Stack) != 2 || next.Stack[0] != 0 {
		t.Fatalf("Step = %v, %v", next, ok)
	}
	// Mismatched head.
	if _, ok := c.Step(p.Rules[3]); ok {
		t.Fatal("Step applied with mismatched head")
	}
	// Empty stack.
	if _, ok := (Config{State: 1}).Step(p.Rules[3]); ok {
		t.Fatal("Step applied on empty stack")
	}
}

func TestSortRulesDeterministic(t *testing.T) {
	p := anbn()
	rules := append([]Rule(nil), p.Rules...)
	SortRulesDeterministic(rules)
	for i := 1; i < len(rules); i++ {
		a, b := rules[i-1], rules[i]
		if a.FromState > b.FromState {
			t.Fatal("not sorted")
		}
	}
}
