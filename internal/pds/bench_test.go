package pds_test

// Saturation benchmarks over translated workloads from the benchmark
// ladder (see README, "Performance"): the running example (Figure 1), a
// Topology-Zoo-scale synthetic WAN and a NORDUnet-scale operator network.
// These are the numbers behind the paper's "answers in a matter of
// seconds" claim — BenchmarkPoststarZoo is the canonical regression gate
// for the saturation hot path (ns/op and allocs/op both matter; the
// indexed automaton and the per-run scratch reuse are sized against it).

import (
	"fmt"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/translate"
)

// satCase is one (pushdown system, initial automaton) saturation input,
// pre-built once so the benchmark loop measures saturation alone (plus the
// per-run Clone every real caller pays — the cache hands out clones).
type satCase struct {
	name string
	sys  *translate.System
	init *pds.Auto
}

func buildCases(tb testing.TB, netName string) []satCase {
	tb.Helper()
	var s *gen.Synth
	var texts []string
	switch netName {
	case "running-example":
		re := gen.RunningExample()
		s = &gen.Synth{Net: re.Network}
		texts = []string{
			"<ip> [.#v0] .* [v3#.] <ip> 0",
			"<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
			"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
		}
	case "zoo":
		s = gen.Zoo(gen.ZooOpts{Routers: 84, Seed: 2, Protection: true})
		for _, q := range s.Queries(6, 7) {
			texts = append(texts, q.Text)
		}
	case "nordunet":
		s = gen.Nordunet(gen.NordOpts{Services: 4, EdgeRouters: 16, Seed: 1})
		for _, q := range s.Table1Queries()[:3] {
			texts = append(texts, q.Text)
		}
	default:
		tb.Fatalf("unknown bench network %q", netName)
	}
	var cases []satCase
	for i, text := range texts {
		q, err := query.Parse(text, s.Net)
		if err != nil {
			tb.Fatalf("%q: %v", text, err)
		}
		sys := translate.Build(s.Net, q, translate.Options{Mode: translate.Over})
		sys.PDS.Freeze()
		init := sys.InitAuto()
		init.NormalizeWeights(sys.Dim)
		cases = append(cases, satCase{name: fmt.Sprintf("q%d", i), sys: sys, init: init})
	}
	return cases
}

func benchPoststar(b *testing.B, netName string) {
	cases := buildCases(b, netName)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			res, err := pds.Poststar(c.sys.PDS, c.init.Clone(), c.sys.Dim)
			if err != nil {
				b.Fatal(err)
			}
			if res.Auto.NumTrans() == 0 {
				b.Fatal("empty saturation result")
			}
		}
	}
}

// BenchmarkPoststarZoo is the canonical hot-path benchmark: full post*
// saturation of the over-approximation for a query set on the 84-router
// Topology-Zoo-scale synthetic WAN.
func BenchmarkPoststarZoo(b *testing.B) { benchPoststar(b, "zoo") }

// BenchmarkPoststarRunningExample saturates the paper's Figure 1 network.
func BenchmarkPoststarRunningExample(b *testing.B) { benchPoststar(b, "running-example") }

// BenchmarkPoststarNordunet saturates Table 1 queries on the NORDUnet-scale
// operator network.
func BenchmarkPoststarNordunet(b *testing.B) { benchPoststar(b, "nordunet") }

// BenchmarkPrestarZoo saturates pre* (the cross-validation direction) on
// the same zoo-scale workload, seeding from the final-spec side.
func BenchmarkPrestarZoo(b *testing.B) {
	cases := buildCases(b, "zoo")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			res := pds.Prestar(c.sys.PDS, c.init.Clone())
			if res.Auto.NumTrans() == 0 {
				b.Fatal("empty saturation result")
			}
		}
	}
}
