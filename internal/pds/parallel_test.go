package pds_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"aalwines/internal/obs"
	"aalwines/internal/pds"
)

// The parallel saturation path promises byte-identical results to the
// serial engine: same transitions in the same per-state order, same
// weights, same witness structure, same early-accept stopping point. These
// tests enforce that promise over the real translated corpus (the paper's
// running example and the zoo-scale synthetic WAN) at several worker
// counts. GOMAXPROCS is raised for the duration so the sharded path
// actually engages on single-CPU CI runners (runParallel clamps to
// GOMAXPROCS and falls back to serial below 2).

// dumpResult renders the complete observable state of a saturation result:
// per-state edge lists in insertion order with weights, accept flags, and
// the full recursive witness derivation of every edge. Two results with
// equal dumps are byte-identical for every downstream consumer
// (FindAccepting, Reconstruct, trace decoding).
func dumpResult(r *pds.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dim=%d early=%v states=%d trans=%d\n",
		r.Dim, r.EarlyAccepted, r.Auto.NumStates(), r.Auto.NumTrans())
	for s := 0; s < r.Auto.NumStates(); s++ {
		fmt.Fprintf(&b, "s%d accept=%v\n", s, r.Auto.Accepting(pds.State(s)))
		for i, e := range r.Auto.Out(pds.State(s)) {
			fmt.Fprintf(&b, "  e%d sym=%d to=%d w=%v wit=", i, e.Sym, e.To, e.Weight)
			dumpWitness(&b, e.Wit)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func dumpWitness(b *strings.Builder, w *pds.Witness) {
	if w == nil {
		b.WriteString("nil")
		return
	}
	fmt.Fprintf(b, "{k=%d r=%d t=%d/%d/%d ps=%d w=%v p1=",
		w.Kind, w.Rule, w.T.From, w.T.Sym, w.T.To, w.PredSym, w.Weight)
	dumpWitness(b, w.Pred1)
	b.WriteString(" p2=")
	dumpWitness(b, w.Pred2)
	b.WriteByte('}')
}

func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func counterValue(name string) int64 {
	return obs.Default.Snapshot().Counters[name]
}

func TestParallelPoststarByteIdentical(t *testing.T) {
	withProcs(t, 8)
	for _, netName := range []string{"running-example", "zoo"} {
		t.Run(netName, func(t *testing.T) {
			for _, c := range buildCases(t, netName) {
				serial, err := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), pds.SatOptions{Dim: c.sys.Dim})
				if err != nil {
					t.Fatalf("%s: serial: %v", c.name, err)
				}
				want := dumpResult(serial)
				for _, j := range []int{2, 4, 8} {
					before := counterValue("pds_parallel_runs_total")
					par, err := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), pds.SatOptions{
						Dim: c.sys.Dim, Parallelism: j,
					})
					if err != nil {
						t.Fatalf("%s: parallel j=%d: %v", c.name, j, err)
					}
					if got := dumpResult(par); got != want {
						t.Fatalf("%s: parallel j=%d diverges from serial (dump lengths %d vs %d)",
							c.name, j, len(got), len(want))
					}
					if after := counterValue("pds_parallel_runs_total"); after != before+1 {
						t.Fatalf("%s: pds_parallel_runs_total %d -> %d, want +1", c.name, before, after)
					}
				}
			}
		})
	}
}

// TestParallelPoststarEarlyAccept pins the early-accept stopping point:
// a parallel run must stop at the same pop as the serial run and leave the
// identical partial automaton behind.
func TestParallelPoststarEarlyAccept(t *testing.T) {
	withProcs(t, 4)
	for _, c := range buildCases(t, "zoo") {
		opts := pds.SatOptions{
			Dim:         c.sys.Dim,
			EarlyAccept: true,
			FinalStates: c.sys.FinalStates,
			FinalSpec:   c.sys.FinalSpec,
		}
		serial, err := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), opts)
		if err != nil {
			t.Fatalf("%s: serial: %v", c.name, err)
		}
		popts := opts
		popts.Parallelism = 4
		par, err := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), popts)
		if err != nil {
			t.Fatalf("%s: parallel: %v", c.name, err)
		}
		if serial.EarlyAccepted != par.EarlyAccepted {
			t.Fatalf("%s: EarlyAccepted %v (serial) vs %v (parallel)",
				c.name, serial.EarlyAccepted, par.EarlyAccepted)
		}
		if want, got := dumpResult(serial), dumpResult(par); got != want {
			t.Fatalf("%s: early-accept parallel run diverges from serial", c.name)
		}
	}
}

// TestParallelPoststarBudget pins budget accounting: the parallel run must
// exhaust an undersized budget at exactly the same pop as the serial run.
func TestParallelPoststarBudget(t *testing.T) {
	withProcs(t, 4)
	c := buildCases(t, "zoo")[0]
	full, err := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), pds.SatOptions{Dim: c.sys.Dim})
	if err != nil {
		t.Fatal(err)
	}
	if full.Auto.NumTrans() < 10 {
		t.Skip("workload too small to truncate")
	}
	budget := int64(full.Auto.NumTrans() / 2)
	_, serr := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), pds.SatOptions{Dim: c.sys.Dim, Budget: budget})
	_, perr := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), pds.SatOptions{
		Dim: c.sys.Dim, Budget: budget, Parallelism: 4,
	})
	if serr != perr {
		t.Fatalf("budget outcomes differ: serial %v, parallel %v", serr, perr)
	}
	if serr == nil {
		t.Fatalf("expected ErrBudget for truncated budget %d", budget)
	}
}

// TestParallelPoststarSerialFallback checks the GOMAXPROCS clamp: at
// GOMAXPROCS=1, Parallelism > 1 must silently take the serial path (and
// not count as a parallel run).
func TestParallelPoststarSerialFallback(t *testing.T) {
	withProcs(t, 1)
	c := buildCases(t, "running-example")[0]
	before := counterValue("pds_parallel_runs_total")
	serial, err := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), pds.SatOptions{Dim: c.sys.Dim})
	if err != nil {
		t.Fatal(err)
	}
	par, err := pds.PoststarOpts(c.sys.PDS, c.init.Clone(), pds.SatOptions{Dim: c.sys.Dim, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if counterValue("pds_parallel_runs_total") != before {
		t.Fatal("clamped run still counted as parallel")
	}
	if dumpResult(par) != dumpResult(serial) {
		t.Fatal("clamped parallel run diverges from serial")
	}
}
