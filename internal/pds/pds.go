// Package pds implements pushdown systems and the P-automaton saturation
// algorithms that decide reachability between regular sets of
// configurations: post* and pre* (Bouajjani–Esparza–Maler 1997; the
// worklist formulations follow Schwoon's thesis, 2002). Transitions carry
// witness records from which the engine reconstructs the rule sequence —
// and hence the network trace — that justifies reachability.
//
// The weighted generalisation (Reps–Schwoon–Jha–Melski 2005) used by the
// quantitative engine lives in internal/wpds and shares these types.
package pds

import (
	"fmt"
	"sort"
)

// State is a control state of the pushdown system, or an extra state of a
// P-automaton. Control states are the dense range [0, NumStates).
type State int32

// Sym is a stack symbol. The value Eps marks epsilon transitions inside
// P-automata; it is never a real stack symbol.
type Sym uint32

// Eps is the pseudo-symbol of epsilon transitions in P-automata.
const Eps Sym = ^Sym(0)

// RuleKind distinguishes the three normalised rule shapes.
type RuleKind uint8

const (
	// PopRule is ⟨p,γ⟩ ↪ ⟨p′,ε⟩.
	PopRule RuleKind = iota
	// SwapRule is ⟨p,γ⟩ ↪ ⟨p′,γ′⟩.
	SwapRule
	// PushRule is ⟨p,γ⟩ ↪ ⟨p′,γ′γ″⟩ where γ′ is the new top of stack.
	PushRule
)

// Rule is a normalised pushdown rule. Weight is the rule's weight vector in
// the lexicographic min-plus semiring (nil means the semiring one, i.e. no
// cost) and is ignored by the unweighted algorithms. Tag is an opaque
// reference for the translator: it identifies the network-level action the
// rule encodes so witness rule sequences can be replayed into traces.
type Rule struct {
	FromState State
	FromSym   Sym
	ToState   State
	Kind      RuleKind
	Sym1      Sym // swap: the new top; push: the new top γ′
	Sym2      Sym // push only: the symbol below the new top γ″
	Weight    []uint64
	Tag       int32
}

// String renders the rule for diagnostics.
func (r Rule) String() string {
	switch r.Kind {
	case PopRule:
		return fmt.Sprintf("<%d,%d> -> <%d,eps>", r.FromState, r.FromSym, r.ToState)
	case SwapRule:
		return fmt.Sprintf("<%d,%d> -> <%d,%d>", r.FromState, r.FromSym, r.ToState, r.Sym1)
	default:
		return fmt.Sprintf("<%d,%d> -> <%d,%d %d>", r.FromState, r.FromSym, r.ToState, r.Sym1, r.Sym2)
	}
}

// PDS is a pushdown system: a number of control states, a stack alphabet
// size and a rule set.
type PDS struct {
	NumStates int
	NumSyms   int
	Rules     []Rule

	// Packed rule indexes, built by Freeze or lazily on first use. Both
	// are CSR-style: one flat int32 array of rule indices plus offsets,
	// instead of the previous map-of-slices/slice-of-slices layout whose
	// per-head slice headers and append regrowth dominated index memory at
	// paper scale. stateIdx[stateOff[s]:stateOff[s+1]] lists the rules
	// headed at state s; headIdx[r.off:r.off+r.n] those headed at a packed
	// (state, symbol) pair — both in ascending rule order, which callers
	// rely on for deterministic saturation.
	stateOff []int32
	stateIdx []int32
	byHead   map[uint64]headRange
	headIdx  []int32
}

// headRange locates one head's rules inside headIdx.
type headRange struct{ off, n int32 }

// headKey packs a rule head into a collision-free map key: states and
// symbols are both 32-bit.
func headKey(s State, g Sym) uint64 {
	return uint64(uint32(s))<<32 | uint64(g)
}

// New returns an empty PDS with the given control state count and stack
// alphabet size.
func New(numStates, numSyms int) *PDS {
	return &PDS{NumStates: numStates, NumSyms: numSyms}
}

// AddState appends a fresh control state and returns it.
func (p *PDS) AddState() State {
	p.NumStates++
	return State(p.NumStates - 1)
}

// AddRule appends a rule. The head must be a valid (state, symbol) pair.
func (p *PDS) AddRule(r Rule) {
	if int(r.FromState) >= p.NumStates || int(r.ToState) >= p.NumStates {
		panic(fmt.Sprintf("pds: rule %v references state outside [0,%d)", r, p.NumStates))
	}
	if int(r.FromSym) >= p.NumSyms {
		panic(fmt.Sprintf("pds: rule %v references symbol outside [0,%d)", r, p.NumSyms))
	}
	p.Rules = append(p.Rules, r)
	p.stateOff, p.stateIdx = nil, nil
	p.byHead, p.headIdx = nil, nil
}

// ReserveRules pre-sizes the rule slice for about n rules. Translation
// knows the network's rule count up front; reserving once avoids the
// append-doubling churn that dominated build allocations at paper scale.
func (p *PDS) ReserveRules(n int) {
	if cap(p.Rules) >= n {
		return
	}
	rules := make([]Rule, len(p.Rules), n)
	copy(rules, p.Rules)
	p.Rules = rules
}

// Freeze eagerly builds the rule indexes. A PDS shared by concurrent
// readers (several saturations over one translated system) must be frozen
// first: RulesFromState and RulesFrom otherwise build their indexes lazily
// on first use, which is a data race when two saturators hit the same cold
// index. AddRule after Freeze re-enters the lazy regime.
func (p *PDS) Freeze() {
	p.buildStateIdx()
	p.buildHeadIdx()
}

// buildStateIdx builds the by-state CSR: counting pass, prefix sums, then
// a fill pass in rule order (which keeps each state's list ascending).
func (p *PDS) buildStateIdx() {
	off := make([]int32, p.NumStates+1)
	for i := range p.Rules {
		off[p.Rules[i].FromState+1]++
	}
	for s := 0; s < p.NumStates; s++ {
		off[s+1] += off[s]
	}
	idx := make([]int32, len(p.Rules))
	cur := make([]int32, p.NumStates)
	copy(cur, off[:p.NumStates])
	for i := range p.Rules {
		f := p.Rules[i].FromState
		idx[cur[f]] = int32(i)
		cur[f]++
	}
	p.stateOff, p.stateIdx = off, idx
}

// buildHeadIdx builds the by-head index: per-head counts, offsets into one
// flat array, then a fill pass in rule order. The map holds fixed-size
// ranges, not slices, so there is exactly one backing allocation however
// many heads exist.
func (p *PDS) buildHeadIdx() {
	byHead := make(map[uint64]headRange, len(p.Rules))
	for i := range p.Rules {
		k := headKey(p.Rules[i].FromState, p.Rules[i].FromSym)
		hr := byHead[k]
		hr.n++
		byHead[k] = hr
	}
	var off int32
	for k, hr := range byHead {
		n := hr.n
		byHead[k] = headRange{off: off, n: 0}
		off += n
	}
	idx := make([]int32, len(p.Rules))
	for i := range p.Rules {
		k := headKey(p.Rules[i].FromState, p.Rules[i].FromSym)
		hr := byHead[k]
		idx[hr.off+hr.n] = int32(i)
		hr.n++
		byHead[k] = hr
	}
	p.byHead, p.headIdx = byHead, idx
}

// RulesFromState returns the indices of rules whose head state is s; used
// when matching rules against symbol-set transitions.
func (p *PDS) RulesFromState(s State) []int32 {
	if p.stateOff == nil {
		p.buildStateIdx()
	}
	return p.stateIdx[p.stateOff[s]:p.stateOff[s+1]]
}

// RulesFrom returns the indices of rules with head ⟨s,γ⟩.
func (p *PDS) RulesFrom(s State, g Sym) []int32 {
	if p.byHead == nil {
		p.buildHeadIdx()
	}
	hr := p.byHead[headKey(s, g)]
	return p.headIdx[hr.off : hr.off+hr.n]
}

// Stats summarises a PDS for diagnostics and the reduction reports.
type Stats struct {
	States, Syms, Rules int
	Pop, Swap, Push     int
}

// Stats returns rule counts by kind.
func (p *PDS) Stats() Stats {
	st := Stats{States: p.NumStates, Syms: p.NumSyms, Rules: len(p.Rules)}
	for _, r := range p.Rules {
		switch r.Kind {
		case PopRule:
			st.Pop++
		case SwapRule:
			st.Swap++
		case PushRule:
			st.Push++
		}
	}
	return st
}

// Config is a pushdown configuration ⟨p, w⟩ with w written top-first.
type Config struct {
	State State
	Stack []Sym
}

// String renders the configuration.
func (c Config) String() string {
	syms := make([]string, len(c.Stack))
	for i, s := range c.Stack {
		syms[i] = fmt.Sprintf("%d", s)
	}
	return fmt.Sprintf("<%d; %v>", c.State, syms)
}

// Step applies one rule to a configuration if its head matches; ok reports
// whether it applied. Used by tests and by witness replay.
func (c Config) Step(r Rule) (Config, bool) {
	if len(c.Stack) == 0 || c.State != r.FromState || c.Stack[0] != r.FromSym {
		return Config{}, false
	}
	rest := c.Stack[1:]
	switch r.Kind {
	case PopRule:
		return Config{State: r.ToState, Stack: rest}, true
	case SwapRule:
		st := make([]Sym, 0, len(rest)+1)
		st = append(st, r.Sym1)
		st = append(st, rest...)
		return Config{State: r.ToState, Stack: st}, true
	case PushRule:
		st := make([]Sym, 0, len(rest)+2)
		st = append(st, r.Sym1, r.Sym2)
		st = append(st, rest...)
		return Config{State: r.ToState, Stack: st}, true
	}
	return Config{}, false
}

// SortRulesDeterministic orders the rule slice for reproducible output;
// used by the Moped text exporter and tests.
func SortRulesDeterministic(rules []Rule) {
	sort.Slice(rules, func(i, j int) bool {
		a, b := rules[i], rules[j]
		if a.FromState != b.FromState {
			return a.FromState < b.FromState
		}
		if a.FromSym != b.FromSym {
			return a.FromSym < b.FromSym
		}
		if a.ToState != b.ToState {
			return a.ToState < b.ToState
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Sym1 != b.Sym1 {
			return a.Sym1 < b.Sym1
		}
		return a.Sym2 < b.Sym2
	})
}
