package pds

import (
	"testing"

	"aalwines/internal/nfa"
)

// setInit builds an initial automaton accepting ⟨0, x ⊥⟩ for every x in
// tops, using a single virtual set edge.
func setInit(p *PDS, tops []Sym, bot Sym) *Auto {
	a := NewAuto(p)
	s1 := a.AddState()
	s2 := a.AddState()
	set := nfa.NewSet(p.NumSyms)
	for _, t := range tops {
		set.Add(nfa.Sym(t))
	}
	a.AddSetEdge(0, set, s1, nil)
	a.AddEdge(s1, bot, s2)
	a.SetAccept(s2, true)
	return a
}

// TestSetEdgeSaturation: rules fire for each concrete member of a set edge.
func TestSetEdgeSaturation(t *testing.T) {
	// Symbols: 0,1 tops; 2 bottom. Rule swaps 0 -> 1 moving to state 1;
	// rule pops 1 moving to state 2... states: 0,1,2.
	p := New(3, 3)
	p.AddRule(Rule{FromState: 0, FromSym: 0, ToState: 1, Kind: SwapRule, Sym1: 1})
	p.AddRule(Rule{FromState: 0, FromSym: 1, ToState: 2, Kind: SwapRule, Sym1: 0})
	init := setInit(p, []Sym{0, 1}, 2)
	res, err := Poststar(p, init, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		c    Config
		want bool
	}{
		{Config{0, []Sym{0, 2}}, true}, // initial via set
		{Config{0, []Sym{1, 2}}, true}, // initial via set
		{Config{1, []Sym{1, 2}}, true}, // rule 0 applied to member 0
		{Config{2, []Sym{0, 2}}, true}, // rule 1 applied to member 1
		{Config{1, []Sym{0, 2}}, false},
		{Config{0, []Sym{2, 2}}, false}, // bottom not in the set
	}
	for _, c := range cases {
		if got := res.Auto.AcceptsConfig(c.c); got != c.want {
			t.Errorf("AcceptsConfig(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

// TestSetEdgeWitness: reconstruction through a set edge resolves the
// concrete symbol the rule consumed.
func TestSetEdgeWitness(t *testing.T) {
	p := New(3, 3)
	p.AddRule(Rule{FromState: 0, FromSym: 1, ToState: 2, Kind: SwapRule, Sym1: 0, Tag: 7})
	init := setInit(p, []Sym{0, 1}, 2)
	res, err := Poststar(p, init, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc, ok := res.FindAccepting([]State{2}, anySpec(3))
	if !ok {
		t.Fatal("target state not reached")
	}
	ic, rules, err := res.Reconstruct(acc)
	if err != nil {
		t.Fatal(err)
	}
	// The derivation must have started from ⟨0, 1 2⟩ — the set member the
	// rule consumed — not from the other member 0.
	if ic.State != 0 || len(ic.Stack) != 2 || ic.Stack[0] != 1 || ic.Stack[1] != 2 {
		t.Fatalf("initial config = %v, want ⟨0, [1 2]⟩", ic)
	}
	if len(rules) != 1 || p.Rules[rules[0]].Tag != 7 {
		t.Fatalf("rules = %v", rules)
	}
	if _, err := res.Replay(ic, rules); err != nil {
		t.Fatal(err)
	}
}

// TestSetEdgeFindAcceptingIntersection: the search must pick a symbol in
// the intersection of the edge set and the spec set.
func TestSetEdgeFindAcceptingIntersection(t *testing.T) {
	p := New(1, 4) // symbols 0,1,2 tops; 3 bottom
	a := NewAuto(p)
	s1 := a.AddState()
	s2 := a.AddState()
	set := nfa.SetOf(4, 0, 1, 2)
	a.AddSetEdge(0, set, s1, nil)
	a.AddEdge(s1, 3, s2)
	a.SetAccept(s2, true)
	res, err := Poststar(p, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Spec only allows top = 1.
	spec := nfa.New(4)
	m := spec.AddState()
	f := spec.AddState()
	spec.AddArc(spec.Start(), nfa.SetOf(4, 1), m)
	spec.AddArc(m, nfa.SetOf(4, 3), f)
	spec.SetAccept(f, true)
	acc, ok := res.FindAccepting([]State{0}, spec)
	if !ok {
		t.Fatal("no accepted config found")
	}
	if acc.Config.Stack[0] != 1 {
		t.Fatalf("chosen symbol = %d, want 1 (the intersection)", acc.Config.Stack[0])
	}
}

// TestVirtualSymInterning: equal sets share a virtual symbol.
func TestVirtualSymInterning(t *testing.T) {
	p := New(1, 4)
	a := NewAuto(p)
	s1 := a.VirtualSym(nfa.SetOf(4, 0, 2))
	s2 := a.VirtualSym(nfa.SetOf(4, 0, 2))
	s3 := a.VirtualSym(nfa.SetOf(4, 1))
	if s1 != s2 {
		t.Error("equal sets got different virtual symbols")
	}
	if s1 == s3 {
		t.Error("different sets share a virtual symbol")
	}
	if a.SymSet(s1) == nil || a.SymSet(0) != nil || a.SymSet(Eps) != nil {
		t.Error("SymSet resolution wrong")
	}
	if !a.Matches(s1, 2) || a.Matches(s1, 1) || !a.Matches(1, 1) || a.Matches(Eps, 1) {
		t.Error("Matches wrong")
	}
}

// TestPrestarWithSetTarget: pre* of a target with a set edge.
func TestPrestarWithSetTarget(t *testing.T) {
	// ⟨0,0 w⟩ -> swap -> ⟨1,1 w⟩; target accepts ⟨1, x ⊥⟩ for x ∈ {1,2}.
	p := New(2, 4)
	p.AddRule(Rule{FromState: 0, FromSym: 0, ToState: 1, Kind: SwapRule, Sym1: 1})
	target := NewAuto(p)
	s1 := target.AddState()
	s2 := target.AddState()
	target.AddSetEdge(1, nfa.SetOf(4, 1, 2), s1, nil)
	target.AddEdge(s1, 3, s2)
	target.SetAccept(s2, true)
	res := Prestar(p, target)
	if !res.Auto.AcceptsConfig(Config{0, []Sym{0, 3}}) {
		t.Error("pre* misses ⟨0, 0⊥⟩")
	}
	if !res.Auto.AcceptsConfig(Config{1, []Sym{2, 3}}) {
		t.Error("pre* misses target config itself")
	}
	if res.Auto.AcceptsConfig(Config{0, []Sym{2, 3}}) {
		t.Error("pre* accepts unrelated config")
	}
}
