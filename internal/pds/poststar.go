package pds

import (
	"container/heap"
	"errors"
	"fmt"

	"aalwines/internal/nfa"
)

// Result is a saturated P-automaton together with the PDS that produced it.
// Dim is the weight vector dimension (0 for unweighted runs).
type Result struct {
	PDS  *PDS
	Auto *Auto
	Dim  int
	// Mids maps push-rule mid states back to their (state, symbol) key;
	// diagnostic only.
	Mids map[State][2]uint32
	// EarlyAccepted reports that the run stopped before the fixed point
	// because SatOptions.EarlyAccept found an accepting configuration
	// reachable. The automaton then under-approximates post*(L(init)) but
	// every accepted configuration — and every witness — is still sound.
	EarlyAccepted bool
}

// SatOptions bundles the optional controls of a post* run.
type SatOptions struct {
	// Dim is the weight vector dimension (0 = unweighted).
	Dim int
	// Budget bounds the number of worklist pops (0 = unlimited); an
	// exhausted budget aborts with ErrBudget.
	Budget int64
	// Stop, when non-nil and closed, aborts the run with ErrStopped at the
	// next cadence check.
	Stop <-chan struct{}
	// EarlyAccept lets an unweighted run return as soon as some accepting
	// configuration of the (FinalStates, FinalSpec) query is reachable in
	// the partially saturated automaton, setting Result.EarlyAccepted.
	// Weighted runs ignore it: minimal witness weights need the full fixed
	// point, and so does any negative ("Unsatisfied") answer.
	EarlyAccept bool
	// FinalStates and FinalSpec define the acceptance check: states the
	// query may end in and the ε-free NFA over the stack alphabet the
	// final stack must match (the engine passes the translated query's
	// FinalStates/FinalSpec).
	FinalStates []State
	FinalSpec   *nfa.NFA
}

// Poststar computes post*(L(init)): the saturated automaton accepts exactly
// the configurations reachable from configurations accepted by init. The
// input automaton must have no transitions into control states; it is
// mutated in place and becomes the result automaton.
//
// When dim > 0 the computation is the weighted post* of Reps et al.: rule
// weights (vectors of length dim, nil meaning the neutral all-zeros) are
// accumulated, every transition keeps its lexicographically minimal weight,
// and witness records always describe a derivation achieving the stored
// weight.
func Poststar(p *PDS, init *Auto, dim int) (*Result, error) {
	return PoststarOpts(p, init, SatOptions{Dim: dim})
}

// ErrBudget is returned by PoststarBudget when the work budget is
// exhausted; it plays the role of the experiment timeout.
var ErrBudget = errors.New("pds: post* work budget exhausted")

// ErrStopped is returned by PoststarStop when the stop channel closes
// before saturation completes; the engine maps it to the caller's context
// error.
var ErrStopped = errors.New("pds: post* stopped")

// PoststarBudget is Poststar with a cooperative work budget.
func PoststarBudget(p *PDS, init *Auto, dim int, budget int64) (*Result, error) {
	return PoststarOpts(p, init, SatOptions{Dim: dim, Budget: budget})
}

// PoststarStop is PoststarBudget with cooperative cancellation.
func PoststarStop(p *PDS, init *Auto, dim int, budget int64, stop <-chan struct{}) (*Result, error) {
	return PoststarOpts(p, init, SatOptions{Dim: dim, Budget: budget, Stop: stop})
}

// edgeRef locates a worklist entry as (source state, out-edge index): the
// pop reads the edge slot directly instead of re-resolving a Trans through
// the transition index, and the fQueued flag on the slot replaces the old
// inQueue map.
type edgeRef struct {
	from State
	ei   int32
}

// checkEvery is the steady-state spacing of the cooperative checks in the
// pop loop: stop-channel polls and, when enabled, the early-accept
// reachability probe. The cadence starts at firstCheck and doubles up to
// checkEvery, so small runs (which may saturate in well under a thousand
// pops) still get probed a few times while large runs keep the checks
// invisible in profiles.
const (
	checkEvery = 1024
	firstCheck = 64
)

// PoststarOpts is Poststar with all optional controls.
func PoststarOpts(p *PDS, init *Auto, o SatOptions) (*Result, error) {
	if err := init.Validate(); err != nil {
		return nil, err
	}
	dim, budget, stop := o.Dim, o.Budget, o.Stop
	a := init
	var tally satTally
	sc := getScratch()
	queue, head := sc.queue[:0], 0
	defer func() {
		sc.queue = queue
		putScratch(sc)
		tally.probes += a.takeProbes()
		tally.flushPost()
	}()
	var wts weightArena
	var wits witArena
	one := func() []uint64 {
		if dim == 0 {
			return nil
		}
		return wts.zero(dim)
	}
	a.NormalizeWeights(dim)

	// mid states q_{p′,γ′}, one per (ToState, Sym1) of push rules.
	mids := map[[2]uint32]State{}
	midOf := func(s State, g Sym) State {
		k := [2]uint32{uint32(s), uint32(g)}
		if m, ok := mids[k]; ok {
			return m
		}
		m := a.AddState()
		mids[k] = m
		return m
	}

	enqueue := func(from State, ei int32) {
		se := &a.states[from]
		if se.meta[ei].flags&fQueued == 0 {
			se.meta[ei].flags |= fQueued
			queue = append(queue, edgeRef{from, ei})
			tally.notePush(len(queue) - head)
		}
	}
	// push inserts (or improves) a transition and, on change, materialises
	// its witness record and puts the edge on the worklist. Deferring the
	// record to after the insert decision is the main allocation win: most
	// derivations re-derive an existing transition.
	push := func(t Trans, w []uint64, kind WitKind, rule int32, predSym Sym, p1, p2 *Witness) {
		i, changed := a.upsert(t, w)
		if !changed {
			return
		}
		tally.inserted++
		a.states[t.From].edges[i].Wit = wits.new(Witness{
			Kind: kind, Rule: rule, T: t, PredSym: predSym, Pred1: p1, Pred2: p2, Weight: w,
		})
		enqueue(t.From, i)
	}
	// Seed the worklist with every initial transition.
	for s := 0; s < a.NumStates(); s++ {
		for i := range a.states[s].edges {
			enqueue(State(s), int32(i))
		}
	}

	// epsInto[q] lists the sources of ε-transitions into q; indexed by
	// state, with lazy growth for the mid states added during the run.
	epsInto := sc.epsIntoFor(a.NumStates())
	epsAppend := func(to, src State) {
		for int(to) >= len(epsInto) {
			epsInto = append(epsInto, nil)
		}
		epsInto[to] = append(epsInto[to], src)
	}
	epsOf := func(s State) []State {
		if int(s) < len(epsInto) {
			return epsInto[s]
		}
		return nil
	}

	// applyRules fires every PDS rule matching transition t (whose source
	// is a control state) given its current weight and witness record.
	applyRules := func(t Trans, w []uint64, rec *Witness) {
		apply := func(ri int32) {
			r := &p.Rules[ri]
			nw := wts.add(w, ruleWeight(r, dim))
			switch r.Kind {
			case PopRule:
				push(Trans{r.ToState, Eps, t.To}, nw, WitRule, ri, r.FromSym, rec, nil)
			case SwapRule:
				push(Trans{r.ToState, r.Sym1, t.To}, nw, WitRule, ri, r.FromSym, rec, nil)
			case PushRule:
				mid := midOf(r.ToState, r.Sym1)
				push(Trans{r.ToState, r.Sym1, mid}, one(), WitRule, ri, r.FromSym, rec, nil)
				push(Trans{mid, r.Sym2, t.To}, nw, WitPushB, ri, r.FromSym, rec, nil)
			}
		}
		if set := a.SymSet(t.Sym); set != nil {
			rs := p.RulesFromState(t.From)
			tally.probes += int64(len(rs))
			for _, ri := range rs {
				if set.Has(nfa.Sym(p.Rules[ri].FromSym)) {
					apply(ri)
				}
			}
		} else {
			rs := p.RulesFrom(t.From, t.Sym)
			tally.probes += int64(len(rs))
			for _, ri := range rs {
				apply(ri)
			}
		}
	}

	earlyOK := o.EarlyAccept && dim == 0 && o.FinalSpec != nil && len(o.FinalStates) > 0
	var specStarts []int
	if earlyOK {
		specStarts = o.FinalSpec.EpsClosure(o.FinalSpec.Start())
	}
	finish := func(early bool) *Result {
		res := &Result{PDS: p, Auto: a, Dim: dim, Mids: map[State][2]uint32{}, EarlyAccepted: early}
		for k, v := range mids {
			res.Mids[v] = k
		}
		return res
	}
	if earlyOK && acceptReachable(a, o.FinalStates, specStarts, o.FinalSpec, sc) {
		tally.earlyAccepts = 1
		return finish(true), nil
	}

	var work int64
	nextCheck := int64(firstCheck)
	for head < len(queue) {
		if work++; budget > 0 && work > budget {
			tally.pops = work
			budgetExhausted.Inc()
			return nil, ErrBudget
		}
		if work == nextCheck {
			if nextCheck < checkEvery {
				nextCheck *= 2
			} else {
				nextCheck += checkEvery
			}
			if stop != nil {
				select {
				case <-stop:
					tally.pops = work
					satStopped.Inc()
					return nil, ErrStopped
				default:
				}
			}
			if earlyOK && acceptReachable(a, o.FinalStates, specStarts, o.FinalSpec, sc) {
				tally.pops = work
				tally.earlyAccepts = 1
				return finish(true), nil
			}
		}
		ref := queue[head]
		head++
		if head == len(queue) {
			queue, head = queue[:0], 0
		} else if head >= 4096 && head*2 >= len(queue) {
			// Compact so the backing array stops growing once the drain
			// keeps pace with the pushes (the old slice-off-the-front
			// worklist retained and repeatedly recopied the whole array).
			n := copy(queue, queue[head:])
			queue, head = queue[:n], 0
		}
		se := &a.states[ref.from]
		se.meta[ref.ei].flags &^= fQueued
		e := &se.edges[ref.ei]
		t := Trans{ref.from, e.Sym, e.To}
		w, rec := e.Weight, e.Wit

		if t.Sym == Eps {
			// Register and combine with everything currently leaving t.To.
			if se.meta[ref.ei].flags&fEpsReg == 0 {
				se.meta[ref.ei].flags |= fEpsReg
				epsAppend(t.To, t.From)
			}
			out := a.states[t.To].edges
			for i := range out {
				e2 := &out[i]
				if e2.Sym == Eps {
					continue // ε-targets are never ε-sources
				}
				nw := wts.add(w, e2.Weight)
				push(Trans{t.From, e2.Sym, e2.To}, nw, WitCombine, -1, 0, rec, e2.Wit)
			}
			continue
		}

		// Combine ε-transitions into t.From with t (the symmetric case;
		// only mid states ever gain new outgoing transitions).
		for _, src := range epsOf(t.From) {
			et, ok2 := a.Get(Trans{src, Eps, t.From})
			if !ok2 {
				continue
			}
			nw := wts.add(et.Weight, w)
			push(Trans{src, t.Sym, t.To}, nw, WitCombine, -1, 0, et.Wit, rec)
		}

		if int(t.From) >= p.NumStates {
			continue // no rules apply to non-control sources
		}
		applyRules(t, w, rec)
	}

	tally.pops = work
	return finish(false), nil
}

func ruleWeight(r *Rule, dim int) []uint64 {
	if dim == 0 {
		return nil
	}
	return r.Weight
}

// Accepted is a configuration found by FindAccepting, with the automaton
// path that accepts it and the total path weight. Config.Stack holds the
// concrete symbols chosen along the path (virtual set edges are resolved to
// one member).
type Accepted struct {
	Config Config
	Path   []Trans
	Syms   []Sym // concrete symbol per path transition
	Weight []uint64
}

// FindAccepting searches the saturated automaton for a configuration
// ⟨p, w⟩ such that p ∈ starts, the automaton accepts w from p, and w is
// accepted by spec (an epsilon-free NFA over the concrete stack alphabet).
// Among all such configurations it returns one minimising the total
// transition weight (lexicographically, then by stack length); ok is false
// when none exists.
func (r *Result) FindAccepting(starts []State, spec *nfa.NFA) (Accepted, bool) {
	type node struct {
		s State
		n int // spec state
	}
	type back struct {
		from node
		t    Trans
		sym  Sym
	}
	dist := map[node][]uint64{}
	prev := map[node]back{}
	hopCount := map[node]int{}
	pq := &accHeap{}
	for _, p := range starts {
		for _, ns := range spec.EpsClosure(spec.Start()) {
			nd := node{p, ns}
			if _, ok := dist[nd]; !ok {
				zero := make([]uint64, r.Dim)
				dist[nd] = zero
				hopCount[nd] = 0
				heap.Push(pq, accItem{nd.s, nd.n, zero, 0})
			}
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(accItem)
		nd := node{it.s, it.n}
		if d, ok := dist[nd]; ok && (lexLess(d, it.w) || (equalVec(d, it.w) && hopCount[nd] < it.hops)) {
			continue // stale queue entry superseded by a better one
		}
		if r.Auto.Accepting(nd.s) && spec.Accepting(nd.n) {
			var path []Trans
			var syms []Sym
			cur := nd
			for {
				b, ok := prev[cur]
				if !ok {
					break
				}
				path = append(path, b.t)
				syms = append(syms, b.sym)
				cur = b.from
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
				syms[i], syms[j] = syms[j], syms[i]
			}
			stack := make([]Sym, len(syms))
			copy(stack, syms)
			start := cur.s
			if len(path) > 0 {
				start = path[0].From
			}
			return Accepted{
				Config: Config{State: start, Stack: stack},
				Path:   path,
				Syms:   syms,
				Weight: it.w,
			}, true
		}
		for _, e := range r.Auto.Out(nd.s) {
			if e.Sym == Eps {
				continue
			}
			for _, arc := range spec.Arcs(nd.n) {
				var csym Sym
				if set := r.Auto.SymSet(e.Sym); set != nil {
					inter := arc.Set.Inter(set)
					first, ok := inter.First()
					if !ok {
						continue
					}
					csym = Sym(first)
				} else {
					if !arc.Set.Has(nfa.Sym(e.Sym)) {
						continue
					}
					csym = e.Sym
				}
				nn := node{e.To, arc.To}
				nw := lexAdd(it.w, e.Weight)
				nh := it.hops + 1
				old, seen := dist[nn]
				if !seen || lexLess(nw, old) || (equalVec(nw, old) && nh < hopCount[nn]) {
					dist[nn] = nw
					hopCount[nn] = nh
					prev[nn] = back{nd, Trans{nd.s, e.Sym, e.To}, csym}
					heap.Push(pq, accItem{nn.s, nn.n, nw, nh})
				}
			}
		}
	}
	return Accepted{}, false
}

func equalVec(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type accItem struct {
	s    State
	n    int
	w    []uint64
	hops int
}

type accHeap []accItem

func (h accHeap) Len() int { return len(h) }
func (h accHeap) Less(i, j int) bool {
	if !equalVec(h[i].w, h[j].w) {
		return lexLess(h[i].w, h[j].w)
	}
	return h[i].hops < h[j].hops
}
func (h accHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *accHeap) Push(x interface{}) { *h = append(*h, x.(accItem)) }
func (h *accHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Reconstruct unapplies witness records along an accepting path of the
// post* automaton, returning the initial configuration the derivation
// started from and the rule indices in application order. The path and
// concrete symbol choices come from FindAccepting.
func (r *Result) Reconstruct(acc Accepted) (Config, []int32, error) {
	if len(acc.Path) == 0 {
		return Config{}, nil, errors.New("pds: empty accepting path")
	}
	type entry struct {
		rec *Witness
		sym Sym // concrete symbol resolved for this transition
	}
	recs := make([]entry, len(acc.Path))
	for i, t := range acc.Path {
		e, ok := r.Auto.Get(t)
		if !ok {
			return Config{}, nil, fmt.Errorf("pds: path transition %v not in automaton", t)
		}
		recs[i] = entry{e.Wit, acc.Syms[i]}
	}
	var reversed []int32
	guard := 0
	for recs[0].rec.Kind != WitInitial {
		if guard++; guard > 50_000_000 {
			return Config{}, nil, errors.New("pds: witness reconstruction did not terminate")
		}
		head := recs[0].rec
		switch head.Kind {
		case WitRule:
			rule := r.PDS.Rules[head.Rule]
			switch rule.Kind {
			case SwapRule:
				reversed = append(reversed, head.Rule)
				recs[0] = entry{head.Pred1, head.PredSym}
			case PushRule:
				if len(recs) < 2 {
					return Config{}, nil, errors.New("pds: push-A record without a following transition")
				}
				b := recs[1].rec
				if b.Kind != WitPushB {
					return Config{}, nil, fmt.Errorf("pds: expected push-B record after mid state, got kind %d", b.Kind)
				}
				reversed = append(reversed, b.Rule)
				nrecs := make([]entry, 0, len(recs)-1)
				nrecs = append(nrecs, entry{b.Pred1, b.PredSym})
				nrecs = append(nrecs, recs[2:]...)
				recs = nrecs
			default:
				return Config{}, nil, errors.New("pds: pop-derived transition in a non-epsilon path")
			}
		case WitCombine:
			epsRec := head.Pred1
			if epsRec.Kind != WitRule || r.PDS.Rules[epsRec.Rule].Kind != PopRule {
				return Config{}, nil, errors.New("pds: combine record without pop-rule epsilon predecessor")
			}
			reversed = append(reversed, epsRec.Rule)
			nrecs := make([]entry, 0, len(recs)+1)
			nrecs = append(nrecs, entry{epsRec.Pred1, epsRec.PredSym}, entry{head.Pred2, recs[0].sym})
			nrecs = append(nrecs, recs[1:]...)
			recs = nrecs
		case WitPushB:
			return Config{}, nil, errors.New("pds: push-B record at path head")
		default:
			return Config{}, nil, fmt.Errorf("pds: unknown witness kind %d", head.Kind)
		}
	}
	// All remaining records must be initial; they spell the start config.
	stack := make([]Sym, len(recs))
	for i, en := range recs {
		if en.rec.Kind != WitInitial {
			return Config{}, nil, fmt.Errorf("pds: record %d not initial after head reached initial", i)
		}
		stack[i] = en.sym
	}
	rules := make([]int32, len(reversed))
	for i, x := range reversed {
		rules[len(reversed)-1-i] = x
	}
	return Config{State: recs[0].rec.T.From, Stack: stack}, rules, nil
}

// Replay applies a rule sequence to a configuration, returning every
// intermediate configuration (len(rules)+1 entries). It fails if a rule's
// head does not match, which indicates a reconstruction bug.
func (r *Result) Replay(init Config, rules []int32) ([]Config, error) {
	configs := make([]Config, 0, len(rules)+1)
	cur := init
	configs = append(configs, cur)
	for _, ri := range rules {
		next, ok := cur.Step(r.PDS.Rules[ri])
		if !ok {
			return nil, fmt.Errorf("pds: rule %v does not apply to %v", r.PDS.Rules[ri], cur)
		}
		cur = next
		configs = append(configs, cur)
	}
	return configs, nil
}
