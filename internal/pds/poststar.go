package pds

import (
	"container/heap"
	"errors"
	"fmt"

	"aalwines/internal/nfa"
)

// Result is a saturated P-automaton together with the PDS that produced it.
// Dim is the weight vector dimension (0 for unweighted runs).
type Result struct {
	PDS  *PDS
	Auto *Auto
	Dim  int
	// Mids maps push-rule mid states back to their (state, symbol) key;
	// diagnostic only.
	Mids map[State][2]uint32
	// EarlyAccepted reports that the run stopped before the fixed point
	// because SatOptions.EarlyAccept found an accepting configuration
	// reachable. The automaton then under-approximates post*(L(init)) but
	// every accepted configuration — and every witness — is still sound.
	EarlyAccepted bool
}

// SatOptions bundles the optional controls of a saturation run. Post*
// honours every field; pre* (PrestarOpts) honours Dim=0 runs with Budget
// and Stop and ignores the early-accept fields.
type SatOptions struct {
	// Dim is the weight vector dimension (0 = unweighted).
	Dim int
	// Budget bounds the number of worklist pops (0 = unlimited); an
	// exhausted budget aborts with ErrBudget.
	Budget int64
	// Stop, when non-nil and closed, aborts the run with ErrStopped at the
	// next cadence check.
	Stop <-chan struct{}
	// EarlyAccept lets an unweighted run return as soon as some accepting
	// configuration of the (FinalStates, FinalSpec) query is reachable in
	// the partially saturated automaton, setting Result.EarlyAccepted.
	// Weighted runs ignore it: minimal witness weights need the full fixed
	// point, and so does any negative ("Unsatisfied") answer.
	EarlyAccept bool
	// FinalStates and FinalSpec define the acceptance check: states the
	// query may end in and the ε-free NFA over the stack alphabet the
	// final stack must match (the engine passes the translated query's
	// FinalStates/FinalSpec).
	FinalStates []State
	FinalSpec   *nfa.NFA
	// Parallelism > 1 enables the sharded speculative rule-matching path:
	// the worklist is processed in rounds, each round's pending pops are
	// partitioned by a hash of their packed (state, symbol) pair across
	// that many matcher workers (with work-stealing between shards), and
	// the commit pass replays the exact serial mutation sequence using the
	// precomputed match lists. The Result — witnesses, weights, transition
	// order, early-accept point — is byte-identical to a serial run; see
	// DESIGN.md §11 for why the commit pass must stay sequential.
	Parallelism int
}

// Poststar computes post*(L(init)): the saturated automaton accepts exactly
// the configurations reachable from configurations accepted by init. The
// input automaton must have no transitions into control states; it is
// mutated in place and becomes the result automaton.
//
// When dim > 0 the computation is the weighted post* of Reps et al.: rule
// weights (vectors of length dim, nil meaning the neutral all-zeros) are
// accumulated, every transition keeps its lexicographically minimal weight,
// and witness records always describe a derivation achieving the stored
// weight.
func Poststar(p *PDS, init *Auto, dim int) (*Result, error) {
	return PoststarOpts(p, init, SatOptions{Dim: dim})
}

// ErrBudget is returned by PoststarBudget when the work budget is
// exhausted; it plays the role of the experiment timeout.
var ErrBudget = errors.New("pds: post* work budget exhausted")

// ErrStopped is returned by PoststarStop when the stop channel closes
// before saturation completes; the engine maps it to the caller's context
// error.
var ErrStopped = errors.New("pds: post* stopped")

// PoststarBudget is Poststar with a cooperative work budget.
func PoststarBudget(p *PDS, init *Auto, dim int, budget int64) (*Result, error) {
	return PoststarOpts(p, init, SatOptions{Dim: dim, Budget: budget})
}

// PoststarStop is PoststarBudget with cooperative cancellation.
func PoststarStop(p *PDS, init *Auto, dim int, budget int64, stop <-chan struct{}) (*Result, error) {
	return PoststarOpts(p, init, SatOptions{Dim: dim, Budget: budget, Stop: stop})
}

// edgeRef locates a worklist entry as (source state, out-edge index): the
// pop reads the edge slot directly instead of re-resolving a Trans through
// the transition index, and the fQueued flag on the slot replaces the old
// inQueue map.
type edgeRef struct {
	from State
	ei   int32
}

// checkEvery is the steady-state spacing of the cooperative checks in the
// pop loop: stop-channel polls and, when enabled, the early-accept
// reachability probe. The cadence starts at firstCheck and doubles up to
// checkEvery, so small runs (which may saturate in well under a thousand
// pops) still get probed a few times while large runs keep the checks
// invisible in profiles.
const (
	checkEvery = 1024
	firstCheck = 64
)

// postRun is the mutable state of one post* saturation. The serial and
// parallel drivers share it: both drain the same worklist with the same
// pop body (process) and the same cooperative checkpoint (beat), so the
// mutation sequence — and hence the resulting automaton, witnesses and
// obs tallies — is identical between them by construction.
type postRun struct {
	p     *PDS
	a     *Auto
	o     SatOptions
	dim   int
	tally satTally
	sc    *satScratch

	queue []edgeRef
	head  int

	wts  weightArena
	wits witArena

	// mid states q_{p′,γ′}, one per (ToState, Sym1) of push rules.
	mids map[[2]uint32]State

	// epsInto[q] lists the sources of ε-transitions into q; indexed by
	// state, with lazy growth for the mid states added during the run.
	epsInto [][]State

	earlyOK    bool
	specStarts []int

	work      int64
	nextCheck int64
}

// PoststarOpts is Poststar with all optional controls.
func PoststarOpts(p *PDS, init *Auto, o SatOptions) (*Result, error) {
	if err := init.Validate(); err != nil {
		return nil, err
	}
	r := &postRun{p: p, a: init, o: o, dim: o.Dim, sc: getScratch(), nextCheck: firstCheck}
	r.queue, r.head = r.sc.queue[:0], 0
	defer func() {
		r.sc.queue = r.queue
		putScratch(r.sc)
		r.tally.probes += r.a.takeProbes()
		r.tally.flushPost()
	}()
	r.a.NormalizeWeights(r.dim)
	r.mids = map[[2]uint32]State{}

	// Seed the worklist with every initial transition.
	for s := 0; s < r.a.NumStates(); s++ {
		for i := range r.a.states[s].edges {
			r.enqueue(State(s), int32(i))
		}
	}
	r.epsInto = r.sc.epsIntoFor(r.a.NumStates())

	r.earlyOK = o.EarlyAccept && r.dim == 0 && o.FinalSpec != nil && len(o.FinalStates) > 0
	if r.earlyOK {
		r.specStarts = o.FinalSpec.EpsClosure(o.FinalSpec.Start())
		if acceptReachable(r.a, o.FinalStates, r.specStarts, o.FinalSpec, r.sc) {
			r.tally.earlyAccepts = 1
			return r.finish(true), nil
		}
	}
	if o.Parallelism > 1 {
		return r.runParallel(o.Parallelism)
	}
	return r.runSerial()
}

// runSerial drains the worklist one pop at a time.
func (r *postRun) runSerial() (*Result, error) {
	for r.head < len(r.queue) {
		if res, err, done := r.beat(); done {
			return res, err
		}
		r.process(r.pop(), nil, 0, false)
	}
	r.tally.pops = r.work
	return r.finish(false), nil
}

// beat is the per-pop cooperative checkpoint: budget accounting, the
// stop-channel poll and the early-accept probe at the doubling cadence.
// done=true means the run ends here with (res, err).
func (r *postRun) beat() (*Result, error, bool) {
	if r.work++; r.o.Budget > 0 && r.work > r.o.Budget {
		r.tally.pops = r.work
		budgetExhausted.Inc()
		return nil, ErrBudget, true
	}
	if r.work == r.nextCheck {
		if r.nextCheck < checkEvery {
			r.nextCheck *= 2
		} else {
			r.nextCheck += checkEvery
		}
		if r.o.Stop != nil {
			select {
			case <-r.o.Stop:
				r.tally.pops = r.work
				satStopped.Inc()
				return nil, ErrStopped, true
			default:
			}
		}
		if r.earlyOK && acceptReachable(r.a, r.o.FinalStates, r.specStarts, r.o.FinalSpec, r.sc) {
			r.tally.pops = r.work
			r.tally.earlyAccepts = 1
			return r.finish(true), nil, true
		}
	}
	return nil, nil, false
}

// pop removes the worklist head, compacting the backing array once the
// drained prefix dominates it (the old slice-off-the-front worklist
// retained and repeatedly recopied the whole array).
func (r *postRun) pop() edgeRef {
	ref := r.queue[r.head]
	r.head++
	if r.head == len(r.queue) {
		r.queue, r.head = r.queue[:0], 0
	} else if r.head >= 4096 && r.head*2 >= len(r.queue) {
		n := copy(r.queue, r.queue[r.head:])
		r.queue, r.head = r.queue[:n], 0
	}
	return ref
}

func (r *postRun) enqueue(from State, ei int32) {
	se := &r.a.states[from]
	if se.meta[ei].flags&fQueued == 0 {
		se.meta[ei].flags |= fQueued
		r.queue = append(r.queue, edgeRef{from, ei})
		r.tally.notePush(len(r.queue) - r.head)
	}
}

// push inserts (or improves) a transition and, on change, materialises
// its witness record and puts the edge on the worklist. Deferring the
// record to after the insert decision is the main allocation win: most
// derivations re-derive an existing transition.
func (r *postRun) push(t Trans, w []uint64, kind WitKind, rule int32, predSym Sym, p1, p2 *Witness) {
	i, changed := r.a.upsert(t, w)
	if !changed {
		return
	}
	r.tally.inserted++
	r.a.states[t.From].edges[i].Wit = r.wits.new(Witness{
		Kind: kind, Rule: rule, T: t, PredSym: predSym, Pred1: p1, Pred2: p2, Weight: w,
	})
	r.enqueue(t.From, i)
}

func (r *postRun) one() []uint64 {
	if r.dim == 0 {
		return nil
	}
	return r.wts.zero(r.dim)
}

func (r *postRun) midOf(s State, g Sym) State {
	k := [2]uint32{uint32(s), uint32(g)}
	if m, ok := r.mids[k]; ok {
		return m
	}
	m := r.a.AddState()
	r.mids[k] = m
	return m
}

func (r *postRun) epsAppend(to, src State) {
	for int(to) >= len(r.epsInto) {
		r.epsInto = append(r.epsInto, nil)
	}
	r.epsInto[to] = append(r.epsInto[to], src)
}

func (r *postRun) epsOf(s State) []State {
	if int(s) < len(r.epsInto) {
		return r.epsInto[s]
	}
	return nil
}

// apply fires one PDS rule on transition t given its current weight and
// witness record.
func (r *postRun) apply(ri int32, t Trans, w []uint64, rec *Witness) {
	rl := &r.p.Rules[ri]
	nw := r.wts.add(w, ruleWeight(rl, r.dim))
	switch rl.Kind {
	case PopRule:
		r.push(Trans{rl.ToState, Eps, t.To}, nw, WitRule, ri, rl.FromSym, rec, nil)
	case SwapRule:
		r.push(Trans{rl.ToState, rl.Sym1, t.To}, nw, WitRule, ri, rl.FromSym, rec, nil)
	case PushRule:
		mid := r.midOf(rl.ToState, rl.Sym1)
		r.push(Trans{rl.ToState, rl.Sym1, mid}, r.one(), WitRule, ri, rl.FromSym, rec, nil)
		r.push(Trans{mid, rl.Sym2, t.To}, nw, WitPushB, ri, rl.FromSym, rec, nil)
	}
}

// applyRules fires every PDS rule matching transition t (whose source is a
// control state), resolving the match inline. The parallel driver replaces
// this with a precomputed match list (process with matched != nil), which
// yields the same rule sequence and the same probe tally.
func (r *postRun) applyRules(t Trans, w []uint64, rec *Witness) {
	if set := r.a.SymSet(t.Sym); set != nil {
		rs := r.p.RulesFromState(t.From)
		r.tally.probes += int64(len(rs))
		for _, ri := range rs {
			if set.Has(nfa.Sym(r.p.Rules[ri].FromSym)) {
				r.apply(ri, t, w, rec)
			}
		}
	} else {
		rs := r.p.RulesFrom(t.From, t.Sym)
		r.tally.probes += int64(len(rs))
		for _, ri := range rs {
			r.apply(ri, t, w, rec)
		}
	}
}

// process is the pop body shared by the serial and parallel drivers. When
// spec is true the rule-matching was precomputed by the speculation pass:
// matched holds the firing rule indices and probes the probe count the
// inline matcher would have tallied.
func (r *postRun) process(ref edgeRef, matched []int32, probes int64, spec bool) {
	a := r.a
	se := &a.states[ref.from]
	se.meta[ref.ei].flags &^= fQueued
	e := &se.edges[ref.ei]
	t := Trans{ref.from, e.Sym, e.To}
	w, rec := e.Weight, e.Wit

	if t.Sym == Eps {
		// Register and combine with everything currently leaving t.To.
		if se.meta[ref.ei].flags&fEpsReg == 0 {
			se.meta[ref.ei].flags |= fEpsReg
			r.epsAppend(t.To, t.From)
		}
		out := a.states[t.To].edges
		for i := range out {
			e2 := &out[i]
			if e2.Sym == Eps {
				continue // ε-targets are never ε-sources
			}
			nw := r.wts.add(w, e2.Weight)
			r.push(Trans{t.From, e2.Sym, e2.To}, nw, WitCombine, -1, 0, rec, e2.Wit)
		}
		return
	}

	// Combine ε-transitions into t.From with t (the symmetric case;
	// only mid states ever gain new outgoing transitions).
	for _, src := range r.epsOf(t.From) {
		et, ok2 := a.Get(Trans{src, Eps, t.From})
		if !ok2 {
			continue
		}
		nw := r.wts.add(et.Weight, w)
		r.push(Trans{src, t.Sym, t.To}, nw, WitCombine, -1, 0, et.Wit, rec)
	}

	if int(t.From) >= r.p.NumStates {
		return // no rules apply to non-control sources
	}
	if spec {
		r.tally.probes += probes
		for _, ri := range matched {
			r.apply(ri, t, w, rec)
		}
	} else {
		r.applyRules(t, w, rec)
	}
}

func (r *postRun) finish(early bool) *Result {
	res := &Result{PDS: r.p, Auto: r.a, Dim: r.dim, Mids: map[State][2]uint32{}, EarlyAccepted: early}
	for k, v := range r.mids {
		res.Mids[v] = k
	}
	return res
}

func ruleWeight(r *Rule, dim int) []uint64 {
	if dim == 0 {
		return nil
	}
	return r.Weight
}

// Accepted is a configuration found by FindAccepting, with the automaton
// path that accepts it and the total path weight. Config.Stack holds the
// concrete symbols chosen along the path (virtual set edges are resolved to
// one member).
type Accepted struct {
	Config Config
	Path   []Trans
	Syms   []Sym // concrete symbol per path transition
	Weight []uint64
}

// FindAccepting searches the saturated automaton for a configuration
// ⟨p, w⟩ such that p ∈ starts, the automaton accepts w from p, and w is
// accepted by spec (an epsilon-free NFA over the concrete stack alphabet).
// Among all such configurations it returns one minimising the total
// transition weight (lexicographically, then by stack length); ok is false
// when none exists.
func (r *Result) FindAccepting(starts []State, spec *nfa.NFA) (Accepted, bool) {
	type node struct {
		s State
		n int // spec state
	}
	type back struct {
		from node
		t    Trans
		sym  Sym
	}
	dist := map[node][]uint64{}
	prev := map[node]back{}
	hopCount := map[node]int{}
	pq := &accHeap{}
	for _, p := range starts {
		for _, ns := range spec.EpsClosure(spec.Start()) {
			nd := node{p, ns}
			if _, ok := dist[nd]; !ok {
				zero := make([]uint64, r.Dim)
				dist[nd] = zero
				hopCount[nd] = 0
				heap.Push(pq, accItem{nd.s, nd.n, zero, 0})
			}
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(accItem)
		nd := node{it.s, it.n}
		if d, ok := dist[nd]; ok && (lexLess(d, it.w) || (equalVec(d, it.w) && hopCount[nd] < it.hops)) {
			continue // stale queue entry superseded by a better one
		}
		if r.Auto.Accepting(nd.s) && spec.Accepting(nd.n) {
			var path []Trans
			var syms []Sym
			cur := nd
			for {
				b, ok := prev[cur]
				if !ok {
					break
				}
				path = append(path, b.t)
				syms = append(syms, b.sym)
				cur = b.from
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
				syms[i], syms[j] = syms[j], syms[i]
			}
			stack := make([]Sym, len(syms))
			copy(stack, syms)
			start := cur.s
			if len(path) > 0 {
				start = path[0].From
			}
			return Accepted{
				Config: Config{State: start, Stack: stack},
				Path:   path,
				Syms:   syms,
				Weight: it.w,
			}, true
		}
		for _, e := range r.Auto.Out(nd.s) {
			if e.Sym == Eps {
				continue
			}
			for _, arc := range spec.Arcs(nd.n) {
				var csym Sym
				if set := r.Auto.SymSet(e.Sym); set != nil {
					inter := arc.Set.Inter(set)
					first, ok := inter.First()
					if !ok {
						continue
					}
					csym = Sym(first)
				} else {
					if !arc.Set.Has(nfa.Sym(e.Sym)) {
						continue
					}
					csym = e.Sym
				}
				nn := node{e.To, arc.To}
				nw := lexAdd(it.w, e.Weight)
				nh := it.hops + 1
				old, seen := dist[nn]
				if !seen || lexLess(nw, old) || (equalVec(nw, old) && nh < hopCount[nn]) {
					dist[nn] = nw
					hopCount[nn] = nh
					prev[nn] = back{nd, Trans{nd.s, e.Sym, e.To}, csym}
					heap.Push(pq, accItem{nn.s, nn.n, nw, nh})
				}
			}
		}
	}
	return Accepted{}, false
}

func equalVec(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type accItem struct {
	s    State
	n    int
	w    []uint64
	hops int
}

type accHeap []accItem

func (h accHeap) Len() int { return len(h) }
func (h accHeap) Less(i, j int) bool {
	if !equalVec(h[i].w, h[j].w) {
		return lexLess(h[i].w, h[j].w)
	}
	return h[i].hops < h[j].hops
}
func (h accHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *accHeap) Push(x interface{}) { *h = append(*h, x.(accItem)) }
func (h *accHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Reconstruct unapplies witness records along an accepting path of the
// post* automaton, returning the initial configuration the derivation
// started from and the rule indices in application order. The path and
// concrete symbol choices come from FindAccepting.
func (r *Result) Reconstruct(acc Accepted) (Config, []int32, error) {
	if len(acc.Path) == 0 {
		return Config{}, nil, errors.New("pds: empty accepting path")
	}
	type entry struct {
		rec *Witness
		sym Sym // concrete symbol resolved for this transition
	}
	recs := make([]entry, len(acc.Path))
	for i, t := range acc.Path {
		e, ok := r.Auto.Get(t)
		if !ok {
			return Config{}, nil, fmt.Errorf("pds: path transition %v not in automaton", t)
		}
		recs[i] = entry{e.Wit, acc.Syms[i]}
	}
	var reversed []int32
	guard := 0
	for recs[0].rec.Kind != WitInitial {
		if guard++; guard > 50_000_000 {
			return Config{}, nil, errors.New("pds: witness reconstruction did not terminate")
		}
		head := recs[0].rec
		switch head.Kind {
		case WitRule:
			rule := r.PDS.Rules[head.Rule]
			switch rule.Kind {
			case SwapRule:
				reversed = append(reversed, head.Rule)
				recs[0] = entry{head.Pred1, head.PredSym}
			case PushRule:
				if len(recs) < 2 {
					return Config{}, nil, errors.New("pds: push-A record without a following transition")
				}
				b := recs[1].rec
				if b.Kind != WitPushB {
					return Config{}, nil, fmt.Errorf("pds: expected push-B record after mid state, got kind %d", b.Kind)
				}
				reversed = append(reversed, b.Rule)
				nrecs := make([]entry, 0, len(recs)-1)
				nrecs = append(nrecs, entry{b.Pred1, b.PredSym})
				nrecs = append(nrecs, recs[2:]...)
				recs = nrecs
			default:
				return Config{}, nil, errors.New("pds: pop-derived transition in a non-epsilon path")
			}
		case WitCombine:
			epsRec := head.Pred1
			if epsRec.Kind != WitRule || r.PDS.Rules[epsRec.Rule].Kind != PopRule {
				return Config{}, nil, errors.New("pds: combine record without pop-rule epsilon predecessor")
			}
			reversed = append(reversed, epsRec.Rule)
			nrecs := make([]entry, 0, len(recs)+1)
			nrecs = append(nrecs, entry{epsRec.Pred1, epsRec.PredSym}, entry{head.Pred2, recs[0].sym})
			nrecs = append(nrecs, recs[1:]...)
			recs = nrecs
		case WitPushB:
			return Config{}, nil, errors.New("pds: push-B record at path head")
		default:
			return Config{}, nil, fmt.Errorf("pds: unknown witness kind %d", head.Kind)
		}
	}
	// All remaining records must be initial; they spell the start config.
	stack := make([]Sym, len(recs))
	for i, en := range recs {
		if en.rec.Kind != WitInitial {
			return Config{}, nil, fmt.Errorf("pds: record %d not initial after head reached initial", i)
		}
		stack[i] = en.sym
	}
	rules := make([]int32, len(reversed))
	for i, x := range reversed {
		rules[len(reversed)-1-i] = x
	}
	return Config{State: recs[0].rec.T.From, Stack: stack}, rules, nil
}

// Replay applies a rule sequence to a configuration, returning every
// intermediate configuration (len(rules)+1 entries). It fails if a rule's
// head does not match, which indicates a reconstruction bug.
func (r *Result) Replay(init Config, rules []int32) ([]Config, error) {
	configs := make([]Config, 0, len(rules)+1)
	cur := init
	configs = append(configs, cur)
	for _, ri := range rules {
		next, ok := cur.Step(r.PDS.Rules[ri])
		if !ok {
			return nil, fmt.Errorf("pds: rule %v does not apply to %v", r.PDS.Rules[ri], cur)
		}
		cur = next
		configs = append(configs, cur)
	}
	return configs, nil
}
