package pds

import "aalwines/internal/obs"

// Saturation counters. The worklist metrics carry an `alg` label so post*
// (the engine's witness-producing direction, run once per approximation)
// and pre* (the unweighted cross-validation direction) stay separable in
// one exposition; DESIGN.md ("Observability") documents what each counter
// means in pre*/post* terms. The hot loops tally into stack-local
// variables and flush exactly once per saturation run — on success and on
// every error path — so the per-pop overhead is zero atomics.
var (
	postRuns     = obs.GetCounter(`pds_saturation_runs_total{alg="poststar"}`)
	postPops     = obs.GetCounter(`pds_worklist_pops_total{alg="poststar"}`)
	postPushes   = obs.GetCounter(`pds_worklist_pushes_total{alg="poststar"}`)
	postInserted = obs.GetCounter(`pds_trans_inserted_total{alg="poststar"}`)
	postPeak     = obs.GetGauge(`pds_worklist_peak_depth{alg="poststar"}`)

	preRuns     = obs.GetCounter(`pds_saturation_runs_total{alg="prestar"}`)
	prePops     = obs.GetCounter(`pds_worklist_pops_total{alg="prestar"}`)
	prePushes   = obs.GetCounter(`pds_worklist_pushes_total{alg="prestar"}`)
	preInserted = obs.GetCounter(`pds_trans_inserted_total{alg="prestar"}`)
	prePeak     = obs.GetGauge(`pds_worklist_peak_depth{alg="prestar"}`)

	budgetSpent     = obs.GetCounter("pds_budget_spent_total")
	budgetExhausted = obs.GetCounter("pds_budget_exhausted_total")
	satStopped      = obs.GetCounter("pds_saturation_stopped_total")

	// earlyAccepts counts post* runs that stopped before the fixed point
	// because the early-accept check found an accepting configuration.
	postEarlyAccepts = obs.GetCounter("pds_early_accept_total")
	// indexProbes counts candidate edges (or rules) consulted through the
	// per-state symbol indexes — the denominator for how much work the
	// indexed adjacency saves over full out-list scans.
	postProbes = obs.GetCounter(`pds_index_probes_total{alg="poststar"}`)
	preProbes  = obs.GetCounter(`pds_index_probes_total{alg="prestar"}`)
	// Scratch-pool effectiveness: a hit reuses a previous run's worklist
	// buffers, a miss allocates fresh ones.
	poolHits   = obs.GetCounter("pds_pool_hits_total")
	poolMisses = obs.GetCounter("pds_pool_misses_total")

	// Parallel-saturation health: parallelRuns counts post* runs that took
	// the sharded speculative path (Parallelism > 1 after the GOMAXPROCS
	// clamp), shardSteals counts speculation tasks a worker drained from a
	// shard it does not own — the work-stealing traffic. A steal rate near
	// the task rate means the shard hash is unbalanced for this workload.
	parallelRuns = obs.GetCounter("pds_parallel_runs_total")
	shardSteals  = obs.GetCounter("pds_shard_steals_total")
)

// satTally accumulates one saturation run's counters locally; flush adds
// them to the process-wide registry in one shot.
type satTally struct {
	pops, pushes, inserted, peak int64
	probes, earlyAccepts         int64
	parallel                     bool
}

func (t *satTally) notePush(depth int) {
	t.pushes++
	if d := int64(depth); d > t.peak {
		t.peak = d
	}
}

func (t *satTally) flushPost() {
	postRuns.Inc()
	if t.parallel {
		parallelRuns.Inc()
	}
	postPops.Add(t.pops)
	postPushes.Add(t.pushes)
	postInserted.Add(t.inserted)
	postPeak.SetMax(t.peak)
	postProbes.Add(t.probes)
	postEarlyAccepts.Add(t.earlyAccepts)
	budgetSpent.Add(t.pops)
}

func (t *satTally) flushPre() {
	preRuns.Inc()
	prePops.Add(t.pops)
	prePushes.Add(t.pushes)
	preInserted.Add(t.inserted)
	prePeak.SetMax(t.peak)
	preProbes.Add(t.probes)
}
