package pds

import (
	"runtime"
	"sync"
	"sync/atomic"

	"aalwines/internal/nfa"
)

// Parallel post* — sharded speculative rule matching with a sequential
// commit pass.
//
// The post* worklist is a strict sequential dependence chain: every pop
// mutates the automaton (inserts transitions, improves weights, allocates
// mid states, registers ε-predecessors), and the byte-identity contract —
// parallel results must equal serial results bit for bit, including
// witness records, edge order and the early-accept stopping point — pins
// the entire mutation sequence. What is NOT order-dependent is rule
// matching: which PDS rules fire for a popped transition is a pure
// function of its (source state, symbol) pair over the frozen rule
// indexes and the immutable virtual-symbol sets. That pure prefix is
// what runs in parallel.
//
// Each round freezes the currently pending worklist segment, captures
// every entry's (state, symbol) pair, shards the entries by a hash of the
// packed pair, and lets a bounded worker pool precompute the match lists
// — workers drain their own shard first and then steal from the others
// via per-shard atomic cursors. The commit pass then replays the exact
// serial pop sequence, substituting the precomputed match lists for the
// inline matcher. New pushes land beyond the frozen segment and form the
// next round. Speculation reads only data that is quiescent during the
// round (rule tables frozen by PDS.Freeze, symbol sets interned before
// saturation), and the WaitGroup barrier orders every speculative read
// before the first commit mutation, so the path is clean under -race.
//
// A round smaller than specRoundMin skips speculation: goroutine handoff
// would cost more than the matching itself.
const specRoundMin = 128

// specTask is one frozen worklist entry of a speculation round.
type specTask struct {
	from State
	sym  Sym
	// spec marks tasks eligible for speculation (control-state source,
	// non-ε symbol); the rest are committed with the inline matcher.
	spec    bool
	probes  int64
	matched []int32
}

// parPool is the per-run speculation state: shard index, cursors and
// per-worker match arenas, reused across rounds.
type parPool struct {
	nw      int
	shards  [][]int32 // task indices per shard
	cursors []atomic.Int64
	arenas  []matchArena
	steals  []int64 // per-worker steal counts, summed after each round
	tasks   []specTask
}

// matchArena bump-allocates rule-index slices for set-edge matches; one
// arena per worker, so speculation never contends on the allocator.
type matchArena struct {
	chunk []int32
}

const matchChunk = 4096

func (ma *matchArena) alloc(n int) []int32 {
	if n == 0 {
		return nil
	}
	if len(ma.chunk) < n {
		c := matchChunk
		if c < n {
			c = n
		}
		ma.chunk = make([]int32, c)
	}
	v := ma.chunk[:0:n]
	ma.chunk = ma.chunk[n:]
	return v
}

// shardOf maps a packed (state, symbol) pair to a shard with the same
// Fibonacci mix the flat transition index uses, so entries that collide in
// one index chain land in one shard and their match lists share cache
// lines.
func shardOf(from State, sym Sym, nshards int) int {
	h := chainKey(from, sym) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(nshards))
}

// runParallel drains the worklist in speculate/commit rounds. The result
// is byte-identical to runSerial: commit performs the identical mutation
// sequence at identical pop boundaries, and the speculation only resolves
// the pure match function ahead of time (including the probe counts the
// inline matcher would tally).
func (r *postRun) runParallel(parallelism int) (*Result, error) {
	nw := parallelism
	if gmp := runtime.GOMAXPROCS(0); nw > gmp {
		nw = gmp
	}
	if nw < 2 {
		return r.runSerial()
	}
	r.tally.parallel = true
	// Workers read the rule indexes concurrently; build them now if a
	// caller skipped Freeze.
	if r.p.NumStates > 0 {
		r.p.RulesFromState(0)
		r.p.RulesFrom(0, 0)
	}
	pool := &parPool{
		nw:      nw,
		shards:  make([][]int32, nw),
		cursors: make([]atomic.Int64, nw),
		arenas:  make([]matchArena, nw),
		steals:  make([]int64, nw),
	}
	for r.head < len(r.queue) {
		n := len(r.queue) - r.head
		tasks := pool.prepare(r, n)
		if tasks != nil {
			pool.speculate(r.p, r.a)
		}
		for i := 0; i < n; i++ {
			if res, err, done := r.beat(); done {
				return res, err
			}
			ref := r.pop()
			if tasks != nil && tasks[i].spec {
				r.process(ref, tasks[i].matched, tasks[i].probes, true)
			} else {
				r.process(ref, nil, 0, false)
			}
		}
	}
	r.tally.pops = r.work
	return r.finish(false), nil
}

// prepare freezes the next n pending pops into the round's task array and
// builds the shard partitions. It returns nil for rounds too small to pay
// for speculation; the commit loop then matches inline.
func (p *parPool) prepare(r *postRun, n int) []specTask {
	if n < specRoundMin {
		return nil
	}
	if cap(p.tasks) < n {
		p.tasks = make([]specTask, n)
	}
	tasks := p.tasks[:n]
	for s := range p.shards {
		p.shards[s] = p.shards[s][:0]
		p.cursors[s].Store(0)
	}
	any := false
	for i := 0; i < n; i++ {
		ref := r.queue[r.head+i]
		sym := r.a.states[ref.from].edges[ref.ei].Sym
		tk := &tasks[i]
		tk.from, tk.sym = ref.from, sym
		tk.matched, tk.probes = nil, 0
		tk.spec = int(ref.from) < r.p.NumStates && sym != Eps
		if tk.spec {
			s := shardOf(ref.from, sym, p.nw)
			p.shards[s] = append(p.shards[s], int32(i))
			any = true
		}
	}
	if !any {
		return nil
	}
	return tasks
}

// speculate resolves the match lists of the round's tasks on nw workers.
// Worker w owns shard w; when its shard drains it advances to the next
// shard and steals remaining entries through that shard's atomic cursor.
func (p *parPool) speculate(pds *PDS, a *Auto) {
	var wg sync.WaitGroup
	for w := 0; w < p.nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ma := &p.arenas[w]
			for off := 0; off < p.nw; off++ {
				s := (w + off) % p.nw
				list := p.shards[s]
				for {
					cur := int(p.cursors[s].Add(1)) - 1
					if cur >= len(list) {
						break
					}
					if off != 0 {
						p.steals[w]++
					}
					tk := &p.tasks[list[cur]]
					tk.matched, tk.probes = matchRules(pds, a, tk.from, tk.sym, ma)
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for w := range p.steals {
		total += p.steals[w]
		p.steals[w] = 0
	}
	if total > 0 {
		shardSteals.Add(total)
	}
}

// matchRules is the pure match function the speculation precomputes: the
// rule indices applyRules would fire for a transition with this (state,
// symbol) pair, plus the probe count the inline matcher would tally. For
// concrete symbols the indexed rule list is returned as-is (no copy); set
// edges filter into the worker's arena.
func matchRules(p *PDS, a *Auto, from State, sym Sym, ma *matchArena) ([]int32, int64) {
	if set := a.SymSet(sym); set != nil {
		rs := p.stateIdx[p.stateOff[from]:p.stateOff[from+1]]
		out := ma.alloc(len(rs))
		for _, ri := range rs {
			if set.Has(nfa.Sym(p.Rules[ri].FromSym)) {
				out = append(out, ri)
			}
		}
		return out, int64(len(rs))
	}
	hr := p.byHead[headKey(from, sym)]
	rs := p.headIdx[hr.off : hr.off+hr.n]
	return rs, int64(len(rs))
}
