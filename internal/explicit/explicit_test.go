package explicit_test

import (
	"errors"
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/explicit"
	"aalwines/internal/gen"
	"aalwines/internal/query"
)

func parse(t *testing.T, text string, net interface{}) *query.Query {
	t.Helper()
	re := net.(*gen.RunningExampleNet)
	q, err := query.Parse(text, re.Network)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestAgreesWithSymbolicEngine: within the height bound, the explicit
// baseline must reach the same satisfiability answers as the pushdown
// over-approximation on the running example (whose witnesses stay short).
func TestAgreesWithSymbolicEngine(t *testing.T) {
	re := gen.RunningExample()
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
		"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
		"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
		"<ip> [.#v1] .* [v3#.] <ip> 0",
	}
	for _, qt := range queries {
		q := parse(t, qt, re)
		exp, err := explicit.Verify(re.Network, q, explicit.Options{MaxHeight: 4})
		if err != nil {
			t.Fatalf("%s: %v", qt, err)
		}
		// The explicit baseline implements the over-approximation only, so
		// compare against the symbolic engine in over-only mode: satisfied
		// or inconclusive there ⇔ explicit reachable.
		sym, err := engine.VerifyText(re.Network, qt, engine.Options{OverOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		symReach := sym.Verdict != engine.Unsatisfied
		if exp.Satisfied != symReach {
			t.Errorf("%s: explicit=%v symbolic-over=%v", qt, exp.Satisfied, symReach)
		}
		if exp.Satisfied && len(exp.Trace) == 0 {
			t.Errorf("%s: no trace", qt)
		}
	}
}

func TestStateBudget(t *testing.T) {
	re := gen.RunningExample()
	q := parse(t, "<smpls? ip> .* <. smpls ip> 1", re)
	_, err := explicit.Verify(re.Network, q, explicit.Options{MaxHeight: 3, MaxStates: 2})
	if !errors.Is(err, explicit.ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
}

// TestHeightBoundUnsoundness: with the bound too low to fit the failover
// tunnel (depth 3), the explicit check misses the witness that the
// symbolic engine finds — the incompleteness the pushdown encoding avoids.
func TestHeightBoundUnsoundness(t *testing.T) {
	re := gen.RunningExample()
	// φ4's σ2 witness needs a depth-3 header (30 ∘ s21 ∘ ip1); with the
	// service path σ3 also a witness (depth 2), pick a query that only σ2
	// satisfies: require passing v2→v4 with an ip start.
	qt := "<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1"
	q := parse(t, qt, re)
	low, err := explicit.Verify(re.Network, q, explicit.Options{MaxHeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if low.Satisfied {
		t.Fatal("height-2 search found a depth-3 witness?")
	}
	if !low.HitHeightBound {
		t.Error("bound was not even reached; test is vacuous")
	}
	high, err := explicit.Verify(re.Network, q, explicit.Options{MaxHeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !high.Satisfied {
		t.Fatal("height-3 search missed the failover witness")
	}
}

// TestStateGrowthWithHeight demonstrates the blow-up: visited states grow
// quickly with the height bound on a network with tunnels.
func TestStateGrowthWithHeight(t *testing.T) {
	s := gen.Nordunet(gen.NordOpts{Services: 1, EdgeRouters: 8, Seed: 1})
	q, err := query.Parse("<smpls ip> .* <mpls mpls smpls ip> 1", s.Net)
	if err != nil {
		t.Fatal(err)
	}
	var prev int
	for _, h := range []int{2, 3, 4} {
		res, err := explicit.Verify(s.Net, q, explicit.Options{MaxHeight: h, MaxStates: 2_000_000})
		if err != nil {
			// Budget exhaustion at a higher bound also demonstrates growth.
			t.Logf("height %d: state budget exhausted (growth confirmed)", h)
			return
		}
		t.Logf("height %d: %d states, satisfied=%v", h, res.VisitedStates, res.Satisfied)
		if res.Satisfied {
			// The BFS stops at the first witness, so the count is not a
			// full-exploration figure; stop comparing here.
			break
		}
		if res.VisitedStates < prev {
			t.Errorf("states shrank with height: %d -> %d", prev, res.VisitedStates)
		}
		prev = res.VisitedStates
	}
}
