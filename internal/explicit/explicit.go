// Package explicit implements the strawman the paper's symbolic approach is
// measured against conceptually: an explicit-state reachability checker
// that enumerates (link, header) states directly instead of representing
// header languages symbolically as pushdown configurations.
//
// Because MPLS headers are unbounded, the explicit search must bound the
// header height; it is therefore only sound for queries whose witnesses
// stay under the bound, and its state space grows exponentially with the
// bound (|L|^h states for height h) — this is precisely the "exponential
// speedup compared to the direct encoding of all possible sequences of
// header symbols" claim of §1, reproduced by BenchmarkExplicitBlowup.
package explicit

import (
	"errors"
	"strings"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/nfa"
	"aalwines/internal/query"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// Options bound the explicit search.
type Options struct {
	// MaxHeight caps the header height explored (≥ 1). Default 4.
	MaxHeight int
	// MaxStates aborts the search beyond this many visited states
	// (default 5,000,000) — the explicit analogue of a timeout.
	MaxStates int
}

// ErrStateBudget is returned when the explicit state space exceeds
// Options.MaxStates.
var ErrStateBudget = errors.New("explicit: state budget exhausted")

// Result of an explicit check.
type Result struct {
	// Satisfied reports whether a witness within the height bound exists
	// for some failed set chosen per-step (over-approximately, like the
	// pushdown over-approximation; feasibility is NOT validated here —
	// the explicit baseline reproduces only the reachability core).
	Satisfied bool
	// Trace is a witness when satisfied.
	Trace network.Trace
	// VisitedStates counts distinct (link, header, NFA-state) tuples.
	VisitedStates int
	// HitHeightBound reports whether the bound pruned any successor; if
	// true and the query is unsatisfied the answer is unsound (a taller
	// witness may exist).
	HitHeightBound bool
}

// state is one explicit search node.
type state struct {
	link topology.LinkID
	bq   int    // path-NFA state
	hdr  string // packed header
}

// Verify runs the explicit-state search for a query under the
// over-approximate failure semantics (any priority group whose prefix
// failure set has size ≤ k may be chosen at each router independently).
func Verify(net *network.Network, q *query.Query, opts Options) (Result, error) {
	if opts.MaxHeight <= 0 {
		opts.MaxHeight = 4
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 5_000_000
	}
	res := Result{}
	pre := q.PreNFA
	path := q.PathNFA
	post := q.PostNFA
	k := q.MaxFailures

	// Enumerate initial headers in Lang(a) up to the height bound. This is
	// the exponential step: |L|^h candidate headers.
	headers := enumerateHeaders(net.Labels, pre, opts.MaxHeight, &res)

	type qitem struct {
		st   state
		prev int // index into the trail, -1 for roots
	}
	var trail []qitem
	seen := map[state]bool{}
	var queue []int

	pushRoot := func(e topology.LinkID, bq int, h labels.Header) {
		st := state{e, bq, pack(h)}
		if !seen[st] {
			seen[st] = true
			trail = append(trail, qitem{st, -1})
			queue = append(queue, len(trail)-1)
		}
	}

	// Roots: every link × B-transition from start × every initial header.
	for _, arc := range path.Arcs(path.Start()) {
		arc := arc
		arc.Set.Each(func(sym nfa.Sym) bool {
			for _, h := range headers {
				pushRoot(topology.LinkID(sym), arc.To, h)
			}
			return true
		})
	}

	accepts := func(st state) bool {
		if !path.Accepting(st.bq) {
			return false
		}
		return post.Accepts(headerSyms(unpack(st.hdr)))
	}

	rebuild := func(i int) network.Trace {
		var rev []network.Step
		for ; i >= 0; i = trail[i].prev {
			rev = append(rev, network.Step{Link: trail[i].st.link, Header: unpack(trail[i].st.hdr)})
		}
		tr := make(network.Trace, len(rev))
		for j := range rev {
			tr[j] = rev[len(rev)-1-j]
		}
		return tr
	}

	for qi := 0; qi < len(queue); qi++ {
		if len(seen) > opts.MaxStates {
			res.VisitedStates = len(seen)
			return res, ErrStateBudget
		}
		idx := queue[qi]
		cur := trail[idx].st
		if accepts(cur) {
			res.Satisfied = true
			res.Trace = rebuild(idx)
			res.VisitedStates = len(seen)
			return res, nil
		}
		h := unpack(cur.hdr)
		if len(h) == 0 {
			continue
		}
		gs := net.Routing.Lookup(cur.link, h.Top())
		for j := range gs {
			if len(gs.PrefixLinks(j)) > k {
				break
			}
			for _, entry := range gs[j].Entries {
				nh, err := routing.Rewrite(net.Labels, h, entry.Ops)
				if err != nil {
					continue
				}
				if len(nh) > opts.MaxHeight {
					res.HitHeightBound = true
					continue
				}
				for _, arc := range path.Arcs(cur.bq) {
					if !arc.Set.Has(nfa.Sym(entry.Out)) {
						continue
					}
					st := state{entry.Out, arc.To, pack(nh)}
					if !seen[st] {
						seen[st] = true
						trail = append(trail, qitem{st, idx})
						queue = append(queue, len(trail)-1)
					}
				}
			}
		}
	}
	res.VisitedStates = len(seen)
	return res, nil
}

// enumerateHeaders lists every valid header accepted by the label NFA up to
// the height bound, by depth-first product of the NFA with the height
// counter. The count is exponential in maxH for permissive expressions.
func enumerateHeaders(lt *labels.Table, a *nfa.NFA, maxH int, res *Result) []labels.Header {
	var out []labels.Header
	var walk func(states []int, h labels.Header)
	walk = func(states []int, h labels.Header) {
		if len(h) > 0 && h.Valid(lt) {
			for _, s := range states {
				if a.Accepting(s) {
					out = append(out, h.Clone())
					break
				}
			}
		}
		if len(h) == maxH {
			res.HitHeightBound = true
			return
		}
		// Group successors by next label.
		for sym := nfa.Sym(0); int(sym) < lt.Len(); sym++ {
			next := a.Step(states, sym)
			if len(next) == 0 {
				continue
			}
			walk(next, append(h, labels.ID(sym+1)))
		}
	}
	walk(a.EpsClosure(a.Start()), nil)
	return out
}

func pack(h labels.Header) string {
	var b strings.Builder
	b.Grow(len(h) * 4)
	for _, id := range h {
		b.WriteByte(byte(id))
		b.WriteByte(byte(id >> 8))
		b.WriteByte(byte(id >> 16))
		b.WriteByte(byte(id >> 24))
	}
	return b.String()
}

func unpack(s string) labels.Header {
	h := make(labels.Header, len(s)/4)
	for i := range h {
		h[i] = labels.ID(s[4*i]) | labels.ID(s[4*i+1])<<8 | labels.ID(s[4*i+2])<<16 | labels.ID(s[4*i+3])<<24
	}
	return h
}

func headerSyms(h labels.Header) []nfa.Sym {
	out := make([]nfa.Sym, len(h))
	for i, id := range h {
		out[i] = query.LabelSym(id)
	}
	return out
}
