package labels

import (
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	tbl := NewTable()
	a := tbl.MustIntern("s20", BottomMPLS)
	b := tbl.MustIntern("30", MPLS)
	c := tbl.MustIntern("ip1", IP)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("expected dense IDs 1,2,3, got %d,%d,%d", a, b, c)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}
}

func TestInternIdempotent(t *testing.T) {
	tbl := NewTable()
	a := tbl.MustIntern("s20", BottomMPLS)
	b := tbl.MustIntern("s20", BottomMPLS)
	if a != b {
		t.Fatalf("re-interning produced new ID: %d vs %d", a, b)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestInternKindConflict(t *testing.T) {
	tbl := NewTable()
	tbl.MustIntern("x", MPLS)
	if _, err := tbl.Intern("x", IP); err == nil {
		t.Fatal("expected kind-conflict error, got nil")
	}
}

func TestZeroValueTableUsable(t *testing.T) {
	var tbl Table
	id, err := tbl.Intern("ip9", IP)
	if err != nil || id == None {
		t.Fatalf("zero-value table Intern: id=%d err=%v", id, err)
	}
}

func TestGuessKind(t *testing.T) {
	cases := []struct {
		name string
		want Kind
	}{
		{"s20", BottomMPLS},
		{"s41", BottomMPLS},
		{"30", MPLS},
		{"$449550", MPLS},
		{"ip1", IP},
		{"10.0.0.1", IP},
		{"swap", MPLS}, // "s" not followed by digit
	}
	for _, c := range cases {
		if got := GuessKind(c.name); got != c.want {
			t.Errorf("GuessKind(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLookupMissing(t *testing.T) {
	tbl := NewTable()
	if id := tbl.Lookup("nope"); id != None {
		t.Fatalf("Lookup of missing name = %d, want None", id)
	}
}

func TestOfKindAndCounts(t *testing.T) {
	tbl := NewTable()
	tbl.MustIntern("30", MPLS)
	tbl.MustIntern("31", MPLS)
	tbl.MustIntern("s20", BottomMPLS)
	tbl.MustIntern("ip1", IP)
	if got := tbl.CountKind(MPLS); got != 2 {
		t.Errorf("CountKind(MPLS) = %d, want 2", got)
	}
	if got := len(tbl.OfKind(BottomMPLS)); got != 1 {
		t.Errorf("len(OfKind(BottomMPLS)) = %d, want 1", got)
	}
	if got := len(tbl.OfKind(IP)); got != 1 {
		t.Errorf("len(OfKind(IP)) = %d, want 1", got)
	}
}

func testTable() *Table {
	tbl := NewTable()
	tbl.MustIntern("30", MPLS)        // 1
	tbl.MustIntern("31", MPLS)        // 2
	tbl.MustIntern("s20", BottomMPLS) // 3
	tbl.MustIntern("s21", BottomMPLS) // 4
	tbl.MustIntern("ip1", IP)         // 5
	tbl.MustIntern("ip2", IP)         // 6
	return tbl
}

func TestHeaderValid(t *testing.T) {
	tbl := testTable()
	cases := []struct {
		h    Header
		want bool
	}{
		{Header{5}, true},          // ip1
		{Header{3, 5}, true},       // s20 ∘ ip1
		{Header{1, 3, 5}, true},    // 30 ∘ s20 ∘ ip1
		{Header{1, 2, 3, 5}, true}, // 30 ∘ 31 ∘ s20 ∘ ip1
		{Header{}, false},          // empty
		{Header{1}, false},         // bare MPLS
		{Header{3}, false},         // bare bottom label
		{Header{1, 5}, false},      // MPLS directly on IP
		{Header{3, 3, 5}, false},   // two bottom labels
		{Header{5, 3, 5}, false},   // IP on top
		{Header{1, 3, 1}, false},   // MPLS at bottom
	}
	for _, c := range cases {
		if got := c.h.Valid(tbl); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.h.Format(tbl), got, c.want)
		}
	}
}

func TestValidOnTopOf(t *testing.T) {
	tbl := testTable()
	cases := []struct {
		push, top ID
		want      bool
	}{
		{1, 3, true},  // 30 on s20: ok
		{1, 2, true},  // 30 on 31: ok
		{3, 5, true},  // s20 on ip1: ok
		{3, 1, false}, // s20 on 30: invalid
		{3, 3, false}, // s20 on s21: invalid
		{5, 3, false}, // push IP: never
		{1, 5, false}, // 30 directly on ip1: invalid
	}
	for _, c := range cases {
		if got := ValidOnTopOf(tbl, c.push, c.top); got != c.want {
			t.Errorf("ValidOnTopOf(%s on %s) = %v, want %v",
				tbl.Name(c.push), tbl.Name(c.top), got, c.want)
		}
	}
}

func TestHeaderCloneIndependence(t *testing.T) {
	tbl := testTable()
	h := Header{1, 3, 5}
	c := h.Clone()
	c[0] = 2
	if h[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
	_ = tbl
}

func TestHeaderEqual(t *testing.T) {
	if !(Header{1, 2}).Equal(Header{1, 2}) {
		t.Error("identical headers not Equal")
	}
	if (Header{1, 2}).Equal(Header{1, 3}) {
		t.Error("different headers Equal")
	}
	if (Header{1}).Equal(Header{1, 2}) {
		t.Error("different lengths Equal")
	}
}

// Property: any header built as α ℓ1 ℓ0 with α ∈ L_M*, ℓ1 ∈ L_M⊥, ℓ0 ∈ L_IP
// is valid, and pushing a plain MPLS label keeps it valid.
func TestHeaderValidityProperty(t *testing.T) {
	tbl := testTable()
	mpls := tbl.OfKind(MPLS)
	bottoms := tbl.OfKind(BottomMPLS)
	ips := tbl.OfKind(IP)
	f := func(stack []uint8, bi, ii uint8) bool {
		h := Header{}
		for _, s := range stack {
			h = append(h, mpls[int(s)%len(mpls)])
		}
		h = append(h, bottoms[int(bi)%len(bottoms)], ips[int(ii)%len(ips)])
		if !h.Valid(tbl) {
			return false
		}
		pushed := append(Header{mpls[0]}, h...)
		return pushed.Valid(tbl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderFormat(t *testing.T) {
	tbl := testTable()
	if got := (Header{1, 3, 5}).Format(tbl); got != "30 ∘ s20 ∘ ip1" {
		t.Errorf("Format = %q", got)
	}
	if got := (Header{}).Format(tbl); got != "ε" {
		t.Errorf("Format(empty) = %q", got)
	}
}
