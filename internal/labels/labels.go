// Package labels defines the MPLS label universe used throughout the
// verification suite.
//
// Following Definition 2 of the AalWiNes paper, the finite label set L is
// partitioned into three kinds:
//
//   - MPLS labels (L_M), written e.g. "30",
//   - MPLS labels with the bottom-of-stack bit S set (L_M⊥), written with a
//     leading small "s", e.g. "s20", and
//   - IP addresses / IP destination labels (L_IP), e.g. "ip1".
//
// Labels are interned into a Table so that the rest of the system can use
// small integer identifiers, which keeps automata transitions and pushdown
// stack symbols compact.
package labels

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a label according to the partition of Definition 2.
type Kind uint8

const (
	// MPLS is a plain MPLS label (member of L_M).
	MPLS Kind = iota
	// BottomMPLS is an MPLS label with the bottom-of-stack bit set (L_M⊥).
	BottomMPLS
	// IP is an IP destination label (L_IP).
	IP
	// numKinds is the number of label kinds.
	numKinds
)

// String returns the conventional name of the kind as used by the query
// language abbreviations (mpls, smpls, ip).
func (k Kind) String() string {
	switch k {
	case MPLS:
		return "mpls"
	case BottomMPLS:
		return "smpls"
	case IP:
		return "ip"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ID is an interned label identifier. IDs are dense indices into a Table,
// which makes them usable as stack symbols of a pushdown system and as
// symbol identifiers of finite automata.
type ID uint32

// None is the zero ID; it is never assigned to a real label.
const None ID = 0

// Label is an interned label: its identifier, print name and kind.
type Label struct {
	ID   ID
	Name string
	Kind Kind
}

// Table interns labels and assigns dense identifiers. The zero value is
// ready to use. A Table must not be mutated concurrently; concurrent
// readers are safe once construction is complete.
type Table struct {
	byName map[string]ID
	all    []Label // index = ID-1
	counts [numKinds]int
}

// NewTable returns an empty label table.
func NewTable() *Table {
	return &Table{byName: make(map[string]ID)}
}

// Intern returns the ID of the label with the given name and kind, creating
// it if necessary. Interning the same name with a different kind is an
// error that indicates a malformed input network.
func (t *Table) Intern(name string, kind Kind) (ID, error) {
	if t.byName == nil {
		t.byName = make(map[string]ID)
	}
	if id, ok := t.byName[name]; ok {
		if got := t.all[id-1].Kind; got != kind {
			return None, fmt.Errorf("labels: %q already interned with kind %v, not %v", name, got, kind)
		}
		return id, nil
	}
	id := ID(len(t.all) + 1)
	t.all = append(t.all, Label{ID: id, Name: name, Kind: kind})
	t.byName[name] = id
	t.counts[kind]++
	return id, nil
}

// MustIntern is Intern that panics on kind conflicts. It is intended for
// tests and generators that construct networks programmatically.
func (t *Table) MustIntern(name string, kind Kind) ID {
	id, err := t.Intern(name, kind)
	if err != nil {
		panic(err)
	}
	return id
}

// InternBytes is Intern for callers that assemble label names in a reused
// byte buffer. The hit path goes through the compiler's map[string(b)]
// lookup optimisation and allocates nothing; only a genuinely new label
// pays for the string conversion. Paper-scale synthesis interns hundreds
// of thousands of labels through here.
func (t *Table) InternBytes(name []byte, kind Kind) (ID, error) {
	if t.byName == nil {
		t.byName = make(map[string]ID)
	}
	if id, ok := t.byName[string(name)]; ok {
		if got := t.all[id-1].Kind; got != kind {
			return None, fmt.Errorf("labels: %q already interned with kind %v, not %v", name, got, kind)
		}
		return id, nil
	}
	s := string(name)
	id := ID(len(t.all) + 1)
	t.all = append(t.all, Label{ID: id, Name: s, Kind: kind})
	t.byName[s] = id
	t.counts[kind]++
	return id, nil
}

// MustInternBytes is InternBytes that panics on kind conflicts.
func (t *Table) MustInternBytes(name []byte, kind Kind) ID {
	id, err := t.InternBytes(name, kind)
	if err != nil {
		panic(err)
	}
	return id
}

// Reserve pre-sizes the intern index for about n labels, rehashing any
// labels interned so far into the larger index. Generators call it up
// front with their size estimate to avoid incremental map growth.
func (t *Table) Reserve(n int) {
	if len(t.all) >= n {
		return
	}
	m := make(map[string]ID, n)
	for k, v := range t.byName {
		m[k] = v
	}
	t.byName = m
	all := make([]Label, len(t.all), n)
	copy(all, t.all)
	t.all = all
}

// InternGuess interns a label, deriving its kind from the paper's naming
// convention: names starting with "s" followed by a digit are bottom-of-
// stack MPLS labels, names starting with "ip" (or containing a dot, as in
// dotted-quad addresses) are IP labels, everything else is a plain MPLS
// label. Service labels such as "$449550" are plain MPLS labels.
func (t *Table) InternGuess(name string) (ID, error) {
	return t.Intern(name, GuessKind(name))
}

// GuessKind derives the label kind from the naming convention described at
// InternGuess.
func GuessKind(name string) Kind {
	switch {
	case strings.HasPrefix(name, "ip"), strings.Contains(name, "."):
		return IP
	case len(name) >= 2 && name[0] == 's' && name[1] >= '0' && name[1] <= '9':
		return BottomMPLS
	default:
		return MPLS
	}
}

// Lookup returns the ID for name, or None if the name has not been interned.
func (t *Table) Lookup(name string) ID {
	return t.byName[name]
}

// LookupBytes is Lookup for a name held in a byte buffer; it never
// allocates.
func (t *Table) LookupBytes(name []byte) ID {
	return t.byName[string(name)]
}

// Get returns the label for an ID. It panics on IDs not issued by this
// table, which always indicates a programming error.
func (t *Table) Get(id ID) Label {
	if id == None || int(id) > len(t.all) {
		panic(fmt.Sprintf("labels: invalid ID %d", id))
	}
	return t.all[id-1]
}

// Name returns the print name of id.
func (t *Table) Name(id ID) string { return t.Get(id).Name }

// Kind returns the kind of id.
func (t *Table) Kind(id ID) Kind { return t.Get(id).Kind }

// Len returns the number of interned labels.
func (t *Table) Len() int { return len(t.all) }

// CountKind returns the number of interned labels of the given kind.
func (t *Table) CountKind(k Kind) int { return t.counts[k] }

// All returns all interned labels in ID order. The returned slice is shared
// with the table and must not be modified.
func (t *Table) All() []Label { return t.all }

// OfKind returns the IDs of all labels of kind k, in ID order.
func (t *Table) OfKind(k Kind) []ID {
	ids := make([]ID, 0, t.counts[k])
	for _, l := range t.all {
		if l.Kind == k {
			ids = append(ids, l.ID)
		}
	}
	return ids
}

// Names returns the sorted print names of the given IDs; useful for stable
// diagnostics and tests.
func (t *Table) Names(ids []ID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = t.Name(id)
	}
	sort.Strings(out)
	return out
}
