package labels

import "strings"

// Header is a valid MPLS packet header: a label stack written top-first,
// exactly as in the paper (the left-most label is the top of the stack).
//
// The set of valid headers is
//
//	H = L_IP ∪ { α ℓ1 ℓ0 | α ∈ L_M*, ℓ1 ∈ L_M⊥, ℓ0 ∈ L_IP }
//
// i.e. a bare IP label, or any number of plain MPLS labels on top of one
// bottom-of-stack MPLS label on top of an IP label.
type Header []ID

// Top returns the top (left-most) label of the header, or None for the
// empty header.
func (h Header) Top() ID {
	if len(h) == 0 {
		return None
	}
	return h[0]
}

// Clone returns a copy of the header that shares no storage with h.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	copy(out, h)
	return out
}

// Equal reports whether two headers are identical label sequences.
func (h Header) Equal(o Header) bool {
	if len(h) != len(o) {
		return false
	}
	for i := range h {
		if h[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the header in the paper's composition notation, e.g.
// "30 ∘ s20 ∘ ip1".
func (h Header) Format(t *Table) string {
	if len(h) == 0 {
		return "ε"
	}
	parts := make([]string, len(h))
	for i, id := range h {
		parts[i] = t.Name(id)
	}
	return strings.Join(parts, " ∘ ")
}

// Valid reports whether h is a member of the valid header set H of the
// network whose labels are interned in t.
func (h Header) Valid(t *Table) bool {
	n := len(h)
	if n == 0 {
		return false
	}
	if t.Kind(h[n-1]) != IP {
		return false
	}
	if n == 1 {
		return true
	}
	if t.Kind(h[n-2]) != BottomMPLS {
		return false
	}
	for i := 0; i < n-2; i++ {
		if t.Kind(h[i]) != MPLS {
			return false
		}
	}
	return true
}

// ValidOnTopOf reports whether pushing label id on top of a header whose
// current top is top yields a valid header, per the side conditions of the
// header rewrite function ℋ (Definition 3): a plain MPLS label may sit on
// any MPLS label (plain or bottom); a bottom-of-stack label may only sit
// directly on an IP label; an IP label may never be pushed.
func ValidOnTopOf(t *Table, id, top ID) bool {
	switch t.Kind(id) {
	case MPLS:
		k := t.Kind(top)
		return k == MPLS || k == BottomMPLS
	case BottomMPLS:
		return t.Kind(top) == IP
	default:
		return false
	}
}
