package translate_test

import (
	"reflect"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/translate"
	"aalwines/internal/weight"
)

// sameSystem asserts that two builds of the same (network, query, options)
// produced byte-identical pushdown systems: rules in the same order with
// the same states, symbols, weights and tags, the same state count, step
// table and final specification.
func sameSystem(t *testing.T, ctx string, got, want *translate.System) {
	t.Helper()
	if got.PDS.NumStates != want.PDS.NumStates {
		t.Errorf("%s: NumStates = %d, want %d", ctx, got.PDS.NumStates, want.PDS.NumStates)
	}
	if !reflect.DeepEqual(got.PDS.Rules, want.PDS.Rules) {
		t.Errorf("%s: rules differ (%d vs %d)", ctx, len(got.PDS.Rules), len(want.PDS.Rules))
	}
	if !reflect.DeepEqual(got.Steps, want.Steps) {
		t.Errorf("%s: step tables differ", ctx)
	}
	if !reflect.DeepEqual(got.FinalStates, want.FinalStates) {
		t.Errorf("%s: final states differ", ctx)
	}
	if got.RulesBeforeReduction != want.RulesBeforeReduction {
		t.Errorf("%s: RulesBeforeReduction = %d, want %d",
			ctx, got.RulesBeforeReduction, want.RulesBeforeReduction)
	}
}

func optionMatrix() []translate.Options {
	spec := weight.Spec{{{Coeff: 1, Q: weight.Hops}}}
	return []translate.Options{
		{Mode: translate.Over},
		{Mode: translate.Under},
		{Mode: translate.Over, NoReductions: true},
		{Mode: translate.Over, Spec: spec},
		{Mode: translate.Under, Spec: spec},
	}
}

// TestBuildIncrementalMatchesBuild checks the incremental builder's core
// contract on both an all-rebuild (cold store) and an all-splice (warm
// store) pass: the assembled system is indistinguishable from a plain
// Build.
func TestBuildIncrementalMatchesBuild(t *testing.T) {
	re := gen.RunningExample()
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
		"<ip> [.#v0] .* [v3#.] <ip> 2",
	}
	for _, qt := range queries {
		q := mustParse(t, qt, re.Network)
		for _, opts := range optionMatrix() {
			want := translate.Build(re.Network, q, opts)
			store := translate.NewBlockStore()
			ver := func(routing.Key) uint64 { return 0 }

			cold, st := translate.BuildIncremental(re.Network, q, opts, store, ver)
			nKeys := len(re.Network.Routing.Keys())
			if st.BlocksRebuilt != nKeys || st.BlocksReused != 0 {
				t.Errorf("cold build: stats = %+v, want %d rebuilt", st, nKeys)
			}
			sameSystem(t, "cold "+qt, cold, want)

			warm, st := translate.BuildIncremental(re.Network, q, opts, store, ver)
			if st.BlocksReused != nKeys || st.BlocksRebuilt != 0 {
				t.Errorf("warm build: stats = %+v, want %d reused", st, nKeys)
			}
			sameSystem(t, "warm "+qt, warm, want)
		}
	}
}

// TestBuildIncrementalZoo repeats the equivalence check on a synthesised
// zoo network with protection tunnels — the workload the scenario bench
// measures.
func TestBuildIncrementalZoo(t *testing.T) {
	s := gen.Zoo(gen.ZooOpts{Routers: 16, Seed: 7, Protection: true})
	for _, gq := range s.Queries(6, 7) {
		q := mustParse(t, gq.Text, s.Net)
		opts := translate.Options{Mode: translate.Over}
		want := translate.Build(s.Net, q, opts)
		store := translate.NewBlockStore()
		ver := func(routing.Key) uint64 { return 0 }
		cold, _ := translate.BuildIncremental(s.Net, q, opts, store, ver)
		sameSystem(t, "cold "+gq.Text, cold, want)
		warm, st := translate.BuildIncremental(s.Net, q, opts, store, ver)
		if st.BlocksRebuilt != 0 {
			t.Errorf("warm build rebuilt %d blocks", st.BlocksRebuilt)
		}
		sameSystem(t, "warm "+gq.Text, warm, want)
	}
}

// TestBuildIncrementalPartialInvalidation mutates one routing key between
// builds and checks that (a) only that key's block is rebuilt and (b) the
// result matches a from-scratch build of the mutated network.
func TestBuildIncrementalPartialInvalidation(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 2", re.Network)
	opts := translate.Options{Mode: translate.Over}

	keys := re.Network.Routing.Keys()
	if len(keys) < 2 {
		t.Fatal("need at least two routing keys")
	}
	victim := keys[len(keys)/2]

	store := translate.NewBlockStore()
	vers := map[routing.Key]uint64{}
	ver := func(k routing.Key) uint64 { return vers[k] }
	translate.BuildIncremental(re.Network, q, opts, store, ver)

	// Mutate: drop the victim key's lowest-priority group (simulating a
	// delta that removes a backup entry), bump only its version.
	gs := re.Network.Routing.Lookup(victim.In, victim.Top)
	mutated := &network.Network{
		Name:    re.Network.Name,
		Topo:    re.Network.Topo,
		Labels:  re.Network.Labels,
		Routing: routing.NewTable(),
	}
	for _, k := range keys {
		cur := re.Network.Routing.Lookup(k.In, k.Top)
		if k == victim {
			cur = cur[:len(cur)-1]
		}
		mutated.Routing.SetGroups(k.In, k.Top, cur)
	}
	vers[victim] = 1

	want := translate.Build(mutated, q, opts)
	got, st := translate.BuildIncremental(mutated, q, opts, store, ver)
	sameSystem(t, "mutated", got, want)
	if len(gs) > 0 && st.BlocksRebuilt > 1 {
		t.Errorf("mutating one key rebuilt %d blocks", st.BlocksRebuilt)
	}
	wantReused := len(mutated.Routing.Keys()) - st.BlocksRebuilt
	if st.BlocksReused != wantReused {
		t.Errorf("reused %d blocks, want %d", st.BlocksReused, wantReused)
	}

	// Undo: restoring the version restores a full-splice build of the
	// original network.
	vers[victim] = 0
	wantOrig := translate.Build(re.Network, q, opts)
	back, st := translate.BuildIncremental(re.Network, q, opts, store, ver)
	if st.BlocksRebuilt != 0 {
		t.Errorf("undo rebuilt %d blocks, want 0", st.BlocksRebuilt)
	}
	sameSystem(t, "undo", back, wantOrig)
}

// TestSessionCacheGet exercises the assembled-system layer: repeated gets
// under one fingerprint hit, a fingerprint change reassembles
// incrementally, and results always match a plain Build against the
// current overlay.
func TestSessionCacheGet(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 1", re.Network)
	opts := translate.Options{Mode: translate.Over}

	sc := translate.NewSessionCache(re.Network)
	if sc.Net() != re.Network {
		t.Fatal("fresh session cache must serve the base network")
	}
	sys1, init1 := sc.Get(q, opts)
	sameSystem(t, "base", sys1, translate.Build(re.Network, q, opts))
	if init1 == nil {
		t.Fatal("nil init automaton")
	}
	sys2, init2 := sc.Get(q, opts)
	if sys2 != sys1 {
		t.Error("same-fingerprint get must return the shared system")
	}
	if init2 == init1 {
		t.Error("init automata must be private clones")
	}
	if st := sc.Stats(); st.Hits != 1 || st.Gets != 2 {
		t.Errorf("stats = %+v, want 1 hit of 2 gets", st)
	}

	// Install an overlay (here: the same network content under a new
	// fingerprint, the degenerate delta) and check reassembly is served
	// entirely from the block store.
	sc.SetOverlay(re.Network, 1, func(routing.Key) uint64 { return 0 })
	sys3, _ := sc.Get(q, opts)
	sameSystem(t, "overlay", sys3, translate.Build(re.Network, q, opts))
	if bs := sc.BlockStats(); bs.BlocksReused == 0 {
		t.Errorf("block stats = %+v, want reuse on refingerprinted overlay", bs)
	}
}
