package translate

import (
	"aalwines/internal/nfa"
	"aalwines/internal/pds"
	"aalwines/internal/topology"
)

// topThreshold bounds the size of explicitly tracked top-of-stack sets;
// beyond it the analysis widens to ⊤ (any symbol). Widening keeps the
// reduction sound — it only loses pruning precision on states that can see
// a very large label variety anyway.
const topThreshold = 128

// topSet is the lattice value of the top-of-stack analysis: either an
// explicit small symbol set or ⊤.
type topSet struct {
	all bool
	m   map[pds.Sym]struct{}
}

func (t *topSet) has(s pds.Sym) bool {
	if t.all {
		return true
	}
	_, ok := t.m[s]
	return ok
}

func (t *topSet) add(s pds.Sym) bool {
	if t.all {
		return false
	}
	if t.m == nil {
		t.m = make(map[pds.Sym]struct{})
	}
	if _, ok := t.m[s]; ok {
		return false
	}
	t.m[s] = struct{}{}
	if len(t.m) > topThreshold {
		t.all = true
		t.m = nil
	}
	return true
}

func (t *topSet) addSet(set *nfa.Set) bool {
	if t.all {
		return false
	}
	if set.Len() > topThreshold {
		t.all = true
		t.m = nil
		return true
	}
	changed := false
	set.Each(func(x nfa.Sym) bool {
		if t.add(pds.Sym(x)) {
			changed = true
		}
		return !t.all
	})
	return changed || t.all
}

func (t *topSet) unionInto(dst *topSet) bool {
	if t.all {
		if dst.all {
			return false
		}
		dst.all = true
		dst.m = nil
		return true
	}
	changed := false
	for s := range t.m {
		if dst.add(s) {
			changed = true
		}
	}
	return changed
}

// reduce runs the paper's reduction: a forward dataflow analysis that
// over-approximates the possible top-of-stack symbols for every control
// state, then removes rules whose head (state, symbol) can never occur.
func (b *builder) reduce() {
	p := b.PDS
	tops := make([]topSet, p.NumStates)

	// Seed: entry control states can see any first symbol of Lang(a).
	pre := b.Query.PreNFA
	var firstSets []*nfa.Set
	for _, arc := range pre.Arcs(pre.Start()) {
		firstSets = append(firstSets, arc.Set)
	}
	bStart := b.pathNFA.Arcs(b.pathNFA.Start())
	for e := 0; e < b.Net.Topo.NumLinks(); e++ {
		for _, arc := range bStart {
			if !arc.Set.Has(nfa.Sym(e)) {
				continue
			}
			st := b.stateOf(topology.LinkID(e), arc.To, 0)
			for _, fs := range firstSets {
				tops[st].addSet(fs)
			}
		}
	}

	// globalBelow over-approximates symbols at stack depth ≥ 2: anything in
	// Lang(a) plus ⊥ plus everything pushed below a new top.
	var below topSet
	for i := 0; i < pre.NumStates(); i++ {
		for _, arc := range pre.Arcs(i) {
			below.addSet(arc.Set)
		}
	}
	below.add(b.Bot)

	// Fixpoint iteration.
	for changed := true; changed; {
		changed = false
		for i := range p.Rules {
			r := &p.Rules[i]
			if !tops[r.FromState].has(r.FromSym) {
				continue
			}
			switch r.Kind {
			case pds.SwapRule:
				if tops[r.ToState].add(r.Sym1) {
					changed = true
				}
			case pds.PushRule:
				if tops[r.ToState].add(r.Sym1) {
					changed = true
				}
				if below.add(r.Sym2) {
					changed = true
				}
			case pds.PopRule:
				if below.unionInto(&tops[r.ToState]) {
					changed = true
				}
			}
		}
	}

	// Prune rules with unreachable heads, preserving order (tags stay
	// valid: they index b.Steps, not rules).
	kept := p.Rules[:0]
	for _, r := range p.Rules {
		if tops[r.FromState].has(r.FromSym) {
			kept = append(kept, r)
		}
	}
	p.Rules = kept
	// Invalidate indices built over the old rule slice.
	rebuilt := pds.New(p.NumStates, p.NumSyms)
	rebuilt.Rules = kept
	*p = *rebuilt
}
