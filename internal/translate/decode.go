package translate

import (
	"fmt"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/pds"
)

// DecodeHeader converts a PDS stack (which must end in exactly one ⊥) back
// into an MPLS header.
func (s *System) DecodeHeader(stack []pds.Sym) (labels.Header, error) {
	if len(stack) == 0 || stack[len(stack)-1] != s.Bot {
		return nil, fmt.Errorf("translate: stack %v does not end in ⊥", stack)
	}
	h := make(labels.Header, 0, len(stack)-1)
	for _, sym := range stack[:len(stack)-1] {
		id, ok := s.SymLabel(sym)
		if !ok {
			return nil, fmt.Errorf("translate: ⊥ in the middle of stack %v", stack)
		}
		h = append(h, id)
	}
	return h, nil
}

// DecodeTrace converts a witness derivation — an initial configuration and
// the rule sequence applied to it — into the network trace it encodes. The
// first step is recovered from the initial control state; each tagged rule
// opens a forwarding step whose arrival header is the stack once the rule's
// chain has completed (i.e. just before the next tagged rule, or at the end
// of the derivation).
func (s *System) DecodeTrace(init pds.Config, rules []int32) (network.Trace, error) {
	e1, _, _, ok := s.DecodeState(init.State)
	if !ok {
		return nil, fmt.Errorf("translate: initial state %d is not a base control state", init.State)
	}
	h1, err := s.DecodeHeader(init.Stack)
	if err != nil {
		return nil, err
	}
	if len(h1) == 0 {
		return nil, fmt.Errorf("translate: empty initial header")
	}
	tr := network.Trace{{Link: e1, Header: h1}}

	// Replay to obtain all intermediate configurations.
	cur := init
	configs := make([]pds.Config, 0, len(rules)+1)
	configs = append(configs, cur)
	for _, ri := range rules {
		next, ok := cur.Step(s.PDS.Rules[ri])
		if !ok {
			return nil, fmt.Errorf("translate: rule %d does not apply during replay", ri)
		}
		cur = next
		configs = append(configs, cur)
	}

	// Segment the derivation at tagged rules.
	for i := 0; i < len(rules); i++ {
		tag := s.PDS.Rules[rules[i]].Tag
		if tag < 0 {
			return nil, fmt.Errorf("translate: chain rule %d outside any step", rules[i])
		}
		step := s.Steps[tag]
		// The chain ends right before the next tagged rule.
		j := i + 1
		for j < len(rules) && s.PDS.Rules[rules[j]].Tag < 0 {
			j++
		}
		h, err := s.DecodeHeader(configs[j].Stack)
		if err != nil {
			return nil, err
		}
		tr = append(tr, network.Step{Link: step.Out, Header: h})
		i = j - 1
	}
	return tr, nil
}
