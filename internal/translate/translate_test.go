package translate_test

import (
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/routing"
	"aalwines/internal/translate"
	"aalwines/internal/weight"
)

func mustParse(t *testing.T, text string, net *network.Network) *query.Query {
	t.Helper()
	q, err := query.Parse(text, net)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBuildOverShape(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 0", re.Network)
	sys := translate.Build(re.Network, q, translate.Options{})
	if sys.PDS == nil || len(sys.PDS.Rules) == 0 {
		t.Fatal("empty PDS")
	}
	if int(sys.Bot) != re.Labels.Len() {
		t.Errorf("Bot = %d, want %d", sys.Bot, re.Labels.Len())
	}
	if sys.Dim != 0 {
		t.Errorf("Dim = %d for unweighted build", sys.Dim)
	}
	if len(sys.FinalStates) == 0 {
		t.Error("no final states")
	}
	st := sys.PDS.Stats()
	if st.Rules != len(sys.PDS.Rules) {
		t.Error("Stats inconsistent")
	}
}

func TestReductionShrinksRules(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0", re.Network)
	reduced := translate.Build(re.Network, q, translate.Options{})
	full := translate.Build(re.Network, q, translate.Options{NoReductions: true})
	if reduced.RulesBeforeReduction != len(full.PDS.Rules) {
		t.Errorf("RulesBeforeReduction = %d, unreduced build has %d",
			reduced.RulesBeforeReduction, len(full.PDS.Rules))
	}
	if len(reduced.PDS.Rules) > len(full.PDS.Rules) {
		t.Error("reduction added rules")
	}
	if len(reduced.PDS.Rules) == len(full.PDS.Rules) {
		t.Log("reduction removed nothing on this instance (allowed but unusual)")
	}
}

func TestDecodeStateRoundTrip(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 2", re.Network)
	for _, mode := range []translate.Mode{translate.Over, translate.Under} {
		sys := translate.Build(re.Network, q, translate.Options{Mode: mode})
		// Base states decode consistently; chain states don't decode.
		seen := 0
		for s := 0; s < sys.PDS.NumStates; s++ {
			if _, _, f, ok := sys.DecodeState(pds.State(s)); ok {
				seen++
				if mode == translate.Over && f != 0 {
					t.Fatalf("over-approx state %d has budget %d", s, f)
				}
				if mode == translate.Under && f > q.MaxFailures {
					t.Fatalf("under-approx state %d has budget %d > k", s, f)
				}
			}
		}
		if seen == 0 {
			t.Fatal("no decodable base states")
		}
	}
}

func TestUnderModeHasMoreStates(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 2", re.Network)
	over := translate.Build(re.Network, q, translate.Options{Mode: translate.Over})
	under := translate.Build(re.Network, q, translate.Options{Mode: translate.Under})
	if under.PDS.NumStates <= over.PDS.NumStates {
		t.Errorf("under states %d <= over states %d", under.PDS.NumStates, over.PDS.NumStates)
	}
}

func TestWeightedBuildAnnotatesRules(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 1", re.Network)
	spec, _ := weight.ParseSpec("Hops, Failures")
	sys := translate.Build(re.Network, q, translate.Options{Spec: spec})
	if sys.Dim != 2 {
		t.Fatalf("Dim = %d, want 2", sys.Dim)
	}
	withWeight := 0
	var sawFailureCost bool
	for _, r := range sys.PDS.Rules {
		if r.Weight != nil {
			if len(r.Weight) != 2 {
				t.Fatalf("rule weight %v has wrong dim", r.Weight)
			}
			withWeight++
			if r.Weight[1] > 0 {
				sawFailureCost = true
			}
		}
	}
	if withWeight == 0 {
		t.Fatal("no weighted rules")
	}
	if !sawFailureCost {
		t.Error("no rule carries a Failures cost despite the backup group")
	}
}

func TestKZeroSkipsBackupGroups(t *testing.T) {
	re := gen.RunningExample()
	q0 := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 0", re.Network)
	q1 := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 1", re.Network)
	s0 := translate.Build(re.Network, q0, translate.Options{NoReductions: true})
	s1 := translate.Build(re.Network, q1, translate.Options{NoReductions: true})
	if len(s0.PDS.Rules) >= len(s1.PDS.Rules) {
		t.Errorf("k=0 rules %d >= k=1 rules %d; backup groups must be excluded at k=0",
			len(s0.PDS.Rules), len(s1.PDS.Rules))
	}
}

func TestDecodeHeader(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> .* <ip> 0", re.Network)
	sys := translate.Build(re.Network, q, translate.Options{})
	ip1 := translate.LabelSymOf(re.L["ip1"])
	s20 := translate.LabelSymOf(re.L["s20"])
	h, err := sys.DecodeHeader([]pds.Sym{s20, ip1, sys.Bot})
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0] != re.L["s20"] || h[1] != re.L["ip1"] {
		t.Fatalf("decoded %v", h)
	}
	if _, err := sys.DecodeHeader([]pds.Sym{s20, ip1}); err == nil {
		t.Error("missing ⊥ accepted")
	}
	if _, err := sys.DecodeHeader([]pds.Sym{sys.Bot, ip1, sys.Bot}); err == nil {
		t.Error("⊥ mid-stack accepted")
	}
	if _, err := sys.DecodeHeader(nil); err == nil {
		t.Error("empty stack accepted")
	}
}

// popThenSwapNet exercises chain construction with an op sequence that
// continues after a pop (the revealed symbol is unknown at build time).
func popThenSwapNet(t *testing.T) (*network.Network, map[string]labels.ID) {
	t.Helper()
	n := network.New("pop-then-swap")
	a := n.Topo.AddRouter("a")
	b := n.Topo.AddRouter("b")
	c := n.Topo.AddRouter("c")
	in := n.Topo.MustAddLink(a, b, "i", "i", 1)
	out := n.Topo.MustAddLink(b, c, "o", "o", 1)
	lb := map[string]labels.ID{
		"t1": n.Labels.MustIntern("t1", labels.MPLS),
		"s1": n.Labels.MustIntern("s1", labels.BottomMPLS),
		"s2": n.Labels.MustIntern("s2", labels.BottomMPLS),
		"ip": n.Labels.MustIntern("ip0", labels.IP),
	}
	// pop reveals either s1 or s2, then swap to s2: only valid when the
	// revealed label is a bottom label (it is).
	n.Routing.MustAdd(in, lb["t1"], 1, routing.Entry{
		Out: out, Ops: routing.Ops{routing.Pop(), routing.Swap(lb["s2"])}})
	return n, lb
}

func TestPopThenSwapChain(t *testing.T) {
	n, lb := popThenSwapNet(t)
	q := mustParse(t, "<t1 smpls ip> [.#b] . <smpls ip> 0", n)
	sys := translate.Build(n, q, translate.Options{NoReductions: true})
	// The chain must contain one pop rule per candidate revealed label
	// (s1 and s2) and swap rules from the chain states.
	pops, swaps := 0, 0
	for _, r := range sys.PDS.Rules {
		switch r.Kind {
		case pds.PopRule:
			pops++
		case pds.SwapRule:
			swaps++
		}
	}
	if pops == 0 || swaps < 2 {
		t.Fatalf("pops=%d swaps=%d; expected branching over revealed labels", pops, swaps)
	}
	// End to end: the trace pops t1 and swaps the revealed bottom label.
	res, err2 := pds.Poststar(sys.PDS, sys.InitAuto(), 0)
	if err2 != nil {
		t.Fatal(err2)
	}
	acc, ok := res.FindAccepting(sys.FinalStates, sys.FinalSpec)
	if !ok {
		t.Fatal("query unsatisfied; expected a witness")
	}
	ic, rules, err3 := res.Reconstruct(acc)
	if err3 != nil {
		t.Fatal(err3)
	}
	tr, err4 := sys.DecodeTrace(ic, rules)
	if err4 != nil {
		t.Fatal(err4)
	}
	if len(tr) != 2 {
		t.Fatalf("trace = %s", tr.Format(n))
	}
	last := tr[1].Header
	if len(last) != 2 || last[0] != lb["s2"] {
		t.Fatalf("final header = %s, want s2 ∘ ip0", last.Format(n.Labels))
	}
}

func TestStepsRecorded(t *testing.T) {
	re := gen.RunningExample()
	q := mustParse(t, "<ip> [.#v0] .* [v3#.] <ip> 1", re.Network)
	sys := translate.Build(re.Network, q, translate.Options{})
	if len(sys.Steps) == 0 {
		t.Fatal("no step infos")
	}
	for _, r := range sys.PDS.Rules {
		if r.Tag >= 0 && int(r.Tag) >= len(sys.Steps) {
			t.Fatalf("rule tag %d out of range %d", r.Tag, len(sys.Steps))
		}
	}
}
