package translate_test

import (
	"reflect"
	"sync"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/translate"
)

// TestBuildDeterministic builds the same system repeatedly and demands
// byte-identical rule sequences: cached (built-once) and uncached
// (built-per-run) verifications must make identical tie-breaks among
// equally minimal witnesses.
func TestBuildDeterministic(t *testing.T) {
	s := gen.Zoo(gen.ZooOpts{Routers: 30, Seed: 7, Protection: true})
	for _, g := range s.Queries(6, 11) {
		q, err := query.Parse(g.Text, s.Net)
		if err != nil {
			t.Fatalf("%s: %v", g.Text, err)
		}
		for _, mode := range []translate.Mode{translate.Over, translate.Under} {
			ref := translate.Build(s.Net, q, translate.Options{Mode: mode})
			for i := 0; i < 3; i++ {
				got := translate.Build(s.Net, q, translate.Options{Mode: mode})
				if !reflect.DeepEqual(got.PDS.Rules, ref.PDS.Rules) {
					t.Fatalf("%s mode=%d build %d: rule sequence differs", g.Text, mode, i)
				}
				if !reflect.DeepEqual(got.Steps, ref.Steps) {
					t.Fatalf("%s mode=%d build %d: step table differs", g.Text, mode, i)
				}
			}
		}
	}
}

// TestSharedSystemConcurrentSaturation saturates one translated system from
// several goroutines at once, each with its own initial automaton. This is
// the sharing pattern of the batch runner's translation cache; it is a race
// regression test for the formerly lazy rule indexes of pds.PDS (run it
// under -race).
func TestSharedSystemConcurrentSaturation(t *testing.T) {
	net := gen.RunningExample().Network
	q, err := query.Parse("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", net)
	if err != nil {
		t.Fatal(err)
	}
	sys := translate.Build(net, q, translate.Options{Mode: translate.Over})

	const workers = 8
	var wg sync.WaitGroup
	verdicts := make([]bool, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pds.PoststarBudget(sys.PDS, sys.InitAuto(), sys.Dim, 0)
			if err != nil {
				t.Error(err)
				return
			}
			_, found := res.FindAccepting(sys.FinalStates, sys.FinalSpec)
			verdicts[w] = found
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if verdicts[w] != verdicts[0] {
			t.Fatalf("worker %d disagrees: %v vs %v", w, verdicts[w], verdicts[0])
		}
	}
}
