// Package translate builds (weighted) pushdown systems from an MPLS network
// and a compiled query, following §4.2 of the AalWiNes paper:
//
//   - control states are (incoming link, path-NFA state) pairs — extended
//     with a global failure counter for the under-approximation — plus
//     fresh chain states that decompose multi-operation sequences into
//     normalised pop/swap/push rules;
//   - the stack is the MPLS header over the interned label alphabet with a
//     bottom marker ⊥;
//   - the initial P-automaton encodes "packet enters on some link e₁ with a
//     header in Lang(a)", the final specification encodes Lang(c);
//   - the over-approximation admits a priority group whenever its locally
//     required failure set has size ≤ k; the under-approximation threads a
//     global failure budget through the control state;
//   - a top-of-stack dataflow analysis removes unreachable rules before
//     saturation (the paper's reduction step).
package translate

import (
	"sort"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/nfa"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
	"aalwines/internal/weight"
)

// Mode selects the approximation direction.
type Mode uint8

const (
	// Over builds the over-approximation: up to k links may fail at every
	// router independently.
	Over Mode = iota
	// Under builds the under-approximation: a global failure counter in
	// the control state bounds the total (with possible double counting
	// along loops).
	Under
)

// Options configure the construction.
type Options struct {
	Mode Mode
	// Spec, when non-nil, makes the system weighted: every step rule
	// carries the vector of per-step contributions to the spec's linear
	// expressions.
	Spec weight.Spec
	// Dist overrides the link distance function for the Distance quantity.
	Dist weight.DistanceFunc
	// NoReductions disables the top-of-stack reduction (ablation switch).
	NoReductions bool
	// Slice restricts rule emission to the query's network slice (the
	// forward product closure of routing adjacency × path NFA; see
	// slice.go). The saturated automaton — and hence the verification
	// result — is byte-identical with or without it; only rule counts and
	// build work shrink. Incremental builds (BlockStore hooks set) ignore
	// the flag: block liveness is global over the routing table, so cached
	// per-key blocks cannot soundly carry a query-scoped slice.
	Slice bool
}

// StepInfo describes the network-level action of a tagged rule: the packet
// is forwarded out of link Out using priority group Group (0-based).
type StepInfo struct {
	Out   topology.LinkID
	Group int
}

// System is a constructed pushdown system ready for saturation.
type System struct {
	Net   *network.Network
	Query *query.Query
	Opts  Options

	PDS   *pds.PDS
	Bot   pds.Sym // the bottom-of-stack marker symbol
	Dim   int     // weight dimension (0 = unweighted)
	Steps []StepInfo

	// FinalStates are the control states from which the final stack
	// specification is checked.
	FinalStates []pds.State
	// FinalSpec is an epsilon-free NFA over the stack alphabet accepting
	// Lang(c)·⊥.
	FinalSpec *nfa.NFA

	// RulesBeforeReduction records the rule count before the reduction
	// pass (equal to len(PDS.Rules) when reductions are disabled).
	RulesBeforeReduction int

	// SliceStats reports the query-scoped slice this build emitted under;
	// Active is false when slicing was off or skipped (incremental builds).
	SliceStats SliceStats

	numB    int // path NFA states
	kBudget int // failure budget levels for state encoding (1 for Over)
	baseCnt int // number of base control states
}

// Build constructs the pushdown system for a network and query.
func Build(net *network.Network, q *query.Query, opts Options) *System {
	b := &builder{
		System: &System{Net: net, Query: q, Opts: opts},
	}
	b.construct()
	return b.System
}

type builder struct {
	*System
	pathNFA *nfa.NFA
	dedup   map[ruleKey]bool
	slice   *Slice

	// Scratch buffers reused across buildEntry calls (the per-call map and
	// slice allocations dominated the translation profile at paper scale).
	seenTargets map[int]bool
	targets     []int

	// Incremental-build hooks (nil for a plain Build): store caches
	// relocatable per-key rule blocks, version maps a routing key to the
	// content version its cached block must match, stats tallies reuse.
	store   *BlockStore
	version func(routing.Key) uint64
	stats   BuildStats
}

// ruleKey is a comparable projection of a rule (weights excluded: identical
// rules always carry identical weights by construction).
type ruleKey struct {
	FromState pds.State
	FromSym   pds.Sym
	ToState   pds.State
	Kind      pds.RuleKind
	Sym1      pds.Sym
	Sym2      pds.Sym
	Tag       int32
}

// stateOf maps a base control state (incoming link, path-NFA state, failure
// budget used) to its PDS state index.
func (s *System) stateOf(e topology.LinkID, qb int, f int) pds.State {
	return pds.State((int(e)*s.numB+qb)*s.kBudget + f)
}

// DecodeState inverts stateOf for base states; ok is false for chain
// states.
func (s *System) DecodeState(st pds.State) (e topology.LinkID, qb int, f int, ok bool) {
	if int(st) >= s.baseCnt {
		return 0, 0, 0, false
	}
	f = int(st) % s.kBudget
	rest := int(st) / s.kBudget
	return topology.LinkID(rest / s.numB), rest % s.numB, f, true
}

// LabelSymOf converts a label to its stack symbol.
func LabelSymOf(id labels.ID) pds.Sym { return pds.Sym(id - 1) }

// SymLabel converts a stack symbol back to a label; ok is false for ⊥.
func (s *System) SymLabel(sym pds.Sym) (labels.ID, bool) {
	if sym == s.Bot {
		return labels.None, false
	}
	return labels.ID(sym + 1), true
}

func (b *builder) construct() {
	net, q := b.Net, b.Query
	b.pathNFA = q.PathNFA
	b.numB = b.pathNFA.NumStates()
	b.kBudget = 1
	if b.Opts.Mode == Under {
		b.kBudget = q.MaxFailures + 1
	}
	if b.Opts.Spec != nil {
		b.Dim = len(b.Opts.Spec)
	}
	L := net.Labels.Len()
	b.Bot = pds.Sym(L)
	b.baseCnt = net.Topo.NumLinks() * b.numB * b.kBudget
	b.PDS = pds.New(b.baseCnt, L+1)

	if b.Opts.Slice && b.store == nil {
		b.slice = ComputeSlice(net, q)
	}
	if b.slice == nil {
		// Unsliced builds emit at least one PDS rule per routing entry
		// (usually a few); reserving the known lower bound up front skips
		// the early append-doubling generations, which at >250k rules are
		// the single largest allocation source of a build.
		b.PDS.ReserveRules(net.Routing.NumRules())
	}
	b.buildRules()
	if b.slice != nil {
		b.System.SliceStats = b.slice.Stats
	}
	b.RulesBeforeReduction = len(b.PDS.Rules)
	b.buildFinal()
	if !b.Opts.NoReductions {
		b.reduce()
	}
	// Systems are shared read-only across concurrent saturations; freezing
	// builds the rule indexes eagerly so no reader mutates the PDS.
	b.PDS.Freeze()
}

// kindMask tracks the possible kinds of an unknown stack symbol.
type kindMask uint8

const (
	maskMPLS kindMask = 1 << iota
	maskBottom
	maskIP
)

func kindBit(k labels.Kind) kindMask {
	switch k {
	case labels.MPLS:
		return maskMPLS
	case labels.BottomMPLS:
		return maskBottom
	default:
		return maskIP
	}
}

// belowKinds returns the possible kinds of the symbol directly below a
// symbol of kind k in a valid header (⊥ below an IP label is not a label).
func belowKinds(k labels.Kind) kindMask {
	switch k {
	case labels.MPLS:
		return maskMPLS | maskBottom
	case labels.BottomMPLS:
		return maskIP
	default:
		return 0
	}
}

// symStack is the symbolic top of stack during chain construction: a known
// prefix (top first) over an unknown tail whose first symbol has a kind in
// tail.
type symStack struct {
	known []labels.ID
	tail  kindMask
}

func (b *builder) buildRules() {
	// Range walks the table's cached flat view: no per-build key-slice
	// allocation and sort, no per-key map lookup — at paper scale the
	// Keys-then-Lookup pattern alone costs hundreds of milliseconds per
	// query. Iteration order is identical to Keys, so emission order (and
	// with it every saturation counter) is unchanged.
	b.Net.Routing.Range(func(key routing.Key, gs routing.Groups) bool {
		if b.store != nil {
			ver := b.version(key)
			if blk := b.store.get(key, ver); blk != nil {
				b.splice(blk)
				b.stats.BlocksReused++
				return true
			}
			b.store.put(key, ver, b.record(key))
			b.stats.BlocksRebuilt++
			return true
		}
		if b.slice != nil {
			if !b.slice.LiveLink(key.In) {
				b.slice.Stats.KeysDropped++
				return true
			}
			b.slice.Stats.KeysKept++
		}
		b.buildKeyGroups(key, gs)
		return true
	})
}

// buildKey emits all rules of one routing-table key.
func (b *builder) buildKey(key routing.Key) {
	b.buildKeyGroups(key, b.Net.Routing.Lookup(key.In, key.Top))
}

// buildKeyGroups emits all rules of one routing-table key. The dedup map is
// per-key: rules from different keys never collide (tags are globally
// unique across used entries, and chain states are fresh per chain), so a
// key-scoped map yields the same rule list as a build-global one while
// making each key's emission independently cacheable. The map itself is
// owned by the builder and cleared between keys: one allocation per build
// instead of one per key (a quarter-million at paper scale).
func (b *builder) buildKeyGroups(key routing.Key, gs routing.Groups) {
	k := b.Query.MaxFailures
	if b.dedup == nil {
		b.dedup = make(map[ruleKey]bool, 64)
	} else {
		clear(b.dedup)
	}
	for j := range gs {
		mustFail := gs.PrefixLinks(j)
		if len(mustFail) > k {
			break // prefixes only grow with j
		}
		for _, entry := range gs[j].Entries {
			b.buildEntry(key.In, key.Top, entry, j, len(mustFail))
		}
	}
}

// buildEntry emits rule chains for one routing entry across all path-NFA
// transitions and failure budgets.
func (b *builder) buildEntry(in topology.LinkID, top labels.ID, entry routing.Entry, group, nFail int) {
	// Path-NFA moves on the outgoing link.
	linkSym := nfa.Sym(entry.Out)
	var w []uint64
	if b.Opts.Spec != nil {
		atoms := weight.StepAtoms(b.Net.Topo, entry.Out, b.Opts.Dist, nFail, entry.Ops.StackGrowth())
		w = b.Opts.Spec.Eval(atoms)
	}
	tag := int32(len(b.Steps))
	used := false
	for qb := 0; qb < b.numB; qb++ {
		// Rules headed at a pair outside the forward slice can never fire;
		// skipping them leaves the saturation byte-identical (slice.go).
		if b.slice != nil && !b.slice.Live(in, qb) {
			continue
		}
		// Collect distinct successor states in ascending order: map
		// iteration order would make the rule order — and hence tie-breaks
		// among equally minimal witnesses — vary between builds of the same
		// (network, query), and batch results must reproduce serial ones.
		if b.seenTargets == nil {
			b.seenTargets = make(map[int]bool, 8)
		} else {
			clear(b.seenTargets)
		}
		targets := b.targets[:0]
		for _, arc := range b.pathNFA.Arcs(qb) {
			if arc.Set.Has(linkSym) && !b.seenTargets[arc.To] {
				b.seenTargets[arc.To] = true
				targets = append(targets, arc.To)
			}
		}
		sort.Ints(targets)
		b.targets = targets
		for _, q2 := range targets {
			for f := 0; f < b.kBudget; f++ {
				f2 := f
				if b.Opts.Mode == Under {
					f2 = f + nFail
					if f2 >= b.kBudget {
						continue
					}
				}
				from := b.stateOf(in, qb, f)
				to := b.stateOf(entry.Out, q2, f2)
				init := symStack{known: []labels.ID{top}, tail: belowKinds(b.Net.Labels.Kind(top))}
				if b.emitOps(from, init, entry.Ops, to, tag, w) {
					used = true
				}
			}
		}
	}
	if used {
		b.Steps = append(b.Steps, StepInfo{Out: entry.Out, Group: group})
	}
}

// emitOps recursively emits the normalised rule chain for an op sequence,
// branching over candidate symbols when the top of stack is unknown. It
// reports whether at least one rule was emitted. Only the first rule of a
// chain carries the tag and weight.
func (b *builder) emitOps(cur pds.State, st symStack, ops routing.Ops, to pds.State, tag int32, w []uint64) bool {
	if len(ops) == 0 {
		// Forwarding without header rewrite: a no-op swap moves control.
		any := false
		for _, t := range b.candidates(st) {
			any = b.addRule(pds.Rule{
				FromState: cur, FromSym: LabelSymOf(t),
				ToState: to, Kind: pds.SwapRule, Sym1: LabelSymOf(t),
				Weight: w, Tag: tag,
			}) || any
		}
		return any
	}
	op := ops[0]
	rest := ops[1:]
	lt := b.Net.Labels
	any := false
	for _, t := range b.candidates(st) {
		var next symStack
		var rule pds.Rule
		switch op.Kind {
		case routing.OpSwap:
			if lt.Kind(op.Label) != lt.Kind(t) {
				continue // swap must preserve the label kind (validity)
			}
			rule = pds.Rule{Kind: pds.SwapRule, Sym1: LabelSymOf(op.Label)}
			next = st.afterSwap(t, op.Label, lt)
		case routing.OpPush:
			if !labels.ValidOnTopOf(lt, op.Label, t) {
				continue
			}
			rule = pds.Rule{Kind: pds.PushRule, Sym1: LabelSymOf(op.Label), Sym2: LabelSymOf(t)}
			next = st.afterPush(t, op.Label, lt)
		case routing.OpPop:
			if kk := lt.Kind(t); kk != labels.MPLS && kk != labels.BottomMPLS {
				continue
			}
			rule = pds.Rule{Kind: pds.PopRule}
			next = st.afterPop(t, lt)
		}
		dst := to
		if len(rest) > 0 {
			dst = b.PDS.AddState()
		}
		rule.FromState = cur
		rule.FromSym = LabelSymOf(t)
		rule.ToState = dst
		rule.Weight = w
		rule.Tag = tag
		b.addRule(rule)
		emitted := true
		if len(rest) > 0 {
			emitted = b.emitOps(dst, next, rest, to, -1, nil)
		}
		any = any || emitted
	}
	return any
}

// candidates returns the concrete labels the symbolic top may be.
func (b *builder) candidates(st symStack) []labels.ID {
	if len(st.known) > 0 {
		return st.known[:1]
	}
	var out []labels.ID
	lt := b.Net.Labels
	for _, l := range lt.All() {
		if kindBit(l.Kind)&st.tail != 0 {
			out = append(out, l.ID)
		}
	}
	return out
}

func (st symStack) afterSwap(t, l labels.ID, lt *labels.Table) symStack {
	if len(st.known) > 0 {
		known := append([]labels.ID{l}, st.known[1:]...)
		return symStack{known: known, tail: st.tail}
	}
	return symStack{known: []labels.ID{l}, tail: belowKinds(lt.Kind(t))}
}

func (st symStack) afterPush(t, l labels.ID, lt *labels.Table) symStack {
	if len(st.known) > 0 {
		known := append([]labels.ID{l}, st.known...)
		return symStack{known: known, tail: st.tail}
	}
	return symStack{known: []labels.ID{l, t}, tail: belowKinds(lt.Kind(t))}
}

func (st symStack) afterPop(t labels.ID, lt *labels.Table) symStack {
	if len(st.known) > 0 {
		return symStack{known: st.known[1:], tail: st.tail}
	}
	return symStack{known: nil, tail: belowKinds(lt.Kind(t))}
}

// addRule appends a rule unless an identical one exists; reports whether it
// was added.
func (b *builder) addRule(r pds.Rule) bool {
	key := ruleKey{r.FromState, r.FromSym, r.ToState, r.Kind, r.Sym1, r.Sym2, r.Tag}
	if b.dedup[key] {
		return false
	}
	b.dedup[key] = true
	b.PDS.AddRule(r)
	return true
}

// buildFinal computes the final control states and the final stack
// specification Lang(c)·⊥.
func (b *builder) buildFinal() {
	L := b.Net.Labels.Len()
	post := b.Query.PostNFA
	spec := nfa.New(L + 1)
	// Map PostNFA states into spec (state 0 of post maps to spec start).
	m := make([]nfa.State, post.NumStates())
	for i := 0; i < post.NumStates(); i++ {
		if i == post.Start() {
			m[i] = spec.Start()
		} else {
			m[i] = spec.AddState()
		}
	}
	final := spec.AddState()
	spec.SetAccept(final, true)
	botSet := nfa.SetOf(L+1, nfa.Sym(b.Bot))
	for i := 0; i < post.NumStates(); i++ {
		for _, arc := range post.Arcs(i) {
			spec.AddArc(m[i], liftSet(arc.Set, L+1), m[arc.To])
		}
		if post.Accepting(i) {
			spec.AddArc(m[i], botSet, final)
		}
	}
	b.FinalSpec = spec

	for e := 0; e < b.Net.Topo.NumLinks(); e++ {
		for qb := 0; qb < b.numB; qb++ {
			if !b.pathNFA.Accepting(qb) {
				continue
			}
			for f := 0; f < b.kBudget; f++ {
				b.FinalStates = append(b.FinalStates, b.stateOf(topology.LinkID(e), qb, f))
			}
		}
	}
}

// liftSet copies a symbol set into a larger universe.
func liftSet(s *nfa.Set, universe int) *nfa.Set {
	out := nfa.NewSet(universe)
	s.Each(func(x nfa.Sym) bool {
		out.Add(x)
		return true
	})
	return out
}

// InitAuto builds the initial P-automaton: it accepts ⟨(e₁,q₁,0), h·⊥⟩ for
// every link e₁ with δ_B(q₀,e₁) ∋ q₁ and every h ∈ Lang(a). In weighted
// mode the first-symbol edges carry the first link's step weight (Links,
// Hops and Distance count the entry link; Failures and Tunnels are defined
// over consecutive pairs and contribute nothing).
func (s *System) InitAuto() *pds.Auto {
	a := pds.NewAuto(s.PDS)
	pre := s.Query.PreNFA
	L := s.Net.Labels.Len()
	m := make([]pds.State, pre.NumStates())
	for i := range m {
		m[i] = a.AddState()
	}
	botAccept := a.AddState()
	a.SetAccept(botAccept, true)
	// Interior and accepting structure of Lang(a).
	for i := 0; i < pre.NumStates(); i++ {
		for _, arc := range pre.Arcs(i) {
			a.AddSetEdge(m[i], liftSet(arc.Set, L+1), m[arc.To], nil)
		}
		if pre.Accepting(i) {
			a.AddEdge(m[i], s.Bot, botAccept)
		}
	}
	// Entry edges from control states.
	bStart := s.Query.PathNFA.Start()
	for e := 0; e < s.Net.Topo.NumLinks(); e++ {
		var w []uint64
		if s.Opts.Spec != nil {
			atoms := weight.StepAtoms(s.Net.Topo, topology.LinkID(e), s.Opts.Dist, 0, 0)
			w = s.Opts.Spec.Eval(atoms)
		}
		var q1s []int
		for _, arc := range s.Query.PathNFA.Arcs(bStart) {
			if arc.Set.Has(nfa.Sym(e)) {
				q1s = append(q1s, arc.To)
			}
		}
		for _, q1 := range q1s {
			ctl := s.stateOf(topology.LinkID(e), q1, 0)
			for _, arc := range pre.Arcs(pre.Start()) {
				a.AddSetEdge(ctl, liftSet(arc.Set, L+1), m[arc.To], w)
			}
		}
	}
	return a
}
