package translate_test

import (
	"fmt"
	"strings"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/translate"
)

// The slice contract: a sliced build emits a subset of the unsliced rules,
// and saturating both yields the same automaton — pruned rules never fire.
// These tests check the contract over the running example and generated
// networks at several failure bounds, plus the stats bookkeeping and the
// incremental-build fallback.

// satDump renders the saturated automaton of a system up to the canonical
// state renaming: base control states keep their index (identical across
// builds — slicing never changes the base encoding), chain states are
// ranked by index order among chain states that acquired edges (pruned
// chains never fire, so the fired chains' relative order is preserved),
// and post-PDS states (initial-automaton tail, saturation mid states) are
// numbered relative to PDS.NumStates. Two builds with equal dumps saturate
// to isomorphic automata with identical edge order — everything a verdict,
// witness or weight can observe.
func satDump(t *testing.T, sys *translate.System) string {
	t.Helper()
	init := sys.InitAuto()
	init.NormalizeWeights(sys.Dim)
	res, err := pds.PoststarOpts(sys.PDS, init, pds.SatOptions{Dim: sys.Dim})
	if err != nil {
		t.Fatal(err)
	}
	canon := make(map[pds.State]string)
	rank := 0
	name := func(s pds.State) string {
		if _, _, _, ok := sys.DecodeState(s); ok {
			return fmt.Sprintf("b%d", s)
		}
		if int(s) >= sys.PDS.NumStates {
			return fmt.Sprintf("x%d", int(s)-sys.PDS.NumStates)
		}
		if n, ok := canon[s]; ok {
			return n
		}
		n := fmt.Sprintf("c%d", rank)
		rank++
		canon[s] = n
		return n
	}
	var b strings.Builder
	for s := 0; s < res.Auto.NumStates(); s++ {
		out := res.Auto.Out(pds.State(s))
		acc := res.Auto.Accepting(pds.State(s))
		if len(out) == 0 && !acc {
			continue // dead state; pruned chains differ here by construction
		}
		fmt.Fprintf(&b, "%s accept=%v\n", name(pds.State(s)), acc)
		for i, e := range out {
			fmt.Fprintf(&b, "  e%d sym=%d to=%s w=%v\n", i, e.Sym, name(e.To), e.Weight)
		}
	}
	return b.String()
}

func sliceNets(t *testing.T) map[string]*gen.Synth {
	t.Helper()
	return map[string]*gen.Synth{
		"running-example": {Net: gen.RunningExample().Network},
		"zoo":             gen.Zoo(gen.ZooOpts{Routers: 16, Seed: 3, Protection: true}),
	}
}

func TestSliceByteIdenticalSaturation(t *testing.T) {
	for name, s := range sliceNets(t) {
		t.Run(name, func(t *testing.T) {
			var texts []string
			if name == "running-example" {
				texts = []string{
					"<ip> [.#v0] .* [v3#.] <ip> 0",
					"<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
					"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
				}
			} else {
				for _, q := range s.Queries(4, 5) {
					texts = append(texts, q.Text)
				}
			}
			for _, text := range texts {
				q, err := query.Parse(text, s.Net)
				if err != nil {
					t.Fatalf("%q: %v", text, err)
				}
				for _, mode := range []translate.Mode{translate.Over, translate.Under} {
					plain := translate.Build(s.Net, q, translate.Options{Mode: mode})
					sliced := translate.Build(s.Net, q, translate.Options{Mode: mode, Slice: true})
					if !sliced.SliceStats.Active {
						t.Fatalf("%q mode=%d: slice not active", text, mode)
					}
					if got, want := len(sliced.PDS.Rules), len(plain.PDS.Rules); got > want {
						t.Fatalf("%q mode=%d: sliced build has MORE rules (%d > %d)", text, mode, got, want)
					}
					if want, got := satDump(t, plain), satDump(t, sliced); got != want {
						t.Fatalf("%q mode=%d: sliced saturation diverges from unsliced", text, mode)
					}
				}
			}
		})
	}
}

// TestSliceEffectiveness checks the point of the exercise: on an operator-
// scale network, an endpoint-anchored query must actually shed rules and
// routing keys, not just recompute the full system.
func TestSliceEffectiveness(t *testing.T) {
	s := gen.Nordunet(gen.NordOpts{Services: 2, EdgeRouters: 10, Seed: 1})
	var shrunk bool
	for _, tq := range s.Table1Queries()[:3] {
		q, err := query.Parse(tq.Text, s.Net)
		if err != nil {
			t.Fatalf("%q: %v", tq.Text, err)
		}
		plain := translate.Build(s.Net, q, translate.Options{Mode: translate.Over, NoReductions: true})
		sliced := translate.Build(s.Net, q, translate.Options{Mode: translate.Over, NoReductions: true, Slice: true})
		st := sliced.SliceStats
		t.Logf("%.60s: rules %d -> %d, routers %d/%d kept, keys %d/%d kept",
			tq.Text, len(plain.PDS.Rules), len(sliced.PDS.Rules),
			st.RoutersKept, st.RoutersKept+st.RoutersDropped,
			st.KeysKept, st.KeysKept+st.KeysDropped)
		if len(sliced.PDS.Rules) < len(plain.PDS.Rules) {
			shrunk = true
		}
	}
	if !shrunk {
		t.Fatal("slicing shed no rules on any anchored nordunet query")
	}
}

func TestSliceStatsConsistent(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("<ip> [.#v0] .* [v3#.] <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	sys := translate.Build(re.Network, q, translate.Options{Slice: true})
	st := sys.SliceStats
	if !st.Active {
		t.Fatal("slice stats inactive on a sliced build")
	}
	nr := re.Network.Topo.NumRouters()
	if st.RoutersKept+st.RoutersDropped != nr {
		t.Fatalf("router counts %d+%d != %d", st.RoutersKept, st.RoutersDropped, nr)
	}
	nl := re.Network.Topo.NumLinks()
	if st.LinksKept+st.LinksDropped != nl {
		t.Fatalf("link counts %d+%d != %d", st.LinksKept, st.LinksDropped, nl)
	}
	if st.RoutersKept <= 0 || st.LinksKept <= 0 {
		t.Fatalf("degenerate slice for a satisfiable query: %+v", st)
	}
	if st.CoreRouters > st.RoutersKept || st.CoreLinks > st.LinksKept {
		t.Fatalf("core exceeds forward closure: %+v", st)
	}
	if st.KeysKept+st.KeysDropped == 0 {
		t.Fatalf("no routing keys counted: %+v", st)
	}
}

// TestSliceCacheKeyed checks that a Cache keeps sliced and unsliced
// systems in separate entries rather than conflating them.
func TestSliceCacheKeyed(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("<ip> [.#v0] .* [v3#.] <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	c := translate.NewCache(re.Network)
	sliced, _ := c.Get(q, translate.Options{Slice: true})
	plain, _ := c.Get(q, translate.Options{})
	if sliced == plain {
		t.Fatal("cache conflated sliced and unsliced builds")
	}
	if !sliced.SliceStats.Active || plain.SliceStats.Active {
		t.Fatalf("slice stats mixed up: sliced.Active=%v plain.Active=%v",
			sliced.SliceStats.Active, plain.SliceStats.Active)
	}
	if c.Stats().Entries != 2 {
		t.Fatalf("want 2 cache entries, got %d", c.Stats().Entries)
	}
}

// TestSessionCacheIgnoresSlice pins the incremental fallback rule: a
// SessionCache serves scenario overlays through per-key block reuse, whose
// cached blocks must stay valid across overlays — so it always builds the
// full network, even when asked to slice.
func TestSessionCacheIgnoresSlice(t *testing.T) {
	re := gen.RunningExample()
	q, err := query.Parse("<ip> [.#v0] .* [v3#.] <ip> 0", re.Network)
	if err != nil {
		t.Fatal(err)
	}
	sc := translate.NewSessionCache(re.Network)
	sys, _ := sc.Get(q, translate.Options{Slice: true})
	if sys.SliceStats.Active {
		t.Fatal("session cache produced a sliced build")
	}
	plain := translate.Build(re.Network, q, translate.Options{})
	if len(sys.PDS.Rules) != len(plain.PDS.Rules) {
		t.Fatalf("session build rule count %d != full build %d",
			len(sys.PDS.Rules), len(plain.PDS.Rules))
	}
}
