package translate

import (
	"fmt"
	"sync"
	"sync/atomic"

	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/weight"
)

// Cache memoizes translated systems for one network so that many
// verification runs (typically a batch sweep) build each pushdown system
// once and share it read-only. A built System is immutable — Build freezes
// the PDS rule indexes — and the cached pristine initial automaton is
// handed out as a Clone per run, so concurrent saturations never touch
// shared mutable state.
//
// Entries are keyed by (compiled query, direction, weight spec, reduction
// flag). The compiled query is keyed by pointer identity: callers that want
// textual deduplication (the batch runner does) parse each distinct query
// text once and reuse the *query.Query. The failure bound k is part of the
// compiled query, so it needs no separate key component. Options with a
// Dist function are not keyable (functions have no identity); Get then
// builds fresh without caching.
type Cache struct {
	net    *network.Network
	misses atomic.Int64
	gets   atomic.Int64

	// Process-wide counters labeled by network name, so /metrics separates
	// cache effectiveness per registered network.
	obsGets, obsHits, obsMisses *obs.Counter
	obsEntries                  *obs.Gauge

	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

type cacheKey struct {
	q            *query.Query
	mode         Mode
	spec         string // rendering of the weight spec; "" = unweighted
	noReductions bool
	sliced       bool
}

type cacheEntry struct {
	once sync.Once
	sys  *System
	init *pds.Auto // pristine, weight-normalised; cloned per run
}

// NewCache returns an empty cache bound to the network.
func NewCache(net *network.Network) *Cache {
	label := `{network="` + obs.SanitizeLabel(net.Name) + `"}`
	return &Cache{
		net:        net,
		entries:    make(map[cacheKey]*cacheEntry),
		obsGets:    obs.GetCounter("translate_cache_gets_total" + label),
		obsHits:    obs.GetCounter("translate_cache_hits_total" + label),
		obsMisses:  obs.GetCounter("translate_cache_misses_total" + label),
		obsEntries: obs.GetGauge("translate_cache_entries" + label),
	}
}

// Net returns the network the cache is bound to.
func (c *Cache) Net() *network.Network { return c.net }

// Get returns the translated system for (q, opts) and a fresh initial
// automaton for it, building and memoizing on first use. The returned
// System must be treated as read-only; the automaton is private to the
// caller. Concurrent callers with the same key block until the single
// build completes.
func (c *Cache) Get(q *query.Query, opts Options) (*System, *pds.Auto) {
	c.gets.Add(1)
	c.obsGets.Inc()
	if opts.Dist != nil {
		c.misses.Add(1)
		c.obsMisses.Inc()
		sys := Build(c.net, q, opts)
		return sys, sys.InitAuto()
	}
	key := cacheKey{q: q, mode: opts.Mode, spec: specString(opts.Spec), noReductions: opts.NoReductions, sliced: opts.Slice}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
		c.obsEntries.Set(int64(len(c.entries)))
	}
	c.mu.Unlock()
	built := false
	e.once.Do(func() {
		built = true
		c.misses.Add(1)
		c.obsMisses.Inc()
		e.sys = Build(c.net, q, opts)
		e.init = e.sys.InitAuto()
		// Pre-normalise weights so saturating a clone never rewrites a
		// witness record shared with the pristine automaton.
		e.init.NormalizeWeights(e.sys.Dim)
	})
	if !built {
		// A hit is a get served from an existing entry — including one that
		// blocked on another goroutine's in-flight build.
		c.obsHits.Inc()
	}
	return e.sys, e.init.Clone()
}

// CacheStats summarises cache effectiveness. Hits = Gets - Misses; a get
// that blocked on another goroutine's in-flight build counts as a hit.
type CacheStats struct {
	Entries int
	Gets    int64
	Misses  int64
	Hits    int64
}

// HitRate returns Hits/Gets, or 0 before the first get.
func (s CacheStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	gets, misses := c.gets.Load(), c.misses.Load()
	return CacheStats{Entries: n, Gets: gets, Misses: misses, Hits: gets - misses}
}

func specString(s weight.Spec) string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%v", s)
}
