package translate

import (
	"aalwines/internal/network"
	"aalwines/internal/nfa"
	"aalwines/internal/obs"
	"aalwines/internal/query"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// Query-scoped network slicing.
//
// A query anchored at concrete endpoints can only ever drive the packet
// through a fraction of a large network, yet the translator emits rules
// for every routing-table key. The slice computed here restricts emission
// to the keys a saturation can actually reach: pairs (link, path-NFA
// state) reachable in the product of the routing adjacency (In-link → the
// Out links of its entries, across every priority group whose failure
// prefix fits the query's budget k) with the query's path NFA, starting
// from exactly the (link, state) pairs the initial P-automaton seeds.
//
// Emission is gated by the FORWARD closure only. The forward closure
// over-approximates every control state that can acquire an outgoing
// transition during post* (induction: initial entry edges seed exactly
// the forward seeds, and a fired rule's targets are forward successors of
// its head), so a rule whose head pair is outside it never fires — and
// removing never-firing rules leaves the saturated automaton, the witness
// records, the early-accept stopping point and hence the verification
// result byte-identical to the unsliced run. The backward closure (pairs
// that can still reach an accepting pair) is also computed and reported:
// intersecting it would shrink the system further, but rules outside it
// still fire, and dropping them changes worklist pop order, early-accept
// timing and the Dijkstra tie-breaks of FindAccepting — it preserves
// verdicts, not witnesses. The byte-identity contract is the stronger
// guarantee the engine's differential harness checks, so the backward
// direction stays observational; see DESIGN.md §11 for the full argument
// and the fallback rule.
type Slice struct {
	numB int
	fwd  []bool // forward-live (link, path-NFA state) pairs
	link []bool // link has some forward-live pair

	Stats SliceStats
}

// SliceStats reports what a computed slice keeps and drops. Routers and
// links are counted by the forward closure that actually gates emission;
// CoreRouters/CoreLinks additionally intersect the backward closure — the
// lower bound a verdict-only slice could reach.
type SliceStats struct {
	Active         bool
	RoutersKept    int
	RoutersDropped int
	LinksKept      int
	LinksDropped   int
	CoreRouters    int
	CoreLinks      int
	// KeysKept/KeysDropped count routing-table keys at emission time; they
	// are filled by the builder, not ComputeSlice.
	KeysKept    int
	KeysDropped int
}

var (
	sliceRoutersKept    = obs.GetCounter("translate_slice_routers_kept_total")
	sliceRoutersDropped = obs.GetCounter("translate_slice_routers_dropped_total")
)

// Live reports whether rules headed at (link e, path-NFA state qb) can
// ever fire.
func (s *Slice) Live(e topology.LinkID, qb int) bool {
	return s.fwd[int(e)*s.numB+qb]
}

// LiveLink reports whether any path-NFA state is live on link e; a dead
// link's routing keys are skipped wholesale.
func (s *Slice) LiveLink(e topology.LinkID) bool {
	return s.link[e]
}

// ComputeSlice computes the query's network slice. The cost is one pass
// over the routing table plus a BFS over (links × path-NFA states) pairs —
// negligible next to rule emission, which it then shrinks.
func ComputeSlice(net *network.Network, q *query.Query) *Slice {
	pathNFA := q.PathNFA
	numB := pathNFA.NumStates()
	nl := net.Topo.NumLinks()
	s := &Slice{
		numB: numB,
		fwd:  make([]bool, nl*numB),
		link: make([]bool, nl),
	}

	// Routing adjacency: out links per in link, across every entry of every
	// priority group within the failure budget (the same prefix cutoff
	// buildKey applies, so the adjacency covers exactly the emitted rules).
	k := q.MaxFailures
	outs := make([][]topology.LinkID, nl)
	seen := make([]int, nl) // per-out-link dedup stamp, generation = in-link+1
	net.Routing.Range(func(key routing.Key, gs routing.Groups) bool {
		gen := int(key.In) + 1
		for j := range gs {
			if len(gs.PrefixLinks(j)) > k {
				break // prefixes only grow with j
			}
			for _, entry := range gs[j].Entries {
				if seen[entry.Out] != gen {
					seen[entry.Out] = gen
					outs[key.In] = append(outs[key.In], entry.Out)
				}
			}
		}
		return true
	})

	// Forward closure from the pairs the initial automaton seeds: link e
	// with δ_B(q₀, e) ∋ q₁.
	type pair struct {
		e  topology.LinkID
		qb int
	}
	var stack []pair
	visit := func(e topology.LinkID, qb int) {
		if i := int(e)*numB + qb; !s.fwd[i] {
			s.fwd[i] = true
			stack = append(stack, pair{e, qb})
		}
	}
	for _, arc := range pathNFA.Arcs(pathNFA.Start()) {
		for e := 0; e < nl; e++ {
			if arc.Set.Has(nfa.Sym(e)) {
				visit(topology.LinkID(e), arc.To)
			}
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, o := range outs[p.e] {
			for _, arc := range pathNFA.Arcs(p.qb) {
				if arc.Set.Has(nfa.Sym(o)) {
					visit(o, arc.To)
				}
			}
		}
	}

	// Backward closure from the accepting pairs, over the reversed product
	// edges (observational; see the type comment).
	ins := make([][]topology.LinkID, nl)
	for e := range outs {
		for _, o := range outs[e] {
			ins[o] = append(ins[o], topology.LinkID(e))
		}
	}
	bwd := make([]bool, nl*numB)
	var bstack []pair
	bvisit := func(e topology.LinkID, qb int) {
		if i := int(e)*numB + qb; !bwd[i] {
			bwd[i] = true
			bstack = append(bstack, pair{e, qb})
		}
	}
	for qb := 0; qb < numB; qb++ {
		if !pathNFA.Accepting(qb) {
			continue
		}
		for e := 0; e < nl; e++ {
			bvisit(topology.LinkID(e), qb)
		}
	}
	for len(bstack) > 0 {
		p := bstack[len(bstack)-1]
		bstack = bstack[:len(bstack)-1]
		// Predecessors: (e, qb) with p.e ∈ outs[e] and an arc qb → p.qb
		// admitting p.e.
		for _, e := range ins[p.e] {
			for qb := 0; qb < numB; qb++ {
				if bwd[int(e)*numB+qb] {
					continue
				}
				for _, arc := range pathNFA.Arcs(qb) {
					if arc.To == p.qb && arc.Set.Has(nfa.Sym(p.e)) {
						bvisit(e, qb)
						break
					}
				}
			}
		}
	}

	// Per-link rollups and router stats. A router is kept when some live
	// in-link targets it — its routing keys get emitted.
	core := make([]bool, nl)
	for e := 0; e < nl; e++ {
		for qb := 0; qb < numB; qb++ {
			if s.fwd[int(e)*numB+qb] {
				s.link[e] = true
				if bwd[int(e)*numB+qb] {
					core[e] = true
				}
			}
		}
	}
	nr := net.Topo.NumRouters()
	kept := make([]bool, nr)
	coreR := make([]bool, nr)
	for e := 0; e < nl; e++ {
		if s.link[e] {
			s.Stats.LinksKept++
			kept[net.Topo.Target(topology.LinkID(e))] = true
		} else {
			s.Stats.LinksDropped++
		}
		if core[e] {
			s.Stats.CoreLinks++
			coreR[net.Topo.Target(topology.LinkID(e))] = true
		}
	}
	for r := 0; r < nr; r++ {
		if kept[r] {
			s.Stats.RoutersKept++
		} else {
			s.Stats.RoutersDropped++
		}
		if coreR[r] {
			s.Stats.CoreRouters++
		}
	}
	s.Stats.Active = true
	sliceRoutersKept.Add(int64(s.Stats.RoutersKept))
	sliceRoutersDropped.Add(int64(s.Stats.RoutersDropped))
	return s
}
