package translate

import (
	"sync"
	"sync/atomic"

	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/routing"
)

// Getter abstracts a translation cache for the engine: anything that can
// hand out a (shared, read-only) System plus a private initial automaton
// for a compiled query. Cache implements it for immutable networks,
// SessionCache for scenario overlays.
type Getter interface {
	// Net returns the network the cache currently serves; the engine only
	// consults the cache when this pointer matches the verified network.
	Net() *network.Network
	// Get returns the translated system and a fresh initial automaton.
	Get(q *query.Query, opts Options) (*System, *pds.Auto)
	// Stats reports cache effectiveness counters.
	Stats() CacheStats
}

var (
	_ Getter = (*Cache)(nil)
	_ Getter = (*SessionCache)(nil)
)

// ruleBlock is the relocatable form of the rules one routing-table key
// emits: chain states are stored relative to the block's first allocation
// (encoded as baseCnt+offset, which cannot collide with base control
// states), tags relative to the block's first Steps entry. Splicing a
// block into a new build reproduces exactly the rules, state ids and step
// tags a from-scratch build would emit for that key — provided the key's
// routing content is unchanged, which the caller guarantees via the
// version it looked the block up under.
type ruleBlock struct {
	rules     []pds.Rule
	steps     []StepInfo
	numStates int // chain states the block allocates
}

// BlockStore caches rule blocks for one (query, translate options) pair
// across incremental rebuilds of a mutating network. Blocks are keyed by
// (routing key, content version); versions that fall out of the retention
// window are evicted FIFO, so undoing a recent delta still hits.
type BlockStore struct {
	blocks map[routing.Key]*keyBlocks
}

// keyVersions bounds how many content versions of one routing key a store
// retains. Scenario sessions bounce between a handful of delta stacks
// (apply, inspect, undo); retaining a few versions makes undo free without
// letting an adversarial delta churn grow the store without bound.
const keyVersions = 8

type keyBlocks struct {
	vers []uint64
	blks []*ruleBlock
}

// NewBlockStore returns an empty store.
func NewBlockStore() *BlockStore {
	return &BlockStore{blocks: make(map[routing.Key]*keyBlocks)}
}

func (s *BlockStore) get(key routing.Key, ver uint64) *ruleBlock {
	kb := s.blocks[key]
	if kb == nil {
		return nil
	}
	for i, v := range kb.vers {
		if v == ver {
			return kb.blks[i]
		}
	}
	return nil
}

func (s *BlockStore) put(key routing.Key, ver uint64, blk *ruleBlock) {
	kb := s.blocks[key]
	if kb == nil {
		kb = &keyBlocks{}
		s.blocks[key] = kb
	}
	if len(kb.vers) >= keyVersions {
		kb.vers = append(kb.vers[:0], kb.vers[1:]...)
		kb.blks = append(kb.blks[:0], kb.blks[1:]...)
	}
	kb.vers = append(kb.vers, ver)
	kb.blks = append(kb.blks, blk)
}

// BuildStats reports how much of an incremental build was served from
// cached rule blocks.
type BuildStats struct {
	BlocksReused  int
	BlocksRebuilt int
}

// Total returns the number of rule blocks the build(s) touched.
func (st BuildStats) Total() int { return st.BlocksReused + st.BlocksRebuilt }

// ReuseRatio returns the fraction of touched blocks served from cache, in
// [0, 1]; 0 when nothing was built yet. Live-mode flush reports and the
// differential replay harness gate on it.
func (st BuildStats) ReuseRatio() float64 {
	if st.Total() == 0 {
		return 0
	}
	return float64(st.BlocksReused) / float64(st.Total())
}

// Sub returns the stats accumulated since an earlier snapshot — the
// per-flush delta of a session's cumulative BlockStats.
func (st BuildStats) Sub(prev BuildStats) BuildStats {
	return BuildStats{
		BlocksReused:  st.BlocksReused - prev.BlocksReused,
		BlocksRebuilt: st.BlocksRebuilt - prev.BlocksRebuilt,
	}
}

// BuildIncremental constructs the same System Build would, but partitioned
// by routing-table key: keys whose cached block (under version(key)) is
// present are spliced in without re-running rule emission, keys without
// one are emitted normally and recorded into the store. The assembled rule
// list, state numbering, step tags, reduction and final specification are
// byte-identical to a from-scratch Build of the same network — splicing
// rebases each block to the state/tag offsets the fresh build would have
// reached at that key.
func BuildIncremental(net *network.Network, q *query.Query, opts Options,
	store *BlockStore, version func(routing.Key) uint64) (*System, BuildStats) {
	b := &builder{
		System:  &System{Net: net, Query: q, Opts: opts},
		store:   store,
		version: version,
	}
	b.construct()
	return b.System, b.stats
}

// record emits one key's rules normally, then snapshots them in
// relocatable form.
func (b *builder) record(key routing.Key) *ruleBlock {
	r0 := len(b.PDS.Rules)
	s0 := b.PDS.NumStates
	t0 := len(b.Steps)
	b.buildKey(key)
	blk := &ruleBlock{
		numStates: b.PDS.NumStates - s0,
		steps:     append([]StepInfo(nil), b.Steps[t0:]...),
		rules:     make([]pds.Rule, 0, len(b.PDS.Rules)-r0),
	}
	for _, r := range b.PDS.Rules[r0:] {
		r.FromState = relocOut(r.FromState, s0, b.baseCnt)
		r.ToState = relocOut(r.ToState, s0, b.baseCnt)
		if r.Tag >= 0 {
			r.Tag -= int32(t0)
		}
		blk.rules = append(blk.rules, r)
	}
	return blk
}

// splice replays a recorded block at the current state/tag offsets.
func (b *builder) splice(blk *ruleBlock) {
	s0 := pds.State(b.PDS.NumStates)
	for i := 0; i < blk.numStates; i++ {
		b.PDS.AddState()
	}
	t0 := int32(len(b.Steps))
	for _, r := range blk.rules {
		r.FromState = relocIn(r.FromState, s0, b.baseCnt)
		r.ToState = relocIn(r.ToState, s0, b.baseCnt)
		if r.Tag >= 0 {
			r.Tag += t0
		}
		b.PDS.AddRule(r)
	}
	b.Steps = append(b.Steps, blk.steps...)
}

// relocOut turns an absolute state into block-relative form: base control
// states (< baseCnt) are position-independent and kept as-is, chain states
// are rebased to baseCnt+offset. Chain states referenced by a key's rules
// are always the key's own allocations, so st >= s0 holds.
func relocOut(st pds.State, s0, baseCnt int) pds.State {
	if int(st) < baseCnt {
		return st
	}
	return pds.State(baseCnt + (int(st) - s0))
}

// relocIn inverts relocOut at a new allocation offset.
func relocIn(st pds.State, s0 pds.State, baseCnt int) pds.State {
	if int(st) < baseCnt {
		return st
	}
	return s0 + (st - pds.State(baseCnt))
}

// Scenario-session metrics: overlay cache hits/misses count assembled
// systems served without/with a rebuild, block counters count per-key rule
// partitions reused from (or recorded into) the block store during
// rebuilds. Together they show how much translation work a delta really
// costs: a cheap delta rebuilds a handful of blocks and reuses the rest.
var (
	mOverlayHits    = obs.GetCounter("scenario_overlay_cache_hits_total")
	mOverlayMisses  = obs.GetCounter("scenario_overlay_cache_misses_total")
	mBlocksReused   = obs.GetCounter("scenario_rule_blocks_reused_total")
	mBlocksRebuilt  = obs.GetCounter("scenario_rule_blocks_rebuilt_total")
	mOverlayEntries = obs.GetGauge("scenario_overlay_cache_entries")
)

// SessionCache memoizes translated systems for a scenario session: a
// network that mutates in controlled steps (deltas) while keeping its
// topology and label table fixed. Entries are keyed like Cache's — by
// compiled query identity, direction, weight spec and reduction flag — but
// each entry additionally carries the delta fingerprint it was assembled
// under and a BlockStore of per-routing-key rule blocks. A Get under the
// same fingerprint is a pure hit; a Get after a delta reassembles the
// system via BuildIncremental, re-emitting only the keys whose content
// version changed (the session's per-router dirty tracking) and splicing
// every other block from the store.
//
// SetOverlay swaps the overlay network, fingerprint and version function
// after each mutation; the session serializes SetOverlay against Get, so
// a consistent (net, fp, version) triple is read under the lock.
type SessionCache struct {
	base *network.Network

	mu      sync.Mutex
	net     *network.Network // current overlay
	fp      uint64
	version func(routing.Key) uint64
	entries map[cacheKey]*sessionEntry

	gets, hits                  atomic.Int64
	blocksReused, blocksRebuilt atomic.Int64
}

type sessionEntry struct {
	mu    sync.Mutex
	store *BlockStore
	fp    uint64
	valid bool
	sys   *System
	init  *pds.Auto
}

// NewSessionCache returns a session cache whose overlay starts as the base
// network itself (fingerprint 0, every key at version 0).
func NewSessionCache(base *network.Network) *SessionCache {
	return &SessionCache{
		base:    base,
		net:     base,
		version: func(routing.Key) uint64 { return 0 },
		entries: make(map[cacheKey]*sessionEntry),
	}
}

// Net returns the current overlay network.
func (c *SessionCache) Net() *network.Network {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net
}

// SetOverlay installs a new overlay network with its delta fingerprint and
// per-key content version function. Assembled systems are invalidated
// lazily: each entry compares its fingerprint on the next Get.
func (c *SessionCache) SetOverlay(net *network.Network, fp uint64, version func(routing.Key) uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net = net
	c.fp = fp
	c.version = version
}

// Get returns the translated system for (q, opts) against the current
// overlay, assembling incrementally on fingerprint change. The returned
// System is read-only and shared; the automaton is private to the caller.
func (c *SessionCache) Get(q *query.Query, opts Options) (*System, *pds.Auto) {
	c.gets.Add(1)
	// Query-scoped slicing is incompatible with incremental assembly: a
	// cached per-key block must splice into any future overlay, but slice
	// liveness is a global property of the whole routing table, so a block
	// recorded under one slice could be wrong under the next overlay's.
	// Sessions therefore always build unsliced — the documented fallback
	// (DESIGN.md §11).
	opts.Slice = false
	c.mu.Lock()
	net, fp, version := c.net, c.fp, c.version
	if opts.Dist != nil {
		c.mu.Unlock()
		// Functions have no identity; build fresh without caching, like Cache.
		mOverlayMisses.Inc()
		sys := Build(net, q, opts)
		return sys, sys.InitAuto()
	}
	key := cacheKey{q: q, mode: opts.Mode, spec: specString(opts.Spec), noReductions: opts.NoReductions}
	e := c.entries[key]
	if e == nil {
		e = &sessionEntry{store: NewBlockStore()}
		c.entries[key] = e
		mOverlayEntries.Set(int64(len(c.entries)))
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.valid && e.fp == fp {
		c.hits.Add(1)
		mOverlayHits.Inc()
		return e.sys, e.init.Clone()
	}
	mOverlayMisses.Inc()
	sys, st := BuildIncremental(net, q, opts, e.store, version)
	c.blocksReused.Add(int64(st.BlocksReused))
	c.blocksRebuilt.Add(int64(st.BlocksRebuilt))
	mBlocksReused.Add(int64(st.BlocksReused))
	mBlocksRebuilt.Add(int64(st.BlocksRebuilt))
	e.sys = sys
	e.init = sys.InitAuto()
	// Pre-normalise weights so saturating a clone never rewrites a witness
	// record shared with the pristine automaton.
	e.init.NormalizeWeights(sys.Dim)
	e.fp = fp
	e.valid = true
	return e.sys, e.init.Clone()
}

// Stats reports assembled-system cache effectiveness (a miss is a Get that
// had to reassemble, even when most blocks were spliced from the store).
func (c *SessionCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	gets, hits := c.gets.Load(), c.hits.Load()
	return CacheStats{Entries: n, Gets: gets, Misses: gets - hits, Hits: hits}
}

// BlockStats reports cumulative rule-block reuse across all incremental
// assemblies of this cache.
func (c *SessionCache) BlockStats() BuildStats {
	return BuildStats{
		BlocksReused:  int(c.blocksReused.Load()),
		BlocksRebuilt: int(c.blocksRebuilt.Load()),
	}
}
