// Package weight implements the quantitative extension of §3 of the
// AalWiNes paper: atomic quantities of network traces (Links, Hops,
// Distance, Failures, Tunnels), linear expressions over them, priority
// vectors of expressions compared lexicographically, and the bounded
// idempotent semiring (lexicographic min-plus on vectors) that drives the
// weighted pushdown reachability of the verification engine.
package weight

import (
	"fmt"
	"strings"
)

// Quantity enumerates the atomic quantities of §3.
type Quantity uint8

const (
	// Links is the length n of the trace.
	Links Quantity = iota
	// Hops counts the traversed links that are not self-loops.
	Hops
	// Distance sums a per-link distance function d : E → ℕ (latency,
	// geographic distance, inverse capacity, ...).
	Distance
	// Failures sums, over the steps of the trace, the minimum number of
	// links that must have failed locally to enable each step.
	Failures
	// Tunnels sums the positive label-stack growth over the steps, i.e.
	// the number of tunnels opened along the trace.
	Tunnels
	// NumQuantities is the number of atomic quantities.
	NumQuantities
)

// String returns the paper's name of the quantity.
func (q Quantity) String() string {
	switch q {
	case Links:
		return "Links"
	case Hops:
		return "Hops"
	case Distance:
		return "Distance"
	case Failures:
		return "Failures"
	case Tunnels:
		return "Tunnels"
	default:
		return fmt.Sprintf("Quantity(%d)", uint8(q))
	}
}

// Atoms holds a value for every atomic quantity, either for a whole trace
// or as the contribution of a single step.
type Atoms [NumQuantities]uint64

// Term is a scaled atomic quantity a·p.
type Term struct {
	Coeff uint64
	Q     Quantity
}

// Expr is a linear expression: a sum of terms (the grammar
// expr ::= p | a*expr | expr+expr flattens to this normal form).
type Expr []Term

// Eval evaluates the expression on atomic quantity values.
func (e Expr) Eval(a Atoms) uint64 {
	var sum uint64
	for _, t := range e {
		sum += t.Coeff * a[t.Q]
	}
	return sum
}

// String renders the expression, e.g. "Failures + 3*Tunnels".
func (e Expr) String() string {
	if len(e) == 0 {
		return "0"
	}
	parts := make([]string, len(e))
	for i, t := range e {
		if t.Coeff == 1 {
			parts[i] = t.Q.String()
		} else {
			parts[i] = fmt.Sprintf("%d*%s", t.Coeff, t.Q)
		}
	}
	return strings.Join(parts, " + ")
}

// Spec is a priority vector of linear expressions (expr_1,...,expr_n):
// expr_1 dominates expr_2 and so on, compared lexicographically
// (Problem 2, the minimum witness problem).
type Spec []Expr

// String renders the spec, e.g. "(Hops, Failures + 3*Tunnels)".
func (s Spec) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Eval evaluates every expression of the spec on the atom values, yielding
// the weight vector of a trace.
func (s Spec) Eval(a Atoms) Vec {
	v := make(Vec, len(s))
	for i, e := range s {
		v[i] = e.Eval(a)
	}
	return v
}

// Uses reports whether any expression of the spec mentions q.
func (s Spec) Uses(q Quantity) bool {
	for _, e := range s {
		for _, t := range e {
			if t.Q == q && t.Coeff != 0 {
				return true
			}
		}
	}
	return false
}

// Vec is a weight vector compared lexicographically. The nil vector is the
// semiring zero ⊥ and denotes "no path"; it is worse than every proper
// vector.
type Vec []uint64

// IsZero reports whether v is the semiring zero (no path).
func (v Vec) IsZero() bool { return v == nil }

// Less reports strict lexicographic order between two proper vectors of
// equal length; the zero vector compares greater than everything.
func (v Vec) Less(o Vec) bool {
	if v == nil {
		return false
	}
	if o == nil {
		return true
	}
	for i := range v {
		if v[i] != o[i] {
			return v[i] < o[i]
		}
	}
	return false
}

// Equal reports component-wise equality (nil equals only nil).
func (v Vec) Equal(o Vec) bool {
	if (v == nil) != (o == nil) || len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the vector like "(5, 7)", or "⊥" for the zero.
func (v Vec) String() string {
	if v == nil {
		return "⊥"
	}
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Semiring is the lexicographic min-plus semiring over weight vectors of a
// fixed dimension: ⊕ is lexicographic minimum, ⊗ is component-wise
// addition, zero is the nil vector (no path) and one is the all-zeros
// vector. It is bounded and idempotent, so weighted pre*/post* saturation
// terminates (Reps et al. 2005).
type Semiring struct {
	// Dim is the vector dimension; One returns a vector of this length.
	Dim int
}

// Zero returns the semiring zero ⊥ (no path).
func (s Semiring) Zero() Vec { return nil }

// One returns the semiring one: the all-zeros vector.
func (s Semiring) One() Vec { return make(Vec, s.Dim) }

// Combine is ⊕: the lexicographically smaller vector.
func (s Semiring) Combine(a, b Vec) Vec {
	if a.Less(b) || b == nil {
		return a
	}
	return b
}

// Extend is ⊗: component-wise sum; zero annihilates.
func (s Semiring) Extend(a, b Vec) Vec {
	if a == nil || b == nil {
		return nil
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
