package weight

import (
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// DistanceFunc assigns a distance d(e) to every link, used by the Distance
// quantity. A nil DistanceFunc falls back to the link's Weight annotation.
type DistanceFunc func(topology.LinkID) uint64

// StepAtoms returns the contribution of a single forwarding step to each
// atomic quantity: traversing link e (after selecting priority group with
// mustFail links), arriving with a header that grew by growth labels.
//
// The atomic quantities of a trace are sums of per-step contributions (the
// paper defines them exactly this way), which is what makes them expressible
// as weights of pushdown rules.
func StepAtoms(g *topology.Graph, e topology.LinkID, dist DistanceFunc, numMustFail int, growth int) Atoms {
	var a Atoms
	a[Links] = 1
	if !g.Links[e].SelfLoop() {
		a[Hops] = 1
	}
	if dist != nil {
		a[Distance] = dist(e)
	} else {
		a[Distance] = g.Links[e].Weight
	}
	a[Failures] = uint64(numMustFail)
	if growth > 0 {
		a[Tunnels] = uint64(growth)
	}
	return a
}

// EvalTrace computes the atomic quantities of a trace per §3:
//
//	Links    — number of steps,
//	Hops     — steps over non-self-loop links,
//	Distance — Σ d(e_i),
//	Failures — Σ |failed(i)| where failed(i) is the minimal local failed
//	           set enabling step i→i+1 (lowest matching priority group),
//	Tunnels  — Σ max(0, |h_{i+1}|−|h_i|).
//
// The first step of a trace contributes to Links, Hops and Distance (the
// packet enters on e_1); Failures and Tunnels are defined over consecutive
// pairs.
func EvalTrace(n *network.Network, tr network.Trace, dist DistanceFunc) Atoms {
	var total Atoms
	g := n.Topo
	for i, s := range tr {
		total[Links]++
		if !g.Links[s.Link].SelfLoop() {
			total[Hops]++
		}
		if dist != nil {
			total[Distance] += dist(s.Link)
		} else {
			total[Distance] += g.Links[s.Link].Weight
		}
		if i+1 < len(tr) {
			next := tr[i+1]
			if d := len(next.Header) - len(s.Header); d > 0 {
				total[Tunnels] += uint64(d)
			}
			total[Failures] += uint64(minFailuresForStep(n, s, next))
		}
	}
	return total
}

// minFailuresForStep returns |failed(i)| for the step from s to next: the
// size of the smallest prefix-failure set over the priority groups that
// justify the transition. Unjustifiable steps contribute 0 (the trace is
// then invalid anyway; validity is checked elsewhere).
func minFailuresForStep(n *network.Network, s, next network.Step) int {
	gs := n.Routing.Lookup(s.Link, s.Header.Top())
	best := -1
	for j := range gs {
		for _, e := range gs[j].Entries {
			if e.Out != next.Link {
				continue
			}
			nh, err := routing.Rewrite(n.Labels, s.Header, e.Ops)
			if err != nil || !nh.Equal(next.Header) {
				continue
			}
			sz := len(gs.PrefixLinks(j))
			if best == -1 || sz < best {
				best = sz
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
