package weight

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a minimisation vector such as
//
//	"Hops, Failures + 3*Tunnels"
//
// into a Spec. The grammar per expression is sums of optionally scaled
// atomic quantity names: expr := term ('+' term)*, term := [NUM '*'] NAME.
// Quantity names are case-insensitive; "latency" is accepted as an alias
// for Distance.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	// Allow the paper's "(a, b)" tuple syntax.
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	var spec Spec
	for _, part := range strings.Split(s, ",") {
		e, err := parseExpr(part)
		if err != nil {
			return nil, err
		}
		spec = append(spec, e)
	}
	return spec, nil
}

func parseExpr(s string) (Expr, error) {
	var e Expr
	for _, term := range strings.Split(s, "+") {
		term = strings.TrimSpace(term)
		if term == "" {
			return nil, fmt.Errorf("weight: empty term in %q", s)
		}
		coeff := uint64(1)
		name := term
		if i := strings.IndexByte(term, '*'); i >= 0 {
			c, err := strconv.ParseUint(strings.TrimSpace(term[:i]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("weight: bad coefficient in %q: %v", term, err)
			}
			coeff = c
			name = strings.TrimSpace(term[i+1:])
		}
		q, err := parseQuantity(name)
		if err != nil {
			return nil, err
		}
		e = append(e, Term{Coeff: coeff, Q: q})
	}
	return e, nil
}

func parseQuantity(name string) (Quantity, error) {
	switch strings.ToLower(name) {
	case "links":
		return Links, nil
	case "hops":
		return Hops, nil
	case "distance", "latency":
		return Distance, nil
	case "failures":
		return Failures, nil
	case "tunnels":
		return Tunnels, nil
	default:
		return 0, fmt.Errorf("weight: unknown quantity %q", name)
	}
}
