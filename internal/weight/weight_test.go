package weight_test

import (
	"testing"
	"testing/quick"

	"aalwines/internal/gen"
	"aalwines/internal/topology"
	"aalwines/internal/weight"
)

// TestPaperAtomValues checks the quantities reported in §3 for the running
// example traces: Hops(σ0)=Links(σ0)=4, Hops(σ3)=Links(σ3)=5,
// Failures(σ2)=1, Failures(σ3)=0, Tunnels(σ1)=1, Tunnels(σ2)=2,
// Tunnels(σ3)=0.
func TestPaperAtomValues(t *testing.T) {
	re := gen.RunningExample()
	cases := []struct {
		sigma             int
		links, hops       uint64
		failures, tunnels uint64
	}{
		{0, 4, 4, 0, 1}, // σ0 pushes s20 at v0: one tunnel
		{1, 4, 4, 0, 1},
		{2, 5, 5, 1, 2},
		{3, 5, 5, 0, 0},
	}
	for _, c := range cases {
		a := weight.EvalTrace(re.Network, re.Sigma(c.sigma), nil)
		if a[weight.Links] != c.links {
			t.Errorf("Links(σ%d) = %d, want %d", c.sigma, a[weight.Links], c.links)
		}
		if a[weight.Hops] != c.hops {
			t.Errorf("Hops(σ%d) = %d, want %d", c.sigma, a[weight.Hops], c.hops)
		}
		if a[weight.Failures] != c.failures {
			t.Errorf("Failures(σ%d) = %d, want %d", c.sigma, a[weight.Failures], c.failures)
		}
		if a[weight.Tunnels] != c.tunnels {
			t.Errorf("Tunnels(σ%d) = %d, want %d", c.sigma, a[weight.Tunnels], c.tunnels)
		}
	}
}

// TestPaperMinimumWitness reproduces the §3 computation: on the vector
// (Hops, Failures + 3*Tunnels), σ2 evaluates to (5,7) and σ3 to (5,0), and
// (5,0) ⊑ (5,7).
func TestPaperMinimumWitness(t *testing.T) {
	re := gen.RunningExample()
	spec, err := weight.ParseSpec("Hops, Failures + 3*Tunnels")
	if err != nil {
		t.Fatal(err)
	}
	v2 := spec.Eval(weight.EvalTrace(re.Network, re.Sigma(2), nil))
	v3 := spec.Eval(weight.EvalTrace(re.Network, re.Sigma(3), nil))
	if !v2.Equal(weight.Vec{5, 7}) {
		t.Errorf("σ2 weight = %v, want (5, 7)", v2)
	}
	if !v3.Equal(weight.Vec{5, 0}) {
		t.Errorf("σ3 weight = %v, want (5, 0)", v3)
	}
	if !v3.Less(v2) {
		t.Error("(5,0) not ⊑ (5,7)")
	}
}

func TestDistanceQuantity(t *testing.T) {
	re := gen.RunningExample()
	// All links have weight 1, so Distance == Links with the default dist.
	a := weight.EvalTrace(re.Network, re.Sigma(0), nil)
	if a[weight.Distance] != a[weight.Links] {
		t.Errorf("Distance = %d, Links = %d; want equal for unit weights",
			a[weight.Distance], a[weight.Links])
	}
}

func TestCustomDistanceFunc(t *testing.T) {
	re := gen.RunningExample()
	a := weight.EvalTrace(re.Network, re.Sigma(0), func(topology.LinkID) uint64 { return 10 })
	if a[weight.Distance] != 40 {
		t.Errorf("Distance with d≡10 over 4 links = %d, want 40", a[weight.Distance])
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"Hops", "(Hops)", false},
		{"Hops, Failures + 3*Tunnels", "(Hops, Failures + 3*Tunnels)", false},
		{"(links, 2*distance)", "(Links, 2*Distance)", false},
		{"latency", "(Distance)", false},
		{"", "()", false},
		{"bogus", "", true},
		{"3*", "", true},
		{"x*Hops", "", true},
		{"Hops + ", "", true},
	}
	for _, c := range cases {
		spec, err := weight.ParseSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if c.in == "" {
			if spec != nil {
				t.Errorf("ParseSpec empty = %v, want nil", spec)
			}
			continue
		}
		if got := spec.String(); got != c.want {
			t.Errorf("ParseSpec(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSpecUses(t *testing.T) {
	spec, _ := weight.ParseSpec("Hops, Failures + 3*Tunnels")
	if !spec.Uses(weight.Failures) || !spec.Uses(weight.Hops) || !spec.Uses(weight.Tunnels) {
		t.Error("Uses misses present quantities")
	}
	if spec.Uses(weight.Distance) {
		t.Error("Uses reports absent quantity")
	}
}

func TestVecOrdering(t *testing.T) {
	cases := []struct {
		a, b weight.Vec
		less bool
	}{
		{weight.Vec{5, 0}, weight.Vec{5, 7}, true},
		{weight.Vec{5, 7}, weight.Vec{5, 0}, false},
		{weight.Vec{4, 9}, weight.Vec{5, 0}, true},
		{weight.Vec{5, 7}, weight.Vec{5, 7}, false},
		{weight.Vec{1}, nil, true},  // anything beats ⊥
		{nil, weight.Vec{1}, false}, // ⊥ beats nothing
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestVecString(t *testing.T) {
	if got := (weight.Vec{5, 7}).String(); got != "(5, 7)" {
		t.Errorf("String = %q", got)
	}
	if got := (weight.Vec)(nil).String(); got != "⊥" {
		t.Errorf("zero String = %q", got)
	}
}

// Semiring laws on random vectors: idempotence, commutativity and
// associativity of ⊕; associativity of ⊗; distributivity of ⊗ over ⊕;
// identities and annihilation.
func TestSemiringLaws(t *testing.T) {
	s := weight.Semiring{Dim: 3}
	mk := func(x, y, z uint16) weight.Vec { return weight.Vec{uint64(x), uint64(y), uint64(z)} }
	if err := quick.Check(func(x1, y1, z1, x2, y2, z2, x3, y3, z3 uint16) bool {
		a, b, c := mk(x1, y1, z1), mk(x2, y2, z2), mk(x3, y3, z3)
		if !s.Combine(a, a).Equal(a) {
			return false // ⊕ idempotent
		}
		if !s.Combine(a, b).Equal(s.Combine(b, a)) {
			return false // ⊕ commutative
		}
		if !s.Combine(a, s.Combine(b, c)).Equal(s.Combine(s.Combine(a, b), c)) {
			return false // ⊕ associative
		}
		if !s.Extend(a, s.Extend(b, c)).Equal(s.Extend(s.Extend(a, b), c)) {
			return false // ⊗ associative
		}
		// Distributivity (⊗ over ⊕) in both directions.
		if !s.Extend(a, s.Combine(b, c)).Equal(s.Combine(s.Extend(a, b), s.Extend(a, c))) {
			return false
		}
		if !s.Extend(s.Combine(a, b), c).Equal(s.Combine(s.Extend(a, c), s.Extend(b, c))) {
			return false
		}
		// Identities.
		if !s.Combine(a, s.Zero()).Equal(a) || !s.Extend(a, s.One()).Equal(a) ||
			!s.Extend(s.One(), a).Equal(a) {
			return false
		}
		// Zero annihilates ⊗.
		if !s.Extend(a, s.Zero()).IsZero() || !s.Extend(s.Zero(), a).IsZero() {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExprEval(t *testing.T) {
	var a weight.Atoms
	a[weight.Hops] = 5
	a[weight.Failures] = 1
	a[weight.Tunnels] = 2
	e := weight.Expr{{Coeff: 1, Q: weight.Failures}, {Coeff: 3, Q: weight.Tunnels}}
	if got := e.Eval(a); got != 7 {
		t.Errorf("Eval = %d, want 7", got)
	}
	if got := (weight.Expr{}).Eval(a); got != 0 {
		t.Errorf("empty Eval = %d, want 0", got)
	}
	if got := (weight.Expr{}).String(); got != "0" {
		t.Errorf("empty String = %q", got)
	}
}

func TestStepAtoms(t *testing.T) {
	re := gen.RunningExample()
	a := weight.StepAtoms(re.Topo, re.Links["e1"], nil, 2, 1)
	if a[weight.Links] != 1 || a[weight.Hops] != 1 || a[weight.Failures] != 2 || a[weight.Tunnels] != 1 {
		t.Errorf("StepAtoms = %v", a)
	}
	// Negative growth clamps Tunnels at 0.
	a = weight.StepAtoms(re.Topo, re.Links["e1"], nil, 0, -1)
	if a[weight.Tunnels] != 0 {
		t.Errorf("Tunnels for pop step = %d, want 0", a[weight.Tunnels])
	}
	// Custom distance function.
	a = weight.StepAtoms(re.Topo, re.Links["e1"], func(topology.LinkID) uint64 { return 42 }, 0, 0)
	_ = a
}
