// Package live implements streaming what-if analysis: continuous
// verification over a feed of routing-table update events, closing the
// loop the paper's batch workflow leaves open (load a snapshot, ask
// queries) into "keep asking as the network changes".
//
// The subsystem has two halves:
//
//   - An Ingester consumes a line-delimited JSON event stream (link/router
//     up-down events, raw scenario delta commands, or per-router delta
//     sets produced by isis.Diff between snapshots), coalesces bursts in a
//     debounce window, and applies each coalesced batch atomically to a
//     long-lived scenario.Session via SetStack. Coalescing is
//     desired-state: a link-up cancels a pending link-down instead of
//     stacking on top of it, so the session's delta stack stays minimal
//     and per-router version hashes — hence the incremental translation
//     cache's rule blocks — stay hot across flushes.
//
//   - A Hub owns watch subscriptions on the session: each watch registers
//     a set of invariants (queries), and every flush re-verifies the
//     registered set on the batch pool and pushes only the cells whose
//     verdict or witness changed. Watches have bounded queues with
//     drop-oldest backpressure (a "gap" event tells the client how much it
//     missed) and are closed honestly when the session is torn down.
//
// The differential harness in this package's tests proves every
// post-flush verdict byte-identical to a from-scratch verification of the
// materialized network at that version; see DESIGN.md §12 for the flush
// state machine and the backpressure contract.
package live

import (
	"encoding/json"
	"fmt"
	"strings"

	"aalwines/internal/obs"
	"aalwines/internal/scenario"
)

var (
	mEvents      = obs.GetCounter("live_events_total")
	mEventErrors = obs.GetCounter("live_event_errors_total")
	mFlushes     = obs.GetCounter("live_flushes_total")
	// live_coalesced_per_flush counts raw events per flush — the debouncer's
	// whole point is pushing this above 1.
	mCoalesced = obs.GetHistogram("live_coalesced_per_flush",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
	// live_reverify_ms is in milliseconds, unlike the registry's
	// seconds-based defaults: re-verification latency on a warm cache sits
	// well under a second and ms buckets keep the histogram readable (the
	// DESIGN.md §7 naming convention carries the unit in the name).
	mReverifyMS = obs.GetHistogram("live_reverify_ms",
		[]float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500})
	mWatchesLive  = obs.GetGauge("live_watches_live")
	mWatchEvents  = obs.GetCounter("live_watch_events_total")
	mWatchDropped = obs.GetCounter("live_watch_dropped_total")
)

// Event is one line of the feed: a routing-table update in the
// line-delimited JSON format, mirroring what an IS-IS snapshot differ
// emits per router.
//
//	{"type":"link-down","link":"A.if1#B.if2"}
//	{"type":"router-up","router":"v3"}
//	{"type":"delta","cmds":["remove-entry ...","add-entry ..."],"router":"v2"}
//	{"type":"flush"}
//
// Router is informational on delta events (the router the delta set was
// attributed to); the commands themselves carry the authoritative slot
// addresses.
type Event struct {
	// Type is "link-down", "link-up", "router-down", "router-up", "delta"
	// or "flush" (force a flush point in the stream).
	Type string `json:"type"`
	// Link names the affected link for link-down/link-up, in the query
	// language's "A.if1#B.if2" form (or "A#B" when unambiguous).
	Link string `json:"link,omitempty"`
	// Router names the affected router for router-down/router-up, or
	// attributes a delta set.
	Router string `json:"router,omitempty"`
	// Cmd/Cmds carry scenario delta commands for type "delta".
	Cmd  string   `json:"cmd,omitempty"`
	Cmds []string `json:"cmds,omitempty"`
}

// ParseEvent parses one feed line. JSON lines (starting with '{') use the
// Event schema; anything else is treated as a raw scenario command — so a
// plain .wif scenario file replays as a feed — with the bare word "flush"
// forcing a flush point.
func ParseEvent(line string) (Event, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Event{}, errSkip
	}
	if strings.HasPrefix(line, "{") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return Event{}, fmt.Errorf("live: bad event JSON: %w", err)
		}
		switch ev.Type {
		case "link-down", "link-up":
			if ev.Link == "" {
				return Event{}, fmt.Errorf("live: %s event without link", ev.Type)
			}
		case "router-down", "router-up":
			if ev.Router == "" {
				return Event{}, fmt.Errorf("live: %s event without router", ev.Type)
			}
		case "delta":
			if ev.Cmd == "" && len(ev.Cmds) == 0 {
				return Event{}, fmt.Errorf("live: delta event without commands")
			}
		case "flush":
		default:
			return Event{}, fmt.Errorf("live: unknown event type %q", ev.Type)
		}
		return ev, nil
	}
	if line == "flush" {
		return Event{Type: "flush"}, nil
	}
	return Event{Type: "delta", Cmd: line}, nil
}

// errSkip marks blank and comment lines; not an error the caller reports.
var errSkip = fmt.Errorf("live: skip line")

// Deltas maps the event to the scenario deltas it implies (empty for
// "flush"). Commands are parsed but not yet validated against a network.
func (ev Event) Deltas() ([]scenario.Delta, error) {
	switch ev.Type {
	case "link-down":
		return []scenario.Delta{{Kind: scenario.FailLink, Link: ev.Link}}, nil
	case "link-up":
		return []scenario.Delta{{Kind: scenario.RestoreLink, Link: ev.Link}}, nil
	case "router-down":
		return []scenario.Delta{{Kind: scenario.DrainRouter, Router: ev.Router}}, nil
	case "router-up":
		return []scenario.Delta{{Kind: scenario.RestoreRouter, Router: ev.Router}}, nil
	case "delta":
		cmds := ev.Cmds
		if ev.Cmd != "" {
			cmds = append([]string{ev.Cmd}, cmds...)
		}
		out := make([]scenario.Delta, 0, len(cmds))
		for _, cmd := range cmds {
			d, err := scenario.ParseDelta(cmd)
			if err != nil {
				return nil, err
			}
			out = append(out, d)
		}
		return out, nil
	case "flush":
		return nil, nil
	default:
		return nil, fmt.Errorf("live: unknown event type %q", ev.Type)
	}
}
