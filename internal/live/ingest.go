package live

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"aalwines/internal/scenario"
	"aalwines/internal/translate"
)

// Options configures an Ingester.
type Options struct {
	// Window is the debounce window: after an event arrives, the ingester
	// waits Window for the burst to quiesce before flushing; every further
	// event restarts the wait. Window 0 disables timer-driven flushing —
	// flushes happen only on explicit flush events, on the MaxPending cap,
	// and at end of stream, which makes replays deterministic.
	Window time.Duration
	// MaxPending caps events coalesced into one flush (default 256): a
	// burst that never quiesces still flushes every MaxPending events, so
	// watch latency is bounded even under a firehose.
	MaxPending int
	// Hub, when set, is refreshed after every flush that changed the
	// session fingerprint (watched invariants re-verify, changed cells
	// stream out).
	Hub *Hub
	// OnFlush observes every flush, after the hub refresh. Tests use it as
	// the differential checkpoint; the CLI uses it for progress reports.
	OnFlush func(FlushInfo)
}

// FlushInfo describes one flush.
type FlushInfo struct {
	// Seq numbers flushes from 1.
	Seq int `json:"seq"`
	// Events is how many feed events were coalesced into this flush.
	Events int `json:"events"`
	// StackLen is the session's delta-stack depth after the flush.
	StackLen int `json:"stackLen"`
	// Fingerprint is the session fingerprint after the flush.
	Fingerprint string `json:"fingerprint"`
	// Changed counts watched cells whose verdict or witness changed.
	Changed int `json:"changed"`
	// Skipped reports the flush left the fingerprint unchanged, so
	// re-verification was skipped entirely.
	Skipped bool `json:"skipped,omitempty"`
	// ReverifyMS is the wall-clock of the hub refresh, in milliseconds.
	ReverifyMS float64 `json:"reverifyMs"`
	// Blocks is the translation-cache work of this flush's re-verification
	// (rule blocks reused vs rebuilt).
	Blocks translate.BuildStats `json:"blocks"`
}

// ReplayStats summarizes a Run over a whole stream.
type ReplayStats struct {
	Events  int `json:"events"`
	Errors  int `json:"errors"`
	Flushes int `json:"flushes"`
	// Changed accumulates changed watched cells across flushes.
	Changed int `json:"changed"`
}

// Ingester consumes routing-update events and applies them to a session in
// coalesced, atomic batches. Coalescing is desired-state for link and
// router status — a link-up cancels a pending link-down rather than
// stacking a restore on a fail, so the delta stack the session re-hashes
// per router stays minimal — while table edits (add-entry, remove-entry,
// swap-priority) are order-sensitive and accumulate verbatim.
//
// Ingest and Flush are not safe for concurrent use with themselves; Run
// drives both from one goroutine. The edits list grows with the lifetime
// of the session (scenario deltas are a history, not a state), matching
// the session's own stack semantics.
type Ingester struct {
	sess *scenario.Session
	opts Options

	// Desired failed-link set, insertion-ordered by canonical link name.
	failedOrder []string
	failedIdx   map[string]int
	// Desired drained-router set, insertion-ordered.
	drainOrder []string
	drainIdx   map[string]int
	// Accumulated table edits, in arrival order.
	edits []scenario.Delta

	pending int // events coalesced since the last flush
	seq     int

	// flushMu serializes Flush against itself (Run's flush vs a final
	// flush from another goroutine during shutdown).
	flushMu sync.Mutex

	lastBlocks translate.BuildStats
	lastFP     uint64
	flushedAny bool
}

// NewIngester builds an ingester over a session.
func NewIngester(sess *scenario.Session, opts Options) *Ingester {
	if opts.MaxPending <= 0 {
		opts.MaxPending = 256
	}
	return &Ingester{
		sess:       sess,
		opts:       opts,
		failedIdx:  make(map[string]int),
		drainIdx:   make(map[string]int),
		lastBlocks: sess.BlockStats(),
		lastFP:     sess.Fingerprint(),
	}
}

// Pending reports how many events are coalesced and waiting for a flush.
func (ing *Ingester) Pending() int { return ing.pending }

// Ingest coalesces one event into the pending batch and reports whether
// the caller should flush now (an explicit flush event, or the MaxPending
// cap). Invalid events (unknown link, malformed delta) return an error
// and are counted in live_event_errors_total without poisoning the batch —
// a live feed keeps going past one bad line.
func (ing *Ingester) Ingest(ev Event) (flushNow bool, err error) {
	mEvents.Inc()
	if ev.Type == "flush" {
		return true, nil
	}
	ds, err := ev.Deltas()
	if err != nil {
		mEventErrors.Inc()
		return false, err
	}
	base := ing.sess.Base()
	for _, d := range ds {
		if err := scenario.ValidateDelta(base, d); err != nil {
			mEventErrors.Inc()
			return ing.pending >= ing.opts.MaxPending, err
		}
	}
	for _, d := range ds {
		switch d.Kind {
		case scenario.FailLink:
			name, _ := scenario.CanonicalLink(base, d.Link)
			if _, dup := ing.failedIdx[name]; !dup {
				ing.failedIdx[name] = len(ing.failedOrder)
				ing.failedOrder = append(ing.failedOrder, name)
			}
		case scenario.RestoreLink:
			name, _ := scenario.CanonicalLink(base, d.Link)
			if i, ok := ing.failedIdx[name]; ok {
				ing.failedOrder = append(ing.failedOrder[:i], ing.failedOrder[i+1:]...)
				delete(ing.failedIdx, name)
				for j := i; j < len(ing.failedOrder); j++ {
					ing.failedIdx[ing.failedOrder[j]] = j
				}
			}
		case scenario.DrainRouter:
			if _, dup := ing.drainIdx[d.Router]; !dup {
				ing.drainIdx[d.Router] = len(ing.drainOrder)
				ing.drainOrder = append(ing.drainOrder, d.Router)
			}
		case scenario.RestoreRouter:
			if i, ok := ing.drainIdx[d.Router]; ok {
				ing.drainOrder = append(ing.drainOrder[:i], ing.drainOrder[i+1:]...)
				delete(ing.drainIdx, d.Router)
				for j := i; j < len(ing.drainOrder); j++ {
					ing.drainIdx[ing.drainOrder[j]] = j
				}
			}
		default:
			ing.edits = append(ing.edits, d)
		}
	}
	ing.pending++
	return ing.pending >= ing.opts.MaxPending, nil
}

// Stack renders the current desired state as a delta stack: table edits in
// arrival order, then drains, then fails. Materialization applies edits in
// stack order and filters failures afterwards, so the relative position of
// fails vs edits does not change the overlay — this order just keeps the
// stable edit prefix at the bottom so per-router version hashes of routers
// untouched by the newest events stay identical across flushes, keeping
// their cached rule blocks live.
func (ing *Ingester) Stack() []scenario.Delta {
	out := make([]scenario.Delta, 0, len(ing.edits)+len(ing.drainOrder)+len(ing.failedOrder))
	out = append(out, ing.edits...)
	for _, r := range ing.drainOrder {
		out = append(out, scenario.Delta{Kind: scenario.DrainRouter, Router: r})
	}
	for _, l := range ing.failedOrder {
		out = append(out, scenario.Delta{Kind: scenario.FailLink, Link: l})
	}
	return out
}

// Flush atomically replaces the session's delta stack with the coalesced
// desired state, then (unless the fingerprint is unchanged) refreshes the
// hub so watched invariants re-verify and changed cells stream out.
func (ing *Ingester) Flush(ctx context.Context) (FlushInfo, error) {
	ing.flushMu.Lock()
	defer ing.flushMu.Unlock()

	stack := ing.Stack()
	if _, err := ing.sess.SetStack(stack); err != nil {
		return FlushInfo{}, err
	}
	ing.seq++
	events := ing.pending
	ing.pending = 0
	mFlushes.Inc()
	mCoalesced.Observe(float64(events))

	fp := ing.sess.Fingerprint()
	info := FlushInfo{
		Seq:         ing.seq,
		Events:      events,
		StackLen:    len(stack),
		Fingerprint: fmt.Sprintf("%016x", fp),
	}
	if ing.flushedAny && fp == ing.lastFP {
		// The coalesced batch cancelled itself out (e.g. fail+restore of
		// the same link inside one window): nothing to re-verify.
		info.Skipped = true
	} else if ing.opts.Hub != nil {
		start := time.Now()
		info.Changed = ing.opts.Hub.Refresh(ctx)
		info.ReverifyMS = float64(time.Since(start)) / float64(time.Millisecond)
		mReverifyMS.Observe(info.ReverifyMS)
	}
	ing.lastFP = fp
	ing.flushedAny = true

	blocks := ing.sess.BlockStats()
	info.Blocks = blocks.Sub(ing.lastBlocks)
	ing.lastBlocks = blocks

	if ing.opts.OnFlush != nil {
		ing.opts.OnFlush(info)
	}
	return info, nil
}

// Run consumes the stream to EOF (or ctx cancellation), flushing per the
// debounce policy, with a final flush for any trailing events. Per-line
// errors are counted, reported through stats, and do not stop the run; a
// flush failure (which SetStack's pre-validation makes unreachable for
// events that passed Ingest) does.
func (ing *Ingester) Run(ctx context.Context, r io.Reader) (ReplayStats, error) {
	var stats ReplayStats

	type lineEv struct {
		ev  Event
		err error
	}
	lines := make(chan lineEv)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			ev, err := ParseEvent(sc.Text())
			if err == errSkip {
				continue
			}
			select {
			case lines <- lineEv{ev, err}:
			case <-ctx.Done():
				return
			}
		}
		if err := sc.Err(); err != nil {
			select {
			case lines <- lineEv{err: fmt.Errorf("live: reading feed: %w", err)}:
			case <-ctx.Done():
			}
		}
	}()

	flush := func() error {
		if ing.pending == 0 && stats.Flushes > 0 {
			return nil
		}
		info, err := ing.Flush(ctx)
		if err != nil {
			return err
		}
		stats.Flushes++
		stats.Changed += info.Changed
		return nil
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	defer stopTimer()

	for {
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-timerC:
			stopTimer()
			if err := flush(); err != nil {
				return stats, err
			}
		case le, ok := <-lines:
			if !ok {
				// End of stream: flush the trailing batch (or, for an empty
				// feed, establish the baseline flush).
				stopTimer()
				if ing.pending > 0 || stats.Flushes == 0 {
					if err := flush(); err != nil {
						return stats, err
					}
				}
				return stats, nil
			}
			if le.err != nil {
				mEventErrors.Inc()
				stats.Errors++
				continue
			}
			stats.Events++
			now, err := ing.Ingest(le.ev)
			if err != nil {
				stats.Errors++
			}
			if now {
				stopTimer()
				if err := flush(); err != nil {
					return stats, err
				}
			} else if ing.opts.Window > 0 {
				stopTimer()
				timer = time.NewTimer(ing.opts.Window)
				timerC = timer.C
			}
		}
	}
}
