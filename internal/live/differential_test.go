package live

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/scenario"
	"aalwines/internal/topology"
)

// freshCell verifies one query from scratch on a standalone network — the
// reference the hub's incremental cells are compared against.
func freshCell(net *network.Network, q string) Cell {
	res, err := engine.VerifyText(net, q, engine.Options{})
	return CellOf(net, batch.Result{Query: q, Res: res, Err: err})
}

// TestLiveReplayDifferential is the tentpole's acceptance harness: a
// ≥50-event stream (curated prologue + seeded random churn) over a zoo-30
// network replays through the ingester with a watch registered, and after
// EVERY flush each watched cell must be byte-identical to a from-scratch
// verification of the materialized network at that version. The watch
// client must then have seen the initial states plus every transition
// exactly once, in order, and the incremental cache must have served at
// least half the rule blocks across the replay's re-verifications.
func TestLiveReplayDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replay is a long test")
	}
	syn := gen.Zoo(gen.ZooOpts{Routers: 30, Seed: 7, Protection: true})
	net := syn.Net
	sess := scenario.NewSession(net)
	defer sess.Close()
	hub := NewHub(sess, HubOptions{})

	var queries []string
	for _, gq := range syn.Queries(6, 11) {
		queries = append(queries, gq.Text)
	}
	w, err := hub.AddWatch(context.Background(), queries, 4096)
	if err != nil {
		t.Fatal(err)
	}

	// The expected watch stream: initial cells now, then per flush the
	// cells whose rendering changed, in registration order.
	type transition struct {
		query string
		raw   []byte
	}
	var expected []transition
	prev := make(map[string][]byte, len(queries))
	for _, c := range hub.Cells() {
		prev[c.Query] = c.render()
		expected = append(expected, transition{c.Query, c.render()})
	}

	// Build the feed: a curated prologue exercising every event form, then
	// seeded random link churn with flush points, then total restoration.
	rng := rand.New(rand.NewSource(23))
	g := net.Topo
	var b strings.Builder
	emit := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	emit("# live replay feed (zoo-30, seed 23)")
	l0 := g.LinkName(topology.LinkID(0))
	emit(`{"type":"link-down","link":%q}`, l0)
	emit(`{"type":"link-up","link":%q}`, l0) // cancels in the same window
	emit(`{"type":"router-down","router":%q}`, g.Routers[1].Name)
	emit("flush")
	emit(`{"type":"router-up","router":%q}`, g.Routers[1].Name)
	emit(`{"type":"delta","cmds":[%q]}`, "fail "+g.LinkName(topology.LinkID(1)))
	emit("flush")
	events := 7
	down := map[int]bool{1: true}
	for events < 56 {
		l := rng.Intn(g.NumLinks())
		if down[l] {
			delete(down, l)
			emit(`{"type":"link-up","link":%q}`, g.LinkName(topology.LinkID(l)))
		} else {
			down[l] = true
			emit(`{"type":"link-down","link":%q}`, g.LinkName(topology.LinkID(l)))
		}
		events++
		if events%7 == 0 {
			emit("flush")
			events++
		}
	}
	for l := range down {
		emit(`{"type":"link-up","link":%q}`, g.LinkName(topology.LinkID(l)))
		events++
	}
	t.Logf("feed: %d events", events)

	reusedBase := obs.GetCounter("scenario_rule_blocks_reused_total").Value()
	rebuiltBase := obs.GetCounter("scenario_rule_blocks_rebuilt_total").Value()

	flushes := 0
	onFlush := func(info FlushInfo) {
		flushes++
		// Differential soundness: every watched cell byte-identical to a
		// from-scratch verification of the materialized network.
		fresh := sess.MaterializeFresh()
		for _, c := range hub.Cells() {
			want := freshCell(fresh, c.Query)
			if !bytes.Equal(c.render(), want.render()) {
				t.Fatalf("flush %d (%s): cell diverged from fresh verification\n live:  %s\n fresh: %s",
					info.Seq, info.Fingerprint, c.render(), want.render())
			}
			if raw := c.render(); !bytes.Equal(raw, prev[c.Query]) {
				expected = append(expected, transition{c.Query, raw})
				prev[c.Query] = raw
			}
		}
	}

	ing := NewIngester(sess, Options{Hub: hub, OnFlush: onFlush})
	stats, err := ing.Run(context.Background(), strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events < 50 {
		t.Fatalf("replayed %d events, want ≥50", stats.Events)
	}
	if stats.Errors != 0 {
		t.Fatalf("replay hit %d event errors", stats.Errors)
	}
	if flushes != stats.Flushes || flushes < 5 {
		t.Fatalf("flushes = %d (stats %d), want ≥5", flushes, stats.Flushes)
	}

	// The final restoration must return the session to the empty stack.
	if got := len(sess.Deltas()); got != 0 {
		t.Fatalf("final stack = %d deltas, want 0 after full restoration", got)
	}

	// Exactly-once, in-order delivery: the watch saw precisely the expected
	// transition sequence (buffer 4096 — no gaps).
	var got []transition
	evs, open := w.Next(context.Background(), time.Second)
	if !open {
		t.Fatal("watch closed unexpectedly")
	}
	for _, ev := range evs {
		if ev.Type == "gap" {
			t.Fatalf("unexpected gap event (%d dropped) with an ample buffer", ev.Dropped)
		}
		if ev.Type != "verdict" {
			t.Fatalf("unexpected event %+v", ev)
		}
		got = append(got, transition{ev.Query, ev.Cell.render()})
	}
	if more, _ := w.Next(context.Background(), 10*time.Millisecond); len(more) != 0 {
		t.Fatalf("events left after full drain: %+v", more)
	}
	if len(got) != len(expected) {
		t.Fatalf("watch saw %d events, expected %d", len(got), len(expected))
	}
	for i := range got {
		if got[i].query != expected[i].query || !bytes.Equal(got[i].raw, expected[i].raw) {
			t.Fatalf("event %d: got (%s, %s), want (%s, %s)",
				i, got[i].query, got[i].raw, expected[i].query, expected[i].raw)
		}
	}
	if len(expected) <= len(queries) {
		t.Fatalf("replay produced no verdict transitions beyond the initial states (%d events)", len(expected))
	}

	// Incremental cache effectiveness across the replay: at least half the
	// rule blocks of all re-verifications came from the cache.
	reused := obs.GetCounter("scenario_rule_blocks_reused_total").Value() - reusedBase
	rebuilt := obs.GetCounter("scenario_rule_blocks_rebuilt_total").Value() - rebuiltBase
	if reused+rebuilt == 0 {
		t.Fatal("no translation activity recorded")
	}
	ratio := float64(reused) / float64(reused+rebuilt)
	t.Logf("rule blocks: %d reused / %d rebuilt (%.1f%% reuse) over %d flushes",
		reused, rebuilt, 100*ratio, flushes)
	if ratio < 0.5 {
		t.Fatalf("rule-block reuse %.1f%% < 50%%", 100*ratio)
	}
}
