package live

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"aalwines/internal/gen"
	"aalwines/internal/scenario"
)

func TestParseEvent(t *testing.T) {
	cases := []struct {
		line    string
		want    Event
		wantErr bool
		skip    bool
	}{
		{line: `{"type":"link-down","link":"v0.oe1#v2.ie1"}`, want: Event{Type: "link-down", Link: "v0.oe1#v2.ie1"}},
		{line: `{"type":"router-up","router":"v3"}`, want: Event{Type: "router-up", Router: "v3"}},
		{line: `{"type":"delta","cmds":["drain v2"]}`, want: Event{Type: "delta", Cmds: []string{"drain v2"}}},
		{line: `{"type":"flush"}`, want: Event{Type: "flush"}},
		{line: "flush", want: Event{Type: "flush"}},
		{line: "fail v0.oe1#v2.ie1", want: Event{Type: "delta", Cmd: "fail v0.oe1#v2.ie1"}},
		{line: "", skip: true},
		{line: "# comment", skip: true},
		{line: `{"type":"link-down"}`, wantErr: true},
		{line: `{"type":"router-down"}`, wantErr: true},
		{line: `{"type":"delta"}`, wantErr: true},
		{line: `{"type":"warp"}`, wantErr: true},
		{line: `{bad json`, wantErr: true},
	}
	for _, c := range cases {
		ev, err := ParseEvent(c.line)
		switch {
		case c.skip:
			if err != errSkip {
				t.Errorf("ParseEvent(%q) = %v, want errSkip", c.line, err)
			}
		case c.wantErr:
			if err == nil {
				t.Errorf("ParseEvent(%q) accepted", c.line)
			}
		default:
			if err != nil {
				t.Errorf("ParseEvent(%q): %v", c.line, err)
			} else if ev.Type != c.want.Type || ev.Link != c.want.Link || ev.Router != c.want.Router || ev.Cmd != c.want.Cmd {
				t.Errorf("ParseEvent(%q) = %+v, want %+v", c.line, ev, c.want)
			}
		}
	}
}

func TestIngestCoalescing(t *testing.T) {
	re := gen.RunningExample()
	sess := scenario.NewSession(re.Network)
	defer sess.Close()
	ing := NewIngester(sess, Options{})

	// A link-up cancels the pending link-down entirely.
	mustIngest(t, ing, Event{Type: "link-down", Link: "v0.oe1#v2.ie1"})
	mustIngest(t, ing, Event{Type: "link-up", Link: "v0.oe1#v2.ie1"})
	if got := len(ing.Stack()); got != 0 {
		t.Fatalf("down+up stack = %d deltas, want 0", got)
	}

	// Duplicate downs coalesce to one fail; unrelated ups are ignored.
	mustIngest(t, ing, Event{Type: "link-down", Link: "v0.oe1#v2.ie1"})
	mustIngest(t, ing, Event{Type: "link-down", Link: "v0.oe1#v2.ie1"})
	mustIngest(t, ing, Event{Type: "link-up", Link: "v0.oe2#v1.ie2"})
	mustIngest(t, ing, Event{Type: "router-down", Router: "v4"})
	mustIngest(t, ing, Event{Type: "router-down", Router: "v4"})
	mustIngest(t, ing, Event{Type: "router-up", Router: "v1"})
	stack := ing.Stack()
	if len(stack) != 2 {
		t.Fatalf("stack = %v, want [drain v4, fail v0.oe1#v2.ie1]", stack)
	}
	if stack[0].Kind != scenario.DrainRouter || stack[0].Router != "v4" {
		t.Fatalf("stack[0] = %v, want drain v4", stack[0])
	}
	if stack[1].Kind != scenario.FailLink {
		t.Fatalf("stack[1] = %v, want a fail", stack[1])
	}

	info, err := ing.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Events != 8 || info.StackLen != 2 || info.Skipped {
		t.Fatalf("flush info = %+v", info)
	}
	if got := len(sess.Deltas()); got != 2 {
		t.Fatalf("session stack = %d, want 2", got)
	}

	// Restoring everything flushes back to the empty stack; the
	// fingerprint matches the previous baseline only if it returns to a
	// previously-seen state — here it does not (flush 1 had failures), so
	// the flush re-verifies (Skipped=false). A second identical flush is
	// skipped.
	mustIngest(t, ing, Event{Type: "link-up", Link: "v0.oe1#v2.ie1"})
	mustIngest(t, ing, Event{Type: "router-up", Router: "v4"})
	info, err = ing.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.StackLen != 0 || info.Skipped {
		t.Fatalf("flush info = %+v, want empty stack, not skipped", info)
	}
	info, err = ing.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Skipped {
		t.Fatalf("no-op flush not skipped: %+v", info)
	}
}

func mustIngest(t *testing.T, ing *Ingester, ev Event) {
	t.Helper()
	if _, err := ing.Ingest(ev); err != nil {
		t.Fatalf("ingest %+v: %v", ev, err)
	}
}

func TestIngestValidation(t *testing.T) {
	re := gen.RunningExample()
	sess := scenario.NewSession(re.Network)
	defer sess.Close()
	ing := NewIngester(sess, Options{})

	if _, err := ing.Ingest(Event{Type: "link-down", Link: "no#such"}); err == nil {
		t.Fatal("unknown link accepted")
	}
	if _, err := ing.Ingest(Event{Type: "delta", Cmd: "add-entry nope"}); err == nil {
		t.Fatal("malformed delta accepted")
	}
	if got := len(ing.Stack()); got != 0 {
		t.Fatalf("invalid events reached the stack: %d deltas", got)
	}
}

func TestIngestCapTriggersFlush(t *testing.T) {
	re := gen.RunningExample()
	sess := scenario.NewSession(re.Network)
	defer sess.Close()
	ing := NewIngester(sess, Options{MaxPending: 3})

	links := []string{"v0.oe1#v2.ie1", "v0.oe2#v1.ie2", "v2.oe4#v3.ie4"}
	for i, l := range links {
		now, err := ing.Ingest(Event{Type: "link-down", Link: l})
		if err != nil {
			t.Fatal(err)
		}
		if want := i == 2; now != want {
			t.Fatalf("event %d: flushNow = %v, want %v", i, now, want)
		}
	}
	if now, _ := ing.Ingest(Event{Type: "flush"}); !now {
		t.Fatal("explicit flush event did not request a flush")
	}
}

func TestRunDeterministicReplay(t *testing.T) {
	feed := strings.Join([]string{
		`{"type":"link-down","link":"v0.oe1#v2.ie1"}`,
		"# a comment line",
		"",
		`{"type":"flush"}`,
		`{"type":"link-up","link":"v0.oe1#v2.ie1"}`,
		`{"type":"router-down","router":"v4"}`,
		"not a real command", // counted as an error, feed keeps going
		"flush",
		"drain v4", // raw scenario text replays as a feed
	}, "\n")

	re := gen.RunningExample()
	sess := scenario.NewSession(re.Network)
	defer sess.Close()
	var flushes []FlushInfo
	ing := NewIngester(sess, Options{OnFlush: func(fi FlushInfo) { flushes = append(flushes, fi) }})
	stats, err := ing.Run(context.Background(), strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	// 7 parsed events (comment+blank skipped), 1 of them invalid.
	if stats.Events != 7 || stats.Errors != 1 || stats.Flushes != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(flushes) != 3 {
		t.Fatalf("flush callbacks = %d, want 3", len(flushes))
	}
	if flushes[0].StackLen != 1 || flushes[1].StackLen != 1 || flushes[2].StackLen != 1 {
		t.Fatalf("stack lens = %+v", flushes)
	}
	// Flush 2 coalesced link-up (cancelling) + router-down; flush 3 is the
	// trailing drain (a no-op on the already-drained v4, so it is skipped).
	if flushes[2].Events != 1 || !flushes[2].Skipped {
		t.Fatalf("trailing flush = %+v, want 1 event, skipped", flushes[2])
	}
	if got := len(sess.Deltas()); got != 1 {
		t.Fatalf("final session stack = %d deltas, want 1 (drain v4)", got)
	}
}

func TestRunDebounceWindow(t *testing.T) {
	re := gen.RunningExample()
	sess := scenario.NewSession(re.Network)
	defer sess.Close()

	pr, pw := newBlockingFeed()
	var flushes []FlushInfo
	done := make(chan struct{})
	ing := NewIngester(sess, Options{
		Window:  20 * time.Millisecond,
		OnFlush: func(fi FlushInfo) { flushes = append(flushes, fi) },
	})
	go func() {
		defer close(done)
		if _, err := ing.Run(context.Background(), pr); err != nil {
			t.Errorf("run: %v", err)
		}
	}()

	// A burst lands in one flush once the window quiesces.
	pw <- `{"type":"link-down","link":"v0.oe1#v2.ie1"}`
	pw <- `{"type":"link-down","link":"v0.oe2#v1.ie2"}`
	waitFor(t, func() bool { return ing.sessStackLen() == 2 })
	pw <- `{"type":"link-up","link":"v0.oe2#v1.ie2"}`
	waitFor(t, func() bool { return ing.sessStackLen() == 1 })
	close(pw)
	<-done
	if len(flushes) != 2 {
		t.Fatalf("flushes = %+v, want 2", flushes)
	}
	if flushes[0].Events != 2 || flushes[0].StackLen != 2 {
		t.Fatalf("burst flush = %+v", flushes[0])
	}
}

// sessStackLen reads the session stack depth (test helper; the session is
// internally locked).
func (ing *Ingester) sessStackLen() int { return len(ing.sess.Deltas()) }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newBlockingFeed is an io.Reader fed line-by-line from a channel, so the
// debounce timer — not stream EOF — decides when flushes happen.
func newBlockingFeed() (*chanReader, chan string) {
	ch := make(chan string)
	return &chanReader{ch: ch}, ch
}

type chanReader struct {
	ch  chan string
	buf []byte
}

func (r *chanReader) Read(p []byte) (int, error) {
	if len(r.buf) == 0 {
		line, ok := <-r.ch
		if !ok {
			return 0, io.EOF
		}
		r.buf = []byte(line + "\n")
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}
