package live

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/cli"
	"aalwines/internal/engine"
	"aalwines/internal/network"
	"aalwines/internal/scenario"
)

// ErrClosed is returned by AddWatch on a hub whose session was torn down.
var ErrClosed = errors.New("live: hub closed")

// BadQueryError rejects a watch whose invariant does not parse against the
// session's network.
type BadQueryError struct {
	Query string
	Err   error
}

func (e *BadQueryError) Error() string {
	return fmt.Sprintf("live: invariant %q: %v", e.Query, e.Err)
}

func (e *BadQueryError) Unwrap() error { return e.Err }

// Cell is the stable verdict of one invariant: everything the semantics
// determine (verdict, weight, failed links, witness trace), nothing that
// varies by wall clock or translation strategy. Watch events push cells,
// and the differential harness compares them byte-for-byte against
// from-scratch verification.
type Cell struct {
	Query   string         `json:"query"`
	Verdict string         `json:"verdict,omitempty"`
	Weight  []uint64       `json:"weight,omitempty"`
	Failed  []string       `json:"failedLinks,omitempty"`
	Trace   []cli.StepJSON `json:"trace,omitempty"`
	// Error/Code report a failed verification (budget, deadline, parse).
	// A run flipping between success and the same error is a transition
	// like any other.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// CellOf builds the stable cell of one batch result, rendered from the
// overlay the run was pinned to.
func CellOf(overlay *network.Network, r batch.Result) Cell {
	if r.Err != nil {
		return Cell{Query: r.Query, Error: r.Err.Error(), Code: cli.ErrorCode(r.Err)}
	}
	rj := cli.ToJSON(overlay, r.Query, r.Res).Stable()
	return Cell{
		Query:   rj.Query,
		Verdict: rj.Verdict,
		Weight:  rj.Weight,
		Failed:  rj.Failed,
		Trace:   rj.Trace,
	}
}

// render is the comparison form deciding whether a cell changed.
func (c Cell) render() []byte {
	b, _ := json.Marshal(c)
	return b
}

// WatchEvent is one element of a watch's event stream.
type WatchEvent struct {
	// Type is "verdict" (a cell's initial state or a change), "gap" (the
	// queue overflowed and Dropped events were lost), "close" (the watch or
	// its session ended; terminal) or "heartbeat" (stream keep-alive,
	// synthesized by the transport, never queued).
	Type string `json:"type"`
	// Seq is the hub's flush sequence the event belongs to; 0 for the
	// initial cell states pushed at watch creation.
	Seq int64 `json:"seq,omitempty"`
	// Fingerprint is the session delta-stack fingerprint at that flush.
	Fingerprint string `json:"fingerprint,omitempty"`
	Query       string `json:"query,omitempty"`
	Cell        *Cell  `json:"cell,omitempty"`
	Dropped     int64  `json:"dropped,omitempty"`
	Reason      string `json:"reason,omitempty"`
}

// HubOptions configures verification of watched invariants.
type HubOptions struct {
	// Engine options apply to every re-verification (budget, saturation
	// parallelism, weight minimisation...).
	Engine engine.Options
	// Workers bounds the batch pool per refresh (0 = GOMAXPROCS).
	Workers int
	// DefaultBuffer is the per-watch queue capacity when a watch does not
	// choose one (default 64, minimum 8).
	DefaultBuffer int
}

// Hub multiplexes watch subscriptions over one scenario session. Refresh
// re-verifies every watched invariant and fans out only changed cells;
// AddWatch seeds a new watch with the current cell states, serialized
// against Refresh so a watch stream is always "initial states, then every
// transition exactly once, in order".
type Hub struct {
	sess *scenario.Session
	opts HubOptions

	// refreshMu serializes Refresh and AddWatch: both verify on the
	// session and publish ordered events, so interleaving them would
	// let a watch miss (or double-see) the transition of a concurrent
	// flush.
	refreshMu sync.Mutex

	mu       sync.Mutex
	seq      int64
	nextID   int
	watches  map[string]*Watch
	cells    map[string]*cellState
	order    []string // watched queries, first-registration order
	closed   bool
	closeRsn string
}

type cellState struct {
	refs int
	cell Cell
	raw  []byte
}

// NewHub builds a hub over a session. The hub does not own the session;
// whoever tears the session down must call Close.
func NewHub(sess *scenario.Session, opts HubOptions) *Hub {
	if opts.DefaultBuffer == 0 {
		opts.DefaultBuffer = 64
	}
	return &Hub{
		sess:    sess,
		opts:    opts,
		watches: make(map[string]*Watch),
		cells:   make(map[string]*cellState),
	}
}

// AddWatch registers a watch over the given invariants with the given
// queue capacity (0 = the hub default) and immediately queues one verdict
// event per invariant carrying its current cell. Invariants that fail to
// parse reject the whole watch with a *BadQueryError.
func (h *Hub) AddWatch(ctx context.Context, invariants []string, buffer int) (*Watch, error) {
	if len(invariants) == 0 {
		return nil, errors.New("live: watch without invariants")
	}
	h.refreshMu.Lock()
	defer h.refreshMu.Unlock()

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	var fresh []string
	seen := make(map[string]bool, len(invariants))
	for _, q := range invariants {
		if seen[q] {
			continue
		}
		seen[q] = true
		if _, ok := h.cells[q]; !ok {
			fresh = append(fresh, q)
		}
	}
	h.mu.Unlock()

	// Verify invariants the hub does not track yet. Outside h.mu (the
	// verification can be slow) but under refreshMu, so no flush lands in
	// between and the seeded cells are current.
	if len(fresh) > 0 {
		rs, overlay := h.sess.VerifyBatchSnapshot(ctx, fresh, h.batchOpts())
		for _, r := range rs {
			if r.Err != nil && cli.ErrorCode(r.Err) == "query-error" {
				return nil, &BadQueryError{Query: r.Query, Err: r.Err}
			}
		}
		h.mu.Lock()
		for _, r := range rs {
			if _, ok := h.cells[r.Query]; !ok {
				c := CellOf(overlay, r)
				h.cells[r.Query] = &cellState{cell: c, raw: c.render()}
				h.order = append(h.order, r.Query)
			}
		}
		h.mu.Unlock()
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if buffer <= 0 {
		buffer = h.opts.DefaultBuffer
	}
	if buffer < 8 {
		buffer = 8
	}
	h.nextID++
	w := &Watch{
		id:      fmt.Sprintf("w%d", h.nextID),
		hub:     h,
		queries: make(map[string]bool, len(seen)),
		cap:     buffer,
		notify:  make(chan struct{}, 1),
	}
	fp := fmt.Sprintf("%016x", h.sess.Fingerprint())
	for _, q := range invariants {
		if !w.queries[q] {
			w.queries[q] = true
			w.invariants = append(w.invariants, q)
			st, ok := h.cells[q]
			if !ok {
				// Unreachable while CloseWatch serializes under refreshMu,
				// but a vanished cell must never panic the seeding loop:
				// re-track the query with an error cell — the next Refresh
				// verifies it for real and pushes the correction.
				c := Cell{Query: q, Error: "cell lost during watch creation", Code: "internal-error"}
				st = &cellState{cell: c, raw: c.render()}
				h.cells[q] = st
				h.order = append(h.order, q)
			}
			st.refs++
			cell := st.cell
			w.push(WatchEvent{Type: "verdict", Seq: h.seq, Fingerprint: fp, Query: q, Cell: &cell})
		}
	}
	h.watches[w.id] = w
	mWatchesLive.Add(1)
	return w, nil
}

func (h *Hub) batchOpts() batch.Options {
	return batch.Options{Workers: h.opts.Workers, Engine: h.opts.Engine}
}

// Refresh re-verifies every watched invariant against the session's
// current overlay and pushes the cells whose rendering changed to every
// watch subscribed to them. It returns the number of changed cells.
// Callers serialize flushes through it; a refresh with no watched
// invariants is free.
func (h *Hub) Refresh(ctx context.Context) int {
	h.refreshMu.Lock()
	defer h.refreshMu.Unlock()

	h.mu.Lock()
	if h.closed || len(h.order) == 0 {
		h.mu.Unlock()
		return 0
	}
	queries := append([]string(nil), h.order...)
	h.mu.Unlock()

	rs, overlay := h.sess.VerifyBatchSnapshot(ctx, queries, h.batchOpts())

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0
	}
	h.seq++
	fp := fmt.Sprintf("%016x", h.sess.Fingerprint())
	changed := 0
	for _, r := range rs {
		st := h.cells[r.Query]
		if st == nil {
			continue
		}
		c := CellOf(overlay, r)
		raw := c.render()
		if bytes.Equal(raw, st.raw) {
			continue
		}
		st.cell, st.raw = c, raw
		changed++
		for _, w := range h.watches {
			if w.queries[r.Query] {
				cell := c
				w.push(WatchEvent{Type: "verdict", Seq: h.seq, Fingerprint: fp, Query: r.Query, Cell: &cell})
			}
		}
	}
	return changed
}

// Watch returns a registered watch by id, or nil. Watches stay addressable
// after hub close so clients can drain their terminal close event.
func (h *Hub) Watch(id string) *Watch {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.watches[id]
}

// WatchInfo describes one watch for listings.
type WatchInfo struct {
	ID         string   `json:"id"`
	Invariants []string `json:"invariants"`
	Buffer     int      `json:"buffer"`
	Pending    int      `json:"pending"`
	Dropped    int64    `json:"dropped"`
	Closed     bool     `json:"closed,omitempty"`
}

// Watches lists registered watches in id order (w1, w2, ...).
func (h *Hub) Watches() []WatchInfo {
	h.mu.Lock()
	ws := make([]*Watch, 0, len(h.watches))
	for _, w := range h.watches {
		ws = append(ws, w)
	}
	h.mu.Unlock()
	out := make([]WatchInfo, 0, len(ws))
	for _, w := range ws {
		out = append(out, w.Info())
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && len(out[j-1].ID) > len(out[j].ID) ||
			j > 0 && len(out[j-1].ID) == len(out[j].ID) && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Cells snapshots the current cell of every watched invariant, in
// registration order.
func (h *Hub) Cells() []Cell {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Cell, 0, len(h.order))
	for _, q := range h.order {
		out = append(out, h.cells[q].cell)
	}
	return out
}

// CloseWatch ends one watch: a terminal close event is queued (always —
// overflowing queues evict an older event for it) and the watch is
// unregistered, releasing its invariants. Reports whether the id existed.
func (h *Hub) CloseWatch(id, reason string) bool {
	// Under refreshMu: AddWatch drops h.mu during its seeding verification
	// and expects tracked cells to survive that window; a CloseWatch
	// releasing the last reference in between would delete a cell out from
	// under the seeding loop.
	h.refreshMu.Lock()
	defer h.refreshMu.Unlock()

	h.mu.Lock()
	w := h.watches[id]
	if w == nil {
		h.mu.Unlock()
		return false
	}
	if h.closed {
		// Close already ended every watch and settled the gauge; the id
		// stays addressable for draining only, so there is no ref or gauge
		// bookkeeping left to do.
		h.mu.Unlock()
		return true
	}
	delete(h.watches, id)
	for _, q := range w.invariants {
		st := h.cells[q]
		st.refs--
		if st.refs <= 0 {
			delete(h.cells, q)
			for i, oq := range h.order {
				if oq == q {
					h.order = append(h.order[:i], h.order[i+1:]...)
					break
				}
			}
		}
	}
	h.mu.Unlock()
	w.close(reason)
	mWatchesLive.Add(-1)
	return true
}

// Close ends every watch with the given reason (e.g. "session-closed").
// Idempotent; watches stay addressable for draining but new AddWatch calls
// fail with ErrClosed.
func (h *Hub) Close(reason string) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.closeRsn = reason
	ws := make([]*Watch, 0, len(h.watches))
	for _, w := range h.watches {
		ws = append(ws, w)
	}
	h.mu.Unlock()
	for _, w := range ws {
		w.close(reason)
		mWatchesLive.Add(-1)
	}
}

// Watch is one subscription: a bounded event queue fed by the hub.
// Overflow drops the oldest queued event and surfaces the loss as a "gap"
// event ahead of the next drain — a slow consumer sees current state plus
// an honest account of what it missed, never silent loss, and never
// backpressure into the flush path.
type Watch struct {
	id         string
	hub        *Hub
	invariants []string
	queries    map[string]bool

	mu      sync.Mutex
	buf     []WatchEvent
	cap     int
	dropped int64
	closed  bool
	reason  string
	notify  chan struct{}

	// streaming guards the one-consumer-per-watch rule of the SSE/NDJSON
	// transport.
	streaming atomic.Bool
}

// ID returns the watch id ("w1", "w2", ... within its hub).
func (w *Watch) ID() string { return w.id }

// Invariants returns the watched queries in registration order.
func (w *Watch) Invariants() []string {
	return append([]string(nil), w.invariants...)
}

// Info snapshots the watch for listings.
func (w *Watch) Info() WatchInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WatchInfo{
		ID:         w.id,
		Invariants: append([]string(nil), w.invariants...),
		Buffer:     w.cap,
		Pending:    len(w.buf),
		Dropped:    w.dropped,
		Closed:     w.closed,
	}
}

// TryAttach claims the watch's single streaming slot; Detach releases it.
func (w *Watch) TryAttach() bool { return w.streaming.CompareAndSwap(false, true) }

// Detach releases the streaming slot.
func (w *Watch) Detach() { w.streaming.Store(false) }

// push queues one event, evicting the oldest on overflow. Hub-side.
func (w *Watch) push(ev WatchEvent) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if len(w.buf) >= w.cap {
		w.buf = append(w.buf[:0], w.buf[1:]...)
		w.dropped++
		mWatchDropped.Inc()
	}
	w.buf = append(w.buf, ev)
	mWatchEvents.Inc()
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// close marks the watch terminal and queues the close event, evicting an
// older event if the queue is full so the close is never lost.
func (w *Watch) close(reason string) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if len(w.buf) >= w.cap {
		w.buf = append(w.buf[:0], w.buf[1:]...)
		w.dropped++
		mWatchDropped.Inc()
	}
	w.buf = append(w.buf, WatchEvent{Type: "close", Reason: reason})
	w.closed = true
	w.reason = reason
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// drain pops everything queued, prefixing a gap event when the queue
// overflowed since the last drain.
func (w *Watch) drain() ([]WatchEvent, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) == 0 {
		return nil, !w.closed
	}
	var out []WatchEvent
	if w.dropped > 0 {
		out = append(out, WatchEvent{Type: "gap", Dropped: w.dropped})
		w.dropped = 0
	}
	out = append(out, w.buf...)
	w.buf = nil
	open := true
	if len(out) > 0 && out[len(out)-1].Type == "close" {
		open = false
	}
	return out, open
}

// Next waits up to heartbeat (0 = forever) for queued events and returns
// them; nil events with open=true means the wait timed out (the transport
// emits its keep-alive) or ctx ended (check ctx.Err). open=false reports
// the terminal close event was consumed — the stream is over.
func (w *Watch) Next(ctx context.Context, heartbeat time.Duration) ([]WatchEvent, bool) {
	for {
		evs, open := w.drain()
		if len(evs) > 0 || !open {
			return evs, open
		}
		var timer <-chan time.Time
		if heartbeat > 0 {
			t := time.NewTimer(heartbeat)
			defer t.Stop()
			timer = t.C
		}
		select {
		case <-ctx.Done():
			return nil, true
		case <-timer:
			return nil, true
		case <-w.notify:
		}
	}
}
