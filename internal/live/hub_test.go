package live

import (
	"context"
	"errors"
	"testing"
	"time"

	"aalwines/internal/gen"
	"aalwines/internal/scenario"
)

// witnessQuery reaches from the running example's source to sink with no
// failures allowed; failing a link on the only k=0 path flips its verdict.
const witnessQuery = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"

func newHubFixture(t *testing.T) (*scenario.Session, *Hub) {
	t.Helper()
	re := gen.RunningExample()
	sess := scenario.NewSession(re.Network)
	t.Cleanup(sess.Close)
	return sess, NewHub(sess, HubOptions{})
}

func drainAll(t *testing.T, w *Watch) []WatchEvent {
	t.Helper()
	var out []WatchEvent
	for {
		evs, open := w.Next(context.Background(), 5*time.Millisecond)
		out = append(out, evs...)
		if !open || len(evs) == 0 {
			return out
		}
	}
}

func TestHubWatchLifecycle(t *testing.T) {
	sess, hub := newHubFixture(t)
	ctx := context.Background()

	w, err := hub.AddWatch(ctx, []string{witnessQuery}, 0)
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, w)
	if len(evs) != 1 || evs[0].Type != "verdict" || evs[0].Seq != 0 {
		t.Fatalf("initial events = %+v, want one seq-0 verdict", evs)
	}
	initial := *evs[0].Cell
	if initial.Verdict == "" {
		t.Fatal("initial cell has no verdict")
	}

	// An identical refresh pushes nothing.
	if n := hub.Refresh(ctx); n != 0 {
		t.Fatalf("no-op refresh changed %d cells", n)
	}
	if evs := drainAll(t, w); len(evs) != 0 {
		t.Fatalf("no-op refresh produced events: %+v", evs)
	}

	// Failing a link on the witness path changes the cell exactly once.
	if _, err := sess.ApplyText("fail " + initial.Trace[0].Link); err != nil {
		t.Fatal(err)
	}
	if n := hub.Refresh(ctx); n != 1 {
		t.Fatalf("refresh changed %d cells, want 1", n)
	}
	evs = drainAll(t, w)
	// Seq 2: the no-op refresh above was seq 1 (every refresh advances the
	// sequence, changed cells or not).
	if len(evs) != 1 || evs[0].Type != "verdict" || evs[0].Seq != 2 {
		t.Fatalf("post-fail events = %+v", evs)
	}
	if evs[0].Cell.Verdict == initial.Verdict {
		t.Fatal("verdict did not change after failing the witness link")
	}

	// Listings see the watch; closing it delivers a terminal close event.
	ws := hub.Watches()
	if len(ws) != 1 || ws[0].ID != w.ID() {
		t.Fatalf("watch list = %+v", ws)
	}
	if !hub.CloseWatch(w.ID(), "client-request") {
		t.Fatal("CloseWatch did not find the watch")
	}
	evs, open := w.Next(ctx, time.Second)
	if open || len(evs) != 1 || evs[0].Type != "close" || evs[0].Reason != "client-request" {
		t.Fatalf("close events = %+v open=%v", evs, open)
	}
	if hub.CloseWatch(w.ID(), "again") {
		t.Fatal("double close succeeded")
	}
}

func TestHubRejectsBadQuery(t *testing.T) {
	_, hub := newHubFixture(t)
	_, err := hub.AddWatch(context.Background(), []string{"<s40"}, 0)
	var bad *BadQueryError
	if !errors.As(err, &bad) {
		t.Fatalf("err = %v, want BadQueryError", err)
	}
	if _, err := hub.AddWatch(context.Background(), nil, 0); err == nil {
		t.Fatal("watch without invariants accepted")
	}
}

func TestHubCloseEndsWatches(t *testing.T) {
	_, hub := newHubFixture(t)
	w, err := hub.AddWatch(context.Background(), []string{witnessQuery}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hub.Close("session-closed")
	hub.Close("twice") // idempotent
	var last WatchEvent
	for {
		evs, open := w.Next(context.Background(), time.Second)
		if len(evs) > 0 {
			last = evs[len(evs)-1]
		}
		if !open {
			break
		}
	}
	if last.Type != "close" || last.Reason != "session-closed" {
		t.Fatalf("last event = %+v, want session-closed close", last)
	}
	if _, err := hub.AddWatch(context.Background(), []string{witnessQuery}, 0); err != ErrClosed {
		t.Fatalf("AddWatch after close: %v, want ErrClosed", err)
	}
}

func TestWatchBackpressureGap(t *testing.T) {
	_, hub := newHubFixture(t)
	w, err := hub.AddWatch(context.Background(), []string{witnessQuery}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if evs := drainAll(t, w); len(evs) != 1 {
		t.Fatalf("initial = %+v", evs)
	}
	// Push past the buffer without draining: the oldest events fall off and
	// the next drain leads with an honest gap.
	for i := 0; i < 12; i++ {
		c := Cell{Query: witnessQuery, Verdict: "satisfied"}
		w.push(WatchEvent{Type: "verdict", Seq: int64(i + 1), Query: witnessQuery, Cell: &c})
	}
	evs, open := w.Next(context.Background(), time.Second)
	if !open {
		t.Fatal("watch closed unexpectedly")
	}
	if len(evs) != 9 || evs[0].Type != "gap" || evs[0].Dropped != 4 {
		t.Fatalf("drained %d events, first %+v; want gap(4) + 8 verdicts", len(evs), evs[0])
	}
	if evs[1].Seq != 5 || evs[8].Seq != 12 {
		t.Fatalf("kept window = seq %d..%d, want 5..12 (drop-oldest)", evs[1].Seq, evs[8].Seq)
	}

	// The terminal close always fits, evicting an older event if needed.
	for i := 0; i < 8; i++ {
		c := Cell{Query: witnessQuery}
		w.push(WatchEvent{Type: "verdict", Seq: int64(100 + i), Cell: &c})
	}
	w.close("session-closed")
	evs, open = w.Next(context.Background(), time.Second)
	if open {
		t.Fatal("close event not terminal")
	}
	if evs[0].Type != "gap" || evs[len(evs)-1].Type != "close" {
		t.Fatalf("events = %+v, want gap first, close last", evs)
	}
}

// TestCloseWatchDuringAddWatchSeeding is the regression test for the
// AddWatch/CloseWatch race: AddWatch drops h.mu during its seeding
// verification, and a concurrent CloseWatch dropping the last reference to
// an already-tracked query must not delete its cell out from under the
// seeding loop (nil-pointer panic, leaked refs). Run with -race.
func TestCloseWatchDuringAddWatchSeeding(t *testing.T) {
	_, hub := newHubFixture(t)
	ctx := context.Background()
	// Same invariant with a different failure budget: parses fine, is never
	// pre-tracked, and forces the fresh-verification window.
	const other = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 1"
	for i := 0; i < 10; i++ {
		w1, err := hub.AddWatch(ctx, []string{witnessQuery}, 0)
		if err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		go func() {
			defer close(closed)
			hub.CloseWatch(w1.ID(), "client-request")
		}()
		// witnessQuery is tracked via w1; other is fresh, so this AddWatch
		// verifies outside h.mu — the window the CloseWatch above races.
		w2, err := hub.AddWatch(ctx, []string{witnessQuery, other}, 0)
		if err != nil {
			t.Fatal(err)
		}
		<-closed
		verdicts := 0
		for _, ev := range drainAll(t, w2) {
			if ev.Type == "verdict" {
				verdicts++
				if ev.Cell == nil || ev.Cell.Code == "internal-error" {
					t.Fatalf("seeded a lost cell: %+v", ev)
				}
			}
		}
		if verdicts != 2 {
			t.Fatalf("seeded %d verdicts, want 2", verdicts)
		}
		if !hub.CloseWatch(w2.ID(), "client-request") {
			t.Fatal("CloseWatch(w2) did not find the watch")
		}
	}
}

// TestCloseWatchAfterHubClose checks CloseWatch on a closed hub is a
// bookkeeping no-op: Close already settled the live-watch gauge and the
// cell refs, so a racing per-watch close must not decrement them again.
func TestCloseWatchAfterHubClose(t *testing.T) {
	_, hub := newHubFixture(t)
	w, err := hub.AddWatch(context.Background(), []string{witnessQuery}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := mWatchesLive.Value()
	hub.Close("session-closed")
	if got := mWatchesLive.Value(); got != before-1 {
		t.Fatalf("gauge after Close = %d, want %d", got, before-1)
	}
	// The id stays addressable for draining; re-closing reports it existed
	// but must not touch the gauge again.
	if !hub.CloseWatch(w.ID(), "client-request") {
		t.Fatal("CloseWatch on closed hub did not find the watch")
	}
	if got := mWatchesLive.Value(); got != before-1 {
		t.Fatalf("gauge after CloseWatch on closed hub = %d, want %d", got, before-1)
	}
	evs, open := w.Next(context.Background(), time.Second)
	if open || len(evs) == 0 || evs[len(evs)-1].Reason != "session-closed" {
		t.Fatalf("drain after double close = %+v open=%v", evs, open)
	}
}

func TestWatchStreamAttach(t *testing.T) {
	_, hub := newHubFixture(t)
	w, err := hub.AddWatch(context.Background(), []string{witnessQuery}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !w.TryAttach() {
		t.Fatal("first attach refused")
	}
	if w.TryAttach() {
		t.Fatal("second concurrent attach allowed")
	}
	w.Detach()
	if !w.TryAttach() {
		t.Fatal("re-attach after detach refused")
	}
}
