package live

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/scenario"
)

// FuzzLiveFeed replays adversarial feed text through the full live stack —
// parse, coalesce, flush, hub re-verification — on the running example.
// Whatever the feed contained, the run must not panic, must leave a
// consistent session, and the watched cell must end byte-identical to a
// from-scratch verification of the final materialized network.
func FuzzLiveFeed(f *testing.F) {
	f.Add(`{"type":"link-down","link":"v0.oe1#v2.ie1"}` + "\nflush\n" + `{"type":"link-up","link":"v0.oe1#v2.ie1"}`)
	f.Add("fail v2.oe4#v3.ie4\ndrain v2\nflush\nundrain v2")
	f.Add(`{"type":"router-down","router":"v4"}` + "\n" + `{"type":"delta","cmds":["swap-priority v0.oe1#v2.ie1 s40 1 2"]}`)
	f.Add("# comment\n\nnot-a-command\n{bad json}\nflush")
	f.Add(`{"type":"flush"}` + "\n" + `{"type":"link-down","link":"v0.oe2#v1.ie2"}`)

	const q = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 1"

	f.Fuzz(func(t *testing.T, feed string) {
		if len(feed) > 4096 {
			return
		}
		re := gen.RunningExample()
		sess := scenario.NewSession(re.Network)
		defer sess.Close()
		hub := NewHub(sess, HubOptions{})
		w, err := hub.AddWatch(context.Background(), []string{q}, 0)
		if err != nil {
			t.Fatalf("watch on fixed query rejected: %v", err)
		}
		ing := NewIngester(sess, Options{Hub: hub, MaxPending: 8})
		if _, err := ing.Run(context.Background(), strings.NewReader(feed)); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		// Force a final flush so the hub reflects the full desired state
		// even when the feed ended mid-window.
		if _, err := ing.Flush(context.Background()); err != nil {
			t.Fatalf("final flush: %v", err)
		}

		cells := hub.Cells()
		if len(cells) != 1 {
			t.Fatalf("cells = %+v", cells)
		}
		want := freshCell(sess.MaterializeFresh(), q)
		if !bytes.Equal(cells[0].render(), want.render()) {
			t.Fatalf("live cell diverged from fresh verification\n live:  %s\n fresh: %s",
				cells[0].render(), want.render())
		}
		// The watch saw a coherent stream: verdict events only, ending open.
		evs, _ := w.drain()
		for _, ev := range evs {
			if ev.Type != "verdict" && ev.Type != "gap" {
				t.Fatalf("unexpected event %+v", ev)
			}
		}
	})
}
