package moped_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/moped"
	"aalwines/internal/pds"
)

// TestMopedAgreesWithDual: the baseline backend must return the same
// verdicts as the optimised engine on the running example queries.
func TestMopedAgreesWithDual(t *testing.T) {
	re := gen.RunningExample()
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
		"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
		"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
		"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
		"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
	}
	for _, qt := range queries {
		dual, err := engine.VerifyText(re.Network, qt, engine.Options{})
		if err != nil {
			t.Fatalf("%s: dual: %v", qt, err)
		}
		base, err := engine.VerifyText(re.Network, qt, engine.Options{Saturate: moped.Poststar})
		if err != nil {
			t.Fatalf("%s: moped: %v", qt, err)
		}
		if dual.Verdict != base.Verdict {
			t.Errorf("%s: dual=%v moped=%v", qt, dual.Verdict, base.Verdict)
		}
	}
}

func TestMopedRejectsWeighted(t *testing.T) {
	p := pds.New(1, 2)
	a := pds.NewAuto(p)
	if _, err := moped.Poststar(p, a, 1, 0); err == nil {
		t.Fatal("expected error for weighted system")
	}
}

func TestMopedBudget(t *testing.T) {
	re := gen.RunningExample()
	_, err := engine.VerifyText(re.Network, "<ip> [.#v0] .* [v3#.] <ip> 0",
		engine.Options{Saturate: moped.Poststar, Budget: 1})
	if err == nil {
		t.Fatal("expected budget error")
	}
}

// TestFormatRoundTrip: WritePDS then ReadPDS reproduces the rule set.
func TestFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := pds.New(5, 4)
	for i := 0; i < 40; i++ {
		r := pds.Rule{
			FromState: pds.State(rng.Intn(5)),
			FromSym:   pds.Sym(rng.Intn(4)),
			ToState:   pds.State(rng.Intn(5)),
			Kind:      pds.RuleKind(rng.Intn(3)),
		}
		if r.Kind != pds.PopRule {
			r.Sym1 = pds.Sym(rng.Intn(4))
		}
		if r.Kind == pds.PushRule {
			r.Sym2 = pds.Sym(rng.Intn(4))
		}
		p.AddRule(r)
	}
	var buf bytes.Buffer
	if err := moped.WritePDS(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := moped.ReadPDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates != p.NumStates || got.NumSyms != p.NumSyms {
		t.Fatalf("dims: got (%d,%d) want (%d,%d)", got.NumStates, got.NumSyms, p.NumStates, p.NumSyms)
	}
	// Compare as sorted canonical rule lists (the writer sorts; duplicates
	// survive round-tripping).
	want := append([]pds.Rule(nil), p.Rules...)
	pds.SortRulesDeterministic(want)
	have := append([]pds.Rule(nil), got.Rules...)
	pds.SortRulesDeterministic(have)
	if len(want) != len(have) {
		t.Fatalf("rule count: got %d want %d", len(have), len(want))
	}
	for i := range want {
		w, h := want[i], have[i]
		if w.String() != h.String() {
			t.Fatalf("rule %d: got %v want %v", i, h, w)
		}
	}
}

func TestReadPDSErrors(t *testing.T) {
	bad := []string{
		"",
		"p0 g0 --> p1\n",               // rule before header
		"(1)\n",                        // short header
		"(x y)\n",                      // non-numeric header
		"(2 2)\np0 g0 p1\n",            // missing arrow
		"(2 2)\np0 --> p1\n",           // short lhs
		"(2 2)\nq0 g0 --> p1\n",        // bad prefix
		"(2 2)\np0 g0 --> p1 g0 g0 g0", // long rhs
	}
	for _, s := range bad {
		if _, err := moped.ReadPDS(strings.NewReader(s)); err == nil {
			t.Errorf("ReadPDS(%q) succeeded, want error", s)
		}
	}
}

func TestWriteIncludesHeaderAndComment(t *testing.T) {
	p := pds.New(2, 2)
	p.AddRule(pds.Rule{FromState: 0, FromSym: 1, ToState: 1, Kind: pds.PopRule})
	var buf bytes.Buffer
	if err := moped.WritePDS(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(2 2)") || !strings.Contains(out, "p0 g1 --> p1") {
		t.Fatalf("output:\n%s", out)
	}
}
