// Package moped provides the baseline saturation backend standing in for
// the Moped pushdown model checker used in the paper's evaluation (§4.1,
// Table 1). The real Moped is a closed-source C tool; this package plays
// its role at the same interface boundary: an unweighted post* reachability
// engine that is algorithmically correct but deliberately *textbook* —
// string-keyed maps instead of packed indices, per-pop linear scans over
// the rule list instead of head-indexed lookup, and no weight support. The
// performance gap between this backend and the optimised engine in
// internal/pds reproduces the Moped-vs-Dual comparison.
//
// The package also implements a reader and writer for Moped's textual
// pushdown-system format (".pds"), so systems can be exported for external
// tools and re-imported.
package moped

import (
	"fmt"

	"aalwines/internal/nfa"
	"aalwines/internal/pds"
)

// Poststar is a drop-in replacement for pds.PoststarBudget restricted to
// the unweighted case (dim must be 0; the weighted engine has no Moped
// analogue, which is the point of the paper's comparison).
func Poststar(p *pds.PDS, init *pds.Auto, dim int, budget int64) (*pds.Result, error) {
	if dim != 0 {
		return nil, fmt.Errorf("moped: weighted pushdown systems are not supported (dim=%d)", dim)
	}
	if err := init.Validate(); err != nil {
		return nil, err
	}
	a := init

	// String-keyed transition bookkeeping, as a straightforward port of the
	// published pseudocode would do it.
	key := func(t pds.Trans) string { return fmt.Sprintf("%d|%d|%d", t.From, t.Sym, t.To) }
	inQueue := map[string]bool{}
	var queue []pds.Trans
	push := func(t pds.Trans, wit *pds.Witness) {
		if a.Insert(t, nil, wit) {
			k := key(t)
			if !inQueue[k] {
				inQueue[k] = true
				queue = append(queue, t)
			}
		}
	}
	for s := 0; s < a.NumStates(); s++ {
		for _, e := range a.Out(pds.State(s)) {
			t := pds.Trans{From: pds.State(s), Sym: e.Sym, To: e.To}
			k := key(t)
			if !inQueue[k] {
				inQueue[k] = true
				queue = append(queue, t)
			}
		}
	}

	midNames := map[string]pds.State{}
	midOf := func(s pds.State, g pds.Sym) pds.State {
		k := fmt.Sprintf("%d@%d", s, g)
		if m, ok := midNames[k]; ok {
			return m
		}
		m := a.AddState()
		midNames[k] = m
		return m
	}

	epsInto := map[pds.State][]pds.State{}
	epsSeen := map[string]bool{}

	var work int64
	for len(queue) > 0 {
		if work++; budget > 0 && work > budget {
			return nil, pds.ErrBudget
		}
		t := queue[0]
		queue = queue[1:]
		inQueue[key(t)] = false
		e, ok := a.Get(t)
		if !ok {
			continue
		}
		rec := e.Wit

		if t.Sym == pds.Eps {
			if !epsSeen[key(t)] {
				epsSeen[key(t)] = true
				epsInto[t.To] = append(epsInto[t.To], t.From)
			}
			for _, e2 := range a.Out(t.To) {
				if e2.Sym == pds.Eps {
					continue
				}
				nt := pds.Trans{From: t.From, Sym: e2.Sym, To: e2.To}
				push(nt, &pds.Witness{Kind: pds.WitCombine, Rule: -1, T: nt, Pred1: rec, Pred2: e2.Wit})
			}
			continue
		}
		for _, src := range epsInto[t.From] {
			et, ok2 := a.Get(pds.Trans{From: src, Sym: pds.Eps, To: t.From})
			if !ok2 {
				continue
			}
			nt := pds.Trans{From: src, Sym: t.Sym, To: t.To}
			push(nt, &pds.Witness{Kind: pds.WitCombine, Rule: -1, T: nt, Pred1: et.Wit, Pred2: e.Wit})
		}
		if int(t.From) >= p.NumStates {
			continue
		}
		// Deliberate baseline behaviour: scan the whole rule list for
		// matching heads rather than using an index.
		set := a.SymSet(t.Sym)
		for ri := range p.Rules {
			r := &p.Rules[ri]
			if r.FromState != t.From {
				continue
			}
			if set != nil {
				if !set.Has(nfa.Sym(r.FromSym)) {
					continue
				}
			} else if r.FromSym != t.Sym {
				continue
			}
			switch r.Kind {
			case pds.PopRule:
				nt := pds.Trans{From: r.ToState, Sym: pds.Eps, To: t.To}
				push(nt, &pds.Witness{Kind: pds.WitRule, Rule: int32(ri), T: nt, PredSym: r.FromSym, Pred1: rec})
			case pds.SwapRule:
				nt := pds.Trans{From: r.ToState, Sym: r.Sym1, To: t.To}
				push(nt, &pds.Witness{Kind: pds.WitRule, Rule: int32(ri), T: nt, PredSym: r.FromSym, Pred1: rec})
			case pds.PushRule:
				mid := midOf(r.ToState, r.Sym1)
				ta := pds.Trans{From: r.ToState, Sym: r.Sym1, To: mid}
				push(ta, &pds.Witness{Kind: pds.WitRule, Rule: int32(ri), T: ta, PredSym: r.FromSym, Pred1: rec})
				tb := pds.Trans{From: mid, Sym: r.Sym2, To: t.To}
				push(tb, &pds.Witness{Kind: pds.WitPushB, Rule: int32(ri), T: tb, PredSym: r.FromSym, Pred1: rec})
			}
		}
	}
	return &pds.Result{PDS: p, Auto: a, Dim: 0, Mids: map[pds.State][2]uint32{}}, nil
}
