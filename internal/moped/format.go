package moped

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"aalwines/internal/pds"
)

// WritePDS serialises a pushdown system in Moped's textual format:
//
//	(<state> <sym> --> <state'> <w>)
//
// with states written as pN, symbols as gN and w being zero, one or two
// symbols. A header line "(numStates numSyms)" is prepended so the file is
// self-describing for ReadPDS.
func WritePDS(w io.Writer, p *pds.PDS) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# aalwines pds export\n(%d %d)\n", p.NumStates, p.NumSyms); err != nil {
		return err
	}
	rules := append([]pds.Rule(nil), p.Rules...)
	pds.SortRulesDeterministic(rules)
	for _, r := range rules {
		var rhs string
		switch r.Kind {
		case pds.PopRule:
			rhs = ""
		case pds.SwapRule:
			rhs = fmt.Sprintf(" g%d", r.Sym1)
		case pds.PushRule:
			rhs = fmt.Sprintf(" g%d g%d", r.Sym1, r.Sym2)
		}
		if _, err := fmt.Fprintf(bw, "p%d g%d --> p%d%s\n", r.FromState, r.FromSym, r.ToState, rhs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPDS parses the format written by WritePDS.
func ReadPDS(r io.Reader) (*pds.PDS, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var p *pds.PDS
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "(") {
			line = strings.Trim(line, "()")
			parts := strings.Fields(line)
			if len(parts) != 2 {
				return nil, fmt.Errorf("moped: line %d: bad header %q", lineNo, line)
			}
			ns, err1 := strconv.Atoi(parts[0])
			sy, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("moped: line %d: bad header numbers", lineNo)
			}
			p = pds.New(ns, sy)
			continue
		}
		if p == nil {
			return nil, fmt.Errorf("moped: line %d: rule before header", lineNo)
		}
		lhsRHS := strings.SplitN(line, "-->", 2)
		if len(lhsRHS) != 2 {
			return nil, fmt.Errorf("moped: line %d: missing arrow", lineNo)
		}
		lhs := strings.Fields(lhsRHS[0])
		rhs := strings.Fields(lhsRHS[1])
		if len(lhs) != 2 || len(rhs) < 1 || len(rhs) > 3 {
			return nil, fmt.Errorf("moped: line %d: malformed rule", lineNo)
		}
		fs, err := parseID(lhs[0], 'p')
		if err != nil {
			return nil, fmt.Errorf("moped: line %d: %v", lineNo, err)
		}
		fg, err := parseID(lhs[1], 'g')
		if err != nil {
			return nil, fmt.Errorf("moped: line %d: %v", lineNo, err)
		}
		ts, err := parseID(rhs[0], 'p')
		if err != nil {
			return nil, fmt.Errorf("moped: line %d: %v", lineNo, err)
		}
		rule := pds.Rule{
			FromState: pds.State(fs), FromSym: pds.Sym(fg), ToState: pds.State(ts),
		}
		switch len(rhs) {
		case 1:
			rule.Kind = pds.PopRule
		case 2:
			g1, err := parseID(rhs[1], 'g')
			if err != nil {
				return nil, fmt.Errorf("moped: line %d: %v", lineNo, err)
			}
			rule.Kind = pds.SwapRule
			rule.Sym1 = pds.Sym(g1)
		case 3:
			g1, err := parseID(rhs[1], 'g')
			if err != nil {
				return nil, fmt.Errorf("moped: line %d: %v", lineNo, err)
			}
			g2, err := parseID(rhs[2], 'g')
			if err != nil {
				return nil, fmt.Errorf("moped: line %d: %v", lineNo, err)
			}
			rule.Kind = pds.PushRule
			rule.Sym1 = pds.Sym(g1)
			rule.Sym2 = pds.Sym(g2)
		}
		p.AddRule(rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("moped: empty input")
	}
	return p, nil
}

func parseID(tok string, prefix byte) (int, error) {
	if len(tok) < 2 || tok[0] != prefix {
		return 0, fmt.Errorf("expected %c-prefixed id, got %q", prefix, tok)
	}
	return strconv.Atoi(tok[1:])
}
