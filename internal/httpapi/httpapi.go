// Package httpapi exposes the verification engine as a JSON-over-HTTP
// service, playing the role of the backend that serves the AalWiNes web
// GUI (§4 of the paper runs it at demo.aalwines.cs.aau.dk). The API serves
// the loaded networks' topologies (for visualisation) and runs queries:
//
//	GET  /api/networks                  → available networks
//	GET  /api/networks/{name}/topology  → routers (with coordinates) + links
//	POST /api/verify                    → run a query, returns the verdict,
//	                                      witness trace and timings
//	GET  /healthz                       → liveness probe
//
// Networks are immutable after registration, so verification requests run
// concurrently without locking.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"aalwines/internal/cli"
	"aalwines/internal/engine"
	"aalwines/internal/loc"
	"aalwines/internal/moped"
	"aalwines/internal/network"
	"aalwines/internal/weight"
)

// Server is the HTTP API. Register networks before serving; registration
// is not safe concurrently with request handling.
type Server struct {
	mu       sync.RWMutex
	networks map[string]*network.Network
	// MaxBudget caps per-request saturation work (0 = unlimited); requests
	// may lower it but not exceed it.
	MaxBudget int64
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{networks: make(map[string]*network.Network)}
}

// Register adds a network under its name.
func (s *Server) Register(net *network.Network) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.networks[net.Name] = net
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/networks", s.handleList)
	mux.HandleFunc("GET /api/networks/{name}/topology", s.handleTopology)
	mux.HandleFunc("POST /api/verify", s.handleVerify)
	return mux
}

// NetworkInfo summarises one registered network.
type NetworkInfo struct {
	Name    string `json:"name"`
	Routers int    `json:"routers"`
	Links   int    `json:"links"`
	Rules   int    `json:"rules"`
	Labels  int    `json:"labels"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []NetworkInfo
	for _, n := range s.networks {
		out = append(out, NetworkInfo{
			Name: n.Name, Routers: n.Topo.NumRouters(), Links: n.Topo.NumLinks(),
			Rules: n.Routing.NumRules(), Labels: n.Labels.Len(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// TopologyJSON is the GUI-facing topology representation.
type TopologyJSON struct {
	Name    string       `json:"name"`
	Routers []RouterJSON `json:"routers"`
	Links   []LinkJSON   `json:"links"`
}

// RouterJSON is one node.
type RouterJSON struct {
	Name string     `json:"name"`
	Loc  *loc.Point `json:"loc,omitempty"`
}

// LinkJSON is one directed link.
type LinkJSON struct {
	From    string `json:"from"`
	To      string `json:"to"`
	FromIfc string `json:"fromIfc,omitempty"`
	ToIfc   string `json:"toIfc,omitempty"`
	Weight  uint64 `json:"weight,omitempty"`
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	net := s.lookup(r.PathValue("name"))
	if net == nil {
		writeError(w, http.StatusNotFound, "unknown network")
		return
	}
	out := TopologyJSON{Name: net.Name}
	for i := range net.Topo.Routers {
		rt := &net.Topo.Routers[i]
		rj := RouterJSON{Name: rt.Name}
		if rt.HasLoc {
			rj.Loc = &loc.Point{Lat: rt.Lat, Lng: rt.Lng}
		}
		out.Routers = append(out.Routers, rj)
	}
	for i := 0; i < net.Topo.NumLinks(); i++ {
		l := net.Topo.Links[i]
		out.Links = append(out.Links, LinkJSON{
			From:    net.Topo.Routers[l.From].Name,
			To:      net.Topo.Routers[l.To].Name,
			FromIfc: l.FromIfc, ToIfc: l.ToIfc, Weight: l.Weight,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// VerifyRequest is the body of POST /api/verify.
type VerifyRequest struct {
	Network string `json:"network"`
	Query   string `json:"query"`
	// Weight is an optional minimisation vector, e.g.
	// "Hops, Failures + 3*Tunnels".
	Weight string `json:"weight,omitempty"`
	// Engine selects "dual" (default) or "moped".
	Engine string `json:"engine,omitempty"`
	// Budget bounds saturation work; capped by the server's MaxBudget.
	Budget int64 `json:"budget,omitempty"`
	// GeoDistance uses great-circle distances for the Distance quantity.
	GeoDistance bool `json:"geoDistance,omitempty"`
	// NoReductions disables the reduction pass (diagnostics).
	NoReductions bool `json:"noReductions,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	net := s.lookup(req.Network)
	if net == nil {
		writeError(w, http.StatusNotFound, "unknown network "+req.Network)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "empty query")
		return
	}
	opts := engine.Options{NoReductions: req.NoReductions}
	opts.Budget = s.MaxBudget
	if req.Budget > 0 && (s.MaxBudget == 0 || req.Budget < s.MaxBudget) {
		opts.Budget = req.Budget
	}
	if req.Weight != "" {
		spec, err := weight.ParseSpec(req.Weight)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		opts.Spec = spec
	}
	if req.GeoDistance {
		opts.Dist = loc.DistanceFunc(net)
	}
	switch req.Engine {
	case "", "dual":
	case "moped":
		if opts.Spec != nil {
			writeError(w, http.StatusBadRequest, "the moped engine does not support weights")
			return
		}
		opts.Saturate = moped.Poststar
	default:
		writeError(w, http.StatusBadRequest, "unknown engine "+req.Engine)
		return
	}
	start := time.Now()
	res, err := engine.VerifyText(net, req.Query, opts)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if err == engine.ErrBudget || strings.Contains(err.Error(), "budget") {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err.Error())
		return
	}
	out := cli.ToJSON(net, req.Query, res)
	out.TimingMS.Build = res.Stats.BuildTime.Seconds() * 1000
	_ = start
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(name string) *network.Network {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.networks[name]
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorJSON{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
