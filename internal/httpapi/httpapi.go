// Package httpapi exposes the verification engine as a JSON-over-HTTP
// service, playing the role of the backend that serves the AalWiNes web
// GUI (§4 of the paper runs it at demo.aalwines.cs.aau.dk). The API serves
// the loaded networks' topologies (for visualisation) and runs queries:
//
//	GET  /api/networks                  → available networks
//	GET  /api/networks/{name}/topology  → routers (with coordinates) + links
//	POST /api/verify                    → run a query, returns the verdict,
//	                                      witness trace and timings
//	POST /api/verify-batch              → run many queries on a worker pool
//	GET  /healthz                       → liveness probe
//
// Networks are immutable after registration, so verification requests run
// concurrently without locking. Each network gets a batch.Runner whose
// translation cache is shared by all verification requests — repeated
// what-if queries from the GUI skip the pushdown-system construction.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/cli"
	"aalwines/internal/engine"
	"aalwines/internal/loc"
	"aalwines/internal/moped"
	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/weight"
)

// Server is the HTTP API. Register networks before serving; registration
// is not safe concurrently with request handling.
type Server struct {
	mu       sync.RWMutex
	networks map[string]*network.Network
	runners  map[string]*batch.Runner
	// MaxBudget caps per-request saturation work (0 = unlimited); requests
	// may lower it but not exceed it.
	MaxBudget int64
	// Parallel caps the worker pool of a batch request (0 = GOMAXPROCS);
	// requests may ask for fewer workers but not more.
	Parallel int
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		networks: make(map[string]*network.Network),
		runners:  make(map[string]*batch.Runner),
	}
}

// Register adds a network under its name.
func (s *Server) Register(net *network.Network) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.networks[net.Name] = net
	s.runners[net.Name] = batch.NewRunner(net)
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/networks", s.handleList)
	mux.HandleFunc("GET /api/networks/{name}/topology", s.handleTopology)
	mux.HandleFunc("POST /api/verify", s.handleVerify)
	mux.HandleFunc("POST /api/verify-batch", s.handleVerifyBatch)
	// Prometheus text exposition of the process-wide metrics registry:
	// saturation counters, translation-cache effectiveness, batch latency
	// histograms, per-phase engine timings.
	mux.Handle("GET /metrics", obs.Handler(obs.Default))
	return mux
}

// NetworkInfo summarises one registered network.
type NetworkInfo struct {
	Name    string `json:"name"`
	Routers int    `json:"routers"`
	Links   int    `json:"links"`
	Rules   int    `json:"rules"`
	Labels  int    `json:"labels"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []NetworkInfo
	for _, n := range s.networks {
		out = append(out, NetworkInfo{
			Name: n.Name, Routers: n.Topo.NumRouters(), Links: n.Topo.NumLinks(),
			Rules: n.Routing.NumRules(), Labels: n.Labels.Len(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// TopologyJSON is the GUI-facing topology representation.
type TopologyJSON struct {
	Name    string       `json:"name"`
	Routers []RouterJSON `json:"routers"`
	Links   []LinkJSON   `json:"links"`
}

// RouterJSON is one node.
type RouterJSON struct {
	Name string     `json:"name"`
	Loc  *loc.Point `json:"loc,omitempty"`
}

// LinkJSON is one directed link.
type LinkJSON struct {
	From    string `json:"from"`
	To      string `json:"to"`
	FromIfc string `json:"fromIfc,omitempty"`
	ToIfc   string `json:"toIfc,omitempty"`
	Weight  uint64 `json:"weight,omitempty"`
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	net, _ := s.lookup(r.PathValue("name"))
	if net == nil {
		writeError(w, http.StatusNotFound, "unknown network")
		return
	}
	out := TopologyJSON{Name: net.Name}
	for i := range net.Topo.Routers {
		rt := &net.Topo.Routers[i]
		rj := RouterJSON{Name: rt.Name}
		if rt.HasLoc {
			rj.Loc = &loc.Point{Lat: rt.Lat, Lng: rt.Lng}
		}
		out.Routers = append(out.Routers, rj)
	}
	for i := 0; i < net.Topo.NumLinks(); i++ {
		l := net.Topo.Links[i]
		out.Links = append(out.Links, LinkJSON{
			From:    net.Topo.Routers[l.From].Name,
			To:      net.Topo.Routers[l.To].Name,
			FromIfc: l.FromIfc, ToIfc: l.ToIfc, Weight: l.Weight,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// VerifyRequest is the body of POST /api/verify.
type VerifyRequest struct {
	Network string `json:"network"`
	Query   string `json:"query"`
	// Weight is an optional minimisation vector, e.g.
	// "Hops, Failures + 3*Tunnels".
	Weight string `json:"weight,omitempty"`
	// Engine selects "dual" (default) or "moped".
	Engine string `json:"engine,omitempty"`
	// Budget bounds saturation work; capped by the server's MaxBudget.
	Budget int64 `json:"budget,omitempty"`
	// GeoDistance uses great-circle distances for the Distance quantity.
	GeoDistance bool `json:"geoDistance,omitempty"`
	// NoReductions disables the reduction pass (diagnostics).
	NoReductions bool `json:"noReductions,omitempty"`
}

// engineOptions validates the engine-facing request fields shared by the
// single and batch verify endpoints. On failure it writes a 400 and
// returns ok=false.
func (s *Server) engineOptions(w http.ResponseWriter, net *network.Network,
	weightStr, engineName string, budget int64, geo, noReductions bool) (engine.Options, bool) {
	opts := engine.Options{NoReductions: noReductions}
	opts.Budget = s.MaxBudget
	if budget > 0 && (s.MaxBudget == 0 || budget < s.MaxBudget) {
		opts.Budget = budget
	}
	if weightStr != "" {
		spec, err := weight.ParseSpec(weightStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return opts, false
		}
		opts.Spec = spec
	}
	if geo {
		opts.Dist = loc.DistanceFunc(net)
	}
	switch engineName {
	case "", "dual":
	case "moped":
		if opts.Spec != nil {
			writeError(w, http.StatusBadRequest, "the moped engine does not support weights")
			return opts, false
		}
		opts.Saturate = moped.Poststar
	default:
		writeError(w, http.StatusBadRequest, "unknown engine "+engineName)
		return opts, false
	}
	return opts, true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	net, runner := s.lookup(req.Network)
	if net == nil {
		writeError(w, http.StatusNotFound, "unknown network "+req.Network)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "empty query")
		return
	}
	opts, ok := s.engineOptions(w, net, req.Weight, req.Engine, req.Budget, req.GeoDistance, req.NoReductions)
	if !ok {
		return
	}
	// Run through the network's batch runner: the translated pushdown
	// system lands in (or comes from) the shared cache, and a client
	// disconnect cancels the saturation via the request context.
	br := runner.Verify(r.Context(), []string{req.Query}, batch.Options{
		Workers: 1, Engine: opts,
	})[0]
	if br.Err != nil {
		writeVerifyError(w, br.Err, br.Stats)
		return
	}
	writeJSON(w, http.StatusOK, cli.ToJSON(net, req.Query, br.Res))
}

// VerifyBatchRequest is the body of POST /api/verify-batch: one network,
// many queries, shared engine configuration.
type VerifyBatchRequest struct {
	Network string   `json:"network"`
	Queries []string `json:"queries"`
	// Weight, Engine, Budget, GeoDistance and NoReductions act as in
	// VerifyRequest, applied to every query.
	Weight       string `json:"weight,omitempty"`
	Engine       string `json:"engine,omitempty"`
	Budget       int64  `json:"budget,omitempty"`
	GeoDistance  bool   `json:"geoDistance,omitempty"`
	NoReductions bool   `json:"noReductions,omitempty"`
	// Workers asks for a worker pool size; the server's Parallel cap wins.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS is a per-query wall-clock deadline in milliseconds.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
}

// VerifyBatchResponse is the body of a successful batch run. Per-query
// failures (parse errors, budgets, deadlines) appear inline as items with
// an "error" field; the batch itself still returns 200.
type VerifyBatchResponse struct {
	Results   []cli.BatchItemJSON `json:"results"`
	ElapsedMS float64             `json:"elapsedMs"`
}

func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var req VerifyBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	net, runner := s.lookup(req.Network)
	if net == nil {
		writeError(w, http.StatusNotFound, "unknown network "+req.Network)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "no queries")
		return
	}
	opts, ok := s.engineOptions(w, net, req.Weight, req.Engine, req.Budget, req.GeoDistance, req.NoReductions)
	if !ok {
		return
	}
	workers := req.Workers
	if s.Parallel > 0 && (workers <= 0 || workers > s.Parallel) {
		workers = s.Parallel
	}
	start := time.Now()
	results := runner.Verify(r.Context(), req.Queries, batch.Options{
		Workers: workers,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Engine:  opts,
	})
	writeJSON(w, http.StatusOK, VerifyBatchResponse{
		Results:   cli.BatchToJSON(net, results),
		ElapsedMS: time.Since(start).Seconds() * 1000,
	})
}

// errStatus maps a verification error to an HTTP status. An exhausted
// server-side budget is 504 (the server gave up, not the client), an
// expired per-query deadline or a cancelled request is 408, and everything
// else (parse errors etc.) is 422. The mapping keys off cli.ErrorCode so
// both verify routes and the batch item JSON agree on the vocabulary.
func errStatus(err error) int {
	switch cli.ErrorCode(err) {
	case "budget-exhausted":
		return http.StatusGatewayTimeout
	case "deadline-exceeded", "cancelled":
		return http.StatusRequestTimeout
	default:
		if strings.Contains(err.Error(), "budget") {
			return http.StatusGatewayTimeout
		}
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) lookup(name string) (*network.Network, *batch.Runner) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.networks[name], s.runners[name]
}

type errorJSON struct {
	Error string `json:"error"`
	// Code is the machine-readable classification (cli.ErrorCode).
	Code string `json:"code,omitempty"`
	// TimingMS and Sizes carry the partial stats of a failed run (what the
	// engine completed before the budget or deadline hit), when available.
	TimingMS *cli.Timings `json:"timingMs,omitempty"`
	Sizes    *cli.Sizes   `json:"sizes,omitempty"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorJSON{Error: msg})
}

// writeVerifyError writes a verification failure with its machine-readable
// code and the partial stats of the aborted run.
func writeVerifyError(w http.ResponseWriter, err error, st engine.Stats) {
	t, sz := cli.TimingsOf(st), cli.SizesOf(st)
	writeJSON(w, errStatus(err), errorJSON{
		Error:    err.Error(),
		Code:     cli.ErrorCode(err),
		TimingMS: &t,
		Sizes:    &sz,
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
