// Package httpapi exposes the verification engine as a JSON-over-HTTP
// service, playing the role of the backend that serves the AalWiNes web
// GUI (§4 of the paper runs it at demo.aalwines.cs.aau.dk). The API is
// versioned under /api/v1 and serves the loaded networks' topologies (for
// visualisation), runs queries, and hosts scenario sessions for
// incremental what-if analysis:
//
//	GET    /api/v1/networks                    → available networks
//	GET    /api/v1/networks/{name}/topology    → routers (with coordinates) + links
//	POST   /api/v1/networks/{name}/sweep       → resilience sweep: verify invariants
//	                                             across the single/double link failure
//	                                             space (NDJSON progress opt-in)
//	POST   /api/v1/verify                      → run a query, returns the verdict,
//	                                             witness trace and timings
//	POST   /api/v1/verify-batch                → run many queries on a worker pool
//	POST   /api/v1/sessions                    → open a scenario session on a network
//	GET    /api/v1/sessions                    → list open sessions
//	GET    /api/v1/sessions/{id}               → session state (deltas, cache stats)
//	DELETE /api/v1/sessions/{id}               → close a session
//	POST   /api/v1/sessions/{id}/deltas        → apply delta commands (atomic)
//	DELETE /api/v1/sessions/{id}/deltas/{seq}  → undo one delta
//	POST   /api/v1/sessions/{id}/verify        → verify against the session overlay
//	POST   /api/v1/sessions/{id}/verify-batch  → batch-verify against the overlay
//	POST   /api/v1/sessions/{id}/watch         → register invariants for live re-verification
//	GET    /api/v1/sessions/{id}/watch         → list watches
//	DELETE /api/v1/sessions/{id}/watch/{wid}   → close a watch
//	GET    /api/v1/sessions/{id}/watch/{wid}/events → stream verdict changes (SSE;
//	                                             ?format=ndjson for NDJSON)
//	GET    /healthz                            → liveness probe
//	GET    /metrics                            → Prometheus text exposition
//
// The pre-versioning paths (/api/networks, /api/verify, ...) are gone: by
// default they answer 410 with the standard error envelope and a Link
// header naming the successor route. Serving them (with a "Deprecation:
// true" header) can be re-enabled for one more release cycle by setting
// LegacyAPI (aalwinesd -legacy-api).
//
// Every error response, on every route, uses the same JSON envelope
// {code, message, details?, stats?} — code is machine-readable
// ("bad-request", "not-found", "session-not-found", "method-not-allowed",
// "gone", "internal-error", "query-error", "budget-exhausted",
// "deadline-exceeded", "cancelled"), details carries request-specific
// context (e.g. the delta command that failed), and stats carries the
// partial timings/sizes of an aborted verification. That includes routing
// misses: an unknown /api/... path or a wrong method gets the envelope,
// not the Go mux's plain-text page, and a handler panic surfaces as a 500
// "internal-error" envelope rather than an empty reply.
//
// Networks are immutable after registration, so verification requests run
// concurrently without locking. Each network gets a batch.Runner whose
// translation cache is shared by all verification requests; scenario
// sessions additionally maintain an incremental cache that re-translates
// only the rule blocks their deltas touch.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/cli"
	"aalwines/internal/engine"
	"aalwines/internal/live"
	"aalwines/internal/loc"
	"aalwines/internal/moped"
	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/scenario"
	"aalwines/internal/sweep"
	"aalwines/internal/weight"
)

// Server is the HTTP API. Register networks before serving; registration
// is not safe concurrently with request handling.
type Server struct {
	mu       sync.RWMutex
	networks map[string]*network.Network
	runners  map[string]*batch.Runner
	sessions map[string]*sessionEntry
	nextSess int
	// MaxBudget caps per-request saturation work (0 = unlimited); requests
	// may lower it but not exceed it.
	MaxBudget int64
	// Parallel caps the worker pool of a batch request (0 = GOMAXPROCS);
	// requests may ask for fewer workers but not more.
	Parallel int
	// SatJ sets the saturation parallelism of every verification the server
	// runs (engine.Options.SatJ): 0/1 = serial; results are byte-identical
	// either way. Batch requests additionally clamp batch workers × SatJ to
	// GOMAXPROCS inside the batch runner.
	SatJ int
	// MaxSessions caps concurrently open scenario sessions (0 = 64).
	MaxSessions int
	// LegacyAPI re-enables the pre-versioning route aliases (/api/networks,
	// /api/verify, ...). Off by default: the aliases answer 410 Gone with a
	// Link header naming the successor.
	LegacyAPI bool
	// Heartbeat is the keep-alive interval of watch event streams
	// (0 = 15s).
	Heartbeat time.Duration
}

type sessionEntry struct {
	id      string
	netName string
	sess    *scenario.Session
	// hub fans session re-verification out to watch subscriptions.
	hub *live.Hub
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		networks: make(map[string]*network.Network),
		runners:  make(map[string]*batch.Runner),
		sessions: make(map[string]*sessionEntry),
		nextSess: 1,
	}
}

// Register adds a network under its name.
func (s *Server) Register(net *network.Network) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.networks[net.Name] = net
	s.runners[net.Name] = batch.NewRunner(net)
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /api/v1/networks", s.handleList)
	mux.HandleFunc("GET /api/v1/networks/{name}/topology", s.handleTopology)
	mux.HandleFunc("POST /api/v1/networks/{name}/sweep", s.handleSweep)
	mux.HandleFunc("POST /api/v1/verify", s.handleVerify)
	mux.HandleFunc("POST /api/v1/verify-batch", s.handleVerifyBatch)

	mux.HandleFunc("POST /api/v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /api/v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /api/v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("POST /api/v1/sessions/{id}/deltas", s.handleSessionDeltas)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}/deltas/{seq}", s.handleSessionUndo)
	mux.HandleFunc("POST /api/v1/sessions/{id}/verify", s.handleSessionVerify)
	mux.HandleFunc("POST /api/v1/sessions/{id}/verify-batch", s.handleSessionVerifyBatch)

	mux.HandleFunc("POST /api/v1/sessions/{id}/watch", s.handleWatchCreate)
	mux.HandleFunc("GET /api/v1/sessions/{id}/watch", s.handleWatchList)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}/watch/{wid}", s.handleWatchClose)
	mux.HandleFunc("GET /api/v1/sessions/{id}/watch/{wid}/events", s.handleWatchEvents)

	// Pre-versioning aliases: 410 Gone pointing at the successor unless
	// LegacyAPI keeps them serving for one more release cycle.
	legacy := func(pattern, successor string, h http.HandlerFunc) {
		if s.LegacyAPI {
			mux.HandleFunc(pattern, deprecated(successor, h))
		} else {
			// No method in the pattern: every method on the dead path gets
			// the same 410, not a 405.
			_, path, _ := strings.Cut(pattern, " ")
			mux.HandleFunc(path, gone(successor))
		}
	}
	legacy("GET /api/networks", "/api/v1/networks", s.handleList)
	legacy("GET /api/networks/{name}/topology", "/api/v1/networks/{name}/topology", s.handleTopology)
	legacy("POST /api/verify", "/api/v1/verify", s.handleVerify)
	legacy("POST /api/verify-batch", "/api/v1/verify-batch", s.handleVerifyBatch)

	// Prometheus text exposition of the process-wide metrics registry:
	// saturation counters, translation-cache effectiveness, batch latency
	// histograms, per-phase engine timings, scenario session gauges.
	mux.Handle("GET /metrics", obs.Handler(obs.Default))

	// The outermost layer turns the mux's own plain-text 404/405 pages into
	// envelope responses and catches handler panics.
	return withMiddleware(mux)
}

// deprecated wraps a handler for a legacy route alias.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `<`+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// gone answers for a removed legacy route: 410 with the error envelope and
// a Link header naming the successor.
func gone(successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Link", `<`+successor+`>; rel="successor-version"`)
		writeErrorDetails(w, http.StatusGone, "gone",
			"this unversioned route has been removed; use "+successor,
			map[string]string{"successor": successor})
	}
}

// ErrorEnvelope is the single error shape every route returns.
type ErrorEnvelope struct {
	// Code is the machine-readable classification: "bad-request",
	// "not-found", or a verification code from cli.ErrorCode
	// ("query-error", "budget-exhausted", "deadline-exceeded",
	// "cancelled").
	Code string `json:"code"`
	// Message is the human-readable error.
	Message string `json:"message"`
	// Details carries request-specific context, e.g. the offending delta
	// command or the unknown network name.
	Details map[string]string `json:"details,omitempty"`
	// Stats carries the partial timings/sizes of an aborted verification.
	Stats *ErrorStats `json:"stats,omitempty"`
}

// ErrorStats is the stats member of the error envelope.
type ErrorStats struct {
	TimingMS cli.Timings `json:"timingMs"`
	Sizes    cli.Sizes   `json:"sizes"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Code: code, Message: msg})
}

func writeErrorDetails(w http.ResponseWriter, status int, code, msg string, details map[string]string) {
	writeJSON(w, status, ErrorEnvelope{Code: code, Message: msg, Details: details})
}

// writeVerifyError writes a verification failure with its machine-readable
// code and the partial stats of the aborted run.
func writeVerifyError(w http.ResponseWriter, err error, st engine.Stats) {
	writeJSON(w, errStatus(err), ErrorEnvelope{
		Code:    cli.ErrorCode(err),
		Message: err.Error(),
		Stats:   &ErrorStats{TimingMS: cli.TimingsOf(st), Sizes: cli.SizesOf(st)},
	})
}

// NetworkInfo summarises one registered network.
type NetworkInfo struct {
	Name    string `json:"name"`
	Routers int    `json:"routers"`
	Links   int    `json:"links"`
	Rules   int    `json:"rules"`
	Labels  int    `json:"labels"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []NetworkInfo
	for _, n := range s.networks {
		out = append(out, NetworkInfo{
			Name: n.Name, Routers: n.Topo.NumRouters(), Links: n.Topo.NumLinks(),
			Rules: n.Routing.NumRules(), Labels: n.Labels.Len(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// TopologyJSON is the GUI-facing topology representation.
type TopologyJSON struct {
	Name    string       `json:"name"`
	Routers []RouterJSON `json:"routers"`
	Links   []LinkJSON   `json:"links"`
}

// RouterJSON is one node.
type RouterJSON struct {
	Name string     `json:"name"`
	Loc  *loc.Point `json:"loc,omitempty"`
}

// LinkJSON is one directed link.
type LinkJSON struct {
	From    string `json:"from"`
	To      string `json:"to"`
	FromIfc string `json:"fromIfc,omitempty"`
	ToIfc   string `json:"toIfc,omitempty"`
	Weight  uint64 `json:"weight,omitempty"`
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	net, _ := s.lookup(r.PathValue("name"))
	if net == nil {
		writeErrorDetails(w, http.StatusNotFound, "not-found", "unknown network",
			map[string]string{"network": r.PathValue("name")})
		return
	}
	out := TopologyJSON{Name: net.Name}
	for i := range net.Topo.Routers {
		rt := &net.Topo.Routers[i]
		rj := RouterJSON{Name: rt.Name}
		if rt.HasLoc {
			rj.Loc = &loc.Point{Lat: rt.Lat, Lng: rt.Lng}
		}
		out.Routers = append(out.Routers, rj)
	}
	for i := 0; i < net.Topo.NumLinks(); i++ {
		l := net.Topo.Links[i]
		out.Links = append(out.Links, LinkJSON{
			From:    net.Topo.Routers[l.From].Name,
			To:      net.Topo.Routers[l.To].Name,
			FromIfc: l.FromIfc, ToIfc: l.ToIfc, Weight: l.Weight,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// VerifyRequest is the body of POST /api/v1/verify. Session verify bodies
// are the same minus the network field (ignored there).
type VerifyRequest struct {
	Network string `json:"network"`
	Query   string `json:"query"`
	// Weight is an optional minimisation vector, e.g.
	// "Hops, Failures + 3*Tunnels".
	Weight string `json:"weight,omitempty"`
	// Engine selects "dual" (default) or "moped".
	Engine string `json:"engine,omitempty"`
	// Budget bounds saturation work; capped by the server's MaxBudget.
	Budget int64 `json:"budget,omitempty"`
	// GeoDistance uses great-circle distances for the Distance quantity.
	GeoDistance bool `json:"geoDistance,omitempty"`
	// NoReductions disables the reduction pass (diagnostics).
	NoReductions bool `json:"noReductions,omitempty"`
}

// engineOptions validates the engine-facing request fields shared by the
// single and batch verify endpoints. On failure it writes a 400 envelope
// and returns ok=false.
func (s *Server) engineOptions(w http.ResponseWriter, net *network.Network,
	weightStr, engineName string, budget int64, geo, noReductions bool) (engine.Options, bool) {
	opts := engine.Options{NoReductions: noReductions, SatJ: s.SatJ}
	opts.Budget = s.MaxBudget
	if budget > 0 && (s.MaxBudget == 0 || budget < s.MaxBudget) {
		opts.Budget = budget
	}
	if weightStr != "" {
		spec, err := weight.ParseSpec(weightStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
			return opts, false
		}
		opts.Spec = spec
	}
	if geo {
		opts.Dist = loc.DistanceFunc(net)
	}
	switch engineName {
	case "", "dual":
	case "moped":
		if opts.Spec != nil {
			writeError(w, http.StatusBadRequest, "bad-request", "the moped engine does not support weights")
			return opts, false
		}
		opts.Saturate = moped.Poststar
	default:
		writeError(w, http.StatusBadRequest, "bad-request", "unknown engine "+engineName)
		return opts, false
	}
	return opts, true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	net, runner := s.lookup(req.Network)
	if net == nil {
		writeErrorDetails(w, http.StatusNotFound, "not-found", "unknown network "+req.Network,
			map[string]string{"network": req.Network})
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "bad-request", "empty query")
		return
	}
	opts, ok := s.engineOptions(w, net, req.Weight, req.Engine, req.Budget, req.GeoDistance, req.NoReductions)
	if !ok {
		return
	}
	// Run through the network's batch runner: the translated pushdown
	// system lands in (or comes from) the shared cache, and a client
	// disconnect cancels the saturation via the request context.
	br := runner.Verify(r.Context(), []string{req.Query}, batch.Options{
		Workers: 1, Engine: opts,
	})[0]
	if br.Err != nil {
		writeVerifyError(w, br.Err, br.Stats)
		return
	}
	writeJSON(w, http.StatusOK, cli.ToJSON(net, req.Query, br.Res))
}

// VerifyBatchRequest is the body of POST /api/v1/verify-batch: one
// network, many queries, shared engine configuration.
type VerifyBatchRequest struct {
	Network string   `json:"network"`
	Queries []string `json:"queries"`
	// Weight, Engine, Budget, GeoDistance and NoReductions act as in
	// VerifyRequest, applied to every query.
	Weight       string `json:"weight,omitempty"`
	Engine       string `json:"engine,omitempty"`
	Budget       int64  `json:"budget,omitempty"`
	GeoDistance  bool   `json:"geoDistance,omitempty"`
	NoReductions bool   `json:"noReductions,omitempty"`
	// Workers asks for a worker pool size; the server's Parallel cap wins.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS is a per-query wall-clock deadline in milliseconds.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
}

// VerifyBatchResponse is the body of a successful batch run. Per-query
// failures (parse errors, budgets, deadlines) appear inline as items with
// an "error" field; the batch itself still returns 200.
type VerifyBatchResponse struct {
	Results   []cli.BatchItemJSON `json:"results"`
	ElapsedMS float64             `json:"elapsedMs"`
}

func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var req VerifyBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	net, runner := s.lookup(req.Network)
	if net == nil {
		writeErrorDetails(w, http.StatusNotFound, "not-found", "unknown network "+req.Network,
			map[string]string{"network": req.Network})
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "bad-request", "no queries")
		return
	}
	opts, ok := s.engineOptions(w, net, req.Weight, req.Engine, req.Budget, req.GeoDistance, req.NoReductions)
	if !ok {
		return
	}
	start := time.Now()
	results := runner.Verify(r.Context(), req.Queries, batch.Options{
		Workers: s.clampWorkers(req.Workers),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Engine:  opts,
	})
	writeJSON(w, http.StatusOK, VerifyBatchResponse{
		Results:   cli.BatchToJSON(net, results),
		ElapsedMS: time.Since(start).Seconds() * 1000,
	})
}

// SweepRequest is the body of POST /api/v1/networks/{name}/sweep.
type SweepRequest struct {
	// Depth selects the failure space: 1 (default) = single links, 2 =
	// singles plus all unordered pairs.
	Depth int `json:"depth,omitempty"`
	// Invariants are the queries verified in every failure scenario.
	Invariants []string `json:"invariants"`
	// Weight, Engine, Budget, GeoDistance and NoReductions act as in
	// VerifyRequest, applied to every cell.
	Weight       string `json:"weight,omitempty"`
	Engine       string `json:"engine,omitempty"`
	Budget       int64  `json:"budget,omitempty"`
	GeoDistance  bool   `json:"geoDistance,omitempty"`
	NoReductions bool   `json:"noReductions,omitempty"`
	// Workers asks for a scenario-level pool size; the server's Parallel
	// cap wins.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS is a per-cell wall-clock deadline in milliseconds.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// IncludeCells embeds the full per-cell matrix in the report.
	IncludeCells bool `json:"includeCells,omitempty"`
	// Stream switches the response to NDJSON: one {"cell": ...} line per
	// completed cell as it lands, then a final {"report": ...} line.
	Stream bool `json:"stream,omitempty"`
	// NoCache disables cross-scenario translation reuse (diagnostics).
	NoCache bool `json:"noCache,omitempty"`
}

// SweepStreamEvent is one NDJSON line of a streaming sweep response:
// exactly one of Cell or Report is set.
type SweepStreamEvent struct {
	Cell   *sweep.CellJSON `json:"cell,omitempty"`
	Report *sweep.Report   `json:"report,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	net, _ := s.lookup(r.PathValue("name"))
	if net == nil {
		writeErrorDetails(w, http.StatusNotFound, "not-found", "unknown network "+r.PathValue("name"),
			map[string]string{"network": r.PathValue("name")})
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	if len(req.Invariants) == 0 {
		writeError(w, http.StatusBadRequest, "bad-request", "no invariants")
		return
	}
	opts, ok := s.engineOptions(w, net, req.Weight, req.Engine, req.Budget, req.GeoDistance, req.NoReductions)
	if !ok {
		return
	}
	depth := req.Depth
	if depth == 0 {
		depth = 1
	}
	cfg := sweep.Config{
		Depth:        depth,
		Invariants:   req.Invariants,
		Workers:      s.clampWorkers(req.Workers),
		Engine:       opts,
		Timeout:      time.Duration(req.TimeoutMS) * time.Millisecond,
		NoCache:      req.NoCache,
		IncludeCells: req.IncludeCells,
	}

	// Streaming: the success header is written lazily on the first cell.
	// sweep.Run validates its whole configuration before scheduling any
	// work, so every config error still gets a proper JSON error envelope;
	// cancellation mid-stream just ends with a report marked incomplete.
	var started bool
	if req.Stream {
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		start := func() {
			if !started {
				started = true
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
			}
		}
		cfg.OnCell = func(c sweep.CellResult) {
			start()
			cj := c.JSON(net.Topo)
			_ = enc.Encode(SweepStreamEvent{Cell: &cj})
			if flusher != nil {
				flusher.Flush()
			}
		}
		res, err := sweep.Run(r.Context(), net, cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
		start()
		_ = enc.Encode(SweepStreamEvent{Report: &res.Report})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}

	res, err := sweep.Run(r.Context(), net, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res.Report)
}

func (s *Server) clampWorkers(workers int) int {
	if s.Parallel > 0 && (workers <= 0 || workers > s.Parallel) {
		return s.Parallel
	}
	return workers
}

// --- Scenario sessions -------------------------------------------------

// SessionCreateRequest is the body of POST /api/v1/sessions.
type SessionCreateRequest struct {
	Network string `json:"network"`
	// Deltas optionally applies an initial command stack atomically with
	// creation.
	Deltas []string `json:"deltas,omitempty"`
}

// SessionJSON describes one scenario session.
type SessionJSON struct {
	ID      string `json:"id"`
	Network string `json:"network"`
	// Fingerprint identifies the delta stack; translations are cached
	// under it.
	Fingerprint string                  `json:"fingerprint"`
	Deltas      []scenario.AppliedDelta `json:"deltas"`
	Cache       *SessionCacheStatsJSON  `json:"cache,omitempty"`
}

// SessionCacheStatsJSON reports a session's translation reuse.
type SessionCacheStatsJSON struct {
	Gets          int64 `json:"gets"`
	Hits          int64 `json:"hits"`
	BlocksReused  int   `json:"blocksReused"`
	BlocksRebuilt int   `json:"blocksRebuilt"`
}

func sessionJSON(e *sessionEntry, withStats bool) SessionJSON {
	out := SessionJSON{
		ID:          e.id,
		Network:     e.netName,
		Fingerprint: fmt.Sprintf("%016x", e.sess.Fingerprint()),
		Deltas:      e.sess.Deltas(),
	}
	if out.Deltas == nil {
		out.Deltas = []scenario.AppliedDelta{}
	}
	if withStats {
		cs, bs := e.sess.CacheStats(), e.sess.BlockStats()
		out.Cache = &SessionCacheStatsJSON{
			Gets: cs.Gets, Hits: cs.Hits,
			BlocksReused: bs.BlocksReused, BlocksRebuilt: bs.BlocksRebuilt,
		}
	}
	return out
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	net, _ := s.lookup(req.Network)
	if net == nil {
		writeErrorDetails(w, http.StatusNotFound, "not-found", "unknown network "+req.Network,
			map[string]string{"network": req.Network})
		return
	}
	maxSess := s.MaxSessions
	if maxSess == 0 {
		maxSess = 64
	}
	sess := scenario.NewSession(net)
	if _, err := sess.ApplyAllText(req.Deltas); err != nil {
		sess.Close()
		writeApplyError(w, err, req.Deltas)
		return
	}
	s.mu.Lock()
	if len(s.sessions) >= maxSess {
		s.mu.Unlock()
		sess.Close()
		writeError(w, http.StatusTooManyRequests, "bad-request",
			fmt.Sprintf("session limit reached (%d open)", maxSess))
		return
	}
	e := &sessionEntry{
		id:      fmt.Sprintf("s%d", s.nextSess),
		netName: req.Network,
		sess:    sess,
		hub:     s.newHub(sess),
	}
	s.nextSess++
	s.sessions[e.id] = e
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sessionJSON(e, false))
}

func (s *Server) handleSessionList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]SessionJSON, 0, len(entries))
	for _, e := range entries {
		out = append(out, sessionJSON(e, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// newHub builds the watch hub of a session, verifying with the server's
// engine defaults.
func (s *Server) newHub(sess *scenario.Session) *live.Hub {
	return live.NewHub(sess, live.HubOptions{
		Engine:  engine.Options{SatJ: s.SatJ, Budget: s.MaxBudget},
		Workers: s.Parallel,
	})
}

// lookupSession fetches a session entry, writing a 404 envelope when the
// id is unknown — or known but already closed: a session torn down
// concurrently with a request must answer exactly like one that never
// existed, not serve a half-dead object.
func (s *Server) lookupSession(w http.ResponseWriter, id string) *sessionEntry {
	s.mu.RLock()
	e := s.sessions[id]
	s.mu.RUnlock()
	if e == nil || e.sess.Closed() {
		writeErrorDetails(w, http.StatusNotFound, "session-not-found", "unknown session "+id,
			map[string]string{"session": id})
		return nil
	}
	return e
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	writeJSON(w, http.StatusOK, sessionJSON(e, true))
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if e == nil {
		writeErrorDetails(w, http.StatusNotFound, "session-not-found", "unknown session "+id,
			map[string]string{"session": id})
		return
	}
	// Watches are told honestly before the session dies under them; the
	// close event is the last thing their streams deliver.
	e.hub.Close("session-closed")
	e.sess.Close()
	w.WriteHeader(http.StatusNoContent)
}

// SessionDeltasRequest is the body of POST /api/v1/sessions/{id}/deltas:
// one or more delta commands, applied atomically (all or none).
type SessionDeltasRequest struct {
	Commands []string `json:"commands"`
}

// SessionDeltasResponse reports the applied commands and the resulting
// session state.
type SessionDeltasResponse struct {
	Applied []scenario.AppliedDelta `json:"applied"`
	Session SessionJSON             `json:"session"`
}

// writeApplyError writes the 422 envelope for a failed atomic delta batch,
// with the offending command and its batch index in the details.
func writeApplyError(w http.ResponseWriter, err error, cmds []string) {
	msg := err.Error()
	var details map[string]string
	var ae *scenario.ApplyError
	if errors.As(err, &ae) {
		msg = ae.Err.Error()
		details = map[string]string{"index": strconv.Itoa(ae.Index)}
		if ae.Index < len(cmds) {
			details["command"] = cmds[ae.Index]
		} else {
			details["command"] = ae.Cmd
		}
	}
	writeErrorDetails(w, http.StatusUnprocessableEntity, "bad-request", msg, details)
}

func (s *Server) handleSessionDeltas(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	var req SessionDeltasRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	if len(req.Commands) == 0 {
		writeError(w, http.StatusBadRequest, "bad-request", "no delta commands")
		return
	}
	// Atomic by construction: ApplyAllText validates every command before
	// pushing any, and pushes all of them under one session lock — no
	// rollback window a concurrent request could observe.
	seqs, err := e.sess.ApplyAllText(req.Commands)
	if err != nil {
		writeApplyError(w, err, req.Commands)
		return
	}
	// Watched invariants re-verify before the mutation response returns, so
	// a client that applies a delta and then reads its watch stream sees
	// the transition already delivered. Detached from the request context:
	// the mutator disconnecting must not cancel re-verification and push
	// spurious "cancelled" cells to every other watcher.
	e.hub.Refresh(context.WithoutCancel(r.Context()))
	all := e.sess.Deltas()
	applied := make([]scenario.AppliedDelta, 0, len(seqs))
	for _, ad := range all {
		for _, seq := range seqs {
			if ad.Seq == seq {
				applied = append(applied, ad)
			}
		}
	}
	writeJSON(w, http.StatusOK, SessionDeltasResponse{
		Applied: applied,
		Session: sessionJSON(e, false),
	})
}

func (s *Server) handleSessionUndo(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "bad delta sequence number "+r.PathValue("seq"))
		return
	}
	if err := e.sess.Undo(seq); err != nil {
		writeErrorDetails(w, http.StatusNotFound, "not-found", err.Error(),
			map[string]string{"seq": strconv.Itoa(seq)})
		return
	}
	// Detached like handleSessionDeltas: one client's disconnect must not
	// poison other subscribers' streams with cancelled cells.
	e.hub.Refresh(context.WithoutCancel(r.Context()))
	writeJSON(w, http.StatusOK, sessionJSON(e, false))
}

func (s *Server) handleSessionVerify(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	var req VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "bad-request", "empty query")
		return
	}
	// Engine options only read topology and locations, which every overlay
	// shares with the base; the overlay actually verified comes back from
	// VerifySnapshot so the response is rendered from the same network the
	// run was pinned to, even if a delta lands concurrently.
	opts, ok := s.engineOptions(w, e.sess.Base(), req.Weight, req.Engine, req.Budget, req.GeoDistance, req.NoReductions)
	if !ok {
		return
	}
	res, overlay, err := e.sess.VerifySnapshot(r.Context(), req.Query, opts)
	if err != nil {
		writeVerifyError(w, err, res.Stats)
		return
	}
	writeJSON(w, http.StatusOK, cli.ToJSON(overlay, req.Query, res))
}

func (s *Server) handleSessionVerifyBatch(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	var req VerifyBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "bad-request", "no queries")
		return
	}
	// As in handleSessionVerify: options from the shared topology, response
	// rendered from the overlay the batch was actually pinned to.
	opts, ok := s.engineOptions(w, e.sess.Base(), req.Weight, req.Engine, req.Budget, req.GeoDistance, req.NoReductions)
	if !ok {
		return
	}
	start := time.Now()
	results, overlay := e.sess.VerifyBatchSnapshot(r.Context(), req.Queries, batch.Options{
		Workers: s.clampWorkers(req.Workers),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Engine:  opts,
	})
	writeJSON(w, http.StatusOK, VerifyBatchResponse{
		Results:   cli.BatchToJSON(overlay, results),
		ElapsedMS: time.Since(start).Seconds() * 1000,
	})
}

// errStatus maps a verification error to an HTTP status. An exhausted
// server-side budget is 504 (the server gave up, not the client), an
// expired per-query deadline or a cancelled request is 408, and everything
// else (parse errors etc.) is 422. The mapping keys off cli.ErrorCode so
// both verify routes and the batch item JSON agree on the vocabulary.
func errStatus(err error) int {
	switch cli.ErrorCode(err) {
	case "budget-exhausted":
		return http.StatusGatewayTimeout
	case "deadline-exceeded", "cancelled":
		return http.StatusRequestTimeout
	default:
		if strings.Contains(err.Error(), "budget") {
			return http.StatusGatewayTimeout
		}
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) lookup(name string) (*network.Network, *batch.Runner) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.networks[name], s.runners[name]
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
