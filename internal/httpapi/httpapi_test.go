package httpapi_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"aalwines/internal/cli"
	"aalwines/internal/gen"
	"aalwines/internal/httpapi"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.Register(gen.Zoo(gen.ZooOpts{Routers: 16, Seed: 1, Protection: true}).Net)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestListNetworks(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/networks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []httpapi.NetworkInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("networks = %d, want 2", len(infos))
	}
	if infos[0].Name > infos[1].Name {
		t.Error("not sorted")
	}
	for _, in := range infos {
		if in.Rules == 0 || in.Routers == 0 {
			t.Errorf("empty info: %+v", in)
		}
	}
}

func TestTopology(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/networks/running-example/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var topo httpapi.TopologyJSON
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Routers) != 7 || len(topo.Links) != 8 {
		t.Fatalf("topology: %d routers %d links", len(topo.Routers), len(topo.Links))
	}
	// Unknown network → 404 JSON error.
	resp2, err := http.Get(ts.URL + "/api/networks/ghost/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp2.StatusCode)
	}
}

func postVerify(t *testing.T, ts *httptest.Server, req httpapi.VerifyRequest) (*http.Response, cli.ResultJSON) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out cli.ResultJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestVerifyEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postVerify(t, ts, httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Verdict != "satisfied" || len(out.Trace) != 4 {
		t.Fatalf("result = %+v", out)
	}
}

func TestVerifyWeighted(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postVerify(t, ts, httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
		Weight:  "Hops, Failures + 3*Tunnels",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Weight) != 2 || out.Weight[0] != 5 || out.Weight[1] != 0 {
		t.Fatalf("weight = %v, want [5 0]", out.Weight)
	}
}

func TestVerifyMopedEngine(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postVerify(t, ts, httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
		Engine:  "moped",
	})
	if resp.StatusCode != http.StatusOK || out.Verdict != "satisfied" {
		t.Fatalf("status=%d result=%+v", resp.StatusCode, out)
	}
}

func TestVerifyErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		req    httpapi.VerifyRequest
		status int
	}{
		{httpapi.VerifyRequest{Network: "ghost", Query: "<ip> .* <ip> 0"}, http.StatusNotFound},
		{httpapi.VerifyRequest{Network: "running-example"}, http.StatusBadRequest},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<bogus> .* <ip> 0"}, http.StatusUnprocessableEntity},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<ip> .* <ip> 0", Weight: "frobs"}, http.StatusBadRequest},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<ip> .* <ip> 0", Engine: "z3"}, http.StatusBadRequest},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<ip> .* <ip> 0", Engine: "moped", Weight: "Hops"}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, _ := postVerify(t, ts, c.req)
		if resp.StatusCode != c.status {
			t.Errorf("case %d: status = %d, want %d", i, resp.StatusCode, c.status)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/api/verify", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d", resp.StatusCode)
	}
}

func TestVerifyBudgetCap(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.MaxBudget = 1 // absurdly small: every query times out
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
		Budget:  1_000_000, // request may not raise the cap
	})
	resp, err := http.Post(ts.URL+"/api/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	var e struct {
		Error    string       `json:"error"`
		Code     string       `json:"code"`
		TimingMS *cli.Timings `json:"timingMs"`
		Sizes    *cli.Sizes   `json:"sizes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "budget-exhausted" {
		t.Errorf("code = %q, want budget-exhausted", e.Code)
	}
	// Partial stats: the build phase completed before saturation gave up.
	if e.TimingMS == nil || e.Sizes == nil {
		t.Fatal("error body missing partial stats")
	}
	if e.Sizes.OverRules == 0 {
		t.Errorf("partial stats lost the rule count: %+v", e.Sizes)
	}
}

// TestVerifyBatchBudgetCode checks that a budget-exhausted query inside a
// batch carries the same machine-readable code (and its partial stats) as
// the single-verify route's 504, even though the batch itself returns 200.
func TestVerifyBatchBudgetCode(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.MaxBudget = 1
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, out := postBatch(t, ts, httpapi.VerifyBatchRequest{
		Network: "running-example",
		Queries: []string{"<ip> [.#v0] .* [v3#.] <ip> 0"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	item := out.Results[0]
	if item.Error == "" || item.Code != "budget-exhausted" {
		t.Fatalf("item = %+v, want budget-exhausted error", item)
	}
	if item.Sizes.OverRules == 0 {
		t.Errorf("batch error item lost partial stats: %+v", item.Sizes)
	}
}

// TestMetricsEndpoint drives a batch through the API and checks that
// GET /metrics exposes non-zero saturation, cache and latency metrics in
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	postBatch(t, ts, httpapi.VerifyBatchRequest{
		Network: "running-example",
		Queries: []string{
			"<ip> [.#v0] .* [v3#.] <ip> 0",
			"<ip> [.#v0] .* [v3#.] <ip> 0", // repeat → cache hit
		},
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"pds_worklist_pops_total{alg=\"poststar\"}",
		"pds_early_accept_total",
		"pds_index_probes_total{alg=\"poststar\"}",
		"pds_pool_hits_total",
		"pds_pool_misses_total",
		"engine_early_accept_fallback_total",
		"translate_cache_gets_total{network=\"running-example\"}",
		"batch_query_seconds_count",
		"engine_phase_seconds_bucket{phase=\"build\",le=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The registry is process-global and other tests contribute, but this
	// batch alone guarantees non-zero pops and cache gets.
	if strings.Contains(body, "pds_worklist_pops_total{alg=\"poststar\"} 0\n") {
		t.Error("poststar pops counter is zero after a batch")
	}
}

func postBatch(t *testing.T, ts *httptest.Server, req httpapi.VerifyBatchRequest) (*http.Response, httpapi.VerifyBatchResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/verify-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out httpapi.VerifyBatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestVerifyBatchEndpoint runs a batch over the running example and checks
// order, verdict agreement with the single endpoint and inline per-query
// errors.
func TestVerifyBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
		"<ip> [.#no-such-router] .* <ip> 0", // parse error, isolated
		"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
	}
	resp, out := postBatch(t, ts, httpapi.VerifyBatchRequest{
		Network: "running-example", Queries: queries, Workers: 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Results) != len(queries) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(queries))
	}
	for i, item := range out.Results {
		if item.Query != queries[i] {
			t.Errorf("result %d out of order: %q", i, item.Query)
		}
		if i == 2 {
			if item.Error == "" {
				t.Error("malformed query reported no error")
			}
			continue
		}
		if item.Error != "" {
			t.Fatalf("%q: %s", item.Query, item.Error)
		}
		_, single := postVerify(t, ts, httpapi.VerifyRequest{
			Network: "running-example", Query: queries[i],
		})
		if item.Verdict != single.Verdict {
			t.Errorf("%q: batch verdict %q, single %q", item.Query, item.Verdict, single.Verdict)
		}
	}
}

func TestVerifyBatchErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		req    httpapi.VerifyBatchRequest
		status int
	}{
		{httpapi.VerifyBatchRequest{Network: "ghost", Queries: []string{"<ip> .* <ip> 0"}}, http.StatusNotFound},
		{httpapi.VerifyBatchRequest{Network: "running-example"}, http.StatusBadRequest},
		{httpapi.VerifyBatchRequest{Network: "running-example", Queries: []string{"<ip> .* <ip> 0"}, Engine: "z3"}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, _ := postBatch(t, ts, c.req)
		if resp.StatusCode != c.status {
			t.Errorf("case %d: status = %d, want %d", i, resp.StatusCode, c.status)
		}
	}
}

// TestConcurrentBatch fires overlapping batch requests (and a worker cap)
// at one server; under -race this stresses the per-network runner sharing.
func TestConcurrentBatch(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.Parallel = 2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
		"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
	}
	const calls = 6
	out := make([]httpapi.VerifyBatchResponse, calls)
	var wg sync.WaitGroup
	for c := 0; c < calls; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.VerifyBatchRequest{
				Network: "running-example", Queries: queries, Workers: 8,
			})
			resp, err := http.Post(ts.URL+"/api/verify-batch", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&out[c]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for c := 1; c < calls; c++ {
		for i := range queries {
			a, b := out[c].Results[i], out[0].Results[i]
			if a.Verdict != b.Verdict || a.Error != b.Error {
				t.Errorf("call %d query %d: %q/%q differs from %q/%q",
					c, i, a.Verdict, a.Error, b.Verdict, b.Error)
			}
		}
	}
}

// TestConcurrentVerify exercises the read-only concurrency contract.
func TestConcurrentVerify(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.VerifyRequest{
				Network: "running-example",
				Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
			})
			resp, err := http.Post(ts.URL+"/api/verify", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- resp.Status
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
