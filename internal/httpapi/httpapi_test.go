package httpapi_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"aalwines/internal/cli"
	"aalwines/internal/gen"
	"aalwines/internal/httpapi"
	"aalwines/internal/sweep"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.Register(gen.Zoo(gen.ZooOpts{Routers: 16, Seed: 1, Protection: true}).Net)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestListNetworks(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if d := resp.Header.Get("Deprecation"); d != "" {
		t.Errorf("v1 route carries Deprecation header %q", d)
	}
	var infos []httpapi.NetworkInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("networks = %d, want 2", len(infos))
	}
	if infos[0].Name > infos[1].Name {
		t.Error("not sorted")
	}
	for _, in := range infos {
		if in.Rules == 0 || in.Routers == 0 {
			t.Errorf("empty info: %+v", in)
		}
	}
}

// TestDeprecatedAliases checks the legacy unversioned routes — when
// re-enabled with LegacyAPI — still serve the same payloads while flagging
// their deprecation and successor.
func TestDeprecatedAliases(t *testing.T) {
	s := httpapi.NewServer()
	s.LegacyAPI = true
	s.Register(gen.RunningExample().Network)
	s.Register(gen.Zoo(gen.ZooOpts{Routers: 16, Seed: 1, Protection: true}).Net)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	for _, alias := range []struct{ old, successor string }{
		{"/api/networks", "/api/v1/networks"},
		{"/api/networks/running-example/topology", "/api/v1/networks/{name}/topology"},
	} {
		resp, err := http.Get(ts.URL + alias.old)
		if err != nil {
			t.Fatal(err)
		}
		oldBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", alias.old, resp.StatusCode)
		}
		if d := resp.Header.Get("Deprecation"); d != "true" {
			t.Errorf("%s: Deprecation = %q, want true", alias.old, d)
		}
		if l := resp.Header.Get("Link"); !strings.Contains(l, alias.successor) ||
			!strings.Contains(l, "successor-version") {
			t.Errorf("%s: Link = %q, want successor %s", alias.old, l, alias.successor)
		}
		newResp, err := http.Get(ts.URL + strings.Replace(alias.old, "/api/", "/api/v1/", 1))
		if err != nil {
			t.Fatal(err)
		}
		newBody, _ := io.ReadAll(newResp.Body)
		newResp.Body.Close()
		if !bytes.Equal(oldBody, newBody) {
			t.Errorf("%s: alias payload differs from versioned route", alias.old)
		}
	}
	// POST aliases too.
	body, _ := json.Marshal(httpapi.VerifyRequest{
		Network: "running-example", Query: "<ip> [.#v0] .* [v3#.] <ip> 0",
	})
	resp, err := http.Post(ts.URL+"/api/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Deprecation") != "true" {
		t.Errorf("POST /api/verify: status=%d Deprecation=%q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
}

// decodeEnvelope asserts a non-2xx response carries the single error
// envelope: a non-empty machine-readable code and a message, and no legacy
// top-level "error" key.
func decodeEnvelope(t *testing.T, resp *http.Response) httpapi.ErrorEnvelope {
	t.Helper()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]json.RawMessage
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, raw)
	}
	if _, ok := generic["error"]; ok {
		t.Errorf("error body still has legacy top-level \"error\" key: %s", raw)
	}
	var env httpapi.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error body does not match envelope: %v\n%s", err, raw)
	}
	if env.Code == "" || env.Message == "" {
		t.Errorf("envelope missing code/message: %s", raw)
	}
	return env
}

func TestTopology(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/networks/running-example/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var topo httpapi.TopologyJSON
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Routers) != 7 || len(topo.Links) != 8 {
		t.Fatalf("topology: %d routers %d links", len(topo.Routers), len(topo.Links))
	}
	// Unknown network → 404 error envelope with a details pointer.
	resp2, err := http.Get(ts.URL + "/api/v1/networks/ghost/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp2.StatusCode)
	}
	env := decodeEnvelope(t, resp2)
	if env.Code != "not-found" || env.Details["network"] != "ghost" {
		t.Errorf("envelope = %+v, want not-found with details.network=ghost", env)
	}
}

func postVerify(t *testing.T, ts *httptest.Server, req httpapi.VerifyRequest) (*http.Response, cli.ResultJSON) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out cli.ResultJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestVerifyEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postVerify(t, ts, httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Verdict != "satisfied" || len(out.Trace) != 4 {
		t.Fatalf("result = %+v", out)
	}
}

func TestVerifyWeighted(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postVerify(t, ts, httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
		Weight:  "Hops, Failures + 3*Tunnels",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Weight) != 2 || out.Weight[0] != 5 || out.Weight[1] != 0 {
		t.Fatalf("weight = %v, want [5 0]", out.Weight)
	}
}

func TestVerifyMopedEngine(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postVerify(t, ts, httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
		Engine:  "moped",
	})
	if resp.StatusCode != http.StatusOK || out.Verdict != "satisfied" {
		t.Fatalf("status=%d result=%+v", resp.StatusCode, out)
	}
}

func TestVerifyErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		req    httpapi.VerifyRequest
		status int
		code   string
	}{
		{httpapi.VerifyRequest{Network: "ghost", Query: "<ip> .* <ip> 0"}, http.StatusNotFound, "not-found"},
		{httpapi.VerifyRequest{Network: "running-example"}, http.StatusBadRequest, "bad-request"},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<bogus> .* <ip> 0"}, http.StatusUnprocessableEntity, "query-error"},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<ip> .* <ip> 0", Weight: "frobs"}, http.StatusBadRequest, "bad-request"},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<ip> .* <ip> 0", Engine: "z3"}, http.StatusBadRequest, "bad-request"},
		{httpapi.VerifyRequest{Network: "running-example", Query: "<ip> .* <ip> 0", Engine: "moped", Weight: "Hops"}, http.StatusBadRequest, "bad-request"},
	}
	for i, c := range cases {
		resp, _ := postVerify(t, ts, c.req)
		if resp.StatusCode != c.status {
			t.Errorf("case %d: status = %d, want %d", i, resp.StatusCode, c.status)
			continue
		}
		if env := decodeEnvelope(t, resp); env.Code != c.code {
			t.Errorf("case %d: code = %q, want %q", i, env.Code, c.code)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/api/v1/verify", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Code != "bad-request" {
		t.Errorf("malformed body: code = %q, want bad-request", env.Code)
	}
}

func TestVerifyBudgetCap(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.MaxBudget = 1 // absurdly small: every query times out
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(httpapi.VerifyRequest{
		Network: "running-example",
		Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
		Budget:  1_000_000, // request may not raise the cap
	})
	resp, err := http.Post(ts.URL+"/api/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	if env.Code != "budget-exhausted" {
		t.Errorf("code = %q, want budget-exhausted", env.Code)
	}
	// Partial stats: the build phase completed before saturation gave up,
	// so the envelope's stats block carries the rule counts.
	if env.Stats == nil {
		t.Fatal("error envelope missing partial stats")
	}
	if env.Stats.Sizes.OverRules == 0 {
		t.Errorf("partial stats lost the rule count: %+v", env.Stats.Sizes)
	}
}

// TestVerifyBatchBudgetCode checks that a budget-exhausted query inside a
// batch carries the same machine-readable code (and its partial stats) as
// the single-verify route's 504, even though the batch itself returns 200.
func TestVerifyBatchBudgetCode(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.MaxBudget = 1
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, out := postBatch(t, ts, httpapi.VerifyBatchRequest{
		Network: "running-example",
		Queries: []string{"<ip> [.#v0] .* [v3#.] <ip> 0"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	item := out.Results[0]
	if item.Error == "" || item.Code != "budget-exhausted" {
		t.Fatalf("item = %+v, want budget-exhausted error", item)
	}
	if item.Sizes.OverRules == 0 {
		t.Errorf("batch error item lost partial stats: %+v", item.Sizes)
	}
}

// TestMetricsEndpoint drives a batch through the API and checks that
// GET /metrics exposes non-zero saturation, cache and latency metrics in
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	postBatch(t, ts, httpapi.VerifyBatchRequest{
		Network: "running-example",
		Queries: []string{
			"<ip> [.#v0] .* [v3#.] <ip> 0",
			"<ip> [.#v0] .* [v3#.] <ip> 0", // repeat → cache hit
		},
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"pds_worklist_pops_total{alg=\"poststar\"}",
		"pds_early_accept_total",
		"pds_index_probes_total{alg=\"poststar\"}",
		"pds_pool_hits_total",
		"pds_pool_misses_total",
		"pds_parallel_runs_total",
		"pds_shard_steals_total",
		"translate_slice_routers_kept_total",
		"translate_slice_routers_dropped_total",
		"engine_early_accept_fallback_total",
		"translate_cache_gets_total{network=\"running-example\"}",
		"batch_query_seconds_count",
		"engine_phase_seconds_bucket{phase=\"build\",le=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The registry is process-global and other tests contribute, but this
	// batch alone guarantees non-zero pops and cache gets.
	if strings.Contains(body, "pds_worklist_pops_total{alg=\"poststar\"} 0\n") {
		t.Error("poststar pops counter is zero after a batch")
	}
	// Slicing is on by default in the engine, so the slice router counter
	// must have moved too.
	if strings.Contains(body, "translate_slice_routers_kept_total 0\n") {
		t.Error("slice routers-kept counter is zero after a batch")
	}
}

func postBatch(t *testing.T, ts *httptest.Server, req httpapi.VerifyBatchRequest) (*http.Response, httpapi.VerifyBatchResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/v1/verify-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out httpapi.VerifyBatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestVerifyBatchEndpoint runs a batch over the running example and checks
// order, verdict agreement with the single endpoint and inline per-query
// errors.
func TestVerifyBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
		"<ip> [.#no-such-router] .* <ip> 0", // parse error, isolated
		"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
	}
	resp, out := postBatch(t, ts, httpapi.VerifyBatchRequest{
		Network: "running-example", Queries: queries, Workers: 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Results) != len(queries) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(queries))
	}
	for i, item := range out.Results {
		if item.Query != queries[i] {
			t.Errorf("result %d out of order: %q", i, item.Query)
		}
		if i == 2 {
			if item.Error == "" {
				t.Error("malformed query reported no error")
			}
			continue
		}
		if item.Error != "" {
			t.Fatalf("%q: %s", item.Query, item.Error)
		}
		_, single := postVerify(t, ts, httpapi.VerifyRequest{
			Network: "running-example", Query: queries[i],
		})
		if item.Verdict != single.Verdict {
			t.Errorf("%q: batch verdict %q, single %q", item.Query, item.Verdict, single.Verdict)
		}
	}
}

func TestVerifyBatchErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		req    httpapi.VerifyBatchRequest
		status int
	}{
		{httpapi.VerifyBatchRequest{Network: "ghost", Queries: []string{"<ip> .* <ip> 0"}}, http.StatusNotFound},
		{httpapi.VerifyBatchRequest{Network: "running-example"}, http.StatusBadRequest},
		{httpapi.VerifyBatchRequest{Network: "running-example", Queries: []string{"<ip> .* <ip> 0"}, Engine: "z3"}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, _ := postBatch(t, ts, c.req)
		if resp.StatusCode != c.status {
			t.Errorf("case %d: status = %d, want %d", i, resp.StatusCode, c.status)
		}
	}
}

// TestConcurrentBatch fires overlapping batch requests (and a worker cap)
// at one server; under -race this stresses the per-network runner sharing.
func TestConcurrentBatch(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.Parallel = 2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
		"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
	}
	const calls = 6
	out := make([]httpapi.VerifyBatchResponse, calls)
	var wg sync.WaitGroup
	for c := 0; c < calls; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.VerifyBatchRequest{
				Network: "running-example", Queries: queries, Workers: 8,
			})
			resp, err := http.Post(ts.URL+"/api/v1/verify-batch", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&out[c]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for c := 1; c < calls; c++ {
		for i := range queries {
			a, b := out[c].Results[i], out[0].Results[i]
			if a.Verdict != b.Verdict || a.Error != b.Error {
				t.Errorf("call %d query %d: %q/%q differs from %q/%q",
					c, i, a.Verdict, a.Error, b.Verdict, b.Error)
			}
		}
	}
}

// TestConcurrentVerify exercises the read-only concurrency contract.
func TestConcurrentVerify(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.VerifyRequest{
				Network: "running-example",
				Query:   "<ip> [.#v0] .* [v3#.] <ip> 0",
			})
			resp, err := http.Post(ts.URL+"/api/v1/verify", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- resp.Status
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// --- scenario session routes ---

func doJSON(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSessionLifecycle drives one session through create → verify →
// mutate → verify → undo → verify → close, checking that the empty-stack
// session agrees with the plain verify route and that undo restores the
// original fingerprint and verdict.
func TestSessionLifecycle(t *testing.T) {
	ts := newTestServer(t)
	const queryText = "<ip> [.#v0] .* [v3#.] <ip> 0"

	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
		httpapi.SessionCreateRequest{Network: "running-example"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status = %d, want 201", resp.StatusCode)
	}
	sj := decodeBody[httpapi.SessionJSON](t, resp)
	if sj.ID != "s1" || sj.Network != "running-example" {
		t.Fatalf("session = %+v", sj)
	}
	if len(sj.Fingerprint) != 16 {
		t.Fatalf("fingerprint = %q, want 16 hex digits", sj.Fingerprint)
	}
	if sj.Deltas == nil || len(sj.Deltas) != 0 {
		t.Fatalf("deltas = %#v, want empty slice", sj.Deltas)
	}
	baseFP := sj.Fingerprint
	sessURL := ts.URL + "/api/v1/sessions/" + sj.ID

	// List includes the session.
	listResp := doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions", nil)
	if got := decodeBody[[]httpapi.SessionJSON](t, listResp); len(got) != 1 || got[0].ID != "s1" {
		t.Fatalf("list = %+v", got)
	}

	// Empty-stack session verify agrees with the plain route.
	_, plain := postVerify(t, ts, httpapi.VerifyRequest{
		Network: "running-example", Query: queryText,
	})
	vresp := doJSON(t, http.MethodPost, sessURL+"/verify",
		httpapi.VerifyRequest{Query: queryText})
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("session verify: status = %d", vresp.StatusCode)
	}
	base := decodeBody[cli.ResultJSON](t, vresp)
	if base.Verdict != plain.Verdict || len(base.Trace) != len(plain.Trace) {
		t.Fatalf("empty-stack session verdict %q (trace %d) differs from plain %q (trace %d)",
			base.Verdict, len(base.Trace), plain.Verdict, len(plain.Trace))
	}

	// Apply a link failure.
	dresp := doJSON(t, http.MethodPost, sessURL+"/deltas",
		httpapi.SessionDeltasRequest{Commands: []string{"fail v2.oe4#v3.ie4"}})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("deltas: status = %d", dresp.StatusCode)
	}
	dout := decodeBody[httpapi.SessionDeltasResponse](t, dresp)
	if len(dout.Applied) != 1 || dout.Applied[0].Seq != 1 ||
		dout.Applied[0].Canon != "fail v2.oe4#v3.ie4" {
		t.Fatalf("applied = %+v", dout.Applied)
	}
	if dout.Session.Fingerprint == baseFP {
		t.Error("fingerprint unchanged after delta")
	}

	vresp2 := doJSON(t, http.MethodPost, sessURL+"/verify",
		httpapi.VerifyRequest{Query: queryText})
	if vresp2.StatusCode != http.StatusOK {
		t.Fatalf("session verify after delta: status = %d", vresp2.StatusCode)
	}
	decodeBody[cli.ResultJSON](t, vresp2)

	// Cache stats are exposed on GET after verifying.
	gresp := doJSON(t, http.MethodGet, sessURL, nil)
	gj := decodeBody[httpapi.SessionJSON](t, gresp)
	if gj.Cache == nil || gj.Cache.Gets == 0 {
		t.Fatalf("session get: cache stats = %+v, want non-zero gets", gj.Cache)
	}
	if len(gj.Deltas) != 1 {
		t.Fatalf("session get: deltas = %+v", gj.Deltas)
	}

	// Undo restores the base fingerprint and verdict.
	uresp := doJSON(t, http.MethodDelete, sessURL+"/deltas/1", nil)
	if uresp.StatusCode != http.StatusOK {
		t.Fatalf("undo: status = %d", uresp.StatusCode)
	}
	uj := decodeBody[httpapi.SessionJSON](t, uresp)
	if uj.Fingerprint != baseFP || len(uj.Deltas) != 0 {
		t.Fatalf("undo: session = %+v, want fingerprint %s and no deltas", uj, baseFP)
	}
	vresp3 := doJSON(t, http.MethodPost, sessURL+"/verify",
		httpapi.VerifyRequest{Query: queryText})
	redo := decodeBody[cli.ResultJSON](t, vresp3)
	if redo.Verdict != base.Verdict {
		t.Errorf("verdict after undo = %q, want %q", redo.Verdict, base.Verdict)
	}

	// Batch verification against the overlay.
	bresp := doJSON(t, http.MethodPost, sessURL+"/verify-batch",
		httpapi.VerifyBatchRequest{Queries: []string{queryText, queryText}})
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("session batch: status = %d", bresp.StatusCode)
	}
	bout := decodeBody[httpapi.VerifyBatchResponse](t, bresp)
	if len(bout.Results) != 2 || bout.Results[0].Verdict != base.Verdict {
		t.Fatalf("session batch results = %+v", bout.Results)
	}

	// Close, then the id is gone.
	cresp := doJSON(t, http.MethodDelete, sessURL, nil)
	if cresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: status = %d, want 204", cresp.StatusCode)
	}
	goneResp := doJSON(t, http.MethodGet, sessURL, nil)
	if goneResp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after close: status = %d, want 404", goneResp.StatusCode)
	}
	env := decodeEnvelope(t, goneResp)
	if env.Code != "session-not-found" || env.Details["session"] != "s1" {
		t.Errorf("envelope = %+v, want session-not-found with details.session=s1", env)
	}
}

// TestSessionErrors covers the error envelope on every session route,
// including atomic rollback of partially-applied delta batches.
func TestSessionErrors(t *testing.T) {
	ts := newTestServer(t)

	// Unknown network on create.
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
		httpapi.SessionCreateRequest{Network: "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("create ghost: status = %d", resp.StatusCode)
	}
	decodeEnvelope(t, resp)

	// Bad initial delta: creation fails atomically, no session leaks.
	resp = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
		httpapi.SessionCreateRequest{
			Network: "running-example",
			Deltas:  []string{"fail no-such-link"},
		})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("create with bad delta: status = %d, want 422", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	if env.Details["command"] != "fail no-such-link" {
		t.Errorf("details = %+v, want the offending command", env.Details)
	}
	listResp := doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions", nil)
	if got := decodeBody[[]httpapi.SessionJSON](t, listResp); len(got) != 0 {
		t.Fatalf("failed create leaked sessions: %+v", got)
	}

	// Working session for route-level errors.
	resp = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
		httpapi.SessionCreateRequest{Network: "running-example"})
	sj := decodeBody[httpapi.SessionJSON](t, resp)
	sessURL := ts.URL + "/api/v1/sessions/" + sj.ID

	// Partially-bad delta batch rolls back entirely.
	dresp := doJSON(t, http.MethodPost, sessURL+"/deltas",
		httpapi.SessionDeltasRequest{Commands: []string{
			"fail v2.oe4#v3.ie4", // valid
			"drain nowhere",      // invalid router
		}})
	if dresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mixed deltas: status = %d, want 422", dresp.StatusCode)
	}
	env = decodeEnvelope(t, dresp)
	if env.Details["command"] != "drain nowhere" || env.Details["index"] != "1" {
		t.Errorf("details = %+v, want offending command at index 1", env.Details)
	}
	gj := decodeBody[httpapi.SessionJSON](t, doJSON(t, http.MethodGet, sessURL, nil))
	if len(gj.Deltas) != 0 {
		t.Fatalf("rollback failed, deltas = %+v", gj.Deltas)
	}

	// An absurd priority is rejected up front (422) instead of letting
	// materialize allocate billions of groups for it.
	dresp = doJSON(t, http.MethodPost, sessURL+"/deltas",
		httpapi.SessionDeltasRequest{Commands: []string{
			"add-entry v0.oe1#v2.ie1 s40 2000000000 v2.oe4#v3.ie4",
		}})
	if dresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("huge priority: status = %d, want 422", dresp.StatusCode)
	}
	decodeEnvelope(t, dresp)

	// Undo of an unknown seq.
	uresp := doJSON(t, http.MethodDelete, sessURL+"/deltas/99", nil)
	if uresp.StatusCode != http.StatusNotFound {
		t.Fatalf("undo 99: status = %d, want 404", uresp.StatusCode)
	}
	if env := decodeEnvelope(t, uresp); env.Details["seq"] != "99" {
		t.Errorf("details = %+v, want seq 99", env.Details)
	}

	// Non-numeric seq.
	uresp = doJSON(t, http.MethodDelete, sessURL+"/deltas/frog", nil)
	if uresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("undo frog: status = %d, want 400", uresp.StatusCode)
	}
	decodeEnvelope(t, uresp)

	// Verify with a missing query.
	vresp := doJSON(t, http.MethodPost, sessURL+"/verify",
		httpapi.VerifyRequest{})
	if vresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query: status = %d, want 400", vresp.StatusCode)
	}
	decodeEnvelope(t, vresp)

	// Verify with a malformed query.
	vresp = doJSON(t, http.MethodPost, sessURL+"/verify",
		httpapi.VerifyRequest{Query: "<bogus> .* <ip> 0"})
	if vresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad query: status = %d, want 422", vresp.StatusCode)
	}
	if env := decodeEnvelope(t, vresp); env.Code != "query-error" {
		t.Errorf("code = %q, want query-error", env.Code)
	}

	// Routes on an unknown session id.
	for _, probe := range []struct{ method, url string }{
		{http.MethodGet, ts.URL + "/api/v1/sessions/s999"},
		{http.MethodDelete, ts.URL + "/api/v1/sessions/s999"},
		{http.MethodPost, ts.URL + "/api/v1/sessions/s999/verify"},
	} {
		resp := doJSON(t, probe.method, probe.url, httpapi.VerifyRequest{Query: "x"})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status = %d, want 404", probe.method, probe.url, resp.StatusCode)
			continue
		}
		decodeEnvelope(t, resp)
	}
}

// TestSessionLimit checks the MaxSessions guard returns 429 with the
// envelope rather than creating unbounded sessions.
func TestSessionLimit(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.MaxSessions = 2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
			httpapi.SessionCreateRequest{Network: "running-example"})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status = %d", i, resp.StatusCode)
		}
	}
	resp := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
		httpapi.SessionCreateRequest{Network: "running-example"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over limit: status = %d, want 429", resp.StatusCode)
	}
	decodeEnvelope(t, resp)
	// Closing one frees a slot.
	cresp := doJSON(t, http.MethodDelete, ts.URL+"/api/v1/sessions/s1", nil)
	if cresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: status = %d", cresp.StatusCode)
	}
	resp = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
		httpapi.SessionCreateRequest{Network: "running-example"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after close: status = %d, want 201", resp.StatusCode)
	}
	if sj := decodeBody[httpapi.SessionJSON](t, resp); sj.ID != fmt.Sprintf("s%d", 3) {
		t.Errorf("id = %q, want s3 (closed ids are never reused)", sj.ID)
	}
}

func postSweep(t *testing.T, ts *httptest.Server, network string, req httpapi.SweepRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/v1/networks/"+network+"/sweep", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp := postSweep(t, ts, "running-example", httpapi.SweepRequest{
		Depth: 2,
		Invariants: []string{
			"<ip> [.#v0] [v0#v2] .* [v3#.] <ip> 0",
			"<ip> [.#v0] .* [v3#.] <ip> 0",
		},
		Workers:      2,
		IncludeCells: true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep sweep.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	// 8 links → 8 singles + 28 pairs, × 2 invariants.
	if rep.Links != 8 || rep.Scenarios != 36 || rep.CellsTotal != 72 || rep.Incomplete {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Cells) != 72 {
		t.Fatalf("cells embedded = %d, want 72", len(rep.Cells))
	}
	if len(rep.Invariants) != 2 || rep.Invariants[0].Breaking == 0 {
		t.Fatalf("invariants = %+v", rep.Invariants)
	}
}

func TestSweepErrors(t *testing.T) {
	ts := newTestServer(t)
	check := func(resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		var env httpapi.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Code != wantCode {
			t.Fatalf("code = %q, want %q", env.Code, wantCode)
		}
	}
	inv := []string{"<ip> [.#v0] .* [v3#.] <ip> 0"}
	check(postSweep(t, ts, "no-such-net", httpapi.SweepRequest{Invariants: inv}),
		http.StatusNotFound, "not-found")
	check(postSweep(t, ts, "running-example", httpapi.SweepRequest{}),
		http.StatusBadRequest, "bad-request")
	check(postSweep(t, ts, "running-example", httpapi.SweepRequest{Depth: 3, Invariants: inv}),
		http.StatusBadRequest, "bad-request")
	check(postSweep(t, ts, "running-example", httpapi.SweepRequest{Invariants: []string{"not a query"}}),
		http.StatusBadRequest, "bad-request")
	// Config errors must get a proper envelope in stream mode too: the
	// success header is only written once the first cell lands.
	check(postSweep(t, ts, "running-example", httpapi.SweepRequest{Depth: 3, Invariants: inv, Stream: true}),
		http.StatusBadRequest, "bad-request")
}

func TestSweepStream(t *testing.T) {
	ts := newTestServer(t)
	resp := postSweep(t, ts, "running-example", httpapi.SweepRequest{
		Depth:      1,
		Invariants: []string{"<ip> [.#v0] .* [v3#.] <ip> 0"},
		Workers:    2,
		Stream:     true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var cells int
	var report *sweep.Report
	for {
		var ev httpapi.SweepStreamEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		switch {
		case ev.Cell != nil && report == nil:
			cells++
		case ev.Report != nil && report == nil:
			report = ev.Report
		default:
			t.Fatalf("unexpected event after report: %+v", ev)
		}
	}
	if report == nil {
		t.Fatal("stream ended without a report line")
	}
	// 8 single-link scenarios × 1 invariant.
	if cells != 8 || report.CellsTotal != 8 || report.Incomplete {
		t.Fatalf("streamed %d cells, report %+v", cells, report)
	}
}
