package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMiddlewarePanicRecovery checks that a handler panic before any
// response bytes becomes a 500 internal-error envelope rather than the
// empty reply net/http produces on its own.
func TestMiddlewarePanicRecovery(t *testing.T) {
	h := withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/anything", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatalf("body is not an envelope: %v", err)
	}
	if env.Code != "internal-error" || !strings.Contains(env.Message, "boom") {
		t.Fatalf("envelope = %+v", env)
	}
}

// TestMiddlewareAbortHandlerPassthrough checks the sanctioned
// connection-drop panic is re-raised, not converted to a 500.
func TestMiddlewareAbortHandlerPassthrough(t *testing.T) {
	h := withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/api/v1/x", nil))
}

// TestMiddlewarePanicMidStream checks that once the status line is out,
// recovery does not try to write a second response.
func TestMiddlewarePanicMidStream(t *testing.T) {
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"partial":`))
		panic("mid-stream")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want the already-written 200", rec.Code)
	}
	if got := rec.Body.String(); got != `{"partial":` {
		t.Fatalf("body = %q, want only the pre-panic bytes", got)
	}
}
