package httpapi

import (
	"fmt"
	"net/http"
	"strings"
)

// envelopeWriter rewrites the mux's plain-text 404/405 pages on /api/
// paths into the standard JSON error envelope. Handlers that write their
// own JSON errors (they always set Content-Type first) pass through
// untouched; only a text-typed 404/405 — the signature of the mux itself —
// is intercepted, its body swallowed and replaced.
type envelopeWriter struct {
	http.ResponseWriter
	req         *http.Request
	wroteHeader bool
	intercepted bool
}

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.wroteHeader {
		ew.ResponseWriter.WriteHeader(status)
		return
	}
	ew.wroteHeader = true
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(ew.req.URL.Path, "/api/") &&
		!strings.HasPrefix(ew.Header().Get("Content-Type"), "application/json") {
		ew.intercepted = true
		env := ErrorEnvelope{Code: "not-found", Message: "no such route: " + ew.req.URL.Path}
		if status == http.StatusMethodNotAllowed {
			env.Code = "method-not-allowed"
			env.Message = fmt.Sprintf("method %s not allowed on %s", ew.req.Method, ew.req.URL.Path)
			if allow := ew.Header().Get("Allow"); allow != "" {
				env.Details = map[string]string{"allow": allow}
			}
		}
		ew.Header().Set("Content-Type", "application/json")
		ew.Header().Del("X-Content-Type-Options")
		writeJSON(ew.ResponseWriter, status, env)
		return
	}
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(b []byte) (int, error) {
	if ew.intercepted {
		// Swallow the mux's plain-text body; the envelope is already out.
		return len(b), nil
	}
	ew.wroteHeader = true
	return ew.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (sweep
// NDJSON, watch event streams) keep working through the wrapper.
func (ew *envelopeWriter) Flush() {
	if f, ok := ew.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMiddleware wraps the mux with the uniform-envelope writer and panic
// recovery: mux-generated 404/405 responses under /api/ carry the JSON
// error envelope, and a handler panic becomes a 500 "internal-error"
// envelope when the response has not started, instead of the empty reply
// net/http would produce. http.ErrAbortHandler (the sanctioned way to drop
// a connection) is re-raised.
func withMiddleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ew := &envelopeWriter{ResponseWriter: w, req: r}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			if !ew.wroteHeader {
				writeError(ew, http.StatusInternalServerError, "internal-error",
					fmt.Sprintf("internal error: %v", p))
			}
			// Mid-stream panics can only truncate the response; the status
			// is already on the wire.
		}()
		h.ServeHTTP(ew, r)
	})
}
