package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"aalwines/internal/live"
	"aalwines/internal/scenario"
)

// WatchCreateRequest is the body of POST /api/v1/sessions/{id}/watch.
type WatchCreateRequest struct {
	// Invariants are the queries re-verified on every session change.
	Invariants []string `json:"invariants"`
	// Buffer caps the watch's event queue (0 = server default). A slow
	// event-stream consumer loses the oldest events past this cap and is
	// told so with a "gap" event.
	Buffer int `json:"buffer,omitempty"`
}

func (s *Server) handleWatchCreate(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	var req WatchCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", "invalid JSON: "+err.Error())
		return
	}
	if len(req.Invariants) == 0 {
		writeError(w, http.StatusBadRequest, "bad-request", "no invariants")
		return
	}
	wch, err := e.hub.AddWatch(r.Context(), req.Invariants, req.Buffer)
	if err != nil {
		var bad *live.BadQueryError
		switch {
		case errors.As(err, &bad):
			writeErrorDetails(w, http.StatusUnprocessableEntity, "query-error", bad.Err.Error(),
				map[string]string{"query": bad.Query})
		case errors.Is(err, live.ErrClosed):
			writeErrorDetails(w, http.StatusNotFound, "session-not-found", "unknown session "+e.id,
				map[string]string{"session": e.id})
		default:
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, wch.Info())
}

func (s *Server) handleWatchList(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	writeJSON(w, http.StatusOK, e.hub.Watches())
}

func (s *Server) handleWatchClose(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	wid := r.PathValue("wid")
	if !e.hub.CloseWatch(wid, "client-request") {
		writeErrorDetails(w, http.StatusNotFound, "watch-not-found", "unknown watch "+wid,
			map[string]string{"watch": wid})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleWatchEvents streams a watch's events. The default framing is
// Server-Sent Events (text/event-stream, one "event:"/"data:" block per
// event); ?format=ndjson switches to one JSON object per line. Quiet
// periods are bridged with heartbeat events. ?limit=N ends the stream
// after N events — the deterministic-transcript hook the API contract
// check uses. Exactly one stream may be attached to a watch at a time;
// a second concurrent attach gets 409.
func (s *Server) handleWatchEvents(w http.ResponseWriter, r *http.Request) {
	e := s.lookupSession(w, r.PathValue("id"))
	if e == nil {
		return
	}
	wid := r.PathValue("wid")
	wch := e.hub.Watch(wid)
	if wch == nil {
		writeErrorDetails(w, http.StatusNotFound, "watch-not-found", "unknown watch "+wid,
			map[string]string{"watch": wid})
		return
	}
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad-request", "bad limit "+l)
			return
		}
		limit = n
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if !wch.TryAttach() {
		writeErrorDetails(w, http.StatusConflict, "watch-busy",
			"another stream is attached to this watch",
			map[string]string{"watch": wid})
		return
	}
	defer wch.Detach()

	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	heartbeat := s.Heartbeat
	if heartbeat == 0 {
		heartbeat = 15 * time.Second
	}
	enc := json.NewEncoder(w)
	sent := 0
	emit := func(ev live.WatchEvent) bool {
		if ndjson {
			_ = enc.Encode(ev)
		} else {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		}
		// Heartbeats only keep the connection alive — a transcript asking
		// for limit=N is owed N real events, however quiet the stream.
		if ev.Type != "heartbeat" {
			sent++
		}
		return limit == 0 || sent < limit
	}
	for {
		evs, open := wch.Next(r.Context(), heartbeat)
		if r.Context().Err() != nil {
			return
		}
		if len(evs) == 0 && open {
			evs = []live.WatchEvent{{Type: "heartbeat"}}
		}
		for _, ev := range evs {
			if !emit(ev) {
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if !open {
			return
		}
	}
}

// AttachLiveFeed opens a managed session on netName wired to a feed
// ingester (aalwinesd -feed). The session is registered like any other, so
// API clients can list it, register watches on it, and stream verdict
// changes while the feed drives the network state. opts.Hub is supplied by
// the server (any caller value is overwritten); Window, MaxPending and
// OnFlush pass through. The returned ingester is ready for Run; the
// session id is returned for logging.
func (s *Server) AttachLiveFeed(netName string, opts live.Options) (*live.Ingester, string, error) {
	net, _ := s.lookup(netName)
	if net == nil {
		return nil, "", fmt.Errorf("unknown network %q", netName)
	}
	sess := scenario.NewSession(net)
	hub := s.newHub(sess)
	s.mu.Lock()
	e := &sessionEntry{
		id:      fmt.Sprintf("s%d", s.nextSess),
		netName: netName,
		sess:    sess,
		hub:     hub,
	}
	s.nextSess++
	s.sessions[e.id] = e
	s.mu.Unlock()
	opts.Hub = hub
	return live.NewIngester(sess, opts), e.id, nil
}
