package httpapi_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aalwines/internal/gen"
	"aalwines/internal/httpapi"
	"aalwines/internal/live"
)

// TestLegacyRoutesGone checks the default stance on the pre-versioning
// aliases: 410 Gone with the error envelope and a successor Link, for
// every method.
func TestLegacyRoutesGone(t *testing.T) {
	ts := newTestServer(t)
	for _, c := range []struct {
		method, path, successor string
	}{
		{http.MethodGet, "/api/networks", "/api/v1/networks"},
		{http.MethodGet, "/api/networks/running-example/topology", "/api/v1/networks/{name}/topology"},
		{http.MethodPost, "/api/verify", "/api/v1/verify"},
		{http.MethodPost, "/api/verify-batch", "/api/v1/verify-batch"},
		// Method does not matter on a dead path: still 410, never 405.
		{http.MethodDelete, "/api/networks", "/api/v1/networks"},
	} {
		resp := doJSON(t, c.method, ts.URL+c.path, nil)
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("%s %s: status = %d, want 410", c.method, c.path, resp.StatusCode)
		}
		if l := resp.Header.Get("Link"); !strings.Contains(l, c.successor) ||
			!strings.Contains(l, "successor-version") {
			t.Errorf("%s: Link = %q, want successor %s", c.path, l, c.successor)
		}
		env := decodeEnvelope(t, resp)
		resp.Body.Close()
		if env.Code != "gone" || env.Details["successor"] != c.successor {
			t.Errorf("%s: envelope = %+v", c.path, env)
		}
	}
}

// TestMuxErrorsWearEnvelope checks that routing misses under /api/ answer
// with the JSON envelope instead of the mux's plain-text pages.
func TestMuxErrorsWearEnvelope(t *testing.T) {
	ts := newTestServer(t)

	resp := doJSON(t, http.MethodGet, ts.URL+"/api/v1/no-such-route", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	env := decodeEnvelope(t, resp)
	resp.Body.Close()
	if env.Code != "not-found" {
		t.Errorf("envelope = %+v, want not-found", env)
	}

	resp = doJSON(t, http.MethodDelete, ts.URL+"/api/v1/verify", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	env = decodeEnvelope(t, resp)
	resp.Body.Close()
	if env.Code != "method-not-allowed" || !strings.Contains(env.Details["allow"], "POST") {
		t.Errorf("envelope = %+v, want method-not-allowed with allow=POST", env)
	}

	// Non-API paths keep the default plain-text behaviour.
	resp = doJSON(t, http.MethodGet, ts.URL+"/nope", nil)
	if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		t.Errorf("non-API 404 got JSON Content-Type %q", ct)
	}
	resp.Body.Close()
}

func createTestSession(t *testing.T, baseURL string) string {
	t.Helper()
	resp := doJSON(t, http.MethodPost, baseURL+"/api/v1/sessions",
		httpapi.SessionCreateRequest{Network: "running-example"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status = %d", resp.StatusCode)
	}
	sess := decodeBody[httpapi.SessionJSON](t, resp)
	resp.Body.Close()
	return sess.ID
}

// TestWatchLifecycle drives a watch through create → initial events →
// delta-triggered transition → list → close over the HTTP surface, using
// the NDJSON framing with a limit for deterministic reads.
func TestWatchLifecycle(t *testing.T) {
	ts := newTestServer(t)
	sid := createTestSession(t, ts.URL)
	base := ts.URL + "/api/v1/sessions/" + sid

	const q = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"
	resp := doJSON(t, http.MethodPost, base+"/watch",
		httpapi.WatchCreateRequest{Invariants: []string{q}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("watch create: status = %d", resp.StatusCode)
	}
	info := decodeBody[live.WatchInfo](t, resp)
	resp.Body.Close()
	if info.ID == "" || len(info.Invariants) != 1 || info.Pending != 1 {
		t.Fatalf("watch info = %+v, want one pending initial verdict", info)
	}

	// Bad invariants reject the whole watch with the query's own error.
	resp = doJSON(t, http.MethodPost, base+"/watch",
		httpapi.WatchCreateRequest{Invariants: []string{"<s40"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad invariant: status = %d, want 422", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	resp.Body.Close()
	if env.Code != "query-error" || env.Details["query"] != "<s40" {
		t.Fatalf("bad invariant envelope = %+v", env)
	}

	// Drain the initial event over NDJSON.
	evs := readNDJSONEvents(t, base+"/watch/"+info.ID+"/events?format=ndjson&limit=1")
	if len(evs) != 1 || evs[0].Type != "verdict" || evs[0].Query != q || evs[0].Cell == nil {
		t.Fatalf("initial events = %+v", evs)
	}
	initialVerdict := evs[0].Cell.Verdict

	// A delta on the witness path re-verifies and queues the transition.
	link := evs[0].Cell.Trace[0].Link
	dresp := doJSON(t, http.MethodPost, base+"/deltas",
		httpapi.SessionDeltasRequest{Commands: []string{"fail " + link}})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status = %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	evs = readNDJSONEvents(t, base+"/watch/"+info.ID+"/events?format=ndjson&limit=1")
	if len(evs) != 1 || evs[0].Type != "verdict" || evs[0].Cell.Verdict == initialVerdict {
		t.Fatalf("transition events = %+v (initial verdict %s)", evs, initialVerdict)
	}

	// List shows the watch; closing it 204s; the id is then unknown.
	lresp := doJSON(t, http.MethodGet, base+"/watch", nil)
	ws := decodeBody[[]live.WatchInfo](t, lresp)
	lresp.Body.Close()
	if len(ws) != 1 || ws[0].ID != info.ID {
		t.Fatalf("watch list = %+v", ws)
	}
	cresp := doJSON(t, http.MethodDelete, base+"/watch/"+info.ID, nil)
	if cresp.StatusCode != http.StatusNoContent {
		t.Fatalf("watch close: status = %d", cresp.StatusCode)
	}
	cresp.Body.Close()
	gresp := doJSON(t, http.MethodDelete, base+"/watch/"+info.ID, nil)
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("watch close again: status = %d, want 404", gresp.StatusCode)
	}
	env = decodeEnvelope(t, gresp)
	gresp.Body.Close()
	if env.Code != "watch-not-found" {
		t.Fatalf("envelope = %+v", env)
	}
}

// TestWatchLimitIgnoresHeartbeats is the regression test for heartbeats
// counting toward ?limit: a quiet stream with limit=N must stay open
// through any number of keep-alives and end only after N real events.
func TestWatchLimitIgnoresHeartbeats(t *testing.T) {
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	s.Heartbeat = 20 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	sid := createTestSession(t, ts.URL)
	base := ts.URL + "/api/v1/sessions/" + sid
	const q = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"

	// One-shot verify to learn a link on the witness path before the watch
	// stream (which consumes the initial cell) is attached.
	vresp := doJSON(t, http.MethodPost, base+"/verify", httpapi.VerifyRequest{Query: q})
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status = %d", vresp.StatusCode)
	}
	witness := decodeBody[struct {
		Trace []struct {
			Link string `json:"link"`
		} `json:"trace"`
	}](t, vresp)
	vresp.Body.Close()
	if len(witness.Trace) == 0 {
		t.Fatal("witness query returned no trace")
	}

	resp := doJSON(t, http.MethodPost, base+"/watch",
		httpapi.WatchCreateRequest{Invariants: []string{q}})
	info := decodeBody[live.WatchInfo](t, resp)
	resp.Body.Close()

	done := make(chan []live.WatchEvent, 1)
	go func() {
		done <- readNDJSONEvents(t, base+"/watch/"+info.ID+"/events?format=ndjson&limit=2")
	}()

	// The pending initial verdict is the only real event; several heartbeat
	// periods later the stream must still be waiting for the second.
	time.Sleep(150 * time.Millisecond)
	select {
	case evs := <-done:
		t.Fatalf("stream ended on heartbeats alone: %+v", evs)
	default:
	}

	dresp := doJSON(t, http.MethodPost, base+"/deltas",
		httpapi.SessionDeltasRequest{Commands: []string{"fail " + witness.Trace[0].Link}})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status = %d", dresp.StatusCode)
	}
	dresp.Body.Close()

	evs := <-done
	var real, beats int
	for _, ev := range evs {
		if ev.Type == "heartbeat" {
			beats++
		} else {
			real++
		}
	}
	if real != 2 || evs[len(evs)-1].Type != "verdict" {
		t.Fatalf("stream = %+v, want exactly 2 real events ending in a verdict", evs)
	}
	if beats == 0 {
		t.Fatal("no heartbeats observed — the limit semantics were not exercised")
	}
}

func readNDJSONEvents(t *testing.T, url string) []live.WatchEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events: Content-Type = %q", ct)
	}
	var out []live.WatchEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev live.WatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

// TestWatchSSEStream is the SSE smoke test: correct content type, correct
// framing, events parse back out of the data: lines, and the stream closes
// with the close event when the session is torn down.
func TestWatchSSEStream(t *testing.T) {
	ts := newTestServer(t)
	sid := createTestSession(t, ts.URL)
	base := ts.URL + "/api/v1/sessions/" + sid

	resp := doJSON(t, http.MethodPost, base+"/watch", httpapi.WatchCreateRequest{
		Invariants: []string{"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"},
	})
	info := decodeBody[live.WatchInfo](t, resp)
	resp.Body.Close()

	// Close the session from a second connection while the stream is open:
	// the stream must end with an honest close event.
	sresp, err := http.Get(base + "/watch/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// A second stream on the same watch is refused while this one is live.
	bresp, err := http.Get(base + "/watch/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if bresp.StatusCode != http.StatusConflict {
		t.Fatalf("second stream: status = %d, want 409", bresp.StatusCode)
	}
	env := decodeEnvelope(t, bresp)
	bresp.Body.Close()
	if env.Code != "watch-busy" {
		t.Fatalf("second stream envelope = %+v", env)
	}

	go func() {
		resp := doJSON(t, http.MethodDelete, ts.URL+"/api/v1/sessions/"+sid, nil)
		resp.Body.Close()
	}()

	var types []string
	var data []string
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			types = append(types, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			data = append(data, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(types) < 2 || types[0] != "verdict" || types[len(types)-1] != "close" {
		t.Fatalf("SSE event types = %v, want verdict ... close", types)
	}
	var closeEv live.WatchEvent
	if err := json.Unmarshal([]byte(data[len(data)-1]), &closeEv); err != nil {
		t.Fatal(err)
	}
	if closeEv.Type != "close" || closeEv.Reason != "session-closed" {
		t.Fatalf("close event = %+v", closeEv)
	}
}

// TestSessionCloseConcurrentGet is the regression test for the
// closed-session race: gets racing a close must each see either the live
// session or a clean 404 session-not-found envelope — never a broken
// response. Run with -race.
func TestSessionCloseConcurrentGet(t *testing.T) {
	ts := newTestServer(t)
	for round := 0; round < 8; round++ {
		sid := createTestSession(t, ts.URL)
		url := ts.URL + "/api/v1/sessions/" + sid
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					resp := doJSON(t, http.MethodGet, url, nil)
					switch resp.StatusCode {
					case http.StatusOK:
						var sj httpapi.SessionJSON
						if err := json.NewDecoder(resp.Body).Decode(&sj); err != nil {
							t.Errorf("bad 200 body during close race: %v", err)
						}
					case http.StatusNotFound:
						var env httpapi.ErrorEnvelope
						if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Code != "session-not-found" {
							t.Errorf("bad 404 during close race: %+v (%v)", env, err)
						}
					default:
						t.Errorf("status %d during close race", resp.StatusCode)
					}
					resp.Body.Close()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp := doJSON(t, http.MethodDelete, url, nil)
			if resp.StatusCode != http.StatusNoContent {
				t.Errorf("close: status = %d", resp.StatusCode)
			}
			resp.Body.Close()
		}()
		close(start)
		wg.Wait()
	}
}

// TestWatchOnLiveFeedSession checks AttachLiveFeed registers an
// API-visible session whose watches see feed-driven transitions.
func TestWatchOnLiveFeedSession(t *testing.T) {
	s := newLiveFeedServer(t)

	base := s.ts.URL + "/api/v1/sessions/" + s.sid
	const q = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"
	resp := doJSON(t, http.MethodPost, base+"/watch",
		httpapi.WatchCreateRequest{Invariants: []string{q}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("watch create on feed session: status = %d", resp.StatusCode)
	}
	info := decodeBody[live.WatchInfo](t, resp)
	resp.Body.Close()

	evs := readNDJSONEvents(t, base+"/watch/"+info.ID+"/events?format=ndjson&limit=1")
	if len(evs) != 1 || evs[0].Type != "verdict" {
		t.Fatalf("initial = %+v", evs)
	}
	link := evs[0].Cell.Trace[0].Link

	// Drive the feed: fail the witness link, flush.
	s.feed(t, fmt.Sprintf("{%q:%q,%q:%q}\nflush\n", "type", "link-down", "link", link))
	evs = readNDJSONEvents(t, base+"/watch/"+info.ID+"/events?format=ndjson&limit=1")
	if len(evs) != 1 || evs[0].Type != "verdict" || evs[0].Cell.Verdict == "satisfied" {
		t.Fatalf("feed transition = %+v", evs)
	}
}

// liveFeedServer pairs an API server with a feed-attached session, the
// aalwinesd -feed wiring in miniature.
type liveFeedServer struct {
	ts  *httptest.Server
	sid string
	ing *live.Ingester
}

func newLiveFeedServer(t *testing.T) *liveFeedServer {
	t.Helper()
	s := httpapi.NewServer()
	s.Register(gen.RunningExample().Network)
	ing, sid, err := s.AttachLiveFeed("running-example", live.Options{MaxPending: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &liveFeedServer{ts: ts, sid: sid, ing: ing}
}

// feed replays text through the ingester synchronously (window 0, so
// flushes happen only on flush events and EOF).
func (s *liveFeedServer) feed(t *testing.T, text string) {
	t.Helper()
	stats, err := s.ing.Run(context.Background(), strings.NewReader(text))
	if err != nil {
		t.Fatalf("feed: %v", err)
	}
	if stats.Errors != 0 {
		t.Fatalf("feed stats = %+v, want no errors", stats)
	}
}
