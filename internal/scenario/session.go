package scenario

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
	"aalwines/internal/translate"
)

var (
	mSessionsLive  = obs.GetGauge("scenario_sessions_live")
	mSessionsTotal = obs.GetCounter("scenario_sessions_total")
	mDeltasApplied = obs.GetCounter("scenario_deltas_applied_total")
	mDeltasUndone  = obs.GetCounter("scenario_deltas_undone_total")
)

// AppliedDelta is a delta on a session's stack, addressable for undo.
type AppliedDelta struct {
	Seq   int    `json:"seq"`
	Canon string `json:"command"`
	Delta Delta  `json:"delta"`
}

// Session owns a base network and a stack of applied deltas, and serves
// verification against the resulting overlay. The overlay shares the
// base's topology, label table and every routing partition no delta
// touched; the translation layer additionally reuses compiled rule blocks
// for all routers outside the deltas' dirty sets. Sessions are safe for
// concurrent use; mutations serialize against each other, and verifies
// concurrent with a mutation see either the old or the new overlay in
// full.
type Session struct {
	base   *network.Network
	cache  *translate.SessionCache
	runner *batch.Runner

	mu      sync.Mutex
	deltas  []AppliedDelta
	nextSeq int
	overlay *network.Network
	fp      uint64
	closed  bool
}

// NewSession opens a session on a base network. The base is treated as
// immutable for the session's lifetime.
func NewSession(base *network.Network) *Session {
	cache := translate.NewSessionCache(base)
	s := &Session{
		base:    base,
		cache:   cache,
		runner:  batch.NewRunnerWithCache(base, cache),
		nextSeq: 1,
		overlay: base,
		fp:      fnvOffset,
	}
	s.cache.SetOverlay(base, s.fp, func(routing.Key) uint64 { return 0 })
	mSessionsLive.Add(1)
	mSessionsTotal.Inc()
	return s
}

// Close releases the session's live-gauge slot. Idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		mSessionsLive.Add(-1)
	}
}

// Closed reports whether Close has been called. Long-lived consumers (the
// HTTP watch hub, the live feed ingester) poll it to stop serving a
// session that was torn down underneath them.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Base returns the immutable base network.
func (s *Session) Base() *network.Network { return s.base }

// Overlay returns the current overlay network.
func (s *Session) Overlay() *network.Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overlay
}

// Fingerprint returns the delta-stack fingerprint the overlay and all its
// cached translations are keyed by.
func (s *Session) Fingerprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fp
}

// Deltas lists the applied deltas in application order.
func (s *Session) Deltas() []AppliedDelta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AppliedDelta(nil), s.deltas...)
}

// ApplyError reports which delta of an atomic batch application failed.
// Nothing was applied when one is returned.
type ApplyError struct {
	// Index is the failing delta's position in the submitted batch.
	Index int
	// Cmd is the failing command as submitted (ApplyAllText) or in
	// canonical form (ApplyAll).
	Cmd string
	// Err is the underlying parse or validation error.
	Err error
}

func (e *ApplyError) Error() string {
	return fmt.Sprintf("delta %d (%s): %v", e.Index, e.Cmd, e.Err)
}

func (e *ApplyError) Unwrap() error { return e.Err }

// Apply validates a delta against the base network, pushes it on the
// stack and rebuilds the overlay. It returns the sequence number to pass
// to Undo.
func (s *Session) Apply(d Delta) (int, error) {
	seqs, err := s.ApplyAll([]Delta{d})
	if err != nil {
		var ae *ApplyError
		if errors.As(err, &ae) {
			return 0, ae.Err
		}
		return 0, err
	}
	return seqs[0], nil
}

// ApplyText parses and applies one delta command.
func (s *Session) ApplyText(cmd string) (int, error) {
	d, err := ParseDelta(cmd)
	if err != nil {
		return 0, err
	}
	return s.Apply(d)
}

// ApplyAll applies a batch of deltas atomically: every delta is validated
// against the base network before any is pushed, and the stack mutation
// plus overlay rebuild happen under one lock — so either all deltas apply
// (returning their sequence numbers in submission order) or none do, and
// a concurrent Verify observes the stack before or after the whole batch,
// never between its deltas. On failure the error is an *ApplyError naming
// the offending delta.
func (s *Session) ApplyAll(ds []Delta) ([]int, error) {
	for i, d := range ds {
		if err := d.validate(s.base); err != nil {
			return nil, &ApplyError{Index: i, Cmd: d.Canon(), Err: err}
		}
	}
	if len(ds) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs := make([]int, len(ds))
	for i, d := range ds {
		seqs[i] = s.nextSeq
		s.nextSeq++
		s.deltas = append(s.deltas, AppliedDelta{Seq: seqs[i], Canon: d.Canon(), Delta: d})
	}
	s.refresh()
	mDeltasApplied.Add(int64(len(ds)))
	return seqs, nil
}

// SetStack atomically replaces the whole delta stack: every delta is
// validated against the base network before anything changes, then the old
// stack is dropped, the new one pushed and the overlay rebuilt once, all
// under one lock — a concurrent Verify sees the old stack or the new one,
// never a mixture. It is the bulk analogue of ApplyAll+Undo for callers
// that step between neighbouring what-if states (the resilience sweep
// walks thousands of 1–2 delta stacks): per-router version hashes depend
// only on the deltas touching the router, so routers shared between the
// outgoing and incoming stacks keep their versions and the session cache's
// rule blocks stay hot. On failure the stack is unchanged and the error is
// an *ApplyError naming the offending delta.
func (s *Session) SetStack(ds []Delta) ([]int, error) {
	for i, d := range ds {
		if err := d.validate(s.base); err != nil {
			return nil, &ApplyError{Index: i, Cmd: d.Canon(), Err: err}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deltas = s.deltas[:0]
	seqs := make([]int, len(ds))
	for i, d := range ds {
		seqs[i] = s.nextSeq
		s.nextSeq++
		s.deltas = append(s.deltas, AppliedDelta{Seq: seqs[i], Canon: d.Canon(), Delta: d})
	}
	s.refresh()
	mDeltasApplied.Add(int64(len(ds)))
	return seqs, nil
}

// ApplyAllText parses and atomically applies a batch of delta commands;
// see ApplyAll.
func (s *Session) ApplyAllText(cmds []string) ([]int, error) {
	ds := make([]Delta, len(cmds))
	for i, cmd := range cmds {
		d, err := ParseDelta(cmd)
		if err != nil {
			return nil, &ApplyError{Index: i, Cmd: cmd, Err: err}
		}
		ds[i] = d
	}
	return s.ApplyAll(ds)
}

// Undo removes the delta with the given sequence number — any delta, not
// just the newest — and rebuilds the overlay from the remaining stack.
func (s *Session) Undo(seq int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ad := range s.deltas {
		if ad.Seq == seq {
			s.deltas = append(s.deltas[:i], s.deltas[i+1:]...)
			s.refresh()
			mDeltasUndone.Inc()
			return nil
		}
	}
	return fmt.Errorf("scenario: no delta with seq %d", seq)
}

// refresh recomputes the overlay, fingerprint and per-router versions from
// the current stack and installs them in the translation cache and batch
// runner. Caller holds s.mu. Rebuilding from the full stack (rather than
// patching incrementally) keeps undo trivially correct: the state after
// undoing delta seq is definitionally the state of the remaining stack,
// and router versions return to their prior values so cached rule blocks
// hit again.
func (s *Session) refresh() {
	s.overlay = s.materialize(false)
	fp := uint64(fnvOffset)
	routerFP := make(map[topology.RouterID]uint64)
	for _, ad := range s.deltas {
		fp = fnvAdd(fp, ad.Canon)
		rs, err := ad.Delta.touched(s.base)
		if err != nil {
			// Apply validated every delta against the immutable base, so
			// resolution cannot fail here.
			panic(fmt.Sprintf("scenario: applied delta no longer resolves: %v", err))
		}
		for _, r := range rs {
			routerFP[r] = fnvAdd(routerFP[r], ad.Canon)
		}
	}
	s.fp = fp
	topo := s.base.Topo
	version := func(k routing.Key) uint64 { return routerFP[topo.Target(k.In)] }
	s.cache.SetOverlay(s.overlay, fp, version)
	s.runner.Rebind(s.overlay)
}

// MaterializeFresh builds a standalone deep copy of the mutated network —
// fresh routing table, no structure shared with the base beyond the
// immutable topology and label table. Verifying it from scratch (no
// session cache) is the reference the differential tests compare overlay
// verification against.
func (s *Session) MaterializeFresh() *network.Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.materialize(true)
}

// materialize applies the delta stack to the base network. With fresh
// false, untouched keys share the base table's group slices (the overlay
// view); with fresh true every key is deep-copied. Caller holds s.mu.
//
// Semantics: entry edits apply to the base content in stack order, then
// link failures filter the result — a failed link's entries vanish (so
// backup groups activate without consuming the query's failure budget) and
// keys arriving over it are dropped; draining a router fails all its
// incident links. Trailing empty groups are trimmed and keys left without
// entries are removed, matching what routing.Table.Add could have built —
// so the overlay is indistinguishable from a from-scratch table with the
// same content.
func (s *Session) materialize(fresh bool) *network.Network {
	if len(s.deltas) == 0 && !fresh {
		return s.base
	}
	g := s.base.Topo
	failed := make(map[topology.LinkID]bool)
	drained := make(map[topology.RouterID]bool)
	edits := make(map[routing.Key][]Delta)
	for _, ad := range s.deltas {
		d := ad.Delta
		switch d.Kind {
		case FailLink, RestoreLink:
			l, _ := resolveLink(g, d.Link)
			if d.Kind == FailLink {
				failed[l] = true
			} else {
				delete(failed, l)
			}
		case DrainRouter, RestoreRouter:
			r := g.RouterByName(d.Router)
			if d.Kind == DrainRouter {
				drained[r] = true
			} else {
				delete(drained, r)
			}
		case AddEntry, RemoveEntry, SwapPriority:
			in, _ := resolveLink(g, d.In)
			key := routing.Key{In: in, Top: s.base.Labels.Lookup(d.Top)}
			edits[key] = append(edits[key], d)
		}
	}
	for r := range drained {
		for _, l := range g.Routers[r].Out() {
			failed[l] = true
		}
		for _, l := range g.Routers[r].In() {
			failed[l] = true
		}
	}

	t := routing.NewTable()
	keys := s.base.Routing.Keys()
	seen := make(map[routing.Key]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	for k := range edits {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	for _, key := range keys {
		if failed[key.In] {
			continue
		}
		baseGs := s.base.Routing.Lookup(key.In, key.Top)
		eds := edits[key]
		touched := len(eds) > 0
		if !touched {
			for _, grp := range baseGs {
				for _, e := range grp.Entries {
					if failed[e.Out] {
						touched = true
						break
					}
				}
			}
		}
		if !touched {
			if fresh {
				t.SetGroups(key.In, key.Top, deepCopyGroups(baseGs))
			} else {
				t.SetGroups(key.In, key.Top, baseGs)
			}
			continue
		}
		gs := deepCopyGroups(baseGs)
		for _, d := range eds {
			gs = applyEdit(gs, d, s.base)
		}
		// Filter failed out-links, trim trailing empties.
		total := 0
		for j := range gs {
			kept := gs[j].Entries[:0]
			for _, e := range gs[j].Entries {
				if !failed[e.Out] {
					kept = append(kept, e)
				}
			}
			gs[j].Entries = kept
			total += len(kept)
		}
		for len(gs) > 0 && len(gs[len(gs)-1].Entries) == 0 {
			gs = gs[:len(gs)-1]
		}
		if total == 0 {
			continue
		}
		t.SetGroups(key.In, key.Top, gs)
	}

	name := s.base.Name
	if fresh {
		name += "+materialized"
	}
	return &network.Network{
		Name:    name,
		Topo:    s.base.Topo,
		Labels:  s.base.Labels,
		Routing: t,
	}
}

// applyEdit applies one entry/priority delta to a deep-copied group list.
func applyEdit(gs routing.Groups, d Delta, base *network.Network) routing.Groups {
	switch d.Kind {
	case AddEntry:
		out, _ := resolveLink(base.Topo, d.Out)
		ops, _ := parseOps(d.Ops, base.Labels)
		for len(gs) < d.Priority {
			gs = append(gs, routing.Group{})
		}
		gs[d.Priority-1].Entries = append(gs[d.Priority-1].Entries, routing.Entry{Out: out, Ops: ops})
	case RemoveEntry:
		if d.Priority <= len(gs) {
			out, _ := resolveLink(base.Topo, d.Out)
			grp := &gs[d.Priority-1]
			kept := grp.Entries[:0]
			for _, e := range grp.Entries {
				if e.Out != out {
					kept = append(kept, e)
				}
			}
			grp.Entries = kept
		}
	case SwapPriority:
		hi := d.Priority
		if d.Priority2 > hi {
			hi = d.Priority2
		}
		for len(gs) < hi {
			gs = append(gs, routing.Group{})
		}
		gs[d.Priority-1], gs[d.Priority2-1] = gs[d.Priority2-1], gs[d.Priority-1]
	}
	return gs
}

func deepCopyGroups(gs routing.Groups) routing.Groups {
	out := make(routing.Groups, len(gs))
	for j, grp := range gs {
		es := make([]routing.Entry, len(grp.Entries))
		for i, e := range grp.Entries {
			es[i] = routing.Entry{Out: e.Out, Ops: append(routing.Ops(nil), e.Ops...)}
		}
		out[j].Entries = es
	}
	return out
}

// Verify runs one query against the current overlay, with translation
// served from the session's incremental cache.
func (s *Session) Verify(ctx context.Context, queryText string, opts engine.Options) (engine.Result, error) {
	res, _, err := s.VerifySnapshot(ctx, queryText, opts)
	return res, err
}

// VerifySnapshot is Verify returning also the overlay network the run was
// pinned to. Callers rendering the result (witness traces reference the
// network's links and headers) must render from the returned overlay: a
// delta applied concurrently with the verification swaps Overlay()
// underneath, while the run itself stays on the snapshot taken here.
func (s *Session) VerifySnapshot(ctx context.Context, queryText string, opts engine.Options) (engine.Result, *network.Network, error) {
	overlay := s.Overlay()
	rs := s.runner.VerifyOn(ctx, overlay, []string{queryText}, batch.Options{Workers: 1, Engine: opts})
	return rs[0].Res, overlay, rs[0].Err
}

// VerifyBatch runs a batch of queries against the current overlay on the
// session's shared runner (bounded worker pool, results in input order).
func (s *Session) VerifyBatch(ctx context.Context, queries []string, opts batch.Options) []batch.Result {
	rs, _ := s.VerifyBatchSnapshot(ctx, queries, opts)
	return rs
}

// VerifyBatchSnapshot is VerifyBatch returning also the overlay network
// the whole batch was pinned to; see VerifySnapshot.
func (s *Session) VerifyBatchSnapshot(ctx context.Context, queries []string, opts batch.Options) ([]batch.Result, *network.Network) {
	overlay := s.Overlay()
	return s.runner.VerifyOn(ctx, overlay, queries, opts), overlay
}

// CacheStats reports the session translation cache's assembled-system
// counters.
func (s *Session) CacheStats() translate.CacheStats { return s.cache.Stats() }

// BlockStats reports cumulative rule-block reuse across the session's
// incremental translations.
func (s *Session) BlockStats() translate.BuildStats { return s.cache.BlockStats() }

// FNV-1a, chained per record with a separator so delta boundaries matter.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvAdd(h uint64, s string) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= 0x1e // record separator
	h *= fnvPrime
	return h
}
