// Package scenario implements interactive what-if sessions: a base network
// plus a stack of composable deltas (fail/restore links, drain/restore
// routers, edit routing entries, reorder TE-group priorities) materialized
// as an overlay view that shares the base network's topology, label table
// and untouched routing partitions. Verification against the overlay goes
// through an incrementally maintained translation cache
// (translate.SessionCache): a delta only re-emits the pushdown rule blocks
// of the routers it touches, everything else is spliced from cache, and
// the result is byte-identical to verifying a from-scratch copy of the
// mutated network (see DESIGN.md §9 and the differential tests).
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// Kind enumerates the delta operations.
type Kind uint8

const (
	// FailLink removes a directed link from the overlay: routing entries
	// forwarding out of it disappear (activating backups at no cost to the
	// query's failure budget) and traffic can no longer arrive over it.
	FailLink Kind = iota
	// RestoreLink cancels an earlier FailLink of the same link.
	RestoreLink
	// DrainRouter takes a router out of service: every link incident to it
	// (in either direction) is treated as failed.
	DrainRouter
	// RestoreRouter cancels an earlier DrainRouter.
	RestoreRouter
	// AddEntry appends a forwarding entry to a (link, label, priority)
	// slot, creating the key or priority group if needed. Labels must
	// already exist in the base network's label table.
	AddEntry
	// RemoveEntry removes all entries with the given out-link from a
	// (link, label, priority) slot.
	RemoveEntry
	// SwapPriority exchanges the TE groups at two priorities of one
	// routing key.
	SwapPriority
)

// MaxPriority caps the priority slot a delta may address. Real TE tables
// hold a handful of backup groups (the paper's examples use two or three),
// while applyEdit pads a key's group list out to the named priority — so
// without a cap a single add-entry or swap-priority delta could make
// materialize allocate arbitrarily many groups.
const MaxPriority = 64

var kindWords = map[Kind]string{
	FailLink:      "fail",
	RestoreLink:   "restore",
	DrainRouter:   "drain",
	RestoreRouter: "undrain",
	AddEntry:      "add-entry",
	RemoveEntry:   "remove-entry",
	SwapPriority:  "swap-priority",
}

// Delta is one what-if mutation. Fields are textual (router, link and
// label names) so deltas are transport-friendly (HTTP JSON, scenario
// files) and self-describing; they are resolved against the base network
// when applied.
type Delta struct {
	Kind Kind `json:"kind"`
	// Link names the affected link for FailLink/RestoreLink, in the query
	// language's "A.if1#B.if2" form (or "A#B" when unambiguous).
	Link string `json:"link,omitempty"`
	// Router names the affected router for DrainRouter/RestoreRouter.
	Router string `json:"router,omitempty"`
	// In/Top/Priority address a routing-table slot for the entry and
	// priority deltas. Priority is 1-based, as in the paper's tables, and
	// bounded by MaxPriority.
	In       string `json:"in,omitempty"`
	Top      string `json:"top,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Out is the entry's outgoing link (AddEntry/RemoveEntry).
	Out string `json:"out,omitempty"`
	// Ops is the header rewrite of an added entry, ";"-separated:
	// "swap(l);push(l);pop" (empty = forward unchanged).
	Ops string `json:"ops,omitempty"`
	// Priority2 is SwapPriority's second slot.
	Priority2 int `json:"priority2,omitempty"`
}

// Canon renders the delta in its canonical single-line command form — the
// same syntax ParseDelta accepts. Fingerprints hash this rendering, so two
// deltas with equal Canon are interchangeable.
func (d Delta) Canon() string {
	switch d.Kind {
	case FailLink, RestoreLink:
		return kindWords[d.Kind] + " " + d.Link
	case DrainRouter, RestoreRouter:
		return kindWords[d.Kind] + " " + d.Router
	case AddEntry:
		s := fmt.Sprintf("add-entry %s %s %d %s", d.In, d.Top, d.Priority, d.Out)
		if d.Ops != "" {
			s += " " + d.Ops
		}
		return s
	case RemoveEntry:
		return fmt.Sprintf("remove-entry %s %s %d %s", d.In, d.Top, d.Priority, d.Out)
	case SwapPriority:
		return fmt.Sprintf("swap-priority %s %s %d %d", d.In, d.Top, d.Priority, d.Priority2)
	default:
		return fmt.Sprintf("unknown(%d)", d.Kind)
	}
}

// ParseDelta parses one command line:
//
//	fail <link>            restore <link>
//	drain <router>         undrain <router>
//	add-entry <in-link> <top-label> <priority> <out-link> [ops]
//	remove-entry <in-link> <top-label> <priority> <out-link>
//	swap-priority <in-link> <top-label> <p1> <p2>
//
// where [ops] is ";"-separated swap(l)/push(l)/pop. Names are validated
// against a network only when the delta is applied to a session.
func ParseDelta(line string) (Delta, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Delta{}, fmt.Errorf("scenario: empty delta command")
	}
	bad := func(format string, args ...interface{}) (Delta, error) {
		return Delta{}, fmt.Errorf("scenario: %s", fmt.Sprintf(format, args...))
	}
	switch fields[0] {
	case "fail", "restore":
		if len(fields) != 2 {
			return bad("%s wants 1 argument (link), got %d", fields[0], len(fields)-1)
		}
		k := FailLink
		if fields[0] == "restore" {
			k = RestoreLink
		}
		return Delta{Kind: k, Link: fields[1]}, nil
	case "drain", "undrain":
		if len(fields) != 2 {
			return bad("%s wants 1 argument (router), got %d", fields[0], len(fields)-1)
		}
		k := DrainRouter
		if fields[0] == "undrain" {
			k = RestoreRouter
		}
		return Delta{Kind: k, Router: fields[1]}, nil
	case "add-entry":
		if len(fields) != 5 && len(fields) != 6 {
			return bad("add-entry wants <in> <top> <priority> <out> [ops]")
		}
		p, err := strconv.Atoi(fields[3])
		if err != nil || p < 1 || p > MaxPriority {
			return bad("add-entry: bad priority %q (want 1..%d)", fields[3], MaxPriority)
		}
		d := Delta{Kind: AddEntry, In: fields[1], Top: fields[2], Priority: p, Out: fields[4]}
		if len(fields) == 6 {
			d.Ops = fields[5]
			if _, err := parseOps(d.Ops, nil); err != nil {
				return Delta{}, err
			}
		}
		return d, nil
	case "remove-entry":
		if len(fields) != 5 {
			return bad("remove-entry wants <in> <top> <priority> <out>")
		}
		p, err := strconv.Atoi(fields[3])
		if err != nil || p < 1 || p > MaxPriority {
			return bad("remove-entry: bad priority %q (want 1..%d)", fields[3], MaxPriority)
		}
		return Delta{Kind: RemoveEntry, In: fields[1], Top: fields[2], Priority: p, Out: fields[4]}, nil
	case "swap-priority":
		if len(fields) != 5 {
			return bad("swap-priority wants <in> <top> <p1> <p2>")
		}
		p1, err1 := strconv.Atoi(fields[3])
		p2, err2 := strconv.Atoi(fields[4])
		if err1 != nil || err2 != nil || p1 < 1 || p2 < 1 || p1 > MaxPriority || p2 > MaxPriority {
			return bad("swap-priority: bad priorities %q %q (want 1..%d)", fields[3], fields[4], MaxPriority)
		}
		return Delta{Kind: SwapPriority, In: fields[1], Top: fields[2], Priority: p1, Priority2: p2}, nil
	default:
		return bad("unknown delta command %q", fields[0])
	}
}

// ParseScenario parses a scenario file: one delta command per line, blank
// lines and "#" comments ignored.
func ParseScenario(text string) ([]Delta, error) {
	var out []Delta
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := ParseDelta(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// parseOps parses the ";"-separated op list. With a nil label table it
// only checks syntax (label IDs in the result are then meaningless).
func parseOps(s string, lt *labels.Table) (routing.Ops, error) {
	if s == "" {
		return nil, nil
	}
	var ops routing.Ops
	for _, tok := range strings.Split(s, ";") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "pop":
			ops = append(ops, routing.Pop())
		case strings.HasPrefix(tok, "swap(") && strings.HasSuffix(tok, ")"),
			strings.HasPrefix(tok, "push(") && strings.HasSuffix(tok, ")"):
			name := tok[5 : len(tok)-1]
			if name == "" {
				return nil, fmt.Errorf("scenario: empty label in op %q", tok)
			}
			var id labels.ID
			if lt != nil {
				if id = lt.Lookup(name); id == labels.None {
					return nil, fmt.Errorf("scenario: unknown label %q (deltas cannot introduce new labels)", name)
				}
			}
			if tok[0] == 's' {
				ops = append(ops, routing.Swap(id))
			} else {
				ops = append(ops, routing.Push(id))
			}
		default:
			return nil, fmt.Errorf("scenario: bad op %q (want swap(l), push(l) or pop)", tok)
		}
	}
	return ops, nil
}

// resolveLink resolves a link name in "A.if1#B.if2" form, falling back to
// "A#B" when the routers have exactly one link in that direction.
func resolveLink(g *topology.Graph, name string) (topology.LinkID, error) {
	for l := 0; l < g.NumLinks(); l++ {
		if g.LinkName(topology.LinkID(l)) == name {
			return topology.LinkID(l), nil
		}
	}
	if a, b, ok := strings.Cut(name, "#"); ok && !strings.Contains(a, ".") && !strings.Contains(b, ".") {
		ra, rb := g.RouterByName(a), g.RouterByName(b)
		if ra != topology.NoRouter && rb != topology.NoRouter {
			var cand []topology.LinkID
			for _, l := range g.LinksBetween(ra, rb) {
				if g.Source(l) == ra {
					cand = append(cand, l)
				}
			}
			if len(cand) == 1 {
				return cand[0], nil
			}
			if len(cand) > 1 {
				return 0, fmt.Errorf("scenario: link %q is ambiguous (%d parallel links; use the interface form)", name, len(cand))
			}
		}
	}
	return 0, fmt.Errorf("scenario: unknown link %q", name)
}

// ValidateDelta resolves every name d references against net and bounds
// its priority slots, without mutating anything — the same check ApplyAll
// and SetStack run before touching a session's stack. Stream ingesters use
// it to reject a bad event at arrival time instead of poisoning the whole
// coalesced flush it would land in.
func ValidateDelta(net *network.Network, d Delta) error { return d.validate(net) }

// CanonicalLink resolves a link name against the network and returns its
// canonical "A.if1#B.if2" rendering. Desired-state coalescers key failed
// links by this form so "A#B" and the interface-qualified name of the same
// link cancel each other.
func CanonicalLink(net *network.Network, name string) (string, error) {
	l, err := resolveLink(net.Topo, name)
	if err != nil {
		return "", err
	}
	return net.Topo.LinkName(l), nil
}

// touched returns the routers whose routing content the delta can affect —
// the dirty set driving rule-block invalidation. A link delta touches both
// endpoints (the source loses forwarding entries over the link, the target
// loses the keys arriving over it); a router delta touches the router and
// every neighbor; entry deltas touch the router owning the edited key (the
// target of its in-link).
func (d Delta) touched(net *network.Network) ([]topology.RouterID, error) {
	g := net.Topo
	switch d.Kind {
	case FailLink, RestoreLink:
		l, err := resolveLink(g, d.Link)
		if err != nil {
			return nil, err
		}
		return dedupRouters(g.Source(l), g.Target(l)), nil
	case DrainRouter, RestoreRouter:
		r := g.RouterByName(d.Router)
		if r == topology.NoRouter {
			return nil, fmt.Errorf("scenario: unknown router %q", d.Router)
		}
		rs := []topology.RouterID{r}
		for _, l := range g.Routers[r].Out() {
			rs = append(rs, g.Target(l))
		}
		for _, l := range g.Routers[r].In() {
			rs = append(rs, g.Source(l))
		}
		return dedupRouters(rs...), nil
	case AddEntry, RemoveEntry, SwapPriority:
		l, err := resolveLink(g, d.In)
		if err != nil {
			return nil, err
		}
		return []topology.RouterID{g.Target(l)}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown delta kind %d", d.Kind)
	}
}

func dedupRouters(rs ...topology.RouterID) []topology.RouterID {
	seen := make(map[topology.RouterID]bool, len(rs))
	var out []topology.RouterID
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// checkPriority bounds a priority slot to [1, MaxPriority]. Enforced here
// (not only in ParseDelta) because validate is the gate materialize relies
// on: applyEdit indexes gs[p-1] and pads the group list out to p, so an
// unvalidated priority either panics or allocates without bound.
func checkPriority(p int) error {
	if p < 1 || p > MaxPriority {
		return fmt.Errorf("scenario: priority %d out of range (want 1..%d)", p, MaxPriority)
	}
	return nil
}

// validate resolves every name the delta references against the base
// network and bounds its priority slots, without mutating anything.
func (d Delta) validate(net *network.Network) error {
	switch d.Kind {
	case FailLink, RestoreLink:
		_, err := resolveLink(net.Topo, d.Link)
		return err
	case DrainRouter, RestoreRouter:
		if net.Topo.RouterByName(d.Router) == topology.NoRouter {
			return fmt.Errorf("scenario: unknown router %q", d.Router)
		}
		return nil
	case AddEntry, RemoveEntry, SwapPriority:
		if err := checkPriority(d.Priority); err != nil {
			return err
		}
		if _, err := resolveLink(net.Topo, d.In); err != nil {
			return err
		}
		if net.Labels.Lookup(d.Top) == labels.None {
			return fmt.Errorf("scenario: unknown label %q", d.Top)
		}
		if d.Kind == SwapPriority {
			if err := checkPriority(d.Priority2); err != nil {
				return err
			}
			if d.Priority == d.Priority2 {
				return fmt.Errorf("scenario: swap-priority with equal priorities %d", d.Priority)
			}
			return nil
		}
		if _, err := resolveLink(net.Topo, d.Out); err != nil {
			return err
		}
		if d.Kind == AddEntry {
			_, err := parseOps(d.Ops, net.Labels)
			return err
		}
		return nil
	default:
		return fmt.Errorf("scenario: unknown delta kind %d", d.Kind)
	}
}
