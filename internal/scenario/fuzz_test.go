package scenario

import (
	"context"
	"reflect"
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/query"
)

// FuzzScenarioDeltas feeds arbitrary scenario files into a session on the
// running example. Parsed, appliable delta stacks must (a) materialize an
// overlay structurally identical to the from-scratch deep copy, (b) yield
// reproducible fingerprints when replayed onto a second session, and (c)
// verify byte-identically to a from-scratch build of the materialized
// network — the tentpole's differential soundness property under
// adversarial delta stacks.
func FuzzScenarioDeltas(f *testing.F) {
	f.Add("fail v2.oe4#v3.ie4")
	f.Add("drain v2\nfail v0.oe2#v1.ie2")
	f.Add("# comment\n\nfail v2.oe5#v4.ie5\nrestore v2.oe5#v4.ie5")
	f.Add("swap-priority v0.oe1#v2.ie1 s40 1 2")
	f.Add("add-entry v0.oe1#v2.ie1 s40 1 v2.oe5#v4.ie5 swap(s43);push(30)")
	f.Add("remove-entry v0.oe1#v2.ie1 s40 1 v2.oe4#v3.ie4\ndrain v4\nundrain v4")

	const queryText = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 1"

	f.Fuzz(func(t *testing.T, text string) {
		deltas, err := ParseScenario(text)
		if err != nil || len(deltas) == 0 || len(deltas) > 6 {
			return
		}
		re := gen.RunningExample()
		s := NewSession(re.Network)
		defer s.Close()
		applied := 0
		for _, d := range deltas {
			if _, err := s.Apply(d); err == nil {
				applied++
			}
		}
		if applied == 0 {
			return
		}

		// Replay determinism: the same accepted stack on a fresh session
		// reaches the same fingerprint.
		s2 := NewSession(re.Network)
		for _, ad := range s.Deltas() {
			if _, err := s2.Apply(ad.Delta); err != nil {
				t.Fatalf("replaying accepted delta %q failed: %v", ad.Canon, err)
			}
		}
		if s.Fingerprint() != s2.Fingerprint() {
			t.Fatalf("fingerprint not reproducible: %x vs %x", s.Fingerprint(), s2.Fingerprint())
		}
		s2.Close()

		// Overlay content must match the deep-copied materialization.
		overlay, fresh := s.Overlay(), s.MaterializeFresh()
		ko, kf := overlay.Routing.Keys(), fresh.Routing.Keys()
		if !reflect.DeepEqual(ko, kf) {
			t.Fatalf("overlay/fresh key sets differ: %v vs %v", ko, kf)
		}
		for _, k := range ko {
			if !reflect.DeepEqual(overlay.Routing.Lookup(k.In, k.Top), fresh.Routing.Lookup(k.In, k.Top)) {
				t.Fatalf("key %v: overlay and fresh groups differ", k)
			}
		}

		// Differential verification through the incremental cache.
		q, err := query.Parse(queryText, fresh)
		if err != nil {
			t.Fatal(err)
		}
		got, gerr := s.Verify(context.Background(), queryText, engine.Options{})
		want, werr := engine.Verify(fresh, q, engine.Options{})
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("error mismatch: %v vs %v", gerr, werr)
		}
		if gerr == nil {
			if got.Verdict != want.Verdict ||
				!reflect.DeepEqual(got.Trace, want.Trace) ||
				!reflect.DeepEqual(got.Failed, want.Failed) {
				t.Fatalf("differential mismatch:\n  got  %v %v %v\n  want %v %v %v",
					got.Verdict, got.Trace, got.Failed, want.Verdict, want.Trace, want.Failed)
			}
		}
	})
}
