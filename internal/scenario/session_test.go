package scenario

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/obs"
	"aalwines/internal/query"
	"aalwines/internal/topology"
)

func TestParseDeltaRoundTrip(t *testing.T) {
	cmds := []string{
		"fail v0.oe1#v2.ie1",
		"restore v0.oe1#v2.ie1",
		"drain v2",
		"undrain v2",
		"add-entry v0.oe1#v2.ie1 s40 2 v2.oe5#v4.ie5 swap(s43);push(30)",
		"add-entry v0.oe1#v2.ie1 s40 1 v2.oe4#v3.ie4",
		"remove-entry v0.oe1#v2.ie1 s40 2 v2.oe5#v4.ie5",
		"swap-priority v0.oe1#v2.ie1 s40 1 2",
	}
	for _, cmd := range cmds {
		d, err := ParseDelta(cmd)
		if err != nil {
			t.Fatalf("ParseDelta(%q): %v", cmd, err)
		}
		if d.Canon() != cmd {
			t.Errorf("Canon round trip: %q -> %q", cmd, d.Canon())
		}
		d2, err := ParseDelta(d.Canon())
		if err != nil || d2 != d {
			t.Errorf("reparse of %q: %+v err %v", cmd, d2, err)
		}
	}
	for _, bad := range []string{
		"", "explode v0", "fail", "add-entry a b c",
		"add-entry a b 0 c", "add-entry a b 1 c frobnicate(x)",
		"swap-priority a b 1 x",
	} {
		if _, err := ParseDelta(bad); err == nil {
			t.Errorf("ParseDelta(%q) succeeded, want error", bad)
		}
	}
}

func TestApplyValidates(t *testing.T) {
	re := gen.RunningExample()
	s := NewSession(re.Network)
	defer s.Close()
	for _, bad := range []string{
		"fail nosuch#link",
		"drain nowhere",
		"add-entry v0.oe1#v2.ie1 nolabel 1 v2.oe4#v3.ie4",
		"add-entry v0.oe1#v2.ie1 s40 1 v2.oe4#v3.ie4 swap(nolabel)",
		"swap-priority v0.oe1#v2.ie1 s40 2 2",
	} {
		if _, err := s.ApplyText(bad); err == nil {
			t.Errorf("ApplyText(%q) succeeded, want error", bad)
		}
	}
	if len(s.Deltas()) != 0 {
		t.Fatal("failed applies must not land on the stack")
	}
	seq, err := s.ApplyText("fail v2.oe4#v3.ie4")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Deltas(); len(got) != 1 || got[0].Seq != seq {
		t.Fatalf("stack = %+v", got)
	}
	if err := s.Undo(seq + 99); err == nil {
		t.Error("Undo of unknown seq succeeded")
	}
	if err := s.Undo(seq); err != nil {
		t.Fatal(err)
	}
	if s.Overlay() != re.Network {
		t.Error("empty stack must serve the base network itself")
	}
}

// TestPriorityBounds guards materialize against unvalidated priority
// slots: a directly constructed Delta with a zero priority must be
// rejected (not panic with index-out-of-range in applyEdit), and a huge
// priority must be rejected before the group list is padded out to it.
func TestPriorityBounds(t *testing.T) {
	re := gen.RunningExample()
	s := NewSession(re.Network)
	defer s.Close()

	for _, d := range []Delta{
		{Kind: AddEntry, In: "v0.oe1#v2.ie1", Top: "s40", Out: "v2.oe4#v3.ie4"}, // Priority left at 0
		{Kind: AddEntry, In: "v0.oe1#v2.ie1", Top: "s40", Priority: 2_000_000_000, Out: "v2.oe4#v3.ie4"},
		{Kind: RemoveEntry, In: "v0.oe1#v2.ie1", Top: "s40", Priority: MaxPriority + 1, Out: "v2.oe4#v3.ie4"},
		{Kind: SwapPriority, In: "v0.oe1#v2.ie1", Top: "s40", Priority: 1, Priority2: 1 << 30},
		{Kind: SwapPriority, In: "v0.oe1#v2.ie1", Top: "s40", Priority2: 2}, // Priority left at 0
	} {
		if _, err := s.Apply(d); err == nil {
			t.Errorf("Apply(%s) succeeded, want out-of-range error", d.Canon())
		}
	}
	if len(s.Deltas()) != 0 {
		t.Fatal("rejected deltas must not land on the stack")
	}
	for _, bad := range []string{
		"add-entry v0.oe1#v2.ie1 s40 2000000000 v2.oe4#v3.ie4",
		"swap-priority v0.oe1#v2.ie1 s40 1 2000000000",
	} {
		if _, err := ParseDelta(bad); err == nil {
			t.Errorf("ParseDelta(%q) succeeded, want error", bad)
		}
	}
	// The cap still leaves room for deep TE stacks.
	if _, err := s.Apply(Delta{Kind: AddEntry, In: "v0.oe1#v2.ie1", Top: "s40",
		Priority: MaxPriority, Out: "v2.oe4#v3.ie4"}); err != nil {
		t.Fatalf("Apply at MaxPriority: %v", err)
	}
}

// TestApplyAllAtomic checks the batch-apply contract: a batch with one
// invalid delta applies nothing and names the failing position, a valid
// batch applies everything, and the result is indistinguishable from
// sequential Apply calls.
func TestApplyAllAtomic(t *testing.T) {
	re := gen.RunningExample()
	s := NewSession(re.Network)
	defer s.Close()

	_, err := s.ApplyAllText([]string{"fail v2.oe4#v3.ie4", "drain nowhere"})
	if err == nil {
		t.Fatal("mixed batch succeeded, want error")
	}
	var ae *ApplyError
	if !errors.As(err, &ae) || ae.Index != 1 || ae.Cmd != "drain nowhere" {
		t.Fatalf("error = %v, want *ApplyError at index 1", err)
	}
	if len(s.Deltas()) != 0 || s.Overlay() != re.Network {
		t.Fatal("failed batch must leave the session untouched")
	}

	seqs, err := s.ApplyAllText([]string{"fail v2.oe4#v3.ie4", "drain v4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0]+1 != seqs[1] {
		t.Fatalf("seqs = %v", seqs)
	}
	s2 := NewSession(re.Network)
	defer s2.Close()
	for _, cmd := range []string{"fail v2.oe4#v3.ie4", "drain v4"} {
		if _, err := s2.ApplyText(cmd); err != nil {
			t.Fatal(err)
		}
	}
	if s.Fingerprint() != s2.Fingerprint() {
		t.Fatalf("batch fingerprint %x != sequential %x", s.Fingerprint(), s2.Fingerprint())
	}
}

// TestVerifySnapshotOverlay checks VerifySnapshot hands back the overlay
// the run was pinned to, agreeing with Verify at rest.
func TestVerifySnapshotOverlay(t *testing.T) {
	re := gen.RunningExample()
	s := NewSession(re.Network)
	defer s.Close()
	if _, err := s.ApplyText("fail v2.oe4#v3.ie4"); err != nil {
		t.Fatal(err)
	}
	const qt = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 1"
	res, overlay, err := s.VerifySnapshot(context.Background(), qt, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if overlay != s.Overlay() {
		t.Error("VerifySnapshot must return the overlay the run was pinned to")
	}
	want, err := s.Verify(context.Background(), qt, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameVerify(t, "snapshot vs verify", res, want)
}

// sameVerify asserts two engine results are byte-identical in everything
// the verdict contract covers: verdict, witness trace, failed set, weight.
func sameVerify(t *testing.T, ctx string, got, want engine.Result) {
	t.Helper()
	if got.Verdict != want.Verdict {
		t.Errorf("%s: verdict %v, want %v", ctx, got.Verdict, want.Verdict)
		return
	}
	if !reflect.DeepEqual(got.Trace, want.Trace) {
		t.Errorf("%s: traces differ:\n  got  %v\n  want %v", ctx, got.Trace, want.Trace)
	}
	if !reflect.DeepEqual(got.Failed, want.Failed) {
		t.Errorf("%s: failed sets differ: got %v want %v", ctx, got.Failed, want.Failed)
	}
	if !reflect.DeepEqual(got.Weight, want.Weight) {
		t.Errorf("%s: weights differ: got %v want %v", ctx, got.Weight, want.Weight)
	}
}

// checkDifferential verifies each query through the session and against a
// from-scratch build of the materialized network, early-accept both on and
// off, and requires byte-identical results.
func checkDifferential(t *testing.T, s *Session, queries []string) {
	t.Helper()
	fresh := s.MaterializeFresh()
	for _, qt := range queries {
		q, err := query.Parse(qt, fresh)
		if err != nil {
			t.Fatalf("parse %q: %v", qt, err)
		}
		for _, noEarly := range []bool{false, true} {
			opts := engine.Options{NoEarlyAccept: noEarly}
			got, gerr := s.Verify(context.Background(), qt, opts)
			want, werr := engine.Verify(fresh, q, opts)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("%q noEarly=%v: err %v vs %v", qt, noEarly, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			sameVerify(t, qt, got, want)
		}
	}
}

func TestSessionDifferentialRunningExample(t *testing.T) {
	re := gen.RunningExample()
	queries := []string{
		"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
		"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 1",
		"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 2",
		"<ip> [.#v0] .* [v3#.] <ip> 1",
	}
	stacks := [][]string{
		{},
		{"fail v2.oe4#v3.ie4"},
		{"fail v2.oe4#v3.ie4", "fail v2.oe5#v4.ie5"},
		{"drain v2"},
		{"drain v4", "undrain v4"},
		{"fail v0.oe2#v1.ie2", "restore v0.oe2#v1.ie2"},
		{"swap-priority v0.oe1#v2.ie1 s40 1 2"},
		{"remove-entry v0.oe1#v2.ie1 s40 1 v2.oe4#v3.ie4"},
		{"add-entry v0.oe1#v2.ie1 s40 1 v2.oe5#v4.ie5 swap(s43);push(30)"},
		{"fail v2.oe4#v3.ie4", "drain v1"},
	}
	for _, stack := range stacks {
		s := NewSession(re.Network)
		for _, cmd := range stack {
			if _, err := s.ApplyText(cmd); err != nil {
				t.Fatalf("apply %q: %v", cmd, err)
			}
		}
		checkDifferential(t, s, queries)
		// And after undoing the newest delta, if any.
		if ds := s.Deltas(); len(ds) > 0 {
			if err := s.Undo(ds[len(ds)-1].Seq); err != nil {
				t.Fatal(err)
			}
			checkDifferential(t, s, queries[:2])
		}
		s.Close()
	}
}

// TestSessionDifferentialRandomStacks drives randomly generated delta
// stacks over a synthesised zoo network and holds the same differential
// bar.
func TestSessionDifferentialRandomStacks(t *testing.T) {
	syn := gen.Zoo(gen.ZooOpts{Routers: 12, Seed: 3, Protection: true})
	var queries []string
	for _, gq := range syn.Queries(4, 3) {
		queries = append(queries, gq.Text)
	}
	g := syn.Net.Topo
	rng := rand.New(rand.NewSource(11))
	randLink := func() string {
		return g.LinkName(topology.LinkID(rng.Intn(g.NumLinks())))
	}
	randRouter := func() string {
		return g.Routers[rng.Intn(g.NumRouters())].Name
	}
	for trial := 0; trial < 8; trial++ {
		s := NewSession(syn.Net)
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			var cmd string
			switch rng.Intn(4) {
			case 0, 1:
				cmd = "fail " + randLink()
			case 2:
				cmd = "drain " + randRouter()
			default:
				cmd = "restore " + randLink()
			}
			if _, err := s.ApplyText(cmd); err != nil {
				t.Fatalf("apply %q: %v", cmd, err)
			}
		}
		checkDifferential(t, s, queries)
		s.Close()
	}
}

// TestCacheInvalidationUnderMutation is the satellite coverage: a delta
// touching router R rebuilds exactly the rule blocks of the touched
// routers (asserted through the scenario obs counters), and undo restores
// the prior hit rate — repeat verifies are pure assembled-system hits and
// the rebuild counter stays flat.
func TestCacheInvalidationUnderMutation(t *testing.T) {
	re := gen.RunningExample()
	qt := "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"
	ctx := context.Background()

	cReused := obs.GetCounter("scenario_rule_blocks_reused_total")
	cRebuilt := obs.GetCounter("scenario_rule_blocks_rebuilt_total")
	cHits := obs.GetCounter("scenario_overlay_cache_hits_total")

	s := NewSession(re.Network)
	defer s.Close()

	run := func() engine.Result {
		t.Helper()
		res, err := s.Verify(ctx, qt, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.UnderUsed {
			t.Fatal("test query must be decided by the over-approximation alone")
		}
		return res
	}

	// Cold: every key's block is rebuilt.
	nKeys := len(re.Network.Routing.Keys())
	re0, rb0 := cReused.Value(), cRebuilt.Value()
	run()
	if d := cRebuilt.Value() - rb0; d != int64(nKeys) {
		t.Errorf("cold verify rebuilt %d blocks, want %d", d, nKeys)
	}

	// Warm repeat: a pure assembled-system hit, no block activity at all.
	re0, rb0 = cReused.Value(), cRebuilt.Value()
	h0 := cHits.Value()
	run()
	if cRebuilt.Value() != rb0 || cReused.Value() != re0 {
		t.Error("repeat verify touched rule blocks")
	}
	if cHits.Value() != h0+1 {
		t.Error("repeat verify was not an overlay cache hit")
	}

	// Delta: fail e4 (v2 -> v3). Touched routers are v2 and v3; exactly the
	// overlay keys owned by them (keys whose in-link targets v2 or v3) may
	// be rebuilt, everything else must be spliced from cache.
	failLink := re.Links["e4"]
	touched := map[topology.RouterID]bool{
		re.Network.Topo.Source(failLink): true,
		re.Network.Topo.Target(failLink): true,
	}
	if _, err := s.ApplyText("fail " + re.Network.Topo.LinkName(failLink)); err != nil {
		t.Fatal(err)
	}
	overlay := s.Overlay()
	dirty := 0
	for _, k := range overlay.Routing.Keys() {
		if touched[overlay.Topo.Target(k.In)] {
			dirty++
		}
	}
	clean := len(overlay.Routing.Keys()) - dirty
	re0, rb0 = cReused.Value(), cRebuilt.Value()
	run()
	if d := cRebuilt.Value() - rb0; d != int64(dirty) {
		t.Errorf("delta verify rebuilt %d blocks, want exactly the %d dirty keys", d, dirty)
	}
	if d := cReused.Value() - re0; d != int64(clean) {
		t.Errorf("delta verify spliced %d blocks, want the %d untouched keys", d, clean)
	}

	// Undo: versions revert, so reassembly splices every key from cache —
	// zero rebuilds — and the next repeat is a pure hit again.
	if err := s.Undo(s.Deltas()[0].Seq); err != nil {
		t.Fatal(err)
	}
	re0, rb0 = cReused.Value(), cRebuilt.Value()
	run()
	if d := cRebuilt.Value() - rb0; d != 0 {
		t.Errorf("post-undo verify rebuilt %d blocks, want 0", d)
	}
	if d := cReused.Value() - re0; d != int64(nKeys) {
		t.Errorf("post-undo verify spliced %d blocks, want all %d", d, nKeys)
	}
	h0 = cHits.Value()
	run()
	if cHits.Value() != h0+1 {
		t.Error("post-undo repeat verify was not a pure cache hit")
	}
	if s.CacheStats().Hits < 2 {
		t.Errorf("session cache stats = %+v, want >= 2 hits", s.CacheStats())
	}
}

// TestMaterializeFreshIsDeepCopy guards the differential baseline: the
// fresh copy must not share routing structure with base or overlay.
func TestMaterializeFreshIsDeepCopy(t *testing.T) {
	re := gen.RunningExample()
	s := NewSession(re.Network)
	defer s.Close()
	if _, err := s.ApplyText("fail v2.oe4#v3.ie4"); err != nil {
		t.Fatal(err)
	}
	fresh := s.MaterializeFresh()
	overlay := s.Overlay()
	if fresh == overlay || fresh.Routing == overlay.Routing {
		t.Fatal("fresh materialization shares the overlay table")
	}
	ok, ob := fresh.Routing.Keys(), overlay.Routing.Keys()
	if !reflect.DeepEqual(ok, ob) {
		t.Fatalf("key sets differ: %v vs %v", ok, ob)
	}
	for _, k := range ok {
		fg := fresh.Routing.Lookup(k.In, k.Top)
		og := overlay.Routing.Lookup(k.In, k.Top)
		if !reflect.DeepEqual(fg, og) {
			t.Errorf("key %v: groups differ", k)
		}
	}
}

// TestSetStack checks the atomic stack replacement the resilience sweep
// steps with: any SetStack result must be indistinguishable (fingerprint,
// routing content, differential verify) from a fresh session that ApplyAll'd
// the same deltas, an empty stack serves the base network itself, and a
// stack with an invalid delta is rejected wholesale.
func TestSetStack(t *testing.T) {
	re := gen.RunningExample()
	queries := []string{
		"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
		"<ip> [.#v0] .* [v3#.] <ip> 1",
	}
	stacks := [][]string{
		{"fail v2.oe4#v3.ie4"},
		{"fail v2.oe4#v3.ie4", "fail v2.oe5#v4.ie5"},
		{"fail v2.oe5#v4.ie5"}, // shares no delta with the previous stack
		{"drain v2"},
		{},
		{"fail v0.oe2#v1.ie2", "drain v4"},
	}
	s := NewSession(re.Network)
	defer s.Close()
	for _, stack := range stacks {
		ds := make([]Delta, len(stack))
		for i, cmd := range stack {
			d, err := ParseDelta(cmd)
			if err != nil {
				t.Fatal(err)
			}
			ds[i] = d
		}
		if _, err := s.SetStack(ds); err != nil {
			t.Fatalf("SetStack(%v): %v", stack, err)
		}
		if got := s.Deltas(); len(got) != len(ds) {
			t.Fatalf("stack depth %d after SetStack(%v)", len(got), stack)
		}
		ref := NewSession(re.Network)
		if _, err := ref.ApplyAll(ds); err != nil {
			t.Fatal(err)
		}
		if s.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("SetStack(%v) fingerprint %x, fresh ApplyAll %x",
				stack, s.Fingerprint(), ref.Fingerprint())
		}
		ref.Close()
		if len(ds) == 0 && s.Overlay() != re.Network {
			t.Fatal("empty SetStack must serve the base network itself")
		}
		checkDifferential(t, s, queries)
	}

	// Rejection is atomic: the whole stack is validated before anything is
	// dropped, so the session keeps its current stack on error.
	if _, err := s.SetStack([]Delta{{Kind: FailLink, Link: "v2.oe4#v3.ie4"}}); err != nil {
		t.Fatal(err)
	}
	fpBefore := s.Fingerprint()
	bad := []Delta{
		{Kind: FailLink, Link: "v2.oe5#v4.ie5"},
		{Kind: FailLink, Link: "nosuch#link"},
	}
	_, err := s.SetStack(bad)
	var ae *ApplyError
	if !errors.As(err, &ae) || ae.Index != 1 {
		t.Fatalf("SetStack with invalid delta: err %v, want *ApplyError at index 1", err)
	}
	if s.Fingerprint() != fpBefore || len(s.Deltas()) != 1 {
		t.Fatal("failed SetStack must leave the session unchanged")
	}
	checkDifferential(t, s, queries[:1])
}
