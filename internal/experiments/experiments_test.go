package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"aalwines/internal/experiments"
	"aalwines/internal/gen"
)

func TestTable1SmallRun(t *testing.T) {
	rows := experiments.Table1(experiments.Table1Config{
		Services: 1, Edge: 8, Seed: 1, Budget: 200_000_000,
	})
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i, r := range rows {
		// Engines must agree on the verdict for each query.
		for k := experiments.EngineKind(1); k < experiments.NumEngines; k++ {
			if !r.Out[0] && !r.Out[k] && r.Verd[0] != r.Verd[k] {
				t.Errorf("row %d: %s=%v, %s=%v", i,
					experiments.EngineKind(0), r.Verd[0], k, r.Verd[k])
			}
		}
		for k := experiments.EngineKind(0); k < experiments.NumEngines; k++ {
			if !r.Out[k] && r.Times[k] <= 0 {
				t.Errorf("row %d engine %s: non-positive time", i, k)
			}
		}
	}
	var buf bytes.Buffer
	experiments.PrintTable1(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "Moped") || !strings.Contains(out, "Failures") {
		t.Fatalf("table output:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 7 {
		t.Errorf("table has %d lines, want header + 6 rows", got)
	}
}

func TestFigure4SmallRun(t *testing.T) {
	res := experiments.Figure4(experiments.Figure4Config{
		Networks: 2, PerNet: 6, Seed: 5, Budget: 200_000_000, MaxRouter: 30,
	})
	if res.Total != 12 {
		t.Fatalf("total = %d, want 12", res.Total)
	}
	for k := experiments.EngineKind(0); k < experiments.NumEngines; k++ {
		if res.Solved[k] == 0 {
			t.Errorf("engine %s solved nothing", k)
		}
		// Series must be sorted.
		for i := 1; i < len(res.Series[k]); i++ {
			if res.Series[k][i] < res.Series[k][i-1] {
				t.Errorf("engine %s series not sorted", k)
			}
		}
	}
	// Engines see identical instances, so satisfiable counts agree.
	if res.Satisfied[experiments.Moped] != res.Satisfied[experiments.Dual] {
		t.Errorf("satisfied: moped=%d dual=%d",
			res.Satisfied[experiments.Moped], res.Satisfied[experiments.Dual])
	}
	var buf bytes.Buffer
	experiments.PrintFigure4(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "rank,moped,dual,failures") {
		t.Fatalf("figure output:\n%s", out)
	}
	if !strings.Contains(out, "inconclusive") {
		t.Error("summary block missing")
	}
}

func TestBudgetCausesTimeouts(t *testing.T) {
	s := gen.Nordunet(gen.NordOpts{Services: 1, EdgeRouters: 8, Seed: 1})
	q := s.Table1Queries()[0]
	m := experiments.RunOne(s, q, experiments.Dual, 1)
	if !m.TimedOut {
		t.Fatalf("budget=1 did not time out: %+v", m)
	}
	if m.Err != nil {
		t.Fatalf("timeout should not be an error: %v", m.Err)
	}
}

func TestEngineKindStrings(t *testing.T) {
	if experiments.Moped.String() != "Moped" ||
		experiments.Dual.String() != "Dual" ||
		experiments.Failures.String() != "Failures" {
		t.Fatal("engine names wrong")
	}
	if experiments.Failures.Options(0).Spec == nil {
		t.Fatal("Failures engine has no spec")
	}
	if experiments.Moped.Options(0).Saturate == nil {
		t.Fatal("Moped engine has no custom saturator")
	}
}
