package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestLadderPaperScaleRules pins the tentpole claim behind the
// nordunet-svc-250k rung: its generator emits a dataplane of more than
// 250k rules, the scale of the paper's heaviest NORDUnet configuration.
func TestLadderPaperScaleRules(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	var cfg BenchVerifyConfig
	for _, rung := range BenchLadder() {
		if rung.Name == "nordunet-svc-250k" {
			cfg = rung.Cfg
		}
	}
	if cfg.Network == "" {
		t.Fatal("ladder has no nordunet-svc-250k rung")
	}
	net, queries, err := benchWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := net.Routing.NumRules(); n <= 250_000 {
		t.Fatalf("nordunet-svc-250k rung has %d rules, want > 250000", n)
	}
	if len(queries) == 0 {
		t.Fatal("rung resolved no queries")
	}
}

// TestLadderHasPaperScaleRungs keeps the rung set aligned with the
// documented ladder: anyone dropping a rung also has to touch this test.
func TestLadderHasPaperScaleRungs(t *testing.T) {
	want := map[string]bool{
		"running-example": false, "zoo": false, "nordunet": false,
		"fattree-k8": false, "zoo-240": false, "nordunet-svc-250k": false,
	}
	for _, rung := range BenchLadder() {
		if _, ok := want[rung.Name]; !ok {
			t.Errorf("unexpected rung %q", rung.Name)
		}
		want[rung.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("ladder is missing rung %q", name)
		}
	}
}

// TestReadBenchVerifyV1Compat checks that pre-memory v1 documents still
// validate and parse, and that the memory gate silently skips them.
func TestReadBenchVerifyV1Compat(t *testing.T) {
	rep, err := BenchVerify(BenchVerifyConfig{Repeat: 1, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchVerifySchema || rep.Memory == nil {
		t.Fatalf("fresh report should be %s with a memory block, got %s / %v",
			BenchVerifySchema, rep.Schema, rep.Memory)
	}

	v1 := *rep
	v1.Schema = BenchVerifySchemaV1
	v1.Memory = nil
	data, err := json.MarshalIndent(&v1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReadBenchVerify(data)
	if err != nil {
		t.Fatalf("v1 document rejected: %v", err)
	}
	// memTol > 0 must not fail against a baseline that has no memory block.
	if err := CompareBenchVerify(base, rep, 0, 0.35); err != nil {
		t.Fatalf("memory gate fired on a v1 baseline: %v", err)
	}

	// A v2 document without the memory block is malformed ...
	v2 := *rep
	v2.Memory = nil
	data, _ = json.MarshalIndent(&v2, "", "  ")
	if err := ValidateBenchVerify(data); err == nil || !strings.Contains(err.Error(), "memory") {
		t.Fatalf("v2 without memory block: got %v, want memory error", err)
	}
	// ... and so is a v1 document that carries one.
	v1bad := *rep
	v1bad.Schema = BenchVerifySchemaV1
	data, _ = json.MarshalIndent(&v1bad, "", "  ")
	if err := ValidateBenchVerify(data); err == nil || !strings.Contains(err.Error(), "memory") {
		t.Fatalf("v1 with memory block: got %v, want memory error", err)
	}
}

// TestCompareBenchVerifyMemoryGate exercises the alloc-per-run gate: a
// regression beyond tolerance+grace fails, one inside the envelope passes,
// and memTol <= 0 disables the gate entirely.
func TestCompareBenchVerifyMemoryGate(t *testing.T) {
	base, err := BenchVerify(BenchVerifyConfig{Repeat: 1, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fresh := *base
	mem := *base.Memory
	fresh.Memory = &mem

	if err := CompareBenchVerify(base, &fresh, 0, 0.35); err != nil {
		t.Fatalf("identical memory failed the gate: %v", err)
	}
	mem.AllocBytesPerRun = base.Memory.AllocBytesPerRun*2 + 2*ladderMemGraceBytes
	if err := CompareBenchVerify(base, &fresh, 0, 0.35); err == nil {
		t.Fatal("2x alloc bytes (beyond grace) passed the gate")
	}
	if err := CompareBenchVerify(base, &fresh, 0, 0); err != nil {
		t.Fatalf("memTol 0 should disable the gate: %v", err)
	}
	mem.AllocBytesPerRun = base.Memory.AllocBytesPerRun
	mem.AllocsPerRun = base.Memory.AllocsPerRun*2 + 2*ladderMemGraceAllocs
	if err := CompareBenchVerify(base, &fresh, 0, 0.35); err == nil {
		t.Fatal("2x allocs/run (beyond grace) passed the gate")
	}
}
