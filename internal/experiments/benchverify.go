package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/network"
	"aalwines/internal/obs"
)

// BenchVerifySchema identifies the current BENCH_verify.json document
// layout. v2 added the memory block (alloc/op and peak RSS); v1 documents
// carry no memory block and stay readable through the compat path in
// ValidateBenchVerify, so old committed baselines keep validating.
const (
	BenchVerifySchema   = "aalwines/bench-verify/v2"
	BenchVerifySchemaV1 = "aalwines/bench-verify/v1"
)

// BenchVerifyConfig configures the canonical verification benchmark: a
// fixed query set swept Repeat times through a batch runner, with latency,
// cache and saturation metrics collected from the observability registry.
type BenchVerifyConfig struct {
	// Network is a builtin name: "running-example" (default), "nordunet",
	// "zoo", or one of the paper-scale workloads "nordunet-svc-250k"
	// (>250k rules), "zoo-240" (the paper's largest zoo size) and
	// "fattree-k8" (112-switch Clos fabric).
	Network string
	// Repeat sweeps the query set this many times (default 3); repeats
	// after the first run entirely from the warm translation cache.
	Repeat int
	// Workers is the batch pool size (0 = GOMAXPROCS).
	Workers int
	// SatJ is the per-query saturation parallelism (engine.Options.SatJ);
	// 0/1 = serial. Results are byte-identical across values, so every
	// deterministic counter in the report is too.
	SatJ int
	// Budget bounds saturation work per direction (0 = unlimited).
	Budget int64
	// Seed drives the generated networks and query sets.
	Seed int64
	// Queries overrides the network's default query set.
	Queries []string
}

// BenchVerifyReport is the content of BENCH_verify.json.
type BenchVerifyReport struct {
	Schema     string          `json:"schema"`
	Network    string          `json:"network"`
	Queries    int             `json:"queries"`
	Repeat     int             `json:"repeat"`
	Runs       int             `json:"runs"`
	Workers    int             `json:"workers"`
	SatJ       int             `json:"satJ,omitempty"`
	Seed       int64           `json:"seed"`
	Budget     int64           `json:"budget"`
	Verdicts   map[string]int  `json:"verdicts"`
	Errors     int             `json:"errors"`
	LatencyMS  BenchLatency    `json:"latencyMs"`
	Cache      BenchCache      `json:"cache"`
	Saturation BenchSaturation `json:"saturation"`
	Memory     *BenchMemory    `json:"memory,omitempty"`
	ElapsedMS  float64         `json:"elapsedMs"`
}

// BenchMemory reports the allocation cost of the benchmark as
// runtime.MemStats deltas over the whole sweep divided by the number of
// runs. Unlike the saturation counters, allocation figures are not
// bit-reproducible — GC timing and sync.Pool reuse shift them by a few
// percent between runs — so the ladder gates them with a generous relative
// tolerance instead of an exact match. PeakRSSBytes is the process
// high-water mark (VmHWM on Linux, 0 elsewhere); it is a process-lifetime
// figure recorded for context and never gated.
type BenchMemory struct {
	AllocBytesPerRun int64 `json:"allocBytesPerRun"`
	AllocsPerRun     int64 `json:"allocsPerRun"`
	PeakRSSBytes     int64 `json:"peakRssBytes,omitempty"`
}

// BenchLatency summarises the per-query latency distribution in
// milliseconds, computed exactly from the sorted samples (nearest-rank
// percentiles), not from histogram buckets.
type BenchLatency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// BenchCache reports translation-cache effectiveness over the benchmark.
type BenchCache struct {
	Entries int     `json:"entries"`
	Gets    int64   `json:"gets"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hitRate"`
}

// BenchSaturation reports the saturation work done during the benchmark,
// as deltas of the process-wide pds_* counters (so a report isolates its
// own work even when other verification ran in the same process).
type BenchSaturation struct {
	Runs            int64 `json:"runs"`
	WorklistPops    int64 `json:"worklistPops"`
	WorklistPushes  int64 `json:"worklistPushes"`
	TransInserted   int64 `json:"transInserted"`
	PeakDepth       int64 `json:"peakDepth"`
	BudgetSpent     int64 `json:"budgetSpent"`
	BudgetExhausted int64 `json:"budgetExhausted"`
	// EarlyAccepts counts saturation runs cut short by the early-accept
	// probe; IndexProbes counts candidate edges consulted through the
	// per-state symbol index. Together they quantify how much of the
	// benchmark's work the hot-path machinery saved.
	EarlyAccepts int64 `json:"earlyAccepts"`
	IndexProbes  int64 `json:"indexProbes"`
	// ParallelRuns counts post* runs that took the sharded speculative
	// path (SatJ > 1 after clamping); ShardSteals counts speculation tasks
	// drained cross-shard by the work-stealing workers.
	ParallelRuns int64 `json:"parallelRuns,omitempty"`
	ShardSteals  int64 `json:"shardSteals,omitempty"`
}

// runningExampleQueries is the φ set of the paper's running example
// (Figure 1), mirroring examples/quickstart.
var runningExampleQueries = []string{
	"<ip> [.#v0] .* [v3#.] <ip> 0",
	"<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
	"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
	"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
	"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
	"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1",
}

// benchWorkload resolves the configured network and query set.
func benchWorkload(cfg BenchVerifyConfig) (*network.Network, []string, error) {
	name := cfg.Network
	if name == "" {
		name = "running-example"
	}
	var net *network.Network
	var queries []string
	switch name {
	case "running-example", "example":
		name = "running-example"
		net = gen.RunningExample().Network
		queries = runningExampleQueries
	case "nordunet":
		s := gen.Nordunet(gen.NordOpts{Services: 2, EdgeRouters: 10, Seed: cfg.Seed})
		net = s.Net
		for _, q := range s.Table1Queries() {
			queries = append(queries, q.Text)
		}
	case "zoo":
		s := gen.Zoo(gen.ZooOpts{Routers: 30, Seed: cfg.Seed, Protection: true})
		net = s.Net
		for _, q := range s.Queries(12, cfg.Seed) {
			queries = append(queries, q.Text)
		}
	case "nordunet-svc-250k":
		// The paper's heaviest configuration: every NORDUnet edge router
		// carries 70 service chains per pair, which pushes the dataplane
		// past 250k rules (asserted by TestLadderPaperScaleRules).
		s := gen.Nordunet(gen.NordOpts{Services: 70, EdgeRouters: 31, Seed: cfg.Seed})
		net = s.Net
		for _, q := range s.Table1Queries() {
			queries = append(queries, q.Text)
		}
	case "zoo-240":
		s := gen.Zoo(gen.ZooOpts{Routers: 240, Seed: cfg.Seed, Protection: true})
		net = s.Net
		for _, q := range s.Queries(12, cfg.Seed) {
			queries = append(queries, q.Text)
		}
	case "fattree-k8":
		s := gen.FatTree(gen.FatTreeOpts{K: 8, Seed: cfg.Seed})
		net = s.Net
		for _, q := range s.Queries(12, cfg.Seed) {
			queries = append(queries, q.Text)
		}
	default:
		return nil, nil, fmt.Errorf("benchverify: unknown network %q", name)
	}
	if len(cfg.Queries) > 0 {
		queries = cfg.Queries
	}
	return net, queries, nil
}

// BenchVerify runs the canonical verification benchmark and returns its
// report.
func BenchVerify(cfg BenchVerifyConfig) (*BenchVerifyReport, error) {
	net, queries, err := benchWorkload(cfg)
	if err != nil {
		return nil, err
	}
	repeat := cfg.Repeat
	if repeat <= 0 {
		repeat = 3
	}

	pre := obs.Default.Snapshot()
	var msPre, msPost runtime.MemStats
	runtime.ReadMemStats(&msPre)
	runner := batch.NewRunner(net)
	start := time.Now()
	var all []batch.Result
	for r := 0; r < repeat; r++ {
		all = append(all, runner.Verify(context.Background(), queries, batch.Options{
			Workers: cfg.Workers,
			Engine:  engine.Options{Budget: cfg.Budget, SatJ: cfg.SatJ},
		})...)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msPost)
	post := obs.Default.Snapshot()

	rep := &BenchVerifyReport{
		Schema:    BenchVerifySchema,
		Network:   net.Name,
		Queries:   len(queries),
		Repeat:    repeat,
		Runs:      len(all),
		Workers:   cfg.Workers,
		SatJ:      cfg.SatJ,
		Seed:      cfg.Seed,
		Budget:    cfg.Budget,
		Verdicts:  map[string]int{},
		ElapsedMS: elapsed.Seconds() * 1000,
	}
	samples := make([]float64, 0, len(all))
	var sum float64
	for _, r := range all {
		ms := r.Elapsed.Seconds() * 1000
		samples = append(samples, ms)
		sum += ms
		if r.Err != nil {
			rep.Errors++
			continue
		}
		rep.Verdicts[r.Res.Verdict.String()]++
	}
	sort.Float64s(samples)
	rep.LatencyMS = BenchLatency{
		P50:  nearestRank(samples, 0.50),
		P90:  nearestRank(samples, 0.90),
		P99:  nearestRank(samples, 0.99),
		Max:  nearestRank(samples, 1),
		Mean: sum / float64(len(samples)),
	}
	cs := runner.CacheStats()
	rep.Cache = BenchCache{
		Entries: cs.Entries, Gets: cs.Gets, Hits: cs.Hits, Misses: cs.Misses,
		HitRate: cs.HitRate(),
	}
	rep.Saturation = saturationDelta(pre, post)
	rep.Memory = &BenchMemory{
		AllocBytesPerRun: int64(msPost.TotalAlloc-msPre.TotalAlloc) / int64(len(all)),
		AllocsPerRun:     int64(msPost.Mallocs-msPre.Mallocs) / int64(len(all)),
		PeakRSSBytes:     readPeakRSS(),
	}
	return rep, nil
}

// readPeakRSS returns the process peak resident set (VmHWM) in bytes, or 0
// on platforms without /proc.
func readPeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// nearestRank returns the q-quantile of sorted samples by the
// nearest-rank definition (exact sample values, no interpolation).
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// saturationDelta subtracts two registry snapshots over the pds_* counter
// families, summing across the alg label.
func saturationDelta(pre, post obs.Snapshot) BenchSaturation {
	delta := func(prefix string) int64 {
		var d int64
		for name, v := range post.Counters {
			if strings.HasPrefix(name, prefix) {
				d += v - pre.Counters[name]
			}
		}
		return d
	}
	var peak int64
	for name, v := range post.Gauges {
		if strings.HasPrefix(name, "pds_worklist_peak_depth") && v > peak {
			peak = v
		}
	}
	return BenchSaturation{
		Runs:            delta("pds_saturation_runs_total"),
		WorklistPops:    delta("pds_worklist_pops_total"),
		WorklistPushes:  delta("pds_worklist_pushes_total"),
		TransInserted:   delta("pds_trans_inserted_total"),
		PeakDepth:       peak,
		BudgetSpent:     delta("pds_budget_spent_total"),
		BudgetExhausted: delta("pds_budget_exhausted_total"),
		EarlyAccepts:    delta("pds_early_accept_total"),
		IndexProbes:     delta("pds_index_probes_total"),
		ParallelRuns:    delta("pds_parallel_runs_total"),
		ShardSteals:     delta("pds_shard_steals_total"),
	}
}

// LadderRung is one workload of the scaled benchmark ladder.
type LadderRung struct {
	Name string
	Cfg  BenchVerifyConfig
}

// BenchLadder returns the canonical scaled workload ladder, smallest to
// largest: the paper's running example, a synthesised topology-zoo-scale
// network, a NORDUnet-scale MPLS backbone, and the paper-scale rungs — a
// k=8 Clos fabric, the paper's largest zoo size (240 routers) and the
// >250k-rule NORDUnet service configuration. Each rung writes its own
// BENCH_verify_<name>.json so regressions localise to a scale. The
// paper-scale rungs sweep once (the translation cache never warms twice at
// that size within a sane CI budget); the small rungs keep Repeat 3 so the
// warm-cache path stays covered.
func BenchLadder() []LadderRung {
	return []LadderRung{
		{Name: "running-example", Cfg: BenchVerifyConfig{Network: "running-example", Repeat: 3, Seed: 1}},
		{Name: "zoo", Cfg: BenchVerifyConfig{Network: "zoo", Repeat: 3, Seed: 1}},
		{Name: "nordunet", Cfg: BenchVerifyConfig{Network: "nordunet", Repeat: 3, Seed: 1}},
		{Name: "fattree-k8", Cfg: BenchVerifyConfig{Network: "fattree-k8", Repeat: 2, Seed: 1}},
		{Name: "zoo-240", Cfg: BenchVerifyConfig{Network: "zoo-240", Repeat: 1, Seed: 1}},
		{Name: "nordunet-svc-250k", Cfg: BenchVerifyConfig{Network: "nordunet-svc-250k", Repeat: 1, Seed: 1}},
	}
}

// RunBenchLadder runs every rung of the ladder, writes one validated
// BENCH_verify_<name>.json per rung into dir, and returns the written
// paths alongside the reports, in rung order. satJ sets the per-query
// saturation parallelism (0/1 = serial).
func RunBenchLadder(dir string, workers, satJ int) ([]string, []*BenchVerifyReport, error) {
	var paths []string
	var reps []*BenchVerifyReport
	for _, rung := range BenchLadder() {
		cfg := rung.Cfg
		cfg.Workers = workers
		cfg.SatJ = satJ
		rep, err := BenchVerify(cfg)
		if err != nil {
			return paths, reps, fmt.Errorf("benchverify: ladder rung %s: %w", rung.Name, err)
		}
		path := filepath.Join(dir, "BENCH_verify_"+rung.Name+".json")
		// WriteBenchVerify validates the exact bytes before the rename, so
		// a written rung is a valid rung.
		if err := WriteBenchVerify(path, rep); err != nil {
			return paths, reps, fmt.Errorf("%s: %w", path, err)
		}
		paths = append(paths, path)
		reps = append(reps, rep)
	}
	return paths, reps, nil
}

// WriteBenchVerify writes the report to path atomically after validating
// it against its own schema (WriteReport).
func WriteBenchVerify(path string, rep *BenchVerifyReport) error {
	return WriteReport(path, rep, ValidateBenchVerify)
}

// ValidateBenchVerify checks that data is a well-formed BENCH_verify.json:
// strict field set, the expected schema string, and internal consistency
// (run counts, verdict totals, percentile ordering, cache arithmetic).
func ValidateBenchVerify(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep BenchVerifyReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("benchverify: parse: %w", err)
	}
	switch rep.Schema {
	case BenchVerifySchema:
		if rep.Memory == nil {
			return fmt.Errorf("benchverify: schema %s requires a memory block", rep.Schema)
		}
	case BenchVerifySchemaV1:
		// v1 predates the memory block; a v1 document carrying one is
		// mislabelled.
		if rep.Memory != nil {
			return fmt.Errorf("benchverify: schema %s must not carry a memory block", rep.Schema)
		}
	default:
		return fmt.Errorf("benchverify: schema %q, want %q (or legacy %q)",
			rep.Schema, BenchVerifySchema, BenchVerifySchemaV1)
	}
	if rep.Network == "" {
		return fmt.Errorf("benchverify: empty network")
	}
	if rep.Queries <= 0 || rep.Repeat <= 0 || rep.Runs != rep.Queries*rep.Repeat {
		return fmt.Errorf("benchverify: runs=%d, want queries(%d) × repeat(%d)",
			rep.Runs, rep.Queries, rep.Repeat)
	}
	total := rep.Errors
	for v, n := range rep.Verdicts {
		if n < 0 {
			return fmt.Errorf("benchverify: negative verdict count %s=%d", v, n)
		}
		total += n
	}
	if total != rep.Runs {
		return fmt.Errorf("benchverify: verdicts+errors=%d, want runs=%d", total, rep.Runs)
	}
	l := rep.LatencyMS
	if l.P50 < 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
		return fmt.Errorf("benchverify: latency percentiles out of order: %+v", l)
	}
	if l.Mean < 0 || l.Mean > l.Max {
		return fmt.Errorf("benchverify: latency mean %g outside [0, max=%g]", l.Mean, l.Max)
	}
	c := rep.Cache
	if c.Gets != c.Hits+c.Misses {
		return fmt.Errorf("benchverify: cache gets=%d ≠ hits(%d)+misses(%d)", c.Gets, c.Hits, c.Misses)
	}
	if c.HitRate < 0 || c.HitRate > 1 {
		return fmt.Errorf("benchverify: cache hit rate %g outside [0,1]", c.HitRate)
	}
	s := rep.Saturation
	if s.Runs < 0 || s.WorklistPops < 0 || s.WorklistPushes < 0 || s.TransInserted < 0 ||
		s.EarlyAccepts < 0 || s.IndexProbes < 0 || s.ParallelRuns < 0 || s.ShardSteals < 0 {
		return fmt.Errorf("benchverify: negative saturation counters: %+v", s)
	}
	if s.ParallelRuns > s.Runs {
		return fmt.Errorf("benchverify: parallelRuns=%d exceeds saturation runs=%d", s.ParallelRuns, s.Runs)
	}
	if s.EarlyAccepts > s.Runs {
		return fmt.Errorf("benchverify: earlyAccepts=%d exceeds saturation runs=%d", s.EarlyAccepts, s.Runs)
	}
	if m := rep.Memory; m != nil {
		if m.AllocBytesPerRun < 0 || m.AllocsPerRun < 0 || m.PeakRSSBytes < 0 {
			return fmt.Errorf("benchverify: negative memory figures: %+v", *m)
		}
	}
	if rep.ElapsedMS < 0 {
		return fmt.Errorf("benchverify: negative elapsed %g", rep.ElapsedMS)
	}
	return nil
}
