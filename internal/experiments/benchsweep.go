package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/sweep"
)

// BenchSweepSchema identifies the BENCH_sweep.json document layout.
const BenchSweepSchema = "aalwines/bench-sweep/v1"

// BenchSweepConfig configures the resilience-sweep benchmark: a zoo
// workload's complete single+double link failure space verified against a
// small invariant set — the designated stress test for cross-scenario
// SessionCache reuse (neighbouring failure sets share all but 1–2 router
// versions, so most rule blocks splice straight from the store).
type BenchSweepConfig struct {
	// Routers sizes the generated zoo network (default 30, the bench-verify
	// zoo rung).
	Routers int
	// Invariants is the number of synthesised queries swept (default 2).
	Invariants int
	// Depth is the failure-space depth (default 2: singles + pairs).
	Depth int
	// Workers is the scenario-level pool size (0 = GOMAXPROCS).
	Workers int
	// Budget bounds saturation work per cell per direction (0 = unlimited).
	Budget int64
	// Seed drives the network and the query set.
	Seed int64
}

// BenchSweepReport is the content of BENCH_sweep.json: the workload
// parameters plus the sweep engine's own aggregated report.
type BenchSweepReport struct {
	Schema  string       `json:"schema"`
	Routers int          `json:"routers"`
	Seed    int64        `json:"seed"`
	Budget  int64        `json:"budget"`
	Report  sweep.Report `json:"report"`
}

// BenchSweep runs the resilience-sweep benchmark and returns its report.
func BenchSweep(cfg BenchSweepConfig) (*BenchSweepReport, error) {
	routers := cfg.Routers
	if routers <= 0 {
		routers = 30
	}
	nq := cfg.Invariants
	if nq <= 0 {
		nq = 2
	}
	depth := cfg.Depth
	if depth == 0 {
		depth = 2
	}
	syn := gen.Zoo(gen.ZooOpts{Routers: routers, Seed: cfg.Seed, Protection: true})
	var queries []string
	for _, q := range syn.Queries(nq, cfg.Seed) {
		queries = append(queries, q.Text)
	}
	res, err := sweep.Run(context.Background(), syn.Net, sweep.Config{
		Depth:      depth,
		Invariants: queries,
		Workers:    cfg.Workers,
		Engine:     engine.Options{Budget: cfg.Budget},
	})
	if err != nil {
		return nil, fmt.Errorf("benchsweep: %w", err)
	}
	return &BenchSweepReport{
		Schema:  BenchSweepSchema,
		Routers: routers,
		Seed:    cfg.Seed,
		Budget:  cfg.Budget,
		Report:  res.Report,
	}, nil
}

// WriteBenchSweep writes the report to path atomically after validating it
// against its own schema (WriteReport).
func WriteBenchSweep(path string, rep *BenchSweepReport) error {
	return WriteReport(path, rep, ValidateBenchSweep)
}

// ValidateBenchSweep checks that data is a well-formed BENCH_sweep.json:
// strict field set, the expected schema string, a complete failure space
// (the scenario count matches C(n,1)+C(n,2) over the reported live links,
// every cell completed), per-invariant verdict accounting, ordered latency
// percentiles — and the benchmark's headline claim, cross-scenario rule
// block reuse of at least 50%.
func ValidateBenchSweep(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep BenchSweepReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("benchsweep: parse: %w", err)
	}
	if rep.Schema != BenchSweepSchema {
		return fmt.Errorf("benchsweep: schema %q, want %q", rep.Schema, BenchSweepSchema)
	}
	r := rep.Report
	if rep.Routers <= 0 || r.Network == "" || r.Links <= 0 {
		return fmt.Errorf("benchsweep: empty workload: %+v", rep)
	}
	want := r.Links
	switch r.Depth {
	case 1:
	case 2:
		want += r.Links * (r.Links - 1) / 2
	default:
		return fmt.Errorf("benchsweep: depth %d", r.Depth)
	}
	if r.Scenarios != want {
		return fmt.Errorf("benchsweep: %d scenarios over %d links at depth %d, want %d (incomplete enumeration?)",
			r.Scenarios, r.Links, r.Depth, want)
	}
	if len(r.Invariants) == 0 || r.CellsTotal != r.Scenarios*len(r.Invariants) {
		return fmt.Errorf("benchsweep: cells=%d, want scenarios(%d) × invariants(%d)",
			r.CellsTotal, r.Scenarios, len(r.Invariants))
	}
	if r.Incomplete || r.CellsIncomplete != 0 {
		return fmt.Errorf("benchsweep: sweep incomplete (%d cells)", r.CellsIncomplete)
	}
	for i, inv := range r.Invariants {
		if inv.Query == "" || inv.Baseline == "" {
			return fmt.Errorf("benchsweep: invariant %d missing query/baseline", i)
		}
		total := inv.Errors + inv.Incomplete
		for v, n := range inv.Verdicts {
			if n < 0 {
				return fmt.Errorf("benchsweep: invariant %d: negative verdict count %s=%d", i, v, n)
			}
			total += n
		}
		if total != r.Scenarios {
			return fmt.Errorf("benchsweep: invariant %d: verdicts+errors=%d, want %d", i, total, r.Scenarios)
		}
		if inv.Breaking < len(inv.MinimalBreaking) {
			return fmt.Errorf("benchsweep: invariant %d: %d minimal sets exceed %d breaking scenarios",
				i, len(inv.MinimalBreaking), inv.Breaking)
		}
	}
	c := r.Cache
	if c.Gets < c.Hits || c.BlocksReused < 0 || c.BlocksRebuilt < 0 {
		return fmt.Errorf("benchsweep: cache counters inconsistent: %+v", c)
	}
	if c.ReuseRate < 0 || c.ReuseRate > 1 {
		return fmt.Errorf("benchsweep: reuse rate %g outside [0,1]", c.ReuseRate)
	}
	if c.ReuseRate < 0.5 {
		return fmt.Errorf("benchsweep: rule-block reuse rate %.2f below the 0.5 floor", c.ReuseRate)
	}
	l := r.LatencyMS
	if l.P50 < 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
		return fmt.Errorf("benchsweep: latency percentiles out of order: %+v", l)
	}
	if l.Mean < 0 || l.Mean > l.Max {
		return fmt.Errorf("benchsweep: latency mean %g outside [0, max=%g]", l.Mean, l.Max)
	}
	if r.ElapsedMS < 0 {
		return fmt.Errorf("benchsweep: negative elapsed %g", r.ElapsedMS)
	}
	return nil
}
