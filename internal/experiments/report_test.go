package experiments

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteReport covers the crash/corruption cases the shared writer
// exists for: a failed validation or marshal must leave a pre-existing
// good report byte-identical (the stage-then-rename never happens), and no
// partially written temp file may accumulate in the directory.
func TestWriteReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")

	var seen []byte
	ok := func(data []byte) error { seen = append([]byte(nil), data...); return nil }
	if err := WriteReport(path, map[string]int{"a": 1}, ok); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, seen) {
		t.Fatal("validator must see the exact bytes written to disk")
	}
	if !bytes.HasSuffix(good, []byte("\n")) || !bytes.Contains(good, []byte("  \"a\": 1")) {
		t.Fatalf("unexpected document layout:\n%s", good)
	}

	// Validation failure: the old report survives untouched.
	boom := errors.New("schema violated")
	if err := WriteReport(path, map[string]int{"a": 2}, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the validator's", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, good) {
		t.Fatalf("failed validation replaced the report:\n%s", after)
	}

	// Marshal failure (a func has no JSON form): same guarantee.
	if err := WriteReport(path, map[string]interface{}{"f": func() {}}, ok); err == nil {
		t.Fatal("marshal of a func value succeeded")
	}
	if after, _ = os.ReadFile(path); !bytes.Equal(after, good) {
		t.Fatal("failed marshal replaced the report")
	}

	// A stale temp file from a crashed earlier writer must not break the
	// next successful write.
	stale := filepath.Join(dir, "BENCH_x.json.tmp-stale")
	if err := os.WriteFile(stale, []byte("{partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(path, map[string]int{"a": 3}, nil); err != nil {
		t.Fatal(err)
	}
	if after, _ = os.ReadFile(path); !bytes.Contains(after, []byte("\"a\": 3")) {
		t.Fatalf("report not replaced:\n%s", after)
	}
	os.Remove(stale)

	// No temp litter from any of the above — the crash-window file is
	// removed on every path.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory should hold only the report, got %v", entries)
	}
}
