// Package experiments implements the paper's performance evaluation (§5):
// Table 1 (six operator queries on the NORDUnet-style network, verified
// with the Moped-style baseline, the Dual engine and the weighted engine
// minimising Failures) and Figure 4 (a cactus plot of per-query
// verification times for the three engines over a family of Topology-Zoo-
// style networks, with the inconclusive-answer statistics). The same runs
// back both cmd/benchrunner and the root bench_test.go.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/moped"
	"aalwines/internal/weight"
)

// EngineKind identifies one of the three compared engines.
type EngineKind uint8

const (
	// Moped is the textbook baseline backend (unweighted).
	Moped EngineKind = iota
	// Dual is the optimised unweighted engine.
	Dual
	// Failures is the weighted engine minimising the Failures quantity.
	Failures
	// NumEngines is the engine count.
	NumEngines
)

// String names the engine as in the paper's tables.
func (e EngineKind) String() string {
	switch e {
	case Moped:
		return "Moped"
	case Dual:
		return "Dual"
	case Failures:
		return "Failures"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// Options returns the engine.Options for a kind. Budget bounds saturation
// work (the analogue of the paper's 10-minute timeout; 0 = unlimited).
func (e EngineKind) Options(budget int64) engine.Options {
	switch e {
	case Moped:
		return engine.Options{Saturate: moped.Poststar, Budget: budget}
	case Dual:
		return engine.Options{Budget: budget}
	default:
		return engine.Options{
			Spec:   weight.Spec{{{Coeff: 1, Q: weight.Failures}}},
			Budget: budget,
		}
	}
}

// Measurement is one engine × query run.
type Measurement struct {
	Engine   EngineKind
	Query    gen.GenQuery
	Network  string
	Time     time.Duration
	Verdict  engine.Verdict
	TimedOut bool
	Err      error
}

// RunOne verifies one query with one engine.
func RunOne(s *gen.Synth, q gen.GenQuery, kind EngineKind, budget int64) Measurement {
	t0 := time.Now()
	res, err := engine.VerifyText(s.Net, q.Text, kind.Options(budget))
	m := Measurement{
		Engine: kind, Query: q, Network: s.Net.Name,
		Time: time.Since(t0), Verdict: res.Verdict,
	}
	if err != nil {
		if isBudget(err) {
			m.TimedOut = true
		} else {
			m.Err = err
		}
	}
	return m
}

func isBudget(err error) bool {
	for e := err; e != nil; {
		if e == engine.ErrBudget {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// Table1Config parameterises the Table 1 run.
type Table1Config struct {
	Services int // service chains per pair (paper scale ≈ 40 with Edge 31)
	Edge     int // edge routers (31 = every PoP)
	Seed     int64
	Budget   int64
}

// Table1Row is one row of Table 1: per-engine verification time for one
// query.
type Table1Row struct {
	Query gen.GenQuery
	Times [NumEngines]time.Duration
	Out   [NumEngines]bool // timed out
	Verd  [NumEngines]engine.Verdict
}

// Table1 runs the six Table 1 queries against all three engines.
func Table1(cfg Table1Config) []Table1Row {
	if cfg.Services == 0 {
		cfg.Services = 4
	}
	if cfg.Edge == 0 {
		cfg.Edge = 16
	}
	s := gen.Nordunet(gen.NordOpts{Services: cfg.Services, EdgeRouters: cfg.Edge, Seed: cfg.Seed})
	var rows []Table1Row
	for _, q := range s.Table1Queries() {
		row := Table1Row{Query: q}
		for k := EngineKind(0); k < NumEngines; k++ {
			m := RunOne(s, q, k, cfg.Budget)
			row.Times[k] = m.Time
			row.Out[k] = m.TimedOut
			row.Verd[k] = m.Verdict
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable1 renders the rows like the paper's Table 1 (seconds).
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-70s %10s %10s %10s\n", "Query", "Moped", "Dual", "Failures")
	for _, r := range rows {
		fmt.Fprintf(w, "%-70s", truncate(r.Query.Text, 70))
		for k := EngineKind(0); k < NumEngines; k++ {
			if r.Out[k] {
				fmt.Fprintf(w, " %10s", "timeout")
			} else {
				fmt.Fprintf(w, " %10.2f", r.Times[k].Seconds())
			}
		}
		fmt.Fprintf(w, "   [%s]\n", r.Verd[Dual])
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Figure4Config parameterises the Figure 4 sweep. The paper runs 5602
// experiments; Scale lets smaller runs keep the same shape.
type Figure4Config struct {
	Networks  int // number of zoo networks
	PerNet    int // queries per network
	Seed      int64
	Budget    int64 // per-direction saturation budget (timeout analogue)
	MaxRouter int   // cap on network size (0 = the paper's 240)
	// Parallel is the batch worker pool per (network, engine) sweep; the
	// sweep runs on a per-network batch.Runner, so the three engines share
	// each network's translated pushdown systems. 0 or 1 = sequential;
	// parallel runs trade per-measurement timing fidelity for wall-clock
	// throughput.
	Parallel int
}

// Figure4Result aggregates the sweep.
type Figure4Result struct {
	// Sorted per-engine verification times (the cactus plot series);
	// timed-out runs are excluded, matching the paper's plot.
	Series [NumEngines][]time.Duration
	// Solved counts per engine (completed within budget).
	Solved [NumEngines]int
	// Inconclusive counts per engine over completed runs (E1).
	Inconclusive [NumEngines]int
	// Satisfied counts per engine.
	Satisfied [NumEngines]int
	// Total experiments per engine.
	Total int
}

// Figure4 runs the sweep. Engines run on identical network/query sets.
func Figure4(cfg Figure4Config) *Figure4Result {
	if cfg.Networks == 0 {
		cfg.Networks = 8
	}
	if cfg.PerNet == 0 {
		cfg.PerNet = 15
	}
	sizes := gen.ZooSizes(cfg.Networks, cfg.Seed)
	if cfg.MaxRouter > 0 {
		for i := range sizes {
			if sizes[i] > cfg.MaxRouter {
				sizes[i] = cfg.MaxRouter
			}
		}
	}
	res := &Figure4Result{}
	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	var measurements []Measurement
	for i, size := range sizes {
		s := gen.Zoo(gen.ZooOpts{Routers: size, Seed: cfg.Seed + int64(i), Protection: true})
		qs := s.Queries(cfg.PerNet, cfg.Seed+int64(1000+i))
		res.Total += len(qs)
		texts := make([]string, len(qs))
		for j, q := range qs {
			texts[j] = q.Text
		}
		// One runner per network: the three engine sweeps reuse each
		// other's translations (the cache keys on query, direction and
		// weight spec, not on the saturation backend).
		runner := batch.NewRunner(s.Net)
		for k := EngineKind(0); k < NumEngines; k++ {
			rs := runner.Verify(context.Background(), texts, batch.Options{
				Workers: workers, Engine: k.Options(cfg.Budget),
			})
			for j, r := range rs {
				m := Measurement{
					Engine: k, Query: qs[j], Network: s.Net.Name,
					Time: r.Elapsed, Verdict: r.Res.Verdict,
				}
				if r.Err != nil {
					if isBudget(r.Err) {
						m.TimedOut = true
					} else {
						m.Err = r.Err
					}
				}
				measurements = append(measurements, m)
			}
		}
	}
	for _, m := range measurements {
		if m.Err != nil || m.TimedOut {
			continue
		}
		k := m.Engine
		res.Solved[k]++
		res.Series[k] = append(res.Series[k], m.Time)
		switch m.Verdict {
		case engine.Inconclusive:
			res.Inconclusive[k]++
		case engine.Satisfied:
			res.Satisfied[k]++
		}
	}
	for k := range res.Series {
		sort.Slice(res.Series[k], func(i, j int) bool { return res.Series[k][i] < res.Series[k][j] })
	}
	return res
}

// PrintFigure4 renders the cactus series as CSV (rank, then one time column
// per engine in seconds) followed by the summary block with the solved and
// inconclusive statistics the paper reports in §5.
func PrintFigure4(w io.Writer, r *Figure4Result) {
	fmt.Fprintf(w, "# cactus series: verification time per solved instance, sorted\n")
	fmt.Fprintf(w, "rank,moped,dual,failures\n")
	maxLen := 0
	for k := range r.Series {
		if len(r.Series[k]) > maxLen {
			maxLen = len(r.Series[k])
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(w, "%d", i+1)
		for k := EngineKind(0); k < NumEngines; k++ {
			if i < len(r.Series[k]) {
				fmt.Fprintf(w, ",%.6f", r.Series[k][i].Seconds())
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n# summary over %d experiments per engine\n", r.Total)
	for k := EngineKind(0); k < NumEngines; k++ {
		pct := 0.0
		if r.Solved[k] > 0 {
			pct = 100 * float64(r.Inconclusive[k]) / float64(r.Solved[k])
		}
		fmt.Fprintf(w, "%-9s solved=%d/%d satisfied=%d inconclusive=%d (%.2f%%)\n",
			k, r.Solved[k], r.Total, r.Satisfied[k], r.Inconclusive[k], pct)
	}
}
