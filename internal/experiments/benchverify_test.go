package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchVerifyRunningExample runs the canonical benchmark on the
// running example and checks the report end to end: internal consistency
// (via the validator), warm-cache behaviour and non-zero saturation work.
func TestBenchVerifyRunningExample(t *testing.T) {
	rep, err := BenchVerify(BenchVerifyConfig{Repeat: 2, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchVerify(data); err != nil {
		t.Fatalf("self-validation failed: %v", err)
	}
	if rep.Network != "running-example" || rep.Runs != rep.Queries*2 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0", rep.Errors)
	}
	// The second sweep runs entirely from the warm cache.
	if rep.Cache.Hits == 0 {
		t.Errorf("cache hits = 0 over %d runs of %d queries", rep.Runs, rep.Queries)
	}
	if rep.Saturation.WorklistPops == 0 || rep.Saturation.TransInserted == 0 {
		t.Errorf("saturation counters empty: %+v", rep.Saturation)
	}
	if rep.LatencyMS.Max <= 0 {
		t.Errorf("latency max = %g, want > 0", rep.LatencyMS.Max)
	}
}

func TestBenchVerifyWriteAtomic(t *testing.T) {
	rep, err := BenchVerify(BenchVerifyConfig{Repeat: 1, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_verify.json")
	if err := WriteBenchVerify(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchVerify(data); err != nil {
		t.Fatalf("written file invalid: %v", err)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want only the report", len(entries))
	}
}

func TestValidateBenchVerifyRejects(t *testing.T) {
	rep, err := BenchVerify(BenchVerifyConfig{Repeat: 1, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*BenchVerifyReport)) []byte {
		r := *rep
		// Deep-copy the verdict map so mutations do not leak across cases.
		r.Verdicts = map[string]int{}
		for k, v := range rep.Verdicts {
			r.Verdicts[k] = v
		}
		f(&r)
		data, _ := json.Marshal(&r)
		return data
	}
	cases := map[string][]byte{
		"bad schema":       mutate(func(r *BenchVerifyReport) { r.Schema = "v0" }),
		"run mismatch":     mutate(func(r *BenchVerifyReport) { r.Runs++ }),
		"verdict mismatch": mutate(func(r *BenchVerifyReport) { r.Verdicts["satisfied"] += 2 }),
		"bad percentiles":  mutate(func(r *BenchVerifyReport) { r.LatencyMS.P50 = r.LatencyMS.Max + 1 }),
		"cache arithmetic": mutate(func(r *BenchVerifyReport) { r.Cache.Hits++ }),
		"unknown field":    []byte(`{"schema":"` + BenchVerifySchema + `","bogus":1}`),
		"not json":         []byte("{"),
	}
	for name, data := range cases {
		if err := ValidateBenchVerify(data); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}
