package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchSweepSmoke runs a small instance end to end: the report must
// pass its own validator, survive the write-validate-rename path, and the
// validator must reject tampered documents.
func TestBenchSweepSmoke(t *testing.T) {
	rep, err := BenchSweep(BenchSweepConfig{Routers: 8, Invariants: 2, Depth: 1, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	if err := WriteBenchSweep(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchSweep(data); err != nil {
		t.Fatal(err)
	}

	if err := ValidateBenchSweep(bytes.Replace(data, []byte(BenchSweepSchema), []byte("bogus/v9"), 1)); err == nil {
		t.Error("wrong schema accepted")
	}
	if err := ValidateBenchSweep(append([]byte(`{"extra":1,`), data[1:]...)); err == nil {
		t.Error("unknown field accepted")
	}
	if err := ValidateBenchSweep(bytes.Replace(data, []byte(`"depth": 1`), []byte(`"depth": 2`), 1)); err == nil {
		t.Error("scenario/depth mismatch accepted")
	}
}
