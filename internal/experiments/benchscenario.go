package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/scenario"
	"aalwines/internal/topology"
)

// BenchScenarioSchema identifies the BENCH_scenario.json document layout.
const BenchScenarioSchema = "aalwines/bench-scenario/v1"

// BenchScenarioConfig configures the what-if benchmark: a zoo workload is
// verified cold, then a single link failure is applied and the same query
// set re-verified twice — once through the incremental scenario session
// (which reuses translated rule blocks for every untouched router) and once
// from scratch on a materialized copy (which reuses nothing). The report
// quantifies how much translation work the session saved.
type BenchScenarioConfig struct {
	// Routers sizes the generated zoo network (default 30, matching the
	// bench-verify zoo rung).
	Routers int
	// QueryCount is the number of synthesised queries (default 12).
	QueryCount int
	// Workers is the batch pool size (0 = GOMAXPROCS).
	Workers int
	// Budget bounds saturation work per direction (0 = unlimited).
	Budget int64
	// Seed drives the network, the query set and the failed-link choice.
	Seed int64
}

// BenchScenarioPhase reports one verification sweep of the query set.
type BenchScenarioPhase struct {
	ElapsedMS     float64 `json:"elapsedMs"`
	BlocksReused  int     `json:"blocksReused"`
	BlocksRebuilt int     `json:"blocksRebuilt"`
	// ReuseRate is reused/(reused+rebuilt); 0 when no blocks moved.
	ReuseRate float64 `json:"reuseRate"`
	Errors    int     `json:"errors"`
}

// BenchScenarioReport is the content of BENCH_scenario.json.
type BenchScenarioReport struct {
	Schema  string `json:"schema"`
	Network string `json:"network"`
	Routers int    `json:"routers"`
	Queries int    `json:"queries"`
	Workers int    `json:"workers"`
	Seed    int64  `json:"seed"`
	Budget  int64  `json:"budget"`
	// Delta is the canonical form of the applied what-if mutation.
	Delta string `json:"delta"`
	// Cold is the initial sweep on the unmutated network: every rule block
	// is built for the first time.
	Cold BenchScenarioPhase `json:"cold"`
	// Incremental re-verifies after the failure through the session: only
	// blocks owned by routers the delta touches rebuild.
	Incremental BenchScenarioPhase `json:"incremental"`
	// Scratch verifies the same mutated network on a fresh runner with no
	// block store: by construction nothing is reused.
	Scratch BenchScenarioPhase `json:"scratch"`
	// SpeedupX is scratch elapsed over incremental elapsed.
	SpeedupX  float64 `json:"speedupX"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// BenchScenario runs the what-if benchmark and returns its report.
func BenchScenario(cfg BenchScenarioConfig) (*BenchScenarioReport, error) {
	routers := cfg.Routers
	if routers <= 0 {
		routers = 30
	}
	count := cfg.QueryCount
	if count <= 0 {
		count = 12
	}
	s := gen.Zoo(gen.ZooOpts{Routers: routers, Seed: cfg.Seed, Protection: true})
	var queries []string
	for _, q := range s.Queries(count, cfg.Seed) {
		queries = append(queries, q.Text)
	}
	bopts := batch.Options{
		Workers: cfg.Workers,
		Engine:  engine.Options{Budget: cfg.Budget},
	}

	sess := scenario.NewSession(s.Net)
	defer sess.Close()
	start := time.Now()

	cold, err := scenarioSweep(sess, queries, bopts)
	if err != nil {
		return nil, err
	}

	// One deterministic single-link failure; links come in directed pairs,
	// so an arbitrary index is as good as any.
	link := topology.LinkID(int(cfg.Seed) % s.Net.Topo.NumLinks())
	cmd := "fail " + s.Net.Topo.LinkName(link)
	if _, err := sess.ApplyText(cmd); err != nil {
		return nil, fmt.Errorf("benchscenario: %q: %w", cmd, err)
	}
	incr, err := scenarioSweep(sess, queries, bopts)
	if err != nil {
		return nil, err
	}

	// From-scratch baseline: same mutated network, no block store.
	scratchRunner := batch.NewRunner(sess.MaterializeFresh())
	t0 := time.Now()
	scratchResults := scratchRunner.Verify(context.Background(), queries, bopts)
	scratch := BenchScenarioPhase{ElapsedMS: time.Since(t0).Seconds() * 1000}
	for _, r := range scratchResults {
		if r.Err != nil {
			scratch.Errors++
		}
	}

	rep := &BenchScenarioReport{
		Schema:      BenchScenarioSchema,
		Network:     s.Net.Name,
		Routers:     routers,
		Queries:     len(queries),
		Workers:     cfg.Workers,
		Seed:        cfg.Seed,
		Budget:      cfg.Budget,
		Delta:       cmd,
		Cold:        cold,
		Incremental: incr,
		Scratch:     scratch,
		ElapsedMS:   time.Since(start).Seconds() * 1000,
	}
	if incr.ElapsedMS > 0 {
		rep.SpeedupX = scratch.ElapsedMS / incr.ElapsedMS
	}
	return rep, nil
}

// scenarioSweep runs the query set through the session once and reports the
// block-store activity it caused.
func scenarioSweep(sess *scenario.Session, queries []string, bopts batch.Options) (BenchScenarioPhase, error) {
	pre := sess.BlockStats()
	t0 := time.Now()
	results := sess.VerifyBatch(context.Background(), queries, bopts)
	ph := BenchScenarioPhase{ElapsedMS: time.Since(t0).Seconds() * 1000}
	post := sess.BlockStats()
	ph.BlocksReused = post.BlocksReused - pre.BlocksReused
	ph.BlocksRebuilt = post.BlocksRebuilt - pre.BlocksRebuilt
	if moved := ph.BlocksReused + ph.BlocksRebuilt; moved > 0 {
		ph.ReuseRate = float64(ph.BlocksReused) / float64(moved)
	}
	for _, r := range results {
		if r.Err != nil {
			ph.Errors++
		}
	}
	return ph, nil
}

// WriteBenchScenario writes the report to path atomically after validating
// it against its own schema (WriteReport).
func WriteBenchScenario(path string, rep *BenchScenarioReport) error {
	return WriteReport(path, rep, ValidateBenchScenario)
}

// ValidateBenchScenario checks that data is a well-formed
// BENCH_scenario.json: strict field set, the expected schema string, and the
// benchmark's core claims — the from-scratch baseline reuses nothing while
// the incremental sweep after a single link failure reuses at least half of
// its rule blocks.
func ValidateBenchScenario(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep BenchScenarioReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("benchscenario: parse: %w", err)
	}
	if rep.Schema != BenchScenarioSchema {
		return fmt.Errorf("benchscenario: schema %q, want %q", rep.Schema, BenchScenarioSchema)
	}
	if rep.Network == "" || rep.Routers <= 0 || rep.Queries <= 0 {
		return fmt.Errorf("benchscenario: empty workload: %+v", rep)
	}
	if rep.Delta == "" {
		return fmt.Errorf("benchscenario: no delta recorded")
	}
	for _, ph := range []struct {
		name string
		p    BenchScenarioPhase
	}{{"cold", rep.Cold}, {"incremental", rep.Incremental}, {"scratch", rep.Scratch}} {
		p := ph.p
		if p.ElapsedMS < 0 || p.BlocksReused < 0 || p.BlocksRebuilt < 0 || p.Errors < 0 {
			return fmt.Errorf("benchscenario: negative %s phase: %+v", ph.name, p)
		}
		if p.ReuseRate < 0 || p.ReuseRate > 1 {
			return fmt.Errorf("benchscenario: %s reuse rate %g outside [0,1]", ph.name, p.ReuseRate)
		}
	}
	if rep.Cold.BlocksRebuilt == 0 {
		return fmt.Errorf("benchscenario: cold sweep built no blocks")
	}
	if rep.Scratch.BlocksReused != 0 || rep.Scratch.ReuseRate != 0 {
		return fmt.Errorf("benchscenario: from-scratch baseline reports reuse: %+v", rep.Scratch)
	}
	if rep.Incremental.ReuseRate < 0.5 {
		return fmt.Errorf("benchscenario: incremental reuse rate %.2f below the 0.5 floor",
			rep.Incremental.ReuseRate)
	}
	if rep.ElapsedMS < 0 {
		return fmt.Errorf("benchscenario: negative elapsed %g", rep.ElapsedMS)
	}
	return nil
}
