package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// WriteReport is the one write path every bench report goes through:
// marshal with the canonical indentation, run the schema validator over the
// exact bytes about to land on disk, then stage-and-rename atomically. The
// validator runs before the rename, so a report that fails its own schema
// never replaces a previous good file — and a crash mid-write leaves at
// worst an orphaned temp file, never a truncated report.
func WriteReport(path string, rep interface{}, validate func([]byte) error) error {
	data, err := marshalReport(rep)
	if err != nil {
		return err
	}
	if validate != nil {
		if err := validate(data); err != nil {
			return err
		}
	}
	return writeFileAtomic(path, data)
}

// marshalReport renders a report document: two-space indent, trailing
// newline — the layout every BENCH_*.json ships with.
func marshalReport(rep interface{}) ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// writeFileAtomic stages data in a temp file next to path and renames it
// into place, so a concurrent reader never sees a partial document.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
