package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Bench-ladder regression gate. CI re-runs every rung of the ladder and
// compares the fresh report against the committed BENCH_verify_<name>.json
// baseline. Two classes of check apply per rung:
//
//   - determinism: the verdict histogram and the saturation work counters
//     (pops, pushes, inserted transitions, early accepts, index probes)
//     must match the baseline EXACTLY. These are bit-reproducible for a
//     fixed (network, seed, budget) workload — the engine's results are
//     byte-identical across saturation parallelism and slicing — so any
//     drift is a real behaviour change, not noise.
//   - timing: the fresh mean per-query latency must stay within tol
//     (default 15%) of the baseline, with a small absolute grace so
//     sub-millisecond rungs don't flake on scheduler jitter.
//
// A legitimate perf or behaviour change regenerates the baselines with
// `benchrunner -bench-ladder` and commits the new files.

// ladderGraceMS is the absolute latency slack added on top of the relative
// tolerance; CI runners share cores, and the smallest rung's mean is well
// under a millisecond.
const ladderGraceMS = 0.25

// CompareBenchVerify checks a freshly measured report against a committed
// baseline of the same workload. tol is the relative mean-latency
// tolerance (0.15 = +15%); tol <= 0 skips the timing check.
func CompareBenchVerify(base, fresh *BenchVerifyReport, tol float64) error {
	if base.Network != fresh.Network || base.Queries != fresh.Queries ||
		base.Repeat != fresh.Repeat || base.Seed != fresh.Seed || base.Budget != fresh.Budget {
		return fmt.Errorf("workload mismatch: baseline (net=%s q=%d r=%d seed=%d budget=%d), fresh (net=%s q=%d r=%d seed=%d budget=%d)",
			base.Network, base.Queries, base.Repeat, base.Seed, base.Budget,
			fresh.Network, fresh.Queries, fresh.Repeat, fresh.Seed, fresh.Budget)
	}
	if fresh.Errors != 0 {
		return fmt.Errorf("%d verification errors", fresh.Errors)
	}
	for _, v := range []string{"unsatisfied", "satisfied", "inconclusive"} {
		if base.Verdicts[v] != fresh.Verdicts[v] {
			return fmt.Errorf("verdict drift: %s=%d, baseline %d", v, fresh.Verdicts[v], base.Verdicts[v])
		}
	}
	bs, fs := base.Saturation, fresh.Saturation
	exact := []struct {
		name       string
		base, have int64
	}{
		{"saturation runs", bs.Runs, fs.Runs},
		{"worklist pops", bs.WorklistPops, fs.WorklistPops},
		{"worklist pushes", bs.WorklistPushes, fs.WorklistPushes},
		{"transitions inserted", bs.TransInserted, fs.TransInserted},
		{"early accepts", bs.EarlyAccepts, fs.EarlyAccepts},
		{"index probes", bs.IndexProbes, fs.IndexProbes},
	}
	for _, c := range exact {
		if c.base != c.have {
			return fmt.Errorf("work drift: %s=%d, baseline %d", c.name, c.have, c.base)
		}
	}
	if tol > 0 {
		limit := base.LatencyMS.Mean*(1+tol) + ladderGraceMS
		if fresh.LatencyMS.Mean > limit {
			return fmt.Errorf("latency regression: mean %.3fms exceeds baseline %.3fms +%d%% (+%.2fms grace = %.3fms)",
				fresh.LatencyMS.Mean, base.LatencyMS.Mean, int(tol*100), ladderGraceMS, limit)
		}
	}
	return nil
}

// CheckBenchLadder re-runs every ladder rung and gates it against the
// committed baselines in dir, without touching the baseline files. It
// returns one human-readable summary line per rung; the error aggregates
// every rung that failed its gate.
func CheckBenchLadder(dir string, workers, satJ int, tol float64) ([]string, error) {
	var lines []string
	var failures []string
	for _, rung := range BenchLadder() {
		path := filepath.Join(dir, "BENCH_verify_"+rung.Name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			return lines, fmt.Errorf("ladder baseline %s: %w", path, err)
		}
		base, err := ReadBenchVerify(data)
		if err != nil {
			return lines, fmt.Errorf("ladder baseline %s: %w", path, err)
		}
		cfg := rung.Cfg
		cfg.Workers = workers
		cfg.SatJ = satJ
		fresh, err := BenchVerify(cfg)
		if err != nil {
			return lines, fmt.Errorf("ladder rung %s: %w", rung.Name, err)
		}
		if cerr := CompareBenchVerify(base, fresh, tol); cerr != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", rung.Name, cerr))
			lines = append(lines, fmt.Sprintf("%-16s FAIL  %v", rung.Name, cerr))
			continue
		}
		lines = append(lines, fmt.Sprintf("%-16s ok    mean=%.3fms (baseline %.3fms)  pops=%d",
			rung.Name, fresh.LatencyMS.Mean, base.LatencyMS.Mean, fresh.Saturation.WorklistPops))
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("ladder regression gate: %d rung(s) failed:\n  %s",
			len(failures), joinLines(failures))
	}
	return lines, nil
}

// ReadBenchVerify validates and parses a BENCH_verify document.
func ReadBenchVerify(data []byte) (*BenchVerifyReport, error) {
	if err := ValidateBenchVerify(data); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	rep := new(BenchVerifyReport)
	if err := dec.Decode(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
