package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Bench-ladder regression gate. CI re-runs every rung of the ladder and
// compares the fresh report against the committed BENCH_verify_<name>.json
// baseline. Two classes of check apply per rung:
//
//   - determinism: the verdict histogram and the saturation work counters
//     (pops, pushes, inserted transitions, early accepts, index probes)
//     must match the baseline EXACTLY. These are bit-reproducible for a
//     fixed (network, seed, budget) workload — the engine's results are
//     byte-identical across saturation parallelism and slicing — so any
//     drift is a real behaviour change, not noise.
//   - timing: the fresh mean per-query latency must stay within tol
//     (default 15%) of the baseline, with a small absolute grace so
//     sub-millisecond rungs don't flake on scheduler jitter.
//
// A legitimate perf or behaviour change regenerates the baselines with
// `benchrunner -bench-ladder` and commits the new files.

// ladderGraceMS is the absolute latency slack added on top of the relative
// tolerance; CI runners share cores, and the smallest rung's mean is well
// under a millisecond.
const ladderGraceMS = 0.25

// Absolute slack for the memory gate, mirroring ladderGraceMS: the small
// rungs allocate a few megabytes per run, where GC timing alone moves the
// delta by more than any plausible tolerance percentage.
const (
	ladderMemGraceBytes  = 8 << 20
	ladderMemGraceAllocs = 50_000
)

// CompareBenchVerify checks a freshly measured report against a committed
// baseline of the same workload. tol is the relative mean-latency
// tolerance (0.15 = +15%); tol <= 0 skips the timing check. memTol gates
// alloc bytes and malloc counts per run the same way; it is skipped when
// <= 0 or when the baseline predates the v2 memory block. Memory figures
// are noisier than latency on a quiet machine, so memTol should be
// generous (the benchrunner default is 0.35).
func CompareBenchVerify(base, fresh *BenchVerifyReport, tol, memTol float64) error {
	if base.Network != fresh.Network || base.Queries != fresh.Queries ||
		base.Repeat != fresh.Repeat || base.Seed != fresh.Seed || base.Budget != fresh.Budget {
		return fmt.Errorf("workload mismatch: baseline (net=%s q=%d r=%d seed=%d budget=%d), fresh (net=%s q=%d r=%d seed=%d budget=%d)",
			base.Network, base.Queries, base.Repeat, base.Seed, base.Budget,
			fresh.Network, fresh.Queries, fresh.Repeat, fresh.Seed, fresh.Budget)
	}
	if fresh.Errors != 0 {
		return fmt.Errorf("%d verification errors", fresh.Errors)
	}
	for _, v := range []string{"unsatisfied", "satisfied", "inconclusive"} {
		if base.Verdicts[v] != fresh.Verdicts[v] {
			return fmt.Errorf("verdict drift: %s=%d, baseline %d", v, fresh.Verdicts[v], base.Verdicts[v])
		}
	}
	bs, fs := base.Saturation, fresh.Saturation
	exact := []struct {
		name       string
		base, have int64
	}{
		{"saturation runs", bs.Runs, fs.Runs},
		{"worklist pops", bs.WorklistPops, fs.WorklistPops},
		{"worklist pushes", bs.WorklistPushes, fs.WorklistPushes},
		{"transitions inserted", bs.TransInserted, fs.TransInserted},
		{"early accepts", bs.EarlyAccepts, fs.EarlyAccepts},
		{"index probes", bs.IndexProbes, fs.IndexProbes},
	}
	for _, c := range exact {
		if c.base != c.have {
			return fmt.Errorf("work drift: %s=%d, baseline %d", c.name, c.have, c.base)
		}
	}
	if tol > 0 {
		limit := base.LatencyMS.Mean*(1+tol) + ladderGraceMS
		if fresh.LatencyMS.Mean > limit {
			return fmt.Errorf("latency regression: mean %.3fms exceeds baseline %.3fms +%d%% (+%.2fms grace = %.3fms)",
				fresh.LatencyMS.Mean, base.LatencyMS.Mean, int(tol*100), ladderGraceMS, limit)
		}
	}
	if memTol > 0 && base.Memory != nil && fresh.Memory != nil {
		bm, fm := base.Memory, fresh.Memory
		if limit := float64(bm.AllocBytesPerRun)*(1+memTol) + ladderMemGraceBytes; float64(fm.AllocBytesPerRun) > limit {
			return fmt.Errorf("memory regression: %.1f MB/run exceeds baseline %.1f MB/run +%d%% (+%d MB grace)",
				float64(fm.AllocBytesPerRun)/(1<<20), float64(bm.AllocBytesPerRun)/(1<<20),
				int(memTol*100), ladderMemGraceBytes>>20)
		}
		if limit := float64(bm.AllocsPerRun)*(1+memTol) + ladderMemGraceAllocs; float64(fm.AllocsPerRun) > limit {
			return fmt.Errorf("memory regression: %d allocs/run exceeds baseline %d +%d%% (+%d grace)",
				fm.AllocsPerRun, bm.AllocsPerRun, int(memTol*100), ladderMemGraceAllocs)
		}
	}
	return nil
}

// LadderGateConfig configures the ladder regression gate.
type LadderGateConfig struct {
	// Dir holds the committed BENCH_verify_<rung>.json baselines.
	Dir string
	// Workers and SatJ are forwarded to every rung's BenchVerifyConfig.
	Workers int
	SatJ    int
	// Tol is the relative mean-latency tolerance (<= 0 disables timing).
	Tol float64
	// MemTol is the relative alloc-per-run tolerance (<= 0 disables the
	// memory gate; v1 baselines skip it regardless).
	MemTol float64
	// Only restricts the gate to a comma-separated set of rung names
	// ("" = all); CI uses it to split the fast small-rung gate from the
	// bounded paper-scale smoke job.
	Only string
}

// CheckBenchLadder re-runs every ladder rung (or just cfg.Only) and gates
// it against the committed baselines in cfg.Dir, without touching the
// baseline files. It returns one human-readable summary line per rung; the
// error aggregates every rung that failed its gate.
func CheckBenchLadder(cfg LadderGateConfig) ([]string, error) {
	only := map[string]bool{}
	if cfg.Only != "" {
		for _, name := range strings.Split(cfg.Only, ",") {
			only[strings.TrimSpace(name)] = true
		}
	}
	var lines []string
	var failures []string
	matched := false
	for _, rung := range BenchLadder() {
		if len(only) > 0 && !only[rung.Name] {
			continue
		}
		matched = true
		path := filepath.Join(cfg.Dir, "BENCH_verify_"+rung.Name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			return lines, fmt.Errorf("ladder baseline %s: %w", path, err)
		}
		base, err := ReadBenchVerify(data)
		if err != nil {
			return lines, fmt.Errorf("ladder baseline %s: %w", path, err)
		}
		rcfg := rung.Cfg
		rcfg.Workers = cfg.Workers
		rcfg.SatJ = cfg.SatJ
		fresh, err := BenchVerify(rcfg)
		if err != nil {
			return lines, fmt.Errorf("ladder rung %s: %w", rung.Name, err)
		}
		if cerr := CompareBenchVerify(base, fresh, cfg.Tol, cfg.MemTol); cerr != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", rung.Name, cerr))
			lines = append(lines, fmt.Sprintf("%-18s FAIL  %v", rung.Name, cerr))
			continue
		}
		mem := ""
		if fresh.Memory != nil {
			mem = fmt.Sprintf("  alloc/run=%.1fMB", float64(fresh.Memory.AllocBytesPerRun)/(1<<20))
		}
		lines = append(lines, fmt.Sprintf("%-18s ok    mean=%.3fms (baseline %.3fms)  pops=%d%s",
			rung.Name, fresh.LatencyMS.Mean, base.LatencyMS.Mean, fresh.Saturation.WorklistPops, mem))
	}
	if cfg.Only != "" && !matched {
		return lines, fmt.Errorf("ladder: no rung matches %q", cfg.Only)
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("ladder regression gate: %d rung(s) failed:\n  %s",
			len(failures), joinLines(failures))
	}
	return lines, nil
}

// ReadBenchVerify validates and parses a BENCH_verify document.
func ReadBenchVerify(data []byte) (*BenchVerifyReport, error) {
	if err := ValidateBenchVerify(data); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	rep := new(BenchVerifyReport)
	if err := dec.Decode(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
