package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/labels"
	"aalwines/internal/moped"
	"aalwines/internal/network"
	"aalwines/internal/query"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
	"aalwines/internal/weight"
)

// randomNetwork builds a small random MPLS network: a random connected
// multigraph with random routing entries (including priority-2 backup
// groups) whose operations respect header validity.
func randomNetwork(rng *rand.Rand) *network.Network {
	n := network.New("fuzz")
	numRouters := 3 + rng.Intn(3)
	routers := make([]topology.RouterID, numRouters)
	for i := range routers {
		routers[i] = n.Topo.AddRouter(fmt.Sprintf("r%d", i))
	}
	// Ring + random chords.
	var links []topology.LinkID
	addLink := func(a, b int) {
		l := n.Topo.MustAddLink(routers[a], routers[b],
			fmt.Sprintf("o%d", len(links)), fmt.Sprintf("i%d", len(links)), 1)
		links = append(links, l)
	}
	for i := 0; i < numRouters; i++ {
		addLink(i, (i+1)%numRouters)
	}
	for i := 0; i < numRouters; i++ {
		addLink(rng.Intn(numRouters), rng.Intn(numRouters))
	}

	// Labels.
	var mpls, smpls, ips []labels.ID
	for i := 0; i < 2; i++ {
		mpls = append(mpls, n.Labels.MustIntern(fmt.Sprintf("%d0", i+3), labels.MPLS))
	}
	for i := 0; i < 3; i++ {
		smpls = append(smpls, n.Labels.MustIntern(fmt.Sprintf("s%d0", i+1), labels.BottomMPLS))
	}
	for i := 0; i < 2; i++ {
		ips = append(ips, n.Labels.MustIntern(fmt.Sprintf("ip%d", i), labels.IP))
	}
	pick := func(s []labels.ID) labels.ID { return s[rng.Intn(len(s))] }

	// Random rules: for a key (incoming link, top label), outgoing links
	// must leave the incoming link's target router.
	numRules := 6 + rng.Intn(10)
	for i := 0; i < numRules; i++ {
		in := links[rng.Intn(len(links))]
		router := n.Topo.Target(in)
		outs := n.Topo.Routers[router].Out()
		if len(outs) == 0 {
			continue
		}
		out := outs[rng.Intn(len(outs))]
		// Top label kind decides valid ops.
		var top labels.ID
		var ops routing.Ops
		switch rng.Intn(4) {
		case 0: // IP top: push an smpls label (tunnel entry) or forward.
			top = pick(ips)
			if rng.Intn(2) == 0 {
				ops = routing.Ops{routing.Push(pick(smpls))}
			}
		case 1: // smpls top: swap, pop, or push an mpls label.
			top = pick(smpls)
			switch rng.Intn(3) {
			case 0:
				ops = routing.Ops{routing.Swap(pick(smpls))}
			case 1:
				ops = routing.Ops{routing.Pop()}
			default:
				ops = routing.Ops{routing.Push(pick(mpls))}
			}
		case 2: // mpls top: swap or pop.
			top = pick(mpls)
			if rng.Intn(2) == 0 {
				ops = routing.Ops{routing.Swap(pick(mpls))}
			} else {
				ops = routing.Ops{routing.Pop()}
			}
		default: // failover-style: swap + push.
			top = pick(smpls)
			ops = routing.Ops{routing.Swap(pick(smpls)), routing.Push(pick(mpls))}
		}
		prio := 1
		if rng.Intn(4) == 0 {
			prio = 2
		}
		n.Routing.MustAdd(in, top, prio, routing.Entry{Out: out, Ops: ops})
	}
	return n
}

// randomQuery builds a random query over the network's routers.
func randomQuery(rng *rand.Rand, n *network.Network) string {
	r := func() string {
		return n.Topo.Routers[rng.Intn(n.Topo.NumRouters())].Name
	}
	k := rng.Intn(3)
	heads := []string{"ip", "smpls ip", "smpls? ip", "mpls smpls ip", ". ip", "(mpls* smpls)? ip"}
	h1 := heads[rng.Intn(len(heads))]
	h2 := heads[rng.Intn(len(heads))]
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("<%s> [.#%s] .* [.#%s] <%s> %d", h1, r(), r(), h2, k)
	case 1:
		return fmt.Sprintf("<%s> [.#%s] [^%s#%s]* [.#%s] <%s> %d", h1, r(), r(), r(), r(), h2, k)
	case 2:
		return fmt.Sprintf("<%s> .* <%s> %d", h1, h2, k)
	default:
		return fmt.Sprintf("<%s> [.#%s] .{1,4} [.#%s] <%s> %d", h1, r(), r(), h2, k)
	}
}

// TestFuzzEngineAgainstBruteForce cross-checks the full pipeline against
// exhaustive enumeration on random networks: the engine may never claim
// Unsatisfied when a bounded witness exists, never claim Satisfied when no
// witness exists, and all its witnesses must validate.
func TestFuzzEngineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	iters := 120
	if testing.Short() {
		iters = 25
	}
	inconclusives := 0
	for iter := 0; iter < iters; iter++ {
		n := randomNetwork(rng)
		qt := randomQuery(rng, n)
		q, err := query.Parse(qt, n)
		if err != nil {
			t.Fatalf("iter %d: %s: %v", iter, qt, err)
		}
		res, err := engine.Verify(n, q, engine.Options{})
		if err != nil {
			t.Fatalf("iter %d: %s: %v", iter, qt, err)
		}
		want := bruteForceSatisfiableFuzz(n, q)
		switch res.Verdict {
		case engine.Satisfied:
			// The brute force is bounded (trace length ≤ 6, header depth
			// ≤ 3); within those bounds it must agree.
			if !want && len(res.Trace) <= 6 && len(res.Trace[0].Header) <= 3 {
				t.Fatalf("iter %d: %s: engine satisfied with a bounded witness, brute force found nothing; witness: %s",
					iter, qt, res.Trace.Format(n))
			}
			checkWitness(t, n, qt, res)
		case engine.Unsatisfied:
			if want {
				t.Fatalf("iter %d: %s: engine unsatisfied, brute force found a witness", iter, qt)
			}
		case engine.Inconclusive:
			inconclusives++
			if want {
				t.Logf("iter %d: %s: inconclusive but a witness exists (approximation gap)", iter, qt)
			}
		}
		// The Moped backend must agree with the dual engine's verdict.
		if iter%5 == 0 {
			base, err := engine.Verify(n, q, engine.Options{Saturate: moped.Poststar})
			if err != nil {
				t.Fatalf("iter %d moped: %v", iter, err)
			}
			if base.Verdict != res.Verdict {
				t.Fatalf("iter %d: %s: dual=%v moped=%v", iter, qt, res.Verdict, base.Verdict)
			}
		}
	}
	t.Logf("%d/%d inconclusive", inconclusives, iters)
}

// TestFuzzWeightedMinimality checks on random instances that the weighted
// engine's reported minimum is genuinely minimal: no brute-force witness
// has a smaller weight vector.
func TestFuzzWeightedMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	spec := weight.Spec{
		{{Coeff: 1, Q: weight.Hops}},
		{{Coeff: 1, Q: weight.Failures}, {Coeff: 3, Q: weight.Tunnels}},
	}
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for iter := 0; iter < iters; iter++ {
		n := randomNetwork(rng)
		qt := randomQuery(rng, n)
		q, err := query.Parse(qt, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Verify(n, q, engine.Options{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != engine.Satisfied {
			continue
		}
		best := bruteForceMinWeight(n, q, spec)
		if best == nil {
			t.Fatalf("iter %d: %s: engine satisfied but brute force found nothing", iter, qt)
		}
		// The engine's weight must not be worse than the brute-force
		// minimum over bounded traces. (It may be better only if the true
		// minimal witness is longer than the brute-force bound — then the
		// bounded "minimum" is not global; accept engine ≤ brute.)
		if best.Less(res.Weight) {
			t.Fatalf("iter %d: %s: engine weight %v, brute force found better %v",
				iter, qt, res.Weight, best)
		}
	}
}

// FuzzVerifyBatch cross-checks the batch engine against serial runs on
// random instances: for any random network, query set and worker count,
// every batch result must agree with a fresh engine.Verify call — same
// error-or-success, same verdict, same witness trace, same failed set.
func FuzzVerifyBatch(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(4))
	f.Add(int64(42), int64(7), uint8(1))
	f.Add(int64(1234), int64(99), uint8(8))
	f.Add(int64(-5), int64(0), uint8(3))
	f.Fuzz(func(t *testing.T, netSeed, querySeed int64, workers uint8) {
		rng := rand.New(rand.NewSource(netSeed))
		n := randomNetwork(rng)
		qrng := rand.New(rand.NewSource(querySeed))
		texts := make([]string, 6)
		for i := range texts {
			texts[i] = randomQuery(qrng, n)
		}
		w := int(workers%8) + 1
		results := batch.Verify(context.Background(), n, texts, batch.Options{Workers: w})
		for i, r := range results {
			res, err := engine.VerifyText(n, texts[i], engine.Options{})
			if (r.Err != nil) != (err != nil) {
				t.Fatalf("workers=%d %q: batch err %v, serial err %v", w, texts[i], r.Err, err)
			}
			if err != nil {
				continue
			}
			if r.Res.Verdict != res.Verdict {
				t.Fatalf("workers=%d %q: batch verdict %v, serial %v", w, texts[i], r.Res.Verdict, res.Verdict)
			}
			if !reflect.DeepEqual(r.Res.Trace, res.Trace) || !reflect.DeepEqual(r.Res.Failed, res.Failed) {
				t.Fatalf("workers=%d %q: batch witness differs from serial\nbatch:  %s\nserial: %s",
					w, texts[i], r.Res.Trace.Format(n), res.Trace.Format(n))
			}
			// Early-accept termination must not change the outcome: a run
			// with the fast path disabled agrees on verdict and weight.
			resNo, errNo := engine.VerifyText(n, texts[i], engine.Options{NoEarlyAccept: true})
			if errNo != nil {
				t.Fatalf("%q: NoEarlyAccept: %v", texts[i], errNo)
			}
			if resNo.Verdict != res.Verdict || !reflect.DeepEqual(resNo.Weight, res.Weight) {
				t.Fatalf("%q: early accept changed the result: verdict %v/%v weight %v/%v",
					texts[i], res.Verdict, resNo.Verdict, res.Weight, resNo.Weight)
			}
		}
	})
}

// FuzzVerifyModes cross-checks the execution modes that promise
// byte-identical results — parallel saturation at any worker count and
// query-scoped network slicing on or off — against the serial unsliced
// engine on random instances. Any divergence in verdict, trace, failed
// set or weight is a soundness bug in the sharded commit order or the
// slice's forward closure.
func FuzzVerifyModes(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(4), false)
	f.Add(int64(42), int64(7), uint8(0), true)
	f.Add(int64(1234), int64(99), uint8(8), false)
	f.Add(int64(-5), int64(0), uint8(2), true)
	f.Fuzz(func(t *testing.T, netSeed, querySeed int64, satJ uint8, noSlice bool) {
		prev := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(prev)
		rng := rand.New(rand.NewSource(netSeed))
		n := randomNetwork(rng)
		qrng := rand.New(rand.NewSource(querySeed))
		j := int(satJ % 9) // 0 (engine default) through 8 workers
		for i := 0; i < 4; i++ {
			qt := randomQuery(qrng, n)
			base, berr := engine.VerifyText(n, qt, engine.Options{NoSlice: true})
			res, err := engine.VerifyText(n, qt, engine.Options{SatJ: j, NoSlice: noSlice})
			if (berr != nil) != (err != nil) {
				t.Fatalf("j=%d noSlice=%v %q: base err %v, mode err %v", j, noSlice, qt, berr, err)
			}
			if err != nil {
				continue
			}
			if res.Verdict != base.Verdict {
				t.Fatalf("j=%d noSlice=%v %q: verdict %v, serial unsliced %v", j, noSlice, qt, res.Verdict, base.Verdict)
			}
			if !reflect.DeepEqual(res.Trace, base.Trace) || !reflect.DeepEqual(res.Failed, base.Failed) {
				t.Fatalf("j=%d noSlice=%v %q: witness differs from serial unsliced\nmode: %s\nbase: %s",
					j, noSlice, qt, res.Trace.Format(n), base.Trace.Format(n))
			}
			if !reflect.DeepEqual(res.Weight, base.Weight) {
				t.Fatalf("j=%d noSlice=%v %q: weight %v, serial unsliced %v", j, noSlice, qt, res.Weight, base.Weight)
			}
		}
	})
}

// bruteForceMinWeight enumerates bounded witnesses and returns the minimal
// weight vector, or nil if none found.
func bruteForceMinWeight(net *network.Network, q *query.Query, spec weight.Spec) weight.Vec {
	var best weight.Vec
	forEachWitness(net, q, func(tr network.Trace) {
		v := spec.Eval(weight.EvalTrace(net, tr, nil))
		if best == nil || v.Less(best) {
			best = v
		}
	})
	return best
}

// forEachWitness enumerates all bounded witnesses of the query.
func forEachWitness(net *network.Network, q *query.Query, visit func(network.Trace)) {
	links := net.Topo.NumLinks()
	var subsets [][]topology.LinkID
	subsets = append(subsets, nil)
	if q.MaxFailures >= 1 {
		for i := 0; i < links; i++ {
			subsets = append(subsets, []topology.LinkID{topology.LinkID(i)})
		}
	}
	if q.MaxFailures >= 2 {
		for i := 0; i < links; i++ {
			for j := i + 1; j < links; j++ {
				subsets = append(subsets, []topology.LinkID{topology.LinkID(i), topology.LinkID(j)})
			}
		}
	}
	var headers []labels.Header
	for _, ip := range net.Labels.OfKind(labels.IP) {
		headers = append(headers, labels.Header{ip})
		for _, s := range net.Labels.OfKind(labels.BottomMPLS) {
			headers = append(headers, labels.Header{s, ip})
			for _, m := range net.Labels.OfKind(labels.MPLS) {
				headers = append(headers, labels.Header{m, s, ip})
			}
		}
	}
	for _, sub := range subsets {
		f := network.FailedSet{}
		for _, l := range sub {
			f[l] = true
		}
		for e := 0; e < links; e++ {
			if f[topology.LinkID(e)] {
				continue
			}
			for _, h := range headers {
				if !q.PreNFA.Accepts(headerSyms(h)) {
					continue
				}
				net.Enumerate(topology.LinkID(e), h, f, 6, func(tr network.Trace) bool {
					if q.PathNFA.Accepts(pathSyms(tr)) &&
						q.PostNFA.Accepts(headerSyms(tr[len(tr)-1].Header)) {
						visit(tr)
					}
					return true
				})
			}
		}
	}
}

func bruteForceSatisfiableFuzz(net *network.Network, q *query.Query) bool {
	found := false
	forEachWitness(net, q, func(network.Trace) { found = true })
	return found
}
