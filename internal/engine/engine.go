// Package engine implements the AalWiNes verification pipeline of §4.2:
// build the over-approximating pushdown system, saturate it, and if the
// query is satisfied attempt to reconstruct and validate a witness trace;
// fall back to the under-approximating system (global failure counter) when
// the over-approximation's witness is infeasible; report Inconclusive only
// when both directions fail to decide. The weighted engine threads a
// minimisation vector through the same pipeline (Problem 2, the minimum
// witness problem) and returns a minimal witness trace.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/pds"
	"aalwines/internal/query"
	"aalwines/internal/translate"
	"aalwines/internal/weight"
)

// Pipeline metrics: one histogram per phase (mirroring the Stats fields)
// plus run/verdict/error counters. The under phase is only observed on
// runs that actually consulted the under-approximation, so its count is
// also the fallback rate.
var (
	mRuns   = obs.GetCounter("engine_runs_total")
	mErrors = obs.GetCounter("engine_errors_total")
	mPhases = [4]*obs.Histogram{
		obs.GetHistogram(`engine_phase_seconds{phase="build"}`, nil),
		obs.GetHistogram(`engine_phase_seconds{phase="over"}`, nil),
		obs.GetHistogram(`engine_phase_seconds{phase="under"}`, nil),
		obs.GetHistogram(`engine_phase_seconds{phase="reconstruct"}`, nil),
	}
	mVerdicts = [3]*obs.Counter{
		obs.GetCounter(`engine_verdicts_total{verdict="unsatisfied"}`),
		obs.GetCounter(`engine_verdicts_total{verdict="satisfied"}`),
		obs.GetCounter(`engine_verdicts_total{verdict="inconclusive"}`),
	}
	// mEarlyFallback counts runs where the early-accept fast path produced a
	// witness that failed validation, forcing a full re-saturation. A high
	// rate relative to pds_early_accept_total means the fast path is paying
	// for itself rarely and NoEarlyAccept may be the better configuration.
	mEarlyFallback = obs.GetCounter("engine_early_accept_fallback_total")
)

// Verdict is the outcome of a verification run.
type Verdict uint8

const (
	// Unsatisfied: no witness trace exists (conclusive, via the
	// over-approximation).
	Unsatisfied Verdict = iota
	// Satisfied: a concrete witness trace was produced and validated.
	Satisfied
	// Inconclusive: the over-approximation is satisfiable but no feasible
	// witness could be produced; a more expensive analysis would be needed.
	Inconclusive
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Unsatisfied:
		return "unsatisfied"
	case Satisfied:
		return "satisfied"
	default:
		return "inconclusive"
	}
}

// Saturator abstracts the post* implementation so the Moped-style baseline
// can plug in. Implementations must behave like pds.PoststarBudget.
type Saturator func(p *pds.PDS, init *pds.Auto, dim int, budget int64) (*pds.Result, error)

// Options configure a verification run.
type Options struct {
	// Spec enables the weighted engine with the given minimisation vector.
	Spec weight.Spec
	// Dist overrides the link distance function for the Distance quantity.
	Dist weight.DistanceFunc
	// NoReductions disables the pre-saturation reduction pass (ablation).
	NoReductions bool
	// OverOnly disables the under-approximation fallback: runs that would
	// consult it return Inconclusive directly (ablation for the "Dual"
	// design; P-Rex-style single-sided analysis).
	OverOnly bool
	// Budget bounds the saturation work per direction (0 = unlimited); an
	// exhausted budget yields ErrBudget, the analogue of the paper's
	// 10-minute timeout.
	Budget int64
	// NoEarlyAccept disables early-accept termination of the unweighted
	// over-approximation saturation (ablation). By default the engine stops
	// saturating as soon as an accepting configuration is reachable and
	// tries to validate that witness immediately, re-saturating to the
	// fixed point only if validation fails; verdicts are identical either
	// way, only the work differs.
	NoEarlyAccept bool
	// SatJ sets the saturation parallelism (pds.SatOptions.Parallelism) of
	// the default backend: values > 1 run post* rule matching on that many
	// workers, clamped to GOMAXPROCS, with results byte-identical to the
	// serial engine. 0 or 1 is serial; a Saturate override ignores it.
	SatJ int
	// NoSlice disables query-scoped network slicing (ablation). By default
	// the translator emits rules only for the part of the network the
	// query's endpoints can reach (translate.Options.Slice); results are
	// byte-identical either way, only build work and rule counts differ.
	NoSlice bool
	// Saturate overrides the saturation backend (nil = pds.PoststarBudget).
	Saturate Saturator
	// Cache, when non-nil and bound to the verified network, memoizes
	// translated systems across runs: the pushdown system is built once per
	// (query, direction, spec, reductions) and shared read-only, with a
	// fresh initial automaton cloned per run. Used by the batch runner; any
	// long-lived caller verifying many queries against one network can set
	// it. Accepts any translate.Getter — translate.Cache for immutable
	// networks, translate.SessionCache for scenario overlays. Runs with a
	// Dist override bypass the cache (functions are not keyable).
	Cache translate.Getter
}

// Stats reports sizes and timings of a run.
type Stats struct {
	OverRules    int
	OverRulesPre int // before reduction
	UnderRules   int
	UnderUsed    bool
	TransOver    int // saturated automaton transitions (over direction)
	TransUnder   int
	// EarlyAccepted reports that the over-approximation saturation stopped
	// at the early-accept check rather than the fixed point. TransOver then
	// counts the partial automaton unless a fallback re-saturation ran.
	EarlyAccepted bool
	// Slice reports the query-scoped network slice the over-approximation
	// was built under; Slice.Active is false when slicing was disabled or
	// skipped (incremental session builds, Dist-override builds through a
	// SessionCache).
	Slice           translate.SliceStats
	BuildTime       time.Duration
	OverTime        time.Duration
	UnderTime       time.Duration
	ReconstructTime time.Duration
}

// Result is the outcome of Verify.
type Result struct {
	Verdict Verdict
	// Trace is a witness trace when Satisfied.
	Trace network.Trace
	// Failed is a minimum failed-link set enabling the trace.
	Failed network.FailedSet
	// Weight is the witness weight under the spec (nil when unweighted).
	Weight weight.Vec
	Stats  Stats
}

// ErrBudget is surfaced when the work budget is exhausted; callers treat it
// as a timeout.
var ErrBudget = pds.ErrBudget

// Verify runs the full pipeline for a query on a network.
func Verify(net *network.Network, q *query.Query, opts Options) (Result, error) {
	return VerifyCtx(context.Background(), net, q, opts)
}

// VerifyCtx is Verify with cooperative cancellation: when ctx is cancelled
// (or its deadline passes) the run aborts between phases and inside
// saturation, returning ctx's error. Cancellation only applies to the
// default saturation backend; an explicit Saturate override is still
// bounded by Budget and checked between phases.
//
// Stats is populated consistently on every return path, including errors:
// whatever phases completed (or were in flight when the budget blew) have
// their timings and sizes filled in, so callers can report partial stats
// alongside a timeout.
func VerifyCtx(ctx context.Context, net *network.Network, q *query.Query, opts Options) (Result, error) {
	res, err := verifyCtx(ctx, net, q, opts)
	mRuns.Inc()
	mPhases[0].ObserveDuration(res.Stats.BuildTime)
	mPhases[1].ObserveDuration(res.Stats.OverTime)
	if res.Stats.UnderUsed {
		mPhases[2].ObserveDuration(res.Stats.UnderTime)
	}
	if res.Stats.ReconstructTime > 0 {
		mPhases[3].ObserveDuration(res.Stats.ReconstructTime)
	}
	if err != nil {
		mErrors.Inc()
	} else if int(res.Verdict) < len(mVerdicts) {
		mVerdicts[res.Verdict].Inc()
	}
	return res, err
}

func verifyCtx(ctx context.Context, net *network.Network, q *query.Query, opts Options) (Result, error) {
	sat := opts.Saturate
	if sat == nil {
		stop := ctx.Done()
		sat = func(p *pds.PDS, init *pds.Auto, dim int, budget int64) (*pds.Result, error) {
			return pds.PoststarOpts(p, init, pds.SatOptions{
				Dim:         dim,
				Budget:      budget,
				Stop:        stop,
				Parallelism: opts.SatJ,
			})
		}
	}
	build := func(mode translate.Mode) (*translate.System, *pds.Auto) {
		topts := translate.Options{
			Mode:         mode,
			Spec:         opts.Spec,
			Dist:         opts.Dist,
			NoReductions: opts.NoReductions,
			Slice:        !opts.NoSlice,
		}
		if opts.Cache != nil && opts.Cache.Net() == net {
			return opts.Cache.Get(q, topts)
		}
		sys := translate.Build(net, q, topts)
		return sys, sys.InitAuto()
	}
	var res Result
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Over-approximation.
	t0 := time.Now()
	over, overInit := build(translate.Over)
	res.Stats.BuildTime = time.Since(t0)
	res.Stats.OverRules = len(over.PDS.Rules)
	res.Stats.OverRulesPre = over.RulesBeforeReduction
	res.Stats.Slice = over.SliceStats

	// Early-accept applies to unweighted runs on the default backend: the
	// saturation stops as soon as an accepting configuration is reachable,
	// and the witness-validation pass below decides whether that was enough.
	early := opts.Saturate == nil && !opts.NoEarlyAccept && over.Dim == 0

	t1 := time.Now()
	var overRes *pds.Result
	var err error
	if early {
		overRes, err = pds.PoststarOpts(over.PDS, overInit, pds.SatOptions{
			Budget:      opts.Budget,
			Stop:        ctx.Done(),
			EarlyAccept: true,
			FinalStates: over.FinalStates,
			FinalSpec:   over.FinalSpec,
			Parallelism: opts.SatJ,
		})
	} else {
		overRes, err = sat(over.PDS, overInit, over.Dim, opts.Budget)
	}
	res.Stats.OverTime = time.Since(t1)
	if err != nil {
		if cerr := ctxError(ctx, err); cerr != nil {
			return res, cerr
		}
		return res, fmt.Errorf("engine: over-approximation: %w", err)
	}
	res.Stats.TransOver = overRes.Auto.NumTrans()
	res.Stats.EarlyAccepted = overRes.EarlyAccepted

	// tryWitness searches r for an accepting configuration and, if one
	// exists, attempts to reconstruct and validate a concrete trace.
	// decided=true means the run is settled (Satisfied, or a hard error);
	// found reports whether an accepting configuration existed at all.
	// Witness search, trace reconstruction and feasibility validation all
	// count as reconstruction time; the under-approximation pass below
	// accumulates into the same field.
	tryWitness := func(sys *translate.System, r *pds.Result) (decided, found bool, err error) {
		t := time.Now()
		acc, ok := r.FindAccepting(sys.FinalStates, sys.FinalSpec)
		if !ok {
			res.Stats.ReconstructTime += time.Since(t)
			return false, false, nil
		}
		tr, derr := decode(sys, r, acc)
		res.Stats.ReconstructTime += time.Since(t)
		if derr == nil {
			if feas := net.Feasible(tr, q.MaxFailures); feas.Feasible {
				res.Verdict = Satisfied
				res.Trace = tr
				res.Failed = feas.Failed
				res.Weight = traceWeight(net, tr, opts)
				return true, true, nil
			}
		} else if !errors.Is(derr, errDecode) {
			return true, true, derr
		}
		return false, true, nil
	}

	decided, found, werr := tryWitness(over, overRes)
	if werr != nil {
		return res, werr
	}
	if decided {
		return res, nil
	}
	if overRes.EarlyAccepted {
		// The partial automaton's witness did not validate (infeasible or
		// undecodable). Any verdict other than Satisfied needs the fixed
		// point, so re-saturate fully from a fresh initial automaton and
		// rejoin the normal pipeline; from here on behaviour is identical
		// to a run with NoEarlyAccept set.
		mEarlyFallback.Inc()
		if err := ctx.Err(); err != nil {
			return res, err
		}
		tb := time.Now()
		_, overInit = build(translate.Over)
		res.Stats.BuildTime += time.Since(tb)
		t := time.Now()
		overRes, err = sat(over.PDS, overInit, over.Dim, opts.Budget)
		res.Stats.OverTime += time.Since(t)
		if err != nil {
			if cerr := ctxError(ctx, err); cerr != nil {
				return res, cerr
			}
			return res, fmt.Errorf("engine: over-approximation: %w", err)
		}
		res.Stats.TransOver = overRes.Auto.NumTrans()
		decided, found, werr = tryWitness(over, overRes)
		if werr != nil {
			return res, werr
		}
		if decided {
			return res, nil
		}
	}
	if !found {
		res.Verdict = Unsatisfied
		return res, nil
	}

	if opts.OverOnly {
		res.Verdict = Inconclusive
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Under-approximation with a global failure budget.
	res.Stats.UnderUsed = true
	under, underInit := build(translate.Under)
	res.Stats.UnderRules = len(under.PDS.Rules)
	t3 := time.Now()
	underRes, err := sat(under.PDS, underInit, under.Dim, opts.Budget)
	res.Stats.UnderTime = time.Since(t3)
	if err != nil {
		if cerr := ctxError(ctx, err); cerr != nil {
			return res, cerr
		}
		return res, fmt.Errorf("engine: under-approximation: %w", err)
	}
	res.Stats.TransUnder = underRes.Auto.NumTrans()

	t4 := time.Now()
	acc2, found2 := underRes.FindAccepting(under.FinalStates, under.FinalSpec)
	if !found2 {
		res.Stats.ReconstructTime += time.Since(t4)
		res.Verdict = Inconclusive
		return res, nil
	}
	tr2, err := decode(under, underRes, acc2)
	res.Stats.ReconstructTime += time.Since(t4)
	if err != nil {
		res.Verdict = Inconclusive
		return res, nil //nolint:nilerr // inconclusive is the contract here
	}
	if feas := net.Feasible(tr2, q.MaxFailures); feas.Feasible {
		res.Verdict = Satisfied
		res.Trace = tr2
		res.Failed = feas.Failed
		res.Weight = traceWeight(net, tr2, opts)
		return res, nil
	}
	res.Verdict = Inconclusive
	return res, nil
}

var errDecode = errors.New("engine: witness decoding failed")

// ctxError translates a saturation stop triggered by ctx into ctx's own
// error (context.Canceled or DeadlineExceeded); it returns nil for
// unrelated saturation failures.
func ctxError(ctx context.Context, err error) error {
	if errors.Is(err, pds.ErrStopped) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return nil
}

func decode(sys *translate.System, r *pds.Result, acc pds.Accepted) (network.Trace, error) {
	init, rules, err := r.Reconstruct(acc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errDecode, err)
	}
	tr, err := sys.DecodeTrace(init, rules)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errDecode, err)
	}
	return tr, nil
}

func traceWeight(net *network.Network, tr network.Trace, opts Options) weight.Vec {
	if opts.Spec == nil {
		return nil
	}
	return opts.Spec.Eval(weight.EvalTrace(net, tr, opts.Dist))
}

// VerifyText parses and verifies a textual query; a convenience wrapper
// used by the CLI and examples.
func VerifyText(net *network.Network, queryText string, opts Options) (Result, error) {
	return VerifyTextCtx(context.Background(), net, queryText, opts)
}

// VerifyTextCtx is VerifyText with cooperative cancellation, mirroring
// VerifyCtx.
func VerifyTextCtx(ctx context.Context, net *network.Network, queryText string, opts Options) (Result, error) {
	q, err := query.Parse(queryText, net)
	if err != nil {
		return Result{}, err
	}
	return VerifyCtx(ctx, net, q, opts)
}
