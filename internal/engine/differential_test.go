package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/explicit"
	"aalwines/internal/gen"
	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/query"
	"aalwines/internal/weight"
)

// diffCase is one (network, query, k) combination of the differential
// harness.
type diffCase struct {
	net  *network.Network
	text string
	k    int
}

// withK rewrites the failure bound of a query text (the trailing integer).
func withK(text string, k int) string {
	i := strings.LastIndexByte(strings.TrimSpace(text), ' ')
	return strings.TrimSpace(text)[:i+1] + fmt.Sprint(k)
}

// diffCorpus builds the differential corpus: the running example plus a
// family of small synthesised zoo networks, each with generated queries
// replicated across every failure bound k ∈ {0,1,2}.
func diffCorpus(tb testing.TB) []diffCase {
	tb.Helper()
	type netQueries struct {
		net   *network.Network
		texts []string
	}
	var nets []netQueries
	nets = append(nets, netQueries{
		net: gen.RunningExample().Network,
		texts: []string{
			"<ip> [.#v0] .* [v3#.] <ip> 0",
			"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 0",
			"<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 0",
		},
	})
	for i, routers := range []int{8, 10, 12} {
		s := gen.Zoo(gen.ZooOpts{Routers: routers, Seed: int64(20 + i), Protection: true})
		nq := netQueries{net: s.Net}
		for _, q := range s.Queries(5, int64(100+i)) {
			nq.texts = append(nq.texts, q.Text)
		}
		nets = append(nets, nq)
	}
	var cases []diffCase
	for _, nq := range nets {
		for _, text := range nq.texts {
			for k := 0; k <= 2; k++ {
				cases = append(cases, diffCase{nq.net, withK(text, k), k})
			}
		}
	}
	return cases
}

// TestDifferentialExplicit cross-checks the symbolic pipeline against the
// explicit-state checker on every corpus combination. The explicit engine
// decides over-approximate reachability exactly within its height bound
// (no feasibility validation), so the sound comparisons are:
//
//   - explicit satisfied        ⟹ the engine is not Unsatisfied,
//   - engine Satisfied          ⟹ explicit found a witness, unless the
//     height bound pruned the search,
//   - engine Unsatisfied        ⟹ explicit found nothing.
func TestDifferentialExplicit(t *testing.T) {
	cases := diffCorpus(t)
	if len(cases) < 50 {
		t.Fatalf("corpus has %d combinations, want ≥ 50", len(cases))
	}
	checked := 0
	for _, c := range cases {
		q, err := query.Parse(c.text, c.net)
		if err != nil {
			t.Fatalf("%s %q: %v", c.net.Name, c.text, err)
		}
		res, err := engine.Verify(c.net, q, engine.Options{})
		if err != nil {
			t.Fatalf("%s %q: engine: %v", c.net.Name, c.text, err)
		}
		exp, err := explicit.Verify(c.net, q, explicit.Options{MaxHeight: 6})
		if errors.Is(err, explicit.ErrStateBudget) {
			continue // too large to enumerate; covered by other combos
		}
		if err != nil {
			t.Fatalf("%s %q: explicit: %v", c.net.Name, c.text, err)
		}
		checked++
		if exp.Satisfied && res.Verdict == engine.Unsatisfied {
			t.Errorf("%s %q (k=%d): engine unsatisfied, explicit witness: %s",
				c.net.Name, c.text, c.k, exp.Trace.Format(c.net))
		}
		if res.Verdict == engine.Satisfied && !exp.Satisfied && !exp.HitHeightBound {
			t.Errorf("%s %q (k=%d): engine satisfied, exhaustive explicit search found nothing; witness: %s",
				c.net.Name, c.text, c.k, res.Trace.Format(c.net))
		}
		if res.Verdict == engine.Unsatisfied && exp.Satisfied {
			t.Errorf("%s %q (k=%d): engine unsatisfied but explicit satisfied", c.net.Name, c.text, c.k)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d combinations fully checked, want ≥ 50", checked)
	}
	t.Logf("%d/%d combinations checked against the explicit engine", checked, len(cases))
}

// diffEssence is the serialisation the batch determinism check compares:
// every semantically meaningful result field, excluding timings.
type diffEssence struct {
	Verdict string
	Trace   network.Trace
	Failed  []int
	Weight  []uint64
}

func marshalResult(tb testing.TB, r engine.Result) []byte {
	tb.Helper()
	b, err := json.Marshal(diffEssence{
		Verdict: r.Verdict.String(),
		Trace:   r.Trace,
		Failed:  failedInts(r.Failed),
		Weight:  r.Weight,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func failedInts(f network.FailedSet) []int {
	var out []int
	for _, l := range f.Sorted() {
		out = append(out, int(l))
	}
	return out
}

// TestDifferentialEarlyAccept cross-checks early-accept termination
// against full saturation on the whole corpus: verdicts and witness
// weights must be identical with the fast path on and off, both
// unweighted and weighted (where early accept is disabled by dimension
// and the runs must be byte-identical outright). The corpus must
// actually exercise the fast path: the pds_early_accept_total counter
// has to move over the run.
func TestDifferentialEarlyAccept(t *testing.T) {
	cases := diffCorpus(t)
	spec := weight.Spec{{{Coeff: 1, Q: weight.Hops}}}
	early0 := obs.GetCounter("pds_early_accept_total").Value()
	for _, c := range cases {
		q, err := query.Parse(c.text, c.net)
		if err != nil {
			t.Fatalf("%s %q: %v", c.net.Name, c.text, err)
		}
		on, err := engine.Verify(c.net, q, engine.Options{})
		if err != nil {
			t.Fatalf("%s %q: early on: %v", c.net.Name, c.text, err)
		}
		off, err := engine.Verify(c.net, q, engine.Options{NoEarlyAccept: true})
		if err != nil {
			t.Fatalf("%s %q: early off: %v", c.net.Name, c.text, err)
		}
		if on.Verdict != off.Verdict {
			t.Errorf("%s %q (k=%d): verdict early=%v full=%v",
				c.net.Name, c.text, c.k, on.Verdict, off.Verdict)
		}
		if !reflect.DeepEqual(on.Weight, off.Weight) {
			t.Errorf("%s %q (k=%d): weight early=%v full=%v",
				c.net.Name, c.text, c.k, on.Weight, off.Weight)
		}
		won, err := engine.Verify(c.net, q, engine.Options{Spec: spec})
		if err != nil {
			t.Fatalf("%s %q: weighted: %v", c.net.Name, c.text, err)
		}
		if won.Stats.EarlyAccepted {
			t.Errorf("%s %q: weighted run reported early accept", c.net.Name, c.text)
		}
		woff, err := engine.Verify(c.net, q, engine.Options{Spec: spec, NoEarlyAccept: true})
		if err != nil {
			t.Fatalf("%s %q: weighted, early off: %v", c.net.Name, c.text, err)
		}
		if got, want := marshalResult(t, won), marshalResult(t, woff); !bytes.Equal(got, want) {
			t.Errorf("%s %q (k=%d): weighted results differ\non:  %s\noff: %s",
				c.net.Name, c.text, c.k, got, want)
		}
	}
	if d := obs.GetCounter("pds_early_accept_total").Value() - early0; d == 0 {
		t.Error("pds_early_accept_total did not move: corpus never exercised the fast path")
	} else {
		t.Logf("early accept fired %d times across %d combinations", d, len(cases))
	}
}

// TestDifferentialParallelSaturation runs the whole corpus with parallel
// saturation at several worker counts and demands byte-identical
// serialised results against fresh serial runs — unweighted and weighted.
// GOMAXPROCS is raised so the sharded path engages on single-CPU runners,
// and the pds_parallel_runs_total counter must move to prove it did.
func TestDifferentialParallelSaturation(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	cases := diffCorpus(t)
	spec := weight.Spec{{{Coeff: 1, Q: weight.Hops}}}
	par0 := obs.GetCounter("pds_parallel_runs_total").Value()
	for _, c := range cases {
		q, err := query.Parse(c.text, c.net)
		if err != nil {
			t.Fatalf("%s %q: %v", c.net.Name, c.text, err)
		}
		serial, err := engine.Verify(c.net, q, engine.Options{})
		if err != nil {
			t.Fatalf("%s %q: serial: %v", c.net.Name, c.text, err)
		}
		want := marshalResult(t, serial)
		for _, j := range []int{2, 4, 8} {
			par, err := engine.Verify(c.net, q, engine.Options{SatJ: j})
			if err != nil {
				t.Fatalf("%s %q: sat-j=%d: %v", c.net.Name, c.text, j, err)
			}
			if got := marshalResult(t, par); !bytes.Equal(got, want) {
				t.Errorf("%s %q (k=%d): sat-j=%d differs from serial\npar:    %s\nserial: %s",
					c.net.Name, c.text, c.k, j, got, want)
			}
		}
		wserial, err := engine.Verify(c.net, q, engine.Options{Spec: spec})
		if err != nil {
			t.Fatalf("%s %q: weighted serial: %v", c.net.Name, c.text, err)
		}
		wpar, err := engine.Verify(c.net, q, engine.Options{Spec: spec, SatJ: 4})
		if err != nil {
			t.Fatalf("%s %q: weighted sat-j=4: %v", c.net.Name, c.text, err)
		}
		if got, want := marshalResult(t, wpar), marshalResult(t, wserial); !bytes.Equal(got, want) {
			t.Errorf("%s %q (k=%d): weighted sat-j=4 differs from serial\npar:    %s\nserial: %s",
				c.net.Name, c.text, c.k, got, want)
		}
	}
	if d := obs.GetCounter("pds_parallel_runs_total").Value() - par0; d == 0 {
		t.Error("pds_parallel_runs_total did not move: corpus never exercised the parallel path")
	} else {
		t.Logf("parallel saturation ran %d times across %d combinations", d, len(cases))
	}
}

// TestDifferentialSlice runs the whole corpus with query-scoped slicing on
// (the default) and off, demanding byte-identical serialised results. The
// slice counters must move to prove slicing actually engaged.
func TestDifferentialSlice(t *testing.T) {
	cases := diffCorpus(t)
	kept0 := obs.GetCounter("translate_slice_routers_kept_total").Value()
	for _, c := range cases {
		q, err := query.Parse(c.text, c.net)
		if err != nil {
			t.Fatalf("%s %q: %v", c.net.Name, c.text, err)
		}
		sliced, err := engine.Verify(c.net, q, engine.Options{})
		if err != nil {
			t.Fatalf("%s %q: sliced: %v", c.net.Name, c.text, err)
		}
		full, err := engine.Verify(c.net, q, engine.Options{NoSlice: true})
		if err != nil {
			t.Fatalf("%s %q: unsliced: %v", c.net.Name, c.text, err)
		}
		if got, want := marshalResult(t, sliced), marshalResult(t, full); !bytes.Equal(got, want) {
			t.Errorf("%s %q (k=%d): sliced result differs from unsliced\nsliced: %s\nfull:   %s",
				c.net.Name, c.text, c.k, got, want)
		}
		if !sliced.Stats.Slice.Active {
			t.Errorf("%s %q: default run reports inactive slice", c.net.Name, c.text)
		}
		if full.Stats.Slice.Active {
			t.Errorf("%s %q: NoSlice run reports an active slice", c.net.Name, c.text)
		}
		if got, want := sliced.Stats.OverRules, full.Stats.OverRules; got > want {
			t.Errorf("%s %q: sliced build has more rules (%d > %d)", c.net.Name, c.text, got, want)
		}
	}
	if obs.GetCounter("translate_slice_routers_kept_total").Value() == kept0 {
		t.Error("translate_slice_routers_kept_total did not move")
	}
}

// TestDifferentialBatchSerial runs the whole corpus through the batch
// engine at several worker counts and demands byte-identical serialised
// results against fresh serial runs.
func TestDifferentialBatchSerial(t *testing.T) {
	cases := diffCorpus(t)
	byNet := map[*network.Network][]string{}
	var order []*network.Network
	for _, c := range cases {
		if _, ok := byNet[c.net]; !ok {
			order = append(order, c.net)
		}
		byNet[c.net] = append(byNet[c.net], c.text)
	}
	for _, net := range order {
		texts := byNet[net]
		serial := make([][]byte, len(texts))
		for i, text := range texts {
			res, err := engine.VerifyText(net, text, engine.Options{})
			if err != nil {
				t.Fatalf("%s %q: %v", net.Name, text, err)
			}
			serial[i] = marshalResult(t, res)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			results := batch.Verify(context.Background(), net, texts, batch.Options{Workers: workers})
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("%s workers=%d %q: %v", net.Name, workers, r.Query, r.Err)
				}
				if got := marshalResult(t, r.Res); !bytes.Equal(got, serial[i]) {
					t.Errorf("%s workers=%d %q: batch result differs from serial\nbatch:  %s\nserial: %s",
						net.Name, workers, r.Query, got, serial[i])
				}
			}
		}
	}
}

// TestDifferentialPaperScale extends the differential harness to one
// paper-scale input: the >250k-rule NORDUnet service configuration behind
// the nordunet-svc-250k ladder rung. Every execution mode that promises
// byte-identity — query-scoped slicing on/off, parallel saturation — must
// serialise identically on a dataplane of this size, where index packing
// and arena reuse actually engage. Two of the six Table 1 queries keep the
// runtime test-suite-friendly; the bench ladder covers the full set.
func TestDifferentialPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale differential in -short mode")
	}
	s := gen.Nordunet(gen.NordOpts{Services: 70, EdgeRouters: 31, Seed: 1})
	if n := s.Net.Routing.NumRules(); n <= 250_000 {
		t.Fatalf("paper-scale network has %d rules, want > 250000", n)
	}
	qs := s.Table1Queries()
	for _, i := range []int{2, 5} {
		text := qs[i].Text
		base, err := engine.VerifyText(s.Net, text, engine.Options{NoSlice: true})
		if err != nil {
			t.Fatalf("%q: unsliced: %v", text, err)
		}
		want := marshalResult(t, base)
		sliced, err := engine.VerifyText(s.Net, text, engine.Options{})
		if err != nil {
			t.Fatalf("%q: sliced: %v", text, err)
		}
		if !sliced.Stats.Slice.Active {
			t.Errorf("%q: default run reports inactive slice", text)
		}
		if got := marshalResult(t, sliced); !bytes.Equal(got, want) {
			t.Errorf("%q: sliced result differs from unsliced at paper scale", text)
		}
		par, err := engine.VerifyText(s.Net, text, engine.Options{SatJ: 4})
		if err != nil {
			t.Fatalf("%q: sat-j=4: %v", text, err)
		}
		if got := marshalResult(t, par); !bytes.Equal(got, want) {
			t.Errorf("%q: sat-j=4 result differs from serial unsliced at paper scale", text)
		}
	}
}
