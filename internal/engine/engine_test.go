package engine_test

import (
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/nfa"
	"aalwines/internal/query"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
	"aalwines/internal/weight"
)

func phi(i int) string {
	switch i {
	case 0:
		return "<ip> [.#v0] .* [v3#.] <ip> 0"
	case 1:
		return "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2"
	case 2:
		return "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"
	case 3:
		return "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"
	case 4:
		return "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1"
	default:
		panic("no such phi")
	}
}

// TestRunningExampleVerdicts reproduces Figure 1d: φ0, φ1, φ2, φ4 are
// satisfied; φ3 (label transparency violation) is not.
func TestRunningExampleVerdicts(t *testing.T) {
	re := gen.RunningExample()
	want := []engine.Verdict{
		engine.Satisfied, engine.Satisfied, engine.Satisfied,
		engine.Unsatisfied, engine.Satisfied,
	}
	for i := 0; i <= 4; i++ {
		res, err := engine.VerifyText(re.Network, phi(i), engine.Options{})
		if err != nil {
			t.Fatalf("phi%d: %v", i, err)
		}
		if res.Verdict != want[i] {
			t.Errorf("phi%d: verdict %v, want %v", i, res.Verdict, want[i])
		}
		if res.Verdict == engine.Satisfied {
			checkWitness(t, re.Network, phi(i), res)
		}
	}
}

// checkWitness validates an engine witness end to end: the trace must be
// feasible under its failure set, valid per the network semantics, and its
// headers/path must match the query regexes.
func checkWitness(t *testing.T, net *network.Network, qtext string, res engine.Result) {
	t.Helper()
	q, err := query.Parse(qtext, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Errorf("%s: satisfied with empty trace", qtext)
		return
	}
	if len(res.Failed) > q.MaxFailures {
		t.Errorf("%s: witness needs %d failures > k=%d", qtext, len(res.Failed), q.MaxFailures)
	}
	if err := net.ValidTrace(res.Trace, res.Failed); err != nil {
		t.Errorf("%s: witness invalid: %v", qtext, err)
	}
	first := res.Trace[0].Header
	last := res.Trace[len(res.Trace)-1].Header
	if !q.PreNFA.Accepts(headerSyms(first)) {
		t.Errorf("%s: initial header %s not in Lang(a)", qtext, first.Format(net.Labels))
	}
	if !q.PostNFA.Accepts(headerSyms(last)) {
		t.Errorf("%s: final header %s not in Lang(c)", qtext, last.Format(net.Labels))
	}
	if !q.PathNFA.Accepts(pathSyms(res.Trace)) {
		t.Errorf("%s: link sequence not in Lang(b)", qtext)
	}
}

func headerSyms(h labels.Header) []nfa.Sym {
	out := make([]nfa.Sym, len(h))
	for i, id := range h {
		out[i] = query.LabelSym(id)
	}
	return out
}

func pathSyms(tr network.Trace) []nfa.Sym {
	out := make([]nfa.Sym, len(tr))
	for i, s := range tr {
		out[i] = query.LinkSym(s.Link)
	}
	return out
}

// TestMinimumWitness reproduces the §3 computation on φ4: minimising
// (Hops, Failures + 3·Tunnels) must produce σ3's weight (5, 0), not σ2's
// (5, 7).
func TestMinimumWitness(t *testing.T) {
	re := gen.RunningExample()
	spec, err := weight.ParseSpec("Hops, Failures + 3*Tunnels")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.VerifyText(re.Network, phi(4), engine.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if !res.Weight.Equal(weight.Vec{5, 0}) {
		t.Fatalf("minimum witness weight = %v, want (5, 0) [σ3]", res.Weight)
	}
	// The witness must be σ3: the service-label path via e1 e5 e6 e7.
	wantLinks := []topology.LinkID{re.Links["e0"], re.Links["e1"], re.Links["e5"], re.Links["e6"], re.Links["e7"]}
	got := res.Trace.Links()
	if len(got) != len(wantLinks) {
		t.Fatalf("witness = %s", res.Trace.Format(re.Network))
	}
	for i := range got {
		if got[i] != wantLinks[i] {
			t.Fatalf("witness = %s, want σ3", res.Trace.Format(re.Network))
		}
	}
}

// TestWeightedFailuresMinimisation: minimising Failures on φ4 must find a
// zero-failure witness (σ3).
func TestWeightedFailuresMinimisation(t *testing.T) {
	re := gen.RunningExample()
	spec := weight.Spec{{{Coeff: 1, Q: weight.Failures}}}
	res, err := engine.VerifyText(re.Network, phi(4), engine.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if !res.Weight.Equal(weight.Vec{0}) {
		t.Fatalf("min Failures = %v, want (0)", res.Weight)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed set = %v, want empty", res.Failed.Sorted())
	}
}

// TestHopsMinimisationPicksShortPath: with Hops minimised, φ0 must return a
// 4-link witness (σ0 or σ1), not anything longer.
func TestHopsMinimisationPicksShortPath(t *testing.T) {
	re := gen.RunningExample()
	spec := weight.Spec{{{Coeff: 1, Q: weight.Hops}}}
	res, err := engine.VerifyText(re.Network, phi(0), engine.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if !res.Weight.Equal(weight.Vec{4}) {
		t.Fatalf("min Hops = %v, want (4)", res.Weight)
	}
}

// TestFailoverRequiresFailureBudget: the backup path s20→e5 exists only
// under a failure of e4; a query forcing the path through v4 with k=0 must
// be unsatisfied, with k=1 satisfied requiring F={e4}.
func TestFailoverRequiresFailureBudget(t *testing.T) {
	re := gen.RunningExample()
	q0 := "<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 0"
	res, err := engine.VerifyText(re.Network, q0, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Unsatisfied {
		t.Fatalf("k=0 verdict = %v, want unsatisfied", res.Verdict)
	}
	q1 := "<ip> [.#v0] .* [v2#v4] .* [v3#.] <ip> 1"
	res, err = engine.VerifyText(re.Network, q1, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatalf("k=1 verdict = %v, want satisfied", res.Verdict)
	}
	if len(res.Failed) != 1 || !res.Failed[re.Links["e4"]] {
		t.Fatalf("failed set = %v, want {e4}", res.Failed.Sorted())
	}
}

// twoHopProtected builds a chain src -> a -> b -> c -> dst where both the
// a→b and b→c hops have primary links plus protected backups via detour
// routers; using both backups in one trace needs two failed links.
func twoHopProtected(t *testing.T) (*network.Network, map[string]topology.LinkID) {
	t.Helper()
	n := network.New("two-hop-protected")
	r := map[string]topology.RouterID{}
	for _, name := range []string{"src", "a", "b", "c", "dst", "da", "db"} {
		r[name] = n.Topo.AddRouter(name)
	}
	l := map[string]topology.LinkID{}
	add := func(name, from, to string) {
		l[name] = n.Topo.MustAddLink(r[from], r[to], "o"+name, "i"+name, 1)
	}
	add("in", "src", "a")
	add("ab", "a", "b")
	add("bc", "b", "c")
	add("out", "c", "dst")
	// Detours: a -> da -> b and b -> db -> c.
	add("a-da", "a", "da")
	add("da-b", "da", "b")
	add("b-db", "b", "db")
	add("db-c", "db", "c")

	lb := map[string]labels.ID{
		"s1": n.Labels.MustIntern("s1", labels.BottomMPLS),
		"s2": n.Labels.MustIntern("s2", labels.BottomMPLS),
		"t":  n.Labels.MustIntern("t", labels.MPLS),
		"ip": n.Labels.MustIntern("ip0", labels.IP),
	}
	rt := n.Routing
	// a: primary via ab (swap s2), backup via detour (swap s2, push t).
	rt.MustAdd(l["in"], lb["s1"], 1, routing.Entry{Out: l["ab"], Ops: routing.Ops{routing.Swap(lb["s2"])}})
	rt.MustAdd(l["in"], lb["s1"], 2, routing.Entry{Out: l["a-da"], Ops: routing.Ops{routing.Swap(lb["s2"]), routing.Push(lb["t"])}})
	rt.MustAdd(l["a-da"], lb["t"], 1, routing.Entry{Out: l["da-b"], Ops: routing.Ops{routing.Pop()}})
	// b: primary via bc, backup via db.
	rt.MustAdd(l["ab"], lb["s2"], 1, routing.Entry{Out: l["bc"], Ops: nil})
	rt.MustAdd(l["ab"], lb["s2"], 2, routing.Entry{Out: l["b-db"], Ops: routing.Ops{routing.Push(lb["t"])}})
	rt.MustAdd(l["da-b"], lb["s2"], 1, routing.Entry{Out: l["bc"], Ops: nil})
	rt.MustAdd(l["da-b"], lb["s2"], 2, routing.Entry{Out: l["b-db"], Ops: routing.Ops{routing.Push(lb["t"])}})
	rt.MustAdd(l["b-db"], lb["t"], 1, routing.Entry{Out: l["db-c"], Ops: routing.Ops{routing.Pop()}})
	// c: pop and leave.
	rt.MustAdd(l["bc"], lb["s2"], 1, routing.Entry{Out: l["out"], Ops: routing.Ops{routing.Pop()}})
	rt.MustAdd(l["db-c"], lb["s2"], 1, routing.Entry{Out: l["out"], Ops: routing.Ops{routing.Pop()}})
	return n, l
}

// TestUnderApproxRescuesWitness: force the trace through the first detour
// (da). The over-approximation may propose a witness also using the second
// detour; only F={ab} is actually needed when the rest of the path uses
// primaries. With k=1 a witness through da exists (fail ab only); verify
// the engine finds it.
func TestUnderApproxRescuesWitness(t *testing.T) {
	n, l := twoHopProtected(t)
	res, err := engine.VerifyText(n, "<s1 ip> [.#a] [a#da] .* [c#.] <ip> 1", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatalf("verdict = %v, want satisfied", res.Verdict)
	}
	if len(res.Failed) != 1 || !res.Failed[l["ab"]] {
		t.Fatalf("failed = %v, want {ab}", res.Failed.Sorted())
	}
}

// TestDoubleFailureNeedsBudgetTwo: a query forcing both detours needs two
// failed links: unsatisfiable-or-inconclusive at k=1, satisfied at k=2.
func TestDoubleFailureNeedsBudgetTwo(t *testing.T) {
	n, _ := twoHopProtected(t)
	q1 := "<s1 ip> [.#a] [a#da] .* [b#db] .* [c#.] <ip> 1"
	res, err := engine.VerifyText(n, q1, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == engine.Satisfied {
		t.Fatalf("k=1 verdict = %v; both detours need 2 failures", res.Verdict)
	}
	q2 := "<s1 ip> [.#a] [a#da] .* [b#db] .* [c#.] <ip> 2"
	res, err = engine.VerifyText(n, q2, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatalf("k=2 verdict = %v, want satisfied", res.Verdict)
	}
	if len(res.Failed) != 2 {
		t.Fatalf("failed = %v, want 2 links", res.Failed.Sorted())
	}
}

// TestNoReductionsSameVerdicts: the reduction pass must not change answers.
func TestNoReductionsSameVerdicts(t *testing.T) {
	re := gen.RunningExample()
	for i := 0; i <= 4; i++ {
		a, err := engine.VerifyText(re.Network, phi(i), engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := engine.VerifyText(re.Network, phi(i), engine.Options{NoReductions: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Verdict != b.Verdict {
			t.Errorf("phi%d: reduced=%v unreduced=%v", i, a.Verdict, b.Verdict)
		}
	}
}

// TestBudgetExhaustion: a tiny budget must surface ErrBudget.
func TestBudgetExhaustion(t *testing.T) {
	re := gen.RunningExample()
	_, err := engine.VerifyText(re.Network, phi(0), engine.Options{Budget: 1})
	if err == nil {
		t.Fatal("expected budget error")
	}
}

// TestBruteForceAgreement cross-checks the engine against exhaustive
// enumeration of traces and failure sets on the running example.
func TestBruteForceAgreement(t *testing.T) {
	re := gen.RunningExample()
	queries := []string{
		phi(0), phi(1), phi(2), phi(3), phi(4),
		"<ip> [.#v0] .* [v3#.] <ip> 1",
		"<s40 ip> [.#v0] .* <smpls ip> 0",
		"<ip> [.#v1] .* [v3#.] <ip> 0",     // wrong entry point for ip
		"<s40 ip> [.#v0] [v0#v1] .* <.> 1", // s40 only routed via e1
		"<ip> [.#v0] . . <ip> 0",           // too short to reach v3's pop
	}
	for _, qt := range queries {
		q, err := query.Parse(qt, re.Network)
		if err != nil {
			t.Fatalf("%s: %v", qt, err)
		}
		want := bruteForceSatisfiable(re.Network, q)
		res, err := engine.Verify(re.Network, q, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", qt, err)
		}
		switch res.Verdict {
		case engine.Satisfied:
			if !want {
				t.Errorf("%s: engine satisfied, brute force says no", qt)
			}
			checkWitness(t, re.Network, qt, res)
		case engine.Unsatisfied:
			if want {
				t.Errorf("%s: engine unsatisfied, brute force found a witness", qt)
			}
		case engine.Inconclusive:
			// Approximation may be inconclusive; never wrong, but flag it
			// so we notice if it happens on this small example.
			t.Logf("%s: inconclusive (brute force: %v)", qt, want)
		}
	}
}

// bruteForceSatisfiable enumerates failure sets |F| ≤ k and traces up to a
// length bound, checking the query regexes directly.
func bruteForceSatisfiable(net *network.Network, q *query.Query) bool {
	links := net.Topo.NumLinks()
	var subsets [][]topology.LinkID
	subsets = append(subsets, nil)
	if q.MaxFailures >= 1 {
		for i := 0; i < links; i++ {
			subsets = append(subsets, []topology.LinkID{topology.LinkID(i)})
		}
	}
	if q.MaxFailures >= 2 {
		for i := 0; i < links; i++ {
			for j := i + 1; j < links; j++ {
				subsets = append(subsets, []topology.LinkID{topology.LinkID(i), topology.LinkID(j)})
			}
		}
	}
	// Candidate initial headers: IP labels alone plus one smpls over IP —
	// the running example's Lang(a) shapes.
	var headers []labels.Header
	for _, ip := range net.Labels.OfKind(labels.IP) {
		headers = append(headers, labels.Header{ip})
		for _, s := range net.Labels.OfKind(labels.BottomMPLS) {
			headers = append(headers, labels.Header{s, ip})
		}
	}
	found := false
	for _, sub := range subsets {
		f := network.FailedSet{}
		for _, l := range sub {
			f[l] = true
		}
		for e := 0; e < links; e++ {
			if f[topology.LinkID(e)] {
				continue
			}
			for _, h := range headers {
				if !q.PreNFA.Accepts(headerSyms(h)) {
					continue
				}
				net.Enumerate(topology.LinkID(e), h, f, 7, func(tr network.Trace) bool {
					if q.PathNFA.Accepts(pathSyms(tr)) &&
						q.PostNFA.Accepts(headerSyms(tr[len(tr)-1].Header)) {
						found = true
						return false
					}
					return true
				})
				if found {
					return true
				}
			}
		}
	}
	return false
}

// TestWeightedGuidedSearchAvoidsUnder reproduces the §5 observation that
// the weighted engine's guided search (minimising Failures) finds feasible
// witnesses directly, where the unweighted search proposes an infeasible
// over-approximate witness and must fall back to the under-approximation.
// The query asks for a depth-4 label stack (a bypass tunnel around the
// service tunnel), reachable with one failure.
func TestWeightedGuidedSearchAvoidsUnder(t *testing.T) {
	s := gen.Nordunet(gen.NordOpts{Services: 1, EdgeRouters: 10, Seed: 1})
	q := "<smpls ip> .* <mpls mpls smpls ip> 1"

	unweighted, err := engine.VerifyText(s.Net, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := weight.Spec{{{Coeff: 1, Q: weight.Failures}}}
	weighted, err := engine.VerifyText(s.Net, q, engine.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if unweighted.Verdict != engine.Satisfied || weighted.Verdict != engine.Satisfied {
		t.Fatalf("verdicts: unweighted=%v weighted=%v, want satisfied",
			unweighted.Verdict, weighted.Verdict)
	}
	if !weighted.Weight.Equal(weight.Vec{1}) {
		t.Errorf("weighted min failures = %v, want (1)", weighted.Weight)
	}
	if weighted.Stats.UnderUsed {
		t.Error("weighted engine needed the under-approximation despite guided search")
	}
	// The unweighted engine is allowed to need the fallback here (that is
	// the phenomenon); if it ever stops needing it, the OverOnly ablation
	// below still pins the behaviour difference.
	overOnly, err := engine.VerifyText(s.Net, q, engine.Options{OverOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if unweighted.Stats.UnderUsed && overOnly.Verdict != engine.Inconclusive {
		t.Errorf("over-only verdict = %v, want inconclusive when dual needed the fallback", overOnly.Verdict)
	}
}

// TestStatsPopulatedOnUnderRun pins the Stats accounting on a run known to
// consult the under-approximation (same setup as the guided-search test):
// every phase that ran must report a non-zero timing and size, including
// the under-side reconstruction that older code left untimed.
func TestStatsPopulatedOnUnderRun(t *testing.T) {
	s := gen.Nordunet(gen.NordOpts{Services: 1, EdgeRouters: 10, Seed: 1})
	res, err := engine.VerifyText(s.Net, "<smpls ip> .* <mpls mpls smpls ip> 1", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.BuildTime <= 0 || st.OverTime <= 0 || st.ReconstructTime <= 0 {
		t.Errorf("over-side timings not populated: %+v", st)
	}
	if st.OverRules == 0 || st.TransOver == 0 {
		t.Errorf("over-side sizes not populated: %+v", st)
	}
	if !st.UnderUsed {
		t.Skip("unweighted run no longer needs the under-approximation; phenomenon gone")
	}
	if st.UnderTime <= 0 {
		t.Errorf("UnderTime = %v on a run that used the under engine", st.UnderTime)
	}
	if st.UnderRules == 0 || st.TransUnder == 0 {
		t.Errorf("under-side sizes not populated: %+v", st)
	}
}
