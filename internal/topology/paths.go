package topology

import "container/heap"

const unreachable = ^uint64(0)

// PathTree is the result of a single-source shortest path computation.
type PathTree struct {
	source RouterID
	dist   []uint64
	via    []LinkID   // incoming link on the shortest path; NoLink at source/unreachable
	from   []RouterID // link ID -> source router, so the tree can be walked without the graph
}

// Dist returns the distance from the source to r; unreachable routers
// report ^uint64(0).
func (p *PathTree) Dist(r RouterID) uint64 { return p.dist[r] }

// Reachable reports whether r is reachable from the source.
func (p *PathTree) Reachable(r RouterID) bool { return p.dist[r] != unreachable }

// To returns the link sequence from the source to r, or nil if r is the
// source itself or unreachable.
func (p *PathTree) To(r RouterID) []LinkID {
	if r == p.source || !p.Reachable(r) {
		return nil
	}
	var rev []LinkID
	cur := r
	for cur != p.source {
		l := p.via[cur]
		if l == NoLink {
			return nil
		}
		rev = append(rev, l)
		cur = p.from[l]
	}
	out := make([]LinkID, len(rev))
	for i, l := range rev {
		out[len(rev)-1-i] = l
	}
	return out
}

// ShortestPath computes a minimum-weight directed path from router a to
// router b using Dijkstra's algorithm over link weights (weight 0 counts as
// weight 1 so hop counts break ties sensibly). It returns the sequence of
// link IDs, or nil if b is unreachable from a. Self-loops are never used.
func (g *Graph) ShortestPath(a, b RouterID) []LinkID {
	return g.ShortestPathsFrom(a).To(b)
}

// ShortestPathsFrom computes shortest paths from a to every router.
func (g *Graph) ShortestPathsFrom(a RouterID) *PathTree {
	n := len(g.Routers)
	p := &PathTree{
		source: a,
		dist:   make([]uint64, n),
		via:    make([]LinkID, n),
		from:   make([]RouterID, len(g.Links)),
	}
	for i := range p.dist {
		p.dist[i] = unreachable
		p.via[i] = NoLink
	}
	for i := range g.Links {
		p.from[i] = g.Links[i].From
	}
	p.dist[a] = 0
	pq := &distHeap{{a, 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > p.dist[item.r] {
			continue
		}
		for _, lid := range g.Routers[item.r].out {
			l := &g.Links[lid]
			if l.SelfLoop() {
				continue
			}
			w := l.Weight
			if w == 0 {
				w = 1
			}
			nd := item.d + w
			if nd < p.dist[l.To] {
				p.dist[l.To] = nd
				p.via[l.To] = lid
				heap.Push(pq, distItem{l.To, nd})
			}
		}
	}
	return p
}

type distItem struct {
	r RouterID
	d uint64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
