// Package topology implements the network topology model of the AalWiNes
// paper (Definition 1): a directed multigraph whose nodes are routers and
// whose edges are unidirectional links, each attached to a named interface
// on its source and target router.
//
// Links are directed because the paper assumes asymmetric link failures
// (e.g. congestion in one direction only); a bidirectional physical link is
// modelled as two directed links.
package topology

import (
	"fmt"
	"sort"
)

// RouterID identifies a router; it is a dense index into Graph.Routers.
type RouterID int32

// LinkID identifies a directed link; it is a dense index into Graph.Links.
type LinkID int32

// NoRouter and NoLink are sentinel identifiers.
const (
	NoRouter RouterID = -1
	NoLink   LinkID   = -1
)

// Router is a node of the topology. Interfaces list the names of the
// router's interfaces; each link endpoint references one of them.
type Router struct {
	ID   RouterID
	Name string
	// Lat and Lng are optional coordinates used for distance computation
	// and visualisation (Appendix A.2). They are zero when unknown.
	Lat, Lng float64
	// HasLoc reports whether Lat/Lng carry real data.
	HasLoc bool
	// out and in hold the adjacent link IDs.
	out, in []LinkID
}

// Out returns the identifiers of links leaving the router.
func (r *Router) Out() []LinkID { return r.out }

// In returns the identifiers of links entering the router.
func (r *Router) In() []LinkID { return r.in }

// Link is a directed edge of the multigraph. FromIfc/ToIfc name the
// interface on the source/target router; they may be empty for generated
// networks that do not model interfaces explicitly.
type Link struct {
	ID      LinkID
	From    RouterID
	To      RouterID
	FromIfc string
	ToIfc   string
	// Weight is an optional distance annotation (latency, geographic
	// distance, inverse capacity ...) used by the Distance atomic quantity
	// when no explicit distance function is supplied.
	Weight uint64
}

// SelfLoop reports whether the link starts and ends at the same router.
// Self-loops exist in real dataplanes (intra-router logical links) and are
// excluded from the Hops quantity.
func (l *Link) SelfLoop() bool { return l.From == l.To }

// Graph is a directed multigraph of routers and links. The zero value is an
// empty graph ready for use. Graphs are built once and then treated as
// immutable; concurrent readers are safe after construction.
type Graph struct {
	Routers []Router
	Links   []Link

	routerByName map[string]RouterID
	// ifcOut maps (router, interface name) to the link leaving through that
	// interface, ifcIn to the link arriving at it.
	ifcOut map[ifcKey]LinkID
	ifcIn  map[ifcKey]LinkID
}

type ifcKey struct {
	r    RouterID
	name string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		routerByName: make(map[string]RouterID),
		ifcOut:       make(map[ifcKey]LinkID),
		ifcIn:        make(map[ifcKey]LinkID),
	}
}

// AddRouter adds a router with the given name and returns its ID. Adding a
// name twice returns the existing router.
func (g *Graph) AddRouter(name string) RouterID {
	if g.routerByName == nil {
		g.routerByName = make(map[string]RouterID)
		g.ifcOut = make(map[ifcKey]LinkID)
		g.ifcIn = make(map[ifcKey]LinkID)
	}
	if id, ok := g.routerByName[name]; ok {
		return id
	}
	id := RouterID(len(g.Routers))
	g.Routers = append(g.Routers, Router{ID: id, Name: name})
	g.routerByName[name] = id
	return id
}

// SetLocation records coordinates for a router.
func (g *Graph) SetLocation(r RouterID, lat, lng float64) {
	g.Routers[r].Lat = lat
	g.Routers[r].Lng = lng
	g.Routers[r].HasLoc = true
}

// AddLink adds a directed link from one router to another through the named
// interfaces (which may be empty) and returns its ID. Multiple parallel
// links between the same pair of routers are permitted (multigraph), but a
// non-empty interface name must identify at most one link per direction.
func (g *Graph) AddLink(from, to RouterID, fromIfc, toIfc string, weight uint64) (LinkID, error) {
	if int(from) >= len(g.Routers) || int(to) >= len(g.Routers) || from < 0 || to < 0 {
		return NoLink, fmt.Errorf("topology: AddLink with unknown router (%d -> %d)", from, to)
	}
	id := LinkID(len(g.Links))
	if fromIfc != "" {
		k := ifcKey{from, fromIfc}
		if prev, ok := g.ifcOut[k]; ok {
			return NoLink, fmt.Errorf("topology: interface %s.%s already used by outgoing link %d",
				g.Routers[from].Name, fromIfc, prev)
		}
		g.ifcOut[k] = id
	}
	if toIfc != "" {
		k := ifcKey{to, toIfc}
		if prev, ok := g.ifcIn[k]; ok {
			return NoLink, fmt.Errorf("topology: interface %s.%s already used by incoming link %d",
				g.Routers[to].Name, toIfc, prev)
		}
		g.ifcIn[k] = id
	}
	g.Links = append(g.Links, Link{ID: id, From: from, To: to, FromIfc: fromIfc, ToIfc: toIfc, Weight: weight})
	g.Routers[from].out = append(g.Routers[from].out, id)
	g.Routers[to].in = append(g.Routers[to].in, id)
	return id, nil
}

// MustAddLink is AddLink that panics on error; for generators and tests.
func (g *Graph) MustAddLink(from, to RouterID, fromIfc, toIfc string, weight uint64) LinkID {
	id, err := g.AddLink(from, to, fromIfc, toIfc, weight)
	if err != nil {
		panic(err)
	}
	return id
}

// RouterByName returns the router ID for a name, or NoRouter.
func (g *Graph) RouterByName(name string) RouterID {
	if id, ok := g.routerByName[name]; ok {
		return id
	}
	return NoRouter
}

// LinkOut returns the link leaving router r through the named interface, or
// NoLink if the interface is unknown.
func (g *Graph) LinkOut(r RouterID, ifc string) LinkID {
	if id, ok := g.ifcOut[ifcKey{r, ifc}]; ok {
		return id
	}
	return NoLink
}

// LinkIn returns the link arriving at router r through the named interface,
// or NoLink.
func (g *Graph) LinkIn(r RouterID, ifc string) LinkID {
	if id, ok := g.ifcIn[ifcKey{r, ifc}]; ok {
		return id
	}
	return NoLink
}

// LinksBetween returns all link IDs from router a to router b, in ID order.
func (g *Graph) LinksBetween(a, b RouterID) []LinkID {
	var out []LinkID
	for _, id := range g.Routers[a].out {
		if g.Links[id].To == b {
			out = append(out, id)
		}
	}
	return out
}

// NumRouters returns the number of routers.
func (g *Graph) NumRouters() int { return len(g.Routers) }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.Links) }

// Source returns the source router of a link (the function s of Def. 1).
func (g *Graph) Source(l LinkID) RouterID { return g.Links[l].From }

// Target returns the target router of a link (the function t of Def. 1).
func (g *Graph) Target(l LinkID) RouterID { return g.Links[l].To }

// LinkName renders a link as "A.ifc1#B.ifc2" (or "A#B" when interfaces are
// unnamed), matching the query language's link syntax.
func (g *Graph) LinkName(l LinkID) string {
	lk := g.Links[l]
	from := g.Routers[lk.From].Name
	to := g.Routers[lk.To].Name
	if lk.FromIfc != "" || lk.ToIfc != "" {
		return fmt.Sprintf("%s.%s#%s.%s", from, lk.FromIfc, to, lk.ToIfc)
	}
	return fmt.Sprintf("%s#%s", from, to)
}

// RouterNames returns all router names in sorted order.
func (g *Graph) RouterNames() []string {
	names := make([]string, len(g.Routers))
	for i, r := range g.Routers {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}
