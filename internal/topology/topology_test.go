package topology

import (
	"testing"
)

// diamond builds a 4-router diamond: a -> b -> d, a -> c -> d, plus a
// parallel second link a -> b and a self-loop on d.
func diamond(t *testing.T) (*Graph, RouterID, RouterID, RouterID, RouterID) {
	t.Helper()
	g := New()
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	c := g.AddRouter("c")
	d := g.AddRouter("d")
	g.MustAddLink(a, b, "eth0", "eth0", 1)
	g.MustAddLink(a, b, "eth1", "eth1", 5) // parallel
	g.MustAddLink(a, c, "eth2", "eth0", 1)
	g.MustAddLink(b, d, "eth2", "eth0", 1)
	g.MustAddLink(c, d, "eth1", "eth1", 10)
	g.MustAddLink(d, d, "lo", "lo", 0) // self loop
	return g, a, b, c, d
}

func TestAddRouterIdempotent(t *testing.T) {
	g := New()
	a := g.AddRouter("r1")
	b := g.AddRouter("r1")
	if a != b {
		t.Fatalf("duplicate AddRouter returned different IDs: %d vs %d", a, b)
	}
	if g.NumRouters() != 1 {
		t.Fatalf("NumRouters = %d, want 1", g.NumRouters())
	}
}

func TestMultigraphParallelLinks(t *testing.T) {
	g, a, b, _, _ := diamond(t)
	links := g.LinksBetween(a, b)
	if len(links) != 2 {
		t.Fatalf("LinksBetween(a,b) = %d links, want 2", len(links))
	}
}

func TestInterfaceLookup(t *testing.T) {
	g, a, b, _, _ := diamond(t)
	l := g.LinkOut(a, "eth0")
	if l == NoLink {
		t.Fatal("LinkOut(a, eth0) = NoLink")
	}
	if g.Target(l) != b {
		t.Fatalf("link target = %d, want %d", g.Target(l), b)
	}
	if got := g.LinkIn(b, "eth0"); got != l {
		t.Fatalf("LinkIn(b, eth0) = %d, want %d", got, l)
	}
	if got := g.LinkOut(a, "missing"); got != NoLink {
		t.Fatalf("LinkOut of unknown interface = %d, want NoLink", got)
	}
}

func TestDuplicateInterfaceRejected(t *testing.T) {
	g := New()
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	g.MustAddLink(a, b, "e0", "e0", 1)
	if _, err := g.AddLink(a, b, "e0", "e9", 1); err == nil {
		t.Fatal("expected error on duplicate outgoing interface")
	}
	if _, err := g.AddLink(a, b, "e9", "e0", 1); err == nil {
		t.Fatal("expected error on duplicate incoming interface")
	}
}

func TestAddLinkUnknownRouter(t *testing.T) {
	g := New()
	a := g.AddRouter("a")
	if _, err := g.AddLink(a, RouterID(7), "", "", 1); err == nil {
		t.Fatal("expected error for unknown target router")
	}
}

func TestSelfLoop(t *testing.T) {
	g, _, _, _, d := diamond(t)
	loops := g.LinksBetween(d, d)
	if len(loops) != 1 || !g.Links[loops[0]].SelfLoop() {
		t.Fatalf("expected a self-loop on d, got %v", loops)
	}
}

func TestAdjacency(t *testing.T) {
	g, a, _, _, d := diamond(t)
	if got := len(g.Routers[a].Out()); got != 3 {
		t.Errorf("out-degree(a) = %d, want 3", got)
	}
	if got := len(g.Routers[d].In()); got != 3 { // b->d, c->d, d->d
		t.Errorf("in-degree(d) = %d, want 3", got)
	}
}

func TestShortestPathPrefersLowWeight(t *testing.T) {
	g, a, _, _, d := diamond(t)
	path := g.ShortestPath(a, d)
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	// Cheapest is a->b (w1) then b->d (w1), total 2; via c costs 11.
	if g.Links[path[0]].FromIfc != "eth0" {
		t.Errorf("first hop uses %s, want eth0 (the weight-1 parallel link)", g.Links[path[0]].FromIfc)
	}
	if g.Target(path[1]) != d {
		t.Errorf("path does not end at d")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	// b -> a only; a cannot reach b.
	g.MustAddLink(b, a, "", "", 1)
	if path := g.ShortestPath(a, b); path != nil {
		t.Fatalf("expected nil path, got %v", path)
	}
	pt := g.ShortestPathsFrom(a)
	if pt.Reachable(b) {
		t.Fatal("b reported reachable")
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g, a, _, _, _ := diamond(t)
	if path := g.ShortestPath(a, a); path != nil {
		t.Fatalf("path to self = %v, want nil", path)
	}
	if d := g.ShortestPathsFrom(a).Dist(a); d != 0 {
		t.Fatalf("Dist(a,a) = %d, want 0", d)
	}
}

func TestShortestPathIgnoresSelfLoops(t *testing.T) {
	g, a, _, _, d := diamond(t)
	for _, l := range g.ShortestPath(a, d) {
		if g.Links[l].SelfLoop() {
			t.Fatal("shortest path uses a self-loop")
		}
	}
}

func TestLinkName(t *testing.T) {
	g, a, b, _, _ := diamond(t)
	l := g.LinksBetween(a, b)[0]
	if got := g.LinkName(l); got != "a.eth0#b.eth0" {
		t.Errorf("LinkName = %q", got)
	}
	g2 := New()
	x := g2.AddRouter("x")
	y := g2.AddRouter("y")
	l2 := g2.MustAddLink(x, y, "", "", 0)
	if got := g2.LinkName(l2); got != "x#y" {
		t.Errorf("LinkName (no ifc) = %q", got)
	}
}

func TestRouterNamesSorted(t *testing.T) {
	g := New()
	g.AddRouter("zeta")
	g.AddRouter("alpha")
	names := g.RouterNames()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("RouterNames = %v, want sorted", names)
	}
}

func TestSetLocation(t *testing.T) {
	g := New()
	a := g.AddRouter("a")
	g.SetLocation(a, 46.5, 7.3)
	r := g.Routers[a]
	if !r.HasLoc || r.Lat != 46.5 || r.Lng != 7.3 {
		t.Errorf("location not recorded: %+v", r)
	}
}

func TestDistMonotoneAlongTree(t *testing.T) {
	g, a, _, _, _ := diamond(t)
	pt := g.ShortestPathsFrom(a)
	for r := range g.Routers {
		path := pt.To(RouterID(r))
		var sum uint64
		for _, l := range path {
			w := g.Links[l].Weight
			if w == 0 {
				w = 1
			}
			sum += w
		}
		if path != nil && sum != pt.Dist(RouterID(r)) {
			t.Errorf("router %d: path weight %d != Dist %d", r, sum, pt.Dist(RouterID(r)))
		}
	}
}
