// Package nfa implements nondeterministic and deterministic finite automata
// over a finite symbol universe, with transitions labelled by symbol *sets*
// rather than single symbols. This keeps query automata small even when the
// label or link universe is large (the NORDUnet snapshot has hundreds of
// thousands of labels): an atom like the query abbreviation "smpls" is one
// transition carrying the set of all bottom-of-stack labels.
//
// The package provides Thompson-style construction, epsilon elimination,
// subset construction via minterm partitioning, completion, complementation
// and product intersection — everything the query compiler (internal/query)
// and the pushdown translation (internal/translate) need.
package nfa

import (
	"fmt"
	"math/bits"
	"strings"
)

// Sym is a symbol of the universe: a dense identifier such as a label ID or
// a link ID, in the range [0, universe).
type Sym = uint32

// Set is a fixed-universe bitset of symbols.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty set over a universe of n symbols.
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// FullSet returns the set containing every symbol of the universe.
func FullSet(n int) *Set {
	s := NewSet(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// SetOf returns the set containing exactly the given symbols.
func SetOf(n int, syms ...Sym) *Set {
	s := NewSet(n)
	for _, x := range syms {
		s.Add(x)
	}
	return s
}

func (s *Set) trim() {
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Universe returns the universe size the set was created with.
func (s *Set) Universe() int { return s.n }

// Add inserts a symbol; out-of-range symbols panic (a programming error).
func (s *Set) Add(x Sym) {
	if int(x) >= s.n {
		panic(fmt.Sprintf("nfa: symbol %d outside universe %d", x, s.n))
	}
	s.words[x/64] |= 1 << (x % 64)
}

// Has reports membership.
func (s *Set) Has(x Sym) bool {
	if int(x) >= s.n {
		return false
	}
	return s.words[x/64]&(1<<(x%64)) != 0
}

// IsEmpty reports whether the set has no members.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s *Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// Union returns s ∪ o as a new set.
func (s *Set) Union(o *Set) *Set {
	out := s.Clone()
	for i, w := range o.words {
		out.words[i] |= w
	}
	return out
}

// Inter returns s ∩ o as a new set.
func (s *Set) Inter(o *Set) *Set {
	out := s.Clone()
	for i, w := range o.words {
		out.words[i] &= w
	}
	return out
}

// Intersects reports whether s ∩ o is non-empty without allocating the
// intersection; hot in the saturation early-accept check.
func (s *Set) Intersects(o *Set) bool {
	w := s.words
	if len(o.words) < len(w) {
		w = w[:len(o.words)]
	}
	for i := range w {
		if w[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Minus returns s \ o as a new set.
func (s *Set) Minus(o *Set) *Set {
	out := s.Clone()
	for i, w := range o.words {
		out.words[i] &^= w
	}
	return out
}

// Complement returns the universe minus s as a new set.
func (s *Set) Complement() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n}
	for i, w := range s.words {
		out.words[i] = ^w
	}
	out.trim()
	return out
}

// Equal reports whether two sets over the same universe are equal.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Key returns a map key uniquely identifying the set's contents.
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> (8 * i)))
		}
	}
	return b.String()
}

// Each calls f for every member in ascending order; f returning false stops
// the iteration.
func (s *Set) Each(f func(Sym) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(Sym(wi*64 + b)) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns all members in ascending order.
func (s *Set) Members() []Sym {
	out := make([]Sym, 0, s.Len())
	s.Each(func(x Sym) bool { out = append(out, x); return true })
	return out
}

// First returns the smallest member; ok is false when the set is empty.
func (s *Set) First() (Sym, bool) {
	for wi, w := range s.words {
		if w != 0 {
			return Sym(wi*64 + bits.TrailingZeros64(w)), true
		}
	}
	return 0, false
}
