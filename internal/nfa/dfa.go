package nfa

import (
	"sort"
	"strconv"
	"strings"
)

// Minterms computes the atomic partition of the universe induced by the
// distinct arc sets of the automaton: the coarsest partition such that each
// arc set is a union of blocks. Subset construction can then treat every
// block as a single alphabet symbol. The result always covers the whole
// universe (symbols mentioned by no arc end up in a "rest" block).
func (a *NFA) Minterms() []*Set {
	blocks := []*Set{FullSet(a.universe)}
	seen := map[string]bool{}
	for s := range a.arcs {
		for _, arc := range a.arcs[s] {
			k := arc.Set.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			var next []*Set
			for _, b := range blocks {
				in := b.Inter(arc.Set)
				out := b.Minus(arc.Set)
				if !in.IsEmpty() {
					next = append(next, in)
				}
				if !out.IsEmpty() {
					next = append(next, out)
				}
			}
			blocks = next
		}
	}
	return blocks
}

// Determinize performs subset construction over the minterm alphabet and
// returns a complete deterministic automaton (every state has exactly one
// successor per minterm; a non-accepting sink absorbs missing transitions).
// The result has no epsilon transitions and deterministic, disjoint arc
// sets per state.
func (a *NFA) Determinize() *NFA {
	minterms := a.Minterms()
	out := New(a.universe)
	// out's state 0 is the DFA start.
	type key = string
	idx := map[key]State{}
	mkKey := func(states []State) key {
		parts := make([]string, len(states))
		for i, s := range states {
			parts[i] = strconv.Itoa(s)
		}
		return strings.Join(parts, ",")
	}
	startSet := a.EpsClosure(a.start)
	idx[mkKey(startSet)] = out.Start()
	setAccept := func(d State, states []State) {
		for _, s := range states {
			if a.accept[s] {
				out.SetAccept(d, true)
				return
			}
		}
	}
	setAccept(out.Start(), startSet)
	type item struct {
		d      State
		states []State
	}
	queue := []item{{out.Start(), startSet}}
	sink := State(-1)
	getSink := func() State {
		if sink < 0 {
			sink = out.AddState()
			for _, mt := range minterms {
				out.AddArc(sink, mt, sink)
			}
		}
		return sink
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, mt := range minterms {
			// All symbols of a minterm behave identically; step on any one.
			x, ok := mt.First()
			var succ []State
			if ok {
				succ = a.Step(cur.states, x)
			}
			if len(succ) == 0 {
				out.AddArc(cur.d, mt, getSink())
				continue
			}
			k := mkKey(succ)
			d, ok2 := idx[k]
			if !ok2 {
				d = out.AddState()
				idx[k] = d
				setAccept(d, succ)
				queue = append(queue, item{d, succ})
			}
			out.AddArc(cur.d, mt, d)
		}
	}
	if a.universe == 0 {
		// Degenerate: no symbols at all; acceptance is decided by the start.
		return out
	}
	return out
}

// Complement returns an automaton accepting exactly the words the receiver
// rejects. The receiver may be any NFA; it is determinized first.
func (a *NFA) Complement() *NFA {
	d := a.Determinize()
	for s := range d.accept {
		d.accept[s] = !d.accept[s]
	}
	return d
}

// Product returns an automaton for the intersection of two languages over
// the same universe, built as the synchronous product of the epsilon-free
// forms.
func Product(a, b *NFA) *NFA {
	af, bf := a.EpsFree(), b.EpsFree()
	out := New(a.universe)
	type pair struct{ x, y State }
	idx := map[pair]State{}
	get := func(p pair) State {
		if s, ok := idx[p]; ok {
			return s
		}
		var s State
		if len(idx) == 0 {
			s = out.Start()
		} else {
			s = out.AddState()
		}
		idx[p] = s
		out.SetAccept(s, af.Accepting(p.x) && bf.Accepting(p.y))
		return s
	}
	startP := pair{af.Start(), bf.Start()}
	get(startP)
	queue := []pair{startP}
	done := map[pair]bool{startP: true}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		ps := idx[p]
		for _, ax := range af.Arcs(p.x) {
			for _, bx := range bf.Arcs(p.y) {
				inter := ax.Set.Inter(bx.Set)
				if inter.IsEmpty() {
					continue
				}
				np := pair{ax.To, bx.To}
				ns := get(np)
				out.AddArc(ps, inter, ns)
				if !done[np] {
					done[np] = true
					queue = append(queue, np)
				}
			}
		}
	}
	return out
}

// SortedArcs returns the arcs of s ordered by target then set key; useful
// for deterministic output in tests and serialisation.
func (a *NFA) SortedArcs(s State) []Arc {
	arcs := append([]Arc(nil), a.arcs[s]...)
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].To != arcs[j].To {
			return arcs[i].To < arcs[j].To
		}
		return arcs[i].Set.Key() < arcs[j].Set.Key()
	})
	return arcs
}
