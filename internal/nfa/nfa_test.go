package nfa

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(130)
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Len() != 3 || !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatalf("membership broken: %v", s.Members())
	}
	if s.Has(1000) {
		t.Fatal("Has out of range returned true")
	}
}

func TestSetAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSet(4).Add(4)
}

func TestSetOps(t *testing.T) {
	a := SetOf(100, 1, 2, 3)
	b := SetOf(100, 3, 4)
	if got := a.Union(b).Members(); len(got) != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Inter(b).Members(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Inter = %v", got)
	}
	if got := a.Minus(b).Members(); len(got) != 2 {
		t.Errorf("Minus = %v", got)
	}
	c := a.Complement()
	if c.Has(1) || !c.Has(0) || !c.Has(99) || c.Len() != 97 {
		t.Errorf("Complement wrong: len=%d", c.Len())
	}
}

func TestFullSetTrimmed(t *testing.T) {
	f := FullSet(70)
	if f.Len() != 70 {
		t.Fatalf("FullSet(70).Len = %d", f.Len())
	}
	if f.Has(70) || f.Has(127) {
		t.Fatal("FullSet contains out-of-universe symbols")
	}
	// Complement of full is empty even in the partial last word.
	if !f.Complement().IsEmpty() {
		t.Fatal("Complement(Full) not empty")
	}
}

// Property: set algebra laws via random membership vectors.
func TestSetAlgebraProperty(t *testing.T) {
	const n = 80
	mk := func(xs []uint16) *Set {
		s := NewSet(n)
		for _, x := range xs {
			s.Add(Sym(x) % n)
		}
		return s
	}
	f := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		// De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b
		if !a.Union(b).Complement().Equal(a.Complement().Inter(b.Complement())) {
			return false
		}
		// a \ b == a ∩ ¬b
		if !a.Minus(b).Equal(a.Inter(b.Complement())) {
			return false
		}
		// Double complement
		if !a.Complement().Complement().Equal(a) {
			return false
		}
		// Key equality coincides with Equal
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetEachEarlyStopAndFirst(t *testing.T) {
	s := SetOf(100, 5, 10, 15)
	count := 0
	s.Each(func(Sym) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("Each visited %d, want 2", count)
	}
	if x, ok := s.First(); !ok || x != 5 {
		t.Fatalf("First = %d,%v", x, ok)
	}
	if _, ok := NewSet(10).First(); ok {
		t.Fatal("First on empty reported ok")
	}
}

// buildAB returns an NFA over universe {0,1} accepting the language a*b
// (0=a, 1=b).
func buildAB() *NFA {
	a := New(2)
	fin := a.AddState()
	a.AddArc(a.Start(), SetOf(2, 0), a.Start())
	a.AddArc(a.Start(), SetOf(2, 1), fin)
	a.SetAccept(fin, true)
	return a
}

func TestNFAAccepts(t *testing.T) {
	a := buildAB()
	cases := []struct {
		w    []Sym
		want bool
	}{
		{[]Sym{1}, true},
		{[]Sym{0, 1}, true},
		{[]Sym{0, 0, 0, 1}, true},
		{[]Sym{}, false},
		{[]Sym{0}, false},
		{[]Sym{1, 0}, false},
		{[]Sym{1, 1}, false},
	}
	for _, c := range cases {
		if got := a.Accepts(c.w); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestEpsClosureAndEpsFree(t *testing.T) {
	a := New(2)
	s1 := a.AddState()
	s2 := a.AddState()
	a.AddEps(a.Start(), s1)
	a.AddEps(s1, s2)
	a.AddArc(s2, SetOf(2, 1), s2)
	a.SetAccept(s2, true)
	cl := a.EpsClosure(a.Start())
	if len(cl) != 3 {
		t.Fatalf("closure = %v", cl)
	}
	f := a.EpsFree()
	if !f.Accepting(f.Start()) {
		t.Error("EpsFree lost acceptance via closure")
	}
	if !f.Accepts([]Sym{1, 1}) || f.Accepts([]Sym{0}) {
		t.Error("EpsFree changed the language")
	}
}

func TestEmpty(t *testing.T) {
	a := New(2)
	if !a.Empty() {
		t.Error("no-accept automaton not Empty")
	}
	fin := a.AddState()
	a.AddArc(a.Start(), SetOf(2, 0), fin)
	a.SetAccept(fin, true)
	if a.Empty() {
		t.Error("reachable accept reported Empty")
	}
	// Unreachable accepting state.
	b := New(2)
	orphan := b.AddState()
	b.SetAccept(orphan, true)
	if !b.Empty() {
		t.Error("unreachable accept not Empty")
	}
}

func TestMintermsPartitionUniverse(t *testing.T) {
	a := New(10)
	fin := a.AddState()
	a.AddArc(a.Start(), SetOf(10, 1, 2, 3), fin)
	a.AddArc(a.Start(), SetOf(10, 3, 4), fin)
	a.SetAccept(fin, true)
	mts := a.Minterms()
	// Blocks must be disjoint and cover the universe.
	cover := NewSet(10)
	for i, m := range mts {
		for j := i + 1; j < len(mts); j++ {
			if !m.Inter(mts[j]).IsEmpty() {
				t.Fatalf("minterms %d and %d overlap", i, j)
			}
		}
		cover = cover.Union(m)
	}
	if !cover.Equal(FullSet(10)) {
		t.Fatal("minterms do not cover the universe")
	}
	// {1,2}, {3}, {4}, rest = 4 blocks.
	if len(mts) != 4 {
		t.Fatalf("got %d minterms, want 4", len(mts))
	}
}

func TestDeterminizePreservesLanguage(t *testing.T) {
	a := buildAB()
	d := a.Determinize()
	words := [][]Sym{{}, {0}, {1}, {0, 1}, {1, 0}, {0, 0, 1}, {1, 1}, {0, 1, 1}}
	for _, w := range words {
		if a.Accepts(w) != d.Accepts(w) {
			t.Errorf("DFA differs from NFA on %v", w)
		}
	}
}

func TestDeterminizeIsDeterministicAndComplete(t *testing.T) {
	a := buildAB()
	d := a.Determinize()
	for s := 0; s < d.NumStates(); s++ {
		cover := NewSet(2)
		for _, arc := range d.Arcs(s) {
			if !cover.Inter(arc.Set).IsEmpty() {
				t.Fatalf("state %d has overlapping arcs", s)
			}
			cover = cover.Union(arc.Set)
		}
		if !cover.Equal(FullSet(2)) {
			t.Fatalf("state %d is not complete", s)
		}
	}
}

func TestComplement(t *testing.T) {
	a := buildAB()
	c := a.Complement()
	words := [][]Sym{{}, {0}, {1}, {0, 1}, {1, 0}, {0, 0, 1}, {1, 1}}
	for _, w := range words {
		if a.Accepts(w) == c.Accepts(w) {
			t.Errorf("complement agrees with original on %v", w)
		}
	}
}

func TestProduct(t *testing.T) {
	// L1 = a*b, L2 = words of length exactly 2 => intersection = {ab}.
	l1 := buildAB()
	l2 := New(2)
	m := l2.AddState()
	fin := l2.AddState()
	l2.AddArc(l2.Start(), FullSet(2), m)
	l2.AddArc(m, FullSet(2), fin)
	l2.SetAccept(fin, true)
	p := Product(l1, l2)
	if !p.Accepts([]Sym{0, 1}) {
		t.Error("product rejects ab")
	}
	for _, w := range [][]Sym{{1}, {0, 0}, {1, 1}, {0, 0, 1}} {
		if p.Accepts(w) {
			t.Errorf("product accepts %v", w)
		}
	}
}

func TestProductEmptyIntersection(t *testing.T) {
	onlyA := New(2)
	fa := onlyA.AddState()
	onlyA.AddArc(onlyA.Start(), SetOf(2, 0), fa)
	onlyA.SetAccept(fa, true)
	onlyB := New(2)
	fb := onlyB.AddState()
	onlyB.AddArc(onlyB.Start(), SetOf(2, 1), fb)
	onlyB.SetAccept(fb, true)
	if p := Product(onlyA, onlyB); !p.Empty() {
		t.Error("intersection of {a} and {b} not empty")
	}
}

// Property: determinize+complement twice gives back the original language
// on random short words.
func TestDoubleComplementProperty(t *testing.T) {
	a := buildAB()
	cc := a.Complement().Complement()
	f := func(w []bool) bool {
		word := make([]Sym, len(w))
		for i, b := range w {
			if b {
				word[i] = 1
			}
		}
		return a.Accepts(word) == cc.Accepts(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	a := buildAB()
	m := a.Minimize()
	words := [][]Sym{{}, {0}, {1}, {0, 1}, {1, 0}, {0, 0, 1}, {1, 1}, {0, 1, 1}, {0, 0, 0, 1}}
	for _, w := range words {
		if a.Accepts(w) != m.Accepts(w) {
			t.Errorf("minimized automaton differs on %v", w)
		}
	}
}

func TestMinimizeReducesRedundantStates(t *testing.T) {
	// Build a bloated automaton for the language {a}: several duplicated
	// accepting states reachable on 'a'.
	a := New(2)
	for i := 0; i < 5; i++ {
		f := a.AddState()
		a.AddArc(a.Start(), SetOf(2, 0), f)
		a.SetAccept(f, true)
	}
	m := a.Minimize()
	// Minimal complete DFA for {a} over a 2-symbol alphabet: start, accept,
	// sink = 3 states.
	if m.NumStates() > 3 {
		t.Fatalf("minimized to %d states, want ≤ 3", m.NumStates())
	}
	if !m.Accepts([]Sym{0}) || m.Accepts([]Sym{1}) || m.Accepts([]Sym{0, 0}) {
		t.Fatal("language changed")
	}
}

// Property: minimization is idempotent and preserves the language on random
// words.
func TestMinimizeProperty(t *testing.T) {
	inner := Product(buildAB().Complement(), buildAB().Determinize().Complement())
	m1 := inner.Minimize()
	m2 := m1.Minimize()
	if m2.NumStates() != m1.NumStates() {
		t.Fatalf("not idempotent: %d -> %d states", m1.NumStates(), m2.NumStates())
	}
	f := func(raw []bool) bool {
		w := make([]Sym, len(raw))
		for i, b := range raw {
			if b {
				w[i] = 1
			}
		}
		return inner.Accepts(w) == m1.Accepts(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
