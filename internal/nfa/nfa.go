package nfa

import "fmt"

// State is an automaton state index.
type State = int

// Arc is a transition consuming any symbol in Set.
type Arc struct {
	Set *Set
	To  State
}

// NFA is a nondeterministic finite automaton with symbol-set transitions
// and epsilon moves. States are dense indices. The zero value is not
// usable; construct with New.
type NFA struct {
	universe int
	arcs     [][]Arc
	eps      [][]State
	start    State
	accept   []bool
}

// New returns an NFA over the given symbol universe with a single
// non-accepting start state.
func New(universe int) *NFA {
	a := &NFA{universe: universe}
	a.start = a.AddState()
	return a
}

// Universe returns the symbol universe size.
func (a *NFA) Universe() int { return a.universe }

// AddState adds a fresh non-accepting state and returns its index.
func (a *NFA) AddState() State {
	a.arcs = append(a.arcs, nil)
	a.eps = append(a.eps, nil)
	a.accept = append(a.accept, false)
	return len(a.arcs) - 1
}

// NumStates returns the number of states.
func (a *NFA) NumStates() int { return len(a.arcs) }

// Start returns the start state.
func (a *NFA) Start() State { return a.start }

// SetStart changes the start state.
func (a *NFA) SetStart(s State) { a.start = s }

// SetAccept marks or unmarks a state as accepting.
func (a *NFA) SetAccept(s State, v bool) { a.accept[s] = v }

// Accepting reports whether s is accepting.
func (a *NFA) Accepting(s State) bool { return a.accept[s] }

// AcceptingStates returns all accepting state indices.
func (a *NFA) AcceptingStates() []State {
	var out []State
	for s, acc := range a.accept {
		if acc {
			out = append(out, s)
		}
	}
	return out
}

// AddArc adds a transition from p to q consuming any symbol in set. Empty
// sets are dropped.
func (a *NFA) AddArc(p State, set *Set, q State) {
	if set.Universe() != a.universe {
		panic(fmt.Sprintf("nfa: arc set universe %d != automaton universe %d", set.Universe(), a.universe))
	}
	if set.IsEmpty() {
		return
	}
	a.arcs[p] = append(a.arcs[p], Arc{Set: set, To: q})
}

// AddEps adds an epsilon transition from p to q.
func (a *NFA) AddEps(p, q State) {
	if p != q {
		a.eps[p] = append(a.eps[p], q)
	}
}

// Arcs returns the outgoing symbol transitions of s. The slice is shared;
// callers must not modify it.
func (a *NFA) Arcs(s State) []Arc { return a.arcs[s] }

// EpsClosure returns the epsilon closure of the given states as a sorted,
// deduplicated slice.
func (a *NFA) EpsClosure(states ...State) []State {
	seen := make(map[State]bool, len(states))
	var stack []State
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range a.eps[s] {
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortStates(out)
	return out
}

// Step returns the set of states reachable from the given states by
// consuming symbol x (including epsilon closure of the result).
func (a *NFA) Step(states []State, x Sym) []State {
	var next []State
	seen := make(map[State]bool)
	for _, s := range states {
		for _, arc := range a.arcs[s] {
			if arc.Set.Has(x) && !seen[arc.To] {
				seen[arc.To] = true
				next = append(next, arc.To)
			}
		}
	}
	if next == nil {
		return nil
	}
	return a.EpsClosure(next...)
}

// Accepts simulates the automaton on a word.
func (a *NFA) Accepts(word []Sym) bool {
	cur := a.EpsClosure(a.start)
	for _, x := range word {
		cur = a.Step(cur, x)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if a.accept[s] {
			return true
		}
	}
	return false
}

// Empty reports whether the automaton's language is empty, i.e. no
// accepting state is reachable from the start over non-empty arc sets.
func (a *NFA) Empty() bool {
	seen := make([]bool, len(a.arcs))
	stack := []State{a.start}
	seen[a.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.accept[s] {
			return false
		}
		for _, q := range a.eps[s] {
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
		for _, arc := range a.arcs[s] {
			if !arc.Set.IsEmpty() && !seen[arc.To] {
				seen[arc.To] = true
				stack = append(stack, arc.To)
			}
		}
	}
	return true
}

// EpsFree returns an equivalent automaton without epsilon transitions.
// State indices are preserved (plus no new states are added): each state
// gains the arcs of its epsilon closure, and becomes accepting if its
// closure contains an accepting state.
func (a *NFA) EpsFree() *NFA {
	out := &NFA{
		universe: a.universe,
		arcs:     make([][]Arc, len(a.arcs)),
		eps:      make([][]State, len(a.arcs)),
		start:    a.start,
		accept:   make([]bool, len(a.accept)),
	}
	for s := range a.arcs {
		cl := a.EpsClosure(s)
		for _, c := range cl {
			if a.accept[c] {
				out.accept[s] = true
			}
			out.arcs[s] = append(out.arcs[s], a.arcs[c]...)
		}
	}
	return out
}

func sortStates(s []State) {
	// insertion sort: closures are small
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
