package nfa

import (
	"sort"
	"strconv"
	"strings"
)

// Minimize returns the minimal deterministic automaton for the receiver's
// language, using Moore's partition refinement over the minterm alphabet.
// The receiver may be any NFA; it is determinised (and completed) first.
func (a *NFA) Minimize() *NFA {
	d := a.Determinize()
	minterms := d.Minterms()
	n := d.NumStates()
	if n == 0 {
		return d
	}

	// succ[s][m] = successor of state s on minterm m (complete DFA: always
	// exactly one).
	succ := make([][]int, n)
	for s := 0; s < n; s++ {
		succ[s] = make([]int, len(minterms))
		for mi, mt := range minterms {
			x, ok := mt.First()
			if !ok {
				succ[s][mi] = s // empty minterm cannot occur, but stay safe
				continue
			}
			succ[s][mi] = -1
			for _, arc := range d.Arcs(s) {
				if arc.Set.Has(x) {
					succ[s][mi] = arc.To
					break
				}
			}
		}
	}

	// Initial partition: accepting vs non-accepting.
	block := make([]int, n)
	for s := 0; s < n; s++ {
		if d.Accepting(s) {
			block[s] = 1
		}
	}
	numBlocks := 2
	for {
		// Signature: own block + successor blocks per minterm.
		sig := make([]string, n)
		for s := 0; s < n; s++ {
			var b strings.Builder
			b.WriteString(strconv.Itoa(block[s]))
			for mi := range minterms {
				b.WriteByte(',')
				t := succ[s][mi]
				if t < 0 {
					b.WriteByte('-')
				} else {
					b.WriteString(strconv.Itoa(block[t]))
				}
			}
			sig[s] = b.String()
		}
		idx := map[string]int{}
		next := make([]int, n)
		for s := 0; s < n; s++ {
			id, ok := idx[sig[s]]
			if !ok {
				id = len(idx)
				idx[sig[s]] = id
			}
			next[s] = id
		}
		if len(idx) == numBlocks {
			break
		}
		numBlocks = len(idx)
		block = next
	}

	// Build the quotient automaton. Block of the start state becomes the
	// new start; merge minterm sets per (block, target block).
	out := New(a.universe)
	mapped := make([]State, numBlocks)
	for i := range mapped {
		mapped[i] = -1
	}
	mapped[block[d.Start()]] = out.Start()
	for b := 0; b < numBlocks; b++ {
		if mapped[b] == -1 {
			mapped[b] = out.AddState()
		}
	}
	// Representative state per block (deterministic: smallest index).
	rep := make([]int, numBlocks)
	for i := range rep {
		rep[i] = -1
	}
	for s := 0; s < n; s++ {
		if rep[block[s]] == -1 || s < rep[block[s]] {
			rep[block[s]] = s
		}
	}
	type pair struct{ from, to int }
	merged := map[pair]*Set{}
	for b := 0; b < numBlocks; b++ {
		s := rep[b]
		out.SetAccept(mapped[b], d.Accepting(s))
		for mi, mt := range minterms {
			t := succ[s][mi]
			if t < 0 {
				continue
			}
			k := pair{b, block[t]}
			if merged[k] == nil {
				merged[k] = NewSet(a.universe)
			}
			merged[k] = merged[k].Union(mt)
		}
	}
	keys := make([]pair, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		out.AddArc(mapped[k.from], merged[k], mapped[k.to])
	}
	return out
}
