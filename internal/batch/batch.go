// Package batch runs many queries against one network concurrently: the
// what-if workflow of the paper's §5 asks dozens of queries about a single
// network snapshot, and those runs share almost all of their work. A
// Runner owns a per-network translation cache (internal/translate.Cache)
// so each pushdown system is built once and shared read-only across a
// bounded worker pool; per-query deadlines and batch-wide cancellation are
// threaded through context.Context; results come back in input order, and
// every verdict and witness is identical to what a serial run of
// engine.Verify would produce (translation and witness search are
// deterministic — see DESIGN.md, "Concurrency model").
package batch

import (
	"context"
	"runtime"
	"sync"
	"time"

	"aalwines/internal/engine"
	"aalwines/internal/network"
	"aalwines/internal/obs"
	"aalwines/internal/query"
	"aalwines/internal/translate"
)

// Pool metrics: queue wait is the time a query spends enqueued before a
// worker picks it up (scheduling pressure), query latency is the per-query
// wall clock including parsing and verification, and the busy gauge /
// busy-seconds pair yields worker utilisation (busy-seconds divided by
// wall-seconds × workers).
var (
	mBatches   = obs.GetCounter("batch_batches_total")
	mQueries   = obs.GetCounter("batch_queries_total")
	mErrors    = obs.GetCounter("batch_query_errors_total")
	mQueueWait = obs.GetHistogram("batch_queue_wait_seconds", nil)
	mLatency   = obs.GetHistogram("batch_query_seconds", nil)
	mBusy      = obs.GetGauge("batch_workers_busy")
	mBusySecs  = obs.GetFloatCounter("batch_worker_busy_seconds_total")
)

// Options configure one batch run.
type Options struct {
	// Workers bounds the worker pool; 0 means runtime.GOMAXPROCS(0). The
	// pool is additionally clamped to the batch size.
	Workers int
	// Timeout is the per-query wall-clock deadline (0 = none); an expired
	// deadline surfaces as context.DeadlineExceeded on that query's Result
	// without affecting the rest of the batch.
	Timeout time.Duration
	// Engine is the per-query engine configuration. Its Cache field is
	// overridden with the runner's shared translation cache.
	Engine engine.Options
}

// Result is the outcome of one query in a batch.
type Result struct {
	// Index is the query's position in the input slice.
	Index int
	// Query is the query text as given.
	Query string
	// Res is the engine result when Err is nil.
	Res engine.Result
	// Err is the per-query failure: a parse error, engine.ErrBudget (via
	// wrapping), context.DeadlineExceeded for an expired per-query
	// deadline, or the batch context's error for queries cancelled before
	// or during their run.
	Err error
	// Stats mirrors Res.Stats but is populated on every path — including
	// budget- and deadline-failed queries, whose partially filled stats
	// (build time, rule counts, the phase that blew the budget) are exactly
	// what a caller diagnosing the failure needs.
	Stats engine.Stats
	// Elapsed is the query's wall-clock verification time.
	Elapsed time.Duration
}

// Runner verifies batches of queries against one network. It holds the
// network's compiled state — parsed queries and translated pushdown
// systems — so repeated batches (an interactive what-if session, the HTTP
// API, the experiment sweeps) amortise translation across runs. A Runner
// is safe for concurrent use; overlapping Verify calls share the caches.
type Runner struct {
	cache translate.Getter

	mu     sync.Mutex
	net    *network.Network
	parsed map[string]*parseEntry
}

type parseEntry struct {
	once sync.Once
	q    *query.Query
	err  error
}

// NewRunner returns a runner bound to the network with a fresh
// translation cache.
func NewRunner(net *network.Network) *Runner {
	return NewRunnerWithCache(net, translate.NewCache(net))
}

// NewRunnerWithCache returns a runner using a caller-supplied translation
// cache — a scenario session passes its SessionCache here so batch runs
// share the session's incrementally maintained systems. The cache must be
// bound to net (cache.Net() == net), or every run builds from scratch.
func NewRunnerWithCache(net *network.Network, cache translate.Getter) *Runner {
	return &Runner{
		net:    net,
		cache:  cache,
		parsed: make(map[string]*parseEntry),
	}
}

// Network returns the network the runner is currently bound to.
func (r *Runner) Network() *network.Network {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.net
}

// Rebind points the runner at a new network sharing the previous one's
// topology and label table (a scenario overlay after a delta). Parsed
// queries are kept: query compilation reads only labels and topology,
// which overlays share with their base. In-flight batches keep verifying
// the network they started with.
func (r *Runner) Rebind(net *network.Network) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.net = net
}

// CacheStats reports the translation cache counters.
func (r *Runner) CacheStats() translate.CacheStats { return r.cache.Stats() }

// parse memoizes query compilation by text. Identical texts share one
// compiled query, which also makes them share one translation cache entry
// (the cache keys on compiled-query identity).
func (r *Runner) parse(text string) (*query.Query, error) {
	r.mu.Lock()
	e := r.parsed[text]
	if e == nil {
		e = &parseEntry{}
		r.parsed[text] = e
	}
	net := r.net
	r.mu.Unlock()
	e.once.Do(func() {
		e.q, e.err = query.Parse(text, net)
	})
	return e.q, e.err
}

// Verify runs the queries on a bounded worker pool and returns one Result
// per query, in input order regardless of scheduling. Cancelling ctx stops
// the batch: queries not yet finished report the context's error.
func (r *Runner) Verify(ctx context.Context, queries []string, opts Options) []Result {
	return r.VerifyOn(ctx, r.Network(), queries, opts)
}

// VerifyOn is Verify against an explicit network snapshot instead of the
// runner's current binding. A scenario session pins the overlay it hands
// back for response rendering, so the run and the rendering agree even
// when a concurrent delta rebinds the runner mid-request. The network must
// share the runner's topology and label table (parsed queries are reused
// across Rebind); the translation cache is consulted only while it still
// serves net, so a stale snapshot costs a rebuild, never a wrong answer.
func (r *Runner) VerifyOn(ctx context.Context, net *network.Network, queries []string, opts Options) []Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	eopts := opts.Engine
	eopts.Cache = r.cache
	// Batch workers multiply with per-query saturation workers; cap the
	// product at GOMAXPROCS so a batch never oversubscribes the machine
	// (batch-level parallelism wins — it has no coordination overhead).
	if eopts.SatJ > 1 && workers > 0 {
		if limit := runtime.GOMAXPROCS(0) / workers; eopts.SatJ > limit {
			eopts.SatJ = limit
		}
	}

	mBatches.Inc()
	mQueries.Add(int64(len(queries)))
	results := make([]Result, len(queries))
	// The index channel is buffered and filled up front, so per-query queue
	// wait (pickup minus enqueue) measures real scheduling pressure.
	idx := make(chan int, len(queries))
	enqueued := make([]time.Time, len(queries))
	for i := range queries {
		enqueued[i] = time.Now()
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				mQueueWait.ObserveDuration(time.Since(enqueued[i]))
				mBusy.Add(1)
				t0 := time.Now()
				results[i] = r.one(ctx, net, i, queries[i], opts.Timeout, eopts)
				mBusySecs.Add(time.Since(t0).Seconds())
				mBusy.Add(-1)
				mLatency.ObserveDuration(results[i].Elapsed)
				if results[i].Err != nil {
					mErrors.Inc()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// one verifies a single query under the batch context plus the per-query
// deadline.
func (r *Runner) one(ctx context.Context, net *network.Network, i int, text string, timeout time.Duration, eopts engine.Options) Result {
	res := Result{Index: i, Query: text}
	t0 := time.Now()
	if err := ctx.Err(); err != nil {
		res.Err = err
		res.Elapsed = time.Since(t0)
		return res
	}
	q, err := r.parse(text)
	if err != nil {
		res.Err = err
		res.Elapsed = time.Since(t0)
		return res
	}
	qctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res.Res, res.Err = engine.VerifyCtx(qctx, net, q, eopts)
	res.Stats = res.Res.Stats
	res.Elapsed = time.Since(t0)
	return res
}

// Verify is the one-shot entry: it builds a throwaway runner and runs the
// batch. Callers issuing repeated batches should keep a Runner instead so
// translations persist between calls.
func Verify(ctx context.Context, net *network.Network, queries []string, opts Options) []Result {
	return NewRunner(net).Verify(ctx, queries, opts)
}
