package batch_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/network"
	"aalwines/internal/weight"
)

// essence projects a result onto its semantically meaningful fields,
// dropping timings and system-size statistics.
type essence struct {
	Verdict engine.Verdict
	Trace   network.Trace
	Failed  network.FailedSet
	Weight  weight.Vec
}

func essenceOf(r engine.Result) essence {
	return essence{Verdict: r.Verdict, Trace: r.Trace, Failed: r.Failed, Weight: r.Weight}
}

func testWorkload(t *testing.T) (*gen.Synth, []string) {
	t.Helper()
	s := gen.Zoo(gen.ZooOpts{Routers: 30, Seed: 5, Protection: true})
	var texts []string
	for _, q := range s.Queries(12, 17) {
		texts = append(texts, q.Text)
	}
	return s, texts
}

// TestBatchMatchesSerial checks the batch contract: for every worker
// count, each query's verdict, witness trace, failed set and weight are
// identical to a fresh serial engine.Verify run, and results come back in
// input order.
func TestBatchMatchesSerial(t *testing.T) {
	s, texts := testWorkload(t)
	serial := make([]essence, len(texts))
	for i, text := range texts {
		res, err := engine.VerifyText(s.Net, text, engine.Options{})
		if err != nil {
			t.Fatalf("serial %q: %v", text, err)
		}
		serial[i] = essenceOf(res)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		runner := batch.NewRunner(s.Net)
		// Two sweeps: the second runs entirely from the warm cache and
		// must still reproduce the serial results.
		for sweep := 0; sweep < 2; sweep++ {
			results := runner.Verify(context.Background(), texts, batch.Options{Workers: workers})
			if len(results) != len(texts) {
				t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(texts))
			}
			for i, r := range results {
				if r.Index != i || r.Query != texts[i] {
					t.Fatalf("workers=%d sweep=%d: result %d out of order (index %d, %q)",
						workers, sweep, i, r.Index, r.Query)
				}
				if r.Err != nil {
					t.Fatalf("workers=%d sweep=%d %q: %v", workers, sweep, r.Query, r.Err)
				}
				if got := essenceOf(r.Res); !reflect.DeepEqual(got, serial[i]) {
					t.Errorf("workers=%d sweep=%d %q: batch result differs from serial\nbatch:  %+v\nserial: %+v",
						workers, sweep, r.Query, got, serial[i])
				}
			}
		}
		st := runner.CacheStats()
		if st.Misses >= st.Gets {
			t.Errorf("workers=%d: cache never hit (gets=%d misses=%d)", workers, st.Gets, st.Misses)
		}
	}
}

// TestBatchWeighted runs a weighted batch against serial weighted runs:
// cached weighted systems must reproduce minimal witness weights.
func TestBatchWeighted(t *testing.T) {
	s, texts := testWorkload(t)
	texts = texts[:6]
	spec := weight.Spec{
		{{Coeff: 1, Q: weight.Hops}},
		{{Coeff: 1, Q: weight.Failures}, {Coeff: 3, Q: weight.Tunnels}},
	}
	serial := make([]essence, len(texts))
	for i, text := range texts {
		res, err := engine.VerifyText(s.Net, text, engine.Options{Spec: spec})
		if err != nil {
			t.Fatalf("serial %q: %v", text, err)
		}
		serial[i] = essenceOf(res)
	}
	runner := batch.NewRunner(s.Net)
	for sweep := 0; sweep < 2; sweep++ {
		results := runner.Verify(context.Background(), texts,
			batch.Options{Workers: 4, Engine: engine.Options{Spec: spec}})
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("sweep=%d %q: %v", sweep, r.Query, r.Err)
			}
			if got := essenceOf(r.Res); !reflect.DeepEqual(got, serial[i]) {
				t.Errorf("sweep=%d %q: weighted batch differs from serial\nbatch:  %+v\nserial: %+v",
					sweep, r.Query, got, serial[i])
			}
		}
	}
}

// TestBatchParseErrorIsolated checks that a malformed query fails alone
// without poisoning the rest of the batch.
func TestBatchParseErrorIsolated(t *testing.T) {
	s, texts := testWorkload(t)
	texts = append([]string{}, texts[:3]...)
	texts = append(texts, "<ip> [.#no-such-router] .* <ip> 0")
	results := batch.Verify(context.Background(), s.Net, texts, batch.Options{Workers: 2})
	for i, r := range results {
		if i == len(texts)-1 {
			if r.Err == nil {
				t.Errorf("malformed query reported no error")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%q: %v", r.Query, r.Err)
		}
	}
}

// TestBatchCancellation checks that a cancelled batch context surfaces as
// context.Canceled on every unfinished query.
func TestBatchCancellation(t *testing.T) {
	s, texts := testWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := batch.Verify(ctx, s.Net, texts, batch.Options{Workers: 4})
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%q: err = %v, want context.Canceled", r.Query, r.Err)
		}
	}
}

// TestBatchPerQueryTimeout checks that an unmeetable per-query deadline
// yields context.DeadlineExceeded per query while leaving the batch alive.
func TestBatchPerQueryTimeout(t *testing.T) {
	s, texts := testWorkload(t)
	results := batch.Verify(context.Background(), s.Net, texts,
		batch.Options{Workers: 4, Timeout: time.Nanosecond})
	for _, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("%q: err = %v, want context.DeadlineExceeded", r.Query, r.Err)
		}
	}
}

// TestBatchOverlapping fires several Verify calls at one shared runner at
// once — the httpapi serving pattern. All calls must see identical
// results; run under -race this also stresses the cache's sharing
// discipline.
func TestBatchOverlapping(t *testing.T) {
	s, texts := testWorkload(t)
	runner := batch.NewRunner(s.Net)
	const calls = 4
	out := make([][]batch.Result, calls)
	var wg sync.WaitGroup
	for c := 0; c < calls; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[c] = runner.Verify(context.Background(), texts, batch.Options{Workers: 3})
		}()
	}
	wg.Wait()
	for c := 1; c < calls; c++ {
		for i := range texts {
			if out[c][i].Err != nil || out[0][i].Err != nil {
				t.Fatalf("call %d query %d: err %v / %v", c, i, out[c][i].Err, out[0][i].Err)
			}
			a, b := essenceOf(out[c][i].Res), essenceOf(out[0][i].Res)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("call %d query %d: results differ across overlapping batches", c, i)
			}
		}
	}
}

// TestBatchBudgetErrorKeepsStats checks that a budget-exhausted query
// still surfaces its partial engine stats on the Result: callers
// diagnosing the timeout need the build time and rule counts of the
// system that blew the budget.
func TestBatchBudgetErrorKeepsStats(t *testing.T) {
	s, texts := testWorkload(t)
	results := batch.Verify(context.Background(), s.Net, texts[:2], batch.Options{
		Workers: 2,
		Engine:  engine.Options{Budget: 1},
	})
	for _, r := range results {
		if !errors.Is(r.Err, engine.ErrBudget) {
			t.Fatalf("%q: err = %v, want ErrBudget", r.Query, r.Err)
		}
		if r.Stats.BuildTime <= 0 || r.Stats.OverRules == 0 {
			t.Errorf("%q: partial stats missing on budget failure: %+v", r.Query, r.Stats)
		}
	}
}

// TestBatchResultStatsMirrorsRes pins Result.Stats == Result.Res.Stats on
// the success path, so callers can read stats uniformly on both paths.
func TestBatchResultStatsMirrorsRes(t *testing.T) {
	s, texts := testWorkload(t)
	results := batch.Verify(context.Background(), s.Net, texts[:3], batch.Options{Workers: 2})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%q: %v", r.Query, r.Err)
		}
		if !reflect.DeepEqual(r.Stats, r.Res.Stats) {
			t.Errorf("%q: Stats %+v != Res.Stats %+v", r.Query, r.Stats, r.Res.Stats)
		}
	}
}
