// Package obs is the dependency-free metrics subsystem behind the
// verification pipeline's observability: atomic counters, gauges and
// fixed-bucket latency histograms collected in a Registry that can render
// itself as a JSON snapshot (the CLI's -stats dump), as Prometheus text
// exposition (aalwinesd's GET /metrics) or as an expvar variable. The
// paper's headline claim is interactive-speed what-if verification; these
// counters are how the reproduction shows where per-query time actually
// goes (saturation work, cache effectiveness, queueing, per-phase
// latency).
//
// Metric names follow the Prometheus conventions documented in DESIGN.md
// ("Observability"): snake_case, a `_total` suffix on monotonic counters,
// `_seconds` on duration histograms, and optional labels spelled inline in
// the name — Counter(`engine_phase_seconds{phase="build"}`) — so the
// registry itself stays a flat name → metric map.
//
// All metric types are safe for concurrent use and designed for hot
// loops: a Counter.Add is one atomic add; saturation batches its tallies
// locally and flushes once per run. Snapshot returns deep copies, so a
// snapshot taken before a burst of updates is never retroactively
// modified.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 (busy-seconds and
// histogram sums); Add uses a compare-and-swap loop on the bit pattern.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v.
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current sum.
func (f *FloatCounter) Value() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *FloatCounter) store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Gauge is an instantaneous int64 value (worker occupancy, peak depths).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger; used for peak values.
func (g *Gauge) SetMax(n int64) {
	for {
		old := g.v.Load()
		if n <= old || g.v.CompareAndSwap(old, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning 10µs (a cached translation of a trivial query) to 60s (a
// saturation that should have been budgeted).
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observations, like every other metric operation, are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    FloatCounter
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// snapshot copies the histogram counters; not atomic across buckets, which
// is the usual (and here acceptable) scrape-time approximation.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.store(0)
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket; last entry is the +Inf bucket
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) assuming a uniform
// distribution inside each bucket; observations in the +Inf bucket report
// the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(s.Bounds[i]-lo)
		}
		seen += float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a deep, JSON-marshalable copy of a registry's state.
type Snapshot struct {
	Counters      map[string]int64             `json:"counters"`
	FloatCounters map[string]float64           `json:"floatCounters,omitempty"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a flat name → metric map. Metrics are created on first use
// and live forever; all accessors are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	floats map[string]*FloatCounter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		floats: make(map[string]*FloatCounter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it if needed.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.floats[name]
	if f == nil {
		f = &FloatCounter{}
		r.floats[name] = f
	}
	return f
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (nil = DefBuckets) if needed. An existing histogram keeps its
// original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a deep copy of every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	if len(r.floats) > 0 {
		s.FloatCounters = make(map[string]float64, len(r.floats))
	}
	for n, c := range r.counts {
		s.Counters[n] = c.Value()
	}
	for n, f := range r.floats {
		s.FloatCounters[n] = f.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// Reset zeroes every metric (bench runs isolate themselves with a Reset
// before measuring; the registered metric objects stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counts {
		c.v.Store(0)
	}
	for _, f := range r.floats {
		f.store(0)
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// splitName separates an inline-labeled metric name into its base name and
// the label list without braces: `a{b="c"}` → (`a`, `b="c"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels renders a label list (either part may be empty).
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, with one deterministic, sorted pass per metric family.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	typed := map[string]string{}
	for _, n := range sortedKeys(snap.Counters) {
		writeTyped(w, typed, n, "counter")
		fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n])
	}
	for _, n := range sortedKeys(snap.FloatCounters) {
		writeTyped(w, typed, n, "counter")
		fmt.Fprintf(w, "%s %g\n", n, snap.FloatCounters[n])
	}
	for _, n := range sortedKeys(snap.Gauges) {
		writeTyped(w, typed, n, "gauge")
		fmt.Fprintf(w, "%s %d\n", n, snap.Gauges[n])
	}
	for _, n := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[n]
		base, labels := splitName(n)
		writeTyped(w, typed, base, "histogram")
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, joinLabels(labels, `le="`+le+`"`), cum)
		}
		if labels == "" {
			fmt.Fprintf(w, "%s_sum %g\n", base, h.Sum)
			fmt.Fprintf(w, "%s_count %d\n", base, h.Count)
		} else {
			fmt.Fprintf(w, "%s_sum{%s} %g\n", base, labels, h.Sum)
			fmt.Fprintf(w, "%s_count{%s} %d\n", base, labels, h.Count)
		}
	}
}

func writeTyped(w io.Writer, typed map[string]string, name, kind string) {
	base, _ := splitName(name)
	if typed[base] == "" {
		fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		typed[base] = kind
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WriteJSON writes an indented JSON snapshot (the CLI's -stats dump).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Default is the process-wide registry every instrumented package records
// into; the package-level helpers below address it.
var Default = NewRegistry()

// GetCounter returns a counter from the default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetFloatCounter returns a float counter from the default registry.
func GetFloatCounter(name string) *FloatCounter { return Default.FloatCounter(name) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns a histogram from the default registry (nil bounds =
// DefBuckets).
func GetHistogram(name string, bounds []float64) *Histogram { return Default.Histogram(name, bounds) }

// SanitizeLabel makes s safe to embed in an inline label value: quotes,
// backslashes and newlines are replaced so the rendered exposition stays
// parseable.
func SanitizeLabel(s string) string {
	return strings.NewReplacer(`"`, "'", `\`, "/", "\n", " ", "{", "(", "}", ")").Replace(s)
}

var expvarOnce sync.Once

// PublishExpvar publishes the default registry as the expvar variable
// "aalwines_metrics" (idempotent; expvar forbids re-publication).
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("aalwines_metrics", expvar.Func(func() interface{} {
			return Default.Snapshot()
		}))
	})
}
