package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; the sum
// must be exact (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestFloatCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	f := r.FloatCounter("f")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := f.Value(), float64(workers*per)*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("float counter = %g, want %g", got, want)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 7999 {
		t.Fatalf("max gauge = %d, want 7999", got)
	}
}

// TestHistogramConcurrent checks that concurrent observations lose nothing
// and land in the right buckets.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	const workers, per = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 3 * 50)) // 0, 50, 100 → buckets 0, 2, 2
			}
		}()
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Counts[0] != workers*per/3 {
		t.Errorf("bucket[≤1] = %d, want %d", s.Counts[0], workers*per/3)
	}
	if s.Counts[2] != 2*workers*per/3 {
		t.Errorf("bucket[≤100] = %d, want %d", s.Counts[2], 2*workers*per/3)
	}
	if s.Counts[3] != 0 {
		t.Errorf("+Inf bucket = %d, want 0", s.Counts[3])
	}
}

// TestSnapshotIsolation verifies a snapshot is a deep copy: updates after
// the snapshot must not leak into it.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	c.Add(5)
	h.Observe(0.01)
	snap := r.Snapshot()
	c.Add(100)
	h.Observe(0.01)
	h.Observe(5)
	if snap.Counters["c"] != 5 {
		t.Errorf("snapshot counter = %d, want 5", snap.Counters["c"])
	}
	hs := snap.Histograms["h"]
	if hs.Count != 1 {
		t.Errorf("snapshot histogram count = %d, want 1", hs.Count)
	}
	var total int64
	for _, n := range hs.Counts {
		total += n
	}
	if total != 1 {
		t.Errorf("snapshot bucket total = %d, want 1", total)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.FloatCounter("f").Add(1.5)
	r.Gauge("g").Set(3)
	r.Histogram("h", nil).Observe(0.2)
	r.Reset()
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.FloatCounters["f"] != 0 || s.Gauges["g"] != 0 {
		t.Fatalf("reset left values: %+v", s)
	}
	if hs := s.Histograms["h"]; hs.Count != 0 || hs.Sum != 0 {
		t.Fatalf("reset left histogram: %+v", hs)
	}
	// Metric handles created before the reset stay live.
	r.Counter("c").Inc()
	if r.Snapshot().Counters["c"] != 1 {
		t.Fatal("counter dead after reset")
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	s := h.snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := s.Quantile(q)
		if v < 1 || v > 2 {
			t.Errorf("q%.2f = %g, want within (1,2]", q, v)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	if m := s.Mean(); math.Abs(m-1.5) > 1e-9 {
		t.Errorf("mean = %g, want 1.5", m)
	}
}

// TestWritePrometheus pins the exposition format: TYPE lines, label
// merging for labeled histograms, cumulative buckets, +Inf terminal.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("widgets_total").Add(3)
	r.Counter(`hits_total{net="a b"}`).Add(2)
	r.Gauge("depth").Set(9)
	h := r.Histogram(`lat_seconds{phase="over"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE widgets_total counter",
		"widgets_total 3",
		`hits_total{net="a b"} 2`,
		"# TYPE depth gauge",
		"depth 9",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{phase="over",le="0.1"} 1`,
		`lat_seconds_bucket{phase="over",le="1"} 2`,
		`lat_seconds_bucket{phase="over",le="+Inf"} 3`,
		`lat_seconds_count{phase="over"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h", nil).ObserveDuration(3 * time.Millisecond)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c"] != 2 || snap.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", snap)
	}
}

func TestSanitizeLabel(t *testing.T) {
	in := "a\"b\\c\nd{e}"
	out := SanitizeLabel(in)
	for _, bad := range []string{`"`, `\`, "\n", "{", "}"} {
		if strings.Contains(out, bad) {
			t.Errorf("sanitized %q still contains %q", out, bad)
		}
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar()
	PublishExpvar() // second call must not panic on duplicate publication
}
