package gen

import (
	"fmt"
	"math/rand"

	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// BackboneOpts parameterises the ISP-backbone-mesh family: a densely
// meshed core of P routers plus a tier of PoP aggregation routers, each
// dual-homed to two distinct core routers. This mirrors the classic
// tier-1 ISP design (meshed P-core, dual-homed PEs) and complements the
// other families: the fat-tree is regular and rich, the rings are sparse
// and cycle-bound, the backbone sits in between — a small dense core with
// many stub attachments.
type BackboneOpts struct {
	// Core is the number of meshed core routers (default 8).
	Core int
	// Pops is the number of dual-homed PoP routers (default 24).
	Pops int
	// MeshDegree is how many higher-indexed core routers each core router
	// links to (default 3; Core-1 yields a full mesh).
	MeshDegree int
	// EdgeRouters bounds how many PoP routers carry LSPs (0 = all).
	EdgeRouters int
	// Services is the number of service-label chains per edge pair.
	Services int
	Seed     int64
}

// Backbone builds the two-tier ISP topology with the standard MPLS
// dataplane (all-pairs LSPs between the selected PoPs, fast-reroute
// protection, optional service chains).
func Backbone(opts BackboneOpts) *Synth {
	c := opts.Core
	if c == 0 {
		c = 8
	}
	p := opts.Pops
	if p == 0 {
		p = 24
	}
	d := opts.MeshDegree
	if d == 0 {
		d = 3
	}
	if c < 3 || p < 2 {
		panic(fmt.Sprintf("gen: backbone needs >=3 core and >=2 pop routers, got %d/%d", c, p))
	}
	if d > c-1 {
		d = c - 1
	}
	net := network.New(fmt.Sprintf("backbone-%dc%dp", c, p))
	g := net.Topo

	linkSeq := 0
	addBoth := func(a, b topology.RouterID, w uint64) {
		linkSeq++
		g.MustAddLink(a, b, fmt.Sprintf("ge%d", linkSeq), fmt.Sprintf("xe%d", linkSeq), w)
		g.MustAddLink(b, a, fmt.Sprintf("he%d", linkSeq), fmt.Sprintf("ye%d", linkSeq), w)
	}

	core := make([]topology.RouterID, c)
	for i := range core {
		core[i] = g.AddRouter(fmt.Sprintf("p%d", i))
		g.SetLocation(core[i], 50, float64(i)*2)
	}
	// Core mesh: ring for connectivity plus d-regular chords. Weights vary
	// with index distance so shortest paths are unique-ish and interesting.
	for i := 0; i < c; i++ {
		for k := 1; k <= d; k++ {
			j := (i + k) % c
			if j > i {
				addBoth(core[i], core[j], uint64(1+k))
			} else if k == 1 {
				// Close the ring exactly once.
				addBoth(core[i], core[j], uint64(1+k))
			}
		}
	}
	pops := make([]topology.RouterID, p)
	for i := range pops {
		pops[i] = g.AddRouter(fmt.Sprintf("pe%d", i))
		g.SetLocation(pops[i], 47, float64(i))
		// Dual-homing to two distinct core routers.
		a := i % c
		b := (i + 1 + i/c) % c
		if b == a {
			b = (a + 1) % c
		}
		addBoth(pops[i], core[a], 5)
		addBoth(pops[i], core[b], 6)
	}

	edge := pops
	if opts.EdgeRouters > 0 && opts.EdgeRouters < len(pops) {
		rng := rand.New(rand.NewSource(opts.Seed))
		perm := rng.Perm(len(pops))
		edge = make([]topology.RouterID, 0, opts.EdgeRouters)
		for _, i := range perm[:opts.EdgeRouters] {
			edge = append(edge, pops[i])
		}
	}
	return synthesize(net, edge, SynthOpts{Protection: true, Services: opts.Services})
}
