package gen

import (
	"fmt"
	"math/rand"

	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// nordCity is a point of presence of the synthetic NORDUnet-style network.
type nordCity struct {
	name     string
	lat, lng float64
}

// nordCities are 31 PoPs loosely following NORDUnet's European/Nordic
// footprint (the real snapshot is proprietary; DESIGN.md §3 documents the
// substitution).
var nordCities = []nordCity{
	{"cph1", 55.68, 12.57}, {"cph2", 55.63, 12.65}, {"sto1", 59.33, 18.06},
	{"sto2", 59.30, 18.10}, {"osl1", 59.91, 10.75}, {"osl2", 59.95, 10.80},
	{"hel1", 60.17, 24.94}, {"hel2", 60.22, 25.00}, {"rey1", 64.15, -21.94},
	{"tro1", 69.65, 18.95}, {"trd1", 63.43, 10.39}, {"got1", 57.71, 11.97},
	{"mal1", 55.60, 13.00}, {"aar1", 56.16, 10.20}, {"aal1", 57.05, 9.92},
	{"ode1", 55.40, 10.39}, {"tam1", 61.50, 23.76}, {"tur1", 60.45, 22.26},
	{"ber1", 52.52, 13.40}, {"ham1", 53.55, 9.99}, {"ams1", 52.37, 4.90},
	{"ams2", 52.31, 4.94}, {"lon1", 51.51, -0.13}, {"lon2", 51.50, -0.08},
	{"gen1", 46.20, 6.14}, {"fra1", 50.11, 8.68}, {"par1", 48.86, 2.35},
	{"bru1", 50.85, 4.35}, {"pra1", 50.08, 14.44}, {"war1", 52.23, 21.01},
	{"tal1", 59.44, 24.75},
}

// nordBackbone lists the physical adjacencies (each becomes two directed
// links): a Nordic ring plus continental meshing, giving alternative paths
// everywhere so fast-reroute tunnels exist for every core link.
var nordBackbone = [][2]int{
	{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 6}, {4, 5}, {4, 10},
	{5, 2}, {6, 7}, {6, 16}, {7, 30}, {8, 22}, {8, 4}, {9, 10}, {10, 4},
	{11, 4}, {11, 2}, {12, 0}, {12, 11}, {13, 14}, {13, 15}, {14, 0},
	{15, 0}, {16, 17}, {17, 6}, {18, 19}, {18, 28}, {19, 0}, {19, 20},
	{20, 21}, {20, 22}, {21, 25}, {22, 23}, {22, 26}, {23, 25}, {24, 25},
	{24, 26}, {25, 18}, {26, 27}, {27, 20}, {28, 29}, {29, 30}, {30, 6},
	{9, 2}, {8, 0}, {13, 12}, {15, 13}, {1, 14}, {5, 11}, {3, 16},
}

// NordOpts parameterises the NORDUnet-style network.
type NordOpts struct {
	// Services is the number of service-label chains per edge pair. The
	// paper's snapshot has >250,000 rules; with all 31 PoPs as edge
	// routers (EdgeRouters = 31), Services ≈ 70 reaches that regime (see
	// NumRules on the result). Benchmarks use a smaller value, recorded in
	// EXPERIMENTS.md.
	Services int
	// EdgeRouters bounds the provider-edge count (0 = 12; use 31 for the
	// full-size snapshot).
	EdgeRouters int
	Seed        int64
}

// Nordunet builds the 31-router operator network with LSPs, fast-reroute
// protection and NORDUnet-style service labels.
func Nordunet(opts NordOpts) *Synth {
	if opts.EdgeRouters == 0 {
		opts.EdgeRouters = 12
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	net := network.New("nordunet")
	g := net.Topo
	ids := make([]topology.RouterID, len(nordCities))
	for i, c := range nordCities {
		ids[i] = g.AddRouter(c.name)
		g.SetLocation(ids[i], c.lat, c.lng)
	}
	for i, ab := range nordBackbone {
		a, b := ab[0], ab[1]
		w := geoWeight(nordCities[a], nordCities[b])
		// Interface names carry the adjacency index: the backbone contains
		// parallel circuits between some PoP pairs, as real WANs do.
		g.MustAddLink(ids[a], ids[b],
			fmt.Sprintf("ae%d-%s", i, nordCities[b].name),
			fmt.Sprintf("ae%d-%s", i, nordCities[a].name), w)
		g.MustAddLink(ids[b], ids[a],
			fmt.Sprintf("be%d-%s", i, nordCities[a].name),
			fmt.Sprintf("be%d-%s", i, nordCities[b].name), w)
	}
	perm := rng.Perm(len(ids))
	edge := make([]topology.RouterID, 0, opts.EdgeRouters)
	for _, i := range perm[:opts.EdgeRouters] {
		edge = append(edge, ids[i])
	}
	return synthesize(net, edge, SynthOpts{Protection: true, Services: opts.Services})
}

// geoWeight converts a rough geographic distance into a link weight
// (latency proxy, in tenths of milliseconds).
func geoWeight(a, b nordCity) uint64 {
	dl := a.lat - b.lat
	dg := (a.lng - b.lng) * 0.55 // crude latitude correction
	d2 := dl*dl + dg*dg
	w := uint64(1 + d2)
	if w > 200 {
		w = 200
	}
	return w
}
