package gen

import (
	"fmt"
	"math/rand"

	"aalwines/internal/topology"
)

// QueryKind classifies the generated query families, mirroring the shapes
// of Table 1 and the running example.
type QueryKind uint8

const (
	// QReach: ⟨ip⟩ [.#Rs] ·* [Rt#.] ⟨ip⟩ k — plain reachability.
	QReach QueryKind = iota
	// QTunnelReach: ⟨smpls ip⟩ [·#Rs] ·* [·#Rt] ⟨smpls ip⟩ k — reachability
	// inside a tunnel (rows 1–2 of Table 1).
	QTunnelReach
	// QWaypoint: ⟨[svc] ip⟩ [·#Rs] ·* [·#Rw] ·* [·#Rt] ⟨ip⟩ k — service
	// traffic through a waypoint (rows 4–5 of Table 1).
	QWaypoint
	// QTransparency: ⟨svc ip⟩ [.#Rs] ·* [Rt#.] ⟨mpls+ smpls ip⟩ k — does
	// the network leak internal labels (φ3 of the running example)?
	QTransparency
	// QAnyTunnel: ⟨smpls? ip⟩ ·* ⟨· smpls ip⟩ 0 — the unspecific, expensive
	// last row of Table 1.
	QAnyTunnel
	// QDoubleBackup forces the path through the first hop of two distinct
	// fast-reroute detours: every witness needs two failed links, so at
	// k=1 the over-approximation proposes infeasible witnesses and the
	// under-approximation decides (the 0.57%-inconclusive regime of §5).
	QDoubleBackup
	numQueryKinds
)

// String names the query kind.
func (k QueryKind) String() string {
	switch k {
	case QReach:
		return "reach"
	case QTunnelReach:
		return "tunnel-reach"
	case QWaypoint:
		return "waypoint"
	case QTransparency:
		return "transparency"
	case QAnyTunnel:
		return "any-tunnel"
	case QDoubleBackup:
		return "double-backup"
	default:
		return fmt.Sprintf("kind-%d", uint8(k))
	}
}

// GenQuery is a generated query with its metadata.
type GenQuery struct {
	Kind QueryKind
	Text string
	K    int
}

// Queries generates count queries over the synthesised network, cycling
// through the query families with randomised endpoints and failure bounds
// (k ∈ {0,1,2}), deterministically from the seed.
func (s *Synth) Queries(count int, seed int64) []GenQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]GenQuery, 0, count)
	g := s.Net.Topo
	// Core routers (everything that is not an external stub).
	var core []topology.RouterID
	for i := range g.Routers {
		if len(g.Routers[i].Name) < 2 || g.Routers[i].Name[:2] != "X-" {
			core = append(core, topology.RouterID(i))
		}
	}
	edgeName := func(i int) string { return g.Routers[s.Edge[i]].Name }
	coreName := func(i int) string { return g.Routers[core[i]].Name }
	for len(out) < count {
		kind := QueryKind(len(out) % int(numQueryKinds))
		k := rng.Intn(3)
		a := rng.Intn(len(s.Edge))
		b := rng.Intn(len(s.Edge))
		for b == a && len(s.Edge) > 1 {
			b = rng.Intn(len(s.Edge))
		}
		ca := rng.Intn(len(core))
		cb := rng.Intn(len(core))
		backups := s.backupHops()
		var text string
		switch kind {
		case QReach:
			text = fmt.Sprintf("<ip> [.#%s] .* [.#%s] <ip> %d", edgeName(a), edgeName(b), k)
		case QTunnelReach:
			text = fmt.Sprintf("<smpls ip> [.#%s] .* [.#%s] <(mpls* smpls)? ip> %d", coreName(ca), coreName(cb), k)
		case QWaypoint:
			text = fmt.Sprintf("<smpls ip> [.#%s] .* [.#%s] .* [.#%s] <. ip> %d",
				edgeName(a), coreName(ca), edgeName(b), k)
		case QTransparency:
			text = fmt.Sprintf("<smpls ip> [.#%s] .* [%s#.] <mpls+ smpls ip> %d", coreName(ca), coreName(cb), k)
		case QAnyTunnel:
			text = "<smpls? ip> .* <. smpls ip> 0"
		case QDoubleBackup:
			if len(backups) < 2 {
				continue // unprotected network: skip this family
			}
			h1 := backups[rng.Intn(len(backups))]
			h2 := backups[rng.Intn(len(backups))]
			if h1 == h2 {
				continue
			}
			kk := 1 + rng.Intn(2)
			text = fmt.Sprintf("<smpls? ip> .* [%s] .* [%s] .* <. ip> %d", h1, h2, kk)
			k = kk
		}
		out = append(out, GenQuery{Kind: kind, Text: text, K: k})
	}
	return out
}

// backupHops returns "u#v" link atoms for the first hop of every
// fast-reroute detour (the outgoing link of a priority-2 entry), in
// deterministic order.
func (s *Synth) backupHops() []string {
	g := s.Net.Topo
	seen := map[string]bool{}
	var out []string
	for _, key := range s.Net.Routing.Keys() {
		gs := s.Net.Routing.Lookup(key.In, key.Top)
		if len(gs) < 2 {
			continue
		}
		for _, e := range gs[1].Entries {
			l := g.Links[e.Out]
			atom := g.Routers[l.From].Name + "#" + g.Routers[l.To].Name
			if !seen[atom] {
				seen[atom] = true
				out = append(out, atom)
			}
		}
	}
	return out
}

// Table1Queries returns the six query shapes of Table 1 instantiated on the
// synthesised NORDUnet-style network. Endpoints are chosen along a real LSP
// path (the longest one from the first edge router) so the satisfiable /
// unsatisfiable mix resembles the operator's queries: tunnel reachability
// between transit routers, plain reachability, service waypointing with and
// without a failure budget, and the expensive unconstrained tunnel query.
func (s *Synth) Table1Queries() []GenQuery {
	g := s.Net.Topo
	name := func(r topology.RouterID) string { return g.Routers[r].Name }

	// Longest LSP path from the first edge router.
	src := s.Edge[0]
	tree := g.ShortestPathsFrom(src)
	var dst topology.RouterID = topology.NoRouter
	var path []topology.LinkID
	for _, d := range s.Edge {
		if d == src {
			continue
		}
		if p := tree.To(d); len(p) > len(path) {
			path, dst = p, d
		}
	}
	// Transit routers at one and two thirds of the path.
	mid1, mid2 := src, dst
	if len(path) >= 3 {
		mid1 = g.Target(path[len(path)/3])
		mid2 = g.Target(path[2*len(path)/3])
	}

	// A service chain and the middle router of its path.
	svc := "smpls"
	sSrc, sDst, sMid := src, dst, mid1
	if len(s.ServiceIn) > 0 {
		sv := s.ServiceIn[0]
		svc = "[" + s.Net.Labels.Name(sv.In) + "]"
		sSrc, sDst = sv.Src, sv.Dst
		if p := g.ShortestPathsFrom(sSrc).To(sDst); len(p) >= 2 {
			sMid = g.Target(p[len(p)/2])
		}
	}

	return []GenQuery{
		{Kind: QTunnelReach, K: 1, Text: fmt.Sprintf(
			"<smpls ip> [.#%s] .* [.#%s] <smpls ip> 1", name(mid1), name(mid2))},
		{Kind: QTunnelReach, K: 1, Text: fmt.Sprintf(
			"<smpls ip> [.#%s] .* [.#%s] <(mpls* smpls)? ip> 1", name(mid1), name(dst))},
		{Kind: QReach, K: 0, Text: fmt.Sprintf(
			"<ip> [.#%s] .* [.#%s] <ip> 0", name(src), name(dst))},
		{Kind: QWaypoint, K: 0, Text: fmt.Sprintf(
			"<%s ip> [.#%s] .* [.#%s] .* [.#%s] <. ip> 0",
			svc, name(sSrc), name(sMid), name(sDst))},
		{Kind: QWaypoint, K: 1, Text: fmt.Sprintf(
			"<%s ip> [.#%s] .* [.#%s] .* [.#%s] <. ip> 1",
			svc, name(sSrc), name(sMid), name(sDst))},
		{Kind: QAnyTunnel, K: 0, Text: "<smpls? ip> .* <. smpls ip> 0"},
	}
}
