// Package gen constructs MPLS networks for examples, tests and benchmarks:
// the paper's running example (Figure 1), a NORDUnet-style operator network
// and an Internet-Topology-Zoo-style family of synthetic wide-area
// networks with label-switched paths and fast-failover protection, plus the
// query workloads used in the performance evaluation (§5).
//
// The operator snapshot and the Topology Zoo dataset are not available in
// this reproduction; DESIGN.md §3 documents how these generators substitute
// for them.
package gen

import (
	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// RunningExampleNet bundles the Figure 1 network with handles to its
// routers, links and labels so tests and examples can refer to them by the
// paper's names (v0..v4, e0..e7, s20, ip1, ...).
type RunningExampleNet struct {
	*network.Network
	Routers map[string]topology.RouterID
	Links   map[string]topology.LinkID
	L       map[string]labels.ID
}

// RunningExample builds the five-router network of Figure 1 with the exact
// routing table of Figure 1b, including the priority-2 protection of link
// e4 at router v2.
func RunningExample() *RunningExampleNet {
	n := network.New("running-example")
	r := map[string]topology.RouterID{}
	for _, name := range []string{"vsrc", "v0", "v1", "v2", "v3", "v4", "vdst"} {
		r[name] = n.Topo.AddRouter(name)
	}
	// Figure 1a: e0 enters v0 from outside; e7 leaves v3 to the outside.
	// We model the outside by explicit edge routers vsrc and vdst.
	add := func(name string, from, to string) topology.LinkID {
		return n.Topo.MustAddLink(r[from], r[to], "o"+name, "i"+name, 1)
	}
	l := map[string]topology.LinkID{
		"e0": add("e0", "vsrc", "v0"),
		"e1": add("e1", "v0", "v2"),
		"e2": add("e2", "v0", "v1"),
		"e3": add("e3", "v1", "v3"),
		"e4": add("e4", "v2", "v3"),
		"e5": add("e5", "v2", "v4"),
		"e6": add("e6", "v4", "v3"),
		"e7": add("e7", "v3", "vdst"),
	}
	lb := map[string]labels.ID{}
	for _, name := range []string{"30"} {
		lb[name] = n.Labels.MustIntern(name, labels.MPLS)
	}
	for _, name := range []string{"s10", "s11", "s20", "s21", "s40", "s41", "s42", "s43", "s44"} {
		lb[name] = n.Labels.MustIntern(name, labels.BottomMPLS)
	}
	lb["ip1"] = n.Labels.MustIntern("ip1", labels.IP)

	rt := n.Routing
	e := func(out string, ops ...routing.Op) routing.Entry {
		return routing.Entry{Out: l[out], Ops: ops}
	}
	// Figure 1b, row by row.
	rt.MustAdd(l["e0"], lb["ip1"], 1, e("e1", routing.Push(lb["s20"])))
	rt.MustAdd(l["e0"], lb["ip1"], 1, e("e2", routing.Push(lb["s10"])))
	rt.MustAdd(l["e0"], lb["s40"], 1, e("e1", routing.Swap(lb["s41"])))
	rt.MustAdd(l["e2"], lb["s10"], 1, e("e3", routing.Swap(lb["s11"])))
	rt.MustAdd(l["e1"], lb["s20"], 1, e("e4", routing.Swap(lb["s21"])))
	rt.MustAdd(l["e1"], lb["s41"], 1, e("e5", routing.Swap(lb["s42"])))
	rt.MustAdd(l["e1"], lb["s20"], 2, e("e5", routing.Swap(lb["s21"]), routing.Push(lb["30"])))
	rt.MustAdd(l["e3"], lb["s11"], 1, e("e7", routing.Pop()))
	rt.MustAdd(l["e4"], lb["s21"], 1, e("e7", routing.Pop()))
	rt.MustAdd(l["e6"], lb["s43"], 1, e("e7", routing.Swap(lb["s44"])))
	rt.MustAdd(l["e6"], lb["s21"], 1, e("e7", routing.Pop()))
	rt.MustAdd(l["e5"], lb["30"], 1, e("e6", routing.Pop()))
	rt.MustAdd(l["e5"], lb["s42"], 1, e("e6", routing.Swap(lb["s43"])))

	return &RunningExampleNet{Network: n, Routers: r, Links: l, L: lb}
}

// Trace builds a network.Trace from alternating link names and headers
// given as label-name slices, e.g. Trace("e0", []string{"ip1"}, "e1",
// []string{"s20","ip1"}).
func (re *RunningExampleNet) Trace(pairs ...interface{}) network.Trace {
	var tr network.Trace
	for i := 0; i < len(pairs); i += 2 {
		link := re.Links[pairs[i].(string)]
		names := pairs[i+1].([]string)
		h := make(labels.Header, len(names))
		for j, nm := range names {
			h[j] = re.L[nm]
		}
		tr = append(tr, network.Step{Link: link, Header: h})
	}
	return tr
}

// Sigma returns the paper's example traces σ0..σ3 from Figure 1c.
func (re *RunningExampleNet) Sigma(i int) network.Trace {
	switch i {
	case 0:
		return re.Trace(
			"e0", []string{"ip1"},
			"e1", []string{"s20", "ip1"},
			"e4", []string{"s21", "ip1"},
			"e7", []string{"ip1"})
	case 1:
		return re.Trace(
			"e0", []string{"ip1"},
			"e2", []string{"s10", "ip1"},
			"e3", []string{"s11", "ip1"},
			"e7", []string{"ip1"})
	case 2:
		return re.Trace(
			"e0", []string{"ip1"},
			"e1", []string{"s20", "ip1"},
			"e5", []string{"30", "s21", "ip1"},
			"e6", []string{"s21", "ip1"},
			"e7", []string{"ip1"})
	case 3:
		return re.Trace(
			"e0", []string{"s40", "ip1"},
			"e1", []string{"s41", "ip1"},
			"e5", []string{"s42", "ip1"},
			"e6", []string{"s43", "ip1"},
			"e7", []string{"s44", "ip1"})
	default:
		panic("gen: no such sigma")
	}
}
