package gen

import (
	"testing"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/topology"
)

func TestRunningExampleShape(t *testing.T) {
	re := RunningExample()
	if got := re.Topo.NumRouters(); got != 7 {
		t.Errorf("routers = %d, want 7 (5 core + 2 stubs)", got)
	}
	if got := re.Topo.NumLinks(); got != 8 {
		t.Errorf("links = %d, want 8", got)
	}
	if got := re.Routing.NumRules(); got != 13 {
		t.Errorf("rules = %d, want 13 (Figure 1b)", got)
	}
}

func TestSigmaTracesWellFormed(t *testing.T) {
	re := RunningExample()
	for i := 0; i <= 3; i++ {
		tr := re.Sigma(i)
		for j, s := range tr {
			if !s.Header.Valid(re.Labels) {
				t.Errorf("sigma%d step %d: invalid header", i, j)
			}
		}
	}
}

func TestZooDeterministic(t *testing.T) {
	a := Zoo(ZooOpts{Routers: 20, Seed: 5, Protection: true})
	b := Zoo(ZooOpts{Routers: 20, Seed: 5, Protection: true})
	if a.Net.Routing.NumRules() != b.Net.Routing.NumRules() {
		t.Fatalf("same seed, different rule counts: %d vs %d",
			a.Net.Routing.NumRules(), b.Net.Routing.NumRules())
	}
	if a.Net.Topo.NumLinks() != b.Net.Topo.NumLinks() {
		t.Fatal("same seed, different topologies")
	}
	c := Zoo(ZooOpts{Routers: 20, Seed: 6, Protection: true})
	if a.Net.Topo.NumLinks() == c.Net.Topo.NumLinks() &&
		a.Net.Routing.NumRules() == c.Net.Routing.NumRules() {
		t.Log("seeds 5 and 6 coincide in size (unlikely but possible)")
	}
}

func TestZooConnectivityAndLSPs(t *testing.T) {
	s := Zoo(ZooOpts{Routers: 30, Seed: 1, Protection: true})
	g := s.Net.Topo
	// Every ordered edge pair must have an LSP: ingress rule present.
	for _, src := range s.Edge {
		for _, dst := range s.Edge {
			if src == dst {
				continue
			}
			gs := s.Net.Routing.Lookup(s.ExtIn[src], s.IPLabel[dst])
			if len(gs) == 0 {
				t.Fatalf("no ingress rule %s -> %s",
					g.Routers[src].Name, g.Routers[dst].Name)
			}
		}
	}
}

func TestZooProtectionAddsPriority2(t *testing.T) {
	prot := Zoo(ZooOpts{Routers: 30, Seed: 2, Protection: true})
	flat := Zoo(ZooOpts{Routers: 30, Seed: 2, Protection: false})
	if prot.Net.Routing.NumRules() <= flat.Net.Routing.NumRules() {
		t.Fatalf("protection did not add rules: %d vs %d",
			prot.Net.Routing.NumRules(), flat.Net.Routing.NumRules())
	}
	// At least one key must have a priority-2 group.
	found := false
	for _, key := range prot.Net.Routing.Keys() {
		if len(prot.Net.Routing.Lookup(key.In, key.Top)) > 1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no priority-2 group anywhere")
	}
}

// TestZooForwardingSimulation injects a packet at an ingress and checks it
// reaches the egress stub with the bare IP label.
func TestZooForwardingSimulation(t *testing.T) {
	s := Zoo(ZooOpts{Routers: 24, Seed: 3, Protection: true})
	src, dst := s.Edge[0], s.Edge[1]
	h := labels.Header{s.IPLabel[dst]}
	delivered := false
	s.Net.Enumerate(s.ExtIn[src], h, nil, 16, func(tr network.Trace) bool {
		last := tr[len(tr)-1]
		if last.Link == s.ExtOut[dst] && len(last.Header) == 1 &&
			last.Header[0] == s.IPLabel[dst] {
			delivered = true
			return false
		}
		return true
	})
	if !delivered {
		t.Fatal("packet not delivered to egress stub")
	}
}

// TestZooFailoverSimulation fails the first primary link of an LSP and
// checks the packet still arrives via the bypass tunnel.
func TestZooFailoverSimulation(t *testing.T) {
	s := Zoo(ZooOpts{Routers: 24, Seed: 3, Protection: true})
	src, dst := s.Edge[0], s.Edge[1]
	// Find the primary first link.
	gs := s.Net.Routing.Lookup(s.ExtIn[src], s.IPLabel[dst])
	if len(gs) < 2 || len(gs[1].Entries) == 0 {
		t.Skip("ingress hop has no protection on this seed")
	}
	primary := gs[0].Entries[0].Out
	f := network.FailedSet{primary: true}
	h := labels.Header{s.IPLabel[dst]}
	delivered := false
	s.Net.Enumerate(s.ExtIn[src], h, f, 20, func(tr network.Trace) bool {
		last := tr[len(tr)-1]
		if last.Link == s.ExtOut[dst] && len(last.Header) == 1 {
			delivered = true
			return false
		}
		return true
	})
	if !delivered {
		t.Fatal("failover did not deliver the packet")
	}
}

func TestNordunetShape(t *testing.T) {
	s := Nordunet(NordOpts{Services: 2, Seed: 1})
	if got := len(nordCities); got != 31 {
		t.Fatalf("city table has %d entries, want 31", got)
	}
	// 31 core routers + 12 stubs.
	if got := s.Net.Topo.NumRouters(); got != 31+12 {
		t.Errorf("routers = %d, want 43", got)
	}
	if len(s.ServiceIn) == 0 {
		t.Error("no service labels recorded")
	}
	// Every router must have a location for the GUI/Distance metric.
	for i := 0; i < 31; i++ {
		if !s.Net.Topo.Routers[i].HasLoc {
			t.Errorf("router %d has no location", i)
		}
	}
}

// TestNordunetRuleScaling checks that the Services knob reaches the paper's
// >250k rule regime.
func TestNordunetRuleScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("rule-scaling check skipped in -short mode")
	}
	small := Nordunet(NordOpts{Services: 1, Seed: 1})
	big := Nordunet(NordOpts{Services: 70, EdgeRouters: 31, Seed: 1})
	if big.Net.Routing.NumRules() <= small.Net.Routing.NumRules() {
		t.Fatal("Services knob does not scale rules")
	}
	if big.Net.Routing.NumRules() < 250000 {
		t.Errorf("Services=70/Edge=31 yields %d rules; want >250k (adjust knob)",
			big.Net.Routing.NumRules())
	}
}

func TestQueriesGeneration(t *testing.T) {
	s := Nordunet(NordOpts{Services: 1, Seed: 1})
	qs := s.Queries(25, 7)
	if len(qs) != 25 {
		t.Fatalf("got %d queries", len(qs))
	}
	kinds := map[QueryKind]int{}
	for _, q := range qs {
		kinds[q.Kind]++
		if q.Text == "" {
			t.Fatal("empty query text")
		}
	}
	if len(kinds) != int(numQueryKinds) {
		t.Errorf("only %d kinds generated", len(kinds))
	}
	// Determinism.
	qs2 := s.Queries(25, 7)
	for i := range qs {
		if qs[i].Text != qs2[i].Text {
			t.Fatal("query generation not deterministic")
		}
	}
}

func TestTable1Queries(t *testing.T) {
	s := Nordunet(NordOpts{Services: 1, Seed: 1})
	qs := s.Table1Queries()
	if len(qs) != 6 {
		t.Fatalf("got %d table-1 queries, want 6", len(qs))
	}
	for i, q := range qs {
		if q.Text == "" {
			t.Errorf("query %d empty", i)
		}
	}
}

func TestZooSizes(t *testing.T) {
	sizes := ZooSizes(50, 42)
	if len(sizes) != 50 {
		t.Fatal("wrong count")
	}
	sum, max := 0, 0
	for _, s := range sizes {
		if s < 10 || s > 240 {
			t.Fatalf("size %d out of range", s)
		}
		sum += s
		if s > max {
			max = s
		}
	}
	mean := sum / len(sizes)
	if mean < 40 || mean > 140 {
		t.Errorf("mean size %d far from the paper's ≈84", mean)
	}
	if max != 240 {
		t.Errorf("max size %d, want 240", max)
	}
}

func TestBypassAvoidsProtectedLink(t *testing.T) {
	s := Zoo(ZooOpts{Routers: 20, Seed: 9, Protection: true})
	g := s.Net.Topo
	// For every priority-2 entry, simulate the bypass label chain and check
	// it never traverses the protected link.
	for _, key := range s.Net.Routing.Keys() {
		gs := s.Net.Routing.Lookup(key.In, key.Top)
		if len(gs) < 2 {
			continue
		}
		protected := gs[0].Entries[0].Out
		for _, e := range gs[1].Entries {
			if e.Out == protected {
				t.Errorf("backup for %v uses the protected link itself", key)
			}
		}
		_ = g
	}
}

func TestShortestAvoiding(t *testing.T) {
	n := network.New("t")
	g := n.Topo
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	c := g.AddRouter("c")
	ab := g.MustAddLink(a, b, "", "", 1)
	g.MustAddLink(a, c, "", "", 1)
	g.MustAddLink(c, b, "", "", 1)
	path := shortestAvoiding(g, a, b, ab)
	if len(path) != 2 {
		t.Fatalf("avoiding path = %v, want 2 hops via c", path)
	}
	for _, l := range path {
		if l == ab {
			t.Fatal("path uses avoided link")
		}
	}
	// No alternative: single link only.
	n2 := network.New("t2")
	g2 := n2.Topo
	x := g2.AddRouter("x")
	y := g2.AddRouter("y")
	xy := g2.MustAddLink(x, y, "", "", 1)
	if p := shortestAvoiding(g2, x, y, xy); p != nil {
		t.Fatalf("expected nil, got %v", p)
	}
}

func TestExternalLinksDistinct(t *testing.T) {
	s := Zoo(ZooOpts{Routers: 16, Seed: 4, Protection: false})
	seen := map[topology.LinkID]bool{}
	for _, r := range s.Edge {
		for _, l := range []topology.LinkID{s.ExtIn[r], s.ExtOut[r]} {
			if seen[l] {
				t.Fatal("duplicate external link")
			}
			seen[l] = true
		}
	}
}
