package gen

import (
	"fmt"
	"math/rand"

	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// FatTreeOpts parameterises the k-ary fat-tree family: the canonical
// three-tier Clos data-center fabric (Al-Fares et al., SIGCOMM 2008) with
// (k/2)² core switches, k pods of k/2 aggregation and k/2 edge (ToR)
// switches each. MPLS dataplane synthesis runs LSPs between the ToR
// switches, which act as provider edges; the massive path diversity of the
// fabric makes fast-reroute bypass tunnels exist for every core link, so
// the family stresses the protection machinery far harder than the WAN
// topologies do.
type FatTreeOpts struct {
	// K is the fat-tree arity; it must be even and ≥ 2 (default 4).
	// K=8 yields 80 switches (16 core, 32 aggregation, 32 ToR).
	K int
	// EdgeRouters bounds how many ToR switches carry LSPs (0 = all of
	// them, the paper-scale configuration).
	EdgeRouters int
	// Services is the number of service-label chains per edge pair.
	Services int
	Seed     int64
}

// FatTree builds the k-ary fat-tree with the standard MPLS dataplane
// (all-pairs LSPs between the selected ToR switches, fast-reroute
// protection, optional service chains).
func FatTree(opts FatTreeOpts) *Synth {
	k := opts.K
	if k == 0 {
		k = 4
	}
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("gen: fat-tree arity %d must be even and >= 2", k))
	}
	h := k / 2
	net := network.New(fmt.Sprintf("fattree-k%d", k))
	g := net.Topo

	// Core layer: h² switches, conceptually grouped in h groups of h.
	core := make([]topology.RouterID, h*h)
	for i := range core {
		core[i] = g.AddRouter(fmt.Sprintf("c%d", i))
		g.SetLocation(core[i], 56, float64(i))
	}
	// Pods: h aggregation and h edge switches each.
	agg := make([][]topology.RouterID, k)
	tor := make([][]topology.RouterID, k)
	linkSeq := 0
	addBoth := func(a, b topology.RouterID) {
		// Interface names carry a sequence number so every directed link
		// gets a distinct interface on both routers.
		linkSeq++
		g.MustAddLink(a, b, fmt.Sprintf("dn%d", linkSeq), fmt.Sprintf("up%d", linkSeq), 1)
		g.MustAddLink(b, a, fmt.Sprintf("ur%d", linkSeq), fmt.Sprintf("dr%d", linkSeq), 1)
	}
	for p := 0; p < k; p++ {
		agg[p] = make([]topology.RouterID, h)
		tor[p] = make([]topology.RouterID, h)
		for i := 0; i < h; i++ {
			agg[p][i] = g.AddRouter(fmt.Sprintf("a%d-%d", p, i))
			g.SetLocation(agg[p][i], 54, float64(p*h+i))
		}
		for i := 0; i < h; i++ {
			tor[p][i] = g.AddRouter(fmt.Sprintf("e%d-%d", p, i))
			g.SetLocation(tor[p][i], 52, float64(p*h+i))
		}
		// Full bipartite ToR ↔ aggregation inside the pod.
		for i := 0; i < h; i++ {
			for j := 0; j < h; j++ {
				addBoth(tor[p][i], agg[p][j])
			}
		}
		// Aggregation switch j uplinks to core group j.
		for j := 0; j < h; j++ {
			for m := 0; m < h; m++ {
				addBoth(agg[p][j], core[j*h+m])
			}
		}
	}

	// Provider edges: the ToR switches, optionally subsampled.
	all := make([]topology.RouterID, 0, k*h)
	for p := 0; p < k; p++ {
		all = append(all, tor[p]...)
	}
	edge := all
	if opts.EdgeRouters > 0 && opts.EdgeRouters < len(all) {
		rng := rand.New(rand.NewSource(opts.Seed))
		perm := rng.Perm(len(all))
		edge = make([]topology.RouterID, 0, opts.EdgeRouters)
		for _, i := range perm[:opts.EdgeRouters] {
			edge = append(edge, all[i])
		}
	}
	return synthesize(net, edge, SynthOpts{Protection: true, Services: opts.Services})
}
