package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// SynthOpts controls the MPLS dataplane synthesis used for the evaluation
// networks (§5): label-switched paths between every pair of edge routers
// along shortest paths, optional RSVP-style fast-reroute bypass tunnels
// (priority-2 groups that push a protection label around the protected
// link, with penultimate-hop popping), and optional NORDUnet-style service
// label chains.
type SynthOpts struct {
	// Protection adds a priority-2 fast-reroute entry for every protected
	// hop that has a bypass path.
	Protection bool
	// Services is the number of service-label chains synthesised per edge
	// router pair (0 for the Topology Zoo networks; large for the
	// NORDUnet-style network whose >250k rules are dominated by service
	// labels).
	Services int
}

// Synth is the result of dataplane synthesis: the network plus bookkeeping
// handles used by query generators.
type Synth struct {
	Net *network.Network
	// Edge lists the edge (provider-edge) routers, i.e. those with
	// external stub links.
	Edge []topology.RouterID
	// ExtIn / ExtOut map an edge router to its external ingress/egress
	// link.
	ExtIn  map[topology.RouterID]topology.LinkID
	ExtOut map[topology.RouterID]topology.LinkID
	// IPLabel maps an edge router to the IP destination label routed to it.
	IPLabel map[topology.RouterID]labels.ID
	// ServiceIn records the synthesised service chains (used to build
	// Table 1 style queries).
	ServiceIn []Service

	// pairT caches the first tunnel label per src/dst pair so the
	// per-service pairTunnel calls skip the name-concat lookup, and buf is
	// the scratch buffer label names are assembled in (the paper-scale
	// networks intern >10⁵ labels; building each name with fmt.Sprintf
	// dominated synthesis allocations).
	pairT map[string]labels.ID
	buf   []byte
}

// Service describes one synthesised service-label chain.
type Service struct {
	Src, Dst topology.RouterID
	// In is the ingress service label (arrives on top of the IP label).
	In labels.ID
}

// synthesize builds the MPLS dataplane on top of an existing core topology.
// Edge routers receive external stub routers ("X-<name>") with one ingress
// and one egress link each.
func synthesize(net *network.Network, edge []topology.RouterID, opts SynthOpts) *Synth {
	s := &Synth{
		Net:     net,
		Edge:    edge,
		ExtIn:   map[topology.RouterID]topology.LinkID{},
		ExtOut:  map[topology.RouterID]topology.LinkID{},
		IPLabel: map[topology.RouterID]labels.ID{},
		pairT:   map[string]labels.ID{},
	}
	g := net.Topo
	for _, r := range edge {
		name := g.Routers[r].Name
		stub := g.AddRouter("X-" + name)
		s.ExtIn[r] = g.MustAddLink(stub, r, "xo", "xi", 1)
		s.ExtOut[r] = g.MustAddLink(r, stub, "xe", "xr", 1)
		s.IPLabel[r] = net.Labels.MustIntern("ip_"+name, labels.IP)
	}

	// Shortest path trees from every edge router over the core (stubs are
	// reachable only via their edge router, so paths between cores never
	// detour through them: stubs have out-degree 1 back to their router).
	trees := map[topology.RouterID]*topology.PathTree{}
	for _, r := range edge {
		trees[r] = g.ShortestPathsFrom(r)
	}

	// Pre-size the routing key index and the label intern index from the
	// total LSP path length: each path hop contributes a bounded number of
	// keys and labels per LSP/service chain, so this lands within a small
	// factor of the final sizes and avoids incremental map growth at the
	// >250k-rule scale.
	totalHops := 0
	for _, src := range edge {
		for _, dst := range edge {
			if src != dst {
				totalHops += len(trees[src].To(dst))
			}
		}
	}
	net.Routing.Reserve(totalHops * (1 + opts.Services))
	net.Labels.Reserve(totalHops + len(edge)*len(edge)*3*opts.Services)

	// Per-link bypass tunnels, built on demand and shared by every LSP
	// protecting that link.
	bypass := map[topology.LinkID]*bypassTunnel{}

	for _, src := range edge {
		for _, dst := range edge {
			if src == dst {
				continue
			}
			path := trees[src].To(dst)
			if path == nil {
				continue
			}
			s.addLSP(src, dst, path, opts, bypass)
			for j := 0; j < opts.Services; j++ {
				s.addService(src, dst, path, j, opts, bypass)
			}
		}
	}
	s.mirrorBypassArrivals(bypass)
	return s
}

// mirrorBypassArrivals copies, for every protected link L with a bypass
// tunnel ending in link f, the routing entries keyed (L, x) to (f, x): a
// packet that detours around L arrives at the same router over f carrying
// the same top label, and must be forwarded as if it had arrived over L
// (cf. router v3's entries for the bypass arrival link e6 in Figure 1b).
func (s *Synth) mirrorBypassArrivals(bypass map[topology.LinkID]*bypassTunnel) {
	rt := s.Net.Routing
	// Plan against a snapshot and apply in deterministic order, so chained
	// mirrors do not depend on map iteration order.
	links := make([]topology.LinkID, 0, len(bypass))
	for l, bt := range bypass {
		if bt != nil && bt.lastLink != l {
			links = append(links, l)
		}
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	type planned struct {
		link topology.LinkID
		top  labels.ID
		prio int
		e    routing.Entry
	}
	var plan []planned
	for _, l := range links {
		bt := bypass[l]
		for _, top := range rt.TopLabelsFor(l) {
			for pr, grp := range rt.Lookup(l, top) {
				for _, e := range grp.Entries {
					plan = append(plan, planned{bt.lastLink, top, pr + 1, e})
				}
			}
		}
	}
	for _, p := range plan {
		dst := rt.Lookup(p.link, p.top)
		if p.prio-1 < len(dst) && hasEntry(dst[p.prio-1], p.e) {
			continue
		}
		rt.MustAdd(p.link, p.top, p.prio, p.e)
	}
}

func hasEntry(g routing.Group, e routing.Entry) bool {
	for _, x := range g.Entries {
		if x.Out != e.Out || len(x.Ops) != len(e.Ops) {
			continue
		}
		same := true
		for i := range x.Ops {
			if x.Ops[i] != e.Ops[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// addLSP installs the label-switched path for IP traffic from src to dst,
// with penultimate-hop popping (PHP): the router before the egress pops the
// LSP label, so packets arrive at the egress with the bare IP label.
func (s *Synth) addLSP(src, dst topology.RouterID, path []topology.LinkID, opts SynthOpts, bypass map[topology.LinkID]*bypassTunnel) {
	net := s.Net
	name := fmt.Sprintf("lsp_%s_%s", net.Topo.Routers[src].Name, net.Topo.Routers[dst].Name)
	m := len(path)
	ipl := s.IPLabel[dst]
	if m == 1 {
		// Adjacent pair: plain IP forwarding, no label switching.
		s.addOnce(s.ExtIn[src], ipl, 1, routing.Entry{Out: path[0]})
		s.addOnce(path[0], ipl, 1, routing.Entry{Out: s.ExtOut[dst]})
		return
	}
	// Hop labels ℓ1..ℓ(m-1): bottom-of-stack labels over the IP label.
	hop := make([]labels.ID, m-1)
	for i := range hop {
		hop[i] = net.Labels.MustIntern(fmt.Sprintf("s%s_%d", name, i+1), labels.BottomMPLS)
	}
	// Ingress: push ℓ1 toward path[0].
	s.addProtected(s.ExtIn[src], ipl, path[0],
		routing.Ops{routing.Push(hop[0])}, opts, bypass)
	// Core swaps up to the penultimate hop.
	for i := 1; i < m-1; i++ {
		s.addProtected(path[i-1], hop[i-1], path[i],
			routing.Ops{routing.Swap(hop[i])}, opts, bypass)
	}
	// PHP: pop before the last hop (pops cannot be tunnel-protected: the
	// revealed IP label cannot carry a bypass label).
	s.addProtected(path[m-2], hop[m-2], path[m-1], routing.Ops{routing.Pop()}, opts, bypass)
	// Egress: the packet arrives with the bare IP label and leaves.
	s.addOnce(path[m-1], ipl, 1, routing.Entry{Out: s.ExtOut[dst]})
}

// addService installs a NORDUnet-style service chain from src to dst: the
// packet arrives with a service label on top of the IP label, is swapped to
// a transit service label, tunnelled through a per-pair LSP tunnel of plain
// MPLS labels (so the label stack reaches depth three: tunnel ∘ service ∘
// IP), and leaves with a different service label (cf. s40 → s44 in the
// running example).
func (s *Synth) addService(src, dst topology.RouterID, path []topology.LinkID, j int, opts SynthOpts, bypass map[topology.LinkID]*bypassTunnel) {
	net := s.Net
	m := len(path)
	pair := net.Topo.Routers[src].Name + "_" + net.Topo.Routers[dst].Name
	// Service label names ("$<num><role><pair>") are assembled in the
	// shared scratch buffer: this runs pairs × Services × 3 times, the
	// hottest interning loop of paper-scale synthesis.
	mk := func(role byte) labels.ID {
		b := append(s.buf[:0], '$')
		b = strconv.AppendInt(b, int64(400000+j*7), 10)
		b = append(b, role)
		b = append(b, pair...)
		s.buf = b
		return net.Labels.MustInternBytes(b, labels.BottomMPLS)
	}
	in, transit, out := mk('a'), mk('w'), mk('b')
	if j == 0 {
		s.ServiceIn = append(s.ServiceIn, Service{Src: src, Dst: dst, In: in})
	}
	if m == 1 {
		// Adjacent pair: swap chain without a tunnel.
		s.addOnce(s.ExtIn[src], in, 1, routing.Entry{Out: path[0], Ops: routing.Ops{routing.Swap(transit)}})
		s.addOnce(path[0], transit, 1, routing.Entry{Out: s.ExtOut[dst], Ops: routing.Ops{routing.Swap(out)}})
		return
	}
	t1 := s.pairTunnel(pair, path, opts, bypass)
	// Ingress: swap to the transit label and push the tunnel label.
	s.addProtected(s.ExtIn[src], in, path[0],
		routing.Ops{routing.Swap(transit), routing.Push(t1)}, opts, bypass)
	// Egress: the tunnel label was popped at the penultimate hop; the
	// packet arrives with the transit label and leaves re-labelled.
	s.addOnce(path[m-1], transit, 1,
		routing.Entry{Out: s.ExtOut[dst], Ops: routing.Ops{routing.Swap(out)}})
}

// pairTunnel builds (once per src/dst pair) the shared LSP tunnel of plain
// MPLS labels along the path, with PHP popping, and returns the first
// tunnel label. Requires len(path) ≥ 2.
func (s *Synth) pairTunnel(pair string, path []topology.LinkID, opts SynthOpts, bypass map[topology.LinkID]*bypassTunnel) labels.ID {
	if first, ok := s.pairT[pair]; ok {
		return first // already built
	}
	net := s.Net
	m := len(path)
	tun := make([]labels.ID, m-1)
	for i := range tun {
		tun[i] = net.Labels.MustIntern(fmt.Sprintf("T%s_%d", pair, i+1), labels.MPLS)
	}
	for i := 1; i < m-1; i++ {
		s.addProtected(path[i-1], tun[i-1], path[i],
			routing.Ops{routing.Swap(tun[i])}, opts, bypass)
	}
	s.addProtected(path[m-2], tun[m-2], path[m-1], routing.Ops{routing.Pop()}, opts, bypass)
	s.pairT[pair] = tun[0]
	return tun[0]
}

// addOnce adds an entry unless an identical one already exists at that key
// and priority (shared egress rules are emitted once per destination).
func (s *Synth) addOnce(in topology.LinkID, top labels.ID, prio int, e routing.Entry) {
	gs := s.Net.Routing.Lookup(in, top)
	if prio-1 < len(gs) && hasEntry(gs[prio-1], e) {
		return
	}
	s.Net.Routing.MustAdd(in, top, prio, e)
}

// addProtected installs a priority-1 entry and, when enabled and possible,
// a priority-2 fast-reroute entry that tunnels around the primary link.
func (s *Synth) addProtected(in topology.LinkID, top labels.ID, out topology.LinkID, ops routing.Ops, opts SynthOpts, bypass map[topology.LinkID]*bypassTunnel) {
	s.addOnce(in, top, 1, routing.Entry{Out: out, Ops: ops})
	if !opts.Protection {
		return
	}
	for _, op := range ops {
		if op.Kind == routing.OpPop {
			// A pop may reveal an IP label, on which no bypass label can
			// be pushed; PHP hops stay unprotected (as in real FRR).
			return
		}
	}
	bt := s.bypassFor(out, bypass)
	if bt == nil {
		return
	}
	backupOps := append(append(routing.Ops{}, ops...), routing.Push(bt.firstLabel))
	s.addOnce(in, top, 2, routing.Entry{Out: bt.firstLink, Ops: backupOps})
}

// bypassTunnel is a shared per-link protection tunnel: a path around the
// link with a swap chain of plain MPLS labels and penultimate-hop popping.
type bypassTunnel struct {
	firstLink  topology.LinkID
	firstLabel labels.ID
	lastLink   topology.LinkID
}

// bypassFor returns (building on demand) the bypass tunnel around link l,
// or nil if no alternative path exists.
func (s *Synth) bypassFor(l topology.LinkID, bypass map[topology.LinkID]*bypassTunnel) *bypassTunnel {
	if bt, ok := bypass[l]; ok {
		return bt
	}
	net := s.Net
	g := net.Topo
	path := shortestAvoiding(g, g.Source(l), g.Target(l), l)
	if path == nil || len(path) < 2 {
		bypass[l] = nil
		return nil
	}
	m := len(path)
	labelsChain := make([]labels.ID, m-1)
	for i := range labelsChain {
		labelsChain[i] = net.Labels.MustIntern(fmt.Sprintf("byp_%d_%d", l, i+1), labels.MPLS)
	}
	// Swap chain with PHP: the router before the last hop pops.
	for i := 1; i < m-1; i++ {
		net.Routing.MustAdd(path[i-1], labelsChain[i-1], 1,
			routing.Entry{Out: path[i], Ops: routing.Ops{routing.Swap(labelsChain[i])}})
	}
	net.Routing.MustAdd(path[m-2], labelsChain[m-2], 1,
		routing.Entry{Out: path[m-1], Ops: routing.Ops{routing.Pop()}})
	bt := &bypassTunnel{firstLink: path[0], firstLabel: labelsChain[0], lastLink: path[m-1]}
	bypass[l] = bt
	return bt
}

// shortestAvoiding computes a shortest path from a to b that does not use
// link avoid; nil when none exists.
func shortestAvoiding(g *topology.Graph, a, b topology.RouterID, avoid topology.LinkID) []topology.LinkID {
	// Dijkstra with the avoided link masked out; small networks, so a
	// simple BFS-by-weight via repeated relaxation is sufficient.
	const inf = ^uint64(0)
	n := g.NumRouters()
	dist := make([]uint64, n)
	via := make([]topology.LinkID, n)
	for i := range dist {
		dist[i] = inf
		via[i] = topology.NoLink
	}
	dist[a] = 0
	for changed := true; changed; {
		changed = false
		for li := 0; li < g.NumLinks(); li++ {
			l := topology.LinkID(li)
			if l == avoid || g.Links[l].SelfLoop() {
				continue
			}
			w := g.Links[l].Weight
			if w == 0 {
				w = 1
			}
			from, to := g.Source(l), g.Target(l)
			if dist[from] != inf && dist[from]+w < dist[to] {
				dist[to] = dist[from] + w
				via[to] = l
				changed = true
			}
		}
	}
	if dist[b] == inf {
		return nil
	}
	var rev []topology.LinkID
	cur := b
	for cur != a {
		l := via[cur]
		if l == topology.NoLink {
			return nil
		}
		rev = append(rev, l)
		cur = g.Source(l)
	}
	out := make([]topology.LinkID, len(rev))
	for i, l := range rev {
		out[len(rev)-1-i] = l
	}
	return out
}

// Build synthesises the standard MPLS dataplane (LSPs between every pair of
// edge routers, optional fast-reroute protection and service chains) on an
// existing core topology — e.g. one imported from a Topology Zoo GML file.
// The edge routers must already exist in the topology; Build adds their
// external stub routers and the routing rules.
func Build(net *network.Network, edge []topology.RouterID, opts SynthOpts) *Synth {
	return synthesize(net, edge, opts)
}

// PickEdgeRouters deterministically selects count provider-edge routers
// from the topology (seeded sample over all routers); it is a convenience
// for imported topologies that carry no role annotations.
func PickEdgeRouters(net *network.Network, count int, seed int64) []topology.RouterID {
	n := net.Topo.NumRouters()
	if count > n {
		count = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]topology.RouterID, 0, count)
	for _, i := range perm[:count] {
		out = append(out, topology.RouterID(i))
	}
	return out
}
