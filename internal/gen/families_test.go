package gen

import (
	"testing"

	"aalwines/internal/labels"
	"aalwines/internal/network"
)

// ---- fat-tree -------------------------------------------------------------

func TestFatTreeShape(t *testing.T) {
	s := FatTree(FatTreeOpts{K: 4, Seed: 1})
	// k=4: 4 core + 8 aggregation + 8 ToR switches, plus one external stub
	// per ToR (all 8 ToRs are provider edges by default).
	if got := s.Net.Topo.NumRouters(); got != 20+8 {
		t.Errorf("routers = %d, want 28", got)
	}
	if got := len(s.Edge); got != 8 {
		t.Errorf("edge routers = %d, want 8", got)
	}
	// Fabric links: per pod h·h ToR-agg + h·h agg-core pairs, ×2 directed
	// each, ×2 for both orientations; k=4,h=2 → 4·(4+4)·2 = 64 directed
	// fabric links, plus 2 stub links per edge router.
	if got := s.Net.Topo.NumLinks(); got != 64+16 {
		t.Errorf("links = %d, want 80", got)
	}
}

func TestFatTreeDeterministic(t *testing.T) {
	a := FatTree(FatTreeOpts{K: 4, EdgeRouters: 5, Services: 2, Seed: 7})
	b := FatTree(FatTreeOpts{K: 4, EdgeRouters: 5, Services: 2, Seed: 7})
	if a.Net.Routing.NumRules() != b.Net.Routing.NumRules() {
		t.Fatalf("same seed, different rule counts: %d vs %d",
			a.Net.Routing.NumRules(), b.Net.Routing.NumRules())
	}
	if a.Net.Labels.Len() != b.Net.Labels.Len() {
		t.Fatal("same seed, different label tables")
	}
	c := FatTree(FatTreeOpts{K: 4, EdgeRouters: 5, Services: 2, Seed: 8})
	if edgeNames(a) == edgeNames(c) {
		t.Log("seeds 7 and 8 picked the same edge sample (unlikely but possible)")
	}
}

func TestFatTreeConnectivityAndLSPs(t *testing.T) {
	s := FatTree(FatTreeOpts{K: 4, Seed: 1})
	for _, src := range s.Edge {
		for _, dst := range s.Edge {
			if src == dst {
				continue
			}
			if gs := s.Net.Routing.Lookup(s.ExtIn[src], s.IPLabel[dst]); len(gs) == 0 {
				t.Fatalf("no ingress rule %s -> %s",
					s.Net.Topo.Routers[src].Name, s.Net.Topo.Routers[dst].Name)
			}
		}
	}
}

func TestFatTreeRuleScaling(t *testing.T) {
	k4 := FatTree(FatTreeOpts{K: 4, Seed: 1})
	k8 := FatTree(FatTreeOpts{K: 8, Seed: 1})
	if k8.Net.Routing.NumRules() <= 4*k4.Net.Routing.NumRules() {
		t.Errorf("k=8 (%d rules) should dwarf k=4 (%d rules)",
			k8.Net.Routing.NumRules(), k4.Net.Routing.NumRules())
	}
	svc := FatTree(FatTreeOpts{K: 4, Services: 3, Seed: 1})
	if svc.Net.Routing.NumRules() <= k4.Net.Routing.NumRules() {
		t.Error("Services knob does not scale fat-tree rules")
	}
	if len(svc.ServiceIn) == 0 {
		t.Error("no service labels recorded")
	}
}

func TestFatTreeForwardingSimulation(t *testing.T) {
	s := FatTree(FatTreeOpts{K: 4, Seed: 2})
	src, dst := s.Edge[0], s.Edge[3]
	h := labels.Header{s.IPLabel[dst]}
	delivered := false
	s.Net.Enumerate(s.ExtIn[src], h, nil, 16, func(tr network.Trace) bool {
		last := tr[len(tr)-1]
		if last.Link == s.ExtOut[dst] && len(last.Header) == 1 &&
			last.Header[0] == s.IPLabel[dst] {
			delivered = true
			return false
		}
		return true
	})
	if !delivered {
		t.Fatal("packet not delivered across the fabric")
	}
}

// ---- ring of rings --------------------------------------------------------

func TestRingOfRingsShape(t *testing.T) {
	s := RingOfRings(RingOfRingsOpts{Rings: 4, RingSize: 6, Seed: 1})
	// 4 hubs + 4·6 ring routers + one stub per edge router (default: one
	// edge per ring).
	if got := s.Net.Topo.NumRouters(); got != 4+24+4 {
		t.Errorf("routers = %d, want 32", got)
	}
	if got := len(s.Edge); got != 4 {
		t.Errorf("edge routers = %d, want 4", got)
	}
}

func TestRingOfRingsDeterministic(t *testing.T) {
	a := RingOfRings(RingOfRingsOpts{Rings: 5, RingSize: 7, EdgeRouters: 8, Seed: 3})
	b := RingOfRings(RingOfRingsOpts{Rings: 5, RingSize: 7, EdgeRouters: 8, Seed: 3})
	if a.Net.Routing.NumRules() != b.Net.Routing.NumRules() ||
		a.Net.Topo.NumLinks() != b.Net.Topo.NumLinks() {
		t.Fatal("same seed, different networks")
	}
}

func TestRingOfRingsConnectivityAndProtection(t *testing.T) {
	s := RingOfRings(RingOfRingsOpts{Rings: 4, RingSize: 6, EdgeRouters: 6, Seed: 1})
	for _, src := range s.Edge {
		for _, dst := range s.Edge {
			if src == dst {
				continue
			}
			if gs := s.Net.Routing.Lookup(s.ExtIn[src], s.IPLabel[dst]); len(gs) == 0 {
				t.Fatalf("no ingress rule %s -> %s",
					s.Net.Topo.Routers[src].Name, s.Net.Topo.Routers[dst].Name)
			}
		}
	}
	// Every link sits on a cycle, so bypass tunnels must exist: at least
	// one key carries a priority-2 group.
	found := false
	for _, key := range s.Net.Routing.Keys() {
		if len(s.Net.Routing.Lookup(key.In, key.Top)) > 1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no priority-2 group anywhere despite full cycle coverage")
	}
}

func TestRingOfRingsFailoverSimulation(t *testing.T) {
	s := RingOfRings(RingOfRingsOpts{Rings: 4, RingSize: 6, EdgeRouters: 6, Seed: 1})
	src, dst := s.Edge[0], s.Edge[1]
	gs := s.Net.Routing.Lookup(s.ExtIn[src], s.IPLabel[dst])
	if len(gs) < 2 || len(gs[1].Entries) == 0 {
		t.Skip("ingress hop has no protection on this seed")
	}
	primary := gs[0].Entries[0].Out
	f := network.FailedSet{primary: true}
	h := labels.Header{s.IPLabel[dst]}
	delivered := false
	s.Net.Enumerate(s.ExtIn[src], h, f, 40, func(tr network.Trace) bool {
		last := tr[len(tr)-1]
		if last.Link == s.ExtOut[dst] && len(last.Header) == 1 {
			delivered = true
			return false
		}
		return true
	})
	if !delivered {
		t.Fatal("failover around the ring did not deliver the packet")
	}
}

// ---- ISP backbone ---------------------------------------------------------

func TestBackboneShape(t *testing.T) {
	s := Backbone(BackboneOpts{Core: 6, Pops: 12, Seed: 1})
	// 6 core + 12 PoPs + one stub per PoP (all PoPs are edges by default).
	if got := s.Net.Topo.NumRouters(); got != 6+12+12 {
		t.Errorf("routers = %d, want 30", got)
	}
	// Every PoP must be dual-homed: exactly two physical neighbours.
	g := s.Net.Topo
	for _, pe := range s.Edge {
		cores := map[string]bool{}
		for l := range g.Links {
			if g.Links[l].From != pe {
				continue
			}
			name := g.Routers[g.Links[l].To].Name
			if name[0] == 'p' && name[1] != 'e' {
				cores[name] = true
			}
		}
		if len(cores) != 2 {
			t.Errorf("PoP %s homed to %d cores, want 2", g.Routers[pe].Name, len(cores))
		}
	}
}

func TestBackboneDeterministicAndScaling(t *testing.T) {
	a := Backbone(BackboneOpts{Core: 8, Pops: 20, EdgeRouters: 10, Seed: 4})
	b := Backbone(BackboneOpts{Core: 8, Pops: 20, EdgeRouters: 10, Seed: 4})
	if a.Net.Routing.NumRules() != b.Net.Routing.NumRules() ||
		a.Net.Topo.NumLinks() != b.Net.Topo.NumLinks() {
		t.Fatal("same seed, different networks")
	}
	small := Backbone(BackboneOpts{Core: 6, Pops: 8, Seed: 1})
	big := Backbone(BackboneOpts{Core: 10, Pops: 40, Seed: 1})
	if big.Net.Routing.NumRules() <= small.Net.Routing.NumRules() {
		t.Error("backbone rules do not scale with size")
	}
	svc := Backbone(BackboneOpts{Core: 6, Pops: 8, Services: 4, Seed: 1})
	if svc.Net.Routing.NumRules() <= small.Net.Routing.NumRules() {
		t.Error("Services knob does not scale backbone rules")
	}
}

func TestBackboneConnectivityAndLSPs(t *testing.T) {
	s := Backbone(BackboneOpts{Core: 6, Pops: 12, Seed: 1})
	for _, src := range s.Edge {
		for _, dst := range s.Edge {
			if src == dst {
				continue
			}
			if gs := s.Net.Routing.Lookup(s.ExtIn[src], s.IPLabel[dst]); len(gs) == 0 {
				t.Fatalf("no ingress rule %s -> %s",
					s.Net.Topo.Routers[src].Name, s.Net.Topo.Routers[dst].Name)
			}
		}
	}
}

func edgeNames(s *Synth) string {
	out := ""
	for _, r := range s.Edge {
		out += s.Net.Topo.Routers[r].Name + ","
	}
	return out
}
