package gen

import (
	"fmt"
	"math"
	"math/rand"

	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// ZooOpts parameterises the synthetic Internet-Topology-Zoo-style networks.
// The defaults (via Zoo) match the statistics reported in §5: an average of
// about 84 routers, the largest instance at 240.
type ZooOpts struct {
	Routers int // core router count
	// EdgeRouters bounds the number of provider-edge routers carrying
	// LSPs; 0 means min(12, Routers/4+2).
	EdgeRouters int
	// Protection enables fast-failover bypass tunnels (on for the paper's
	// workloads).
	Protection bool
	Seed       int64
}

// ZooSizes returns a deterministic family of network sizes whose mean is
// ≈84 routers and whose maximum is 240, mimicking the Topology Zoo subset
// used in the paper.
func ZooSizes(count int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, count)
	for i := range sizes {
		// Log-normal-ish: many small networks, a tail of large ones.
		v := math.Exp(rng.NormFloat64()*0.65 + 4.25)
		n := int(v)
		if n < 10 {
			n = 10
		}
		if n > 240 {
			n = 240
		}
		sizes[i] = n
	}
	if count > 0 {
		sizes[count-1] = 240 // ensure the largest instance is present
	}
	return sizes
}

// Zoo builds one synthetic wide-area network with the given options: a
// Waxman-style geometric random graph (routers placed in a unit square,
// links preferring short distances) made connected by a ring backbone, then
// the standard MPLS dataplane synthesis (LSPs between all edge pairs with
// local fast-failover protection).
func Zoo(opts ZooOpts) *Synth {
	if opts.Routers == 0 {
		opts.Routers = 84
	}
	if opts.EdgeRouters == 0 {
		opts.EdgeRouters = opts.Routers/4 + 2
		if opts.EdgeRouters > 12 {
			opts.EdgeRouters = 12
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	net := network.New(fmt.Sprintf("zoo-%d-%d", opts.Routers, opts.Seed))
	g := net.Topo

	n := opts.Routers
	xs := make([]float64, n)
	ys := make([]float64, n)
	ids := make([]topology.RouterID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddRouter(fmt.Sprintf("R%d", i))
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
		// Map the unit square onto a rough European bounding box for the
		// location metadata.
		g.SetLocation(ids[i], 40+ys[i]*20, -5+xs[i]*25)
	}
	linkSeq := 0
	addBoth := func(a, b int, w uint64) {
		// Interface names carry a sequence number: parallel links between
		// the same routers are legal in the multigraph model.
		linkSeq++
		g.MustAddLink(ids[a], ids[b], fmt.Sprintf("to%d-%d", b, linkSeq), fmt.Sprintf("fr%d-%d", a, linkSeq), w)
		g.MustAddLink(ids[b], ids[a], fmt.Sprintf("to%d-%d", a, linkSeq), fmt.Sprintf("fr%d-%d", b, linkSeq), w)
	}
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return math.Sqrt(dx*dx + dy*dy)
	}
	// Ring backbone for connectivity.
	order := rng.Perm(n)
	for i := 0; i < n; i++ {
		a, b := order[i], order[(i+1)%n]
		addBoth(a, b, uint64(1+dist(a, b)*10))
	}
	// Waxman extra links: P(link) = α·exp(−d/(β·L)).
	const alpha, beta = 0.25, 0.35
	for a := 0; a < n; a++ {
		for b := a + 2; b < n; b++ {
			if rng.Float64() < alpha*math.Exp(-dist(a, b)/(beta*math.Sqrt2)) {
				addBoth(a, b, uint64(1+dist(a, b)*10))
			}
		}
	}
	// Edge routers: a deterministic sample.
	perm := rng.Perm(n)
	edge := make([]topology.RouterID, 0, opts.EdgeRouters)
	for _, i := range perm[:opts.EdgeRouters] {
		edge = append(edge, ids[i])
	}
	return synthesize(net, edge, SynthOpts{Protection: opts.Protection})
}
