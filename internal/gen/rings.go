package gen

import (
	"fmt"
	"math/rand"

	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// RingOfRingsOpts parameterises the ring-of-rings family: a backbone ring
// of hub routers, each anchoring a local access ring. Metro and regional
// carrier networks are commonly built exactly like this (SDH/ethernet
// rings stitched by a core ring), and the shape is adversarial for
// fast-reroute: every link sits on a cycle, so a bypass always exists, but
// it is the long way around the ring — bypass tunnels here are the longest
// the synthesis ever emits.
type RingOfRingsOpts struct {
	// Rings is the number of local rings (= backbone hubs, default 6).
	Rings int
	// RingSize is the number of routers per local ring, hub excluded
	// (default 8).
	RingSize int
	// EdgeRouters bounds how many local-ring routers carry LSPs
	// (0 = one per ring).
	EdgeRouters int
	// Services is the number of service-label chains per edge pair.
	Services int
	Seed     int64
}

// RingOfRings builds the hierarchical ring topology with the standard MPLS
// dataplane. Each local ring is dual-attached to its hub (at positions 0
// and RingSize/2) so single link failures never partition the network.
func RingOfRings(opts RingOfRingsOpts) *Synth {
	r := opts.Rings
	if r == 0 {
		r = 6
	}
	m := opts.RingSize
	if m == 0 {
		m = 8
	}
	if r < 3 || m < 3 {
		panic(fmt.Sprintf("gen: ring-of-rings needs >=3 rings of >=3 routers, got %dx%d", r, m))
	}
	net := network.New(fmt.Sprintf("rings-%dx%d", r, m))
	g := net.Topo

	linkSeq := 0
	addBoth := func(a, b topology.RouterID, w uint64) {
		linkSeq++
		g.MustAddLink(a, b, fmt.Sprintf("cw%d", linkSeq), fmt.Sprintf("aw%d", linkSeq), w)
		g.MustAddLink(b, a, fmt.Sprintf("cc%d", linkSeq), fmt.Sprintf("ac%d", linkSeq), w)
	}

	hubs := make([]topology.RouterID, r)
	for i := range hubs {
		hubs[i] = g.AddRouter(fmt.Sprintf("h%d", i))
		g.SetLocation(hubs[i], 50, float64(i)*3)
	}
	// Backbone ring (heavier links: the core spans longer distances).
	for i := 0; i < r; i++ {
		addBoth(hubs[i], hubs[(i+1)%r], 10)
	}
	local := make([][]topology.RouterID, r)
	for i := 0; i < r; i++ {
		local[i] = make([]topology.RouterID, m)
		for j := 0; j < m; j++ {
			local[i][j] = g.AddRouter(fmt.Sprintf("r%d-%d", i, j))
			g.SetLocation(local[i][j], 48-float64(j)*0.2, float64(i)*3)
		}
		for j := 0; j < m; j++ {
			addBoth(local[i][j], local[i][(j+1)%m], 1)
		}
		// Dual attachment: hub joins the ring at opposite points.
		addBoth(hubs[i], local[i][0], 2)
		addBoth(hubs[i], local[i][m/2], 2)
	}

	// Provider edges: a deterministic sample of local-ring routers.
	want := opts.EdgeRouters
	if want == 0 {
		want = r
	}
	all := make([]topology.RouterID, 0, r*m)
	for i := 0; i < r; i++ {
		all = append(all, local[i]...)
	}
	if want > len(all) {
		want = len(all)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(all))
	edge := make([]topology.RouterID, 0, want)
	for _, i := range perm[:want] {
		edge = append(edge, all[i])
	}
	return synthesize(net, edge, SynthOpts{Protection: true, Services: opts.Services})
}
