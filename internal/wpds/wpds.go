// Package wpds is a standalone, generic weighted pushdown system library:
// the framework of Reps, Schwoon, Jha and Melski ("Weighted pushdown
// systems and their application to interprocedural dataflow analysis",
// SCP 2005) that §4.1 of the AalWiNes paper builds on, parameterised over
// an arbitrary bounded idempotent semiring.
//
// The verification engine itself uses the specialised implementation in
// internal/pds (concrete lexicographic min-plus vectors, witness records,
// symbol-set transitions); this package provides the general theory for
// library users with other weight domains — reachability (Bool), shortest
// distance (MinPlus), bottleneck bandwidth (MaxMin) — and serves as a
// differential-testing oracle for the specialised engine.
package wpds

import "fmt"

// Semiring is a bounded idempotent semiring ⟨D, ⊕, ⊗, 0̄, 1̄⟩: ⊕ is
// commutative, associative and idempotent with identity Zero; ⊗ is
// associative with identity One and annihilator Zero and distributes over
// ⊕; and descending chains a, a⊕b₁, (a⊕b₁)⊕b₂, … stabilise (boundedness),
// which guarantees saturation terminates.
type Semiring[W any] interface {
	Zero() W
	One() W
	Combine(a, b W) W // ⊕
	Extend(a, b W) W  // ⊗
	Equal(a, b W) bool
}

// RuleKind distinguishes the normalised rule shapes.
type RuleKind uint8

// Rule kinds: pop ⟨p,γ⟩↪⟨p′,ε⟩, swap ⟨p,γ⟩↪⟨p′,γ′⟩, push ⟨p,γ⟩↪⟨p′,γ′γ″⟩.
const (
	Pop RuleKind = iota
	Swap
	Push
)

// Rule is a weighted pushdown rule.
type Rule[W any] struct {
	FromState int
	FromSym   int
	ToState   int
	Kind      RuleKind
	Sym1      int // swap/push: the new top
	Sym2      int // push: the symbol below the new top
	Weight    W
}

// PDS is a weighted pushdown system over control states [0,States) and
// stack symbols [0,Syms).
type PDS[W any] struct {
	States int
	Syms   int
	Rules  []Rule[W]
}

// AddRule appends a rule, validating its indices.
func (p *PDS[W]) AddRule(r Rule[W]) {
	if r.FromState < 0 || r.FromState >= p.States || r.ToState < 0 || r.ToState >= p.States {
		panic(fmt.Sprintf("wpds: rule state out of range: %+v", r))
	}
	if r.FromSym < 0 || r.FromSym >= p.Syms {
		panic(fmt.Sprintf("wpds: rule symbol out of range: %+v", r))
	}
	p.Rules = append(p.Rules, r)
}

// Config is a configuration ⟨p, w⟩, stack written top-first.
type Config struct {
	State int
	Stack []int
}

// trans identifies a P-automaton transition; sym == epsSym marks ε.
type trans struct {
	from, sym, to int
}

const epsSym = -1

// Auto is a weighted P-automaton over a PDS: states < PDSStates are the
// control states, larger indices are extra automaton states.
type Auto[W any] struct {
	sr        Semiring[W]
	PDSStates int
	numStates int
	accept    map[int]bool
	weights   map[trans]W
}

// NewAuto returns an empty automaton for a PDS.
func NewAuto[W any](sr Semiring[W], p *PDS[W]) *Auto[W] {
	return &Auto[W]{
		sr:        sr,
		PDSStates: p.States,
		numStates: p.States,
		accept:    map[int]bool{},
		weights:   map[trans]W{},
	}
}

// AddState appends a fresh extra state.
func (a *Auto[W]) AddState() int {
	a.numStates++
	return a.numStates - 1
}

// SetAccept marks a state accepting.
func (a *Auto[W]) SetAccept(s int, v bool) { a.accept[s] = v }

// AddTransition inserts (or combines into) a transition with weight w.
func (a *Auto[W]) AddTransition(from, sym, to int, w W) {
	t := trans{from, sym, to}
	if old, ok := a.weights[t]; ok {
		a.weights[t] = a.sr.Combine(old, w)
		return
	}
	a.weights[t] = w
}

// Weight returns the weight of a transition, Zero when absent.
func (a *Auto[W]) Weight(from, sym, to int) W {
	if w, ok := a.weights[trans{from, sym, to}]; ok {
		return w
	}
	return a.sr.Zero()
}

// clone duplicates the automaton (saturation mutates in place).
func (a *Auto[W]) clone() *Auto[W] {
	out := &Auto[W]{
		sr: a.sr, PDSStates: a.PDSStates, numStates: a.numStates,
		accept:  make(map[int]bool, len(a.accept)),
		weights: make(map[trans]W, len(a.weights)),
	}
	for k, v := range a.accept {
		out.accept[k] = v
	}
	for k, v := range a.weights {
		out.weights[k] = v
	}
	return out
}

// Value computes the combine-over-all-accepting-runs value of a
// configuration in the automaton: ⊕ over runs of the ⊗ of transition
// weights (ε-transitions contribute their weight with no input consumed).
// For post*(A) this is the "meet over all paths" value of reaching the
// configuration from A.
func (a *Auto[W]) Value(c Config) W {
	// cur maps automaton states to the accumulated weight of reaching them
	// having consumed a prefix of the stack.
	cur := map[int]W{c.State: a.sr.One()}
	cur = a.epsClose(cur)
	for _, sym := range c.Stack {
		next := map[int]W{}
		for s, w := range cur {
			for t, tw := range a.weights {
				if t.from != s || t.sym != sym {
					continue
				}
				nw := a.sr.Extend(w, tw)
				if old, ok := next[t.to]; ok {
					nw = a.sr.Combine(old, nw)
				}
				next[t.to] = nw
			}
		}
		cur = a.epsClose(next)
		if len(cur) == 0 {
			return a.sr.Zero()
		}
	}
	out := a.sr.Zero()
	for s, w := range cur {
		if a.accept[s] {
			out = a.sr.Combine(out, w)
		}
	}
	return out
}

// epsClose saturates a weight map over ε-transitions.
func (a *Auto[W]) epsClose(m map[int]W) map[int]W {
	changed := true
	for changed {
		changed = false
		for s, w := range m {
			for t, tw := range a.weights {
				if t.from != s || t.sym != epsSym {
					continue
				}
				nw := a.sr.Extend(w, tw)
				if old, ok := m[t.to]; ok {
					c := a.sr.Combine(old, nw)
					if !a.sr.Equal(c, old) {
						m[t.to] = c
						changed = true
					}
				} else {
					m[t.to] = nw
					changed = true
				}
			}
		}
	}
	return m
}

// Poststar computes the weighted post* of the configurations accepted by
// init: the returned automaton assigns every reachable configuration the
// combine-over-all-derivations value (GPP, the generalised pushdown
// predecessor/successor problem of Reps et al.). init is not modified.
func Poststar[W any](sr Semiring[W], p *PDS[W], init *Auto[W]) *Auto[W] {
	a := init.clone()
	// Mid states per (ToState, Sym1) of push rules.
	mids := map[[2]int]int{}
	midOf := func(s, g int) int {
		k := [2]int{s, g}
		if m, ok := mids[k]; ok {
			return m
		}
		m := a.AddState()
		mids[k] = m
		return m
	}
	// Worklist over dirty transitions.
	queue := make([]trans, 0, len(a.weights))
	inQueue := map[trans]bool{}
	for t := range a.weights {
		queue = append(queue, t)
		inQueue[t] = true
	}
	update := func(t trans, w W) {
		old, ok := a.weights[t]
		if !ok {
			a.weights[t] = w
		} else {
			nw := a.sr.Combine(old, w)
			if a.sr.Equal(nw, old) {
				return
			}
			a.weights[t] = nw
		}
		if !inQueue[t] {
			inQueue[t] = true
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		inQueue[t] = false
		w := a.weights[t]

		if t.sym == epsSym {
			// Combine with transitions out of the target.
			for t2, w2 := range a.weights {
				if t2.from != t.to || t2.sym == epsSym {
					continue
				}
				update(trans{t.from, t2.sym, t2.to}, sr.Extend(w, w2))
			}
			continue
		}
		// Symmetric combine: ε into t.from.
		for t2, w2 := range a.weights {
			if t2.to != t.from || t2.sym != epsSym {
				continue
			}
			update(trans{t2.from, t.sym, t.to}, sr.Extend(w2, w))
		}
		if t.from >= p.States {
			continue
		}
		for i := range p.Rules {
			r := &p.Rules[i]
			if r.FromState != t.from || r.FromSym != t.sym {
				continue
			}
			nw := sr.Extend(w, r.Weight)
			switch r.Kind {
			case Pop:
				update(trans{r.ToState, epsSym, t.to}, nw)
			case Swap:
				update(trans{r.ToState, r.Sym1, t.to}, nw)
			case Push:
				mid := midOf(r.ToState, r.Sym1)
				update(trans{r.ToState, r.Sym1, mid}, sr.One())
				update(trans{mid, r.Sym2, t.to}, nw)
			}
		}
	}
	return a
}

// Prestar computes the weighted pre* of the configurations accepted by
// target: the returned automaton assigns every configuration c the value
// ⊕ over derivations c ⇒* c′ with c′ accepted, of the ⊗ of rule weights
// times the acceptance value of c′. target is not modified.
func Prestar[W any](sr Semiring[W], p *PDS[W], target *Auto[W]) *Auto[W] {
	a := target.clone()
	queue := make([]trans, 0, len(a.weights))
	inQueue := map[trans]bool{}
	push := func(t trans) {
		if !inQueue[t] {
			inQueue[t] = true
			queue = append(queue, t)
		}
	}
	update := func(t trans, w W) {
		old, ok := a.weights[t]
		if !ok {
			a.weights[t] = w
			push(t)
			return
		}
		nw := a.sr.Combine(old, w)
		if !a.sr.Equal(nw, old) {
			a.weights[t] = nw
			push(t)
		}
	}
	for t := range a.weights {
		push(t)
	}
	// Pop rules contribute immediately: ⟨p,γ⟩ reaches ⟨p′,ε⟩.
	for i := range p.Rules {
		if p.Rules[i].Kind == Pop {
			r := &p.Rules[i]
			update(trans{r.FromState, r.FromSym, r.ToState}, r.Weight)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		inQueue[t] = false
		w := a.weights[t]
		for i := range p.Rules {
			r := &p.Rules[i]
			switch r.Kind {
			case Swap:
				if r.ToState == t.from && r.Sym1 == t.sym {
					update(trans{r.FromState, r.FromSym, t.to}, sr.Extend(r.Weight, w))
				}
			case Push:
				if r.ToState == t.from && r.Sym1 == t.sym {
					// Residual: after consuming γ′ into t.to, γ″ remains.
					for t2, w2 := range a.weights {
						if t2.from == t.to && t2.sym == r.Sym2 {
							update(trans{r.FromState, r.FromSym, t2.to},
								sr.Extend(r.Weight, sr.Extend(w, w2)))
						}
					}
				}
				// Newly discovered (t.to, γ″, ·) transitions also need the
				// residual firing; handled because those transitions are
				// themselves queued and scanned against push rules via the
				// case above only when they match γ′... the general case is
				// covered by re-scanning: when t matches (q′, γ₂, q″) of a
				// residual, find push rules whose first half already
				// reached t.from.
				if r.Sym2 == t.sym {
					for t2, w2 := range a.weights {
						if t2.from == r.ToState && t2.sym == r.Sym1 && t2.to == t.from {
							update(trans{r.FromState, r.FromSym, t.to},
								sr.Extend(r.Weight, sr.Extend(w2, w)))
						}
					}
				}
			}
		}
	}
	return a
}
