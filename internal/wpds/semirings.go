package wpds

import "math"

// Bool is the Boolean semiring ⟨{false,true}, ∨, ∧, false, true⟩: plain
// reachability.
type Bool struct{}

// Zero returns false.
func (Bool) Zero() bool { return false }

// One returns true.
func (Bool) One() bool { return true }

// Combine is disjunction.
func (Bool) Combine(a, b bool) bool { return a || b }

// Extend is conjunction.
func (Bool) Extend(a, b bool) bool { return a && b }

// Equal compares values.
func (Bool) Equal(a, b bool) bool { return a == b }

// Dist is a tropical weight: a distance with an explicit infinity.
type Dist struct {
	V   uint64
	Inf bool
}

// Infinity is the MinPlus zero.
var Infinity = Dist{Inf: true}

// D builds a finite distance.
func D(v uint64) Dist { return Dist{V: v} }

// MinPlus is the tropical semiring ⟨ℕ∪{∞}, min, +, ∞, 0⟩: shortest
// distances.
type MinPlus struct{}

// Zero returns ∞.
func (MinPlus) Zero() Dist { return Infinity }

// One returns 0.
func (MinPlus) One() Dist { return Dist{} }

// Combine is minimum.
func (MinPlus) Combine(a, b Dist) Dist {
	switch {
	case a.Inf:
		return b
	case b.Inf:
		return a
	case a.V <= b.V:
		return a
	default:
		return b
	}
}

// Extend is saturating addition.
func (MinPlus) Extend(a, b Dist) Dist {
	if a.Inf || b.Inf {
		return Infinity
	}
	if a.V > math.MaxUint64-b.V {
		return Dist{V: math.MaxUint64}
	}
	return Dist{V: a.V + b.V}
}

// Equal compares values.
func (MinPlus) Equal(a, b Dist) bool { return a == b }

// MaxMin is the bottleneck semiring ⟨ℕ∪{∞}, max, min, 0, ∞⟩: the widest
// path / maximum bottleneck bandwidth problem, a weight domain beyond the
// paper's latency/hops examples that the generic library supports for
// free. Here Dist.Inf plays the role of "unlimited capacity" (the One) and
// capacity 0 is the Zero (no path).
type MaxMin struct{}

// Zero returns capacity 0.
func (MaxMin) Zero() Dist { return Dist{} }

// One returns unlimited capacity.
func (MaxMin) One() Dist { return Infinity }

// Combine is maximum (prefer the wider path).
func (MaxMin) Combine(a, b Dist) Dist {
	switch {
	case a.Inf:
		return a
	case b.Inf:
		return b
	case a.V >= b.V:
		return a
	default:
		return b
	}
}

// Extend is minimum (a path is as wide as its narrowest link).
func (MaxMin) Extend(a, b Dist) Dist {
	switch {
	case a.Inf:
		return b
	case b.Inf:
		return a
	case a.V <= b.V:
		return a
	default:
		return b
	}
}

// Equal compares values.
func (MaxMin) Equal(a, b Dist) bool { return a == b }
