package wpds_test

import (
	"math/rand"
	"testing"

	"aalwines/internal/nfa"
	"aalwines/internal/pds"
	"aalwines/internal/wpds"
)

// --- semiring law checks ---

func checkLaws[W any](t *testing.T, name string, sr wpds.Semiring[W], gen func(*rand.Rand) W) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if !sr.Equal(sr.Combine(a, a), a) {
			t.Fatalf("%s: ⊕ not idempotent on %v", name, a)
		}
		if !sr.Equal(sr.Combine(a, b), sr.Combine(b, a)) {
			t.Fatalf("%s: ⊕ not commutative", name)
		}
		if !sr.Equal(sr.Combine(a, sr.Combine(b, c)), sr.Combine(sr.Combine(a, b), c)) {
			t.Fatalf("%s: ⊕ not associative", name)
		}
		if !sr.Equal(sr.Extend(a, sr.Extend(b, c)), sr.Extend(sr.Extend(a, b), c)) {
			t.Fatalf("%s: ⊗ not associative", name)
		}
		if !sr.Equal(sr.Extend(a, sr.Combine(b, c)), sr.Combine(sr.Extend(a, b), sr.Extend(a, c))) {
			t.Fatalf("%s: ⊗ does not left-distribute", name)
		}
		if !sr.Equal(sr.Extend(sr.Combine(a, b), c), sr.Combine(sr.Extend(a, c), sr.Extend(b, c))) {
			t.Fatalf("%s: ⊗ does not right-distribute", name)
		}
		if !sr.Equal(sr.Combine(a, sr.Zero()), a) || !sr.Equal(sr.Extend(a, sr.One()), a) ||
			!sr.Equal(sr.Extend(sr.One(), a), a) {
			t.Fatalf("%s: identity laws fail", name)
		}
		if !sr.Equal(sr.Extend(a, sr.Zero()), sr.Zero()) || !sr.Equal(sr.Extend(sr.Zero(), a), sr.Zero()) {
			t.Fatalf("%s: zero does not annihilate", name)
		}
	}
}

func TestSemiringLaws(t *testing.T) {
	checkLaws[bool](t, "Bool", wpds.Bool{}, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
	genDist := func(r *rand.Rand) wpds.Dist {
		if r.Intn(5) == 0 {
			return wpds.Infinity
		}
		return wpds.D(uint64(r.Intn(100)))
	}
	checkLaws[wpds.Dist](t, "MinPlus", wpds.MinPlus{}, genDist)
	checkLaws[wpds.Dist](t, "MaxMin", wpds.MaxMin{}, genDist)
}

// --- cross-checks against the specialised internal/pds engine ---

// randomSystems builds matching wpds and pds systems with random rules and
// per-rule weights in [0, 8].
func randomSystems(rng *rand.Rand) (*wpds.PDS[wpds.Dist], *pds.PDS) {
	states := 2 + rng.Intn(2)
	syms := 3 + rng.Intn(2) // last symbol is the bottom marker
	bot := syms - 1
	wp := &wpds.PDS[wpds.Dist]{States: states, Syms: syms}
	pp := pds.New(states, syms)
	n := 4 + rng.Intn(6)
	for i := 0; i < n; i++ {
		from := rng.Intn(states)
		fsym := rng.Intn(syms)
		to := rng.Intn(states)
		w := uint64(rng.Intn(9))
		kind := wpds.RuleKind(rng.Intn(3))
		if kind == wpds.Pop && fsym == bot {
			kind = wpds.Swap
		}
		r := wpds.Rule[wpds.Dist]{FromState: from, FromSym: fsym, ToState: to, Kind: kind, Weight: wpds.D(w)}
		pr := pds.Rule{FromState: pds.State(from), FromSym: pds.Sym(fsym), ToState: pds.State(to), Weight: []uint64{w}}
		switch kind {
		case wpds.Pop:
			pr.Kind = pds.PopRule
		case wpds.Swap:
			s1 := rng.Intn(syms - 1)
			if fsym == bot {
				s1 = bot // keep the marker at the bottom
			}
			r.Sym1 = s1
			pr.Kind = pds.SwapRule
			pr.Sym1 = pds.Sym(s1)
		case wpds.Push:
			s1 := rng.Intn(syms - 1)
			r.Sym1 = s1
			r.Sym2 = fsym
			pr.Kind = pds.PushRule
			pr.Sym1 = pds.Sym(s1)
			pr.Sym2 = pds.Sym(fsym)
		}
		wp.AddRule(r)
		pp.AddRule(pr)
	}
	return wp, pp
}

// initAutos builds matching initial automata accepting exactly ⟨0, s₀ ⊥⟩.
func initAutos(wp *wpds.PDS[wpds.Dist], pp *pds.PDS) (*wpds.Auto[wpds.Dist], *pds.Auto) {
	bot := wp.Syms - 1
	wa := wpds.NewAuto[wpds.Dist](wpds.MinPlus{}, wp)
	m1 := wa.AddState()
	m2 := wa.AddState()
	wa.AddTransition(0, 0, m1, wpds.MinPlus{}.One())
	wa.AddTransition(m1, bot, m2, wpds.MinPlus{}.One())
	wa.SetAccept(m2, true)

	pa := pds.NewAuto(pp)
	p1 := pa.AddState()
	p2 := pa.AddState()
	pa.AddEdge(0, 0, p1)
	pa.AddEdge(p1, pds.Sym(bot), p2)
	pa.SetAccept(p2, true)
	return wa, pa
}

// TestMinPlusAgreesWithSpecialised: the generic MinPlus post* value of a
// configuration equals the minimum weight the specialised engine computes.
func TestMinPlusAgreesWithSpecialised(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 60; iter++ {
		wp, pp := randomSystems(rng)
		wa, pa := initAutos(wp, pp)
		sat := wpds.Poststar[wpds.Dist](wpds.MinPlus{}, wp, wa)
		res, err := pds.Poststar(pp, pa, 1)
		if err != nil {
			t.Fatal(err)
		}
		bot := wp.Syms - 1
		// Compare the value of every short configuration.
		for st := 0; st < wp.States; st++ {
			for sym := 0; sym < bot; sym++ {
				cfg := wpds.Config{State: st, Stack: []int{sym, bot}}
				v := sat.Value(cfg)
				spec := exactSpec(pp.NumSyms, []pds.Sym{pds.Sym(sym), pds.Sym(bot)})
				acc, ok := res.FindAccepting([]pds.State{pds.State(st)}, spec)
				if v.Inf != !ok {
					t.Fatalf("iter %d cfg %v: generic inf=%v specialised found=%v", iter, cfg, v.Inf, ok)
				}
				if ok && (len(acc.Weight) != 1 || acc.Weight[0] != v.V) {
					t.Fatalf("iter %d cfg %v: generic %d specialised %v", iter, cfg, v.V, acc.Weight)
				}
			}
		}
	}
}

// TestBoolAgreesWithReachability: Bool post* matches unweighted pds
// acceptance.
func TestBoolAgreesWithReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		wpDist, pp := randomSystems(rng)
		// Rebuild the same rules over Bool.
		wb := &wpds.PDS[bool]{States: wpDist.States, Syms: wpDist.Syms}
		for _, r := range wpDist.Rules {
			wb.AddRule(wpds.Rule[bool]{
				FromState: r.FromState, FromSym: r.FromSym, ToState: r.ToState,
				Kind: r.Kind, Sym1: r.Sym1, Sym2: r.Sym2, Weight: true,
			})
		}
		bot := wb.Syms - 1
		ba := wpds.NewAuto[bool](wpds.Bool{}, wb)
		m1 := ba.AddState()
		m2 := ba.AddState()
		ba.AddTransition(0, 0, m1, true)
		ba.AddTransition(m1, bot, m2, true)
		ba.SetAccept(m2, true)
		bsat := wpds.Poststar[bool](wpds.Bool{}, wb, ba)

		pa := pds.NewAuto(pp)
		p1 := pa.AddState()
		p2 := pa.AddState()
		pa.AddEdge(0, 0, p1)
		pa.AddEdge(p1, pds.Sym(bot), p2)
		pa.SetAccept(p2, true)
		res, err := pds.Poststar(pp, pa, 0)
		if err != nil {
			t.Fatal(err)
		}
		for st := 0; st < wb.States; st++ {
			for sym := 0; sym < bot; sym++ {
				generic := bsat.Value(wpds.Config{State: st, Stack: []int{sym, bot}})
				specialised := res.Auto.AcceptsConfig(pds.Config{
					State: pds.State(st), Stack: []pds.Sym{pds.Sym(sym), pds.Sym(bot)},
				})
				if generic != specialised {
					t.Fatalf("iter %d ⟨%d,[%d ⊥]⟩: generic=%v specialised=%v",
						iter, st, sym, generic, specialised)
				}
			}
		}
	}
}

// TestPrestarPoststarDuality: for single-config initial/final sets, the
// Bool pre* value of the initial config w.r.t. the final set equals the
// Bool post* value of the final config w.r.t. the initial set.
func TestPrestarPoststarDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 80; iter++ {
		wpDist, _ := randomSystems(rng)
		wb := &wpds.PDS[bool]{States: wpDist.States, Syms: wpDist.Syms}
		for _, r := range wpDist.Rules {
			wb.AddRule(wpds.Rule[bool]{
				FromState: r.FromState, FromSym: r.FromSym, ToState: r.ToState,
				Kind: r.Kind, Sym1: r.Sym1, Sym2: r.Sym2, Weight: true,
			})
		}
		bot := wb.Syms - 1
		c0 := wpds.Config{State: 0, Stack: []int{0, bot}}
		c1 := wpds.Config{State: rng.Intn(wb.States), Stack: []int{rng.Intn(bot), bot}}

		mk := func(c wpds.Config) *wpds.Auto[bool] {
			a := wpds.NewAuto[bool](wpds.Bool{}, wb)
			prev := c.State
			for i, sym := range c.Stack {
				next := a.AddState()
				_ = i
				a.AddTransition(prev, sym, next, true)
				prev = next
			}
			a.SetAccept(prev, true)
			return a
		}
		fwd := wpds.Poststar[bool](wpds.Bool{}, wb, mk(c0)).Value(c1)
		bwd := wpds.Prestar[bool](wpds.Bool{}, wb, mk(c1)).Value(c0)
		if fwd != bwd {
			t.Fatalf("iter %d: post* says %v, pre* says %v (c0=%v c1=%v)", iter, fwd, bwd, c0, c1)
		}
	}
}

// TestMaxMinBottleneck: a two-route system where the wider route wins under
// the bottleneck semiring.
func TestMaxMinBottleneck(t *testing.T) {
	// States 0→{1,2}→3, symbol 0 with bottom 1.
	p := &wpds.PDS[wpds.Dist]{States: 4, Syms: 2}
	add := func(from, to int, cap uint64) {
		p.AddRule(wpds.Rule[wpds.Dist]{
			FromState: from, FromSym: 0, ToState: to, Kind: wpds.Swap, Sym1: 0,
			Weight: wpds.D(cap),
		})
	}
	add(0, 1, 10)
	add(1, 3, 2) // narrow second hop: bottleneck 2
	add(0, 2, 5)
	add(2, 3, 5) // balanced route: bottleneck 5
	sr := wpds.MaxMin{}
	a := wpds.NewAuto[wpds.Dist](sr, p)
	m1 := a.AddState()
	m2 := a.AddState()
	a.AddTransition(0, 0, m1, sr.One())
	a.AddTransition(m1, 1, m2, sr.One())
	a.SetAccept(m2, true)
	sat := wpds.Poststar[wpds.Dist](sr, p, a)
	got := sat.Value(wpds.Config{State: 3, Stack: []int{0, 1}})
	if got.Inf || got.V != 5 {
		t.Fatalf("bottleneck = %v, want 5 (the balanced route)", got)
	}
}

// exactSpec builds an NFA accepting exactly one stack word.
func exactSpec(numSyms int, word []pds.Sym) *nfa.NFA {
	a := nfa.New(numSyms)
	cur := a.Start()
	for _, sym := range word {
		next := a.AddState()
		a.AddArc(cur, nfa.SetOf(numSyms, nfa.Sym(sym)), next)
		cur = next
	}
	a.SetAccept(cur, true)
	return a
}
