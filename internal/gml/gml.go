// Package gml reads and writes the GML graph format used by the Internet
// Topology Zoo [topology-zoo.org], the dataset the paper's evaluation draws
// its wide-area topologies from. Reading a Zoo file yields the topology
// (routers, bidirectional links, coordinates); the MPLS dataplane is then
// synthesised on top with gen.Build, exactly as the paper does ("label
// switching paths between any two edge routers ... with local fast failover
// protection").
package gml

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// Value is a GML value: a string, a number (float64) or a nested object.
type Value struct {
	Str  string
	Num  float64
	Obj  *Object
	Kind ValueKind
}

// ValueKind discriminates Value.
type ValueKind uint8

// Value kinds.
const (
	StrVal ValueKind = iota
	NumVal
	ObjVal
)

// Object is an ordered multimap of key/value pairs (GML allows repeated
// keys; "node" and "edge" repeat by design).
type Object struct {
	Keys   []string
	Values []Value
}

// Get returns the first value for key; ok is false when absent.
func (o *Object) Get(key string) (Value, bool) {
	for i, k := range o.Keys {
		if k == key {
			return o.Values[i], true
		}
	}
	return Value{}, false
}

// All returns every value for key, in order.
func (o *Object) All(key string) []Value {
	var out []Value
	for i, k := range o.Keys {
		if k == key {
			out = append(out, o.Values[i])
		}
	}
	return out
}

// Parse reads a GML document into its root object.
func Parse(r io.Reader) (*Object, error) {
	tz := &tokenizer{sc: bufio.NewScanner(r)}
	tz.sc.Buffer(make([]byte, 1<<20), 1<<24)
	tz.sc.Split(bufio.ScanWords)
	root := &Object{}
	for {
		tok, ok := tz.next()
		if !ok {
			return root, nil
		}
		if err := parsePair(tz, root, tok); err != nil {
			return nil, err
		}
	}
}

type tokenizer struct {
	sc      *bufio.Scanner
	pending []string
}

// next returns the next token; quoted strings are reassembled from the
// word-split stream (GML labels may contain spaces).
func (t *tokenizer) next() (string, bool) {
	if len(t.pending) > 0 {
		tok := t.pending[0]
		t.pending = t.pending[1:]
		return tok, true
	}
	if !t.sc.Scan() {
		return "", false
	}
	word := t.sc.Text()
	if !strings.HasPrefix(word, `"`) {
		return word, true
	}
	// Reassemble until the closing quote.
	parts := []string{word}
	for !strings.HasSuffix(parts[len(parts)-1], `"`) || len(parts[len(parts)-1]) < 2 {
		if !t.sc.Scan() {
			break
		}
		parts = append(parts, t.sc.Text())
	}
	full := strings.Join(parts, " ")
	return full, true
}

func parsePair(t *tokenizer, obj *Object, key string) error {
	tok, ok := t.next()
	if !ok {
		return fmt.Errorf("gml: key %q without value", key)
	}
	switch {
	case tok == "[":
		child := &Object{}
		for {
			k, ok := t.next()
			if !ok {
				return fmt.Errorf("gml: unterminated object for key %q", key)
			}
			if k == "]" {
				break
			}
			if err := parsePair(t, child, k); err != nil {
				return err
			}
		}
		obj.Keys = append(obj.Keys, key)
		obj.Values = append(obj.Values, Value{Obj: child, Kind: ObjVal})
	case strings.HasPrefix(tok, `"`):
		s := strings.TrimSuffix(strings.TrimPrefix(tok, `"`), `"`)
		obj.Keys = append(obj.Keys, key)
		obj.Values = append(obj.Values, Value{Str: s, Kind: StrVal})
	default:
		n, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			// Bare words (e.g. version identifiers) are kept as strings.
			obj.Keys = append(obj.Keys, key)
			obj.Values = append(obj.Values, Value{Str: tok, Kind: StrVal})
			return nil
		}
		obj.Keys = append(obj.Keys, key)
		obj.Values = append(obj.Values, Value{Num: n, Kind: NumVal})
	}
	return nil
}

// ReadTopology parses a GML file and builds a network with the topology
// populated (no routing rules): every GML edge becomes a pair of directed
// links; node coordinates (Latitude/Longitude) become router locations.
// Nodes without labels are named "N<id>". Duplicate labels are
// disambiguated with the node id.
func ReadTopology(r io.Reader) (*network.Network, error) {
	root, err := Parse(r)
	if err != nil {
		return nil, err
	}
	gv, ok := root.Get("graph")
	if !ok || gv.Kind != ObjVal {
		return nil, fmt.Errorf("gml: no graph object")
	}
	graph := gv.Obj
	name := "gml-import"
	if lv, ok := graph.Get("label"); ok && lv.Str != "" {
		name = lv.Str
	}
	net := network.New(name)
	g := net.Topo

	byID := map[int]topology.RouterID{}
	seenName := map[string]bool{}
	for _, nv := range graph.All("node") {
		if nv.Kind != ObjVal {
			continue
		}
		n := nv.Obj
		idv, ok := n.Get("id")
		if !ok || idv.Kind != NumVal {
			return nil, fmt.Errorf("gml: node without numeric id")
		}
		id := int(idv.Num)
		label := fmt.Sprintf("N%d", id)
		if lv, ok := n.Get("label"); ok && lv.Str != "" {
			label = sanitize(lv.Str)
		}
		if seenName[label] {
			label = fmt.Sprintf("%s-%d", label, id)
		}
		seenName[label] = true
		rid := g.AddRouter(label)
		byID[id] = rid
		lat, okLat := n.Get("Latitude")
		lng, okLng := n.Get("Longitude")
		if okLat && okLng && lat.Kind == NumVal && lng.Kind == NumVal {
			g.SetLocation(rid, lat.Num, lng.Num)
		}
	}
	edgeSeq := 0
	for _, ev := range graph.All("edge") {
		if ev.Kind != ObjVal {
			continue
		}
		e := ev.Obj
		sv, ok1 := e.Get("source")
		tv, ok2 := e.Get("target")
		if !ok1 || !ok2 || sv.Kind != NumVal || tv.Kind != NumVal {
			return nil, fmt.Errorf("gml: edge without numeric source/target")
		}
		src, ok1 := byID[int(sv.Num)]
		dst, ok2 := byID[int(tv.Num)]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("gml: edge references unknown node")
		}
		edgeSeq++
		w := uint64(1)
		if lv, ok := e.Get("LinkSpeed"); ok && lv.Kind == NumVal && lv.Num > 0 {
			// Inverse capacity as a crude cost: faster links are cheaper.
			w = uint64(1e6/lv.Num) + 1
		}
		if _, err := g.AddLink(src, dst, fmt.Sprintf("e%d-a", edgeSeq), fmt.Sprintf("e%d-b", edgeSeq), w); err != nil {
			return nil, err
		}
		if _, err := g.AddLink(dst, src, fmt.Sprintf("e%d-b", edgeSeq), fmt.Sprintf("e%d-a", edgeSeq), w); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// sanitize makes a GML label usable as a router name in the query language
// (no spaces, '#', '.', brackets).
func sanitize(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_':
			b.WriteRune(c)
		case c == ' ':
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "node"
	}
	return b.String()
}

// WriteTopology emits a network's topology as GML, merging directed link
// pairs into single edges (matching how the Zoo publishes graphs).
func WriteTopology(w io.Writer, net *network.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph [\n  label %q\n  directed 0\n", net.Name)
	ids := map[string]int{}
	names := make([]string, net.Topo.NumRouters())
	for i := range net.Topo.Routers {
		names[i] = net.Topo.Routers[i].Name
	}
	for i, n := range names {
		ids[n] = i
		r := &net.Topo.Routers[i]
		fmt.Fprintf(bw, "  node [\n    id %d\n    label %q\n", i, n)
		if r.HasLoc {
			fmt.Fprintf(bw, "    Latitude %g\n    Longitude %g\n", r.Lat, r.Lng)
		}
		fmt.Fprintf(bw, "  ]\n")
	}
	type pair struct{ a, b int }
	seen := map[pair]int{}
	var edges []pair
	for i := 0; i < net.Topo.NumLinks(); i++ {
		l := net.Topo.Links[i]
		a, b := int(l.From), int(l.To)
		if a > b {
			a, b = b, a
		}
		p := pair{a, b}
		if seen[p] == 0 {
			edges = append(edges, p)
		}
		seen[p]++
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		// Each undirected edge came from (typically) two directed links.
		n := seen[e] / 2
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			fmt.Fprintf(bw, "  edge [\n    source %d\n    target %d\n  ]\n", e.a, e.b)
		}
	}
	fmt.Fprintf(bw, "]\n")
	return bw.Flush()
}
