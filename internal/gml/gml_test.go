package gml_test

import (
	"bytes"
	"strings"
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/gml"
)

// zooSample is a miniature Topology Zoo file (Abilene-style shape).
const zooSample = `
graph [
  label "SampleNet"
  Network "Sample Research Net"
  directed 0
  node [
    id 0
    label "New York"
    Latitude 40.71
    Longitude -74.0
  ]
  node [
    id 1
    label "Chicago"
    Latitude 41.88
    Longitude -87.63
  ]
  node [
    id 2
    label "Denver"
    Latitude 39.74
    Longitude -104.99
  ]
  node [
    id 3
    label "Los Angeles"
    Latitude 34.05
    Longitude -118.24
  ]
  edge [
    source 0
    target 1
    LinkSpeed 10000
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 0
    target 2
  ]
]
`

func TestParseStructure(t *testing.T) {
	root, err := gml.Parse(strings.NewReader(zooSample))
	if err != nil {
		t.Fatal(err)
	}
	gv, ok := root.Get("graph")
	if !ok {
		t.Fatal("no graph")
	}
	if nodes := gv.Obj.All("node"); len(nodes) != 4 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if edges := gv.Obj.All("edge"); len(edges) != 4 {
		t.Fatalf("edges = %d", len(edges))
	}
	lv, _ := gv.Obj.Get("label")
	if lv.Str != "SampleNet" {
		t.Fatalf("label = %q", lv.Str)
	}
}

func TestReadTopology(t *testing.T) {
	net, err := gml.ReadTopology(strings.NewReader(zooSample))
	if err != nil {
		t.Fatal(err)
	}
	if net.Topo.NumRouters() != 4 {
		t.Fatalf("routers = %d", net.Topo.NumRouters())
	}
	// 4 undirected edges = 8 directed links.
	if net.Topo.NumLinks() != 8 {
		t.Fatalf("links = %d", net.Topo.NumLinks())
	}
	// Multi-word labels sanitised for the query language.
	if id := net.Topo.RouterByName("New_York"); id < 0 {
		t.Fatal("New_York missing")
	}
	ny := net.Topo.RouterByName("New_York")
	if !net.Topo.Routers[ny].HasLoc {
		t.Fatal("coordinates lost")
	}
}

// TestSynthesiseAndVerifyOnGML builds the paper's dataplane on an imported
// GML topology and runs a query end to end.
func TestSynthesiseAndVerifyOnGML(t *testing.T) {
	net, err := gml.ReadTopology(strings.NewReader(zooSample))
	if err != nil {
		t.Fatal(err)
	}
	edge := gen.PickEdgeRouters(net, 3, 1)
	s := gen.Build(net, edge, gen.SynthOpts{Protection: true})
	if s.Net.Routing.NumRules() == 0 {
		t.Fatal("no rules synthesised")
	}
	a := net.Topo.Routers[edge[0]].Name
	b := net.Topo.Routers[edge[1]].Name
	res, err := engine.VerifyText(net, "<ip> [.#"+a+"] .* [.#"+b+"] <ip> 1", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Satisfied {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestRoundTrip(t *testing.T) {
	net, err := gml.ReadTopology(strings.NewReader(zooSample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gml.WriteTopology(&buf, net); err != nil {
		t.Fatal(err)
	}
	again, err := gml.ReadTopology(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if again.Topo.NumRouters() != net.Topo.NumRouters() {
		t.Fatalf("routers: %d vs %d", again.Topo.NumRouters(), net.Topo.NumRouters())
	}
	if again.Topo.NumLinks() != net.Topo.NumLinks() {
		t.Fatalf("links: %d vs %d", again.Topo.NumLinks(), net.Topo.NumLinks())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                             // no graph
		`graph [ node [ id 0`,          // unterminated
		`graph [ node [ label "x" ] ]`, // node without id
		`graph [ node [ id 0 ] edge [ source 0 target 9 ] ]`, // unknown node
		`graph [ edge [ source 0 ] ]`,                        // edge without target
	}
	for _, s := range bad {
		if _, err := gml.ReadTopology(strings.NewReader(s)); err == nil {
			t.Errorf("ReadTopology(%q) succeeded", s)
		}
	}
}

func TestDuplicateLabelsDisambiguated(t *testing.T) {
	doc := `graph [
	  node [ id 0 label "Same" ]
	  node [ id 1 label "Same" ]
	  edge [ source 0 target 1 ]
	]`
	net, err := gml.ReadTopology(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if net.Topo.NumRouters() != 2 {
		t.Fatalf("routers = %d", net.Topo.NumRouters())
	}
}

func TestWriteIncludesCoordinates(t *testing.T) {
	s := gen.Nordunet(gen.NordOpts{Services: 1, EdgeRouters: 6, Seed: 1})
	var buf bytes.Buffer
	if err := gml.WriteTopology(&buf, s.Net); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Latitude") {
		t.Fatal("coordinates not written")
	}
}
