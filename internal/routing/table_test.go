package routing

import (
	"testing"

	"aalwines/internal/labels"
	"aalwines/internal/topology"
)

// protTable builds the v2 fragment of the paper's Figure 1b: packets on e1
// with top label s20 go out e4 (priority 1, swap s21) and fail over to e5
// (priority 2, swap s21 ∘ push 30).
func protTable(t *testing.T) (*Table, *labels.Table, map[string]labels.ID, map[string]topology.LinkID) {
	t.Helper()
	lt, m := testLabels()
	g := topology.New()
	v1 := g.AddRouter("v1")
	v2 := g.AddRouter("v2")
	v3 := g.AddRouter("v3")
	v4 := g.AddRouter("v4")
	links := map[string]topology.LinkID{
		"e1": g.MustAddLink(v1, v2, "", "", 1),
		"e4": g.MustAddLink(v2, v3, "", "", 1),
		"e5": g.MustAddLink(v2, v4, "", "", 1),
	}
	rt := NewTable()
	rt.MustAdd(links["e1"], m["s20"], 1, Entry{Out: links["e4"], Ops: Ops{Swap(m["s21"])}})
	rt.MustAdd(links["e1"], m["s20"], 2, Entry{Out: links["e5"], Ops: Ops{Swap(m["s21"]), Push(m["30"])}})
	return rt, lt, m, links
}

func noneFailed(topology.LinkID) bool { return false }

func TestActiveSelectsHighestPriority(t *testing.T) {
	rt, _, m, links := protTable(t)
	entries, j, mustFail, ok := rt.Active(links["e1"], m["s20"], noneFailed)
	if !ok || j != 0 {
		t.Fatalf("ok=%v group=%d, want ok group 0", ok, j)
	}
	if len(entries) != 1 || entries[0].Out != links["e4"] {
		t.Fatalf("entries = %+v, want single e4 entry", entries)
	}
	if len(mustFail) != 0 {
		t.Fatalf("mustFail = %v, want empty for priority-1 group", mustFail)
	}
}

func TestActiveFailsOver(t *testing.T) {
	rt, _, m, links := protTable(t)
	failed := func(l topology.LinkID) bool { return l == links["e4"] }
	entries, j, mustFail, ok := rt.Active(links["e1"], m["s20"], failed)
	if !ok || j != 1 {
		t.Fatalf("ok=%v group=%d, want failover group 1", ok, j)
	}
	if len(entries) != 1 || entries[0].Out != links["e5"] {
		t.Fatalf("entries = %+v, want single e5 entry", entries)
	}
	if len(mustFail) != 1 || mustFail[0] != links["e4"] {
		t.Fatalf("mustFail = %v, want [e4]", mustFail)
	}
}

func TestActiveAllFailedDropsPacket(t *testing.T) {
	rt, _, m, links := protTable(t)
	_, _, _, ok := rt.Active(links["e1"], m["s20"], func(topology.LinkID) bool { return true })
	if ok {
		t.Fatal("Active reported a group with all links failed")
	}
}

func TestActiveUnknownKey(t *testing.T) {
	rt, _, m, links := protTable(t)
	if _, _, _, ok := rt.Active(links["e4"], m["s20"], noneFailed); ok {
		t.Fatal("Active on unknown key reported ok")
	}
	if gs := rt.Lookup(links["e4"], m["s20"]); gs != nil {
		t.Fatalf("Lookup on unknown key = %v, want nil", gs)
	}
}

func TestAddRejectsBadPriority(t *testing.T) {
	rt := NewTable()
	if err := rt.Add(0, 1, 0, Entry{}); err == nil {
		t.Fatal("priority 0 accepted")
	}
}

func TestSparsePrioritiesSkipped(t *testing.T) {
	lt, m := testLabels()
	_ = lt
	rt := NewTable()
	// Only priority 3 present; groups 1 and 2 are empty and must be skipped.
	rt.MustAdd(1, m["s20"], 3, Entry{Out: 9})
	entries, j, mustFail, ok := rt.Active(1, m["s20"], noneFailed)
	if !ok || j != 2 || len(entries) != 1 {
		t.Fatalf("ok=%v group=%d entries=%v", ok, j, entries)
	}
	// Empty prefix groups contribute no must-fail links.
	if len(mustFail) != 0 {
		t.Fatalf("mustFail = %v, want empty", mustFail)
	}
}

func TestPrefixLinksDeduplicates(t *testing.T) {
	_, m := testLabels()
	rt := NewTable()
	rt.MustAdd(1, m["s20"], 1, Entry{Out: 5})
	rt.MustAdd(1, m["s20"], 1, Entry{Out: 5}) // same link twice in group 1
	rt.MustAdd(1, m["s20"], 2, Entry{Out: 6})
	rt.MustAdd(1, m["s20"], 3, Entry{Out: 7})
	gs := rt.Lookup(1, m["s20"])
	if got := gs.PrefixLinks(2); len(got) != 2 {
		t.Fatalf("PrefixLinks(2) = %v, want 2 distinct links", got)
	}
	if got := gs.PrefixLinks(0); len(got) != 0 {
		t.Fatalf("PrefixLinks(0) = %v, want empty", got)
	}
}

func TestGroupLinks(t *testing.T) {
	g := Group{Entries: []Entry{{Out: 3}, {Out: 1}, {Out: 3}}}
	links := g.Links()
	if len(links) != 2 || links[0] != 1 || links[1] != 3 {
		t.Fatalf("Links = %v, want [1 3]", links)
	}
}

func TestNumRulesAndKeys(t *testing.T) {
	rt, _, m, links := protTable(t)
	if got := rt.NumRules(); got != 2 {
		t.Fatalf("NumRules = %d, want 2", got)
	}
	keys := rt.Keys()
	if len(keys) != 1 || keys[0].In != links["e1"] || keys[0].Top != m["s20"] {
		t.Fatalf("Keys = %v", keys)
	}
	tops := rt.TopLabelsFor(links["e1"])
	if len(tops) != 1 || tops[0] != m["s20"] {
		t.Fatalf("TopLabelsFor = %v", tops)
	}
}

func TestZeroValueTable(t *testing.T) {
	var rt Table
	if gs := rt.Lookup(1, 1); gs != nil {
		t.Fatal("zero table Lookup != nil")
	}
	if err := rt.Add(1, 1, 1, Entry{Out: 2}); err != nil {
		t.Fatal(err)
	}
	if rt.NumRules() != 1 {
		t.Fatal("Add on zero-value table lost the entry")
	}
}

// TestFlatViewInvalidation checks that the cached flat view tracks
// mutations: Keys/Range/TopLabelsFor/NumRules must reflect every Add and
// SetGroups, whether they land on a cold or an already-built view.
func TestFlatViewInvalidation(t *testing.T) {
	rt, _, m, links := protTable(t)
	if got := len(rt.Keys()); got != 1 {
		t.Fatalf("keys = %d, want 1", got)
	}
	// View is now built; a further Add must drop and rebuild it.
	rt.MustAdd(links["e4"], m["s21"], 1, Entry{Out: links["e5"], Ops: Ops{Pop()}})
	if got := len(rt.Keys()); got != 2 {
		t.Fatalf("keys after Add = %d, want 2", got)
	}
	if got := rt.NumRules(); got != 3 {
		t.Fatalf("rules = %d, want 3", got)
	}
	if tops := rt.TopLabelsFor(links["e4"]); len(tops) != 1 || tops[0] != m["s21"] {
		t.Fatalf("TopLabelsFor(e4) = %v", tops)
	}
	// Range order must match Keys order, with aligned groups.
	var seen []Key
	rt.Range(func(k Key, gs Groups) bool {
		seen = append(seen, k)
		if len(gs) == 0 {
			t.Fatalf("empty groups for %v", k)
		}
		return true
	})
	keys := rt.Keys()
	if len(seen) != len(keys) {
		t.Fatalf("Range visited %d keys, Keys has %d", len(seen), len(keys))
	}
	for i := range keys {
		if seen[i] != keys[i] {
			t.Fatalf("order mismatch at %d: %v vs %v", i, seen[i], keys[i])
		}
	}
	// SetGroups removal invalidates too.
	rt.SetGroups(links["e4"], m["s21"], nil)
	if got := len(rt.Keys()); got != 1 {
		t.Fatalf("keys after removal = %d, want 1", got)
	}
	// Early-exit Range.
	n := 0
	rt.Range(func(Key, Groups) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early exit visited %d", n)
	}
}

// TestTopLabelsForColdAndWarm checks the scan fallback (no view) and the
// binary-search path (view built) agree.
func TestTopLabelsForColdAndWarm(t *testing.T) {
	rt, _, m, links := protTable(t)
	rt.MustAdd(links["e4"], m["s21"], 1, Entry{Out: links["e5"], Ops: Ops{Pop()}})
	cold := rt.TopLabelsFor(links["e1"])
	rt.Keys() // build the view
	warm := rt.TopLabelsFor(links["e1"])
	if len(cold) != len(warm) {
		t.Fatalf("cold %v vs warm %v", cold, warm)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("cold %v vs warm %v", cold, warm)
		}
	}
	if tops := rt.TopLabelsFor(links["e5"]); tops != nil {
		t.Fatalf("expected nil for linkless key, got %v", tops)
	}
}
