package routing

import (
	"errors"
	"testing"
	"testing/quick"

	"aalwines/internal/labels"
)

func testLabels() (*labels.Table, map[string]labels.ID) {
	t := labels.NewTable()
	m := map[string]labels.ID{}
	for _, n := range []string{"30", "31"} {
		m[n] = t.MustIntern(n, labels.MPLS)
	}
	for _, n := range []string{"s20", "s21"} {
		m[n] = t.MustIntern(n, labels.BottomMPLS)
	}
	for _, n := range []string{"ip1", "ip2"} {
		m[n] = t.MustIntern(n, labels.IP)
	}
	return t, m
}

// TestPaperRewriteExample reproduces the worked example of §2.2:
// ℋ(30 ∘ s20 ∘ ip1, pop ∘ swap(s21) ∘ push(31)) = 31 ∘ s21 ∘ ip1.
func TestPaperRewriteExample(t *testing.T) {
	tbl, m := testLabels()
	h := labels.Header{m["30"], m["s20"], m["ip1"]}
	got, err := Rewrite(tbl, h, Ops{Pop(), Swap(m["s21"]), Push(m["31"])})
	if err != nil {
		t.Fatal(err)
	}
	want := labels.Header{m["31"], m["s21"], m["ip1"]}
	if !got.Equal(want) {
		t.Fatalf("got %s, want %s", got.Format(tbl), want.Format(tbl))
	}
	// Original header must be untouched.
	if !h.Equal(labels.Header{m["30"], m["s20"], m["ip1"]}) {
		t.Fatal("Rewrite mutated its input")
	}
}

func TestRewriteEmptyOps(t *testing.T) {
	tbl, m := testLabels()
	h := labels.Header{m["ip1"]}
	got, err := Rewrite(tbl, h, nil)
	if err != nil || !got.Equal(h) {
		t.Fatalf("identity rewrite: got %v err %v", got, err)
	}
}

func TestRewriteUndefinedCases(t *testing.T) {
	tbl, m := testLabels()
	cases := []struct {
		name string
		h    labels.Header
		ops  Ops
	}{
		{"pop IP", labels.Header{m["ip1"]}, Ops{Pop()}},
		{"pop past bottom", labels.Header{m["s20"], m["ip1"]}, Ops{Pop(), Pop()}},
		{"push bottom on mpls", labels.Header{m["30"], m["s20"], m["ip1"]}, Ops{Push(m["s21"])}},
		{"push ip", labels.Header{m["s20"], m["ip1"]}, Ops{Push(m["ip2"])}},
		{"swap ip for mpls", labels.Header{m["ip1"]}, Ops{Swap(m["30"])}},
		{"swap bottom for plain", labels.Header{m["s20"], m["ip1"]}, Ops{Swap(m["30"])}},
		{"swap plain for bottom", labels.Header{m["30"], m["s20"], m["ip1"]}, Ops{Swap(m["s21"])}},
		{"op on empty", labels.Header{}, Ops{Pop()}},
	}
	for _, c := range cases {
		if _, err := Rewrite(tbl, c.h, c.ops); !errors.Is(err, ErrUndefined) {
			t.Errorf("%s: err = %v, want ErrUndefined", c.name, err)
		}
	}
}

func TestRewriteDefinedCases(t *testing.T) {
	tbl, m := testLabels()
	cases := []struct {
		name string
		h    labels.Header
		ops  Ops
		want labels.Header
	}{
		{"swap mpls", labels.Header{m["30"], m["s20"], m["ip1"]}, Ops{Swap(m["31"])},
			labels.Header{m["31"], m["s20"], m["ip1"]}},
		{"swap bottom", labels.Header{m["s20"], m["ip1"]}, Ops{Swap(m["s21"])},
			labels.Header{m["s21"], m["ip1"]}},
		{"swap ip for ip", labels.Header{m["ip1"]}, Ops{Swap(m["ip2"])},
			labels.Header{m["ip2"]}},
		{"push on bottom", labels.Header{m["s20"], m["ip1"]}, Ops{Push(m["30"])},
			labels.Header{m["30"], m["s20"], m["ip1"]}},
		{"push bottom on ip", labels.Header{m["ip1"]}, Ops{Push(m["s20"])},
			labels.Header{m["s20"], m["ip1"]}},
		{"pop to bottom", labels.Header{m["30"], m["s20"], m["ip1"]}, Ops{Pop()},
			labels.Header{m["s20"], m["ip1"]}},
		{"pop bottom", labels.Header{m["s20"], m["ip1"]}, Ops{Pop()},
			labels.Header{m["ip1"]}},
		{"swap then push", labels.Header{m["s20"], m["ip1"]}, Ops{Swap(m["s21"]), Push(m["30"])},
			labels.Header{m["30"], m["s21"], m["ip1"]}},
	}
	for _, c := range cases {
		got, err := Rewrite(tbl, c.h, c.ops)
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: got %s, want %s", c.name, got.Format(tbl), c.want.Format(tbl))
		}
	}
}

// Property: when Rewrite succeeds on a valid header, the result is valid.
// This is the closure property that makes the pushdown encoding sound.
func TestRewritePreservesValidity(t *testing.T) {
	tbl, m := testLabels()
	allOps := []Op{
		Swap(m["30"]), Swap(m["31"]), Swap(m["s20"]), Swap(m["s21"]), Swap(m["ip2"]),
		Push(m["30"]), Push(m["31"]), Push(m["s20"]), Push(m["s21"]),
		Pop(),
	}
	mpls := []labels.ID{m["30"], m["31"]}
	f := func(depth uint8, opIdx []uint8) bool {
		h := labels.Header{}
		for i := 0; i < int(depth%4); i++ {
			h = append(h, mpls[i%2])
		}
		h = append(h, m["s20"], m["ip1"])
		var ops Ops
		for _, oi := range opIdx {
			ops = append(ops, allOps[int(oi)%len(allOps)])
		}
		got, err := Rewrite(tbl, h, ops)
		if err != nil {
			return errors.Is(err, ErrUndefined)
		}
		return got.Valid(tbl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: StackGrowth equals the actual header length change when the
// rewrite is defined.
func TestStackGrowthMatchesRewrite(t *testing.T) {
	tbl, m := testLabels()
	seqs := []Ops{
		{Push(m["30"])},
		{Pop()},
		{Swap(m["31"])},
		{Pop(), Swap(m["s21"]), Push(m["31"])},
		{Push(m["30"]), Push(m["31"])},
		{Swap(m["s21"]), Push(m["30"]), Push(m["31"])},
	}
	h := labels.Header{m["30"], m["s20"], m["ip1"]}
	for _, ops := range seqs {
		got, err := Rewrite(tbl, h, ops)
		if err != nil {
			continue
		}
		if len(got)-len(h) != ops.StackGrowth() {
			t.Errorf("ops %s: growth %d, header delta %d",
				ops.Format(tbl), ops.StackGrowth(), len(got)-len(h))
		}
	}
}

func TestOpsFormat(t *testing.T) {
	tbl, m := testLabels()
	ops := Ops{Swap(m["s21"]), Push(m["30"])}
	if got := ops.Format(tbl); got != "swap(s21) ∘ push(30)" {
		t.Errorf("Format = %q", got)
	}
	if got := (Ops{}).Format(tbl); got != "ε" {
		t.Errorf("Format(empty) = %q", got)
	}
	if got := Pop().Format(tbl); got != "pop" {
		t.Errorf("pop Format = %q", got)
	}
}
