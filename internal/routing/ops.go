// Package routing implements the MPLS forwarding model of the AalWiNes
// paper: header manipulation operations (push/swap/pop, Definition 3), the
// partial header rewrite function ℋ, and routing tables τ that map an
// incoming link and top-of-stack label to a priority-ordered sequence of
// traffic engineering groups (Definition 2).
package routing

import (
	"errors"
	"fmt"
	"strings"

	"aalwines/internal/labels"
)

// OpKind enumerates the three MPLS stack operations.
type OpKind uint8

const (
	// OpSwap replaces the top label.
	OpSwap OpKind = iota
	// OpPush pushes a new label on top of the stack.
	OpPush
	// OpPop removes the top label (only defined on MPLS labels, never IP).
	OpPop
)

// Op is a single MPLS operation. Label is meaningful for swap and push.
type Op struct {
	Kind  OpKind
	Label labels.ID
}

// Swap returns a swap(ℓ) operation.
func Swap(l labels.ID) Op { return Op{Kind: OpSwap, Label: l} }

// Push returns a push(ℓ) operation.
func Push(l labels.ID) Op { return Op{Kind: OpPush, Label: l} }

// Pop returns the pop operation.
func Pop() Op { return Op{Kind: OpPop} }

// Format renders the op in the paper's notation, e.g. "swap(s21)".
func (o Op) Format(t *labels.Table) string {
	switch o.Kind {
	case OpSwap:
		return fmt.Sprintf("swap(%s)", t.Name(o.Label))
	case OpPush:
		return fmt.Sprintf("push(%s)", t.Name(o.Label))
	case OpPop:
		return "pop"
	default:
		return fmt.Sprintf("op(%d)", o.Kind)
	}
}

// Ops is a sequence of operations ω ∈ Op*, applied left to right.
type Ops []Op

// FormatOps renders an op sequence like "swap(s21) ∘ push(30)".
func (ops Ops) Format(t *labels.Table) string {
	if len(ops) == 0 {
		return "ε"
	}
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.Format(t)
	}
	return strings.Join(parts, " ∘ ")
}

// StackGrowth returns the net change in stack height caused by the
// sequence: +1 per push, -1 per pop. Used by the Tunnels atomic quantity,
// whose per-step contribution is max(0, StackGrowth).
func (ops Ops) StackGrowth() int {
	g := 0
	for _, o := range ops {
		switch o.Kind {
		case OpPush:
			g++
		case OpPop:
			g--
		}
	}
	return g
}

// ErrUndefined is returned by Rewrite when ℋ(h, ω) is undefined — e.g.
// popping an IP label, swapping in a label that would make the header
// invalid, or operating on an empty header.
var ErrUndefined = errors.New("routing: header rewrite undefined")

// Rewrite implements the partial header rewrite function ℋ : H × Op* ⇀ H of
// Definition 3. It returns a fresh header (h is not modified) or
// ErrUndefined when any intermediate step is undefined. The input header is
// assumed valid; the output header is then valid by construction, which the
// side conditions of Definition 3 guarantee.
func Rewrite(t *labels.Table, h labels.Header, ops Ops) (labels.Header, error) {
	cur := h.Clone()
	for _, o := range ops {
		if len(cur) == 0 {
			return nil, ErrUndefined
		}
		top := cur[0]
		switch o.Kind {
		case OpSwap:
			// swap(ℓ') requires ℓ'h ∈ H: the new label must be valid in the
			// position of the old top, i.e. on top of the rest of the stack.
			if len(cur) == 1 {
				// Only an IP label; swapping it would need ℓ' valid as a
				// whole header, i.e. ℓ' ∈ L_IP. Swapping IP labels is not an
				// MPLS operation in this model.
				if t.Kind(o.Label) != labels.IP {
					return nil, ErrUndefined
				}
				cur[0] = o.Label
				continue
			}
			if !labels.ValidOnTopOf(t, o.Label, cur[1]) {
				return nil, ErrUndefined
			}
			cur[0] = o.Label
		case OpPush:
			if !labels.ValidOnTopOf(t, o.Label, top) {
				return nil, ErrUndefined
			}
			cur = append(labels.Header{o.Label}, cur...)
		case OpPop:
			k := t.Kind(top)
			if k != labels.MPLS && k != labels.BottomMPLS {
				return nil, ErrUndefined
			}
			cur = cur[1:]
		default:
			return nil, fmt.Errorf("routing: unknown op kind %d", o.Kind)
		}
	}
	return cur, nil
}
