package routing

import (
	"fmt"
	"sort"

	"aalwines/internal/labels"
	"aalwines/internal/topology"
)

// Entry is one forwarding alternative inside a traffic engineering group:
// forward the packet out of link Out, applying Ops to the header.
type Entry struct {
	Out topology.LinkID
	Ops Ops
}

// Group is a traffic engineering group: a set of entries of equal priority.
// The router may nondeterministically select any entry whose outgoing link
// is active.
type Group struct {
	Entries []Entry
}

// Links returns the set E(O) of outgoing links used by the group, without
// duplicates, in ascending order.
func (g *Group) Links() []topology.LinkID {
	seen := make(map[topology.LinkID]bool, len(g.Entries))
	var out []topology.LinkID
	for _, e := range g.Entries {
		if !seen[e.Out] {
			seen[e.Out] = true
			out = append(out, e.Out)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Groups is a priority-ordered sequence of traffic engineering groups
// O_1 O_2 ... O_n; index 0 has the highest priority.
type Groups []Group

// PrefixLinks returns the set of distinct links appearing in groups with
// index < j, i.e. the links that must all have failed for group j to be
// selected. Its cardinality is the per-step Failures quantity.
func (gs Groups) PrefixLinks(j int) []topology.LinkID {
	seen := make(map[topology.LinkID]bool)
	var out []topology.LinkID
	for i := 0; i < j && i < len(gs); i++ {
		for _, e := range gs[i].Entries {
			if !seen[e.Out] {
				seen[e.Out] = true
				out = append(out, e.Out)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tableKey indexes the routing table τ by (incoming link, top label).
type tableKey struct {
	in  topology.LinkID
	top labels.ID
}

// Table is the routing table τ : E × L → (2^{E×Op*})* of Definition 2.
// The zero value is an empty table.
type Table struct {
	entries map[tableKey]Groups
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{entries: make(map[tableKey]Groups)}
}

// Add appends an entry for (in, top) at the given priority (1 = highest,
// matching the paper's tables). Missing intermediate priorities are created
// as empty groups and skipped by the active-group logic.
func (t *Table) Add(in topology.LinkID, top labels.ID, priority int, e Entry) error {
	if priority < 1 {
		return fmt.Errorf("routing: priority %d < 1", priority)
	}
	if t.entries == nil {
		t.entries = make(map[tableKey]Groups)
	}
	k := tableKey{in, top}
	gs := t.entries[k]
	for len(gs) < priority {
		gs = append(gs, Group{})
	}
	gs[priority-1].Entries = append(gs[priority-1].Entries, e)
	t.entries[k] = gs
	return nil
}

// MustAdd is Add that panics on error; for generators and tests.
func (t *Table) MustAdd(in topology.LinkID, top labels.ID, priority int, e Entry) {
	if err := t.Add(in, top, priority, e); err != nil {
		panic(err)
	}
}

// SetGroups installs a complete group sequence for (in, top), replacing
// any existing one; empty gs removes the key. Scenario overlays use this
// to install filtered views of a base table. Callers must not pass
// trailing empty groups: Add never creates them, and keeping the invariant
// makes an overlay table indistinguishable from one built from scratch.
func (t *Table) SetGroups(in topology.LinkID, top labels.ID, gs Groups) {
	if t.entries == nil {
		t.entries = make(map[tableKey]Groups)
	}
	k := tableKey{in, top}
	if len(gs) == 0 {
		delete(t.entries, k)
		return
	}
	t.entries[k] = gs
}

// Lookup returns τ(in, top), or nil when the router drops such packets.
func (t *Table) Lookup(in topology.LinkID, top labels.ID) Groups {
	return t.entries[tableKey{in, top}]
}

// Active implements the function 𝒜: it returns the entries of the highest-
// priority group that has at least one active (non-failed) link, restricted
// to entries whose own link is active, together with the group's index
// (0-based) and the set of links that must have failed for the group to be
// chosen. ok is false when no group is active.
func (t *Table) Active(in topology.LinkID, top labels.ID, failed func(topology.LinkID) bool) (entries []Entry, groupIdx int, mustFail []topology.LinkID, ok bool) {
	gs := t.entries[tableKey{in, top}]
	for j, g := range gs {
		var act []Entry
		for _, e := range g.Entries {
			if !failed(e.Out) {
				act = append(act, e)
			}
		}
		if len(act) > 0 {
			return act, j, gs.PrefixLinks(j), true
		}
	}
	return nil, -1, nil, false
}

// Keys returns all (incoming link, top label) pairs with at least one
// entry, in deterministic order.
func (t *Table) Keys() []Key {
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, Key{In: k.in, Top: k.top})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].In != keys[j].In {
			return keys[i].In < keys[j].In
		}
		return keys[i].Top < keys[j].Top
	})
	return keys
}

// Key is an exported (incoming link, top label) routing table index.
type Key struct {
	In  topology.LinkID
	Top labels.ID
}

// NumRules returns the total number of forwarding entries across all keys,
// groups and priorities — the "forwarding rules" count used when sizing
// networks (NORDUnet has >250,000 of them).
func (t *Table) NumRules() int {
	n := 0
	for _, gs := range t.entries {
		for _, g := range gs {
			n += len(g.Entries)
		}
	}
	return n
}

// TopLabelsFor returns the set of top labels with entries for the given
// incoming link, in ascending ID order.
func (t *Table) TopLabelsFor(in topology.LinkID) []labels.ID {
	var out []labels.ID
	for k := range t.entries {
		if k.in == in {
			out = append(out, k.top)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
