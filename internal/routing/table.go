package routing

import (
	"fmt"
	"sort"
	"sync/atomic"

	"aalwines/internal/labels"
	"aalwines/internal/topology"
)

// Entry is one forwarding alternative inside a traffic engineering group:
// forward the packet out of link Out, applying Ops to the header.
type Entry struct {
	Out topology.LinkID
	Ops Ops
}

// Group is a traffic engineering group: a set of entries of equal priority.
// The router may nondeterministically select any entry whose outgoing link
// is active.
type Group struct {
	Entries []Entry
}

// Links returns the set E(O) of outgoing links used by the group, without
// duplicates, in ascending order.
func (g *Group) Links() []topology.LinkID {
	if len(g.Entries) == 0 {
		return nil
	}
	out := make([]topology.LinkID, 0, len(g.Entries))
	for _, e := range g.Entries {
		out = append(out, e.Out)
	}
	return sortDedupLinks(out)
}

// sortDedupLinks sorts in place and removes duplicates. Groups are tiny
// (a handful of entries), so the slice pass beats a map allocation on the
// hot validation paths by a wide margin.
func sortDedupLinks(out []topology.LinkID) []topology.LinkID {
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Groups is a priority-ordered sequence of traffic engineering groups
// O_1 O_2 ... O_n; index 0 has the highest priority.
type Groups []Group

// PrefixLinks returns the set of distinct links appearing in groups with
// index < j, i.e. the links that must all have failed for group j to be
// selected. Its cardinality is the per-step Failures quantity.
func (gs Groups) PrefixLinks(j int) []topology.LinkID {
	n := 0
	for i := 0; i < j && i < len(gs); i++ {
		n += len(gs[i].Entries)
	}
	if n == 0 {
		return nil
	}
	out := make([]topology.LinkID, 0, n)
	for i := 0; i < j && i < len(gs); i++ {
		for _, e := range gs[i].Entries {
			out = append(out, e.Out)
		}
	}
	return sortDedupLinks(out)
}

// tableKey indexes the routing table τ by (incoming link, top label).
type tableKey struct {
	in  topology.LinkID
	top labels.ID
}

// Table is the routing table τ : E × L → (2^{E×Op*})* of Definition 2.
// The zero value is an empty table.
//
// Reads at translation/verification time go through a lazily built flat
// view (sorted key and group slices) cached behind an atomic pointer, so
// the repeated whole-table walks of query translation and slicing cost one
// sort per table lifetime instead of one per query. Any mutation drops the
// view; it is rebuilt on the next Keys/Range call. Tables must not be
// mutated concurrently with reads (the map itself forbids that already);
// concurrent readers are safe and share one view.
type Table struct {
	entries map[tableKey]Groups
	view    atomic.Pointer[tableView]
}

// tableView is an immutable sorted snapshot of the table: keys ascending
// by (incoming link, top label), groups aligned with keys. numRules is the
// entry total, cached because NumRules sits on sizing/stats paths.
type tableView struct {
	keys     []Key
	groups   []Groups
	numRules int
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{entries: make(map[tableKey]Groups)}
}

// Reserve pre-sizes the key index for about n keys, rehashing any keys
// added so far. Generators that know their rule counts call it before the
// bulk Add loop to avoid incremental map growth (at paper scale the table
// holds >10⁵ keys).
func (t *Table) Reserve(n int) {
	if len(t.entries) >= n {
		return
	}
	m := make(map[tableKey]Groups, n)
	for k, v := range t.entries {
		m[k] = v
	}
	t.entries = m
	t.invalidate()
}

// invalidate drops the cached flat view after a mutation.
func (t *Table) invalidate() {
	t.view.Store(nil)
}

// flat returns the cached view, building it if needed. Callers must be on
// a read-only path (see the Table comment).
func (t *Table) flat() *tableView {
	if v := t.view.Load(); v != nil {
		return v
	}
	v := &tableView{
		keys:   make([]Key, 0, len(t.entries)),
		groups: make([]Groups, 0, len(t.entries)),
	}
	for k, gs := range t.entries {
		v.keys = append(v.keys, Key{In: k.in, Top: k.top})
		for _, g := range gs {
			v.numRules += len(g.Entries)
		}
	}
	sort.Slice(v.keys, func(i, j int) bool {
		if v.keys[i].In != v.keys[j].In {
			return v.keys[i].In < v.keys[j].In
		}
		return v.keys[i].Top < v.keys[j].Top
	})
	for _, k := range v.keys {
		v.groups = append(v.groups, t.entries[tableKey{k.In, k.Top}])
	}
	t.view.Store(v)
	return v
}

// Add appends an entry for (in, top) at the given priority (1 = highest,
// matching the paper's tables). Missing intermediate priorities are created
// as empty groups and skipped by the active-group logic.
func (t *Table) Add(in topology.LinkID, top labels.ID, priority int, e Entry) error {
	if priority < 1 {
		return fmt.Errorf("routing: priority %d < 1", priority)
	}
	if t.entries == nil {
		t.entries = make(map[tableKey]Groups)
	}
	k := tableKey{in, top}
	gs := t.entries[k]
	for len(gs) < priority {
		gs = append(gs, Group{})
	}
	gs[priority-1].Entries = append(gs[priority-1].Entries, e)
	t.entries[k] = gs
	t.invalidate()
	return nil
}

// MustAdd is Add that panics on error; for generators and tests.
func (t *Table) MustAdd(in topology.LinkID, top labels.ID, priority int, e Entry) {
	if err := t.Add(in, top, priority, e); err != nil {
		panic(err)
	}
}

// SetGroups installs a complete group sequence for (in, top), replacing
// any existing one; empty gs removes the key. Scenario overlays use this
// to install filtered views of a base table. Callers must not pass
// trailing empty groups: Add never creates them, and keeping the invariant
// makes an overlay table indistinguishable from one built from scratch.
func (t *Table) SetGroups(in topology.LinkID, top labels.ID, gs Groups) {
	if t.entries == nil {
		t.entries = make(map[tableKey]Groups)
	}
	k := tableKey{in, top}
	if len(gs) == 0 {
		delete(t.entries, k)
	} else {
		t.entries[k] = gs
	}
	t.invalidate()
}

// Lookup returns τ(in, top), or nil when the router drops such packets.
func (t *Table) Lookup(in topology.LinkID, top labels.ID) Groups {
	return t.entries[tableKey{in, top}]
}

// Active implements the function 𝒜: it returns the entries of the highest-
// priority group that has at least one active (non-failed) link, restricted
// to entries whose own link is active, together with the group's index
// (0-based) and the set of links that must have failed for the group to be
// chosen. ok is false when no group is active.
func (t *Table) Active(in topology.LinkID, top labels.ID, failed func(topology.LinkID) bool) (entries []Entry, groupIdx int, mustFail []topology.LinkID, ok bool) {
	gs := t.entries[tableKey{in, top}]
	for j, g := range gs {
		var act []Entry
		for _, e := range g.Entries {
			if !failed(e.Out) {
				act = append(act, e)
			}
		}
		if len(act) > 0 {
			return act, j, gs.PrefixLinks(j), true
		}
	}
	return nil, -1, nil, false
}

// Keys returns all (incoming link, top label) pairs with at least one
// entry, in deterministic order. The result is a fresh slice the caller
// may keep; hot paths should prefer Range, which walks the cached view
// without copying.
func (t *Table) Keys() []Key {
	v := t.flat()
	keys := make([]Key, len(v.keys))
	copy(keys, v.keys)
	return keys
}

// Range calls fn for every (key, groups) pair in the same deterministic
// order as Keys, stopping early if fn returns false. It avoids both the
// per-call key-slice copy and the per-key map lookup of the
// Keys-then-Lookup pattern, which dominates translation at paper scale.
func (t *Table) Range(fn func(Key, Groups) bool) {
	v := t.flat()
	for i, k := range v.keys {
		if !fn(k, v.groups[i]) {
			return
		}
	}
}

// NumKeys returns the number of (incoming link, top label) pairs.
func (t *Table) NumKeys() int { return len(t.entries) }

// Key is an exported (incoming link, top label) routing table index.
type Key struct {
	In  topology.LinkID
	Top labels.ID
}

// NumRules returns the total number of forwarding entries across all keys,
// groups and priorities — the "forwarding rules" count used when sizing
// networks (NORDUnet has >250,000 of them).
func (t *Table) NumRules() int {
	if v := t.view.Load(); v != nil {
		return v.numRules
	}
	n := 0
	for _, gs := range t.entries {
		for _, g := range gs {
			n += len(g.Entries)
		}
	}
	return n
}

// TopLabelsFor returns the set of top labels with entries for the given
// incoming link, in ascending ID order.
//
// When the flat view is already built (read-only phases) this is a binary
// search plus a contiguous copy; while the table is under construction it
// falls back to the linear scan rather than rebuilding the view after
// every interleaved Add (synthesis mirrors bypass arrivals by calling this
// mid-mutation).
func (t *Table) TopLabelsFor(in topology.LinkID) []labels.ID {
	if v := t.view.Load(); v != nil {
		lo := sort.Search(len(v.keys), func(i int) bool { return v.keys[i].In >= in })
		hi := lo
		for hi < len(v.keys) && v.keys[hi].In == in {
			hi++
		}
		if lo == hi {
			return nil
		}
		out := make([]labels.ID, 0, hi-lo)
		for _, k := range v.keys[lo:hi] {
			out = append(out, k.Top)
		}
		return out
	}
	var out []labels.ID
	for k := range t.entries {
		if k.in == in {
			out = append(out, k.top)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
