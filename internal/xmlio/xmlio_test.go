package xmlio_test

import (
	"bytes"
	"strings"
	"testing"

	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/xmlio"
)

// TestRoundTripRunningExample writes the running example and reads it back;
// verdicts of the Figure 1d queries must be unchanged.
func TestRoundTripRunningExample(t *testing.T) {
	re := gen.RunningExample()
	var topo, route bytes.Buffer
	if err := xmlio.WriteTopology(&topo, re.Network); err != nil {
		t.Fatal(err)
	}
	if err := xmlio.WriteRouting(&route, re.Network); err != nil {
		t.Fatal(err)
	}
	got, err := xmlio.ReadNetwork(bytes.NewReader(topo.Bytes()), bytes.NewReader(route.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Topo.NumRouters() != re.Topo.NumRouters() {
		t.Fatalf("routers: %d vs %d", got.Topo.NumRouters(), re.Topo.NumRouters())
	}
	if got.Routing.NumRules() != re.Routing.NumRules() {
		t.Fatalf("rules: %d vs %d", got.Routing.NumRules(), re.Routing.NumRules())
	}
	queries := []string{
		"<ip> [.#v0] .* [v3#.] <ip> 0",
		"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
		"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
	}
	for _, q := range queries {
		a, err := engine.VerifyText(re.Network, q, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := engine.VerifyText(got, q, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Verdict != b.Verdict {
			t.Errorf("%s: original=%v roundtrip=%v", q, a.Verdict, b.Verdict)
		}
	}
}

// TestRoundTripZoo round-trips a generated network with protection.
func TestRoundTripZoo(t *testing.T) {
	s := gen.Zoo(gen.ZooOpts{Routers: 16, Seed: 2, Protection: true})
	var topo, route bytes.Buffer
	if err := xmlio.WriteTopology(&topo, s.Net); err != nil {
		t.Fatal(err)
	}
	if err := xmlio.WriteRouting(&route, s.Net); err != nil {
		t.Fatal(err)
	}
	got, err := xmlio.ReadNetwork(&topo, &route)
	if err != nil {
		t.Fatal(err)
	}
	if got.Routing.NumRules() != s.Net.Routing.NumRules() {
		t.Fatalf("rules: %d vs %d", got.Routing.NumRules(), s.Net.Routing.NumRules())
	}
	if got.Labels.Len() != s.Net.Labels.Len() {
		t.Fatalf("labels: %d vs %d", got.Labels.Len(), s.Net.Labels.Len())
	}
}

const appendixTopo = `<?xml version="1.0"?>
<network>
  <routers>
    <router name="R0">
      <interfaces>
        <interface name="ae1.11"/>
        <interface name="ae5.0"/>
        <interface name="et-3/0/0.2"/>
      </interfaces>
    </router>
    <router name="R3">
      <interfaces>
        <interface name="et-1/3/0.2"/>
      </interfaces>
    </router>
  </routers>
  <links>
    <sides>
      <shared_interface interface="et-3/0/0.2" router="R0"/>
      <shared_interface interface="et-1/3/0.2" router="R3"/>
    </sides>
  </links>
</network>`

const appendixRoute = `<?xml version="1.0"?>
<routes>
  <routings>
    <routing for="R3">
      <destinations>
        <destination from="et-1/3/0.2" label="$300292">
          <te-groups>
            <te-group priority="1">
              <route to="et-1/3/0.2">
                <actions>
                  <action type="swap" arg="$300293"/>
                </actions>
              </route>
            </te-group>
          </te-groups>
        </destination>
      </destinations>
    </routing>
  </routings>
</routes>`

// TestAppendixFormat parses hand-written XML in the Appendix A shape.
func TestAppendixFormat(t *testing.T) {
	net, err := xmlio.ReadNetwork(strings.NewReader(appendixTopo), strings.NewReader(appendixRoute))
	if err != nil {
		t.Fatal(err)
	}
	if net.Topo.NumRouters() != 2 {
		t.Fatalf("routers = %d", net.Topo.NumRouters())
	}
	// One <sides> element = two directed links.
	if net.Topo.NumLinks() != 2 {
		t.Fatalf("links = %d, want 2", net.Topo.NumLinks())
	}
	if net.Routing.NumRules() != 1 {
		t.Fatalf("rules = %d", net.Routing.NumRules())
	}
	// Service labels $NNN guess to plain MPLS kind.
	id := net.Labels.Lookup("$300292")
	if id == 0 {
		t.Fatal("label not interned")
	}
}

func TestReadErrors(t *testing.T) {
	ok := appendixTopo
	cases := []struct {
		name        string
		topo, route string
	}{
		{"bad topo xml", "<network", appendixRoute},
		{"bad route xml", ok, "<routes"},
		{"one-sided link", strings.Replace(ok, `<shared_interface interface="et-1/3/0.2" router="R3"/>`, "", 1), appendixRoute},
		{"unknown router in link", strings.Replace(ok, `router="R3"`, `router="R9"`, 1), appendixRoute},
		{"routing for unknown router", ok, strings.Replace(appendixRoute, `for="R3"`, `for="R9"`, 1)},
		{"unknown in interface", ok, strings.Replace(appendixRoute, `from="et-1/3/0.2"`, `from="nope"`, 1)},
		{"unknown out interface", ok, strings.Replace(appendixRoute, `to="et-1/3/0.2"`, `to="nope"`, 1)},
		{"bad action", ok, strings.Replace(appendixRoute, `type="swap"`, `type="frob"`, 1)},
		{"bad priority", ok, strings.Replace(appendixRoute, `priority="1"`, `priority="0"`, 1)},
	}
	for _, c := range cases {
		if _, err := xmlio.ReadNetwork(strings.NewReader(c.topo), strings.NewReader(c.route)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestExplicitKinds(t *testing.T) {
	route := strings.Replace(appendixRoute, `label="$300292"`, `label="$300292" kind="smpls"`, 1)
	net, err := xmlio.ReadNetwork(strings.NewReader(appendixTopo), strings.NewReader(route))
	if err != nil {
		t.Fatal(err)
	}
	id := net.Labels.Lookup("$300292")
	if got := net.Labels.Kind(id).String(); got != "smpls" {
		t.Fatalf("kind = %s, want smpls", got)
	}
	// Conflicting kind later must error.
	route2 := strings.Replace(route, `arg="$300293"`, `arg="$300292" kind="mpls"`, 1)
	if _, err := xmlio.ReadNetwork(strings.NewReader(appendixTopo), strings.NewReader(route2)); err == nil {
		t.Error("conflicting kinds accepted")
	}
}
