// Package xmlio reads and writes the vendor-agnostic XML network format of
// Appendix A: a topology file (routers with interfaces, links as pairs of
// shared interfaces) and a routing file (per-router destinations with
// priority-ordered traffic engineering groups of routes and MPLS actions).
package xmlio

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// ---- topology schema ----

// XMLNetwork is the root element of topo.xml.
type XMLNetwork struct {
	XMLName xml.Name    `xml:"network"`
	Name    string      `xml:"name,attr,omitempty"`
	Routers []XMLRouter `xml:"routers>router"`
	Links   []XMLSides  `xml:"links>sides"`
}

// XMLRouter declares a router and its interfaces.
type XMLRouter struct {
	Name       string         `xml:"name,attr"`
	Interfaces []XMLInterface `xml:"interfaces>interface"`
}

// XMLInterface declares one named interface.
type XMLInterface struct {
	Name string `xml:"name,attr"`
}

// XMLSides is one bidirectional link: two shared interfaces. A bidirectional
// physical link becomes two directed links in the model.
type XMLSides struct {
	Sides  []XMLSharedInterface `xml:"shared_interface"`
	Weight uint64               `xml:"weight,attr,omitempty"`
}

// XMLSharedInterface is one endpoint of a link.
type XMLSharedInterface struct {
	Interface string `xml:"interface,attr"`
	Router    string `xml:"router,attr"`
}

// ---- routing schema ----

// XMLRoutes is the root element of route.xml.
type XMLRoutes struct {
	XMLName  xml.Name     `xml:"routes"`
	Routings []XMLRouting `xml:"routings>routing"`
}

// XMLRouting holds the forwarding rules of one router.
type XMLRouting struct {
	For          string           `xml:"for,attr"`
	Destinations []XMLDestination `xml:"destinations>destination"`
}

// XMLDestination is a forwarding-table key: incoming interface + top label.
type XMLDestination struct {
	From  string       `xml:"from,attr"`
	Label string       `xml:"label,attr"`
	Kind  string       `xml:"kind,attr,omitempty"` // mpls|smpls|ip; guessed when empty
	TE    []XMLTEGroup `xml:"te-groups>te-group"`
}

// XMLTEGroup is one traffic engineering group with a priority (1 highest).
type XMLTEGroup struct {
	Priority int        `xml:"priority,attr"`
	Routes   []XMLRoute `xml:"route"`
}

// XMLRoute is one forwarding alternative: the outgoing interface and the
// header actions.
type XMLRoute struct {
	To      string      `xml:"to,attr"`
	Actions []XMLAction `xml:"actions>action"`
}

// XMLAction is one MPLS operation.
type XMLAction struct {
	Type string `xml:"type,attr"`          // swap|push|pop
	Arg  string `xml:"arg,attr,omitempty"` // label for swap/push
	Kind string `xml:"kind,attr,omitempty"`
}

// WriteTopology serialises the network's topology. Directed link pairs
// (a→b, b→a over mirrored interfaces) are merged back into one <sides>
// element; unpaired directed links get their own element with a single
// side listed first (source).
func WriteTopology(w io.Writer, net *network.Network) error {
	g := net.Topo
	out := XMLNetwork{Name: net.Name}
	for i := range g.Routers {
		r := &g.Routers[i]
		xr := XMLRouter{Name: r.Name}
		var ifcs []string
		for _, l := range r.Out() {
			if g.Links[l].FromIfc != "" {
				ifcs = append(ifcs, g.Links[l].FromIfc)
			}
		}
		for _, l := range r.In() {
			if g.Links[l].ToIfc != "" {
				ifcs = append(ifcs, g.Links[l].ToIfc)
			}
		}
		sort.Strings(ifcs)
		prev := ""
		for _, ifc := range ifcs {
			if ifc != prev {
				xr.Interfaces = append(xr.Interfaces, XMLInterface{Name: ifc})
				prev = ifc
			}
		}
		out.Routers = append(out.Routers, xr)
	}
	// Pair up reverse links: a→b matches b→a when their interfaces mirror.
	used := make([]bool, g.NumLinks())
	for i := 0; i < g.NumLinks(); i++ {
		if used[i] {
			continue
		}
		l := g.Links[i]
		used[i] = true
		sides := XMLSides{Weight: l.Weight, Sides: []XMLSharedInterface{
			{Interface: l.FromIfc, Router: g.Routers[l.From].Name},
			{Interface: l.ToIfc, Router: g.Routers[l.To].Name},
		}}
		// Find the mirror link.
		for _, cand := range g.Routers[l.To].Out() {
			cl := g.Links[cand]
			if !used[cand] && cl.To == l.From && cl.FromIfc == l.ToIfc && cl.ToIfc == l.FromIfc {
				used[cand] = true
				break
			}
		}
		out.Links = append(out.Links, sides)
	}
	return encode(w, out)
}

// WriteRouting serialises the routing tables.
func WriteRouting(w io.Writer, net *network.Network) error {
	g := net.Topo
	byRouter := map[topology.RouterID][]routing.Key{}
	for _, key := range net.Routing.Keys() {
		r := g.Target(key.In)
		byRouter[r] = append(byRouter[r], key)
	}
	var routers []topology.RouterID
	for r := range byRouter {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	out := XMLRoutes{}
	for _, r := range routers {
		xr := XMLRouting{For: g.Routers[r].Name}
		for _, key := range byRouter[r] {
			lbl := net.Labels.Get(key.Top)
			xd := XMLDestination{
				From:  g.Links[key.In].ToIfc,
				Label: lbl.Name,
				Kind:  lbl.Kind.String(),
			}
			for pr, grp := range net.Routing.Lookup(key.In, key.Top) {
				if len(grp.Entries) == 0 {
					continue
				}
				xg := XMLTEGroup{Priority: pr + 1}
				for _, e := range grp.Entries {
					xroute := XMLRoute{To: g.Links[e.Out].FromIfc}
					for _, op := range e.Ops {
						switch op.Kind {
						case routing.OpSwap:
							l := net.Labels.Get(op.Label)
							xroute.Actions = append(xroute.Actions, XMLAction{Type: "swap", Arg: l.Name, Kind: l.Kind.String()})
						case routing.OpPush:
							l := net.Labels.Get(op.Label)
							xroute.Actions = append(xroute.Actions, XMLAction{Type: "push", Arg: l.Name, Kind: l.Kind.String()})
						case routing.OpPop:
							xroute.Actions = append(xroute.Actions, XMLAction{Type: "pop"})
						}
					}
					xg.Routes = append(xg.Routes, xroute)
				}
				xd.TE = append(xd.TE, xg)
			}
			xr.Destinations = append(xr.Destinations, xd)
		}
		out.Routings = append(out.Routings, xr)
	}
	return encode(w, out)
}

func encode(w io.Writer, v interface{}) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadNetwork parses a topology file and a routing file into a network.
func ReadNetwork(topo io.Reader, route io.Reader) (*network.Network, error) {
	var xn XMLNetwork
	if err := xml.NewDecoder(topo).Decode(&xn); err != nil {
		return nil, fmt.Errorf("xmlio: topology: %w", err)
	}
	name := xn.Name
	if name == "" {
		name = "xml-network"
	}
	net := network.New(name)
	g := net.Topo
	for _, xr := range xn.Routers {
		g.AddRouter(xr.Name)
	}
	for i, sides := range xn.Links {
		if len(sides.Sides) != 2 {
			return nil, fmt.Errorf("xmlio: link %d has %d sides, want 2", i, len(sides.Sides))
		}
		a, b := sides.Sides[0], sides.Sides[1]
		ra := g.RouterByName(a.Router)
		rb := g.RouterByName(b.Router)
		if ra == topology.NoRouter || rb == topology.NoRouter {
			return nil, fmt.Errorf("xmlio: link %d references unknown router", i)
		}
		w := sides.Weight
		if w == 0 {
			w = 1
		}
		if _, err := g.AddLink(ra, rb, a.Interface, b.Interface, w); err != nil {
			return nil, fmt.Errorf("xmlio: link %d: %w", i, err)
		}
		if _, err := g.AddLink(rb, ra, b.Interface, a.Interface, w); err != nil {
			return nil, fmt.Errorf("xmlio: link %d reverse: %w", i, err)
		}
	}

	var xr XMLRoutes
	if err := xml.NewDecoder(route).Decode(&xr); err != nil {
		return nil, fmt.Errorf("xmlio: routing: %w", err)
	}
	intern := func(name, kind string) (labels.ID, error) {
		if kind == "" {
			return net.Labels.InternGuess(name)
		}
		k, err := parseKind(kind)
		if err != nil {
			return labels.None, err
		}
		return net.Labels.Intern(name, k)
	}
	for _, routerEntry := range xr.Routings {
		r := g.RouterByName(routerEntry.For)
		if r == topology.NoRouter {
			return nil, fmt.Errorf("xmlio: routing for unknown router %q", routerEntry.For)
		}
		for _, d := range routerEntry.Destinations {
			in := g.LinkIn(r, d.From)
			if in == topology.NoLink {
				return nil, fmt.Errorf("xmlio: router %s has no incoming interface %q", routerEntry.For, d.From)
			}
			top, err := intern(d.Label, d.Kind)
			if err != nil {
				return nil, fmt.Errorf("xmlio: label %q: %w", d.Label, err)
			}
			for _, grp := range d.TE {
				if grp.Priority < 1 {
					return nil, fmt.Errorf("xmlio: router %s: priority %d < 1", routerEntry.For, grp.Priority)
				}
				for _, xroute := range grp.Routes {
					out := g.LinkOut(r, xroute.To)
					if out == topology.NoLink {
						return nil, fmt.Errorf("xmlio: router %s has no outgoing interface %q", routerEntry.For, xroute.To)
					}
					var ops routing.Ops
					for _, act := range xroute.Actions {
						switch act.Type {
						case "swap", "push":
							l, err := intern(act.Arg, act.Kind)
							if err != nil {
								return nil, fmt.Errorf("xmlio: action label %q: %w", act.Arg, err)
							}
							if act.Type == "swap" {
								ops = append(ops, routing.Swap(l))
							} else {
								ops = append(ops, routing.Push(l))
							}
						case "pop":
							ops = append(ops, routing.Pop())
						default:
							return nil, fmt.Errorf("xmlio: unknown action type %q", act.Type)
						}
					}
					if err := net.Routing.Add(in, top, grp.Priority, routing.Entry{Out: out, Ops: ops}); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return net, nil
}

func parseKind(s string) (labels.Kind, error) {
	switch s {
	case "mpls":
		return labels.MPLS, nil
	case "smpls":
		return labels.BottomMPLS, nil
	case "ip":
		return labels.IP, nil
	default:
		return 0, fmt.Errorf("xmlio: unknown label kind %q", s)
	}
}
