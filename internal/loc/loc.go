// Package loc handles the router location metadata of Appendix A.2: a JSON
// object mapping router names to latitude/longitude, used both for GUI
// visualisation and for the physical-distance function of the Distance
// atomic quantity.
package loc

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"aalwines/internal/network"
	"aalwines/internal/topology"
	"aalwines/internal/weight"
)

// Point is a geographic coordinate.
type Point struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// Read parses a location file ({"R0": {"lat": 46.5, "lng": 7.3}, ...}) and
// applies the coordinates to the network's routers. Unknown router names
// are an error; routers without an entry keep their previous location.
func Read(r io.Reader, net *network.Network) error {
	var m map[string]Point
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return fmt.Errorf("loc: %w", err)
	}
	for name, p := range m {
		id := net.Topo.RouterByName(name)
		if id == topology.NoRouter {
			return fmt.Errorf("loc: unknown router %q", name)
		}
		net.Topo.SetLocation(id, p.Lat, p.Lng)
	}
	return nil
}

// Write serialises the locations of all routers that have them, with keys
// in sorted order for reproducible output.
func Write(w io.Writer, net *network.Network) error {
	m := map[string]Point{}
	for i := range net.Topo.Routers {
		r := &net.Topo.Routers[i]
		if r.HasLoc {
			m[r.Name] = Point{Lat: r.Lat, Lng: r.Lng}
		}
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	// Stable output: encode as an ordered object by hand via RawMessage.
	ordered := make(map[string]json.RawMessage, len(m))
	for n, p := range m {
		b, err := json.Marshal(p)
		if err != nil {
			return err
		}
		ordered[n] = b
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ordered)
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// Haversine returns the great-circle distance between two points in
// kilometres.
func Haversine(a, b Point) float64 {
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(b.Lat - a.Lat)
	dLng := toRad(b.Lng - a.Lng)
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(a.Lat))*math.Cos(toRad(b.Lat))*math.Sin(dLng/2)*math.Sin(dLng/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(s))
}

// DistanceFunc builds a weight.DistanceFunc from router locations: the
// distance of a link is the great-circle distance between its endpoint
// routers in kilometres (minimum 1 so that paths always cost something).
// Links with unlocated endpoints fall back to the link weight annotation.
func DistanceFunc(net *network.Network) weight.DistanceFunc {
	g := net.Topo
	cached := make([]uint64, g.NumLinks())
	for i := range cached {
		l := g.Links[i]
		from, to := &g.Routers[l.From], &g.Routers[l.To]
		if from.HasLoc && to.HasLoc {
			d := Haversine(Point{from.Lat, from.Lng}, Point{to.Lat, to.Lng})
			if d < 1 {
				d = 1
			}
			cached[i] = uint64(d)
		} else {
			w := l.Weight
			if w == 0 {
				w = 1
			}
			cached[i] = w
		}
	}
	return func(l topology.LinkID) uint64 { return cached[l] }
}
