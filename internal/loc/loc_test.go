package loc_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/loc"
	"aalwines/internal/network"
	"aalwines/internal/topology"
	"aalwines/internal/weight"
)

func TestReadApplyWrite(t *testing.T) {
	n := network.New("t")
	n.Topo.AddRouter("R0")
	n.Topo.AddRouter("R1")
	in := `{ "R0": { "lat": 46.5, "lng": 7.3 }, "R1": { "lat": 55.7, "lng": 12.6 } }`
	if err := loc.Read(strings.NewReader(in), n); err != nil {
		t.Fatal(err)
	}
	r0 := n.Topo.Routers[0]
	if !r0.HasLoc || r0.Lat != 46.5 || r0.Lng != 7.3 {
		t.Fatalf("R0 location = %+v", r0)
	}
	var buf bytes.Buffer
	if err := loc.Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"R0"`) || !strings.Contains(out, `"lat": 46.5`) {
		t.Fatalf("Write output:\n%s", out)
	}
	// Round trip.
	n2 := network.New("t2")
	n2.Topo.AddRouter("R0")
	n2.Topo.AddRouter("R1")
	if err := loc.Read(&buf, n2); err != nil {
		t.Fatal(err)
	}
	if n2.Topo.Routers[1].Lat != 55.7 {
		t.Fatal("round trip lost data")
	}
}

func TestReadErrors(t *testing.T) {
	n := network.New("t")
	n.Topo.AddRouter("R0")
	if err := loc.Read(strings.NewReader(`{`), n); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := loc.Read(strings.NewReader(`{"nope": {"lat":1,"lng":2}}`), n); err == nil {
		t.Error("unknown router accepted")
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	cph := loc.Point{Lat: 55.68, Lng: 12.57}
	sto := loc.Point{Lat: 59.33, Lng: 18.06}
	d := loc.Haversine(cph, sto)
	// Copenhagen–Stockholm is roughly 520 km.
	if d < 450 || d > 600 {
		t.Errorf("CPH-STO = %.0f km, expected ≈520", d)
	}
	if z := loc.Haversine(cph, cph); z != 0 {
		t.Errorf("self distance = %f", z)
	}
	// Symmetry.
	if math.Abs(loc.Haversine(cph, sto)-loc.Haversine(sto, cph)) > 1e-9 {
		t.Error("not symmetric")
	}
}

func TestDistanceFunc(t *testing.T) {
	s := gen.Nordunet(gen.NordOpts{Services: 1, Seed: 1})
	df := loc.DistanceFunc(s.Net)
	// Core links have located endpoints: distance ≥ 1 km.
	anyOver100 := false
	for i := 0; i < s.Net.Topo.NumLinks(); i++ {
		d := df(topology.LinkID(i))
		if d == 0 {
			t.Fatalf("link %d has zero distance", i)
		}
		if d > 100 {
			anyOver100 = true
		}
	}
	if !anyOver100 {
		t.Error("no link over 100 km in a Nordic backbone?")
	}
	// Distance quantity integrates with EvalTrace.
	_ = weight.DistanceFunc(df)
}
