package cli_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aalwines/internal/cli"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/loc"
	"aalwines/internal/xmlio"
)

func TestLoadBuiltins(t *testing.T) {
	cases := []cli.NetFlags{
		{},
		{Builtin: "running-example"},
		{Builtin: "zoo", Routers: 16, Seed: 3},
		{Builtin: "nordunet", Services: 1, Edge: 6, Seed: 2},
	}
	for _, f := range cases {
		net, err := cli.Load(f)
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		if net.Topo.NumRouters() == 0 || net.Routing.NumRules() == 0 {
			t.Fatalf("%+v: empty network", f)
		}
	}
	if _, err := cli.Load(cli.NetFlags{Builtin: "nope"}); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	if _, err := cli.Load(cli.NetFlags{Topo: "only-topo.xml"}); err == nil {
		t.Fatal("topo without routing accepted")
	}
}

func TestLoadFromXMLFiles(t *testing.T) {
	dir := t.TempDir()
	re := gen.RunningExample()
	topoPath := filepath.Join(dir, "topo.xml")
	routePath := filepath.Join(dir, "route.xml")
	locPath := filepath.Join(dir, "loc.json")
	tf, err := os.Create(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlio.WriteTopology(tf, re.Network); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	rf, err := os.Create(routePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlio.WriteRouting(rf, re.Network); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	if err := os.WriteFile(locPath, []byte(`{"v0":{"lat":55.6,"lng":12.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	net, err := cli.Load(cli.NetFlags{Topo: topoPath, Route: routePath, Locations: locPath})
	if err != nil {
		t.Fatal(err)
	}
	if net.Routing.NumRules() != re.Routing.NumRules() {
		t.Fatalf("rules = %d, want %d", net.Routing.NumRules(), re.Routing.NumRules())
	}
	v0 := net.Topo.RouterByName("v0")
	if !net.Topo.Routers[v0].HasLoc {
		t.Fatal("locations not applied")
	}
	_ = loc.DistanceFunc(net)
}

func TestPrintResultTextAndJSON(t *testing.T) {
	re := gen.RunningExample()
	q := "<ip> [.#v0] .* [v3#.] <ip> 0"
	res, err := engine.VerifyText(re.Network, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := cli.PrintResult(&txt, re.Network, q, res, false); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"verdict: satisfied", "witness:", "timing:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	var js bytes.Buffer
	if err := cli.PrintResult(&js, re.Network, q, res, true); err != nil {
		t.Fatal(err)
	}
	var decoded cli.ResultJSON
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Verdict != "satisfied" || len(decoded.Trace) == 0 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Trace[0].Link == "" || len(decoded.Trace[0].Header) == 0 {
		t.Fatal("trace steps not rendered")
	}
}
