// Package cli holds the flag plumbing shared by the command-line tools:
// loading or generating networks, applying location data and rendering
// verification results.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"aalwines/internal/batch"
	"aalwines/internal/engine"
	"aalwines/internal/gen"
	"aalwines/internal/gml"
	"aalwines/internal/isis"
	"aalwines/internal/loc"
	"aalwines/internal/network"
	"aalwines/internal/xmlio"
)

// NetFlags describe where a network comes from.
type NetFlags struct {
	// Topo and Route are XML file paths (Appendix A format).
	Topo, Route string
	// ISIS is a mapping-file path for an IS-IS snapshot import.
	ISIS string
	// GML is a Topology Zoo GML file; the MPLS dataplane is synthesised on
	// it with Edge edge routers (default min(12, routers)).
	GML string
	// Builtin selects a generated network: "running-example", "nordunet",
	// "zoo", "fattree", "rings" or "backbone".
	Builtin string
	// Locations is an optional JSON location file.
	Locations string
	// Generator knobs.
	Routers  int
	Seed     int64
	Services int
	Edge     int
}

// Load builds the network described by the flags.
func Load(f NetFlags) (*network.Network, error) {
	switch {
	case f.Topo != "" || f.Route != "":
		if f.Topo == "" || f.Route == "" {
			return nil, fmt.Errorf("cli: -topo and -routing must be given together")
		}
		tf, err := os.Open(f.Topo)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		rf, err := os.Open(f.Route)
		if err != nil {
			return nil, err
		}
		defer rf.Close()
		net, err := xmlio.ReadNetwork(tf, rf)
		if err != nil {
			return nil, err
		}
		return applyLocations(net, f.Locations)
	case f.GML != "":
		gf, err := os.Open(f.GML)
		if err != nil {
			return nil, err
		}
		defer gf.Close()
		net, err := gml.ReadTopology(gf)
		if err != nil {
			return nil, err
		}
		edgeCount := f.Edge
		if edgeCount == 0 {
			edgeCount = 12
			if n := net.Topo.NumRouters(); n < edgeCount {
				edgeCount = n
			}
		}
		edge := gen.PickEdgeRouters(net, edgeCount, f.Seed)
		gen.Build(net, edge, gen.SynthOpts{Protection: true, Services: f.Services})
		return applyLocations(net, f.Locations)
	case f.ISIS != "":
		dir, base := filepath.Split(f.ISIS)
		if dir == "" {
			dir = "."
		}
		net, err := isis.Load(os.DirFS(dir), base)
		if err != nil {
			return nil, err
		}
		return applyLocations(net, f.Locations)
	default:
		net, err := builtin(f)
		if err != nil {
			return nil, err
		}
		return applyLocations(net, f.Locations)
	}
}

func builtin(f NetFlags) (*network.Network, error) {
	switch strings.ToLower(f.Builtin) {
	case "", "running-example", "example":
		return gen.RunningExample().Network, nil
	case "nordunet":
		return gen.Nordunet(gen.NordOpts{
			Services: orInt(f.Services, 2), EdgeRouters: f.Edge, Seed: f.Seed,
		}).Net, nil
	case "zoo":
		return gen.Zoo(gen.ZooOpts{
			Routers: orInt(f.Routers, 84), EdgeRouters: f.Edge,
			Protection: true, Seed: f.Seed,
		}).Net, nil
	case "fattree", "fat-tree":
		// -routers is a size target: the smallest even arity k whose
		// 5k²/4-switch fabric reaches it (default k=8).
		k := 8
		if f.Routers > 0 {
			for k = 2; 5*k*k/4 < f.Routers; k += 2 {
			}
		}
		return gen.FatTree(gen.FatTreeOpts{
			K: k, EdgeRouters: f.Edge, Services: f.Services, Seed: f.Seed,
		}).Net, nil
	case "rings", "ring-of-rings":
		// -routers is a size target at the default ring size of 8
		// (each ring contributes 8 routers plus its hub).
		rings := 0
		if f.Routers > 0 {
			rings = f.Routers / 9
			if rings < 3 {
				rings = 3
			}
		}
		return gen.RingOfRings(gen.RingOfRingsOpts{
			Rings: rings, EdgeRouters: f.Edge, Services: f.Services, Seed: f.Seed,
		}).Net, nil
	case "backbone":
		// -routers is a size target: an 8-router core plus PoPs.
		pops := 0
		if f.Routers > 8 {
			pops = f.Routers - 8
		}
		return gen.Backbone(gen.BackboneOpts{
			Pops: pops, EdgeRouters: f.Edge, Services: f.Services, Seed: f.Seed,
		}).Net, nil
	default:
		return nil, fmt.Errorf("cli: unknown builtin network %q", f.Builtin)
	}
}

func orInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func applyLocations(net *network.Network, path string) (*network.Network, error) {
	if path == "" {
		return net, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := loc.Read(f, net); err != nil {
		return nil, err
	}
	return net, nil
}

// ResultJSON is the machine-readable verification result.
type ResultJSON struct {
	Query    string     `json:"query"`
	Verdict  string     `json:"verdict"`
	Weight   []uint64   `json:"weight,omitempty"`
	Failed   []string   `json:"failedLinks,omitempty"`
	Trace    []StepJSON `json:"trace,omitempty"`
	TimingMS Timings    `json:"timingMs"`
	Sizes    Sizes      `json:"sizes"`
}

// Stable returns a copy of the result with the volatile blocks zeroed:
// wall-clock timings always differ between runs, and rule-count sizes move
// with translation strategy (a cached unsliced build and a fresh sliced
// build of the same network legitimately report different OverRules while
// producing identical verdicts and witnesses). Everything the verification
// semantics determine — query, verdict, weight, failed links, trace — is
// kept, so two Stable results are comparable byte-for-byte across engine
// configurations. Watch-subscription cells and the live differential
// harness compare this form.
func (r ResultJSON) Stable() ResultJSON {
	r.TimingMS = Timings{}
	r.Sizes = Sizes{}
	return r
}

// StepJSON is one trace step.
type StepJSON struct {
	Link   string   `json:"link"`
	Header []string `json:"header"`
}

// Timings carries per-phase durations in milliseconds.
type Timings struct {
	Build       float64 `json:"build"`
	Over        float64 `json:"over"`
	Under       float64 `json:"under,omitempty"`
	Reconstruct float64 `json:"reconstruct"`
}

// Sizes carries system sizes.
type Sizes struct {
	OverRules    int  `json:"overRules"`
	OverRulesPre int  `json:"overRulesBeforeReduction"`
	UnderRules   int  `json:"underRules,omitempty"`
	UnderUsed    bool `json:"underUsed"`
}

// TimingsOf converts engine stats to the JSON timing block. It is split
// out of ToJSON so error responses can carry the partial timings of a
// failed run.
func TimingsOf(st engine.Stats) Timings {
	return Timings{
		Build:       ms(st.BuildTime),
		Over:        ms(st.OverTime),
		Under:       ms(st.UnderTime),
		Reconstruct: ms(st.ReconstructTime),
	}
}

// SizesOf converts engine stats to the JSON sizes block.
func SizesOf(st engine.Stats) Sizes {
	return Sizes{
		OverRules:    st.OverRules,
		OverRulesPre: st.OverRulesPre,
		UnderRules:   st.UnderRules,
		UnderUsed:    st.UnderUsed,
	}
}

// ToJSON converts an engine result.
func ToJSON(net *network.Network, queryText string, res engine.Result) ResultJSON {
	out := ResultJSON{
		Query:    queryText,
		Verdict:  res.Verdict.String(),
		Weight:   res.Weight,
		TimingMS: TimingsOf(res.Stats),
		Sizes:    SizesOf(res.Stats),
	}
	for _, l := range res.Failed.Sorted() {
		out.Failed = append(out.Failed, net.Topo.LinkName(l))
	}
	for _, s := range res.Trace {
		step := StepJSON{Link: net.Topo.LinkName(s.Link)}
		for _, id := range s.Header {
			step.Header = append(step.Header, net.Labels.Name(id))
		}
		out.Trace = append(out.Trace, step)
	}
	return out
}

func ms(d interface{ Seconds() float64 }) float64 {
	return d.Seconds() * 1000
}

// ErrorCode classifies a verification error for machine consumption:
// "budget-exhausted" for an exhausted saturation budget (the server-side
// analogue of the paper's 10-minute timeout), "deadline-exceeded" for an
// expired per-query deadline, "cancelled" for a cancelled run, and
// "query-error" for everything else (parse and validation failures). Both
// HTTP routes and the batch JSON use the same mapping so clients can
// switch on one vocabulary.
func ErrorCode(err error) string {
	switch {
	case errors.Is(err, engine.ErrBudget):
		return "budget-exhausted"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline-exceeded"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return "query-error"
	}
}

// BatchItemJSON is one query's outcome in a batch run: a ResultJSON on
// success, or the query text plus an error string, machine-readable code
// and whatever partial timings/sizes the failed run produced.
type BatchItemJSON struct {
	ResultJSON
	Error     string  `json:"error,omitempty"`
	Code      string  `json:"code,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// BatchToJSON converts batch results, preserving input order. Failed
// queries keep their partial stats: a budget-exhausted run still reports
// build time, rule counts and the time spent in the phase that blew the
// budget.
func BatchToJSON(net *network.Network, results []batch.Result) []BatchItemJSON {
	out := make([]BatchItemJSON, len(results))
	for i, r := range results {
		item := BatchItemJSON{ElapsedMS: r.Elapsed.Seconds() * 1000}
		if r.Err != nil {
			item.ResultJSON = ResultJSON{
				Query:    r.Query,
				TimingMS: TimingsOf(r.Stats),
				Sizes:    SizesOf(r.Stats),
			}
			item.Error = r.Err.Error()
			item.Code = ErrorCode(r.Err)
		} else {
			item.ResultJSON = ToJSON(net, r.Query, r.Res)
		}
		out[i] = item
	}
	return out
}

// PrintBatch renders batch results either as a JSON array or as
// blank-line-separated human-readable blocks. It returns the number of
// queries that failed (parse errors, budget or deadline exhaustion).
func PrintBatch(w io.Writer, net *network.Network, results []batch.Result, asJSON bool) (failed int, err error) {
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return failed, enc.Encode(BatchToJSON(net, results))
	}
	for i, r := range results {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if r.Err != nil {
			fmt.Fprintf(w, "query:   %s\nerror:   %v\n", r.Query, r.Err)
			continue
		}
		if err := PrintResult(w, net, r.Query, r.Res, false); err != nil {
			return failed, err
		}
	}
	return failed, nil
}

// PrintResult renders a result either as JSON or human-readable text.
func PrintResult(w io.Writer, net *network.Network, queryText string, res engine.Result, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(ToJSON(net, queryText, res))
	}
	fmt.Fprintf(w, "query:   %s\n", queryText)
	fmt.Fprintf(w, "verdict: %s\n", res.Verdict)
	if res.Weight != nil {
		fmt.Fprintf(w, "weight:  %s\n", res.Weight)
	}
	if res.Verdict == engine.Satisfied {
		fmt.Fprintf(w, "witness: %s\n", res.Trace.Format(net))
		if len(res.Failed) > 0 {
			names := make([]string, 0, len(res.Failed))
			for _, l := range res.Failed.Sorted() {
				names = append(names, net.Topo.LinkName(l))
			}
			fmt.Fprintf(w, "failed:  %s\n", strings.Join(names, ", "))
		} else {
			fmt.Fprintf(w, "failed:  (none required)\n")
		}
	}
	fmt.Fprintf(w, "timing:  build=%.1fms over=%.1fms under=%.1fms\n",
		ms(res.Stats.BuildTime), ms(res.Stats.OverTime), ms(res.Stats.UnderTime))
	fmt.Fprintf(w, "size:    rules=%d (pre-reduction %d), under-used=%v\n",
		res.Stats.OverRules, res.Stats.OverRulesPre, res.Stats.UnderUsed)
	return nil
}
