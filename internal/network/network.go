// Package network ties the topology, label and routing models together into
// the MPLS network of Definition 2 and implements network traces
// (Definition 4): packet routings as sequences of link/header pairs, a
// small forwarding simulator, and the polynomial-time feasibility check for
// a fixed trace under at most k link failures used by the verification
// pipeline (§4.2 of the paper).
package network

import (
	"fmt"
	"sort"
	"strings"

	"aalwines/internal/labels"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// Network is an MPLS network N = (V, E, s, t, L, τ).
type Network struct {
	Name    string
	Topo    *topology.Graph
	Labels  *labels.Table
	Routing *routing.Table
}

// New returns an empty network with fresh topology, label table and routing
// table.
func New(name string) *Network {
	return &Network{
		Name:    name,
		Topo:    topology.New(),
		Labels:  labels.NewTable(),
		Routing: routing.NewTable(),
	}
}

// Step is one element of a trace: the packet sits on link Link carrying
// header Header (the header after the link was traversed).
type Step struct {
	Link   topology.LinkID
	Header labels.Header
}

// Trace is a network trace (e1,h1)(e2,h2)...(en,hn).
type Trace []Step

// Format renders a trace in the paper's notation, e.g.
// "(e0, ip1) (e1, s20 ∘ ip1) ...".
func (tr Trace) Format(n *Network) string {
	parts := make([]string, len(tr))
	for i, s := range tr {
		parts[i] = fmt.Sprintf("(%s, %s)", n.Topo.LinkName(s.Link), s.Header.Format(n.Labels))
	}
	return strings.Join(parts, " ")
}

// Links returns the link sequence e1...en of the trace.
func (tr Trace) Links() []topology.LinkID {
	out := make([]topology.LinkID, len(tr))
	for i, s := range tr {
		out[i] = s.Link
	}
	return out
}

// FailedSet is a set of failed links.
type FailedSet map[topology.LinkID]bool

// Has reports membership; usable directly as the failure predicate of
// routing.Table.Active.
func (f FailedSet) Has(l topology.LinkID) bool { return f[l] }

// Sorted returns the failed links in ascending order.
func (f FailedSet) Sorted() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(f))
	for l := range f {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Succ is one possible forwarding successor: the next link, the header
// after the rewrite, the 0-based priority group index the entry came from,
// and the links that must have failed for that group to be selected.
type Succ struct {
	Link     topology.LinkID
	Header   labels.Header
	Group    int
	MustFail []topology.LinkID
}

// Successors returns all possible next steps for a packet that arrived on
// link on carrying header h, under failed links f (nil means no failures).
// Entries whose header rewrite is undefined are skipped: such packets are
// dropped by the dataplane.
func (n *Network) Successors(on topology.LinkID, h labels.Header, f FailedSet) []Succ {
	if len(h) == 0 {
		return nil
	}
	failed := func(l topology.LinkID) bool { return f != nil && f[l] }
	entries, group, mustFail, ok := n.Routing.Active(on, h.Top(), failed)
	if !ok {
		return nil
	}
	var out []Succ
	for _, e := range entries {
		nh, err := routing.Rewrite(n.Labels, h, e.Ops)
		if err != nil {
			continue
		}
		out = append(out, Succ{Link: e.Out, Header: nh, Group: group, MustFail: mustFail})
	}
	return out
}

// ValidTrace checks that tr is a trace of the network under the exact
// failed-link set f, per Definition 4: every traversed link is active and
// every consecutive pair is justified by an active routing entry.
func (n *Network) ValidTrace(tr Trace, f FailedSet) error {
	for i, s := range tr {
		if f != nil && f[s.Link] {
			return fmt.Errorf("step %d traverses failed link %s", i, n.Topo.LinkName(s.Link))
		}
		if !s.Header.Valid(n.Labels) {
			return fmt.Errorf("step %d has invalid header %s", i, s.Header.Format(n.Labels))
		}
		if i == 0 {
			continue
		}
		prev := tr[i-1]
		found := false
		for _, succ := range n.Successors(prev.Link, prev.Header, f) {
			if succ.Link == s.Link && succ.Header.Equal(s.Header) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("step %d: no active routing entry justifies %s -> %s",
				i, n.Topo.LinkName(prev.Link), n.Topo.LinkName(s.Link))
		}
	}
	return nil
}

// Feasibility is the verdict of the fixed-trace feasibility check.
type Feasibility struct {
	// Feasible reports whether some failed set F with |F| ≤ k makes the
	// trace valid.
	Feasible bool
	// Failed is a minimum-cardinality such F when Feasible.
	Failed FailedSet
}

// Feasible decides, in time polynomial in the trace length, whether there
// exists a failed-link set F with |F| ≤ k under which tr is a valid trace
// (the trace reconstruction step of §4.2). It searches over the per-step
// choice of priority group, accumulating the links that must fail and
// pruning branches that exceed k or that would fail a traversed link.
func (n *Network) Feasible(tr Trace, k int) Feasibility {
	if len(tr) == 0 {
		return Feasibility{Feasible: true, Failed: FailedSet{}}
	}
	traversed := make(FailedSet, len(tr))
	for _, s := range tr {
		traversed[s.Link] = true
	}
	// candidates[i] = possible must-fail link sets justifying step i -> i+1.
	candidates := make([][][]topology.LinkID, 0, len(tr)-1)
	for i := 0; i+1 < len(tr); i++ {
		cur, next := tr[i], tr[i+1]
		if len(cur.Header) == 0 {
			return Feasibility{}
		}
		gs := n.Routing.Lookup(cur.Link, cur.Header.Top())
		var opts [][]topology.LinkID
	group:
		for j, g := range gs {
			for _, e := range g.Entries {
				if e.Out != next.Link {
					continue
				}
				nh, err := routing.Rewrite(n.Labels, cur.Header, e.Ops)
				if err != nil || !nh.Equal(next.Header) {
					continue
				}
				prefix := gs.PrefixLinks(j)
				for _, l := range prefix {
					if traversed[l] {
						continue group // would fail a traversed link
					}
				}
				opts = append(opts, prefix)
				continue group // one matching entry per group suffices
			}
		}
		if len(opts) == 0 {
			return Feasibility{}
		}
		candidates = append(candidates, opts)
	}
	// Greedy-first search: try candidate sets in ascending size order with
	// branch-and-bound on |F|. The number of groups per rule is tiny in
	// practice, so this is effectively linear.
	for i := range candidates {
		sort.Slice(candidates[i], func(a, b int) bool {
			return len(candidates[i][a]) < len(candidates[i][b])
		})
	}
	best := FailedSet(nil)
	var search func(step int, acc FailedSet)
	search = func(step int, acc FailedSet) {
		if len(acc) > k {
			return
		}
		if best != nil && len(acc) >= len(best) {
			return // cannot improve on the best solution found so far
		}
		if step == len(candidates) {
			cp := make(FailedSet, len(acc))
			for l := range acc {
				cp[l] = true
			}
			best = cp
			return
		}
		for _, opt := range candidates[step] {
			added := make([]topology.LinkID, 0, len(opt))
			for _, l := range opt {
				if !acc[l] {
					acc[l] = true
					added = append(added, l)
				}
			}
			search(step+1, acc)
			for _, l := range added {
				delete(acc, l)
			}
		}
	}
	search(0, FailedSet{})
	if best == nil {
		return Feasibility{}
	}
	return Feasibility{Feasible: true, Failed: best}
}

// Enumerate performs a bounded breadth-first enumeration of traces starting
// from (start, h) under failed set f, visiting traces of length up to
// maxLen and invoking visit for each. visit returning false stops the
// enumeration early. Enumerate is a testing and example aid, not the
// verification engine; its state space is exponential and it exists to
// cross-check engine witnesses on small networks.
func (n *Network) Enumerate(start topology.LinkID, h labels.Header, f FailedSet, maxLen int, visit func(Trace) bool) {
	type node struct {
		tr Trace
	}
	queue := []node{{Trace{{Link: start, Header: h.Clone()}}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.tr) {
			return
		}
		if len(cur.tr) >= maxLen {
			continue
		}
		last := cur.tr[len(cur.tr)-1]
		for _, s := range n.Successors(last.Link, last.Header, f) {
			next := make(Trace, len(cur.tr), len(cur.tr)+1)
			copy(next, cur.tr)
			next = append(next, Step{Link: s.Link, Header: s.Header})
			queue = append(queue, node{next})
		}
	}
}
