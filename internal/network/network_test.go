package network_test

import (
	"testing"

	"aalwines/internal/gen"
	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/topology"
)

// TestSigmaTracesValid replays the paper's Figure 1c traces through
// ValidTrace with their documented failure sets.
func TestSigmaTracesValid(t *testing.T) {
	re := gen.RunningExample()
	cases := []struct {
		name string
		tr   network.Trace
		f    network.FailedSet
	}{
		{"sigma0 no failures", re.Sigma(0), nil},
		{"sigma1 no failures", re.Sigma(1), nil},
		{"sigma2 e4 failed", re.Sigma(2), network.FailedSet{re.Links["e4"]: true}},
		{"sigma3 no failures", re.Sigma(3), nil},
		{"sigma3 e2,e3 failed", re.Sigma(3), network.FailedSet{re.Links["e2"]: true, re.Links["e3"]: true}},
	}
	for _, c := range cases {
		if err := re.ValidTrace(c.tr, c.f); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestSigma2InvalidWithoutFailure(t *testing.T) {
	re := gen.RunningExample()
	// σ2 uses the priority-2 backup via e5, which is only active if e4 failed.
	if err := re.ValidTrace(re.Sigma(2), nil); err == nil {
		t.Fatal("sigma2 accepted with no failed links")
	}
}

func TestValidTraceRejectsFailedTraversal(t *testing.T) {
	re := gen.RunningExample()
	f := network.FailedSet{re.Links["e1"]: true}
	if err := re.ValidTrace(re.Sigma(0), f); err == nil {
		t.Fatal("trace over failed link e1 accepted")
	}
}

func TestValidTraceRejectsBogusHop(t *testing.T) {
	re := gen.RunningExample()
	tr := re.Trace(
		"e0", []string{"ip1"},
		"e3", []string{"s11", "ip1"}) // e0 -> e3 is not justified by any rule
	if err := re.ValidTrace(tr, nil); err == nil {
		t.Fatal("bogus hop accepted")
	}
}

func TestValidTraceRejectsWrongHeader(t *testing.T) {
	re := gen.RunningExample()
	tr := re.Trace(
		"e0", []string{"ip1"},
		"e1", []string{"s21", "ip1"}) // rule pushes s20, not s21
	if err := re.ValidTrace(tr, nil); err == nil {
		t.Fatal("wrong rewrite accepted")
	}
}

func TestSuccessorsNondeterminism(t *testing.T) {
	re := gen.RunningExample()
	h := labels.Header{re.L["ip1"]}
	succs := re.Successors(re.Links["e0"], h, nil)
	if len(succs) != 2 {
		t.Fatalf("got %d successors for ip1 on e0, want 2 (ECMP split)", len(succs))
	}
	for _, s := range succs {
		if s.Group != 0 || len(s.MustFail) != 0 {
			t.Errorf("priority-1 successor reports group %d mustFail %v", s.Group, s.MustFail)
		}
	}
}

func TestSuccessorsFailover(t *testing.T) {
	re := gen.RunningExample()
	h := labels.Header{re.L["s20"], re.L["ip1"]}
	f := network.FailedSet{re.Links["e4"]: true}
	succs := re.Successors(re.Links["e1"], h, f)
	if len(succs) != 1 {
		t.Fatalf("got %d failover successors, want 1", len(succs))
	}
	s := succs[0]
	if s.Link != re.Links["e5"] || s.Group != 1 {
		t.Fatalf("failover went to link %d group %d", s.Link, s.Group)
	}
	want := labels.Header{re.L["30"], re.L["s21"], re.L["ip1"]}
	if !s.Header.Equal(want) {
		t.Fatalf("failover header = %s, want %s",
			s.Header.Format(re.Labels), want.Format(re.Labels))
	}
	if len(s.MustFail) != 1 || s.MustFail[0] != re.Links["e4"] {
		t.Fatalf("MustFail = %v, want [e4]", s.MustFail)
	}
}

func TestSuccessorsNoRuleDropsPacket(t *testing.T) {
	re := gen.RunningExample()
	h := labels.Header{re.L["s44"], re.L["ip1"]}
	if succs := re.Successors(re.Links["e7"], h, nil); succs != nil {
		t.Fatalf("expected drop at network edge, got %v", succs)
	}
	if succs := re.Successors(re.Links["e0"], labels.Header{}, nil); succs != nil {
		t.Fatalf("expected drop for empty header, got %v", succs)
	}
}

func TestFeasibleSigma0NeedsNoFailures(t *testing.T) {
	re := gen.RunningExample()
	res := re.Feasible(re.Sigma(0), 0)
	if !res.Feasible || len(res.Failed) != 0 {
		t.Fatalf("sigma0: %+v, want feasible with empty failed set", res)
	}
}

func TestFeasibleSigma2NeedsOneFailure(t *testing.T) {
	re := gen.RunningExample()
	if res := re.Feasible(re.Sigma(2), 0); res.Feasible {
		t.Fatal("sigma2 reported feasible with k=0")
	}
	res := re.Feasible(re.Sigma(2), 1)
	if !res.Feasible {
		t.Fatal("sigma2 infeasible with k=1")
	}
	if len(res.Failed) != 1 || !res.Failed[re.Links["e4"]] {
		t.Fatalf("sigma2 failed set = %v, want {e4}", res.Failed.Sorted())
	}
}

func TestFeasibleSigma3ZeroFailures(t *testing.T) {
	re := gen.RunningExample()
	res := re.Feasible(re.Sigma(3), 0)
	if !res.Feasible || len(res.Failed) != 0 {
		t.Fatalf("sigma3: %+v, want feasible with no failures", res)
	}
}

func TestFeasibleRejectsImpossibleTrace(t *testing.T) {
	re := gen.RunningExample()
	tr := re.Trace(
		"e0", []string{"ip1"},
		"e3", []string{"s11", "ip1"})
	if res := re.Feasible(tr, 8); res.Feasible {
		t.Fatal("impossible trace reported feasible")
	}
}

// TestFeasibleConflict builds a trace that both uses link e4 and (via the
// backup group) would require e4 to fail: the failover hop e1->e5 requires
// e4 ∈ F, but σ0's first hops traverse e4. Combined in one trace this must
// be infeasible at any k.
func TestFeasibleConflict(t *testing.T) {
	re := gen.RunningExample()
	// e0(ip1) -> e1(s20 ip1) -> e4(s21 ip1) -> e7(ip1) is fine; now a trace
	// that goes through e4 and then (another packet hop later, same trace)
	// through the protection path cannot happen. Construct:
	// (e1, s20 ip1)(e5, 30 s21 ip1) requires e4 failed; prepend traversal of e4.
	tr := network.Trace{}
	tr = append(tr, re.Trace("e0", []string{"ip1"}, "e1", []string{"s20", "ip1"}, "e4", []string{"s21", "ip1"})...)
	// A second fragment cannot be stitched (e4's rule pops to e7), so build
	// the conflicting trace directly on the e1 hop:
	tr2 := re.Trace(
		"e4", []string{"s21", "ip1"}, // traverses e4
		"e7", []string{"ip1"})
	_ = tr
	// Validate the direct conflict case: trace that traverses e4 at step 0
	// and needs e4 failed at a later step is impossible to build from real
	// rules in this tiny network, so instead check the constraint logic via
	// ValidTrace: σ2 under F={e4} is valid, but σ0 under F={e4} is not.
	if err := re.ValidTrace(tr2, network.FailedSet{re.Links["e4"]: true}); err == nil {
		t.Fatal("trace traversing e4 accepted while e4 failed")
	}
}

func TestEnumerateFindsSigmas(t *testing.T) {
	re := gen.RunningExample()
	h := labels.Header{re.L["ip1"]}
	found0, found1 := false, false
	re.Enumerate(re.Links["e0"], h, nil, 4, func(tr network.Trace) bool {
		if traceEqual(tr, re.Sigma(0)) {
			found0 = true
		}
		if traceEqual(tr, re.Sigma(1)) {
			found1 = true
		}
		return true
	})
	if !found0 || !found1 {
		t.Fatalf("enumeration missed sigma0 (%v) or sigma1 (%v)", found0, found1)
	}
}

func TestEnumerateRespectsFailures(t *testing.T) {
	re := gen.RunningExample()
	h := labels.Header{re.L["ip1"]}
	f := network.FailedSet{re.Links["e4"]: true}
	sawSigma2, sawE4 := false, false
	re.Enumerate(re.Links["e0"], h, f, 5, func(tr network.Trace) bool {
		if traceEqual(tr, re.Sigma(2)) {
			sawSigma2 = true
		}
		for _, s := range tr {
			if s.Link == re.Links["e4"] {
				sawE4 = true
			}
		}
		return true
	})
	if !sawSigma2 {
		t.Error("enumeration under F={e4} missed sigma2")
	}
	if sawE4 {
		t.Error("enumeration traversed failed link e4")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	re := gen.RunningExample()
	h := labels.Header{re.L["ip1"]}
	count := 0
	re.Enumerate(re.Links["e0"], h, nil, 10, func(network.Trace) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visit called %d times after early stop, want 2", count)
	}
}

func TestTraceFormatAndLinks(t *testing.T) {
	re := gen.RunningExample()
	tr := re.Sigma(0)
	links := tr.Links()
	if len(links) != 4 || links[0] != re.Links["e0"] || links[3] != re.Links["e7"] {
		t.Fatalf("Links() = %v", links)
	}
	s := tr.Format(re.Network)
	if s == "" {
		t.Fatal("empty Format")
	}
}

func TestFailedSetSorted(t *testing.T) {
	f := network.FailedSet{3: true, 1: true, 2: true}
	got := f.Sorted()
	want := []topology.LinkID{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v", got)
		}
	}
	if !f.Has(2) || f.Has(9) {
		t.Fatal("Has misbehaves")
	}
}

func TestEmptyTraceFeasible(t *testing.T) {
	re := gen.RunningExample()
	if res := re.Feasible(network.Trace{}, 0); !res.Feasible {
		t.Fatal("empty trace infeasible")
	}
}

func traceEqual(a, b network.Trace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Link != b[i].Link || !a[i].Header.Equal(b[i].Header) {
			return false
		}
	}
	return true
}
