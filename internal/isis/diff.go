package isis

import (
	"fmt"
	"sort"
	"strings"

	"aalwines/internal/labels"
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/topology"
)

// RouterDiff is the delta set of one router between two snapshots: the
// scenario commands that, applied to the base snapshot, reproduce the
// router's state in the next snapshot. Commands use the same grammar as
// scenario.ParseDelta (fail/add-entry/remove-entry), so a diff feeds
// directly into a session's SetStack or a live event stream.
type RouterDiff struct {
	Router   string   `json:"router"`
	Commands []string `json:"commands"`
}

// Diff compares two IS-IS snapshots (or any two networks sharing router,
// link and label naming) and returns per-router delta sets transforming
// base into next:
//
//   - a link present in base but absent in next becomes "fail <link>",
//     attributed to the link's source router (its interface went down);
//   - a routing-table slot whose content differs becomes remove-entry
//     commands for the base entries followed by add-entry commands
//     rebuilding next's entries in order, attributed to the router owning
//     the key (the target of its incoming link).
//
// The guarantee is slot-exact: materializing the returned commands on base
// yields a routing table equal to next's, priority group by priority
// group (the fuzz target holds diff-after-apply empty). Diff errors on
// changes the scenario delta language cannot express — new routers, new
// links, new labels, or priorities beyond scenario.MaxPriority — rather
// than return a lossy delta set.
//
// Routers are ordered by name, commands within a router deterministically
// (fails first, then table edits in routing-key order).
func Diff(base, next *network.Network) ([]RouterDiff, error) {
	if err := sameRouters(base.Topo, next.Topo); err != nil {
		return nil, err
	}
	baseLinks := linkNames(base.Topo)
	nextLinks := linkNames(next.Topo)
	for name := range nextLinks {
		if _, ok := baseLinks[name]; !ok {
			return nil, fmt.Errorf("isis: diff: link %q appears in next but not in base (deltas cannot add links)", name)
		}
	}

	// Links gone from next are failures; keys arriving over them and
	// entries leaving over them vanish from the overlay by the fail-link
	// semantics, so the table diff below skips both.
	failed := make(map[topology.LinkID]bool)
	perRouter := make(map[string][]string)
	for name, l := range baseLinks {
		if _, ok := nextLinks[name]; !ok {
			failed[l] = true
			src := base.Topo.Routers[base.Topo.Source(l)].Name
			perRouter[src] = append(perRouter[src], "fail "+name)
		}
	}

	// Index next's table by (link name, label name) so keys compare across
	// the two snapshots' independent ID spaces.
	type namedKey struct{ in, top string }
	nextGroups := make(map[namedKey]routing.Groups)
	next.Routing.Range(func(k routing.Key, gs routing.Groups) bool {
		nk := namedKey{next.Topo.LinkName(k.In), next.Labels.Name(k.Top)}
		nextGroups[nk] = gs
		return true
	})

	// Walk the union of keys in base's deterministic key order, then the
	// keys only next has (sorted by name).
	var derr error
	seen := make(map[namedKey]bool)
	base.Routing.Range(func(k routing.Key, bgs routing.Groups) bool {
		if failed[k.In] {
			return true
		}
		nk := namedKey{base.Topo.LinkName(k.In), base.Labels.Name(k.Top)}
		seen[nk] = true
		cmds, err := diffKey(base, next, nk.in, nk.top, filterFailed(bgs, failed), nextGroups[nk])
		if err != nil {
			derr = err
			return false
		}
		if len(cmds) > 0 {
			owner := base.Topo.Routers[base.Topo.Target(k.In)].Name
			perRouter[owner] = append(perRouter[owner], cmds...)
		}
		return true
	})
	if derr != nil {
		return nil, derr
	}
	var extra []namedKey
	for nk := range nextGroups {
		if !seen[nk] {
			extra = append(extra, nk)
		}
	}
	sort.Slice(extra, func(i, j int) bool {
		if extra[i].in != extra[j].in {
			return extra[i].in < extra[j].in
		}
		return extra[i].top < extra[j].top
	})
	for _, nk := range extra {
		l, ok := baseLinks[nk.in]
		if !ok {
			return nil, fmt.Errorf("isis: diff: next routes over link %q unknown to base", nk.in)
		}
		if base.Labels.Lookup(nk.top) == labels.None {
			return nil, fmt.Errorf("isis: diff: next uses label %q unknown to base (deltas cannot introduce labels)", nk.top)
		}
		cmds, err := diffKey(base, next, nk.in, nk.top, nil, nextGroups[nk])
		if err != nil {
			return nil, err
		}
		owner := base.Topo.Routers[base.Topo.Target(l)].Name
		perRouter[owner] = append(perRouter[owner], cmds...)
	}

	out := make([]RouterDiff, 0, len(perRouter))
	for r, cmds := range perRouter {
		out = append(out, RouterDiff{Router: r, Commands: cmds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Router < out[j].Router })
	return out, nil
}

// Commands flattens a diff into one command list, routers in order.
func Commands(diffs []RouterDiff) []string {
	var out []string
	for _, d := range diffs {
		out = append(out, d.Commands...)
	}
	return out
}

// diffKey emits the commands reconciling one routing slot sequence. bgs is
// base's view (already filtered for failed links), ngs next's; either may
// be nil. Slots are compared priority by priority: a differing slot is
// cleared (one remove-entry per distinct base out-link — remove-entry
// removes every entry with that out-link from the slot) and next's entries
// re-added in order, which reproduces the slot exactly since add-entry
// appends.
func diffKey(base, next *network.Network, in, top string, bgs, ngs routing.Groups) ([]string, error) {
	n := len(bgs)
	if len(ngs) > n {
		n = len(ngs)
	}
	if n > 64 { // scenario.MaxPriority; literal to avoid an import cycle
		return nil, fmt.Errorf("isis: diff: key (%s, %s) has %d priority groups, beyond the scenario delta cap", in, top, n)
	}
	var cmds []string
	for p := 1; p <= n; p++ {
		var bg, ng []routing.Entry
		if p <= len(bgs) {
			bg = bgs[p-1].Entries
		}
		if p <= len(ngs) {
			ng = ngs[p-1].Entries
		}
		beq := renderEntries(base, bg)
		neq := renderEntries(next, ng)
		if equalRendered(beq, neq) {
			continue
		}
		seenOut := make(map[string]bool)
		for _, e := range beq {
			if !seenOut[e.out] {
				seenOut[e.out] = true
				cmds = append(cmds, fmt.Sprintf("remove-entry %s %s %d %s", in, top, p, e.out))
			}
		}
		for _, e := range neq {
			for _, lbl := range e.labelsUsed {
				if base.Labels.Lookup(lbl) == labels.None {
					return nil, fmt.Errorf("isis: diff: next uses label %q unknown to base (deltas cannot introduce labels)", lbl)
				}
			}
			if _, err := resolveBaseLink(base.Topo, e.out); err != nil {
				return nil, err
			}
			cmd := fmt.Sprintf("add-entry %s %s %d %s", in, top, p, e.out)
			if e.ops != "" {
				cmd += " " + e.ops
			}
			cmds = append(cmds, cmd)
		}
	}
	return cmds, nil
}

// renderedEntry is one forwarding entry in name form: out-link name and
// the ";"-joined op rendering scenario.ParseDelta accepts. labelsUsed
// records every label name the ops reference (for existence checks against
// base — a multi-op entry can mix known and unknown labels, and all of
// them must exist or the delta is lossy).
type renderedEntry struct {
	out        string
	ops        string
	labelsUsed []string
}

func renderEntries(net *network.Network, es []routing.Entry) []renderedEntry {
	if len(es) == 0 {
		return nil
	}
	out := make([]renderedEntry, 0, len(es))
	for _, e := range es {
		re := renderedEntry{out: net.Topo.LinkName(e.Out)}
		parts := make([]string, 0, len(e.Ops))
		for _, op := range e.Ops {
			parts = append(parts, op.Format(net.Labels))
			if op.Kind != routing.OpPop {
				if name := net.Labels.Name(op.Label); name != "" {
					re.labelsUsed = append(re.labelsUsed, name)
				}
			}
		}
		re.ops = strings.Join(parts, ";")
		out = append(out, re)
	}
	return out
}

func equalRendered(a, b []renderedEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].out != b[i].out || a[i].ops != b[i].ops {
			return false
		}
	}
	return true
}

// filterFailed drops entries leaving over a failed link, mirroring the
// fail-link materialization (trailing empty groups are trimmed there; the
// slot-wise comparison handles that since next has none either).
func filterFailed(gs routing.Groups, failed map[topology.LinkID]bool) routing.Groups {
	if len(failed) == 0 {
		return gs
	}
	out := make(routing.Groups, len(gs))
	for j, g := range gs {
		kept := make([]routing.Entry, 0, len(g.Entries))
		for _, e := range g.Entries {
			if !failed[e.Out] {
				kept = append(kept, e)
			}
		}
		out[j].Entries = kept
	}
	for len(out) > 0 && len(out[len(out)-1].Entries) == 0 {
		out = out[:len(out)-1]
	}
	return out
}

func linkNames(g *topology.Graph) map[string]topology.LinkID {
	m := make(map[string]topology.LinkID, g.NumLinks())
	for l := 0; l < g.NumLinks(); l++ {
		m[g.LinkName(topology.LinkID(l))] = topology.LinkID(l)
	}
	return m
}

func resolveBaseLink(g *topology.Graph, name string) (topology.LinkID, error) {
	for l := 0; l < g.NumLinks(); l++ {
		if g.LinkName(topology.LinkID(l)) == name {
			return topology.LinkID(l), nil
		}
	}
	return 0, fmt.Errorf("isis: diff: next forwards over link %q unknown to base", name)
}

func sameRouters(base, next *topology.Graph) error {
	names := func(g *topology.Graph) []string {
		out := make([]string, 0, len(g.Routers))
		for i := range g.Routers {
			out = append(out, g.Routers[i].Name)
		}
		sort.Strings(out)
		return out
	}
	b, n := names(base), names(next)
	if len(b) != len(n) {
		return fmt.Errorf("isis: diff: router sets differ (%d vs %d routers)", len(b), len(n))
	}
	for i := range b {
		if b[i] != n[i] {
			return fmt.Errorf("isis: diff: router sets differ (%q vs %q)", b[i], n[i])
		}
	}
	return nil
}
