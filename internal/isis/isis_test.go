package isis_test

import (
	"strings"
	"testing"
	"testing/fstest"

	"aalwines/internal/engine"
	"aalwines/internal/isis"
	"aalwines/internal/labels"
)

// fixture builds an in-memory IS-IS snapshot of a 3-router chain
// R1 -- R2 -- R3 with a swap LSP R1→R3 and a backup push next-hop on R2.
func fixture() fstest.MapFS {
	mapping := `# test snapshot
192.0.0.1,R1:R1-adj.xml:R1-route.xml:R1-pfe.xml
192.0.0.2,R2:R2-adj.xml:R2-route.xml:R2-pfe.xml
192.0.0.3,R3:R3-adj.xml:R3-route.xml:
10.10.0.9,E1
`
	adj := func(pairs ...[2]string) string {
		var b strings.Builder
		b.WriteString("<isis-adjacency-information>")
		for _, p := range pairs {
			b.WriteString("<isis-adjacency><interface-name>" + p[0] + "</interface-name>")
			b.WriteString("<system-name>" + p[1] + "</system-name>")
			b.WriteString("<adjacency-state>Up</adjacency-state></isis-adjacency>")
		}
		b.WriteString("</isis-adjacency-information>")
		return b.String()
	}
	r2route := `<forwarding-table-information><route-table>
	  <rt-entry><rt-destination>299840</rt-destination>
	    <nh><via>et-2/0/0.0</via><nh-type>Swap 299856</nh-type><weight>0x1</weight></nh>
	    <nh><via>et-1/0/0.0</via><nh-type>Swap 299856, Push 362144(top)</nh-type><weight>0x4000</weight></nh>
	  </rt-entry>
	</route-table></forwarding-table-information>`
	r3route := `<forwarding-table-information><route-table>
	  <rt-entry><rt-destination>299856</rt-destination>
	    <nh><via>et-3/0/0.0</via><nh-type>Pop</nh-type><weight>0x1</weight></nh>
	  </rt-entry>
	</route-table></forwarding-table-information>`
	empty := `<forwarding-table-information></forwarding-table-information>`
	pfe := `<pfe-next-hop-information></pfe-next-hop-information>`
	return fstest.MapFS{
		"mapping.txt":  {Data: []byte(mapping)},
		"R1-adj.xml":   {Data: []byte(adj([2]string{"et-0/0/0.0", "R2"}))},
		"R1-route.xml": {Data: []byte(empty)},
		"R1-pfe.xml":   {Data: []byte(pfe)},
		"R2-adj.xml":   {Data: []byte(adj([2]string{"et-1/0/0.0", "R1"}, [2]string{"et-2/0/0.0", "R3"}))},
		"R2-route.xml": {Data: []byte(r2route)},
		"R2-pfe.xml":   {Data: []byte(pfe)},
		"R3-adj.xml":   {Data: []byte(adj([2]string{"et-3/0/0.0", "E1"}, [2]string{"et-4/0/0.0", "R2"}))},
		"R3-route.xml": {Data: []byte(r3route)},
	}
}

func TestLoadSnapshot(t *testing.T) {
	net, err := isis.Load(fixture(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	// 4 routers (R1, R2, R3, E1).
	if got := net.Topo.NumRouters(); got != 4 {
		t.Fatalf("routers = %d, want 4", got)
	}
	// Adjacencies: R1-R2, R2-R3, R3-E1 (deduplicated) = 3 pairs = 6 links.
	if got := net.Topo.NumLinks(); got != 6 {
		t.Fatalf("links = %d, want 6", got)
	}
	// R2's rule applies on every incoming link of R2 (2 of them), two
	// next-hops each; R3's rule on 2 incoming links, one next-hop.
	if got := net.Routing.NumRules(); got != 2*2+2*1 {
		t.Fatalf("rules = %d, want 6", got)
	}
	// Labels: s299840 and s299856 (bottom), 362144 (plain, pushed).
	if id := net.Labels.Lookup("s299840"); id == labels.None {
		t.Error("s299840 not interned")
	}
	if id := net.Labels.Lookup("362144"); id == labels.None || net.Labels.Kind(id) != labels.MPLS {
		t.Error("pushed label 362144 missing or wrong kind")
	}
}

func TestBackupNextHopBecomesPriority2(t *testing.T) {
	net, err := isis.Load(fixture(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	r2 := net.Topo.RouterByName("R2")
	top := net.Labels.Lookup("s299840")
	foundBackup := false
	for _, in := range net.Topo.Routers[r2].In() {
		gs := net.Routing.Lookup(in, top)
		if len(gs) == 2 && len(gs[1].Entries) == 1 {
			foundBackup = true
			if len(gs[1].Entries[0].Ops) != 2 {
				t.Error("backup should swap+push")
			}
		}
	}
	if !foundBackup {
		t.Fatal("no priority-2 group for the 0x4000 next-hop")
	}
}

// TestVerifyImportedNetwork runs the engine on the imported network: with
// one failure the backup tunnel label may appear on the wire.
func TestVerifyImportedNetwork(t *testing.T) {
	net, err := isis.Load(fixture(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	// The swap chain: a packet with s299840 arriving at R2 can reach R3
	// and pop there toward E1.
	res, err := engine.VerifyText(net, "<s299840 ip> [.#R2] .* [R3#.] <ip> 0", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// No IP labels in this fixture, so Lang(a) headers must still parse;
	// verdict is unsatisfied because no rule produces a bare-IP exit.
	// What must hold: the query engine runs without error on imports.
}

func TestMappingErrors(t *testing.T) {
	fsys := fixture()
	fsys["mapping.txt"] = &fstest.MapFile{Data: []byte("R1:only-two-fields:x\n")}
	if _, err := isis.Load(fsys, "mapping.txt"); err == nil {
		t.Error("malformed mapping accepted")
	}
	fsys["mapping.txt"] = &fstest.MapFile{Data: []byte("")}
	if _, err := isis.Load(fsys, "mapping.txt"); err == nil {
		t.Error("empty mapping accepted")
	}
	if _, err := isis.Load(fsys, "missing.txt"); err == nil {
		t.Error("missing mapping file accepted")
	}
}

func TestUnknownAdjacencySystem(t *testing.T) {
	fsys := fixture()
	fsys["R1-adj.xml"] = &fstest.MapFile{Data: []byte(
		`<isis-adjacency-information><isis-adjacency>
		 <interface-name>x</interface-name><system-name>ghost</system-name>
		 <adjacency-state>Up</adjacency-state></isis-adjacency></isis-adjacency-information>`)}
	if _, err := isis.Load(fsys, "mapping.txt"); err == nil {
		t.Error("adjacency to unknown system accepted")
	}
}

func TestDownAdjacencyIgnored(t *testing.T) {
	fsys := fixture()
	fsys["R1-adj.xml"] = &fstest.MapFile{Data: []byte(
		`<isis-adjacency-information><isis-adjacency>
		 <interface-name>et-0/0/0.0</interface-name><system-name>R2</system-name>
		 <adjacency-state>Down</adjacency-state></isis-adjacency></isis-adjacency-information>`)}
	net, err := isis.Load(fsys, "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	// R1-R2 seen from R1 is down, but R2's own adjacency file still lists
	// R1 as Up, so the link pair exists exactly once.
	r1 := net.Topo.RouterByName("R1")
	if got := len(net.Topo.Routers[r1].Out()); got != 1 {
		t.Fatalf("R1 out-degree = %d, want 1", got)
	}
}

func TestBadNHType(t *testing.T) {
	fsys := fixture()
	fsys["R2-route.xml"] = &fstest.MapFile{Data: []byte(
		`<forwarding-table-information><route-table>
		 <rt-entry><rt-destination>299840</rt-destination>
		 <nh><via>et-2/0/0.0</via><nh-type>Explode 3</nh-type><weight>0x1</weight></nh>
		 </rt-entry></route-table></forwarding-table-information>`)}
	if _, err := isis.Load(fsys, "mapping.txt"); err == nil {
		t.Error("unknown nh-type accepted")
	}
}

func TestUnknownViaInterface(t *testing.T) {
	fsys := fixture()
	fsys["R2-route.xml"] = &fstest.MapFile{Data: []byte(
		`<forwarding-table-information><route-table>
		 <rt-entry><rt-destination>299840</rt-destination>
		 <nh><via>nope</via><nh-type>Pop</nh-type><weight>0x1</weight></nh>
		 </rt-entry></route-table></forwarding-table-information>`)}
	if _, err := isis.Load(fsys, "mapping.txt"); err == nil {
		t.Error("unknown via accepted")
	}
}

func TestS0SuffixGivesPlainKind(t *testing.T) {
	fsys := fixture()
	fsys["R2-route.xml"] = &fstest.MapFile{Data: []byte(
		`<forwarding-table-information><route-table>
		 <rt-entry><rt-destination>299840 (S=0)</rt-destination>
		 <nh><via>et-2/0/0.0</via><nh-type>Pop</nh-type><weight>0x1</weight></nh>
		 </rt-entry></route-table></forwarding-table-information>`)}
	net, err := isis.Load(fsys, "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	id := net.Labels.Lookup("299840")
	if id == labels.None || net.Labels.Kind(id) != labels.MPLS {
		t.Fatal("S=0 destination should be a plain MPLS label")
	}
}
