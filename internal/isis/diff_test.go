package isis_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/fstest"

	"aalwines/internal/isis"
	"aalwines/internal/network"
	"aalwines/internal/routing"
	"aalwines/internal/scenario"
	"aalwines/internal/topology"
)

// fixtureNext mutates the base fixture into a "later" snapshot:
//
//   - R2's LSP reroutes: the former backup next-hop (swap+push via R1)
//     becomes the primary, and both old slots disappear;
//   - the R3–E1 adjacency goes down, and R3's route over it with it.
//
// Both changes are expressible as scenario deltas against the base, which
// is the point: Diff must reproduce them exactly.
func fixtureNext() fstest.MapFS {
	fsys := fixture()
	fsys["R2-route.xml"] = &fstest.MapFile{Data: []byte(
		`<forwarding-table-information><route-table>
		  <rt-entry><rt-destination>299840</rt-destination>
		    <nh><via>et-1/0/0.0</via><nh-type>Swap 299856, Push 362144(top)</nh-type><weight>0x1</weight></nh>
		  </rt-entry>
		</route-table></forwarding-table-information>`)}
	fsys["R3-adj.xml"] = &fstest.MapFile{Data: []byte(
		`<isis-adjacency-information><isis-adjacency>
		 <interface-name>et-4/0/0.0</interface-name><system-name>R2</system-name>
		 <adjacency-state>Up</adjacency-state></isis-adjacency></isis-adjacency-information>`)}
	fsys["R3-route.xml"] = &fstest.MapFile{Data: []byte(
		`<forwarding-table-information></forwarding-table-information>`)}
	return fsys
}

func loadPair(t *testing.T) (base, next *network.Network) {
	t.Helper()
	base, err := isis.Load(fixture(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	next, err = isis.Load(fixtureNext(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	return base, next
}

// linkBetween returns the base name of the directed link src→dst.
func linkBetween(t *testing.T, net *network.Network, src, dst string) string {
	t.Helper()
	s, d := net.Topo.RouterByName(src), net.Topo.RouterByName(dst)
	for _, l := range net.Topo.Routers[s].Out() {
		if net.Topo.Target(l) == d {
			return net.Topo.LinkName(l)
		}
	}
	t.Fatalf("no link %s→%s", src, dst)
	return ""
}

func TestDiffIdentical(t *testing.T) {
	a, err := isis.Load(fixture(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	b, err := isis.Load(fixture(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := isis.Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("identical snapshots diffed to %v", diffs)
	}
}

func TestDiffGoldenPair(t *testing.T) {
	base, next := loadPair(t)
	diffs, err := isis.Diff(base, next)
	if err != nil {
		t.Fatal(err)
	}

	r2r3 := linkBetween(t, base, "R2", "R3")
	r2r1 := linkBetween(t, base, "R2", "R1")
	r3e1 := linkBetween(t, base, "R3", "E1")
	e1r3 := linkBetween(t, base, "E1", "R3")

	// R2's rules key on every incoming link of R2, in routing.Range order
	// (ascending link id).
	r2 := base.Topo.RouterByName("R2")
	ins := append([]topology.LinkID(nil), base.Topo.Routers[r2].In()...)
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	var r2cmds []string
	for _, in := range ins {
		name := base.Topo.LinkName(in)
		r2cmds = append(r2cmds,
			fmt.Sprintf("remove-entry %s s299840 1 %s", name, r2r3),
			fmt.Sprintf("add-entry %s s299840 1 %s swap(s299856);push(362144)", name, r2r1),
			fmt.Sprintf("remove-entry %s s299840 2 %s", name, r2r1),
		)
	}
	want := []isis.RouterDiff{
		{Router: "E1", Commands: []string{"fail " + e1r3}},
		{Router: "R2", Commands: r2cmds},
		{Router: "R3", Commands: []string{"fail " + r3e1}},
	}
	if !reflect.DeepEqual(diffs, want) {
		t.Fatalf("diff mismatch:\n got  %v\n want %v", diffs, want)
	}
}

// renderTable projects a routing table into the shared name space so tables
// of independently loaded networks (distinct link and label id spaces)
// compare meaningfully.
func renderTable(net *network.Network) map[string]string {
	out := make(map[string]string)
	net.Routing.Range(func(k routing.Key, gs routing.Groups) bool {
		var b strings.Builder
		for p, g := range gs {
			fmt.Fprintf(&b, "p%d:", p+1)
			for _, e := range g.Entries {
				b.WriteString(net.Topo.LinkName(e.Out))
				b.WriteString("[")
				for i, op := range e.Ops {
					if i > 0 {
						b.WriteString(";")
					}
					b.WriteString(op.Format(net.Labels))
				}
				b.WriteString("] ")
			}
			b.WriteString("\n")
		}
		out[net.Topo.LinkName(k.In)+"|"+net.Labels.Name(k.Top)] = b.String()
		return true
	})
	return out
}

// TestDiffApply closes the loop: applying the diff's commands to the base
// snapshot through a scenario session materializes a routing table equal to
// the next snapshot's, and a second diff comes back empty.
func TestDiffApply(t *testing.T) {
	base, next := loadPair(t)
	diffs, err := isis.Diff(base, next)
	if err != nil {
		t.Fatal(err)
	}

	sess := scenario.NewSession(base)
	defer sess.Close()
	var ds []scenario.Delta
	for _, cmd := range isis.Commands(diffs) {
		d, err := scenario.ParseDelta(cmd)
		if err != nil {
			t.Fatalf("diff emitted unparsable command %q: %v", cmd, err)
		}
		ds = append(ds, d)
	}
	if _, err := sess.SetStack(ds); err != nil {
		t.Fatalf("diff commands rejected by session: %v", err)
	}
	applied := sess.MaterializeFresh()

	got, want := renderTable(applied), renderTable(next)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("applied table differs from next snapshot:\n got  %v\n want %v", got, want)
	}

	// applied shares base's topology (failed links filter routing, not
	// topo), so re-diffing against next re-detects only the dead links —
	// no residual table edits.
	rediff, err := isis.Diff(applied, next)
	if err != nil {
		t.Fatal(err)
	}
	wantRe := []isis.RouterDiff{
		{Router: "E1", Commands: []string{"fail " + linkBetween(t, base, "E1", "R3")}},
		{Router: "R3", Commands: []string{"fail " + linkBetween(t, base, "R3", "E1")}},
	}
	if !reflect.DeepEqual(rediff, wantRe) {
		t.Fatalf("residual diff: got %v, want %v", rediff, wantRe)
	}
}

// TestDiffUnknownLabelInMultiOpEntry puts the base-unknown label in the
// FIRST op of a multi-op entry while the final op's label is known: a
// last-op-only existence check would let the lossy delta through to fail
// only at apply time. Diff must reject it up front.
func TestDiffUnknownLabelInMultiOpEntry(t *testing.T) {
	base, err := isis.Load(fixture(), "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	fsys := fixture()
	fsys["R2-route.xml"] = &fstest.MapFile{Data: []byte(
		`<forwarding-table-information><route-table>
		  <rt-entry><rt-destination>299840</rt-destination>
		    <nh><via>et-1/0/0.0</via><nh-type>Swap 999999, Push 362144(top)</nh-type><weight>0x1</weight></nh>
		  </rt-entry>
		</route-table></forwarding-table-information>`)}
	next, err := isis.Load(fsys, "mapping.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := isis.Diff(base, next); err == nil || !strings.Contains(err.Error(), "s999999") {
		t.Fatalf("diff err = %v, want unknown-label error naming s999999", err)
	}
}

func TestDiffInexpressible(t *testing.T) {
	base, next := loadPair(t)
	// next→base adds the R3–E1 link back — deltas cannot create links.
	if _, err := isis.Diff(next, base); err == nil {
		t.Fatal("diff toward a snapshot with extra links should error")
	}
}

// FuzzDiffApply drives the diff-apply loop with adversarial delta stacks:
// any overlay a session can materialize from the base snapshot must
// round-trip through Diff — diff(base, overlay) applies back to a table
// equal to the overlay's, and diff(applied, overlay) is empty.
func FuzzDiffApply(f *testing.F) {
	f.Add("fail R2.et-2/0/0.0#R3.et-4/0/0.0")
	f.Add("drain R3")
	f.Add("remove-entry R1.et-0/0/0.0#R2.et-1/0/0.0 s299840 2 R2.et-1/0/0.0#R1.et-0/0/0.0")
	f.Add("add-entry R3.et-4/0/0.0#R2.et-2/0/0.0 s299840 3 R2.et-1/0/0.0#R1.et-0/0/0.0 swap(s299856)")
	f.Add("swap-priority R1.et-0/0/0.0#R2.et-1/0/0.0 s299840 1 2")
	f.Add("fail R3.et-3/0/0.0#E1\ndrain R1\nundrain R1")

	f.Fuzz(func(t *testing.T, text string) {
		deltas, err := scenario.ParseScenario(text)
		if err != nil || len(deltas) == 0 || len(deltas) > 6 {
			return
		}
		base, err := isis.Load(fixture(), "mapping.txt")
		if err != nil {
			t.Fatal(err)
		}
		sess := scenario.NewSession(base)
		defer sess.Close()
		applied := 0
		for _, d := range deltas {
			if _, err := sess.Apply(d); err == nil {
				applied++
			}
		}
		if applied == 0 {
			return
		}
		overlay := sess.MaterializeFresh()

		// overlay shares base's topology and labels, so every difference is
		// table content — Diff must express it without error.
		diffs, err := isis.Diff(base, overlay)
		if err != nil {
			t.Fatalf("diff of session overlay inexpressible: %v", err)
		}
		s2 := scenario.NewSession(base)
		defer s2.Close()
		var ds []scenario.Delta
		for _, cmd := range isis.Commands(diffs) {
			d, perr := scenario.ParseDelta(cmd)
			if perr != nil {
				t.Fatalf("diff emitted unparsable command %q: %v", cmd, perr)
			}
			ds = append(ds, d)
		}
		if _, err := s2.SetStack(ds); err != nil {
			t.Fatalf("diff commands rejected: %v", err)
		}
		reapplied := s2.MaterializeFresh()
		if got, want := renderTable(reapplied), renderTable(overlay); !reflect.DeepEqual(got, want) {
			t.Fatalf("diff-apply round trip differs:\n got  %v\n want %v", got, want)
		}
		rediff, err := isis.Diff(reapplied, overlay)
		if err != nil {
			t.Fatal(err)
		}
		if len(rediff) != 0 {
			t.Fatalf("diff after apply not empty: %v", rediff)
		}
	})
}
